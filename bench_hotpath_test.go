package memlp

// Hot-path benchmarks (the BENCH_HOTPATH.json source): delta-programming's
// cells-written-per-iteration reduction and warm-started repeat-solve
// iteration counts. The structured-LDLᵀ companion (BenchmarkLDLT vs
// BenchmarkLUKKT) lives in internal/linalg. Regenerate with
// `make bench-hotpath`.

import (
	"context"
	"testing"
)

// benchmarkDeltaWrites measures one crossbar solve of the canonical m=16
// LP with the delta level grid at the given width (0 disables
// delta-programming, leaving only the seed controller's bit-exact
// program-and-verify skip). Three write metrics are reported per iteration:
//
//   - refresh/iter: physical cell writes across the whole solve excluding
//     the one-time array programming — the amortized per-iteration cost.
//   - active/iter: writes per iteration over the active phase (iterations
//     2–10), while the iterate is moving and the pre-delta controller pays
//     the full ~2.7N-cells-per-iteration refresh that §4.4 counts (both
//     cells of every complementarity row rewritten through the row-sum
//     coupling). This is the §4.4 metric the delta grid halves: only the
//     genuinely moving cell of each pair crosses a coarse level bin.
//   - peak/iter: the worst single-iteration refresh. Without delta this is
//     the full §4.4 cost, 2(n+m) ≈ 2.7N cells; with the 8-bit grid it is
//     roughly one cell per complementarity pair.
//   - skips/iter: delta-programming skips (0 when disabled).
func benchmarkDeltaWrites(b *testing.B, bits int) {
	p, err := GenerateFeasible(16, 0, 7)
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSolver(EngineCrossbar,
		WithDeltaWriteBits(bits), WithSeed(9), WithTrace(512))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	const activeEnd = 10
	var refresh, active, skips, iters, activeIters, peak int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := s.Solve(ctx, p)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != StatusOptimal {
			b.Fatalf("status %v", sol.Status)
		}
		var programWrites, activeW, prev int64
		for _, r := range sol.Trace() {
			if r.Event != "iteration" {
				continue
			}
			if r.Iteration == 1 {
				programWrites = r.CellsWritten
			} else if w := r.CellsWritten - prev; w > peak {
				peak = w
			}
			prev = r.CellsWritten
			if r.Iteration <= activeEnd {
				activeW = r.CellsWritten
			}
		}
		refresh += sol.Hardware.CellWrites - programWrites
		active += activeW - programWrites
		skips += sol.Hardware.CellsSkipped
		iters += int64(sol.Iterations) - 1
		activeIters += activeEnd - 1
	}
	b.StopTimer()
	b.ReportMetric(float64(refresh)/float64(iters), "refresh/iter")
	b.ReportMetric(float64(active)/float64(activeIters), "active/iter")
	b.ReportMetric(float64(peak), "peak/iter")
	b.ReportMetric(float64(skips)/float64(iters), "skips/iter")
}

func BenchmarkDeltaWritesOff(b *testing.B) { benchmarkDeltaWrites(b, 0) }
func BenchmarkDeltaWrites8(b *testing.B)   { benchmarkDeltaWrites(b, 8) }

// benchmarkWarmStart measures repeat solves of one problem on a persistent
// handle, cold versus seeded from the previous optimum, reporting the
// per-solve iteration count the warm start saves.
func benchmarkWarmStart(b *testing.B, eng Engine, warm bool) {
	p, err := GenerateFeasible(16, 0, 7)
	if err != nil {
		b.Fatal(err)
	}
	var opts []Option
	if eng == EngineCrossbar {
		opts = append(opts, WithSeed(9))
	}
	s, err := NewSolver(eng, opts...)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	prev, err := s.Solve(ctx, p)
	if err != nil {
		b.Fatal(err)
	}
	var iters int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if warm {
			if err := s.SetWarmStart(prev); err != nil {
				b.Fatal(err)
			}
		}
		sol, err := s.Solve(ctx, p)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != StatusOptimal {
			b.Fatalf("status %v", sol.Status)
		}
		iters += int64(sol.Iterations)
		if warm {
			prev = sol
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(iters)/float64(b.N), "iters/solve")
}

func BenchmarkWarmStartCold(b *testing.B) { benchmarkWarmStart(b, EngineCrossbar, false) }
func BenchmarkWarmStartWarm(b *testing.B) { benchmarkWarmStart(b, EngineCrossbar, true) }
func BenchmarkWarmStartPDIPCold(b *testing.B) {
	benchmarkWarmStart(b, EnginePDIPReduced, false)
}
func BenchmarkWarmStartPDIPWarm(b *testing.B) {
	benchmarkWarmStart(b, EnginePDIPReduced, true)
}
