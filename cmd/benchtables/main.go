// Command benchtables regenerates every table and figure of the paper's
// evaluation section (§4) as text tables, plus the ablations listed in
// DESIGN.md. EXPERIMENTS.md records a captured run next to the paper's
// reported numbers.
//
// Usage:
//
//	benchtables -table fig5a [-sizes 4,16,64,256] [-trials 5] [-seed 0]
//
// Tables:
//
//	fig5a, fig5b     accuracy of Algorithm 1 / Algorithm 2 (Fig. 5)
//	fig6a, fig6b     latency vs software baselines (Fig. 6)
//	fig7a, fig7b     energy vs software baselines (Fig. 7)
//	infeasible       infeasibility-detection speed (§4.4 text)
//	iters            iteration counts per algorithm and variation
//	varcheck         intrinsic LP sensitivity to perturbed matrices (§4.3)
//	batch            sharded-fabric-pool batch throughput vs pool width
//	serve            memlpd serving throughput, coalescing off vs on
//	ab1..ab7         ablations (see DESIGN.md)
//	all              everything above at the configured sizes (except serve)
//
// The batch table is host-dependent (it measures simulator wall time, so
// speedup tops out at the machine's core count); -parallel sets the largest
// pool width swept and -batch the instances per batch.
//
// The serve table boots an in-process memlpd per point and drives it with
// -serve-clients closed-loop workers issuing -serve-requests same-matrix
// requests each, once with coalescing disabled and once enabled with
// -serve-window; -serve-json additionally writes the BENCH_SERVE.json
// artifact (see `make bench-serve`). Also host-dependent.
//
// The -full flag additionally measures the O(N³) software PDIP baseline in
// fig6/fig7 (slow at large m).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/memlp/memlp/internal/experiments"
	"github.com/memlp/memlp/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		table       = fs.String("table", "all", "which table to regenerate (see command doc)")
		sizes       = fs.String("sizes", "", "comma-separated constraint counts (default 4,16,64,256)")
		vars        = fs.String("vars", "", "comma-separated variation fractions (default 0,0.05,0.10,0.20)")
		trials      = fs.Int("trials", 5, "instances per point")
		seed        = fs.Int64("seed", 0, "seed offset for the instance stream")
		full        = fs.Bool("full", false, "also measure the O(N³) software PDIP baseline")
		parallel    = fs.Int("parallel", 4, "largest fabric-pool width in the batch table (widths double from 1)")
		batch       = fs.Int("batch", 32, "problems per batch in the batch table")
		traceFile   = fs.String("trace", "", "stream the sweeps' crossbar trace records as JSON Lines to FILE (- = stdout)")
		metricsAddr = fs.String("metrics-addr", "", "after the tables, serve Prometheus metrics on ADDR until interrupted")

		serveClients  = fs.Int("serve-clients", 8, "closed-loop workers in the serve table")
		serveRequests = fs.Int("serve-requests", 8, "requests each serve-table worker issues")
		serveWindow   = fs.Duration("serve-window", 5*time.Millisecond, "coalesce window in the serve table")
		serveJSON     = fs.String("serve-json", "", "also write the serve table as a JSON artifact to FILE")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// SIGINT aborts the sweep between trials (a large -sizes point can run
	// for minutes).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cfg := experiments.Config{Trials: *trials, Seed: *seed, Context: ctx}

	var sinks trace.Multi
	var jsonl *trace.JSONL
	if *traceFile != "" {
		traceW := io.Writer(stdout)
		if *traceFile != "-" {
			f, err := os.Create(*traceFile)
			if err != nil {
				fmt.Fprintf(stderr, "benchtables: %v\n", err)
				return 1
			}
			defer f.Close()
			traceW = f
		}
		jsonl = trace.NewJSONL(traceW)
		sinks = append(sinks, jsonl)
	}
	var metrics *trace.Metrics
	if *metricsAddr != "" {
		metrics = trace.NewMetrics()
		sinks = append(sinks, metrics)
	}
	if len(sinks) > 0 {
		cfg.Trace = sinks
	}

	var err error
	if cfg.Sizes, err = parseInts(*sizes); err != nil {
		fmt.Fprintf(stderr, "benchtables: -sizes: %v\n", err)
		return 2
	}
	if cfg.Variations, err = parseFloats(*vars); err != nil {
		fmt.Fprintf(stderr, "benchtables: -vars: %v\n", err)
		return 2
	}

	if *parallel < 1 || *batch < 1 {
		fmt.Fprintln(stderr, "benchtables: need -parallel ≥ 1 and -batch ≥ 1")
		return 2
	}
	widths := poolWidths(*parallel)

	tables := strings.Split(*table, ",")
	if *table == "all" {
		tables = []string{"fig5a", "fig5b", "fig6a", "fig6b", "fig7a", "fig7b",
			"infeasible", "iters", "varcheck", "batch", "ab1", "ab2", "ab3", "ab4", "ab5", "ab6", "ab7"}
	}
	sp := serveParams{
		clients:  *serveClients,
		requests: *serveRequests,
		window:   *serveWindow,
		jsonPath: *serveJSON,
	}
	for _, t := range tables {
		if err := emit(strings.TrimSpace(t), cfg, *full, *batch, widths, sp, stdout); err != nil {
			fmt.Fprintf(stderr, "benchtables: %s: %v\n", t, err)
			return 1
		}
	}
	if jsonl != nil {
		if err := jsonl.Err(); err != nil {
			fmt.Fprintf(stderr, "benchtables: trace stream: %v\n", err)
			return 1
		}
	}
	if metrics != nil {
		return serveMetrics(ctx, *metricsAddr, metrics, stdout, stderr)
	}
	return 0
}

// serveMetrics exposes m in Prometheus text format on addr/metrics until ctx
// is canceled.
func serveMetrics(ctx context.Context, addr string, m *trace.Metrics, stdout, stderr io.Writer) int {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = m.WriteProm(w)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "benchtables: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "metrics: serving on http://%s/metrics (interrupt to exit)\n", ln.Addr())
	srv := &http.Server{Handler: mux}
	go func() {
		<-ctx.Done()
		_ = srv.Shutdown(context.Background())
	}()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "benchtables: %v\n", err)
		return 1
	}
	return 0
}

// poolWidths doubles from 1 up to max, always ending at max itself.
func poolWidths(max int) []int {
	var widths []int
	for w := 1; w < max; w *= 2 {
		widths = append(widths, w)
	}
	return append(widths, max)
}

// serveParams carries the serve-table knobs through to emit.
type serveParams struct {
	clients  int
	requests int
	window   time.Duration
	jsonPath string
}

func emit(table string, cfg experiments.Config, full bool, batch int, widths []int, sp serveParams, w io.Writer) error {
	ablM := 24 // ablation problem size
	switch table {
	case "fig5a", "fig5b":
		alg := experiments.Algorithm1
		title := "Fig. 5(a) — accuracy, Algorithm 1 (crossbar PDIP) vs software reference"
		if table == "fig5b" {
			alg = experiments.Algorithm2
			title = "Fig. 5(b) — accuracy, Algorithm 2 (large-scale) vs software reference"
		}
		rows, err := experiments.Accuracy(alg, cfg)
		if err != nil {
			return err
		}
		tw := newTable(w, title)
		fmt.Fprintln(tw, "m\tn\tvar\tmean rel err\tmax rel err\toptimal rate\tmean iters")
		for _, r := range rows {
			fmt.Fprintf(tw, "%d\t%d\t%.0f%%\t%.3f%%\t%.3f%%\t%.0f%%\t%.1f\n",
				r.M, r.N, r.Variation*100, r.MeanRelErr*100, r.MaxRelErr*100, r.OptimalRate*100, r.MeanIterations)
		}
		return tw.Flush()

	case "fig6a", "fig6b", "fig7a", "fig7b":
		alg := experiments.Algorithm1
		if table == "fig6b" || table == "fig7b" {
			alg = experiments.Algorithm2
		}
		rows, err := experiments.LatencyEnergy(alg, cfg, full)
		if err != nil {
			return err
		}
		if strings.HasPrefix(table, "fig6") {
			title := fmt.Sprintf("Fig. 6(%s) — latency, %s vs software", table[4:], alg)
			tw := newTable(w, title)
			fmt.Fprintln(tw, "m\tvar\tsw reduced\tsw full\tsimplex\tcrossbar (est)\tspeedup\titers")
			for _, r := range rows {
				fmt.Fprintf(tw, "%d\t%.0f%%\t%v\t%v\t%v\t%v\t%.1fx\t%.1f\n",
					r.M, r.Variation*100, r.SoftwareReduced, r.SoftwareFull, r.Simplex, r.Crossbar, r.Speedup, r.Iterations)
			}
			return tw.Flush()
		}
		title := fmt.Sprintf("Fig. 7(%s) — energy, %s vs software", table[4:], alg)
		tw := newTable(w, title)
		fmt.Fprintln(tw, "m\tvar\tsw energy (J)\tcrossbar energy (J)\tgain")
		for _, r := range rows {
			fmt.Fprintf(tw, "%d\t%.0f%%\t%.4g\t%.4g\t%.1fx\n",
				r.M, r.Variation*100, r.SoftwareEnergy, r.CrossbarEnergy, r.EnergyGain)
		}
		return tw.Flush()

	case "infeasible":
		rows, err := experiments.InfeasibleDetection(experiments.Algorithm1, cfg)
		if err != nil {
			return err
		}
		tw := newTable(w, "§4.4 — infeasibility detection, Algorithm 1 vs software")
		fmt.Fprintln(tw, "m\tvar\tdetection rate\tsw latency\tcrossbar (est)\tspeedup\titers")
		for _, r := range rows {
			fmt.Fprintf(tw, "%d\t%.0f%%\t%.0f%%\t%v\t%v\t%.1fx\t%.1f\n",
				r.M, r.Variation*100, r.DetectionRate*100, r.Software, r.Crossbar, r.Speedup, r.Iterations)
		}
		return tw.Flush()

	case "iters":
		rows, err := experiments.IterationCounts(cfg)
		if err != nil {
			return err
		}
		tw := newTable(w, "Iteration counts — Algorithm 1 (adaptive θ) vs Algorithm 2 (constant θ)")
		fmt.Fprintln(tw, "m\tvar\talg 1 iters\talg 2 iters\talg 2 re-solves")
		for _, r := range rows {
			fmt.Fprintf(tw, "%d\t%.0f%%\t%.1f\t%.1f\t%.2f\n",
				r.M, r.Variation*100, r.Algorithm1, r.Algorithm2, r.Resolves2)
		}
		return tw.Flush()

	case "varcheck":
		rows, err := experiments.VariationSensitivity(cfg)
		if err != nil {
			return err
		}
		tw := newTable(w, "§4.3 — intrinsic sensitivity: exact solve on perturbed matrices")
		fmt.Fprintln(tw, "m\tvar\tmean rel err\tmax rel err")
		for _, r := range rows {
			fmt.Fprintf(tw, "%d\t%.0f%%\t%.3f%%\t%.3f%%\n",
				r.M, r.Variation*100, r.MeanRelErr*100, r.MaxRelErr*100)
		}
		return tw.Flush()

	case "batch":
		rows, err := experiments.BatchThroughput(cfg, batch, widths)
		if err != nil {
			return err
		}
		tw := newTable(w, "Batch throughput — sharded fabric pool, shared-A batches (host wall time)")
		fmt.Fprintln(tw, "m\tn\twidth\tbatch\twall\tper solve\tspeedup\toptimal rate")
		for _, r := range rows {
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%v\t%v\t%.2fx\t%.0f%%\n",
				r.M, r.N, r.Width, r.Batch, r.Wall.Round(time.Microsecond),
				r.PerSolve.Round(time.Microsecond), r.Speedup, r.Optimal*100)
		}
		return tw.Flush()

	case "serve":
		rows, err := experiments.ServeThroughput(cfg, sp.clients, sp.requests, sp.window)
		if err != nil {
			return err
		}
		tw := newTable(w, "Serving throughput — memlpd same-matrix coalescing off vs on")
		fmt.Fprintln(tw, "m\tn\tclients\tcoalesce\treq\treq/s\tp50\tp95\thit rate\tmean batch\toptimal\twall speedup\thw/req\thw speedup\tprograms/req\tamortization")
		for _, r := range rows {
			fmt.Fprintf(tw, "%d\t%d\t%d\t%v\t%d\t%.1f\t%v\t%v\t%.0f%%\t%.1f\t%.0f%%\t%.2fx\t%v\t%.2fx\t%.2f\t%.2fx\n",
				r.M, r.N, r.Clients, r.Coalesce, r.Requests, r.ReqPerSec,
				r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
				r.HitRate*100, r.MeanBatch, r.Optimal*100, r.Speedup,
				r.HWPerReq.Round(time.Microsecond), r.HWSpeedup,
				r.ProgramsPerReq, r.ProgramAmortization)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		if sp.jsonPath != "" {
			return writeServeJSON(sp.jsonPath, rows, sp)
		}
		return nil

	case "ab1":
		rows, err := experiments.AblationConstantStep(cfg, ablM, nil)
		if err != nil {
			return err
		}
		return emitAblation(w, "AB1 — Algorithm 2 constant step length θ", rows)
	case "ab2":
		rows, err := experiments.AblationFillers(cfg, ablM, nil)
		if err != nil {
			return err
		}
		return emitAblation(w, "AB2 — Eq. 16c reading: reduced-KKT coupling vs literal εI fillers", rows)
	case "ab3":
		rows, err := experiments.AblationIOBits(cfg, ablM, nil)
		if err != nil {
			return err
		}
		return emitAblation(w, "AB3 — DAC/ADC precision and converter-range mode", rows)
	case "ab4":
		rows, err := experiments.AblationVariationModel(cfg, ablM, 0.10)
		if err != nil {
			return err
		}
		return emitAblation(w, "AB4 — variation distribution at 10% magnitude", rows)
	case "ab5":
		rows, err := experiments.AblationNoC(cfg, ablM, 32)
		if err != nil {
			return err
		}
		return emitAblation(w, "AB5 — NoC topology (Fig. 3a vs 3b), 32-cell tiles", rows)
	case "ab6":
		rows, err := experiments.AblationWriteBits(cfg, ablM, nil)
		if err != nil {
			return err
		}
		return emitAblation(w, "AB6 — conductance write precision", rows)
	case "ab7":
		rows, err := experiments.AblationWireResistance(cfg, ablM, nil)
		if err != nil {
			return err
		}
		return emitAblation(w, "AB7 — wire resistance (IR drop), Ω per segment", rows)

	default:
		return fmt.Errorf("unknown table %q", table)
	}
}

func emitAblation(w io.Writer, title string, rows []experiments.AblationRow) error {
	tw := newTable(w, title)
	fmt.Fprintln(tw, "config\tmean rel err\toptimal rate\tmean iters\tlatency (est)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f%%\t%.0f%%\t%.1f\t%v\n",
			r.Label, r.MeanRelErr*100, r.OptimalRate*100, r.MeanIterations, r.Latency)
	}
	return tw.Flush()
}

func newTable(w io.Writer, title string) *tabwriter.Writer {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

// writeServeJSON captures the serve table as the BENCH_SERVE.json artifact,
// mirroring the BENCH_BATCH.json layout: a description, the host
// environment, and one result object per (size, coalescing mode) row.
func writeServeJSON(path string, rows []experiments.ServeRow, sp serveParams) error {
	type jsonRow struct {
		M              int     `json:"m"`
		N              int     `json:"n"`
		Clients        int     `json:"clients"`
		Coalesce       bool    `json:"coalesce"`
		Requests       int     `json:"requests"`
		ReqPerSec      float64 `json:"req_per_sec"`
		P50Ms          float64 `json:"p50_ms"`
		P95Ms          float64 `json:"p95_ms"`
		HitRate        float64 `json:"hit_rate"`
		MeanBatch      float64 `json:"mean_batch"`
		Optimal        float64 `json:"optimal_rate"`
		Speedup        float64 `json:"wall_speedup"`
		HWPerReqUs     float64 `json:"modeled_hw_us_per_req"`
		HWSpeedup      float64 `json:"modeled_hw_speedup"`
		ProgramsPerReq float64 `json:"programs_per_req"`
		Amortization   float64 `json:"program_amortization"`
	}
	out := struct {
		Description string `json:"description"`
		Environment struct {
			GOOS   string `json:"goos"`
			GOARCH string `json:"goarch"`
			Cores  int    `json:"cores"`
			Note   string `json:"note"`
		} `json:"environment"`
		Date   string `json:"date"`
		Config struct {
			Clients           int     `json:"clients"`
			RequestsPerClient int     `json:"requests_per_client"`
			WindowMs          float64 `json:"window_ms"`
		} `json:"config"`
		Results []jsonRow `json:"results"`
	}{}
	out.Description = fmt.Sprintf(
		"memlpd serving throughput: %d closed-loop clients x %d same-matrix requests against an in-process server, "+
			"coalescing disabled vs enabled (%v window). The coalescing win — replica programming paid once per "+
			"batch instead of once per request — is reported three ways: wall_speedup (host req/s ratio), "+
			"modeled_hw_speedup (crossbar-level latency estimate per request), and program_amortization "+
			"(programming events per request, off over on; approaches the batch size under full coalescing). "+
			"Real run of `benchtables -table serve`; regenerate with `make bench-serve`.",
		sp.clients, sp.requests, sp.window)
	out.Environment.GOOS = runtime.GOOS
	out.Environment.GOARCH = runtime.GOARCH
	out.Environment.Cores = runtime.NumCPU()
	out.Environment.Note = fmt.Sprintf(
		"%d-core host: the software simulator's per-iteration compute serializes, so wall_speedup stays near 1x "+
			"regardless of how much programming is amortized — the >=2x serving win shows up in program_amortization "+
			"and, on programming-dominated fabrics, modeled_hw_speedup. Only off/on pairs from one run are comparable.",
		runtime.NumCPU())
	out.Date = time.Now().Format("2006-01-02")
	out.Config.Clients = sp.clients
	out.Config.RequestsPerClient = sp.requests
	out.Config.WindowMs = float64(sp.window) / float64(time.Millisecond)
	for _, r := range rows {
		out.Results = append(out.Results, jsonRow{
			M: r.M, N: r.N, Clients: r.Clients, Coalesce: r.Coalesce,
			Requests: r.Requests, ReqPerSec: round2(r.ReqPerSec),
			P50Ms:   round2(float64(r.P50) / float64(time.Millisecond)),
			P95Ms:   round2(float64(r.P95) / float64(time.Millisecond)),
			HitRate: round2(r.HitRate), MeanBatch: round2(r.MeanBatch),
			Optimal: round2(r.Optimal), Speedup: round2(r.Speedup),
			HWPerReqUs:     round2(float64(r.HWPerReq) / float64(time.Microsecond)),
			HWSpeedup:      round2(r.HWSpeedup),
			ProgramsPerReq: round2(r.ProgramsPerReq),
			Amortization:   round2(r.ProgramAmortization),
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
