package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleTable(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-table", "fig5a", "-sizes", "6", "-vars", "0", "-trials", "1"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
	s := out.String()
	if !strings.Contains(s, "Fig. 5(a)") {
		t.Errorf("missing table title:\n%s", s)
	}
	if !strings.Contains(s, "mean rel err") {
		t.Errorf("missing header:\n%s", s)
	}
}

func TestRunMultipleTables(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-table", "iters,varcheck", "-sizes", "6", "-vars", "0,0.1", "-trials", "1"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
	s := out.String()
	if !strings.Contains(s, "Iteration counts") || !strings.Contains(s, "intrinsic sensitivity") {
		t.Errorf("missing tables:\n%s", s)
	}
}

func TestRunAblationTable(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-table", "ab4", "-trials", "1"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "uniform (paper)") {
		t.Errorf("missing ablation rows:\n%s", out.String())
	}
}

func TestRunBatchTable(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-table", "batch", "-sizes", "6", "-vars", "0.05", "-batch", "4", "-parallel", "2"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
	s := out.String()
	if !strings.Contains(s, "Batch throughput") {
		t.Errorf("missing table title:\n%s", s)
	}
	if !strings.Contains(s, "per solve") || !strings.Contains(s, "speedup") {
		t.Errorf("missing headers:\n%s", s)
	}
}

func TestRunBadBatchFlags(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-parallel", "0"}, &out, &errBuf); code != 2 {
		t.Fatalf("-parallel 0 exit = %d, want 2", code)
	}
	if code := run([]string{"-batch", "0"}, &out, &errBuf); code != 2 {
		t.Fatalf("-batch 0 exit = %d, want 2", code)
	}
}

func TestPoolWidths(t *testing.T) {
	for _, tc := range []struct {
		max  int
		want []int
	}{{1, []int{1}}, {4, []int{1, 2, 4}}, {6, []int{1, 2, 4, 6}}} {
		got := poolWidths(tc.max)
		if len(got) != len(tc.want) {
			t.Fatalf("poolWidths(%d) = %v, want %v", tc.max, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("poolWidths(%d) = %v, want %v", tc.max, got, tc.want)
			}
		}
	}
}

func TestRunUnknownTable(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-table", "fig99"}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "unknown table") {
		t.Errorf("stderr = %s", errBuf.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-sizes", "x"}, &out, &errBuf); code != 2 {
		t.Fatalf("bad -sizes exit = %d, want 2", code)
	}
	if code := run([]string{"-vars", "y"}, &out, &errBuf); code != 2 {
		t.Fatalf("bad -vars exit = %d, want 2", code)
	}
}

func TestParseHelpers(t *testing.T) {
	ints, err := parseInts(" 4, 16 ,64")
	if err != nil || len(ints) != 3 || ints[2] != 64 {
		t.Errorf("parseInts = %v, %v", ints, err)
	}
	floats, err := parseFloats("0,0.05")
	if err != nil || len(floats) != 2 || floats[1] != 0.05 {
		t.Errorf("parseFloats = %v, %v", floats, err)
	}
	if out, err := parseInts(""); out != nil || err != nil {
		t.Errorf("empty parseInts = %v, %v", out, err)
	}
}
