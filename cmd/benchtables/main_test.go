package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleTable(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-table", "fig5a", "-sizes", "6", "-vars", "0", "-trials", "1"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
	s := out.String()
	if !strings.Contains(s, "Fig. 5(a)") {
		t.Errorf("missing table title:\n%s", s)
	}
	if !strings.Contains(s, "mean rel err") {
		t.Errorf("missing header:\n%s", s)
	}
}

func TestRunMultipleTables(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-table", "iters,varcheck", "-sizes", "6", "-vars", "0,0.1", "-trials", "1"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
	s := out.String()
	if !strings.Contains(s, "Iteration counts") || !strings.Contains(s, "intrinsic sensitivity") {
		t.Errorf("missing tables:\n%s", s)
	}
}

func TestRunAblationTable(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-table", "ab4", "-trials", "1"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "uniform (paper)") {
		t.Errorf("missing ablation rows:\n%s", out.String())
	}
}

func TestRunBatchTable(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-table", "batch", "-sizes", "6", "-vars", "0.05", "-batch", "4", "-parallel", "2"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
	s := out.String()
	if !strings.Contains(s, "Batch throughput") {
		t.Errorf("missing table title:\n%s", s)
	}
	if !strings.Contains(s, "per solve") || !strings.Contains(s, "speedup") {
		t.Errorf("missing headers:\n%s", s)
	}
}

func TestRunServeTable(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "serve.json")
	var out, errBuf bytes.Buffer
	code := run([]string{"-table", "serve", "-sizes", "6", "-vars", "0",
		"-serve-clients", "2", "-serve-requests", "2", "-serve-window", "20ms",
		"-serve-json", jsonPath}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
	s := out.String()
	if !strings.Contains(s, "Serving throughput") {
		t.Errorf("missing table title:\n%s", s)
	}
	for _, col := range []string{"req/s", "hit rate", "wall speedup", "hw speedup", "amortization"} {
		if !strings.Contains(s, col) {
			t.Errorf("missing %q column:\n%s", col, s)
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("read artifact: %v", err)
	}
	var artifact struct {
		Environment struct {
			Cores int `json:"cores"`
		} `json:"environment"`
		Results []struct {
			Coalesce            bool    `json:"coalesce"`
			Requests            int     `json:"requests"`
			ProgramAmortization float64 `json:"program_amortization"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &artifact); err != nil {
		t.Fatalf("artifact is not JSON: %v\n%s", err, data)
	}
	if artifact.Environment.Cores < 1 {
		t.Errorf("cores = %d", artifact.Environment.Cores)
	}
	if len(artifact.Results) != 2 {
		t.Fatalf("results = %d rows, want 2 (off, on)", len(artifact.Results))
	}
	if artifact.Results[0].Coalesce || !artifact.Results[1].Coalesce {
		t.Errorf("rows out of order: %+v", artifact.Results)
	}
	for _, r := range artifact.Results {
		if r.Requests != 4 {
			t.Errorf("requests = %d, want 4", r.Requests)
		}
	}
}

func TestRunBadBatchFlags(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-parallel", "0"}, &out, &errBuf); code != 2 {
		t.Fatalf("-parallel 0 exit = %d, want 2", code)
	}
	if code := run([]string{"-batch", "0"}, &out, &errBuf); code != 2 {
		t.Fatalf("-batch 0 exit = %d, want 2", code)
	}
}

func TestPoolWidths(t *testing.T) {
	for _, tc := range []struct {
		max  int
		want []int
	}{{1, []int{1}}, {4, []int{1, 2, 4}}, {6, []int{1, 2, 4, 6}}} {
		got := poolWidths(tc.max)
		if len(got) != len(tc.want) {
			t.Fatalf("poolWidths(%d) = %v, want %v", tc.max, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("poolWidths(%d) = %v, want %v", tc.max, got, tc.want)
			}
		}
	}
}

func TestRunUnknownTable(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-table", "fig99"}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "unknown table") {
		t.Errorf("stderr = %s", errBuf.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-sizes", "x"}, &out, &errBuf); code != 2 {
		t.Fatalf("bad -sizes exit = %d, want 2", code)
	}
	if code := run([]string{"-vars", "y"}, &out, &errBuf); code != 2 {
		t.Fatalf("bad -vars exit = %d, want 2", code)
	}
}

func TestParseHelpers(t *testing.T) {
	ints, err := parseInts(" 4, 16 ,64")
	if err != nil || len(ints) != 3 || ints[2] != 64 {
		t.Errorf("parseInts = %v, %v", ints, err)
	}
	floats, err := parseFloats("0,0.05")
	if err != nil || len(floats) != 2 || floats[1] != 0.05 {
		t.Errorf("parseFloats = %v, %v", floats, err)
	}
	if out, err := parseInts(""); out != nil || err != nil {
		t.Errorf("empty parseInts = %v, %v", out, err)
	}
}
