// Command lpgen generates random linear-program instances in the textual
// format understood by cmd/lpsolve and memlp.ReadProblem.
//
// Usage:
//
//	lpgen -m 64 [-n 0] [-seed 1] [-infeasible] [-o problem.lp]
//	lpgen -m 16 -socp [-soc-blocks 1] [-soc-dim 3]
//
// With n = 0 the paper's ratio n = m/3 is used. Instances are reproducible
// per seed: feasible instances are feasible and bounded by construction,
// infeasible ones embed a contradictory constraint pair. With -socp the
// instance is a second-order cone program: -soc-blocks cones of -soc-dim
// rows each, remaining rows in the non-negative orthant (solve it with
// lpsolve -engine conic).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/memlp/memlp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lpgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		m          = fs.Int("m", 16, "number of constraints (≥ 2)")
		n          = fs.Int("n", 0, "number of variables (0 = m/3, the paper's ratio)")
		seed       = fs.Int64("seed", 1, "random seed")
		infeasible = fs.Bool("infeasible", false, "generate a contradictory (infeasible) instance")
		socp       = fs.Bool("socp", false, "generate a second-order cone program instead of a pure LP")
		socBlocks  = fs.Int("soc-blocks", 0, "number of second-order cone blocks (0 = 1; requires -socp)")
		socDim     = fs.Int("soc-dim", 0, "rows per second-order cone block (0 = 3; requires -socp)")
		out        = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*socBlocks != 0 || *socDim != 0) && !*socp {
		fmt.Fprintln(stderr, "lpgen: -soc-blocks and -soc-dim require -socp")
		return 2
	}
	if *socp && *infeasible {
		fmt.Fprintln(stderr, "lpgen: -socp and -infeasible are mutually exclusive")
		return 2
	}

	var (
		p   *memlp.Problem
		err error
	)
	switch {
	case *socp:
		p, err = memlp.GenerateFeasibleSOCP(*m, *n, *socBlocks, *socDim, *seed)
	case *infeasible:
		p, err = memlp.GenerateInfeasible(*m, *n, *seed)
	default:
		p, err = memlp.GenerateFeasible(*m, *n, *seed)
	}
	if err != nil {
		fmt.Fprintf(stderr, "lpgen: %v\n", err)
		return 1
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "lpgen: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := p.WriteText(w); err != nil {
		fmt.Fprintf(stderr, "lpgen: %v\n", err)
		return 1
	}
	return 0
}
