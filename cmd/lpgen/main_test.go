package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/memlp/memlp"
)

func TestGenerateFeasibleToStdout(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-m", "9", "-seed", "3"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
	p, err := memlp.ReadProblem(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("output not parseable: %v", err)
	}
	if p.NumConstraints() != 9 || p.NumVariables() != 3 {
		t.Errorf("dims = (%d, %d)", p.NumConstraints(), p.NumVariables())
	}
	// Feasible instance must be solvable to optimality.
	sol, err := memlp.Solve(p, memlp.EngineSimplex)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != memlp.StatusOptimal {
		t.Errorf("generated feasible instance not optimal: %v", sol.Status)
	}
}

func TestGenerateInfeasible(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-m", "9", "-infeasible"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
	p, err := memlp.ReadProblem(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("output not parseable: %v", err)
	}
	sol, err := memlp.Solve(p, memlp.EngineSimplex)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != memlp.StatusInfeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestGenerateSOCPRoundTrip(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-m", "12", "-seed", "7", "-socp", "-soc-blocks", "2", "-soc-dim", "3"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
	p, err := memlp.ReadProblem(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("output not parseable: %v", err)
	}
	if !p.IsConic() {
		t.Fatal("generated -socp instance is not conic")
	}
	socBlocks := 0
	for _, k := range p.Cones() {
		if k.Type == memlp.ConeSOC {
			socBlocks++
			if k.Dim != 3 {
				t.Errorf("SOC block dim = %d, want 3", k.Dim)
			}
		}
	}
	if socBlocks != 2 {
		t.Errorf("SOC blocks = %d, want 2", socBlocks)
	}
	// Generated SOCPs must solve on the software conic baseline.
	sol, err := memlp.Solve(p, memlp.EnginePDIP)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != memlp.StatusOptimal {
		t.Errorf("generated SOCP not optimal: %v", sol.Status)
	}
}

func TestGenerateSOCPFlagValidation(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-m", "9", "-soc-blocks", "2"}, &out, &errBuf); code != 2 {
		t.Fatalf("-soc-blocks without -socp: exit = %d, want 2", code)
	}
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-m", "9", "-socp", "-infeasible"}, &out, &errBuf); code != 2 {
		t.Fatalf("-socp -infeasible: exit = %d, want 2", code)
	}
}

func TestGenerateToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.lp")
	var out, errBuf bytes.Buffer
	code := run([]string{"-m", "6", "-o", path}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
	if out.Len() != 0 {
		t.Error("wrote to stdout despite -o")
	}
}

func TestGenerateInvalidSize(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-m", "1"}, &out, &errBuf); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

func TestGenerateBadOutputPath(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-o", "/nonexistent-dir/x.lp"}, &out, &errBuf); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}
