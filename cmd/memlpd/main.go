// Command memlpd is the memlp solver daemon: an HTTP service that accepts
// LP/SOCP submissions (POST /solve, JSON body carrying the text-io problem
// format plus engine/options fields), pools reusable solver handles per
// (engine, options) key, and coalesces concurrent same-matrix requests into
// shared SolveBatch calls on the fabric pool — so replica programming cost is
// paid once per matrix, not once per request.
//
// Endpoints: POST /solve, GET /healthz, GET /metrics (Prometheus text
// format), GET /vars (JSON summary). Requests may bound their solve with an
// X-Deadline header (a duration like "250ms" or an RFC 3339 timestamp);
// expiry and client disconnect both surface as the "canceled" status.
//
//	memlpd -addr :8080 -queue 64 -coalesce-window 2ms -solvers-per-key 2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/memlp/memlp/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run starts the daemon and blocks until SIGINT/SIGTERM (or ready receives a
// value and the test closes the listener). The bound address is printed to
// stdout as "listening on <addr>" so callers using -addr :0 can find the
// port. ready, when non-nil, receives the bound address once serving.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("memlpd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr          = fs.String("addr", ":8080", "listen address (use :0 for a random port)")
		queue         = fs.Int("queue", 64, "admission limit: concurrent /solve requests before 429")
		window        = fs.Duration("coalesce-window", 2*time.Millisecond, "how long a request waits for same-matrix companions")
		maxBatch      = fs.Int("max-batch", 32, "launch a coalesced batch early at this size")
		solversPerKey = fs.Int("solvers-per-key", 2, "solver handles pooled per (engine, options) key")
		parallelism   = fs.Int("parallelism", 0, "fabric-pool width for batch solves (0 = GOMAXPROCS)")
		noCoalesce    = fs.Bool("no-coalesce", false, "disable same-matrix request coalescing")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	srv := serve.New(serve.Config{
		QueueLimit:        *queue,
		CoalesceWindow:    *window,
		MaxBatch:          *maxBatch,
		SolversPerKey:     *solversPerKey,
		Parallelism:       *parallelism,
		DisableCoalescing: *noCoalesce,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "memlpd: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case sig := <-sigc:
		fmt.Fprintf(stdout, "memlpd: %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintf(stderr, "memlpd: shutdown: %v\n", err)
			return 1
		}
		return 0
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) || errors.Is(err, net.ErrClosed) {
			return 0
		}
		fmt.Fprintf(stderr, "memlpd: %v\n", err)
		return 1
	}
}
