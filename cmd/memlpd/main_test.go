package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonEndToEnd boots the daemon on a random port, solves a problem
// over HTTP, checks the observability endpoints, and shuts it down with
// SIGINT — the full lifecycle the CI serve-e2e job exercises.
func TestDaemonEndToEnd(t *testing.T) {
	ready := make(chan string, 1)
	var out, errOut bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0"}, &out, &errOut, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start")
	}
	base := "http://" + addr

	body := `{"problem": "name diet\nmaximize 3 2\nsubject 1 1 <= 4\nsubject 1 3 <= 6\n", "engine": "crossbar"}`
	resp, err := http.Post(base+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /solve: status %d", resp.StatusCode)
	}
	var sol struct {
		Status    string  `json:"status"`
		Objective float64 `json:"objective"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sol); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sol.Status != "optimal" {
		t.Errorf("status = %q, want optimal", sol.Status)
	}
	if diff := sol.Objective - 12; diff < -0.5 || diff > 0.5 {
		t.Errorf("objective = %v, want ≈ 12", sol.Objective)
	}

	for _, path := range []string{"/healthz", "/metrics", "/vars"} {
		r, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, r.StatusCode)
		}
	}

	// Graceful shutdown on SIGINT.
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatalf("FindProcess: %v", err)
	}
	if err := p.Signal(syscall.SIGINT); err != nil {
		t.Fatalf("signal: %v", err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("run exited %d, stderr: %s", code, errOut.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "listening on") {
		t.Errorf("stdout missing listen line: %q", out.String())
	}
}

func TestBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errOut, nil); code != 2 {
		t.Errorf("run = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "flag") {
		t.Errorf("stderr missing usage: %q", errOut.String())
	}
}

func TestListenFailure(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-addr", "256.256.256.256:99999"}, &out, &errOut, nil); code != 1 {
		t.Errorf("run = %d, want 1", code)
	}
	if errOut.Len() == 0 {
		t.Error("expected a listen error on stderr")
	}
}
