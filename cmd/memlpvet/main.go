// Memlpvet checks the memlp tree against its domain-specific invariants:
// floatcmp, ctxloop, rawwrite, nanguard, hotpath, tracesink, and the
// determinism/concurrency suite detorder, wallclock, guardedby, spawnjoin
// (see internal/analysis and DESIGN.md D11/D16).
//
// Standalone (package patterns, defaulting to ./...):
//
//	go run ./cmd/memlpvet ./...
//
// As a vet tool, so findings integrate with go vet's caching and output:
//
//	go build -o memlpvet ./cmd/memlpvet
//	go vet -vettool=$PWD/memlpvet ./...
//
// Exit status: 0 clean, 1 operational failure, 2 findings reported.
package main

import (
	"crypto/sha256"
	"fmt"
	"os"
	"strings"

	"github.com/memlp/memlp/internal/analysis"
	"github.com/memlp/memlp/internal/analysis/driver"
)

func main() {
	args := os.Args[1:]
	// The go vet -vettool protocol: version probe, flag discovery, then one
	// invocation per package with a .cfg file as the sole argument.
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V="):
			printVersion()
			return
		case args[0] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(driver.Unitchecker(args[0], analysis.Default()))
		}
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := driver.Check(".", patterns, analysis.Default())
	if err != nil {
		fmt.Fprintf(os.Stderr, "memlpvet: %v\n", err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
}

// printVersion answers the go command's -V=full probe. The executable's own
// content hash serves as the build ID, so go vet's result cache invalidates
// whenever the analyzers change.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:16])
		}
	}
	fmt.Printf("memlpvet version devel buildID=%s\n", id)
}
