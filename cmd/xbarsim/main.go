// Command xbarsim exercises the memristor-crossbar substrate directly —
// without the LP solver on top — and reports the analog error statistics of
// matrix–vector multiplication and linear solving under the configured
// non-idealities. It is the tool to answer "what does THIS much variation /
// THIS converter / THIS wiring do to raw analog accuracy?".
//
// Usage:
//
//	xbarsim -size 64 [-variation 0.1] [-iobits 8] [-writebits 14] \
//	        [-wire 0] [-faults 0.01] [-writeretries 3] [-trials 20] \
//	        [-parallel 0] [-seed 1]
//
// For each trial a random diagonally-dominant non-negative matrix and a
// random input vector are drawn; the tool reports the relative error of the
// analog mat-vec and the analog solve against exact linear algebra, as mean,
// median and worst-case over the trials.
//
// Trials are independent — each draws its matrix, vectors, variation map and
// fault placement from its own (seed + trial) stream — so -parallel runs
// them on that many worker goroutines (0 = one per CPU) with statistics that
// are identical for every width.
//
// With -faults the given fraction of cells is stuck (half at maximum
// conductance, half at zero; fresh placement each trial), the post-program
// defect census and write-verify retry counts are reported, and analog
// solves that the defects render singular are counted as failures instead of
// aborting the run — this is the raw-substrate view of the yield experiment
// (the LP-level recovery ladder lives above this layer).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"sync"

	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/memristor"
	"github.com/memlp/memlp/internal/trace"
	"github.com/memlp/memlp/internal/variation"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// trialConfig is the per-run configuration shared by every trial.
type trialConfig struct {
	size      int
	varPct    float64
	ioBits    int
	writeBits int
	wire      float64
	faults    float64
	retries   int
	seed      int64
}

// trialResult carries one trial's statistics back to the aggregation loop.
type trialResult struct {
	mvErr             float64
	solveErr          float64
	solveOK           bool
	solveFailed       bool
	stuckOn, stuckOff int
	retriesUsed       int64
	err               error
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xbarsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		size        = fs.Int("size", 64, "matrix dimension")
		varPct      = fs.Float64("variation", 0, "process variation magnitude (e.g. 0.1)")
		ioBits      = fs.Int("iobits", 8, "DAC/ADC precision")
		writeBits   = fs.Int("writebits", 14, "conductance write precision")
		wire        = fs.Float64("wire", 0, "wire resistance per segment (Ω)")
		faults      = fs.Float64("faults", 0, "stuck-cell density (split evenly stuck-ON/OFF, e.g. 0.01)")
		retries     = fs.Int("writeretries", 0, "write-verify corrective pulses per cell (0 = open-loop)")
		trials      = fs.Int("trials", 20, "number of random trials")
		parallel    = fs.Int("parallel", 0, "trial worker goroutines (0 = one per CPU); results are width-independent")
		seed        = fs.Int64("seed", 1, "random seed")
		traceFile   = fs.String("trace", "", "write one trace record per trial as JSON Lines to FILE (- = stdout)")
		metricsAddr = fs.String("metrics-addr", "", "after the trials, serve Prometheus metrics on ADDR until interrupted")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *size < 2 || *trials < 1 {
		fmt.Fprintln(stderr, "xbarsim: need -size ≥ 2 and -trials ≥ 1")
		return 2
	}
	if *parallel < 0 {
		fmt.Fprintln(stderr, "xbarsim: need -parallel ≥ 0")
		return 2
	}
	if *faults > 0 {
		// The density range check does not depend on the trial index, so
		// fail fast before spinning up workers.
		fm := memristor.FaultModel{StuckOnDensity: *faults / 2, StuckOffDensity: *faults / 2, Seed: *seed}
		if err := fm.Validate(); err != nil {
			fmt.Fprintf(stderr, "xbarsim: %v\n", err)
			return 2
		}
	}

	// Trace records are replayed from the results slice after the workers
	// finish, so the stream is in trial order for every -parallel width.
	var sinks trace.Multi
	var jsonl *trace.JSONL
	if *traceFile != "" {
		traceW := io.Writer(stdout)
		if *traceFile != "-" {
			f, err := os.Create(*traceFile)
			if err != nil {
				fmt.Fprintf(stderr, "xbarsim: %v\n", err)
				return 1
			}
			defer f.Close()
			traceW = f
		}
		jsonl = trace.NewJSONL(traceW)
		sinks = append(sinks, jsonl)
	}
	var metrics *trace.Metrics
	if *metricsAddr != "" {
		metrics = trace.NewMetrics()
		sinks = append(sinks, metrics)
	}

	// SIGINT stops dispatching further trials; statistics over the completed
	// trials are still reported.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := trialConfig{
		size: *size, varPct: *varPct, ioBits: *ioBits, writeBits: *writeBits,
		wire: *wire, faults: *faults, retries: *retries, seed: *seed,
	}
	width := *parallel
	if width == 0 {
		width = runtime.GOMAXPROCS(0)
	}
	if width > *trials {
		width = *trials
	}

	results := make([]trialResult, *trials)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for trial := range jobs {
				results[trial] = runTrial(cfg, trial)
			}
		}()
	}
	dispatched := 0
	for trial := 0; trial < *trials; trial++ {
		if ctx.Err() != nil {
			break
		}
		jobs <- trial
		dispatched++
	}
	close(jobs)
	wg.Wait()

	var mvErrs, solveErrs []float64
	var stuckOn, stuckOff, solveFailures int
	var retriesUsed int64
	for trial, r := range results[:dispatched] {
		if r.err != nil {
			fmt.Fprintf(stderr, "xbarsim: %v\n", r.err)
			return 1
		}
		if len(sinks) > 0 {
			status := "ok"
			if r.solveFailed {
				status = "solve-failed"
			}
			sinks.Emit(trace.Record{
				Engine:              "xbarsim",
				Event:               trace.EventTrial,
				Status:              status,
				Problem:             trial,
				Attempt:             1,
				PrimalInfeasibility: r.mvErr,
				DualInfeasibility:   r.solveErr,
				WriteRetries:        r.retriesUsed,
				NoiseEpoch:          *seed + int64(trial),
			})
		}
		mvErrs = append(mvErrs, r.mvErr)
		stuckOn += r.stuckOn
		stuckOff += r.stuckOff
		retriesUsed += r.retriesUsed
		switch {
		case r.solveFailed:
			solveFailures++
		case r.solveOK:
			solveErrs = append(solveErrs, r.solveErr)
		}
	}
	if dispatched < *trials {
		if dispatched == 0 {
			fmt.Fprintln(stderr, "xbarsim: interrupted before any trial completed")
			return 1
		}
		fmt.Fprintf(stderr, "xbarsim: interrupted after %d/%d trials\n", dispatched, *trials)
	}

	fmt.Fprintf(stdout, "crossbar %dx%d, variation %.0f%%, %d-bit I/O, %d-bit writes, wire %.2g Ω (%d trials)\n",
		*size, *size, *varPct*100, *ioBits, *writeBits, *wire, *trials)
	if *faults > 0 {
		fmt.Fprintf(stdout, "  faults: density %.3g%% → %d stuck-ON, %d stuck-OFF across %d trials; %d analog solves failed\n",
			*faults*100, stuckOn, stuckOff, len(mvErrs), solveFailures)
	}
	if *retries > 0 {
		fmt.Fprintf(stdout, "  write-verify: %d corrective pulses (≤%d per cell)\n", retriesUsed, *retries)
	}
	report(stdout, "mat-vec relative error", mvErrs)
	report(stdout, "solve   relative error", solveErrs)
	if jsonl != nil {
		if err := jsonl.Err(); err != nil {
			fmt.Fprintf(stderr, "xbarsim: trace stream: %v\n", err)
			return 1
		}
	}
	if metrics != nil {
		return serveMetrics(ctx, *metricsAddr, metrics, stdout, stderr)
	}
	return 0
}

// serveMetrics exposes m in Prometheus text format on addr/metrics until ctx
// is canceled.
func serveMetrics(ctx context.Context, addr string, m *trace.Metrics, stdout, stderr io.Writer) int {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = m.WriteProm(w)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "xbarsim: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "metrics: serving on http://%s/metrics (interrupt to exit)\n", ln.Addr())
	srv := &http.Server{Handler: mux}
	go func() {
		<-ctx.Done()
		_ = srv.Shutdown(context.Background())
	}()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "xbarsim: %v\n", err)
		return 1
	}
	return 0
}

// runTrial builds one crossbar under the configured non-idealities, draws
// this trial's instance from its own (seed + trial) stream, and measures the
// analog errors.
func runTrial(cfg trialConfig, trial int) trialResult {
	var res trialResult
	r := rand.New(rand.NewSource(cfg.seed + int64(trial)))
	xcfg := crossbar.Config{
		Size:            cfg.size,
		IOBits:          cfg.ioBits,
		WriteBits:       cfg.writeBits,
		WireResistance:  cfg.wire,
		MaxWriteRetries: cfg.retries,
	}
	if cfg.faults > 0 {
		xcfg.Faults = &memristor.FaultModel{
			StuckOnDensity:  cfg.faults / 2,
			StuckOffDensity: cfg.faults / 2,
			Seed:            cfg.seed + int64(trial),
		}
	}
	if cfg.varPct > 0 {
		vm, err := variation.NewPaperModel(cfg.varPct, cfg.seed+int64(trial))
		if err != nil {
			res.err = err
			return res
		}
		xcfg.Variation = vm
	}
	xb, err := crossbar.New(xcfg)
	if err != nil {
		res.err = err
		return res
	}

	a := linalg.NewMatrix(cfg.size, cfg.size)
	for i := 0; i < cfg.size; i++ {
		for j := 0; j < cfg.size; j++ {
			a.Set(i, j, r.Float64()*3)
		}
		a.Set(i, i, a.At(i, i)+6+r.Float64()*6)
	}
	if err := xb.Program(a); err != nil {
		res.err = fmt.Errorf("program: %w", err)
		return res
	}
	census := xb.FaultCensus()
	res.stuckOn = census.StuckOn
	res.stuckOff = census.StuckOff
	res.retriesUsed = xb.Counters().WriteRetries

	v := linalg.NewVector(cfg.size)
	for i := range v {
		v[i] = r.Float64()*2 - 1
	}
	got, err := xb.MatVec(v)
	if err != nil {
		res.err = fmt.Errorf("matvec: %w", err)
		return res
	}
	want, err := a.MatVec(v)
	if err != nil {
		res.err = err
		return res
	}
	res.mvErr = relErr(got, want)

	b := linalg.NewVector(cfg.size)
	for i := range b {
		b[i] = r.Float64()*2 - 1
	}
	sol, err := xb.Solve(b)
	if err != nil {
		// Stuck cells can make the analog network singular; that is a
		// data point, not a tool failure.
		if cfg.faults > 0 {
			res.solveFailed = true
			return res
		}
		res.err = fmt.Errorf("solve: %w", err)
		return res
	}
	exact, err := linalg.SolveDense(a, b)
	if err != nil {
		res.err = err
		return res
	}
	res.solveErr = relErr(sol, exact)
	res.solveOK = true
	return res
}

// relErr returns ‖got − want‖∞ / (1 + ‖want‖∞).
func relErr(got, want linalg.Vector) float64 {
	var worst float64
	for i := range want {
		d := math.Abs(got[i] - want[i])
		if d > worst {
			worst = d
		}
	}
	return worst / (1 + want.NormInf())
}

func report(w io.Writer, label string, errs []float64) {
	if len(errs) == 0 {
		fmt.Fprintf(w, "  %s: no successful trials\n", label)
		return
	}
	sort.Float64s(errs)
	var sum float64
	for _, e := range errs {
		sum += e
	}
	mean := sum / float64(len(errs))
	median := errs[len(errs)/2]
	worst := errs[len(errs)-1]
	fmt.Fprintf(w, "  %s: mean %.4g%%  median %.4g%%  worst %.4g%%\n",
		label, mean*100, median*100, worst*100)
}
