package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/memlp/memlp/internal/linalg"
)

func TestRunReportsErrorStats(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-size", "12", "-trials", "3", "-variation", "0.1"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
	s := out.String()
	if !strings.Contains(s, "mat-vec relative error") || !strings.Contains(s, "solve   relative error") {
		t.Errorf("missing stats:\n%s", s)
	}
	if !strings.Contains(s, "variation 10%") {
		t.Errorf("missing config echo:\n%s", s)
	}
}

func TestRunIdealIsAccurate(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-size", "10", "-trials", "2", "-iobits", "16", "-writebits", "16"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
}

func TestRunBadArgs(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-size", "1"}, &out, &errBuf); code != 2 {
		t.Fatalf("size=1 exit = %d, want 2", code)
	}
	if code := run([]string{"-trials", "0"}, &out, &errBuf); code != 2 {
		t.Fatalf("trials=0 exit = %d, want 2", code)
	}
	if code := run([]string{"-iobits", "99"}, &out, &errBuf); code != 1 {
		t.Fatalf("iobits=99 exit = %d, want 1", code)
	}
}

// TestRunParallelWidthIndependent pins the -parallel contract: per-trial
// seeding makes the reported statistics identical for every worker count.
func TestRunParallelWidthIndependent(t *testing.T) {
	outputs := make([]string, 0, 3)
	for _, par := range []string{"1", "3", "8"} {
		var out, errBuf bytes.Buffer
		code := run([]string{"-size", "10", "-trials", "6", "-variation", "0.1",
			"-faults", "0.02", "-seed", "5", "-parallel", par}, &out, &errBuf)
		if code != 0 {
			t.Fatalf("parallel=%s: exit = %d, stderr = %s", par, code, errBuf.String())
		}
		outputs = append(outputs, out.String())
	}
	for i, s := range outputs[1:] {
		if s != outputs[0] {
			t.Errorf("output differs between -parallel 1 and -parallel %d:\n%s\nvs\n%s",
				[]int{3, 8}[i], outputs[0], s)
		}
	}
}

func TestRunBadParallel(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-parallel", "-2"}, &out, &errBuf); code != 2 {
		t.Fatalf("parallel=-2 exit = %d, want 2", code)
	}
}

func TestRelErr(t *testing.T) {
	got := linalg.VectorOf(1, 2, 3)
	want := linalg.VectorOf(1, 2, 4)
	if e := relErr(got, want); e != 1.0/5.0 {
		t.Errorf("relErr = %v, want 0.2", e)
	}
	if e := relErr(want, want); e != 0 {
		t.Errorf("identical relErr = %v, want 0", e)
	}
}
