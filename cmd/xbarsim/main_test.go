package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/memlp/memlp/internal/linalg"
)

func TestRunReportsErrorStats(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-size", "12", "-trials", "3", "-variation", "0.1"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
	s := out.String()
	if !strings.Contains(s, "mat-vec relative error") || !strings.Contains(s, "solve   relative error") {
		t.Errorf("missing stats:\n%s", s)
	}
	if !strings.Contains(s, "variation 10%") {
		t.Errorf("missing config echo:\n%s", s)
	}
}

func TestRunIdealIsAccurate(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-size", "10", "-trials", "2", "-iobits", "16", "-writebits", "16"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
}

func TestRunBadArgs(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-size", "1"}, &out, &errBuf); code != 2 {
		t.Fatalf("size=1 exit = %d, want 2", code)
	}
	if code := run([]string{"-trials", "0"}, &out, &errBuf); code != 2 {
		t.Fatalf("trials=0 exit = %d, want 2", code)
	}
	if code := run([]string{"-iobits", "99"}, &out, &errBuf); code != 1 {
		t.Fatalf("iobits=99 exit = %d, want 1", code)
	}
}

func TestRelErr(t *testing.T) {
	got := linalg.VectorOf(1, 2, 3)
	want := linalg.VectorOf(1, 2, 4)
	if e := relErr(got, want); e != 1.0/5.0 {
		t.Errorf("relErr = %v, want 0.2", e)
	}
	if e := relErr(want, want); e != 0 {
		t.Errorf("identical relErr = %v, want 0", e)
	}
}
