package main

import (
	"bytes"
	"strings"
	"testing"
)

const tinyProblem = `name tiny
maximize 3 2
subject 1 1 <= 4
subject 1 3 <= 6
`

func TestRunSolvesFromStdin(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-engine", "simplex"}, strings.NewReader(tinyProblem), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
	s := out.String()
	if !strings.Contains(s, "status:     optimal") {
		t.Errorf("missing status in output:\n%s", s)
	}
	if !strings.Contains(s, "objective:  12") {
		t.Errorf("missing objective in output:\n%s", s)
	}
}

func TestRunCrossbarEngineReportsHardware(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-engine", "crossbar", "-variation", "0.1", "-v"},
		strings.NewReader(tinyProblem), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "hardware:") {
		t.Errorf("missing hardware estimate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "x:") {
		t.Errorf("missing -v solution vector:\n%s", out.String())
	}
}

func TestRunUnknownEngine(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-engine", "quantum"}, strings.NewReader(tinyProblem), &out, &errBuf)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "unknown engine") {
		t.Errorf("stderr = %s", errBuf.String())
	}
}

func TestRunBadProblem(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run(nil, strings.NewReader("nonsense"), &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

func TestRunMissingFile(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"/nonexistent/problem.lp"}, strings.NewReader(""), &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

func TestEngineByName(t *testing.T) {
	for _, name := range []string{"crossbar", "crossbar-large-scale", "pdip", "pdip-reduced", "simplex"} {
		if _, ok := engineByName(name); !ok {
			t.Errorf("engineByName(%q) not found", name)
		}
	}
	if _, ok := engineByName("nope"); ok {
		t.Error("engineByName accepted garbage")
	}
}

func TestRunMPSFormat(t *testing.T) {
	const mps = `NAME T
ROWS
 N COST
 L R1
 L R2
COLUMNS
 X COST -3 R1 1
 X R2 1
 Y COST -2 R1 1
 Y R2 3
RHS
 R R1 4 R2 6
ENDATA
`
	var out, errBuf bytes.Buffer
	code := run([]string{"-engine", "simplex", "-format", "mps"}, strings.NewReader(mps), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "objective:  12") {
		t.Errorf("objective missing:\n%s", out.String())
	}
}
