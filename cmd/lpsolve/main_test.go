package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const tinyProblem = `name tiny
maximize 3 2
subject 1 1 <= 4
subject 1 3 <= 6
`

func TestRunSolvesFromStdin(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-engine", "simplex"}, strings.NewReader(tinyProblem), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
	s := out.String()
	if !strings.Contains(s, "status:     optimal") {
		t.Errorf("missing status in output:\n%s", s)
	}
	if !strings.Contains(s, "objective:  12") {
		t.Errorf("missing objective in output:\n%s", s)
	}
}

func TestRunCrossbarEngineReportsHardware(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-engine", "crossbar", "-variation", "0.1", "-v"},
		strings.NewReader(tinyProblem), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "hardware:") {
		t.Errorf("missing hardware estimate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "x:") {
		t.Errorf("missing -v solution vector:\n%s", out.String())
	}
}

// socpProblem is the circle fixture: max x₀+x₁ with ‖x‖ ≤ 3, optimum 3√2.
const socpProblem = `name circle
maximize 1 1
subject 1 1 <= 5
subject 0 0 <= 3
subject 1 0 <= 0
subject 0 1 <= 0
cone nonneg 1
cone soc 3
`

func TestRunConicEngine(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-engine", "conic", "-v"}, strings.NewReader(socpProblem), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
	s := out.String()
	if !strings.Contains(s, "status:     optimal") {
		t.Errorf("missing optimal status:\n%s", s)
	}
	// ~3√2 ≈ 4.243, within the analog accuracy floor.
	if !strings.Contains(s, "objective:  4.2") {
		t.Errorf("objective not ~3√2:\n%s", s)
	}
	if !strings.Contains(s, "cone inf:") {
		t.Errorf("missing cone infeasibility line:\n%s", s)
	}
	if !strings.Contains(s, "hardware:") {
		t.Errorf("conic engine should report hardware estimate:\n%s", s)
	}
}

func TestRunConicRejectedByCrossbar(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-engine", "crossbar"}, strings.NewReader(socpProblem), &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "conic") {
		t.Errorf("stderr should point at the conic engine: %s", errBuf.String())
	}
}

func TestRunUnknownEngine(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-engine", "quantum"}, strings.NewReader(tinyProblem), &out, &errBuf)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "unknown engine") {
		t.Errorf("stderr = %s", errBuf.String())
	}
}

func TestRunBadProblem(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run(nil, strings.NewReader("nonsense"), &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

func TestRunMissingFile(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"/nonexistent/problem.lp"}, strings.NewReader(""), &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

func TestEngineByName(t *testing.T) {
	for _, name := range []string{"crossbar", "crossbar-large-scale", "conic", "pdhg", "pdip", "pdip-reduced", "simplex"} {
		if _, ok := engineByName(name); !ok {
			t.Errorf("engineByName(%q) not found", name)
		}
	}
	if _, ok := engineByName("nope"); ok {
		t.Error("engineByName accepted garbage")
	}
}

// writeTempProblem drops a problem file for the batch tests; the instances
// share tinyProblem's constraint matrix with per-file right-hand sides.
func writeTempProblem(t *testing.T, name string, rhs1, rhs2 float64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name+".lp")
	content := fmt.Sprintf("name %s\nmaximize 3 2\nsubject 1 1 <= %g\nsubject 1 3 <= %g\n", name, rhs1, rhs2)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBatchMultipleFiles(t *testing.T) {
	f1 := writeTempProblem(t, "first", 4, 6)
	f2 := writeTempProblem(t, "second", 5, 6)
	f3 := writeTempProblem(t, "third", 6, 6)
	var out, errBuf bytes.Buffer
	code := run([]string{"-engine", "crossbar", "-parallel", "2", f1, f2, f3},
		strings.NewReader(""), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
	s := out.String()
	if !strings.Contains(s, "batch:      3 problems") {
		t.Errorf("missing batch header:\n%s", s)
	}
	for _, name := range []string{"first", "second", "third"} {
		if !strings.Contains(s, name) {
			t.Errorf("missing result line for %q:\n%s", name, s)
		}
	}
	if !strings.Contains(s, "pool:       2 replicas") {
		t.Errorf("missing pool roll-up:\n%s", s)
	}
	if !strings.Contains(s, "hardware:") {
		t.Errorf("missing hardware line:\n%s", s)
	}
}

func TestRunBatchRequiresCrossbar(t *testing.T) {
	f1 := writeTempProblem(t, "a", 4, 6)
	f2 := writeTempProblem(t, "b", 5, 6)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-engine", "simplex", f1, f2}, strings.NewReader(""), &out, &errBuf); code != 2 {
		t.Fatalf("batch on simplex: exit = %d, want 2", code)
	}
	if code := run([]string{"-engine", "simplex", "-parallel", "2", f1}, strings.NewReader(""), &out, &errBuf); code != 2 {
		t.Fatalf("-parallel on simplex: exit = %d, want 2", code)
	}
}

func TestRunMPSFormat(t *testing.T) {
	const mps = `NAME T
ROWS
 N COST
 L R1
 L R2
COLUMNS
 X COST -3 R1 1
 X R2 1
 Y COST -2 R1 1
 Y R2 3
RHS
 R R1 4 R2 6
ENDATA
`
	var out, errBuf bytes.Buffer
	code := run([]string{"-engine", "simplex", "-format", "mps"}, strings.NewReader(mps), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "objective:  12") {
		t.Errorf("objective missing:\n%s", out.String())
	}
}
