// Command lpsolve solves a linear program from a file (or stdin) with any of
// the library's engines and reports the solution together with, for crossbar
// engines, the modelled hardware latency and energy.
//
// Usage:
//
//	lpsolve [-engine crossbar] [-variation 0.1] [-seed 1] [-noc mesh -tile 512] problem.lp
//
// Engines: crossbar (the paper's Algorithm 1), crossbar-large-scale
// (Algorithm 2), pdip (software full-Newton baseline), pdip-reduced
// (software reduced-KKT baseline), simplex.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"github.com/memlp/memlp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lpsolve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		engineName = fs.String("engine", "crossbar", "solver engine: crossbar | crossbar-large-scale | pdip | pdip-reduced | simplex")
		varPct     = fs.Float64("variation", 0, "process variation magnitude for crossbar engines (e.g. 0.1)")
		seed       = fs.Int64("seed", 1, "random seed for variation draws")
		nocTopo    = fs.String("noc", "", "run on a tiled NoC fabric: hierarchical | mesh")
		tile       = fs.Int("tile", 512, "NoC tile (crossbar) size")
		verbose    = fs.Bool("v", false, "print the solution vector")
		format     = fs.String("format", "", "input format: text (default) | mps; .mps files are auto-detected")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	in := stdin
	mps := false
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "lpsolve: %v\n", err)
			return 1
		}
		defer f.Close()
		in = f
		mps = strings.HasSuffix(strings.ToLower(fs.Arg(0)), ".mps")
	}
	read := memlp.ReadProblem
	if mps || *format == "mps" {
		read = memlp.ReadProblemMPS
	}
	p, err := read(in)
	if err != nil {
		fmt.Fprintf(stderr, "lpsolve: %v\n", err)
		return 1
	}

	engine, ok := engineByName(*engineName)
	if !ok {
		fmt.Fprintf(stderr, "lpsolve: unknown engine %q\n", *engineName)
		return 2
	}

	// Hardware options only apply to the crossbar engines; passing them to a
	// software engine would be rejected by memlp.NewSolver.
	crossbarEngine := engine == memlp.EngineCrossbar || engine == memlp.EngineCrossbarLargeScale
	var opts []memlp.Option
	if crossbarEngine {
		if *varPct > 0 {
			opts = append(opts, memlp.WithVariation(*varPct))
		}
		opts = append(opts, memlp.WithSeed(*seed))
		if *nocTopo != "" {
			opts = append(opts, memlp.WithNoC(*nocTopo, *tile))
		}
	} else if *varPct > 0 || *nocTopo != "" {
		fmt.Fprintf(stderr, "lpsolve: -variation and -noc require a crossbar engine\n")
		return 2
	}

	solver, err := memlp.NewSolver(engine, opts...)
	if err != nil {
		fmt.Fprintf(stderr, "lpsolve: %v\n", err)
		return 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	sol, err := solver.Solve(ctx, p)
	if err != nil {
		fmt.Fprintf(stderr, "lpsolve: %v\n", err)
		return 1
	}

	fmt.Fprintf(stdout, "problem:    %s (%d constraints, %d variables)\n",
		p.Name(), p.NumConstraints(), p.NumVariables())
	fmt.Fprintf(stdout, "engine:     %s\n", engine)
	fmt.Fprintf(stdout, "status:     %s\n", sol.Status)
	fmt.Fprintf(stdout, "objective:  %.6g\n", sol.Objective)
	if sol.Iterations > 0 {
		fmt.Fprintf(stdout, "iterations: %d\n", sol.Iterations)
	}
	if sol.Pivots > 0 {
		fmt.Fprintf(stdout, "pivots:     %d\n", sol.Pivots)
	}
	fmt.Fprintf(stdout, "wall time:  %v\n", sol.WallTime)
	if hw := sol.Hardware; hw != nil {
		fmt.Fprintf(stdout, "hardware:   %v latency, %.4g J (%d cell writes, %d analog ops)\n",
			hw.Latency, hw.EnergyJoules, hw.CellWrites, hw.AnalogOps)
	}
	if *verbose && sol.X != nil {
		fmt.Fprint(stdout, "x:         ")
		for _, v := range sol.X {
			fmt.Fprintf(stdout, " %.6g", v)
		}
		fmt.Fprintln(stdout)
	}
	return 0
}

func engineByName(name string) (memlp.Engine, bool) {
	switch name {
	case "crossbar":
		return memlp.EngineCrossbar, true
	case "crossbar-large-scale":
		return memlp.EngineCrossbarLargeScale, true
	case "pdip":
		return memlp.EnginePDIP, true
	case "pdip-reduced":
		return memlp.EnginePDIPReduced, true
	case "simplex":
		return memlp.EngineSimplex, true
	default:
		return 0, false
	}
}
