// Command lpsolve solves a linear program from a file (or stdin) with any of
// the library's engines and reports the solution together with, for crossbar
// engines, the modelled hardware latency and energy.
//
// Usage:
//
//	lpsolve [-engine crossbar] [-variation 0.1] [-seed 1] [-noc mesh -tile 512] problem.lp
//	lpsolve -parallel 4 batch0.lp batch1.lp batch2.lp ...
//
// Engines: crossbar (the paper's Algorithm 1), crossbar-large-scale
// (Algorithm 2), conic (Algorithm 1 extended to second-order cone programs),
// pdhg (distributed first-order PDHG tiled across many crossbars — use
// -tiles to set the worker grid), pdip (software full-Newton baseline),
// pdip-reduced (software reduced-KKT baseline), simplex.
//
// With more than one problem file the crossbar engine solves them as one
// batch on a sharded fabric pool: the problems must share a constraint
// matrix (only objectives and right-hand sides may differ), the shared
// system is programmed once per pool shard, and -parallel sets the pool
// width (0 = one shard per CPU). Results are independent of the width.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"

	"github.com/memlp/memlp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lpsolve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		engineName  = fs.String("engine", "crossbar", "solver engine: crossbar | crossbar-large-scale | conic | pdhg | pdip | pdip-reduced | simplex")
		varPct      = fs.Float64("variation", 0, "process variation magnitude for crossbar engines (e.g. 0.1)")
		deltaBits   = fs.Int("delta-bits", 8, "delta-programming level grid width for crossbar engines; 0 rewrites every cell each refresh")
		seed        = fs.Int64("seed", 1, "random seed for variation draws")
		nocTopo     = fs.String("noc", "", "run on a tiled NoC fabric: hierarchical | mesh")
		tile        = fs.Int("tile", 512, "NoC tile (crossbar) size")
		parallel    = fs.Int("parallel", 0, "fabric-pool width for multi-file batches (0 = one shard per CPU; crossbar engine only)")
		tiles       = fs.Int("tiles", 0, "PDHG worker-grid side: tiles² goroutines sweep the crossbar tiles (pdhg engine only; results are identical for every value)")
		verbose     = fs.Bool("v", false, "print the solution vector")
		format      = fs.String("format", "", "input format: text (default) | mps; .mps files are auto-detected")
		traceFile   = fs.String("trace", "", "write per-iteration trace records as JSON Lines to FILE (- = stdout)")
		metricsAddr = fs.String("metrics-addr", "", "after solving, serve Prometheus metrics on ADDR (e.g. :9090) until interrupted")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	problems, code := readProblems(fs.Args(), *format, stdin, stderr)
	if code != 0 {
		return code
	}

	engine, ok := engineByName(*engineName)
	if !ok {
		fmt.Fprintf(stderr, "lpsolve: unknown engine %q\n", *engineName)
		return 2
	}

	// Hardware options only apply to the crossbar engines; passing them to a
	// software engine would be rejected by memlp.NewSolver. Batching (and so
	// -parallel) is Algorithm 1 only.
	crossbarEngine := engine == memlp.EngineCrossbar || engine == memlp.EngineCrossbarLargeScale ||
		engine == memlp.EngineConic || engine == memlp.EnginePDHG
	var opts []memlp.Option
	if crossbarEngine {
		if *varPct > 0 {
			opts = append(opts, memlp.WithVariation(*varPct))
		}
		opts = append(opts, memlp.WithSeed(*seed))
		opts = append(opts, memlp.WithDeltaWriteBits(*deltaBits))
		if *nocTopo != "" {
			opts = append(opts, memlp.WithNoC(*nocTopo, *tile))
		}
	} else if *varPct > 0 || *nocTopo != "" || *deltaBits != 8 {
		fmt.Fprintf(stderr, "lpsolve: -variation, -delta-bits, and -noc require a crossbar engine\n")
		return 2
	}
	if engine == memlp.EnginePDHG {
		if *tiles > 0 {
			opts = append(opts, memlp.WithTiles(*tiles))
		}
	} else if *tiles != 0 {
		fmt.Fprintf(stderr, "lpsolve: -tiles requires the pdhg engine\n")
		return 2
	}
	if engine == memlp.EngineCrossbar {
		opts = append(opts, memlp.WithParallelism(*parallel))
	} else if *parallel != 0 || len(problems) > 1 {
		fmt.Fprintf(stderr, "lpsolve: -parallel and multi-file batches require the crossbar engine\n")
		return 2
	}

	if *traceFile != "" {
		traceW := io.Writer(stdout)
		if *traceFile != "-" {
			f, err := os.Create(*traceFile)
			if err != nil {
				fmt.Fprintf(stderr, "lpsolve: %v\n", err)
				return 1
			}
			defer f.Close()
			traceW = f
		}
		opts = append(opts, memlp.WithTraceJSONL(traceW))
	}
	var metrics *memlp.Metrics
	if *metricsAddr != "" {
		metrics = memlp.NewMetrics()
		opts = append(opts, memlp.WithTrace(0))
	}

	solver, err := memlp.NewSolver(engine, opts...)
	if err != nil {
		fmt.Fprintf(stderr, "lpsolve: %v\n", err)
		return 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if len(problems) > 1 {
		code := runBatch(ctx, solver, engine, problems, *verbose, metrics, stdout, stderr)
		return finishObservability(ctx, code, solver, metrics, *metricsAddr, stdout, stderr)
	}

	p := problems[0]
	sol, err := solver.Solve(ctx, p)
	if err != nil {
		fmt.Fprintf(stderr, "lpsolve: %v\n", err)
		return 1
	}
	if metrics != nil {
		metrics.Observe(sol)
	}

	fmt.Fprintf(stdout, "problem:    %s (%d constraints, %d variables)\n",
		p.Name(), p.NumConstraints(), p.NumVariables())
	fmt.Fprintf(stdout, "engine:     %s\n", engine)
	fmt.Fprintf(stdout, "status:     %s\n", sol.Status)
	fmt.Fprintf(stdout, "objective:  %.6g\n", sol.Objective)
	if p.IsConic() {
		fmt.Fprintf(stdout, "cone inf:   %.3g\n", sol.ConeInfeasibility)
	}
	if sol.Iterations > 0 {
		fmt.Fprintf(stdout, "iterations: %d\n", sol.Iterations)
	}
	if sol.Pivots > 0 {
		fmt.Fprintf(stdout, "pivots:     %d\n", sol.Pivots)
	}
	fmt.Fprintf(stdout, "wall time:  %v\n", sol.WallTime)
	if hw := sol.Hardware; hw != nil {
		fmt.Fprintf(stdout, "hardware:   %v latency, %.4g J (%d cell writes, %d skipped, %d analog ops)\n",
			hw.Latency, hw.EnergyJoules, hw.CellWrites, hw.CellsSkipped, hw.AnalogOps)
	}
	if *verbose && sol.X != nil {
		printVector(stdout, sol.X)
	}
	return finishObservability(ctx, 0, solver, metrics, *metricsAddr, stdout, stderr)
}

// finishObservability reports latched trace-stream errors and, when
// -metrics-addr is set, serves the aggregated metrics until interrupted.
func finishObservability(ctx context.Context, code int, solver *memlp.Solver, metrics *memlp.Metrics, addr string, stdout, stderr io.Writer) int {
	if err := solver.TraceErr(); err != nil {
		fmt.Fprintf(stderr, "lpsolve: trace stream: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	if metrics == nil || code != 0 {
		return code
	}
	return serveMetrics(ctx, addr, metrics, stdout, stderr)
}

// serveMetrics exposes m in Prometheus text format on addr/metrics (and a
// compact JSON summary on addr/vars) until ctx is canceled.
func serveMetrics(ctx context.Context, addr string, m *memlp.Metrics, stdout, stderr io.Writer) int {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = m.WritePrometheus(w)
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, m.String())
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "lpsolve: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "metrics:    serving on http://%s/metrics (interrupt to exit)\n", ln.Addr())
	srv := &http.Server{Handler: mux}
	go func() {
		<-ctx.Done()
		_ = srv.Shutdown(context.Background())
	}()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "lpsolve: %v\n", err)
		return 1
	}
	return 0
}

// readProblems reads one problem per file argument, or a single problem from
// stdin when no files are given.
func readProblems(paths []string, format string, stdin io.Reader, stderr io.Writer) ([]*memlp.Problem, int) {
	readOne := func(in io.Reader, mps bool) (*memlp.Problem, error) {
		read := memlp.ReadProblem
		if mps || format == "mps" {
			read = memlp.ReadProblemMPS
		}
		return read(in)
	}
	if len(paths) == 0 {
		p, err := readOne(stdin, false)
		if err != nil {
			fmt.Fprintf(stderr, "lpsolve: %v\n", err)
			return nil, 1
		}
		return []*memlp.Problem{p}, 0
	}
	problems := make([]*memlp.Problem, 0, len(paths))
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(stderr, "lpsolve: %v\n", err)
			return nil, 1
		}
		p, err := readOne(f, strings.HasSuffix(strings.ToLower(path), ".mps"))
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "lpsolve: %s: %v\n", path, err)
			return nil, 1
		}
		problems = append(problems, p)
	}
	return problems, 0
}

// runBatch solves a multi-file batch on the crossbar engine's fabric pool
// and prints one line per problem plus the pool roll-up. On interruption the
// completed prefix is still printed.
func runBatch(ctx context.Context, solver *memlp.Solver, engine memlp.Engine, problems []*memlp.Problem, verbose bool, metrics *memlp.Metrics, stdout, stderr io.Writer) int {
	first := problems[0]
	fmt.Fprintf(stdout, "batch:      %d problems (%d constraints, %d variables each)\n",
		len(problems), first.NumConstraints(), first.NumVariables())
	fmt.Fprintf(stdout, "engine:     %s\n", engine)

	sols, err := solver.SolveBatch(ctx, problems)
	if metrics != nil {
		metrics.ObserveAll(sols)
	}
	for i, sol := range sols {
		fmt.Fprintf(stdout, "[%3d] %-20s %-12s objective %-14.6g %d iters\n",
			i, problems[i].Name(), sol.Status, sol.Objective, sol.Iterations)
		if verbose && sol.X != nil {
			printVector(stdout, sol.X)
		}
	}
	if len(sols) > 0 {
		if bs := sols[0].Batch; bs != nil {
			fmt.Fprintf(stdout, "pool:       %d replicas, solves per shard %v\n", bs.Replicas, bs.ShardSolves)
		}
		if hw := sols[0].Hardware; hw != nil {
			fmt.Fprintf(stdout, "hardware:   %v latency, %.4g J (%d cell writes, %d skipped, %d analog ops; pool programming charged here)\n",
				hw.Latency, hw.EnergyJoules, hw.CellWrites, hw.CellsSkipped, hw.AnalogOps)
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "lpsolve: %v (%d/%d problems finished)\n", err, len(sols), len(problems))
		return 1
	}
	return 0
}

func printVector(stdout io.Writer, x []float64) {
	fmt.Fprint(stdout, "x:         ")
	for _, v := range x {
		fmt.Fprintf(stdout, " %.6g", v)
	}
	fmt.Fprintln(stdout)
}

func engineByName(name string) (memlp.Engine, bool) {
	switch name {
	case "crossbar":
		return memlp.EngineCrossbar, true
	case "crossbar-large-scale":
		return memlp.EngineCrossbarLargeScale, true
	case "conic":
		return memlp.EngineConic, true
	case "pdip":
		return memlp.EnginePDIP, true
	case "pdip-reduced":
		return memlp.EnginePDIPReduced, true
	case "simplex":
		return memlp.EngineSimplex, true
	case "pdhg":
		return memlp.EnginePDHG, true
	default:
		return 0, false
	}
}
