package memlp_test

// One benchmark per table and figure of the paper's evaluation (§4), plus
// the DESIGN.md ablations. Each benchmark drives the same harness as
// cmd/benchtables at a reduced per-iteration scale, and reports the paper's
// key quantities as custom benchmark metrics (relative error in percent,
// modelled hardware latency and energy, speed-up factors) so `go test
// -bench` output captures the reproduction figures directly.
//
// External test package: internal/experiments transitively imports memlp
// (through the serving layer), which an in-package test file may not.
//
// The full paper-scale sweep (m up to 1024, 100 trials per point) is run via
// `go run ./cmd/benchtables -sizes 4,16,64,256,1024 -trials 100`; the
// benchmarks here use small instance counts so the whole suite stays
// minutes, not hours.

import (
	"testing"

	"github.com/memlp/memlp/internal/experiments"
)

// benchConfig is the reduced-scale configuration shared by the benchmarks.
func benchConfig() experiments.Config {
	return experiments.Config{
		Sizes:      []int{16, 64},
		Variations: []float64{0, 0.10},
		Trials:     2,
	}
}

// BenchmarkFig5aAccuracy reproduces Fig. 5(a): Algorithm 1 objective error
// versus the software reference across sizes and variation levels.
func BenchmarkFig5aAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Accuracy(experiments.Algorithm1, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.MeanRelErr*100, "relerr-%")
		b.ReportMetric(last.MeanIterations, "iters")
	}
}

// BenchmarkFig5bAccuracy reproduces Fig. 5(b): Algorithm 2 accuracy.
func BenchmarkFig5bAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Accuracy(experiments.Algorithm2, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.MeanRelErr*100, "relerr-%")
		b.ReportMetric(last.MeanIterations, "iters")
	}
}

// BenchmarkFig6aLatency reproduces Fig. 6(a): Algorithm 1 modelled hardware
// latency versus measured software baselines.
func BenchmarkFig6aLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.LatencyEnergy(experiments.Algorithm1, benchConfig(), false)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(float64(last.Crossbar.Microseconds()), "hw-µs")
		b.ReportMetric(float64(last.SoftwareReduced.Microseconds()), "sw-µs")
		b.ReportMetric(last.Speedup, "speedup-x")
	}
}

// BenchmarkFig6bLatency reproduces Fig. 6(b): Algorithm 2 latency.
func BenchmarkFig6bLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.LatencyEnergy(experiments.Algorithm2, benchConfig(), false)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(float64(last.Crossbar.Microseconds()), "hw-µs")
		b.ReportMetric(last.Speedup, "speedup-x")
	}
}

// BenchmarkFig7aEnergy reproduces Fig. 7(a): Algorithm 1 modelled energy
// versus the software baseline's measured-time × CPU-power energy.
func BenchmarkFig7aEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.LatencyEnergy(experiments.Algorithm1, benchConfig(), false)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.CrossbarEnergy*1e3, "hw-mJ")
		b.ReportMetric(last.EnergyGain, "gain-x")
	}
}

// BenchmarkFig7bEnergy reproduces Fig. 7(b): Algorithm 2 energy.
func BenchmarkFig7bEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.LatencyEnergy(experiments.Algorithm2, benchConfig(), false)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.CrossbarEnergy*1e3, "hw-mJ")
		b.ReportMetric(last.EnergyGain, "gain-x")
	}
}

// BenchmarkInfeasibleDetection reproduces the §4.4 text comparison:
// how fast contradictory instances are flagged.
func BenchmarkInfeasibleDetection(b *testing.B) {
	cfg := benchConfig()
	cfg.Variations = []float64{0.10}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.InfeasibleDetection(experiments.Algorithm1, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.DetectionRate*100, "detected-%")
		b.ReportMetric(last.Speedup, "speedup-x")
	}
}

// BenchmarkIterationCounts reproduces the §4.3/§4.4 iteration-count
// observations: Algorithm 1's count grows with variation while Algorithm 2's
// stays flat.
func BenchmarkIterationCounts(b *testing.B) {
	cfg := benchConfig()
	cfg.Sizes = []int{16}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.IterationCounts(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.Algorithm1, "alg1-iters")
		b.ReportMetric(last.Algorithm2, "alg2-iters")
	}
}

// BenchmarkVariationSensitivity reproduces the §4.3 "linprog on perturbed
// matrices" check: the intrinsic sensitivity of exact LP optima to static
// coefficient perturbation.
func BenchmarkVariationSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.VariationSensitivity(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.MeanRelErr*100, "relerr-%")
	}
}

// --- ablations (AB1–AB6 in DESIGN.md) ------------------------------------

func ablationBench(b *testing.B, run func() ([]experiments.AblationRow, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := run()
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, r := range rows {
			if r.MeanRelErr > worst {
				worst = r.MeanRelErr
			}
		}
		b.ReportMetric(worst*100, "worst-relerr-%")
	}
}

// BenchmarkAblationConstantStep is AB1: Algorithm 2's θ sweep.
func BenchmarkAblationConstantStep(b *testing.B) {
	cfg := experiments.Config{Trials: 2}
	ablationBench(b, func() ([]experiments.AblationRow, error) {
		return experiments.AblationConstantStep(cfg, 16, []float64{0.2, 0.5})
	})
}

// BenchmarkAblationFillers is AB2: reduced-KKT coupling vs literal εI.
func BenchmarkAblationFillers(b *testing.B) {
	cfg := experiments.Config{Trials: 2}
	ablationBench(b, func() ([]experiments.AblationRow, error) {
		return experiments.AblationFillers(cfg, 16, []float64{0.01})
	})
}

// BenchmarkAblationIOBits is AB3: converter precision sweep.
func BenchmarkAblationIOBits(b *testing.B) {
	cfg := experiments.Config{Trials: 2}
	ablationBench(b, func() ([]experiments.AblationRow, error) {
		return experiments.AblationIOBits(cfg, 16, []int{6, 8})
	})
}

// BenchmarkAblationVariationModel is AB4: variation distribution comparison.
func BenchmarkAblationVariationModel(b *testing.B) {
	cfg := experiments.Config{Trials: 2}
	ablationBench(b, func() ([]experiments.AblationRow, error) {
		return experiments.AblationVariationModel(cfg, 16, 0.10)
	})
}

// BenchmarkAblationNoC is AB5: hierarchical vs mesh interconnect.
func BenchmarkAblationNoC(b *testing.B) {
	cfg := experiments.Config{Trials: 2}
	ablationBench(b, func() ([]experiments.AblationRow, error) {
		return experiments.AblationNoC(cfg, 16, 16)
	})
}

// BenchmarkAblationWriteBits is AB6: write-precision sweep.
func BenchmarkAblationWriteBits(b *testing.B) {
	cfg := experiments.Config{Trials: 2}
	ablationBench(b, func() ([]experiments.AblationRow, error) {
		return experiments.AblationWriteBits(cfg, 16, []int{10, 14})
	})
}
