package memlp

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

// allEngines enumerates every public engine once for table-driven tests.
var allEngines = []Engine{
	EngineCrossbar, EngineCrossbarLargeScale, EnginePDIP, EnginePDIPReduced, EngineSimplex,
}

func TestIncompatibleOptions(t *testing.T) {
	tests := []struct {
		name   string
		engine Engine
		opts   []Option
	}{
		{"variation on pdip", EnginePDIP, []Option{WithVariation(0.1)}},
		{"seed on pdip-reduced", EnginePDIPReduced, []Option{WithSeed(7)}},
		{"iobits on simplex", EngineSimplex, []Option{WithIOBits(8)}},
		{"noc on pdip", EnginePDIP, []Option{WithNoC("mesh", 16)}},
		{"wire resistance on simplex", EngineSimplex, []Option{WithWireResistance(1)}},
		{"constant step on crossbar", EngineCrossbar, []Option{WithConstantStep(0.3)}},
		{"literal fillers on pdip", EnginePDIP, []Option{WithLiteralFillers()}},
		{"max iterations on simplex", EngineSimplex, []Option{WithMaxIterations(10)}},
		{"alpha on simplex", EngineSimplex, []Option{WithAlpha(1.1)}},
		{"fault model on pdip", EnginePDIP, []Option{WithFaultModel(FaultModel{StuckOnDensity: 0.01})}},
		{"write verify on simplex", EngineSimplex, []Option{WithWriteVerify(3, 0.01)}},
		{"parallelism on pdip", EnginePDIP, []Option{WithParallelism(2)}},
		{"parallelism on simplex", EngineSimplex, []Option{WithParallelism(2)}},
		// Batching is Algorithm 1 only; the pool option must be rejected on
		// the serial-only large-scale engine too.
		{"parallelism on large-scale", EngineCrossbarLargeScale, []Option{WithParallelism(2)}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewSolver(tc.engine, tc.opts...)
			if !errors.Is(err, ErrIncompatibleOption) {
				t.Errorf("err = %v, want ErrIncompatibleOption", err)
			}
			if !errors.Is(err, ErrInvalid) {
				t.Errorf("err = %v, should also match ErrInvalid", err)
			}
		})
	}

	// Valid combinations must still construct.
	valid := []struct {
		name   string
		engine Engine
		opts   []Option
	}{
		{"bare simplex", EngineSimplex, nil},
		{"pdip with iterations", EnginePDIP, []Option{WithMaxIterations(50)}},
		{"crossbar full hardware", EngineCrossbar, []Option{
			WithVariation(0.1), WithSeed(2), WithIOBits(8), WithNoC("hierarchical", 16)}},
		{"large-scale alg2 knobs", EngineCrossbarLargeScale, []Option{
			WithConstantStep(0.3), WithLiteralFillers(), WithSeed(1)}},
		{"crossbar fault hardware", EngineCrossbar, []Option{
			WithFaultModel(FaultModel{StuckOnDensity: 0.005, StuckOffDensity: 0.005}),
			WithWriteVerify(3, 0.02)}},
		{"crossbar with parallelism", EngineCrossbar, []Option{
			WithParallelism(4), WithVariation(0.1), WithSeed(3)}},
	}
	for _, tc := range valid {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSolver(tc.engine, tc.opts...)
			if err != nil {
				t.Fatalf("NewSolver: %v", err)
			}
			if s.Engine() != tc.engine {
				t.Errorf("Engine() = %v, want %v", s.Engine(), tc.engine)
			}
		})
	}
}

// TestSolveCanceledContext pins the acceptance criterion: a Solve with an
// already-canceled context returns promptly from every engine with
// StatusCanceled and the wrapped context error, without panicking.
func TestSolveCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := tiny(t)
	for _, eng := range allEngines {
		t.Run(eng.String(), func(t *testing.T) {
			s, err := NewSolver(eng)
			if err != nil {
				t.Fatalf("NewSolver: %v", err)
			}
			start := time.Now()
			sol, err := s.Solve(ctx, p)
			if elapsed := time.Since(start); elapsed > 2*time.Second {
				t.Errorf("canceled solve took %v, want prompt return", elapsed)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if sol == nil {
				t.Fatal("canceled solve returned nil solution")
			}
			if sol.Status != StatusCanceled {
				t.Errorf("status = %v, want %v", sol.Status, StatusCanceled)
			}
		})
	}
}

// TestSolveBatchCanceledContext covers the batching path's cancellation.
func TestSolveBatchCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := NewSolver(EngineCrossbar)
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	_, err = s.SolveBatch(ctx, []*Problem{tiny(t), tiny(t)})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestSolverConcurrent hammers one handle from many goroutines; run under
// -race this pins the concurrency-safety contract. Without variation the
// crossbar is deterministic, so every goroutine must see the same optimum.
func TestSolverConcurrent(t *testing.T) {
	s, err := NewSolver(EngineCrossbar)
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	ctx := context.Background()
	p := tiny(t)
	ref, err := s.Solve(ctx, p)
	if err != nil {
		t.Fatalf("reference solve: %v", err)
	}

	const goroutines, repeats = 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*repeats)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < repeats; i++ {
				sol, err := s.Solve(ctx, p)
				if err != nil {
					errs <- err
					return
				}
				if sol.Status != StatusOptimal {
					errs <- errors.New("status " + sol.Status.String())
					return
				}
				if math.Abs(sol.Objective-ref.Objective) > 1e-6 {
					errs <- errors.New("objective drifted across concurrent solves")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSolverConcurrentFaulty extends TestSolverConcurrent to the fault
// subsystem: one handle with a seeded fault model and write-verify is
// hammered by goroutines mixing Solve and SolveBatch. Under -race this pins
// that the stateless hash-based fault placement, the retry counters, and the
// recovery ladder's fabric mutations are all safe behind the handle's lock,
// and that concurrent callers still only ever see honest statuses.
func TestSolverConcurrentFaulty(t *testing.T) {
	s, err := NewSolver(EngineCrossbar,
		WithSeed(11),
		WithFaultModel(FaultModel{StuckOnDensity: 0.005, StuckOffDensity: 0.005}),
		WithWriteVerify(2, 0.01))
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	ctx := context.Background()
	p := tiny(t)

	const goroutines, repeats = 6, 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*repeats)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < repeats; i++ {
				if g%2 == 0 {
					sol, err := s.Solve(ctx, p)
					if err != nil {
						errs <- err
						return
					}
					if sol.Status != StatusOptimal && sol.Status != StatusDegraded {
						errs <- errors.New("single solve status " + sol.Status.String())
						return
					}
					if sol.Diagnostics == nil {
						errs <- errors.New("fault-model solve without diagnostics")
						return
					}
				} else {
					sols, err := s.SolveBatch(ctx, []*Problem{p, p})
					if err != nil {
						errs <- err
						return
					}
					for _, sol := range sols {
						if sol.Status != StatusOptimal && sol.Status != StatusDegraded &&
							sol.Status != StatusNumericalFailure {
							errs <- errors.New("batch solve status " + sol.Status.String())
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSolveBatchPartialResultsOnCancel pins the batch cancellation contract:
// the Solutions completed before the interruption come back alongside the
// wrapped context error, with the interrupted solve's StatusCanceled partial
// as the last element.
func TestSolveBatchPartialResultsOnCancel(t *testing.T) {
	p, err := GenerateFeasible(20, 0, 9)
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	problems := make([]*Problem, 200)
	for i := range problems {
		problems[i] = p
	}
	s, err := NewSolver(EngineCrossbar)
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	sols, err := s.SolveBatch(ctx, problems)
	if err == nil {
		t.Skip("batch completed before cancellation could land")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(sols) == 0 {
		t.Fatal("no partial results returned with the cancellation error")
	}
	if len(sols) == len(problems) {
		t.Fatal("all solutions returned despite cancellation error")
	}
	last := sols[len(sols)-1]
	if last.Status != StatusCanceled {
		t.Errorf("last partial status = %v, want %v", last.Status, StatusCanceled)
	}
	for i, sol := range sols[:len(sols)-1] {
		if sol.Status != StatusOptimal {
			t.Errorf("completed solution %d: status %v, want %v", i, sol.Status, StatusOptimal)
		}
	}
}

// TestSolverReuseAllocations pins the acceptance criterion: repeated
// same-shape solves on one handle allocate at least 10× less than the
// build-everything-per-call package-level Solve.
func TestSolverReuseAllocations(t *testing.T) {
	p, err := GenerateFeasible(8, 0, 1)
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	s, err := NewSolver(EngineCrossbar)
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	ctx := context.Background()
	if _, err := s.Solve(ctx, p); err != nil {
		t.Fatalf("warmup solve: %v", err)
	}

	reuse := testing.AllocsPerRun(10, func() {
		if _, err := s.Solve(ctx, p); err != nil {
			t.Fatal(err)
		}
	})
	oneShot := testing.AllocsPerRun(10, func() {
		if _, err := Solve(p, EngineCrossbar); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs/solve: handle reuse %.0f, one-shot %.0f", reuse, oneShot)
	if reuse*10 > oneShot {
		t.Errorf("handle reuse allocates %.0f/solve vs %.0f one-shot; want ≥10× reduction", reuse, oneShot)
	}
}

// TestSolveBatchPerSolveWallTime checks each batched Solution carries its own
// measured wall time rather than a share of the batch total.
func TestSolveBatchPerSolveWallTime(t *testing.T) {
	problems := make([]*Problem, 4)
	for i := range problems {
		problems[i] = tiny(t)
	}
	sols, err := SolveBatch(problems, WithSeed(5))
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	allEqual := true
	for i, sol := range sols {
		if sol.WallTime <= 0 {
			t.Errorf("solution %d: WallTime = %v, want > 0", i, sol.WallTime)
		}
		if sol.WallTime != sols[0].WallTime {
			allEqual = false
		}
	}
	if allEqual {
		t.Error("all batched WallTimes identical — looks like a divided batch total, not per-solve measurement")
	}
}
