package memlp_test

import (
	"fmt"

	"github.com/memlp/memlp"
)

// ExampleSolve solves a tiny LP with the software interior-point engine.
func ExampleSolve() {
	p, err := memlp.NewProblem("demo",
		[]float64{3, 2},
		[][]float64{
			{1, 1},
			{1, 3},
		},
		[]float64{4, 6})
	if err != nil {
		panic(err)
	}
	sol, err := memlp.Solve(p, memlp.EnginePDIP)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%v objective=%.2f\n", sol.Status, sol.Objective)
	// Output: optimal objective=12.00
}

// ExampleSolve_crossbar runs the same problem on the simulated memristor
// crossbar (the paper's Algorithm 1) with process variation and reads the
// hardware cost estimate.
func ExampleSolve_crossbar() {
	p, err := memlp.NewProblem("demo",
		[]float64{3, 2},
		[][]float64{
			{1, 1},
			{1, 3},
		},
		[]float64{4, 6})
	if err != nil {
		panic(err)
	}
	sol, err := memlp.Solve(p, memlp.EngineCrossbar,
		memlp.WithVariation(0.10), memlp.WithSeed(42))
	if err != nil {
		panic(err)
	}
	fmt.Println(sol.Status, sol.Hardware.Latency > 0, sol.Hardware.EnergyJoules > 0)
	// Output: optimal true true
}

// ExampleGenerateFeasible builds a random instance in the paper's evaluation
// regime (n = m/3) and verifies it solves to optimality.
func ExampleGenerateFeasible() {
	p, err := memlp.GenerateFeasible(12, 0, 7)
	if err != nil {
		panic(err)
	}
	sol, err := memlp.Solve(p, memlp.EngineSimplex)
	if err != nil {
		panic(err)
	}
	fmt.Println(p.NumConstraints(), p.NumVariables(), sol.Status)
	// Output: 12 4 optimal
}
