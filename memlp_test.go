package memlp

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func tiny(t *testing.T) *Problem {
	t.Helper()
	p, err := NewProblem("tiny",
		[]float64{3, 2},
		[][]float64{{1, 1}, {1, 3}},
		[]float64{4, 6})
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	return p
}

func TestNewProblemValidation(t *testing.T) {
	if _, err := NewProblem("bad", []float64{1}, [][]float64{{1, 2}}, []float64{1}); !errors.Is(err, ErrInvalid) {
		t.Errorf("shape mismatch: %v, want ErrInvalid", err)
	}
	if _, err := NewProblem("ragged", []float64{1, 2}, [][]float64{{1, 2}, {3}}, []float64{1, 2}); !errors.Is(err, ErrInvalid) {
		t.Errorf("ragged: %v, want ErrInvalid", err)
	}
}

func TestProblemAccessors(t *testing.T) {
	p := tiny(t)
	if p.Name() != "tiny" || p.NumVariables() != 2 || p.NumConstraints() != 2 {
		t.Errorf("accessors wrong: %q %d %d", p.Name(), p.NumVariables(), p.NumConstraints())
	}
	obj, err := p.Objective([]float64{4, 0})
	if err != nil || obj != 12 {
		t.Errorf("Objective = %v, %v", obj, err)
	}
	ok, err := p.IsFeasible([]float64{4, 0}, 1e-9)
	if err != nil || !ok {
		t.Errorf("IsFeasible = %v, %v", ok, err)
	}
	d := p.Dual()
	if d.NumVariables() != 2 || d.NumConstraints() != 2 {
		t.Error("dual dims wrong")
	}
}

func TestTextRoundTrip(t *testing.T) {
	p := tiny(t)
	var buf bytes.Buffer
	if err := p.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	q, err := ReadProblem(&buf)
	if err != nil {
		t.Fatalf("ReadProblem: %v", err)
	}
	if q.Name() != "tiny" || q.NumVariables() != 2 {
		t.Error("round trip corrupted problem")
	}
	if _, err := ReadProblem(strings.NewReader("garbage")); !errors.Is(err, ErrInvalid) {
		t.Errorf("garbage: %v", err)
	}
}

func TestGenerate(t *testing.T) {
	p, err := GenerateFeasible(12, 0, 1)
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	if p.NumConstraints() != 12 || p.NumVariables() != 4 {
		t.Errorf("dims = (%d, %d)", p.NumConstraints(), p.NumVariables())
	}
	q, err := GenerateInfeasible(9, 3, 2)
	if err != nil {
		t.Fatalf("GenerateInfeasible: %v", err)
	}
	if q.NumVariables() != 3 {
		t.Errorf("n = %d", q.NumVariables())
	}
	if _, err := GenerateFeasible(1, 0, 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("m=1: %v", err)
	}
}

func TestAllEnginesAgreeOnTiny(t *testing.T) {
	p := tiny(t)
	for _, engine := range []Engine{EnginePDIP, EnginePDIPReduced, EngineSimplex, EngineCrossbar, EngineCrossbarLargeScale} {
		t.Run(engine.String(), func(t *testing.T) {
			sol, err := Solve(p, engine)
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if sol.Status != StatusOptimal {
				t.Fatalf("status = %v", sol.Status)
			}
			tol := 0.05
			if engine == EngineCrossbar || engine == EngineCrossbarLargeScale {
				tol = 0.4 // analog accuracy floor
			}
			if math.Abs(sol.Objective-12) > tol {
				t.Errorf("objective = %v, want 12", sol.Objective)
			}
			if sol.WallTime <= 0 {
				t.Error("wall time not measured")
			}
		})
	}
}

func TestCrossbarSolutionHasHardwareEstimate(t *testing.T) {
	p, err := GenerateFeasible(9, 0, 3)
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	sol, err := Solve(p, EngineCrossbar, WithVariation(0.05), WithSeed(7))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Hardware == nil {
		t.Fatal("no hardware estimate")
	}
	if sol.Hardware.Latency <= 0 || sol.Hardware.EnergyJoules <= 0 {
		t.Errorf("estimate not populated: %+v", sol.Hardware)
	}
	if sol.Hardware.CellWrites == 0 || sol.Hardware.AnalogOps == 0 {
		t.Errorf("counters not populated: %+v", sol.Hardware)
	}
}

func TestSoftwareSolutionHasNoHardwareEstimate(t *testing.T) {
	sol, err := Solve(tiny(t), EnginePDIP)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Hardware != nil {
		t.Error("software solve reported a hardware estimate")
	}
}

func TestInfeasibleDetectedAcrossEngines(t *testing.T) {
	p, err := GenerateInfeasible(9, 0, 5)
	if err != nil {
		t.Fatalf("GenerateInfeasible: %v", err)
	}
	for _, engine := range []Engine{EnginePDIP, EngineSimplex} {
		sol, err := Solve(p, engine)
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if sol.Status != StatusInfeasible {
			t.Errorf("%v: status = %v, want infeasible", engine, sol.Status)
		}
	}
}

func TestSolveWithNoC(t *testing.T) {
	p, err := GenerateFeasible(9, 0, 2)
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	sol, err := Solve(p, EngineCrossbar, WithNoC("mesh", 16))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.IsNaN(sol.Objective) {
		t.Error("objective NaN")
	}
	if sol.Hardware == nil || sol.Hardware.Latency <= 0 {
		t.Error("NoC hardware estimate missing")
	}
}

func TestOptionValidation(t *testing.T) {
	p := tiny(t)
	bad := []Option{
		WithVariation(-0.1),
		WithVariation(1.0),
		WithCycleNoise(2),
		WithIOBits(0),
		WithWriteBits(99),
		WithAlpha(0.5),
		WithMaxIterations(0),
		WithConstantStep(1),
		WithNoC("ring", 16),
		WithNoC("mesh", 0),
	}
	for i, opt := range bad {
		if _, err := Solve(p, EnginePDIP, opt); !errors.Is(err, ErrInvalid) {
			t.Errorf("option %d: %v, want ErrInvalid", i, err)
		}
	}
}

func TestUnknownEngine(t *testing.T) {
	if _, err := Solve(tiny(t), Engine(42)); !errors.Is(err, ErrUnknownEngine) {
		t.Errorf("got %v, want ErrUnknownEngine", err)
	}
	if Engine(42).String() == "" {
		t.Error("unknown engine String empty")
	}
}

func TestNilProblem(t *testing.T) {
	if _, err := Solve(nil, EnginePDIP); !errors.Is(err, ErrInvalid) {
		t.Errorf("nil problem: %v", err)
	}
}

func TestEngineStrings(t *testing.T) {
	want := map[Engine]string{
		EngineCrossbar:           "crossbar",
		EngineCrossbarLargeScale: "crossbar-large-scale",
		EnginePDIP:               "pdip",
		EnginePDIPReduced:        "pdip-reduced",
		EngineSimplex:            "simplex",
	}
	for e, s := range want {
		if e.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(e), e.String(), s)
		}
	}
}

func TestStatusStrings(t *testing.T) {
	if StatusOptimal.String() != "optimal" || StatusInfeasible.String() != "infeasible" {
		t.Error("status strings wrong")
	}
}

func TestReproducibleWithSeed(t *testing.T) {
	p, err := GenerateFeasible(9, 0, 11)
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	a, err := Solve(p, EngineCrossbar, WithVariation(0.1), WithSeed(5))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	b, err := Solve(p, EngineCrossbar, WithVariation(0.1), WithSeed(5))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if a.Objective != b.Objective {
		t.Errorf("same seed, different objectives: %v vs %v", a.Objective, b.Objective)
	}
}

func TestSolveBatchPublicAPI(t *testing.T) {
	a := [][]float64{{1, 1}, {1, 3}}
	c := []float64{3, 2}
	var problems []*Problem
	for i := 0; i < 3; i++ {
		p, err := NewProblem("b", c, a, []float64{4 + float64(i), 6})
		if err != nil {
			t.Fatalf("NewProblem: %v", err)
		}
		problems = append(problems, p)
	}
	sols, err := SolveBatch(problems, WithSeed(2))
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	if len(sols) != 3 {
		t.Fatalf("len = %d", len(sols))
	}
	for i, sol := range sols {
		if sol.Status != StatusOptimal {
			t.Errorf("instance %d: status %v", i, sol.Status)
		}
		want := 3 * (4 + float64(i)) // optimum at x = b1, y = 0
		if math.Abs(sol.Objective-want) > 0.5 {
			t.Errorf("instance %d: objective %v, want ≈%v", i, sol.Objective, want)
		}
		if sol.Hardware == nil || sol.Hardware.CellWrites == 0 {
			t.Errorf("instance %d: hardware counters missing", i)
		}
	}
	// Later instances must be cheaper than the first (no reprogramming).
	if sols[1].Hardware.CellWrites >= sols[0].Hardware.CellWrites {
		t.Errorf("no amortization: %d vs %d writes",
			sols[1].Hardware.CellWrites, sols[0].Hardware.CellWrites)
	}
	if _, err := SolveBatch(nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty batch: %v", err)
	}
	if _, err := SolveBatch([]*Problem{nil}); !errors.Is(err, ErrInvalid) {
		t.Errorf("nil problem: %v", err)
	}
}
