package memlp

import (
	"fmt"
	"io"

	"github.com/memlp/memlp/internal/trace"
)

// Trace event kinds, one per TraceRecord.Event value.
const (
	// TraceEventIteration is one PDIP Newton step (crossbar and software
	// PDIP engines).
	TraceEventIteration = trace.EventIteration
	// TraceEventPivot is one simplex pivot.
	TraceEventPivot = trace.EventPivot
	// TraceEventDone is the terminal record summarizing the solve; its
	// fields agree with the returned Solution.
	TraceEventDone = trace.EventDone
	// TraceEventResolve / TraceEventRemap / TraceEventSoftware mark
	// recovery-ladder escalations on fault-configured crossbar engines.
	TraceEventResolve  = trace.EventResolve
	TraceEventRemap    = trace.EventRemap
	TraceEventSoftware = trace.EventSoftware
	// TraceEventRestart marks a PDHG adaptive restart (EnginePDHG only):
	// the iterate jumped back to the running average since the last
	// restart.
	TraceEventRestart = trace.EventRestart
)

// TraceRecord is one entry of a solve's iteration trace: a snapshot of the
// convergence state (µ, duality gap, residual norms, step length θ) plus the
// hardware activity attributed to that step (write retries, modeled energy).
// Software engines leave the hardware fields zero; simplex records carry the
// running tableau objective instead of interior-point measures.
type TraceRecord struct {
	// Engine is the backend name ("crossbar", "pdip", "simplex", …).
	Engine string
	// Problem is the batch index (0 for single solves). Attempt counts
	// recovery-ladder analog attempts, starting at 1. Iteration is the PDIP
	// iteration or simplex pivot number.
	Problem   int
	Attempt   int
	Iteration int
	// Event is one of the TraceEvent* constants; Status is set on terminal
	// and recovery records.
	Event  string
	Status string
	// Interior-point convergence measures at this step.
	Mu                  float64
	DualityGap          float64
	PrimalInfeasibility float64
	DualInfeasibility   float64
	// ConeInfeasibility is the worst second-order-cone violation of the
	// constraint slack b − A·x (conic problems only; 0 for pure LPs).
	ConeInfeasibility float64
	Theta             float64
	// Objective is the objective value (terminal records; running tableau
	// value on simplex pivots).
	Objective float64
	// WriteRetries and EnergyJoules attribute hardware activity: per-step
	// marginals on iteration records, solve totals on the done record.
	// NoiseEpoch is the deterministic per-problem noise stream id.
	WriteRetries int64
	// CellsWritten / CellsSkipped are the solve's running device-programming
	// count and the writes avoided by delta-programming (cumulative on
	// iteration records, solve totals on the done record; zero for software
	// engines or with delta-programming disabled).
	CellsWritten int64
	CellsSkipped int64
	// TilesRefreshed is the running count of crossbar tiles re-programmed
	// by the PDHG engine's periodic refresh (EnginePDHG only; zero
	// elsewhere).
	TilesRefreshed int64
	NoiseEpoch     int64
	EnergyJoules   float64
}

// WithTrace enables iteration-trace recording on any engine. Each solve's
// trajectory — per-iteration convergence measures, recovery events, and the
// terminal summary — is captured into a bounded ring of the given capacity
// (<= 0 means a 1024-record default; older records are dropped, newest kept)
// and returned via Solution.Trace. Recording is allocation-free on the solver
// hot path.
func WithTrace(capacity int) Option {
	return func(o *options) error {
		o.traced = true
		o.traceCap = capacity
		o.set["WithTrace"] = true
		return nil
	}
}

// WithTraceJSONL additionally streams every trace record to w as JSON Lines,
// in solve order (for batches: input order, regardless of pool width).
// Implies WithTrace. Non-finite floats are encoded as quoted "NaN"/"+Inf"/
// "-Inf" strings; ReadTraceJSONL round-trips them. Write errors latch: the
// first failure stops further output and is reported by Solver.TraceErr.
func WithTraceJSONL(w io.Writer) Option {
	return func(o *options) error {
		if w == nil {
			return fmt.Errorf("%w: nil trace writer", ErrInvalid)
		}
		o.traced = true
		o.traceJSONL = w
		o.set["WithTraceJSONL"] = true
		return nil
	}
}

// WriteTraceJSONL serializes records as JSON Lines (one object per line, a
// stable field order, non-finite floats quoted).
func WriteTraceJSONL(w io.Writer, recs []TraceRecord) error {
	inner := make([]trace.Record, len(recs))
	for i, r := range recs {
		inner[i] = trace.Record(r)
	}
	return trace.Write(w, inner)
}

// ReadTraceJSONL parses a JSON-Lines trace written by WriteTraceJSONL or
// WithTraceJSONL. Blank lines are skipped; malformed lines fail with their
// line number.
func ReadTraceJSONL(r io.Reader) ([]TraceRecord, error) {
	inner, err := trace.Read(r)
	if err != nil {
		return nil, err
	}
	out := make([]TraceRecord, len(inner))
	for i, rec := range inner {
		out[i] = TraceRecord(rec)
	}
	return out, nil
}

// Metrics aggregates trace records from any number of solves into counters
// and histograms and exposes them in Prometheus text format. Safe for
// concurrent use. The zero value is not usable; call NewMetrics. Metrics
// implements expvar.Var via String, so it can be published with
// expvar.Publish("memlp", m).
type Metrics struct{ m *trace.Metrics }

// NewMetrics returns an empty aggregator.
func NewMetrics() *Metrics { return &Metrics{m: trace.NewMetrics()} }

// Observe folds one Solution's trace (and, when present, its batch-pool
// shard stats) into the aggregate. Solutions without traces are ignored.
func (mt *Metrics) Observe(sol *Solution) {
	if sol == nil {
		return
	}
	for _, r := range sol.trace {
		mt.m.Emit(trace.Record(r))
	}
	if b := sol.Batch; b != nil {
		busy := make([]float64, len(b.ShardBusy))
		for i, d := range b.ShardBusy {
			busy[i] = d.Seconds()
		}
		mt.m.ObserveBatch(b.ShardSolves, busy)
	}
}

// ObserveAll folds a batch of Solutions (e.g. a SolveBatch result) into the
// aggregate.
func (mt *Metrics) ObserveAll(sols []*Solution) {
	for _, sol := range sols {
		mt.Observe(sol)
	}
}

// WritePrometheus writes the aggregate in Prometheus text exposition format.
// Output is deterministic: metrics and label sets are sorted.
func (mt *Metrics) WritePrometheus(w io.Writer) error { return mt.m.WriteProm(w) }

// String returns a compact JSON summary (expvar.Var).
func (mt *Metrics) String() string { return mt.m.String() }
