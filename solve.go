package memlp

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/memlp/memlp/internal/core"
	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/engine"
	"github.com/memlp/memlp/internal/lp"
	"github.com/memlp/memlp/internal/memristor"
	"github.com/memlp/memlp/internal/noc"
	"github.com/memlp/memlp/internal/pdhg"
	"github.com/memlp/memlp/internal/pdip"
	"github.com/memlp/memlp/internal/perf"
	"github.com/memlp/memlp/internal/simplex"
	"github.com/memlp/memlp/internal/trace"
	"github.com/memlp/memlp/internal/variation"
)

// Engine selects the solver implementation.
type Engine int

// Available engines.
const (
	// EngineCrossbar is the paper's Algorithm 1: the full reformulated PDIP
	// Newton system on one (possibly NoC-tiled) analog fabric.
	EngineCrossbar Engine = iota + 1
	// EngineCrossbarLargeScale is the paper's Algorithm 2: two smaller
	// systems per iteration for crossbar-size-limited deployments.
	EngineCrossbarLargeScale
	// EnginePDIP is the software primal–dual interior-point baseline
	// (dense-LU Newton solves — the O(N³)-per-iteration reference).
	EnginePDIP
	// EnginePDIPReduced is the software PDIP with the (n+m) reduced KKT
	// backend — the "efficient library" baseline (linprog-class).
	EnginePDIPReduced
	// EngineSimplex is the two-phase simplex baseline.
	EngineSimplex
	// EngineConic is Algorithm 1 extended to LP + second-order-cone problems:
	// the SOC constraint rows carry dense Nesterov–Todd scaling blocks on the
	// same extended-matrix fabric mapping (Eq. 14a). Pure LPs are accepted and
	// take the bit-identical LP iteration path.
	EngineConic
	// EnginePDHG is the distributed first-order engine: restarted primal–dual
	// hybrid gradient with both per-iteration mat-vecs tiled across a grid of
	// crossbars connected by the analog NoC. No linear-system solve means no
	// single array ever has to hold the whole extended matrix, so problems
	// past the single-fabric ceiling still solve — at first-order (ADC-floor)
	// accuracy rather than interior-point accuracy.
	EnginePDHG
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineCrossbar:
		return "crossbar"
	case EngineCrossbarLargeScale:
		return "crossbar-large-scale"
	case EnginePDIP:
		return "pdip"
	case EnginePDIPReduced:
		return "pdip-reduced"
	case EngineSimplex:
		return "simplex"
	case EngineConic:
		return "conic"
	case EnginePDHG:
		return "pdhg"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// options collects the cross-engine configuration. set records which options
// the caller supplied, by exported name, so NewSolver can reject settings
// that do not apply to the selected engine.
type options struct {
	variationPct   float64
	cycleNoise     float64
	seed           int64
	ioBits         int
	writeBits      int
	deltaBits      int
	globalIORange  bool
	alpha          float64
	maxIterations  int
	constantStep   float64
	wireResistance float64
	useNoC         bool
	nocTopology    noc.Topology
	nocTileSize    int
	literal        bool
	parallelism    int
	tiles          int
	faults         *FaultModel
	writeRetries   int
	writeVerifyTol float64
	timing         memristor.Timing
	traced         bool
	traceCap       int
	traceJSONL     io.Writer
	warmX, warmY   []float64

	set map[string]bool
}

func defaultOptions() options {
	return options{seed: 1, timing: memristor.DefaultTiming(), set: map[string]bool{}}
}

// validateFor rejects options that do not configure the selected engine:
// hardware options (variation, quantization, NoC, …) require a crossbar
// engine, Algorithm 2 knobs require EngineCrossbarLargeScale, and iteration
// bounds do not apply to simplex. Errors match both ErrIncompatibleOption
// and ErrInvalid.
func (o *options) validateFor(e Engine) error {
	switch e {
	case EngineCrossbar, EngineCrossbarLargeScale, EnginePDIP, EnginePDIPReduced, EngineSimplex, EngineConic, EnginePDHG:
	default:
		return fmt.Errorf("%w: %d", ErrUnknownEngine, int(e))
	}
	names := make([]string, 0, len(o.set))
	for name := range o.set {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ok := false
		switch name {
		case "WithConstantStep", "WithLiteralFillers":
			ok = e == EngineCrossbarLargeScale
		case "WithTiles":
			// The worker grid only exists on the tiled PDHG engine; the
			// Newton engines parallelize across batch members, not tiles.
			ok = e == EnginePDHG
		case "WithAlpha":
			// The relaxed-feasibility reformulation is an interior-point
			// construction; PDHG solves the unrelaxed LP directly.
			ok = e == EngineCrossbar || e == EngineCrossbarLargeScale || e == EngineConic
		case "WithTrace", "WithTraceJSONL":
			// Observability applies uniformly: every engine records traces.
			ok = true
		case "WithMaxIterations":
			ok = e != EngineSimplex
		case "WithParallelism":
			// Batching — and therefore the fabric pool — exists only on the
			// Algorithm 1 engine; Algorithm 2 and the software engines solve
			// strictly one problem at a time.
			ok = e == EngineCrossbar
		case "WithWarmStart":
			// Warm starts seed an interior iterate: simplex walks vertices and
			// Algorithm 2's constant-step scheme keeps no reusable interior
			// state, so only the PDIP-family engines accept one.
			ok = e == EngineCrossbar || e == EngineConic || e == EnginePDIP || e == EnginePDIPReduced
		default: // crossbar hardware options
			ok = e == EngineCrossbar || e == EngineCrossbarLargeScale || e == EngineConic || e == EnginePDHG
		}
		if !ok {
			return fmt.Errorf("%s does not apply to engine %s: %w", name, e, ErrIncompatibleOption)
		}
	}
	return nil
}

// Option configures a Solver (or a one-shot Solve/SolveBatch call).
type Option func(*options) error

// WithVariation sets the process-variation magnitude (e.g. 0.10 for "up to
// 10%", the paper's Eq. 18 model) for crossbar engines.
func WithVariation(pct float64) Option {
	return func(o *options) error {
		if pct < 0 || pct >= 1 {
			return fmt.Errorf("%w: variation %v", ErrInvalid, pct)
		}
		o.variationPct = pct
		o.set["WithVariation"] = true
		return nil
	}
}

// WithCycleNoise adds per-write cycle-to-cycle noise as a fraction of the
// static variation magnitude.
func WithCycleNoise(frac float64) Option {
	return func(o *options) error {
		if frac < 0 || frac > 1 {
			return fmt.Errorf("%w: cycle noise %v", ErrInvalid, frac)
		}
		o.cycleNoise = frac
		o.set["WithCycleNoise"] = true
		return nil
	}
}

// WithSeed fixes the random seed for variation draws, making crossbar solves
// reproducible.
func WithSeed(seed int64) Option {
	return func(o *options) error {
		o.seed = seed
		o.set["WithSeed"] = true
		return nil
	}
}

// WithIOBits sets the DAC/ADC precision (the paper uses 8).
func WithIOBits(bits int) Option {
	return func(o *options) error {
		if bits < 1 || bits > 24 {
			return fmt.Errorf("%w: io bits %d", ErrInvalid, bits)
		}
		o.ioBits = bits
		o.set["WithIOBits"] = true
		return nil
	}
}

// WithWriteBits sets the conductance write precision.
func WithWriteBits(bits int) Option {
	return func(o *options) error {
		if bits < 1 || bits > 24 {
			return fmt.Errorf("%w: write bits %d", ErrInvalid, bits)
		}
		o.writeBits = bits
		o.set["WithWriteBits"] = true
		return nil
	}
}

// WithDeltaWriteBits sets the delta-programming level grid for per-iteration
// refreshes on the crossbar engines: a refresh whose target falls in the same
// 2^bits-level conductance bin as the cell's current epoch-compatible state is
// skipped entirely, cutting the O(N) write traffic that dominates iteration
// cost. 0 disables delta-programming; the default is 8 bits, matching the
// §4.1 I/O precision. Regardless of this setting, solves of problems with
// second-order-cone rows run with delta-programming off: the dense
// Nesterov–Todd scaling blocks are too tightly coupled for per-cell stale
// errors. Pure LPs solve bit-identically on every crossbar engine.
func WithDeltaWriteBits(bits int) Option {
	return func(o *options) error {
		if bits != 0 && (bits < 2 || bits > 24) {
			return fmt.Errorf("%w: delta write bits %d", ErrInvalid, bits)
		}
		o.deltaBits = bits
		o.set["WithDeltaWriteBits"] = true
		return nil
	}
}

// WithGlobalIORange selects a single shared DAC/ADC full-scale range per
// vector instead of the default per-line programmable-gain converters.
func WithGlobalIORange() Option {
	return func(o *options) error {
		o.globalIORange = true
		o.set["WithGlobalIORange"] = true
		return nil
	}
}

// WithAlpha sets the relaxed feasibility parameter α of §3.2 (≥ 1). Under
// variation v a solution legitimately violates the true constraints by up to
// ≈v, so α ≈ 1 + 2v is a sensible setting; the default scales automatically.
func WithAlpha(alpha float64) Option {
	return func(o *options) error {
		if alpha < 1 {
			return fmt.Errorf("%w: alpha %v", ErrInvalid, alpha)
		}
		o.alpha = alpha
		o.set["WithAlpha"] = true
		return nil
	}
}

// WithMaxIterations bounds the PDIP iteration count.
func WithMaxIterations(n int) Option {
	return func(o *options) error {
		if n < 1 {
			return fmt.Errorf("%w: max iterations %d", ErrInvalid, n)
		}
		o.maxIterations = n
		o.set["WithMaxIterations"] = true
		return nil
	}
}

// WithConstantStep sets Algorithm 2's constant step length θ ∈ (0, 1).
func WithConstantStep(theta float64) Option {
	return func(o *options) error {
		if theta <= 0 || theta >= 1 {
			return fmt.Errorf("%w: constant step %v", ErrInvalid, theta)
		}
		o.constantStep = theta
		o.set["WithConstantStep"] = true
		return nil
	}
}

// WithNoC runs the crossbar engines on a tiled multi-crossbar fabric
// coordinated by the given analog NoC topology ("hierarchical" per Fig. 3a
// or "mesh" per Fig. 3b) with the given tile size.
func WithNoC(topology string, tileSize int) Option {
	return func(o *options) error {
		switch topology {
		case "hierarchical":
			o.nocTopology = noc.Hierarchical
		case "mesh":
			o.nocTopology = noc.Mesh
		default:
			return fmt.Errorf("%w: NoC topology %q", ErrInvalid, topology)
		}
		if tileSize < 1 {
			return fmt.Errorf("%w: tile size %d", ErrInvalid, tileSize)
		}
		o.useNoC = true
		o.nocTileSize = tileSize
		o.set["WithNoC"] = true
		return nil
	}
}

// WithWireResistance enables the first-order IR-drop model: rw ohms of metal
// line resistance per crossbar segment attenuate each cell's effective
// conductance along its current path.
func WithWireResistance(rw float64) Option {
	return func(o *options) error {
		if rw < 0 {
			return fmt.Errorf("%w: wire resistance %v", ErrInvalid, rw)
		}
		o.wireResistance = rw
		o.set["WithWireResistance"] = true
		return nil
	}
}

// WithLiteralFillers selects the paper-literal εI reading of Algorithm 2's
// Eq. 16c (see the design notes; unstable for m ≠ n — ablation use only).
func WithLiteralFillers() Option {
	return func(o *options) error {
		o.literal = true
		o.set["WithLiteralFillers"] = true
		return nil
	}
}

// WithParallelism sets the fabric-pool width for SolveBatch on EngineCrossbar:
// the batch is load-balanced across n identically-programmed fabric replicas,
// the way a multi-die deployment replicates one array and fans instances out
// across the copies. Zero (the default) uses GOMAXPROCS; the width is always
// clamped to the batch size. Results are bit-identical for every width —
// each problem's stochastic noise draws are derived from (seed, problem
// index), never from the shard that happens to run it.
func WithParallelism(n int) Option {
	return func(o *options) error {
		if n < 0 {
			return fmt.Errorf("%w: parallelism %d", ErrInvalid, n)
		}
		o.parallelism = n
		o.set["WithParallelism"] = true
		return nil
	}
}

// WithTiles sets the worker-grid side g for EnginePDHG: g² goroutines sweep
// the canonical crossbar tiles each half-iteration. The grid is pure
// execution parallelism — the matrix tiling, every stochastic draw, and all
// NoC accounting are fixed by the tile size alone, so solutions and traces
// are bit-identical for every g (the PDHG determinism contract; see
// DESIGN.md D18).
func WithTiles(g int) Option {
	return func(o *options) error {
		if g < 1 {
			return fmt.Errorf("%w: tiles grid %d", ErrInvalid, g)
		}
		o.tiles = g
		o.set["WithTiles"] = true
		return nil
	}
}

// WithWarmStart seeds the solver's interior iterate from a previously
// computed solution of a nearby problem (same dimensions, similar data) —
// the repeated-solve scenario where only b or c drift between calls. The
// primal point and duals are taken from prev; the slacks are re-derived from
// each new problem's data and clamped to the strict interior, so even a
// boundary-accurate previous optimum yields a usable seed, typically cutting
// the iteration count well below a cold start. The warm start persists for
// every solve on the handle until replaced or cleared via
// Solver.SetWarmStart; prev's dimensions must match each solved problem or
// that solve fails with ErrInvalid.
//
// Only the PDIP-family engines (EngineCrossbar, EngineConic, EnginePDIP,
// EnginePDIPReduced) accept warm starts; simplex and the large-scale
// constant-step engine reject the option with ErrIncompatibleOption.
func WithWarmStart(prev *Solution) Option {
	return func(o *options) error {
		if prev == nil || len(prev.X) == 0 || len(prev.DualY) == 0 {
			return fmt.Errorf("%w: warm start needs a solution with X and DualY", ErrInvalid)
		}
		o.warmX, o.warmY = prev.X, prev.DualY
		o.set["WithWarmStart"] = true
		return nil
	}
}

// WithFaultModel injects permanent device defects (stuck-at-ON/OFF cells,
// extra write noise, retention drift) into the crossbar engines' simulated
// arrays and enables the recovery-escalation ladder: failed solves are
// retried, remapped away from the stuck cells, and finally completed in
// software with StatusDegraded. See FaultModel and Diagnostics.
func WithFaultModel(fm FaultModel) Option {
	return func(o *options) error {
		inner := memristor.FaultModel{
			StuckOnDensity:  fm.StuckOnDensity,
			StuckOffDensity: fm.StuckOffDensity,
			Seed:            fm.Seed,
			WriteNoise:      fm.WriteNoise,
			DriftPerCycle:   fm.DriftPerCycle,
		}
		if err := inner.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalid, err)
		}
		o.faults = &fm
		o.set["WithFaultModel"] = true
		return nil
	}
}

// WithWriteVerify enables closed-loop program-and-verify cell writes on the
// crossbar engines: after each write the controller reads the conductance
// back and issues up to maxRetries corrective pulses until it is within tol
// (relative; 0 means 1%) of the target. Retries are counted in the hardware
// estimate, and the recovery ladder is enabled as with WithFaultModel.
func WithWriteVerify(maxRetries int, tol float64) Option {
	return func(o *options) error {
		if maxRetries < 1 {
			return fmt.Errorf("%w: write-verify retries %d", ErrInvalid, maxRetries)
		}
		if tol < 0 || tol >= 1 {
			return fmt.Errorf("%w: write-verify tolerance %v", ErrInvalid, tol)
		}
		o.writeRetries = maxRetries
		o.writeVerifyTol = tol
		o.set["WithWriteVerify"] = true
		return nil
	}
}

// Solver is a reusable handle on one configured engine. Construction
// resolves the options, validates them against the engine, and builds the
// backend once; every Solve call then reuses the backend's iteration
// workspaces and — for crossbar engines — the persistent simulated fabric,
// so repeated same-shape solves skip reprogramming and allocate almost
// nothing.
//
// A Solver is safe for concurrent use: calls serialize on the handle (one
// simulated fabric cannot run two solves at once). Crossbar results report
// per-solve marginal hardware counters even though the fabric persists.
type Solver struct {
	engine  Engine
	timing  memristor.Timing
	backend engine.Backend

	mu sync.Mutex
	// NoC accounting: the fabric factory records every tiled fabric it
	// builds so transfer stats can reach the hardware estimate. Stats are
	// cumulative per fabric; snapshots around each solve yield marginals.
	nocCfg     *noc.Config
	nocFabrics []*noc.TiledFabric //memlp:guardedby mu

	// traceJSONL streams every trace record to the WithTraceJSONL writer in
	// solve order; replay happens under s.mu, so batch output is in input
	// order regardless of pool width. Nil when not configured.
	traceJSONL *trace.JSONL
}

// NewSolver returns a reusable Solver for the given engine. Options that do
// not apply to the engine (e.g. WithIOBits with a software engine, or
// WithConstantStep outside EngineCrossbarLargeScale) are rejected with
// ErrIncompatibleOption.
func NewSolver(eng Engine, opts ...Option) (*Solver, error) {
	o := defaultOptions()
	for _, fn := range opts {
		if err := fn(&o); err != nil {
			return nil, err
		}
	}
	if err := o.validateFor(eng); err != nil {
		return nil, err
	}

	s := &Solver{engine: eng, timing: o.timing}
	if o.traceJSONL != nil {
		s.traceJSONL = trace.NewJSONL(o.traceJSONL)
	}
	switch eng {
	case EnginePDIP, EnginePDIPReduced:
		backend := pdip.NewtonFull
		if eng == EnginePDIPReduced {
			backend = pdip.NewtonReduced
		}
		tol := lp.DefaultTolerances()
		if o.maxIterations > 0 {
			tol.MaxIterations = o.maxIterations
		}
		popts := []pdip.Option{pdip.WithBackend(backend), pdip.WithTolerances(tol)}
		if o.traced {
			popts = append(popts, pdip.WithTrace(o.traceCap))
		}
		ps, err := pdip.New(popts...)
		if err != nil {
			return nil, err
		}
		s.backend = engine.PDIP{S: ps, BackendName: eng.String()}
	case EngineSimplex:
		var sopts []simplex.Option
		if o.traced {
			sopts = append(sopts, simplex.WithTrace(o.traceCap))
		}
		sx, err := simplex.New(sopts...)
		if err != nil {
			return nil, err
		}
		s.backend = engine.Simplex{S: sx}
	case EngineCrossbar, EngineCrossbarLargeScale, EngineConic:
		if err := s.buildCrossbarBackend(eng, o); err != nil {
			return nil, err
		}
	case EnginePDHG:
		if err := s.buildPDHGBackend(o); err != nil {
			return nil, err
		}
	}
	if o.set["WithWarmStart"] {
		// validateFor admits WithWarmStart only for engines whose backend
		// implements engine.WarmStarter, so the assertion cannot fail.
		s.backend.(engine.WarmStarter).SetWarmStart(o.warmX, o.warmY)
	}
	return s, nil
}

// SetWarmStart replaces (or, with nil, clears) the handle's warm start: the
// next solves seed their interior iterate from prev instead of the cold
// all-ones start. See WithWarmStart for semantics and engine support. The
// typical pattern is feeding each solve's solution into the next:
//
//	sol, _ := s.Solve(ctx, p)
//	_ = s.SetWarmStart(sol)
//	sol2, _ := s.Solve(ctx, pShifted)
func (s *Solver) SetWarmStart(prev *Solution) error {
	ws, ok := s.backend.(engine.WarmStarter)
	if !ok {
		return fmt.Errorf("WithWarmStart does not apply to engine %s: %w", s.engine, ErrIncompatibleOption)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev == nil {
		ws.SetWarmStart(nil, nil)
		return nil
	}
	if len(prev.X) == 0 || len(prev.DualY) == 0 {
		return fmt.Errorf("%w: warm start needs a solution with X and DualY", ErrInvalid)
	}
	ws.SetWarmStart(prev.X, prev.DualY)
	return nil
}

// crossbarConfig resolves the shared analog-hardware options into a
// crossbar.Config, the per-array configuration every crossbar-backed engine
// (Algorithms 1 and 2, conic, PDHG tiles) starts from.
func (o options) crossbarConfig() (crossbar.Config, error) {
	deltaBits := o.deltaBits
	if !o.set["WithDeltaWriteBits"] {
		// Delta-programming defaults on at the I/O precision. The core
		// disables it per solve for problems with SOC blocks (the conic NT
		// rows cannot tolerate per-cell stale conductances), so pure LPs take
		// the identical delta-programmed path on every crossbar engine.
		deltaBits = 8
	}
	xcfg := crossbar.Config{
		IOBits:          o.ioBits,
		WriteBits:       o.writeBits,
		DeltaWriteBits:  deltaBits,
		GlobalIORange:   o.globalIORange,
		CycleNoise:      o.cycleNoise,
		WireResistance:  o.wireResistance,
		MaxWriteRetries: o.writeRetries,
		WriteVerifyTol:  o.writeVerifyTol,
	}
	if o.variationPct > 0 {
		vm, err := variation.NewPaperModel(o.variationPct, o.seed)
		if err != nil {
			return crossbar.Config{}, err
		}
		xcfg.Variation = vm
	}
	if o.faults != nil {
		fm := memristor.FaultModel{
			StuckOnDensity:  o.faults.StuckOnDensity,
			StuckOffDensity: o.faults.StuckOffDensity,
			Seed:            o.faults.Seed,
			WriteNoise:      o.faults.WriteNoise,
			DriftPerCycle:   o.faults.DriftPerCycle,
		}
		if fm.Seed == 0 {
			fm.Seed = o.seed
		}
		xcfg.Faults = &fm
	}
	return xcfg, nil
}

// buildCrossbarBackend wires the crossbar configuration into a core solver
// behind the engine interface. With NoC enabled the fabric factory captures
// every tiled fabric it builds on s (safe without locking: the factory only
// runs inside backend calls made under s.mu).
func (s *Solver) buildCrossbarBackend(eng Engine, o options) error {
	xcfg, err := o.crossbarConfig()
	if err != nil {
		return err
	}

	var factory, replica core.FabricFactory
	if o.useNoC {
		cfg := noc.Config{Topology: o.nocTopology, TileSize: o.nocTileSize, Crossbar: xcfg}
		s.nocCfg = &cfg
		build := func(c noc.Config, size int) (core.Fabric, error) {
			needed := (size + c.TileSize - 1) / c.TileSize
			if needed*needed > c.MaxTiles {
				c.MaxTiles = needed * needed
			}
			f, err := noc.New(c)
			if err != nil {
				return nil, err
			}
			//memlpvet:ignore guardedby the factory closure only runs inside backend calls made under s.mu (see buildCrossbarBackend doc)
			s.nocFabrics = append(s.nocFabrics, f)
			return f, nil
		}
		factory = func(size int) (core.Fabric, error) { return build(cfg, size) }
		replica = func(size int) (core.Fabric, error) {
			// Every replica gets its own variation model clone at the base
			// seed: independent streams, identical device-variation pattern.
			c := cfg
			if c.Crossbar.Variation != nil {
				c.Crossbar.Variation = c.Crossbar.Variation.Clone()
			}
			return build(c, size)
		}
	} else {
		factory = core.SingleCrossbarFactory(xcfg)
		replica = func(size int) (core.Fabric, error) {
			c := xcfg
			if c.Variation != nil {
				c.Variation = c.Variation.Clone()
			}
			return core.SingleCrossbarFactory(c)(size)
		}
	}

	alpha := o.alpha
	if alpha == 0 {
		alpha = 1.05 + 2*o.variationPct
	}
	copts := core.Options{
		Fabric:         factory,
		ReplicaFabric:  replica,
		Parallelism:    o.parallelism,
		Alpha:          alpha,
		ConstantStep:   o.constantStep,
		LiteralFillers: o.literal,
		// The energy model is wired unconditionally so Diagnostics and trace
		// records carry modeled joules whenever they are produced.
		EnergyModel: func(c crossbar.Counters) float64 {
			return perf.CrossbarCost(c, o.timing).Energy
		},
	}
	if o.traced {
		copts.Trace = &core.TraceOptions{Capacity: o.traceCap}
	}
	if o.maxIterations > 0 {
		copts.Tol.MaxIterations = o.maxIterations
	}
	if o.faults != nil || o.writeRetries > 0 {
		// Fault-aware hardware gets the full recovery ladder: re-solve,
		// remap off the stuck cells, then software fallback (StatusDegraded)
		// so the handle always returns an honest answer.
		copts.Recovery = &core.RecoveryPolicy{Remap: true, SoftwareFallback: true}
	}

	switch eng {
	case EngineCrossbar:
		cs, err := core.NewSolver(copts)
		if err != nil {
			return err
		}
		s.backend = engine.Crossbar{S: cs}
	case EngineConic:
		cs, err := core.NewSolver(copts)
		if err != nil {
			return err
		}
		s.backend = engine.Conic{S: cs}
	case EngineCrossbarLargeScale:
		ls, err := core.NewLargeScaleSolver(copts)
		if err != nil {
			return err
		}
		s.backend = engine.CrossbarLargeScale{S: ls}
	}
	return nil
}

// buildPDHGBackend wires the tiled PDHG engine: the same per-array crossbar
// configuration as the Newton engines, a NoC router for the canonical block
// grid, and the worker-grid width from WithTiles. The resolved NoC config is
// kept on the handle so the interconnect traffic reported by each solve can
// be priced into the hardware estimate.
func (s *Solver) buildPDHGBackend(o options) error {
	xcfg, err := o.crossbarConfig()
	if err != nil {
		return err
	}
	var ncfg noc.Config
	if o.useNoC {
		ncfg.Topology = o.nocTopology
		ncfg.TileSize = o.nocTileSize
	}
	probe, err := noc.NewRouter(ncfg, 1, 1)
	if err != nil {
		return err
	}
	resolved := probe.Config()
	s.nocCfg = &resolved

	grid := o.tiles
	if grid == 0 {
		grid = 1
	}
	popts := []pdhg.Option{
		pdhg.WithNoC(ncfg),
		pdhg.WithCrossbar(xcfg),
		pdhg.WithGrid(grid),
		pdhg.WithEnergyModel(func(c crossbar.Counters) float64 {
			return perf.CrossbarCost(c, o.timing).Energy
		}),
	}
	if o.maxIterations > 0 {
		tol := pdhg.DefaultTolerances()
		tol.MaxIterations = o.maxIterations
		popts = append(popts, pdhg.WithTolerances(tol))
	}
	if o.traced {
		popts = append(popts, pdhg.WithTrace(o.traceCap))
	}
	ps, err := pdhg.New(popts...)
	if err != nil {
		return err
	}
	s.backend = engine.PDHG{S: ps}
	return nil
}

// Engine returns the engine this handle was built for.
func (s *Solver) Engine() Engine { return s.engine }

// Solve runs the configured engine on p. The context is honored inside the
// iteration loop of every engine: a canceled or expired ctx returns the
// partial Solution with StatusCanceled together with the wrapped context
// error.
func (s *Solver) Solve(ctx context.Context, p *Problem) (*Solution, error) {
	if p == nil || p.inner == nil {
		return nil, fmt.Errorf("%w: nil problem", ErrInvalid)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	before := s.nocSnapshotLocked()
	res, err := s.backend.Solve(ctx, p.inner)
	if res == nil {
		return nil, err
	}
	sol := s.solution(res)
	s.addNoCCostLocked(sol, before)
	return sol, err
}

// SolveBatch solves a sequence of problems sharing one constraint matrix A
// (with varying b and c) on a pool of replicated fabrics — the paper's
// high-data-rate scenario. Each replica is programmed once; each solve pays
// only the O(N)-per-iteration coefficient refresh, and the problems are
// load-balanced across the pool (WithParallelism sets the width, default
// GOMAXPROCS). Solutions are bit-identical for every pool width: noise
// draws are a function of (seed, problem index), not of scheduling. Each
// Solution's WallTime and hardware counters are measured per solve; the
// first additionally carries the pool's one-time programming (and, with NoC,
// the batch's transfer) cost, plus the BatchStats roll-up.
//
// On cancellation the Solutions completed before the interruption are
// returned together with the wrapped context error; the interrupted solve
// contributes its StatusCanceled partial as the last element.
//
// Only EngineCrossbar supports batching.
func (s *Solver) SolveBatch(ctx context.Context, problems []*Problem) ([]*Solution, error) {
	if len(problems) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrInvalid)
	}
	bb, ok := s.backend.(engine.BatchBackend)
	if !ok {
		return nil, fmt.Errorf("%w: engine %s does not support batching", ErrInvalid, s.engine)
	}
	inner := make([]*lp.Problem, len(problems))
	for i, p := range problems {
		if p == nil || p.inner == nil {
			return nil, fmt.Errorf("%w: nil problem at %d", ErrInvalid, i)
		}
		inner[i] = p.inner
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	before := s.nocSnapshotLocked()
	results, err := bb.SolveBatch(ctx, inner)
	if len(results) == 0 && err != nil {
		return nil, err
	}
	out := make([]*Solution, len(results))
	for i, res := range results {
		out[i] = s.solution(res)
	}
	if len(out) > 0 {
		s.addNoCCostLocked(out[0], before)
	}
	// On cancellation the Solutions completed so far accompany the wrapped
	// context error (the canceled solve's StatusCanceled partial is last),
	// matching the single-solve contract.
	return out, err
}

// solution converts an engine result into the public form, attaching the
// hardware estimate for analog engines.
func (s *Solver) solution(res *engine.Result) *Solution {
	sol := &Solution{
		Status:              Status(res.Status),
		X:                   res.X,
		DualY:               res.Y,
		Objective:           res.Objective,
		Iterations:          res.Iterations,
		Pivots:              res.Pivots,
		WallTime:            res.WallTime,
		PrimalInfeasibility: res.PrimalInfeasibility,
		DualInfeasibility:   res.DualInfeasibility,
		DualityGap:          res.DualityGap,
		ConeInfeasibility:   res.ConeInfeasibility,
	}
	if res.Analog {
		est := perf.CrossbarCost(res.Counters, s.timing)
		sol.Hardware = &HardwareEstimate{
			Latency:      est.Latency,
			EnergyJoules: est.Energy,
			CellWrites:   res.Counters.CellWrites,
			AnalogOps:    res.Counters.MatVecOps + res.Counters.SolveOps,
			Conversions:  res.Counters.IOConversions,
			CellsSkipped: res.Counters.CellSkips,
		}
		if s.nocCfg != nil && res.NoC != (noc.Stats{}) {
			// Tiled engines report their scatter/gather traffic on the
			// result itself (single-fabric NoC engines go through the
			// fabric-snapshot path below instead).
			nest := perf.NoCCost(res.NoC, *s.nocCfg)
			sol.Hardware.Latency += nest.Latency
			sol.Hardware.EnergyJoules += nest.Energy
		}
	}
	if b := res.Batch; b != nil {
		sol.Batch = &BatchStats{
			Replicas:    b.Replicas,
			ShardSolves: b.ShardSolves,
			ShardBusy:   b.ShardBusy,
		}
	}
	if d := res.Diagnostics; d != nil {
		sol.Diagnostics = &Diagnostics{
			StuckOn:          d.StuckOn,
			StuckOff:         d.StuckOff,
			WriteRetries:     d.WriteRetries,
			Attempts:         d.Attempts,
			Remapped:         d.Remapped,
			SoftwareFallback: d.SoftwareFallback,
			RecoveredBy:      d.RecoveredBy,
			EnergyJoules:     d.EnergyJoules,
		}
	}
	if len(res.Trace) > 0 {
		sol.trace = make([]TraceRecord, len(res.Trace))
		for i, r := range res.Trace {
			sol.trace[i] = TraceRecord(r)
		}
		if s.traceJSONL != nil {
			for _, r := range res.Trace {
				s.traceJSONL.Emit(r)
			}
		}
	}
	return sol
}

// TraceErr reports the first error the WithTraceJSONL writer returned, if
// any; the stream stops at the first failure. Always nil without
// WithTraceJSONL.
func (s *Solver) TraceErr() error {
	if s.traceJSONL == nil {
		return nil
	}
	return s.traceJSONL.Err()
}

// nocSnapshotLocked records the cumulative transfer stats of every captured tiled
// fabric. Callers must hold s.mu.
func (s *Solver) nocSnapshotLocked() []noc.Stats {
	if s.nocCfg == nil {
		return nil
	}
	snaps := make([]noc.Stats, len(s.nocFabrics))
	for i, f := range s.nocFabrics {
		snaps[i] = f.Stats()
	}
	return snaps
}

// addNoCCostLocked folds the interconnect activity since the given snapshot into
// the solution's hardware estimate (fabrics created after the snapshot
// contribute their full counts). Callers must hold s.mu.
func (s *Solver) addNoCCostLocked(sol *Solution, before []noc.Stats) {
	if s.nocCfg == nil || sol.Hardware == nil {
		return
	}
	var est perf.Estimate
	for i, f := range s.nocFabrics {
		cur := f.Stats()
		var prev noc.Stats
		if i < len(before) {
			prev = before[i]
		}
		// Use the fabric's defaulted config so hop latency/energy defaults
		// apply to the cost model.
		est = est.Add(perf.NoCCost(cur.Sub(prev), f.Config()))
	}
	sol.Hardware.Latency += est.Latency
	sol.Hardware.EnergyJoules += est.Energy
}

// Solve runs the selected engine on p: a one-shot convenience wrapper that
// builds a fresh Solver per call (so crossbar variation draws are
// reproducible per seed). Long-lived callers should keep a Solver.
func Solve(p *Problem, eng Engine, opts ...Option) (*Solution, error) {
	s, err := NewSolver(eng, opts...)
	if err != nil {
		return nil, err
	}
	return s.Solve(context.Background(), p)
}

// SolveBatch solves a sequence of problems sharing one constraint matrix on
// a single persistent crossbar fabric (EngineCrossbar); see
// Solver.SolveBatch. One-shot wrapper around a fresh Solver.
func SolveBatch(problems []*Problem, opts ...Option) ([]*Solution, error) {
	s, err := NewSolver(EngineCrossbar, opts...)
	if err != nil {
		return nil, err
	}
	return s.SolveBatch(context.Background(), problems)
}
