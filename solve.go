package memlp

import (
	"fmt"
	"time"

	"github.com/memlp/memlp/internal/core"
	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/lp"
	"github.com/memlp/memlp/internal/memristor"
	"github.com/memlp/memlp/internal/noc"
	"github.com/memlp/memlp/internal/pdip"
	"github.com/memlp/memlp/internal/perf"
	"github.com/memlp/memlp/internal/simplex"
	"github.com/memlp/memlp/internal/variation"
)

// Engine selects the solver implementation.
type Engine int

// Available engines.
const (
	// EngineCrossbar is the paper's Algorithm 1: the full reformulated PDIP
	// Newton system on one (possibly NoC-tiled) analog fabric.
	EngineCrossbar Engine = iota + 1
	// EngineCrossbarLargeScale is the paper's Algorithm 2: two smaller
	// systems per iteration for crossbar-size-limited deployments.
	EngineCrossbarLargeScale
	// EnginePDIP is the software primal–dual interior-point baseline
	// (dense-LU Newton solves — the O(N³)-per-iteration reference).
	EnginePDIP
	// EnginePDIPReduced is the software PDIP with the (n+m) reduced KKT
	// backend — the "efficient library" baseline (linprog-class).
	EnginePDIPReduced
	// EngineSimplex is the two-phase simplex baseline.
	EngineSimplex
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineCrossbar:
		return "crossbar"
	case EngineCrossbarLargeScale:
		return "crossbar-large-scale"
	case EnginePDIP:
		return "pdip"
	case EnginePDIPReduced:
		return "pdip-reduced"
	case EngineSimplex:
		return "simplex"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// options collects the cross-engine configuration.
type options struct {
	variationPct   float64
	cycleNoise     float64
	seed           int64
	ioBits         int
	writeBits      int
	globalIORange  bool
	alpha          float64
	maxIterations  int
	constantStep   float64
	wireResistance float64
	useNoC         bool
	nocTopology    noc.Topology
	nocTileSize    int
	literal        bool
	timing         memristor.Timing
}

// Option configures Solve.
type Option func(*options) error

// WithVariation sets the process-variation magnitude (e.g. 0.10 for "up to
// 10%", the paper's Eq. 18 model) for crossbar engines.
func WithVariation(pct float64) Option {
	return func(o *options) error {
		if pct < 0 || pct >= 1 {
			return fmt.Errorf("%w: variation %v", ErrInvalid, pct)
		}
		o.variationPct = pct
		return nil
	}
}

// WithCycleNoise adds per-write cycle-to-cycle noise as a fraction of the
// static variation magnitude.
func WithCycleNoise(frac float64) Option {
	return func(o *options) error {
		if frac < 0 || frac > 1 {
			return fmt.Errorf("%w: cycle noise %v", ErrInvalid, frac)
		}
		o.cycleNoise = frac
		return nil
	}
}

// WithSeed fixes the random seed for variation draws, making crossbar solves
// reproducible.
func WithSeed(seed int64) Option {
	return func(o *options) error { o.seed = seed; return nil }
}

// WithIOBits sets the DAC/ADC precision (the paper uses 8).
func WithIOBits(bits int) Option {
	return func(o *options) error {
		if bits < 1 || bits > 24 {
			return fmt.Errorf("%w: io bits %d", ErrInvalid, bits)
		}
		o.ioBits = bits
		return nil
	}
}

// WithWriteBits sets the conductance write precision.
func WithWriteBits(bits int) Option {
	return func(o *options) error {
		if bits < 1 || bits > 24 {
			return fmt.Errorf("%w: write bits %d", ErrInvalid, bits)
		}
		o.writeBits = bits
		return nil
	}
}

// WithGlobalIORange selects a single shared DAC/ADC full-scale range per
// vector instead of the default per-line programmable-gain converters.
func WithGlobalIORange() Option {
	return func(o *options) error { o.globalIORange = true; return nil }
}

// WithAlpha sets the relaxed feasibility parameter α of §3.2 (≥ 1). Under
// variation v a solution legitimately violates the true constraints by up to
// ≈v, so α ≈ 1 + 2v is a sensible setting; the default scales automatically.
func WithAlpha(alpha float64) Option {
	return func(o *options) error {
		if alpha < 1 {
			return fmt.Errorf("%w: alpha %v", ErrInvalid, alpha)
		}
		o.alpha = alpha
		return nil
	}
}

// WithMaxIterations bounds the PDIP iteration count.
func WithMaxIterations(n int) Option {
	return func(o *options) error {
		if n < 1 {
			return fmt.Errorf("%w: max iterations %d", ErrInvalid, n)
		}
		o.maxIterations = n
		return nil
	}
}

// WithConstantStep sets Algorithm 2's constant step length θ ∈ (0, 1).
func WithConstantStep(theta float64) Option {
	return func(o *options) error {
		if theta <= 0 || theta >= 1 {
			return fmt.Errorf("%w: constant step %v", ErrInvalid, theta)
		}
		o.constantStep = theta
		return nil
	}
}

// WithNoC runs the crossbar engines on a tiled multi-crossbar fabric
// coordinated by the given analog NoC topology ("hierarchical" per Fig. 3a
// or "mesh" per Fig. 3b) with the given tile size.
func WithNoC(topology string, tileSize int) Option {
	return func(o *options) error {
		switch topology {
		case "hierarchical":
			o.nocTopology = noc.Hierarchical
		case "mesh":
			o.nocTopology = noc.Mesh
		default:
			return fmt.Errorf("%w: NoC topology %q", ErrInvalid, topology)
		}
		if tileSize < 1 {
			return fmt.Errorf("%w: tile size %d", ErrInvalid, tileSize)
		}
		o.useNoC = true
		o.nocTileSize = tileSize
		return nil
	}
}

// WithWireResistance enables the first-order IR-drop model: rw ohms of metal
// line resistance per crossbar segment attenuate each cell's effective
// conductance along its current path.
func WithWireResistance(rw float64) Option {
	return func(o *options) error {
		if rw < 0 {
			return fmt.Errorf("%w: wire resistance %v", ErrInvalid, rw)
		}
		o.wireResistance = rw
		return nil
	}
}

// WithLiteralFillers selects the paper-literal εI reading of Algorithm 2's
// Eq. 16c (see the design notes; unstable for m ≠ n — ablation use only).
func WithLiteralFillers() Option {
	return func(o *options) error { o.literal = true; return nil }
}

// SolveBatch solves a sequence of problems sharing one constraint matrix A
// (with varying b and c) on a single persistent crossbar fabric — the
// paper's high-data-rate scenario. The fabric is programmed once; each
// subsequent solve pays only the O(N)-per-iteration coefficient refresh, and
// the array's static process variation persists across the batch exactly as
// deployed hardware would. Only EngineCrossbar supports batching.
func SolveBatch(problems []*Problem, opts ...Option) ([]*Solution, error) {
	if len(problems) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrInvalid)
	}
	o := options{seed: 1, timing: memristor.DefaultTiming()}
	for _, fn := range opts {
		if err := fn(&o); err != nil {
			return nil, err
		}
	}
	inner := make([]*lp.Problem, len(problems))
	for i, p := range problems {
		if p == nil || p.inner == nil {
			return nil, fmt.Errorf("%w: nil problem at %d", ErrInvalid, i)
		}
		inner[i] = p.inner
	}

	xcfg := crossbar.Config{
		IOBits:         o.ioBits,
		WriteBits:      o.writeBits,
		GlobalIORange:  o.globalIORange,
		CycleNoise:     o.cycleNoise,
		WireResistance: o.wireResistance,
	}
	if o.variationPct > 0 {
		vm, err := variation.NewPaperModel(o.variationPct, o.seed)
		if err != nil {
			return nil, err
		}
		xcfg.Variation = vm
	}
	alpha := o.alpha
	if alpha == 0 {
		alpha = 1.05 + 2*o.variationPct
	}
	copts := core.Options{Fabric: core.SingleCrossbarFactory(xcfg), Alpha: alpha}
	if o.maxIterations > 0 {
		copts.Tol.MaxIterations = o.maxIterations
	}
	s, err := core.NewSolver(copts)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	results, err := s.SolveBatch(inner)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)

	out := make([]*Solution, len(results))
	var prev crossbar.Counters
	for i, res := range results {
		// Counters are cumulative on the shared fabric; report marginals.
		marginal := crossbar.Counters{
			CellWrites:    res.Counters.CellWrites - prev.CellWrites,
			MatVecOps:     res.Counters.MatVecOps - prev.MatVecOps,
			SolveOps:      res.Counters.SolveOps - prev.SolveOps,
			IOConversions: res.Counters.IOConversions - prev.IOConversions,
		}
		prev = res.Counters
		est := perf.CrossbarCost(marginal, o.timing)
		out[i] = &Solution{
			Status:     Status(res.Status),
			X:          res.X,
			DualY:      res.Y,
			Objective:  res.Objective,
			Iterations: res.Iterations,
			WallTime:   wall / time.Duration(len(results)),
			Hardware: &HardwareEstimate{
				Latency:      est.Latency,
				EnergyJoules: est.Energy,
				CellWrites:   marginal.CellWrites,
				AnalogOps:    marginal.MatVecOps + marginal.SolveOps,
				Conversions:  marginal.IOConversions,
			},
			PrimalInfeasibility: res.PrimalInfeasibility,
			DualInfeasibility:   res.DualInfeasibility,
			DualityGap:          res.DualityGap,
		}
	}
	return out, nil
}

// Solve runs the selected engine on p.
func Solve(p *Problem, engine Engine, opts ...Option) (*Solution, error) {
	if p == nil || p.inner == nil {
		return nil, fmt.Errorf("%w: nil problem", ErrInvalid)
	}
	o := options{seed: 1, timing: memristor.DefaultTiming()}
	for _, fn := range opts {
		if err := fn(&o); err != nil {
			return nil, err
		}
	}

	switch engine {
	case EnginePDIP, EnginePDIPReduced:
		return solveSoftwarePDIP(p, engine, o)
	case EngineSimplex:
		return solveSimplex(p)
	case EngineCrossbar, EngineCrossbarLargeScale:
		return solveCrossbar(p, engine, o)
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownEngine, int(engine))
	}
}

func solveSoftwarePDIP(p *Problem, engine Engine, o options) (*Solution, error) {
	backend := pdip.NewtonFull
	if engine == EnginePDIPReduced {
		backend = pdip.NewtonReduced
	}
	tol := lp.DefaultTolerances()
	if o.maxIterations > 0 {
		tol.MaxIterations = o.maxIterations
	}
	s, err := pdip.New(pdip.WithBackend(backend), pdip.WithTolerances(tol))
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := s.Solve(p.inner)
	if err != nil {
		return nil, err
	}
	return &Solution{
		Status:              Status(res.Status),
		X:                   res.X,
		DualY:               res.Y,
		Objective:           res.Objective,
		Iterations:          res.Iterations,
		WallTime:            time.Since(start),
		PrimalInfeasibility: res.PrimalInfeasibility,
		DualInfeasibility:   res.DualInfeasibility,
		DualityGap:          res.DualityGap,
	}, nil
}

func solveSimplex(p *Problem) (*Solution, error) {
	s, err := simplex.New()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := s.Solve(p.inner)
	if err != nil {
		return nil, err
	}
	return &Solution{
		Status:    Status(res.Status),
		X:         res.X,
		Objective: res.Objective,
		Pivots:    res.Pivots,
		WallTime:  time.Since(start),
	}, nil
}

func solveCrossbar(p *Problem, engine Engine, o options) (*Solution, error) {
	xcfg := crossbar.Config{
		IOBits:         o.ioBits,
		WriteBits:      o.writeBits,
		GlobalIORange:  o.globalIORange,
		CycleNoise:     o.cycleNoise,
		WireResistance: o.wireResistance,
	}
	if o.variationPct > 0 {
		vm, err := variation.NewPaperModel(o.variationPct, o.seed)
		if err != nil {
			return nil, err
		}
		xcfg.Variation = vm
	}

	var factory core.FabricFactory
	var nocCfg *noc.Config
	if o.useNoC {
		cfg := noc.Config{Topology: o.nocTopology, TileSize: o.nocTileSize, Crossbar: xcfg}
		nocCfg = &cfg
		factory = func(size int) (core.Fabric, error) {
			c := cfg
			needed := (size + c.TileSize - 1) / c.TileSize
			if needed*needed > c.MaxTiles {
				c.MaxTiles = needed * needed
			}
			return noc.New(c)
		}
	} else {
		factory = core.SingleCrossbarFactory(xcfg)
	}

	alpha := o.alpha
	if alpha == 0 {
		alpha = 1.05 + 2*o.variationPct
	}
	copts := core.Options{
		Fabric:         factory,
		Alpha:          alpha,
		ConstantStep:   o.constantStep,
		LiteralFillers: o.literal,
	}
	if o.maxIterations > 0 {
		copts.Tol.MaxIterations = o.maxIterations
	}

	start := time.Now()
	var res *core.Result
	var err error
	var nocFabrics []*noc.TiledFabric
	if o.useNoC {
		// Capture the fabrics so NoC transfer stats reach the estimate.
		inner := factory
		factory = func(size int) (core.Fabric, error) {
			f, err := inner(size)
			if err != nil {
				return nil, err
			}
			if tf, ok := f.(*noc.TiledFabric); ok {
				nocFabrics = append(nocFabrics, tf)
			}
			return f, nil
		}
		copts.Fabric = factory
	}

	switch engine {
	case EngineCrossbar:
		var s *core.Solver
		s, err = core.NewSolver(copts)
		if err != nil {
			return nil, err
		}
		res, err = s.Solve(p.inner)
	case EngineCrossbarLargeScale:
		var s *core.LargeScaleSolver
		s, err = core.NewLargeScaleSolver(copts)
		if err != nil {
			return nil, err
		}
		res, err = s.Solve(p.inner)
	}
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)

	est := perf.CrossbarCost(res.Counters, o.timing)
	if nocCfg != nil {
		for _, tf := range nocFabrics {
			est = est.Add(perf.NoCCost(tf.Stats(), *nocCfg))
		}
	}

	return &Solution{
		Status:     Status(res.Status),
		X:          res.X,
		DualY:      res.Y,
		Objective:  res.Objective,
		Iterations: res.Iterations,
		WallTime:   wall,
		Hardware: &HardwareEstimate{
			Latency:      est.Latency,
			EnergyJoules: est.Energy,
			CellWrites:   res.Counters.CellWrites,
			AnalogOps:    res.Counters.MatVecOps + res.Counters.SolveOps,
			Conversions:  res.Counters.IOConversions,
		},
		PrimalInfeasibility: res.PrimalInfeasibility,
		DualInfeasibility:   res.DualInfeasibility,
		DualityGap:          res.DualityGap,
	}, nil
}
