package lp

import (
	"errors"
	"math"
	"testing"

	"github.com/memlp/memlp/internal/linalg"
)

func mustMatrix(t *testing.T, rows [][]float64) *linalg.Matrix {
	t.Helper()
	m, err := linalg.MatrixFromRows(rows)
	if err != nil {
		t.Fatalf("MatrixFromRows: %v", err)
	}
	return m
}

// tinyLP returns max 3x+2y s.t. x+y ≤ 4, x+3y ≤ 6, x,y ≥ 0.
// The optimum is x=4, y=0 with objective 12.
func tinyLP(t *testing.T) *Problem {
	t.Helper()
	p, err := New("tiny",
		linalg.VectorOf(3, 2),
		mustMatrix(t, [][]float64{{1, 1}, {1, 3}}),
		linalg.VectorOf(4, 6))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 1}})
	tests := []struct {
		name string
		c, b linalg.Vector
		a    *linalg.Matrix
	}{
		{"nil matrix", linalg.VectorOf(1), linalg.VectorOf(1), nil},
		{"c wrong len", linalg.VectorOf(1), linalg.VectorOf(1), a},
		{"b wrong len", linalg.VectorOf(1, 2), linalg.VectorOf(1, 2), a},
		{"nan in c", linalg.VectorOf(math.NaN(), 1), linalg.VectorOf(1), a},
		{"inf in b", linalg.VectorOf(1, 2), linalg.VectorOf(math.Inf(1)), a},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New("x", tc.c, tc.a, tc.b); !errors.Is(err, ErrInvalid) {
				t.Errorf("New = %v, want ErrInvalid", err)
			}
		})
	}
}

func TestDimensions(t *testing.T) {
	p := tinyLP(t)
	if p.NumVariables() != 2 || p.NumConstraints() != 2 {
		t.Errorf("dims = (%d, %d), want (2, 2)", p.NumVariables(), p.NumConstraints())
	}
}

func TestObjective(t *testing.T) {
	p := tinyLP(t)
	got, err := p.Objective(linalg.VectorOf(4, 0))
	if err != nil {
		t.Fatalf("Objective: %v", err)
	}
	if got != 12 {
		t.Errorf("Objective = %v, want 12", got)
	}
}

func TestIsFeasible(t *testing.T) {
	p := tinyLP(t)
	tests := []struct {
		name string
		x    linalg.Vector
		tol  float64
		want bool
	}{
		{"origin", linalg.VectorOf(0, 0), 0, true},
		{"optimum", linalg.VectorOf(4, 0), 1e-9, true},
		{"interior", linalg.VectorOf(1, 1), 0, true},
		{"violates first", linalg.VectorOf(5, 0), 1e-9, false},
		{"negative", linalg.VectorOf(-1, 0), 1e-9, false},
		{"slightly over within tol", linalg.VectorOf(4.1, 0), 0.05, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := p.IsFeasible(tc.x, tc.tol)
			if err != nil {
				t.Fatalf("IsFeasible: %v", err)
			}
			if got != tc.want {
				t.Errorf("IsFeasible(%v, %v) = %v, want %v", tc.x, tc.tol, got, tc.want)
			}
		})
	}
	if _, err := p.IsFeasible(linalg.VectorOf(1), 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("wrong size: %v, want ErrInvalid", err)
	}
}

func TestSlack(t *testing.T) {
	p := tinyLP(t)
	s, err := p.Slack(linalg.VectorOf(1, 1))
	if err != nil {
		t.Fatalf("Slack: %v", err)
	}
	if s[0] != 2 || s[1] != 2 {
		t.Errorf("Slack = %v, want [2 2]", s)
	}
}

func TestDualShape(t *testing.T) {
	p := tinyLP(t)
	d := p.Dual()
	if d.NumVariables() != p.NumConstraints() || d.NumConstraints() != p.NumVariables() {
		t.Errorf("dual dims = (%d, %d), want transposed", d.NumVariables(), d.NumConstraints())
	}
	// Dual data: max (−b)ᵀy s.t. (−Aᵀ)y ≤ −c.
	if d.C[0] != -4 || d.C[1] != -6 {
		t.Errorf("dual c = %v, want [-4 -6]", d.C)
	}
	if d.A.At(0, 0) != -1 || d.A.At(0, 1) != -1 || d.A.At(1, 0) != -1 || d.A.At(1, 1) != -3 {
		t.Errorf("dual A wrong: %v", d.A)
	}
	if d.B[0] != -3 || d.B[1] != -2 {
		t.Errorf("dual b = %v, want [-3 -2]", d.B)
	}
}

func TestDualOfDualIsPrimal(t *testing.T) {
	p := tinyLP(t)
	dd := p.Dual().Dual()
	if !dd.A.Equal(p.A, 0) {
		t.Error("dual∘dual A != A")
	}
	for i := range p.C {
		if dd.C[i] != p.C[i] {
			t.Errorf("dual∘dual c[%d] = %v, want %v", i, dd.C[i], p.C[i])
		}
	}
	for i := range p.B {
		if dd.B[i] != p.B[i] {
			t.Errorf("dual∘dual b[%d] = %v, want %v", i, dd.B[i], p.B[i])
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	p := tinyLP(t)
	q := p.Clone()
	q.C[0] = 99
	q.A.Set(0, 0, 99)
	q.B[0] = 99
	if p.C[0] == 99 || p.A.At(0, 0) == 99 || p.B[0] == 99 {
		t.Error("Clone aliases original storage")
	}
}
