package lp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/memlp/memlp/internal/linalg"
)

// jsonProblem is the wire representation for JSON encoding.
type jsonProblem struct {
	Name  string      `json:"name,omitempty"`
	C     []float64   `json:"c"`
	A     [][]float64 `json:"a"`
	B     []float64   `json:"b"`
	Cones []jsonCone  `json:"cones,omitempty"`
}

// jsonCone mirrors Cone with the textual type keyword ("nonneg"/"soc").
type jsonCone struct {
	Type string `json:"type"`
	Dim  int    `json:"dim"`
}

// MarshalJSON implements json.Marshaler.
func (p *Problem) MarshalJSON() ([]byte, error) {
	rows := make([][]float64, p.A.Rows())
	for i := range rows {
		rows[i] = p.A.Row(i)
	}
	var cones []jsonCone
	for _, c := range p.Cones {
		cones = append(cones, jsonCone{Type: c.Type.String(), Dim: c.Dim})
	}
	return json.Marshal(jsonProblem{Name: p.Name, C: p.C, A: rows, B: p.B, Cones: cones})
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Problem) UnmarshalJSON(data []byte) error {
	var jp jsonProblem
	if err := json.Unmarshal(data, &jp); err != nil {
		return fmt.Errorf("lp: decode: %w", err)
	}
	a, err := linalg.MatrixFromRows(jp.A)
	if err != nil {
		return fmt.Errorf("lp: decode matrix: %w", err)
	}
	var cones []Cone
	for i, jc := range jp.Cones {
		t, err := parseConeType(jc.Type)
		if err != nil {
			return fmt.Errorf("%w: cone %d: %v", ErrInvalid, i, err)
		}
		cones = append(cones, Cone{Type: t, Dim: jc.Dim})
	}
	tmp := Problem{Name: jp.Name, C: jp.C, A: a, B: jp.B, Cones: cones}
	if err := tmp.Validate(); err != nil {
		return err
	}
	*p = tmp
	return nil
}

func parseConeType(s string) (ConeType, error) {
	switch s {
	case "nonneg":
		return ConeNonNeg, nil
	case "soc":
		return ConeSOC, nil
	default:
		return 0, fmt.Errorf("unknown cone type %q", s)
	}
}

// WriteText writes the problem in the compact textual format accepted by
// ReadText:
//
//	# optional comments
//	name <name>
//	maximize 3 2
//	subject 1 1 <= 4
//	subject 1 3 <= 6
//	cone nonneg 1
//	cone soc 2
//
// Each "subject" line gives one row of A followed by "<=" and the bound.
// Optional "cone" lines partition the constraint rows, in order, into
// nonnegative-orthant rows and second-order cone blocks; without any the
// problem is a pure LP.
func (p *Problem) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if p.Name != "" {
		fmt.Fprintf(bw, "name %s\n", p.Name)
	}
	fmt.Fprint(bw, "maximize")
	for _, v := range p.C {
		fmt.Fprintf(bw, " %g", v)
	}
	fmt.Fprintln(bw)
	for i := 0; i < p.A.Rows(); i++ {
		fmt.Fprint(bw, "subject")
		for _, v := range p.A.RawRow(i) {
			fmt.Fprintf(bw, " %g", v)
		}
		fmt.Fprintf(bw, " <= %g\n", p.B[i])
	}
	for _, c := range p.Cones {
		fmt.Fprintf(bw, "cone %s %d\n", c.Type, c.Dim)
	}
	return bw.Flush()
}

// ReadText parses the textual format written by WriteText.
func ReadText(r io.Reader) (*Problem, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var (
		name  string
		c     linalg.Vector
		rows  [][]float64
		b     linalg.Vector
		cones []Cone
	)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "name":
			if len(fields) < 2 {
				return nil, fmt.Errorf("%w: line %d: name requires a value", ErrInvalid, lineNo)
			}
			name = strings.Join(fields[1:], " ")
		case "maximize":
			vec, err := parseFloats(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrInvalid, lineNo, err)
			}
			c = vec
		case "subject":
			idx := -1
			for i, f := range fields {
				if f == "<=" {
					idx = i
					break
				}
			}
			if idx < 0 || idx != len(fields)-2 {
				return nil, fmt.Errorf("%w: line %d: want 'subject a1 ... an <= b'", ErrInvalid, lineNo)
			}
			row, err := parseFloats(fields[1:idx])
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrInvalid, lineNo, err)
			}
			bound, err := strconv.ParseFloat(fields[idx+1], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: bad bound %q", ErrInvalid, lineNo, fields[idx+1])
			}
			rows = append(rows, row)
			b = append(b, bound)
		case "cone":
			if len(fields) != 3 {
				return nil, fmt.Errorf("%w: line %d: want 'cone <nonneg|soc> <dim>'", ErrInvalid, lineNo)
			}
			t, err := parseConeType(fields[1])
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrInvalid, lineNo, err)
			}
			dim, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: bad cone dimension %q", ErrInvalid, lineNo, fields[2])
			}
			cones = append(cones, Cone{Type: t, Dim: dim})
		default:
			return nil, fmt.Errorf("%w: line %d: unknown directive %q", ErrInvalid, lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lp: read: %w", err)
	}
	if c == nil {
		return nil, fmt.Errorf("%w: missing maximize line", ErrInvalid)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%w: no constraints", ErrInvalid)
	}
	a, err := linalg.MatrixFromRows(rows)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	return NewConic(name, c, a, b, cones)
}

func parseFloats(fields []string) ([]float64, error) {
	out := make([]float64, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}
