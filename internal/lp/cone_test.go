package lp

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"github.com/memlp/memlp/internal/linalg"
)

func socpFixture(t *testing.T) *Problem {
	t.Helper()
	a, err := linalg.MatrixFromRows([][]float64{
		{1, 1},
		{0, 0},
		{1, 0},
		{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewConic("fixture", linalg.Vector{1, 2}, a, linalg.Vector{4, 3, 0, 0},
		[]Cone{{Type: ConeNonNeg, Dim: 1}, {Type: ConeSOC, Dim: 3}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConicValidation(t *testing.T) {
	a, _ := linalg.MatrixFromRows([][]float64{{1, 1}, {1, 3}})
	c := linalg.Vector{3, 2}
	b := linalg.Vector{4, 6}

	cases := []struct {
		name  string
		cones []Cone
		ok    bool
	}{
		{"nil (pure LP)", nil, true},
		{"explicit all-orthant", []Cone{{Type: ConeNonNeg, Dim: 2}}, true},
		{"full soc", []Cone{{Type: ConeSOC, Dim: 2}}, true},
		{"short partition", []Cone{{Type: ConeNonNeg, Dim: 1}}, false},
		{"long partition", []Cone{{Type: ConeNonNeg, Dim: 3}}, false},
		{"soc dim 1", []Cone{{Type: ConeNonNeg, Dim: 1}, {Type: ConeSOC, Dim: 1}}, false},
		{"unknown type", []Cone{{Type: ConeType(9), Dim: 2}}, false},
	}
	for _, tc := range cases {
		_, err := NewConic("t", c, a, b, tc.cones)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("%s: validation passed, want error", tc.name)
			} else if !errors.Is(err, ErrInvalid) {
				t.Errorf("%s: error %v does not wrap ErrInvalid", tc.name, err)
			}
		}
	}
}

func TestIsConicAndBlocks(t *testing.T) {
	p := socpFixture(t)
	if !p.IsConic() {
		t.Error("fixture not reported conic")
	}
	blocks := p.SOCBlocks()
	if len(blocks) != 1 || blocks[0].Start != 1 || blocks[0].Dim != 3 {
		t.Errorf("SOCBlocks = %+v, want [{1 3}]", blocks)
	}

	lp, _ := GenerateFeasible(GenConfig{Constraints: 4, Seed: 1})
	if lp.IsConic() || lp.SOCBlocks() != nil {
		t.Error("pure LP reported conic")
	}
	// An explicit all-orthant list is the same degenerate case.
	lp.Cones = []Cone{{Type: ConeNonNeg, Dim: 4}}
	if lp.IsConic() {
		t.Error("all-orthant cones reported conic")
	}
}

func TestConicIsFeasible(t *testing.T) {
	p := socpFixture(t)
	// x = (1, 1): orthant row 1+1 ≤ 4 ok; slack of the soc block is
	// (3, −1, −1) with ‖tail‖ = √2 < 3: interior.
	ok, err := p.IsFeasible(linalg.Vector{1, 1}, 1e-9)
	if err != nil || !ok {
		t.Errorf("interior point rejected: ok=%v err=%v", ok, err)
	}
	// x = (3, 0): slack (3, −3, 0), ‖tail‖ = 3 = axis: boundary, accepted.
	ok, err = p.IsFeasible(linalg.Vector{3, 0}, 1e-9)
	if err != nil || !ok {
		t.Errorf("boundary point rejected: ok=%v err=%v", ok, err)
	}
	// x = (4, 0): slack (3, −4, 0) leaves the cone.
	ok, err = p.IsFeasible(linalg.Vector{4, 0}, 1e-9)
	if err != nil || ok {
		t.Errorf("exterior point accepted: ok=%v err=%v", ok, err)
	}
}

func TestConicCloneAndDual(t *testing.T) {
	p := socpFixture(t)
	q := p.Clone()
	if !conesEqual(p.Cones, q.Cones) {
		t.Errorf("clone cones %+v != %+v", q.Cones, p.Cones)
	}
	q.Cones[1].Dim = 2
	if p.Cones[1].Dim != 3 {
		t.Error("clone shares cone storage with original")
	}
	if p.Dual() != nil {
		t.Error("Dual of a conic problem should be nil")
	}
	lp, _ := GenerateFeasible(GenConfig{Constraints: 4, Seed: 1})
	if lp.Dual() == nil {
		t.Error("Dual of a pure LP should not be nil")
	}
}

func TestConicTextRoundTrip(t *testing.T) {
	p := socpFixture(t)
	var buf bytes.Buffer
	if err := p.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	q, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if !conesEqual(p.Cones, q.Cones) {
		t.Errorf("text round-trip cones %+v != %+v", q.Cones, p.Cones)
	}
	if q.Name != p.Name || len(q.C) != len(p.C) || len(q.B) != len(p.B) {
		t.Errorf("text round-trip lost data: %+v", q)
	}
}

func TestConicJSONRoundTrip(t *testing.T) {
	p := socpFixture(t)
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var q Problem
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !conesEqual(p.Cones, q.Cones) {
		t.Errorf("json round-trip cones %+v != %+v", q.Cones, p.Cones)
	}

	// A pure LP must not grow a cones key (wire compatibility).
	lp, _ := GenerateFeasible(GenConfig{Constraints: 3, Seed: 2})
	data, err = json.Marshal(lp)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("cones")) {
		t.Errorf("pure LP JSON contains cones key: %s", data)
	}
}

func TestConicMPSRejected(t *testing.T) {
	p := socpFixture(t)
	var buf bytes.Buffer
	err := p.WriteMPS(&buf)
	if !errors.Is(err, ErrConicUnsupported) {
		t.Errorf("WriteMPS error = %v, want ErrConicUnsupported", err)
	}
	if !errors.Is(err, ErrInvalid) {
		t.Errorf("ErrConicUnsupported does not wrap ErrInvalid")
	}
}

func TestGenerateFeasibleSOCP(t *testing.T) {
	for _, cfg := range []SOCGenConfig{
		{GenConfig: GenConfig{Constraints: 8, Seed: 1}},
		{GenConfig: GenConfig{Constraints: 12, Seed: 7}, Blocks: 2, BlockDim: 4},
	} {
		p, err := GenerateFeasibleSOCP(cfg)
		if err != nil {
			t.Fatalf("generate %+v: %v", cfg, err)
		}
		if !p.IsConic() {
			t.Fatal("generated problem is not conic")
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("generated problem invalid: %v", err)
		}
		// Determinism: same seed, same instance.
		q, err := GenerateFeasibleSOCP(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var b1, b2 bytes.Buffer
		if err := p.WriteText(&b1); err != nil {
			t.Fatal(err)
		}
		if err := q.WriteText(&b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Error("same seed produced different SOCP instances")
		}
	}

	if _, err := GenerateFeasibleSOCP(SOCGenConfig{
		GenConfig: GenConfig{Constraints: 3, Seed: 1}, Blocks: 1, BlockDim: 3,
	}); !errors.Is(err, ErrInvalid) {
		t.Errorf("all-soc layout accepted, want ErrInvalid (no orthant row): %v", err)
	}
}
