package lp

import (
	"fmt"

	"github.com/memlp/memlp/internal/cone"
	"github.com/memlp/memlp/internal/linalg"
)

// ErrConicUnsupported is returned by engines and serializers that only handle
// the all-orthant (pure LP) case when handed a problem with second-order cone
// blocks. It wraps ErrInvalid so errors.Is(err, ErrInvalid) keeps matching.
var ErrConicUnsupported = fmt.Errorf("%w: second-order cone blocks not supported", ErrInvalid)

// ConeType identifies one kind of cone block over consecutive constraint rows.
type ConeType int

const (
	// ConeNonNeg is the nonnegative orthant: each covered row i contributes
	// the scalar condition (b − A·x)_i ≥ 0 — the classic LP inequality.
	ConeNonNeg ConeType = iota + 1
	// ConeSOC is a second-order (Lorentz) cone over Dim ≥ 2 consecutive
	// rows s = b − A·x: s₀ ≥ ‖(s₁, …, s_{Dim−1})‖₂, axis row first.
	ConeSOC
)

// String returns the textual directive keyword for the cone type.
func (t ConeType) String() string {
	switch t {
	case ConeNonNeg:
		return "nonneg"
	case ConeSOC:
		return "soc"
	default:
		return fmt.Sprintf("ConeType(%d)", int(t))
	}
}

// Cone describes one block of Dim consecutive constraint rows belonging to a
// single cone. A problem's Cones list is ordered and partitions rows 0..m−1.
type Cone struct {
	Type ConeType
	Dim  int
}

// NewConic constructs a validated conic problem: maximize cᵀx subject to
// b − A·x ∈ K and x ≥ 0, where K is the ordered product of the given cones
// over the constraint rows. A nil or all-orthant cone list yields the
// degenerate LP case New produces.
func NewConic(name string, c linalg.Vector, a *linalg.Matrix, b linalg.Vector, cones []Cone) (*Problem, error) {
	p := &Problem{Name: name, C: c, A: a, B: b, Cones: cones}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// IsConic reports whether the problem has at least one second-order cone
// block. An explicit all-orthant cone list is NOT conic: it is the same
// degenerate LP shape as a nil list and takes the identical solve path.
func (p *Problem) IsConic() bool {
	for _, c := range p.Cones {
		if c.Type == ConeSOC {
			return true
		}
	}
	return false
}

// SOCBlocks returns the second-order cone blocks as (start, dim) row spans in
// ascending order, nil for a pure LP. The result aliases no problem state.
func (p *Problem) SOCBlocks() []cone.Block {
	var blocks []cone.Block
	start := 0
	for _, c := range p.Cones {
		if c.Type == ConeSOC {
			blocks = append(blocks, cone.Block{Start: start, Dim: c.Dim})
		}
		start += c.Dim
	}
	return blocks
}

// validateCones checks the cone list against m constraint rows: known types,
// positive dimensions (≥ 2 for SOC), and an exact partition of the rows.
func validateCones(cones []Cone, m int) error {
	total := 0
	for i, c := range cones {
		switch c.Type {
		case ConeNonNeg:
			if c.Dim < 1 {
				return fmt.Errorf("%w: cone %d: nonneg dimension %d < 1", ErrInvalid, i, c.Dim)
			}
		case ConeSOC:
			if c.Dim < 2 {
				return fmt.Errorf("%w: cone %d: soc dimension %d < 2", ErrInvalid, i, c.Dim)
			}
		default:
			return fmt.Errorf("%w: cone %d: unknown type %d", ErrInvalid, i, int(c.Type))
		}
		total += c.Dim
	}
	if total != m {
		return fmt.Errorf("%w: cone dimensions sum to %d, want %d constraint rows", ErrInvalid, total, m)
	}
	return nil
}

// cloneCones deep-copies a cone list (nil stays nil).
func cloneCones(cones []Cone) []Cone {
	if cones == nil {
		return nil
	}
	out := make([]Cone, len(cones))
	copy(out, cones)
	return out
}

// conesEqual reports whether two cone lists describe the same partition,
// treating nil and empty as equal.
func conesEqual(a, b []Cone) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
