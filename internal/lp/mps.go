package lp

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/memlp/memlp/internal/linalg"
)

// ReadMPS parses a linear program in (fixed or free form) MPS format — the
// industry-standard interchange format — and converts it to the canonical
// form `maximize cᵀx s.t. A·x ≤ b, x ≥ 0`.
//
// Supported sections: NAME, ROWS (N/L/G/E), COLUMNS, RHS, RANGES (rejected),
// BOUNDS (only the default x ≥ 0 bounds, i.e. LO 0 / PL, are accepted),
// ENDATA. MPS minimizes by default; the objective is negated into the
// canonical maximize form. G-rows are negated into ≤ rows; E-rows become a
// ≤/≥ pair.
//
// The subset is deliberately strict: anything outside it returns ErrInvalid
// with a line number rather than a silently wrong problem.
func ReadMPS(r io.Reader) (*Problem, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	type rowInfo struct {
		kind  byte // N, L, G, E
		index int  // row index among constraints (unused for N)
	}

	var (
		name     string
		objRow   string
		rows     = map[string]*rowInfo{}
		rowOrder []string
		cols     = map[string]map[string]float64{} // col → row → coeff
		colOrder []string
		rhs      = map[string]float64{}
		section  string
		lineNo   int
	)

	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		line := strings.TrimRight(raw, " \t\r")
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		if !strings.HasPrefix(raw, " ") && !strings.HasPrefix(raw, "\t") {
			// Section header.
			fields := strings.Fields(line)
			if len(fields) == 0 {
				// Whitespace-only line (e.g. a lone vertical tab).
				continue
			}
			section = strings.ToUpper(fields[0])
			switch section {
			case "NAME":
				if len(fields) > 1 {
					name = fields[1]
				}
			case "ROWS", "COLUMNS", "RHS", "BOUNDS", "ENDATA":
			case "RANGES":
				return nil, fmt.Errorf("%w: line %d: RANGES section not supported", ErrInvalid, lineNo)
			case "OBJSENSE":
				return nil, fmt.Errorf("%w: line %d: OBJSENSE section not supported (MPS minimizes by default)", ErrInvalid, lineNo)
			default:
				return nil, fmt.Errorf("%w: line %d: unknown section %q", ErrInvalid, lineNo, section)
			}
			if section == "ENDATA" {
				break
			}
			continue
		}

		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch section {
		case "ROWS":
			if len(fields) != 2 {
				return nil, fmt.Errorf("%w: line %d: ROWS entries are '<type> <name>'", ErrInvalid, lineNo)
			}
			kind := strings.ToUpper(fields[0])
			rname := fields[1]
			if _, dup := rows[rname]; dup {
				return nil, fmt.Errorf("%w: line %d: duplicate row %q", ErrInvalid, lineNo, rname)
			}
			switch kind {
			case "N":
				if objRow != "" {
					return nil, fmt.Errorf("%w: line %d: multiple N rows", ErrInvalid, lineNo)
				}
				objRow = rname
				rows[rname] = &rowInfo{kind: 'N'}
			case "L", "G", "E":
				rows[rname] = &rowInfo{kind: kind[0]}
				rowOrder = append(rowOrder, rname)
			default:
				return nil, fmt.Errorf("%w: line %d: unknown row type %q", ErrInvalid, lineNo, kind)
			}

		case "COLUMNS":
			if len(fields) >= 3 && strings.EqualFold(fields[2], "'MARKER'") {
				return nil, fmt.Errorf("%w: line %d: integer markers not supported (LP only)", ErrInvalid, lineNo)
			}
			if len(fields) != 3 && len(fields) != 5 {
				return nil, fmt.Errorf("%w: line %d: COLUMNS entries are '<col> <row> <val> [<row> <val>]'", ErrInvalid, lineNo)
			}
			cname := fields[0]
			if _, seen := cols[cname]; !seen {
				cols[cname] = map[string]float64{}
				colOrder = append(colOrder, cname)
			}
			for k := 1; k+1 < len(fields); k += 2 {
				rname := fields[k]
				if _, ok := rows[rname]; !ok {
					return nil, fmt.Errorf("%w: line %d: unknown row %q", ErrInvalid, lineNo, rname)
				}
				v, err := strconv.ParseFloat(fields[k+1], 64)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: bad value %q", ErrInvalid, lineNo, fields[k+1])
				}
				cols[cname][rname] += v
			}

		case "RHS":
			if len(fields) != 3 && len(fields) != 5 {
				return nil, fmt.Errorf("%w: line %d: RHS entries are '<set> <row> <val> [<row> <val>]'", ErrInvalid, lineNo)
			}
			for k := 1; k+1 < len(fields); k += 2 {
				rname := fields[k]
				if _, ok := rows[rname]; !ok {
					return nil, fmt.Errorf("%w: line %d: unknown row %q", ErrInvalid, lineNo, rname)
				}
				v, err := strconv.ParseFloat(fields[k+1], 64)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: bad value %q", ErrInvalid, lineNo, fields[k+1])
				}
				rhs[rname] = v
			}

		case "BOUNDS":
			if len(fields) < 3 {
				return nil, fmt.Errorf("%w: line %d: short BOUNDS entry", ErrInvalid, lineNo)
			}
			kind := strings.ToUpper(fields[0])
			switch kind {
			case "PL": // x ≥ 0, the default
			case "LO":
				if len(fields) != 4 {
					return nil, fmt.Errorf("%w: line %d: LO bound needs a value", ErrInvalid, lineNo)
				}
				if v, err := strconv.ParseFloat(fields[3], 64); err != nil || v != 0 {
					return nil, fmt.Errorf("%w: line %d: only the default lower bound 0 is supported", ErrInvalid, lineNo)
				}
			default:
				return nil, fmt.Errorf("%w: line %d: bound type %q not supported (canonical form needs x ≥ 0)", ErrInvalid, lineNo, kind)
			}

		case "":
			return nil, fmt.Errorf("%w: line %d: data before any section", ErrInvalid, lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lp: read MPS: %w", err)
	}
	if objRow == "" {
		return nil, fmt.Errorf("%w: no objective (N) row", ErrInvalid)
	}
	if len(colOrder) == 0 {
		return nil, fmt.Errorf("%w: no columns", ErrInvalid)
	}
	if len(rowOrder) == 0 {
		return nil, fmt.Errorf("%w: no constraint rows", ErrInvalid)
	}

	// Count output constraints (E rows expand to two).
	var outRows int
	for _, rname := range rowOrder {
		if rows[rname].kind == 'E' {
			outRows += 2
		} else {
			outRows++
		}
	}

	n := len(colOrder)
	a := linalg.NewMatrix(outRows, n)
	b := linalg.NewVector(outRows)
	c := linalg.NewVector(n)

	colIdx := map[string]int{}
	for j, cn := range colOrder {
		colIdx[cn] = j
	}

	ri := 0
	for _, rname := range rowOrder {
		info := rows[rname]
		bound := rhs[rname]
		// sign = +1 encodes "row ≤ bound"; G rows are negated.
		emit := func(sign float64) {
			for cn, coeffs := range cols {
				if v, ok := coeffs[rname]; ok && v != 0 {
					a.Set(ri, colIdx[cn], sign*v)
				}
			}
			b[ri] = sign * bound
			ri++
		}
		switch info.kind {
		case 'L':
			emit(1)
		case 'G':
			emit(-1)
		case 'E':
			emit(1)
			emit(-1)
		}
	}

	// MPS minimizes; canonical form maximizes.
	for cn, coeffs := range cols {
		if v, ok := coeffs[objRow]; ok {
			c[colIdx[cn]] = -v
		}
	}

	if name == "" {
		name = "mps"
	}
	return New(name, c, a, b)
}

// WriteMPS serializes the problem in MPS format (as a minimization of −cᵀx,
// with all constraints as L rows). ReadMPS(WriteMPS(p)) round-trips the
// canonical form exactly up to row/column naming. MPS has no cone sections;
// conic problems are rejected with ErrConicUnsupported — use WriteText or
// JSON for those.
func (p *Problem) WriteMPS(w io.Writer) error {
	if p.IsConic() {
		return ErrConicUnsupported
	}
	bw := bufio.NewWriter(w)
	name := p.Name
	if name == "" {
		name = "MEMLP"
	}
	fmt.Fprintf(bw, "NAME %s\n", sanitizeMPSName(name))
	fmt.Fprintln(bw, "ROWS")
	fmt.Fprintln(bw, " N COST")
	for i := 0; i < p.NumConstraints(); i++ {
		fmt.Fprintf(bw, " L R%d\n", i)
	}
	fmt.Fprintln(bw, "COLUMNS")
	for j := 0; j < p.NumVariables(); j++ {
		if p.C[j] != 0 {
			fmt.Fprintf(bw, " X%d COST %.17g\n", j, -p.C[j])
		}
		for i := 0; i < p.NumConstraints(); i++ {
			if v := p.A.At(i, j); v != 0 {
				fmt.Fprintf(bw, " X%d R%d %.17g\n", j, i, v)
			}
		}
	}
	fmt.Fprintln(bw, "RHS")
	for i := 0; i < p.NumConstraints(); i++ {
		if p.B[i] != 0 {
			fmt.Fprintf(bw, " RHS R%d %.17g\n", i, p.B[i])
		}
	}
	fmt.Fprintln(bw, "ENDATA")
	return bw.Flush()
}

func sanitizeMPSName(s string) string {
	out := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
	if out == "" {
		out = "MEMLP"
	}
	return out
}

// sortedKeys is a test helper exposed for deterministic iteration in
// diagnostics; kept here so the MPS code has no map-order dependence in its
// output path (columns are emitted in index order above).
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
