// Package lp defines linear programs in the paper's canonical form,
//
//	maximize cᵀx subject to A·x ≤ b, x ≥ 0    (A ∈ R^{m×n})
//
// together with the symmetric dual, feasibility predicates, random instance
// generators matching the paper's evaluation setup (§4.2), and JSON/text
// serialization for the command-line tools.
package lp

import (
	"errors"
	"fmt"
	"math"

	"github.com/memlp/memlp/internal/cone"
	"github.com/memlp/memlp/internal/linalg"
)

// Errors returned by problem construction and validation.
var (
	ErrInvalid = errors.New("lp: invalid problem")
)

// Problem is an optimization problem in conic canonical form: maximize cᵀx
// subject to b − A·x ∈ K and x ≥ 0, where K is an ordered product of
// nonnegative-orthant rows and second-order cone blocks described by Cones.
// A nil (or all-orthant) cone list is the degenerate LP case b − A·x ≥ 0,
// i.e. the classic A·x ≤ b — every pre-conic call site keeps working.
type Problem struct {
	// Name optionally labels the instance.
	Name string
	// C is the objective vector (length n).
	C linalg.Vector
	// A is the m×n constraint matrix.
	A *linalg.Matrix
	// B is the right-hand side (length m).
	B linalg.Vector
	// Cones partitions the m constraint rows into cone blocks, in row
	// order. Nil means all rows are orthant rows (a pure LP).
	Cones []Cone
}

// New constructs a validated problem. The inputs are used directly (not
// copied); callers must not mutate them afterwards.
func New(name string, c linalg.Vector, a *linalg.Matrix, b linalg.Vector) (*Problem, error) {
	p := &Problem{Name: name, C: c, A: a, B: b}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Validate checks shape consistency and finiteness.
func (p *Problem) Validate() error {
	if p.A == nil {
		return fmt.Errorf("%w: nil constraint matrix", ErrInvalid)
	}
	m, n := p.A.Rows(), p.A.Cols()
	if m == 0 || n == 0 {
		return fmt.Errorf("%w: empty constraint matrix %dx%d", ErrInvalid, m, n)
	}
	if len(p.C) != n {
		return fmt.Errorf("%w: objective has %d elements for %d variables", ErrInvalid, len(p.C), n)
	}
	if len(p.B) != m {
		return fmt.Errorf("%w: rhs has %d elements for %d constraints", ErrInvalid, len(p.B), m)
	}
	if !p.C.AllFinite() || !p.B.AllFinite() || !p.A.AllFinite() {
		return fmt.Errorf("%w: non-finite data", ErrInvalid)
	}
	if p.Cones != nil {
		if err := validateCones(p.Cones, m); err != nil {
			return err
		}
	}
	return nil
}

// NumVariables returns n.
func (p *Problem) NumVariables() int { return p.A.Cols() }

// NumConstraints returns m.
func (p *Problem) NumConstraints() int { return p.A.Rows() }

// Objective returns cᵀx.
func (p *Problem) Objective(x linalg.Vector) (float64, error) {
	return p.C.Dot(x)
}

// IsFeasible reports whether x satisfies b − A·x ∈ K within tolerance (the
// paper's relaxed α-check from §3.2, with α = 1+tol) and x ≥ −tol. For
// orthant rows the check is the classic A·x ≤ b + tol·(1+|b|); for
// second-order cone blocks the slack s = b − A·x must satisfy
// ‖s̄‖ − s₀ ≤ tol·(1+‖s̄‖).
func (p *Problem) IsFeasible(x linalg.Vector, tol float64) (bool, error) {
	if len(x) != p.NumVariables() {
		return false, fmt.Errorf("%w: point has %d elements for %d variables", ErrInvalid, len(x), p.NumVariables())
	}
	for _, xi := range x {
		if xi < -tol {
			return false, nil
		}
	}
	ax, err := p.A.MatVec(x)
	if err != nil {
		return false, err
	}
	socRows := make(map[int]bool)
	for _, blk := range p.SOCBlocks() {
		slack := make([]float64, blk.Dim)
		var tailSq float64
		for i := 0; i < blk.Dim; i++ {
			row := blk.Start + i
			socRows[row] = true
			slack[i] = p.B[row] - ax[row]
			if i > 0 {
				tailSq += slack[i] * slack[i]
			}
		}
		if d := cone.Dist(slack); d > tol*(1+math.Sqrt(tailSq)) {
			return false, nil
		}
	}
	for i, v := range ax {
		if socRows[i] {
			continue
		}
		bound := p.B[i]
		slackTol := tol * (1 + absf(bound))
		if v > bound+slackTol {
			return false, nil
		}
	}
	return true, nil
}

// Slack returns b − A·x, the constraint slack at x.
func (p *Problem) Slack(x linalg.Vector) (linalg.Vector, error) {
	ax, err := p.A.MatVec(x)
	if err != nil {
		return nil, err
	}
	return p.B.Sub(ax)
}

// Dual returns the symmetric dual expressed back in canonical (maximize)
// form. The dual of
//
//	max cᵀx s.t. A·x ≤ b, x ≥ 0
//
// is  min bᵀy s.t. Aᵀ·y ≥ c, y ≥ 0, which in canonical form reads
//
//	max (−b)ᵀy s.t. (−Aᵀ)·y ≤ −c, y ≥ 0.
//
// The optimal objective of the returned problem is the negation of the dual
// optimum, which by strong duality equals −(primal optimum).
//
// Dual is defined for the LP case only: the conic dual constrains y to the
// cone K rather than the orthant, which this row-cone canonical form cannot
// express. It returns nil for conic problems.
func (p *Problem) Dual() *Problem {
	if p.IsConic() {
		return nil
	}
	return &Problem{
		Name: p.Name + "-dual",
		C:    p.B.Scale(-1),
		A:    p.A.Transpose().Scale(-1),
		B:    p.C.Scale(-1),
	}
}

// Clone returns a deep copy.
func (p *Problem) Clone() *Problem {
	return &Problem{Name: p.Name, C: p.C.Clone(), A: p.A.Clone(), B: p.B.Clone(), Cones: cloneCones(p.Cones)}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
