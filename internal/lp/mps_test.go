package lp

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/memlp/memlp/internal/linalg"
)

// afiroLike is a small hand-written MPS instance in the classic style:
//
//	minimize  −3x − 2y
//	s.t.  x + y ≤ 4,  x + 3y ≤ 6,  x, y ≥ 0
//
// whose canonical-form maximize optimum is 12 at (4, 0).
const afiroLike = `* tiny test program
NAME TINY
ROWS
 N COST
 L LIM1
 L LIM2
COLUMNS
 X COST -3 LIM1 1
 X LIM2 1
 Y COST -2 LIM1 1
 Y LIM2 3
RHS
 RHS LIM1 4 LIM2 6
BOUNDS
 PL BND X
 PL BND Y
ENDATA
`

func TestReadMPSBasic(t *testing.T) {
	p, err := ReadMPS(strings.NewReader(afiroLike))
	if err != nil {
		t.Fatalf("ReadMPS: %v", err)
	}
	if p.Name != "TINY" {
		t.Errorf("name = %q", p.Name)
	}
	if p.NumVariables() != 2 || p.NumConstraints() != 2 {
		t.Fatalf("dims = (%d, %d)", p.NumVariables(), p.NumConstraints())
	}
	// MPS minimized −3x−2y; canonical form maximizes 3x+2y.
	if p.C[0] != 3 || p.C[1] != 2 {
		t.Errorf("c = %v", p.C)
	}
	if p.B[0] != 4 || p.B[1] != 6 {
		t.Errorf("b = %v", p.B)
	}
	if p.A.At(1, 1) != 3 {
		t.Errorf("A = %v", p.A)
	}
}

func TestReadMPSGreaterAndEqualityRows(t *testing.T) {
	src := `NAME GE
ROWS
 N OBJ
 G LOW
 E FIX
COLUMNS
 X OBJ -1 LOW 1
 X FIX 2
RHS
 R LOW 1 FIX 4
ENDATA
`
	p, err := ReadMPS(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadMPS: %v", err)
	}
	// G row → one negated row; E row → a ± pair: 3 constraints total.
	if p.NumConstraints() != 3 {
		t.Fatalf("m = %d, want 3", p.NumConstraints())
	}
	// G: x ≥ 1 became −x ≤ −1.
	if p.A.At(0, 0) != -1 || p.B[0] != -1 {
		t.Errorf("G row wrong: %v %v", p.A.Row(0), p.B[0])
	}
	// E: 2x = 4 became 2x ≤ 4 and −2x ≤ −4.
	if p.A.At(1, 0) != 2 || p.B[1] != 4 || p.A.At(2, 0) != -2 || p.B[2] != -4 {
		t.Errorf("E rows wrong")
	}
	// The unique feasible point is x = 2.
	ok, err := p.IsFeasible(linalg.VectorOf(2), 1e-9)
	if err != nil || !ok {
		t.Errorf("x=2 infeasible: %v %v", ok, err)
	}
	ok, err = p.IsFeasible(linalg.VectorOf(1.5), 1e-9)
	if err != nil || ok {
		t.Errorf("x=1.5 feasible: %v %v", ok, err)
	}
}

func TestReadMPSErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"no objective", "ROWS\n L R1\nCOLUMNS\n X R1 1\nRHS\nENDATA\n"},
		{"no columns", "ROWS\n N OBJ\n L R1\nRHS\nENDATA\n"},
		{"no constraints", "ROWS\n N OBJ\nCOLUMNS\n X OBJ 1\nRHS\nENDATA\n"},
		{"unknown section", "FROBNICATE\n"},
		{"ranges unsupported", "RANGES\n"},
		{"objsense unsupported", "OBJSENSE\n MAX\n"},
		{"duplicate row", "ROWS\n N OBJ\n L R1\n L R1\n"},
		{"two N rows", "ROWS\n N OBJ\n N OBJ2\n"},
		{"unknown row in columns", "ROWS\n N OBJ\n L R1\nCOLUMNS\n X R9 1\n"},
		{"bad value", "ROWS\n N OBJ\n L R1\nCOLUMNS\n X R1 abc\n"},
		{"unknown row in rhs", "ROWS\n N OBJ\n L R1\nCOLUMNS\n X R1 1\nRHS\n R R9 1\n"},
		{"integer marker", "ROWS\n N OBJ\n L R1\nCOLUMNS\n M1 'MARKER' 'INTORG'\n"},
		{"nonzero lower bound", "ROWS\n N OBJ\n L R1\nCOLUMNS\n X R1 1\nBOUNDS\n LO B X 2\nENDATA\n"},
		{"upper bound", "ROWS\n N OBJ\n L R1\nCOLUMNS\n X R1 1\nBOUNDS\n UP B X 2\nENDATA\n"},
		{"data before section", " X R1 1\n"},
		{"bad rows entry", "ROWS\n L\n"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadMPS(strings.NewReader(tc.src)); !errors.Is(err, ErrInvalid) {
				t.Errorf("ReadMPS = %v, want ErrInvalid", err)
			}
		})
	}
}

func TestMPSRoundTrip(t *testing.T) {
	orig, err := GenerateFeasible(GenConfig{Constraints: 9, Seed: 12})
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	var buf bytes.Buffer
	if err := orig.WriteMPS(&buf); err != nil {
		t.Fatalf("WriteMPS: %v", err)
	}
	back, err := ReadMPS(&buf)
	if err != nil {
		t.Fatalf("ReadMPS: %v", err)
	}
	if back.NumVariables() != orig.NumVariables() || back.NumConstraints() != orig.NumConstraints() {
		t.Fatalf("dims changed: (%d,%d) vs (%d,%d)",
			back.NumConstraints(), back.NumVariables(), orig.NumConstraints(), orig.NumVariables())
	}
	if !back.A.Equal(orig.A, 1e-12) {
		t.Error("A corrupted through MPS round trip")
	}
	for i := range orig.C {
		if math.Abs(back.C[i]-orig.C[i]) > 1e-12 {
			t.Errorf("c[%d] = %v, want %v", i, back.C[i], orig.C[i])
		}
	}
	for i := range orig.B {
		if math.Abs(back.B[i]-orig.B[i]) > 1e-12 {
			t.Errorf("b[%d] = %v, want %v", i, back.B[i], orig.B[i])
		}
	}
}

func TestSanitizeMPSName(t *testing.T) {
	if got := sanitizeMPSName("my problem #1"); got != "my_problem__1" {
		t.Errorf("sanitize = %q", got)
	}
	if got := sanitizeMPSName(""); got != "MEMLP" {
		t.Errorf("empty sanitize = %q", got)
	}
}

func TestSortedKeysHelper(t *testing.T) {
	keys := sortedKeys(map[string]float64{"b": 1, "a": 2, "c": 3})
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Errorf("sortedKeys = %v", keys)
	}
}
