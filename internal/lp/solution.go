package lp

import "fmt"

// Status classifies the outcome of an LP solve.
type Status int

const (
	// StatusOptimal means the solver converged to an optimal solution.
	StatusOptimal Status = iota + 1
	// StatusInfeasible means the primal constraints admit no solution
	// (detected through dual unboundedness, §3.1).
	StatusInfeasible
	// StatusUnbounded means the primal objective is unbounded above
	// (detected through primal variable blow-up).
	StatusUnbounded
	// StatusIterationLimit means the iteration budget was exhausted before
	// convergence.
	StatusIterationLimit
	// StatusNumericalFailure means a linear system could not be solved
	// (singular Newton system, analog saturation, …).
	StatusNumericalFailure
	// StatusCanceled means the solve was interrupted by context
	// cancellation or a deadline before reaching any other outcome; the
	// reported iterate is the state at the moment of interruption.
	StatusCanceled
	// StatusDegraded means the analog fabric failed to produce the answer
	// and the recovery ladder fell back to the software path: the returned
	// point is a correct optimum, but it was NOT computed in-memory and the
	// advertised latency/energy characteristics do not apply. Diagnostics
	// explain what the hardware did before giving up.
	StatusDegraded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterationLimit:
		return "iteration-limit"
	case StatusNumericalFailure:
		return "numerical-failure"
	case StatusCanceled:
		return "canceled"
	case StatusDegraded:
		return "degraded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Tolerances holds the PDIP stopping and safety parameters shared by the
// software baseline and the crossbar solvers (Algorithm 1 and 2 inputs:
// εb, εc, εg, δ, r/θ).
type Tolerances struct {
	// PrimalFeasTol is εb: the largest acceptable ∞-norm of A·x + w − b.
	PrimalFeasTol float64
	// DualFeasTol is εc: the largest acceptable ∞-norm of Aᵀ·y − z − c.
	DualFeasTol float64
	// GapTol is εg: the largest acceptable duality gap zᵀx + yᵀw.
	GapTol float64
	// Delta is δ ∈ (0, 1), the centering parameter of Eq. 8.
	Delta float64
	// StepScale is r ∈ (0, 1), the step-length damping of Eq. 11.
	StepScale float64
	// BlowupLimit is the magnitude of any primal/dual variable beyond which
	// the problem is declared infeasible/unbounded (§3.1).
	BlowupLimit float64
	// MaxIterations bounds the outer loop.
	MaxIterations int
}

// DefaultTolerances returns the parameters used throughout the experiments.
func DefaultTolerances() Tolerances {
	return Tolerances{
		PrimalFeasTol: 1e-6,
		DualFeasTol:   1e-6,
		GapTol:        1e-6,
		Delta:         0.1,
		StepScale:     0.9,
		BlowupLimit:   1e8,
		MaxIterations: 200,
	}
}

// WithDefaults fills zero fields from DefaultTolerances.
func (t Tolerances) WithDefaults() Tolerances {
	d := DefaultTolerances()
	if t.PrimalFeasTol == 0 {
		t.PrimalFeasTol = d.PrimalFeasTol
	}
	if t.DualFeasTol == 0 {
		t.DualFeasTol = d.DualFeasTol
	}
	if t.GapTol == 0 {
		t.GapTol = d.GapTol
	}
	if t.Delta == 0 {
		t.Delta = d.Delta
	}
	if t.StepScale == 0 {
		t.StepScale = d.StepScale
	}
	if t.BlowupLimit == 0 {
		t.BlowupLimit = d.BlowupLimit
	}
	if t.MaxIterations == 0 {
		t.MaxIterations = d.MaxIterations
	}
	return t
}

// Validate rejects out-of-range parameters.
func (t Tolerances) Validate() error {
	switch {
	case !(t.PrimalFeasTol > 0) || !(t.DualFeasTol > 0) || !(t.GapTol > 0):
		return fmt.Errorf("%w: non-positive tolerance", ErrInvalid)
	case !(t.Delta > 0 && t.Delta < 1):
		return fmt.Errorf("%w: delta %v outside (0,1)", ErrInvalid, t.Delta)
	case !(t.StepScale > 0 && t.StepScale < 1):
		return fmt.Errorf("%w: step scale %v outside (0,1)", ErrInvalid, t.StepScale)
	case !(t.BlowupLimit > 0):
		return fmt.Errorf("%w: blow-up limit %v", ErrInvalid, t.BlowupLimit)
	case t.MaxIterations < 1:
		return fmt.Errorf("%w: max iterations %d", ErrInvalid, t.MaxIterations)
	}
	return nil
}
