package lp

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText feeds arbitrary input to the textual parser: it must never
// panic, and any successfully parsed problem must validate and round-trip.
func FuzzReadText(f *testing.F) {
	f.Add("maximize 1 2\nsubject 1 1 <= 4\n")
	f.Add("name x\nmaximize 1\nsubject -1 <= -2\n")
	f.Add("# comment\nmaximize 0\nsubject 0 <= 0\n")
	f.Add("maximize 1e308\nsubject 1 <= 1e-308\n")
	f.Add("subject 1 <= 2")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ReadText(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("parsed problem fails validation: %v\ninput: %q", err, src)
		}
		var buf bytes.Buffer
		if err := p.WriteText(&buf); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		q, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v\nserialized: %q", err, buf.String())
		}
		if q.NumVariables() != p.NumVariables() || q.NumConstraints() != p.NumConstraints() {
			t.Fatalf("round trip changed dimensions")
		}
	})
}

// FuzzReadMPS feeds arbitrary input to the MPS parser: never panic; any
// accepted problem must validate.
func FuzzReadMPS(f *testing.F) {
	f.Add("NAME T\nROWS\n N C\n L R\nCOLUMNS\n X C -1 R 1\nRHS\n B R 4\nENDATA\n")
	f.Add("ROWS\n N C\n G R\nCOLUMNS\n X R 1\nRHS\nENDATA\n")
	f.Add("* comment only\n")
	f.Add("NAME\nROWS\nCOLUMNS\nRHS\nENDATA\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ReadMPS(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("parsed MPS problem fails validation: %v\ninput: %q", err, src)
		}
	})
}
