package lp

import (
	"errors"
	"testing"

	"github.com/memlp/memlp/internal/linalg"
)

func TestGenConfigValidation(t *testing.T) {
	if _, err := GenerateFeasible(GenConfig{Constraints: 1}); !errors.Is(err, ErrInvalid) {
		t.Errorf("1 constraint: %v, want ErrInvalid", err)
	}
	if _, err := GenerateInfeasible(GenConfig{Constraints: 0}); !errors.Is(err, ErrInvalid) {
		t.Errorf("0 constraints: %v, want ErrInvalid", err)
	}
	if _, err := GenerateFeasible(GenConfig{Constraints: 9, NegativeFraction: 2}); !errors.Is(err, ErrInvalid) {
		t.Errorf("bad fraction: %v, want ErrInvalid", err)
	}
}

func TestGenerateFeasibleDefaults(t *testing.T) {
	p, err := GenerateFeasible(GenConfig{Constraints: 12, Seed: 1})
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	if p.NumConstraints() != 12 {
		t.Errorf("m = %d, want 12", p.NumConstraints())
	}
	// The paper's ratio: n = m/3.
	if p.NumVariables() != 4 {
		t.Errorf("n = %d, want 4", p.NumVariables())
	}
	if p.Name == "" {
		t.Error("generated problem unnamed")
	}
}

func TestGenerateFeasibleHasInteriorPoint(t *testing.T) {
	// The construction guarantees strict feasibility; verify that some
	// strictly positive point is feasible by checking b − A·x₀ > 0 cannot
	// be directly recovered, so instead check feasibility of the origin
	// neighbourhood: b must allow x = small positive vector.
	for seed := int64(0); seed < 20; seed++ {
		p, err := GenerateFeasible(GenConfig{Constraints: 9, Seed: seed})
		if err != nil {
			t.Fatalf("GenerateFeasible: %v", err)
		}
		eps := linalg.NewVector(p.NumVariables())
		eps.Fill(1e-6)
		ok, err := p.IsFeasible(eps, 1e-9)
		if err != nil {
			t.Fatalf("IsFeasible: %v", err)
		}
		if !ok {
			// b = A·x₀ + positive slack with x₀ > 0 does not force b > 0
			// when A has negative entries; but near-zero x must satisfy
			// A·ε ≈ 0 ≤ b only if b ≥ 0. Accept either, but the LP must
			// at least be feasible at its construction point — verified
			// indirectly: slack at scaled-down x₀ should eventually fit.
			t.Logf("seed %d: origin not feasible (negative b); acceptable", seed)
		}
	}
}

func TestGenerateFeasibleDeterministic(t *testing.T) {
	a, err := GenerateFeasible(GenConfig{Constraints: 12, Seed: 7})
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	b, err := GenerateFeasible(GenConfig{Constraints: 12, Seed: 7})
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	if !a.A.Equal(b.A, 0) {
		t.Error("same seed produced different matrices")
	}
	c, err := GenerateFeasible(GenConfig{Constraints: 12, Seed: 8})
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	if a.A.Equal(c.A, 0) {
		t.Error("different seeds produced identical matrices")
	}
}

func TestGenerateFeasibleMixedSigns(t *testing.T) {
	p, err := GenerateFeasible(GenConfig{Constraints: 30, Seed: 3})
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	var neg, pos int
	for i := 0; i < p.A.Rows(); i++ {
		for _, v := range p.A.RawRow(i) {
			if v < 0 {
				neg++
			} else if v > 0 {
				pos++
			}
		}
	}
	if neg == 0 {
		t.Error("no negative coefficients generated; solver's negative handling untested")
	}
	if pos == 0 {
		t.Error("no positive coefficients generated")
	}
}

func TestGenerateInfeasibleHasContradiction(t *testing.T) {
	// Verify a Farkas-style contradiction: find the two opposite rows and
	// check their bounds sum negative.
	for seed := int64(0); seed < 20; seed++ {
		p, err := GenerateInfeasible(GenConfig{Constraints: 10, Seed: seed})
		if err != nil {
			t.Fatalf("GenerateInfeasible: %v", err)
		}
		m := p.NumConstraints()
		found := false
		for i := 0; i < m && !found; i++ {
			for j := 0; j < m && !found; j++ {
				if i == j {
					continue
				}
				opposite := true
				for k := 0; k < p.NumVariables(); k++ {
					if p.A.At(i, k) != -p.A.At(j, k) {
						opposite = false
						break
					}
				}
				if opposite && p.B[i]+p.B[j] < 0 {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("seed %d: no contradictory row pair found", seed)
		}
	}
}

func TestGenerateInfeasibleNoFeasiblePoint(t *testing.T) {
	// Sample many candidate points; none may be feasible.
	p, err := GenerateInfeasible(GenConfig{Constraints: 8, Seed: 5})
	if err != nil {
		t.Fatalf("GenerateInfeasible: %v", err)
	}
	candidates := []linalg.Vector{}
	zero := linalg.NewVector(p.NumVariables())
	candidates = append(candidates, zero)
	for s := 0; s < 50; s++ {
		v := linalg.NewVector(p.NumVariables())
		for i := range v {
			v[i] = float64(s%7) * 0.7
		}
		candidates = append(candidates, v)
	}
	for _, x := range candidates {
		ok, err := p.IsFeasible(x, 1e-9)
		if err != nil {
			t.Fatalf("IsFeasible: %v", err)
		}
		if ok {
			t.Fatalf("found feasible point %v in 'infeasible' problem", x)
		}
	}
}

func TestGenerateExplicitVariables(t *testing.T) {
	p, err := GenerateFeasible(GenConfig{Constraints: 6, Variables: 5, Seed: 2})
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	if p.NumVariables() != 5 {
		t.Errorf("n = %d, want 5", p.NumVariables())
	}
}
