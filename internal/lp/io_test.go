package lp

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	p := tinyLP(t)
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var q Problem
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if q.Name != p.Name {
		t.Errorf("name = %q, want %q", q.Name, p.Name)
	}
	if !q.A.Equal(p.A, 0) {
		t.Error("A corrupted through JSON")
	}
	for i := range p.C {
		if q.C[i] != p.C[i] {
			t.Errorf("c[%d] = %v, want %v", i, q.C[i], p.C[i])
		}
	}
	for i := range p.B {
		if q.B[i] != p.B[i] {
			t.Errorf("b[%d] = %v, want %v", i, q.B[i], p.B[i])
		}
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	var q Problem
	if err := json.Unmarshal([]byte(`{"c":[1],"a":[[1,2]],"b":[1]}`), &q); !errors.Is(err, ErrInvalid) {
		t.Errorf("shape mismatch: %v, want ErrInvalid", err)
	}
	if err := json.Unmarshal([]byte(`{"c":[1],"a":[[1],[2,3]],"b":[1,2]}`), &q); err == nil {
		t.Error("ragged matrix accepted")
	}
	if err := json.Unmarshal([]byte(`not json`), &q); err == nil {
		t.Error("garbage accepted")
	}
}

func TestTextRoundTrip(t *testing.T) {
	p := tinyLP(t)
	var buf bytes.Buffer
	if err := p.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	q, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if q.Name != p.Name {
		t.Errorf("name = %q, want %q", q.Name, p.Name)
	}
	if !q.A.Equal(p.A, 0) {
		t.Error("A corrupted through text")
	}
}

func TestReadTextComments(t *testing.T) {
	src := `
# a comment
name demo problem

maximize 1 -2.5
subject 1 0 <= 3
subject 0 1 <= 2
`
	p, err := ReadText(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if p.Name != "demo problem" {
		t.Errorf("name = %q", p.Name)
	}
	if p.NumVariables() != 2 || p.NumConstraints() != 2 {
		t.Errorf("dims = (%d, %d)", p.NumVariables(), p.NumConstraints())
	}
	if p.C[1] != -2.5 {
		t.Errorf("c[1] = %v, want -2.5", p.C[1])
	}
}

func TestReadTextErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"missing maximize", "subject 1 <= 2\n"},
		{"no constraints", "maximize 1 2\n"},
		{"unknown directive", "minimize 1\n"},
		{"bad number", "maximize x y\nsubject 1 1 <= 2\n"},
		{"missing <=", "maximize 1\nsubject 1 2\n"},
		{"bad bound", "maximize 1\nsubject 1 <= z\n"},
		{"name empty", "name\nmaximize 1\nsubject 1 <= 1\n"},
		{"ragged rows", "maximize 1 2\nsubject 1 2 <= 3\nsubject 1 <= 3\n"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadText(strings.NewReader(tc.src)); !errors.Is(err, ErrInvalid) {
				t.Errorf("ReadText = %v, want ErrInvalid", err)
			}
		})
	}
}

func TestTextRoundTripGenerated(t *testing.T) {
	p, err := GenerateFeasible(GenConfig{Constraints: 9, Seed: 4})
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	var buf bytes.Buffer
	if err := p.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	q, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if !q.A.Equal(p.A, 1e-12) {
		t.Error("A corrupted through text round trip")
	}
}
