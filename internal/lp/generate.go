package lp

import (
	"fmt"
	"math/rand"

	"github.com/memlp/memlp/internal/linalg"
)

// GenConfig parameterizes random instance generation, following the paper's
// evaluation setup (§4.2): m constraints, n = m/3 variables by default, 100
// feasible and 100 infeasible instances per size.
type GenConfig struct {
	// Constraints is m. Must be ≥ 2.
	Constraints int
	// Variables is n; zero means max(1, Constraints/3), the paper's ratio.
	Variables int
	// Seed drives the generator; equal seeds give equal instances.
	Seed int64
	// NegativeFraction is the fraction of A's entries drawn negative
	// (the solver's negative-coefficient machinery needs exercise).
	// Zero means 0.3.
	NegativeFraction float64
}

func (g GenConfig) withDefaults() GenConfig {
	if g.Variables == 0 {
		g.Variables = g.Constraints / 3
		if g.Variables < 1 {
			g.Variables = 1
		}
	}
	if g.NegativeFraction == 0 {
		g.NegativeFraction = 0.3
	}
	return g
}

func (g GenConfig) validate() error {
	if g.Constraints < 2 {
		return fmt.Errorf("%w: need ≥ 2 constraints, got %d", ErrInvalid, g.Constraints)
	}
	if g.Variables < 1 {
		return fmt.Errorf("%w: need ≥ 1 variable, got %d", ErrInvalid, g.Variables)
	}
	if g.NegativeFraction < 0 || g.NegativeFraction > 1 {
		return fmt.Errorf("%w: negative fraction %v", ErrInvalid, g.NegativeFraction)
	}
	return nil
}

// GenerateFeasible returns a random LP that is feasible and bounded by
// construction: a strictly interior primal point x₀ > 0 and a strictly
// interior dual point y₀ > 0 are drawn first, then
//
//	b = A·x₀ + slack  (slack > 0)   makes x₀ strictly primal-feasible,
//	c = Aᵀ·y₀ − margin (margin > 0) makes y₀ strictly dual-feasible,
//
// which guarantees a finite optimum by weak duality.
func GenerateFeasible(cfg GenConfig) (*Problem, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	m, n := cfg.Constraints, cfg.Variables

	a := randomMatrix(r, m, n, cfg.NegativeFraction)

	x0 := linalg.NewVector(n)
	for i := range x0 {
		x0[i] = 0.5 + r.Float64()*4.5 // strictly interior
	}
	ax0, err := a.MatVec(x0)
	if err != nil {
		return nil, err
	}
	b := linalg.NewVector(m)
	for i := range b {
		b[i] = ax0[i] + 0.5 + r.Float64()*4.5 // strictly positive slack
	}

	y0 := linalg.NewVector(m)
	for i := range y0 {
		y0[i] = 0.5 + r.Float64()*1.5
	}
	aty0, err := a.MatVecTranspose(y0)
	if err != nil {
		return nil, err
	}
	c := linalg.NewVector(n)
	for j := range c {
		c[j] = aty0[j] - (0.5 + r.Float64()*1.5) // strictly positive margin
	}

	return New(fmt.Sprintf("feasible-m%d-n%d-s%d", m, n, cfg.Seed), c, a, b)
}

// GenerateInfeasible returns a random LP whose constraints are contradictory
// by construction: two rows encode aᵀx ≤ β and −aᵀx ≤ −β−γ with γ > 0, which
// together require aᵀx ≥ β+γ and aᵀx ≤ β simultaneously. A Farkas
// certificate (y with Aᵀy ≥ 0, bᵀy < 0) therefore exists: the indicator of
// the two rows. The remaining rows are random and generous, so infeasibility
// hides in the pair rather than in an obviously empty region.
func GenerateInfeasible(cfg GenConfig) (*Problem, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	m, n := cfg.Constraints, cfg.Variables

	a := randomMatrix(r, m, n, cfg.NegativeFraction)
	b := linalg.NewVector(m)

	// Generous random constraints around a nominal interior point, so the
	// contradiction pair is the only source of infeasibility.
	x0 := linalg.NewVector(n)
	for i := range x0 {
		x0[i] = 0.5 + r.Float64()*4.5
	}
	ax0, err := a.MatVec(x0)
	if err != nil {
		return nil, err
	}
	for i := range b {
		b[i] = ax0[i] + 0.5 + r.Float64()*4.5
	}

	// Overwrite two random distinct rows with the contradictory pair.
	i1 := r.Intn(m)
	i2 := (i1 + 1 + r.Intn(m-1)) % m
	row := linalg.NewVector(n)
	for j := range row {
		row[j] = r.Float64()*2 - 0.5 // mixed-sign direction
	}
	beta := r.Float64() * 5
	gamma := 1 + r.Float64()*4
	for j := 0; j < n; j++ {
		a.Set(i1, j, row[j])
		a.Set(i2, j, -row[j])
	}
	b[i1] = beta
	b[i2] = -beta - gamma

	c := linalg.NewVector(n)
	for j := range c {
		c[j] = r.Float64()*2 - 1
	}

	return New(fmt.Sprintf("infeasible-m%d-n%d-s%d", m, n, cfg.Seed), c, a, b)
}

func randomMatrix(r *rand.Rand, m, n int, negFrac float64) *linalg.Matrix {
	a := linalg.NewMatrix(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			v := 0.1 + r.Float64()*1.9
			if r.Float64() < negFrac {
				v = -v
			}
			a.Set(i, j, v)
		}
	}
	return a
}
