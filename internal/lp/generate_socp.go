package lp

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/memlp/memlp/internal/linalg"
)

// SOCGenConfig parameterizes random SOCP instance generation: the LP layout
// of GenConfig plus a trailing run of second-order cone blocks. Rows are laid
// out orthant-first, then Blocks cones of BlockDim rows each, so
// Constraints = orthant rows + Blocks·BlockDim with at least one orthant row.
type SOCGenConfig struct {
	GenConfig
	// Blocks is the number of second-order cone blocks; zero means 1.
	Blocks int
	// BlockDim is the rows per block (axis + tail); zero means 3, min 2.
	BlockDim int
}

func (g SOCGenConfig) withDefaults() SOCGenConfig {
	g.GenConfig = g.GenConfig.withDefaults()
	if g.Blocks == 0 {
		g.Blocks = 1
	}
	if g.BlockDim == 0 {
		g.BlockDim = 3
	}
	return g
}

func (g SOCGenConfig) validate() error {
	if err := g.GenConfig.validate(); err != nil {
		return err
	}
	if g.Blocks < 1 {
		return fmt.Errorf("%w: need ≥ 1 soc block, got %d", ErrInvalid, g.Blocks)
	}
	if g.BlockDim < 2 {
		return fmt.Errorf("%w: soc block dimension %d < 2", ErrInvalid, g.BlockDim)
	}
	if g.Blocks*g.BlockDim >= g.Constraints {
		return fmt.Errorf("%w: %d soc rows leave no orthant row among %d constraints",
			ErrInvalid, g.Blocks*g.BlockDim, g.Constraints)
	}
	return nil
}

// GenerateFeasibleSOCP returns a random SOCP that is feasible and bounded by
// construction, mirroring GenerateFeasible's known-solution recipe under
// conic weak duality (bᵀy − cᵀx = yᵀs + xᵀz ≥ 0 for y, s ∈ K, x, z ≥ 0):
//
//   - a strictly interior primal x₀ > 0 is drawn, and b is set so the slack
//     s₀ = b − A·x₀ is strictly interior to K (positive on orthant rows,
//     axis > ‖tail‖ on cone blocks);
//   - a strictly interior dual y₀ ∈ int K is drawn and c = Aᵀy₀ − margin
//     with margin > 0, making (y₀, z₀ = Aᵀy₀ − c > 0) strictly dual-feasible.
func GenerateFeasibleSOCP(cfg SOCGenConfig) (*Problem, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	m, n := cfg.Constraints, cfg.Variables
	orthant := m - cfg.Blocks*cfg.BlockDim

	cones := []Cone{{Type: ConeNonNeg, Dim: orthant}}
	for k := 0; k < cfg.Blocks; k++ {
		cones = append(cones, Cone{Type: ConeSOC, Dim: cfg.BlockDim})
	}

	a := randomMatrix(r, m, n, cfg.NegativeFraction)

	x0 := linalg.NewVector(n)
	for i := range x0 {
		x0[i] = 0.5 + r.Float64()*4.5
	}
	ax0, err := a.MatVec(x0)
	if err != nil {
		return nil, err
	}
	b := linalg.NewVector(m)
	for i := 0; i < orthant; i++ {
		b[i] = ax0[i] + 0.5 + r.Float64()*4.5
	}
	for k := 0; k < cfg.Blocks; k++ {
		start := orthant + k*cfg.BlockDim
		// Draw an interior slack for the block, then set b = A·x₀ + s.
		var tailSq float64
		for i := 1; i < cfg.BlockDim; i++ {
			s := r.Float64()*4 - 2
			tailSq += s * s
			b[start+i] = ax0[start+i] + s
		}
		b[start] = ax0[start] + math.Sqrt(tailSq) + 0.5 + r.Float64()*4.5
	}

	y0 := linalg.NewVector(m)
	for i := 0; i < orthant; i++ {
		y0[i] = 0.5 + r.Float64()*1.5
	}
	for k := 0; k < cfg.Blocks; k++ {
		start := orthant + k*cfg.BlockDim
		var tailSq float64
		for i := 1; i < cfg.BlockDim; i++ {
			y0[start+i] = r.Float64()*2 - 1
			tailSq += y0[start+i] * y0[start+i]
		}
		y0[start] = math.Sqrt(tailSq) + 0.5 + r.Float64()*1.5
	}
	aty0, err := a.MatVecTranspose(y0)
	if err != nil {
		return nil, err
	}
	c := linalg.NewVector(n)
	for j := range c {
		c[j] = aty0[j] - (0.5 + r.Float64()*1.5)
	}

	name := fmt.Sprintf("socp-m%d-n%d-k%dx%d-s%d", m, n, cfg.Blocks, cfg.BlockDim, cfg.Seed)
	return NewConic(name, c, a, b, cones)
}
