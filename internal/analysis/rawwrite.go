package analysis

import (
	"go/ast"
	"go/types"
)

// RawwriteConfig parameterizes the rawwrite analyzer.
type RawwriteConfig struct {
	// StatePkgs are the packages (pkgMatch patterns) that own the physical
	// fabric state and may host //memlp:conductance-writer functions.
	StatePkgs []string
	// TypeName is the array type holding the state (e.g. "Crossbar").
	TypeName string
	// Fields are the protected conductance-state fields of TypeName.
	Fields []string
	// Mutators are the method names that bulk- or cell-mutate a protected
	// field's matrix (e.g. Set, Zero).
	Mutators []string
}

// conductanceWriterMarker annotates the approved programming funnel: the
// write-verify API of internal/crossbar (Program/writeRow/writeDevice/
// pinFaultCell and friends).
const conductanceWriterMarker = "//memlp:conductance-writer"

// Rawwrite returns the analyzer enforcing PR 2's programming invariant:
// realized conductances (and the program-and-verify target cache) are only
// ever mutated by the annotated write-verify funnel functions inside the
// state-owning package. Everything else — including other code in
// internal/crossbar itself — must go through that API, so write counting,
// verify retries, fault pinning, and drift bookkeeping can never be
// bypassed by a direct cell assignment. Outside the state package the
// annotation has no effect: foreign packages can never write raw state.
func Rawwrite(cfg RawwriteConfig) *Analyzer {
	a := &Analyzer{
		Name: "rawwrite",
		Doc:  "conductance state is mutated only via the annotated write-verify programming funnel",
	}
	mutators := map[string]bool{}
	for _, m := range cfg.Mutators {
		mutators[m] = true
	}
	a.Run = func(pass *Pass) error {
		inStatePkg := pkgMatch(pass.Pkg.Path(), cfg.StatePkgs)
		forEachFunc(pass.Files, func(fn *ast.FuncDecl) {
			approved := inStatePkg && funcAnnotated(fn, conductanceWriterMarker)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					sel, ok := n.Fun.(*ast.SelectorExpr)
					if !ok || !mutators[sel.Sel.Name] {
						return true
					}
					field, ok := protectedField(pass, cfg, sel.X)
					if !ok || approved {
						return true
					}
					pass.Reportf(n.Pos(),
						"direct %s on conductance state %s.%s outside the write-verify programming funnel (annotate the programming API with %s)",
						sel.Sel.Name, cfg.TypeName, field, conductanceWriterMarker)
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						field, ok := protectedStore(pass, cfg, lhs)
						if !ok || approved {
							continue
						}
						pass.Reportf(lhs.Pos(),
							"direct cell assignment into conductance state %s.%s outside the write-verify programming funnel",
							cfg.TypeName, field)
					}
				}
				return true
			})
		})
		return nil
	}
	return a
}

// protectedField reports whether e is a selector for one of the protected
// state fields of the configured array type, returning the field name.
func protectedField(pass *Pass, cfg RawwriteConfig, e ast.Expr) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	found := false
	for _, f := range cfg.Fields {
		if f == name {
			found = true
			break
		}
	}
	if !found {
		return "", false
	}
	t := pass.TypeOf(sel.X)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != cfg.TypeName {
		return "", false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || !pkgMatch(pkg.Path(), cfg.StatePkgs) {
		return "", false
	}
	return name, true
}

// protectedStore reports whether lhs writes an element reached through a
// protected field, e.g. x.gt.RawRow(i)[j] = v.
func protectedStore(pass *Pass, cfg RawwriteConfig, lhs ast.Expr) (string, bool) {
	idx, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return "", false
	}
	call, ok := idx.X.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	return protectedField(pass, cfg, sel.X)
}
