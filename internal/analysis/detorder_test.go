package analysis_test

import (
	"testing"

	"github.com/memlp/memlp/internal/analysis"
	"github.com/memlp/memlp/internal/analysis/analysistest"
)

func TestDetorder(t *testing.T) {
	a := analysis.Detorder(analysis.DetorderConfig{
		Pkgs: []string{"internal/core", "internal/engine", "internal/linalg", "internal/cone", "internal/trace", "internal/serve"},
	})
	analysistest.Run(t, analysistest.TestData(), a, "example.com/detorder/internal/core")
}

func TestDetorderLeavesUnscopedPackagesAlone(t *testing.T) {
	// The same float-accumulating map range outside the deterministic
	// packages (benchmark bookkeeping, experiment harnesses) is not audited.
	a := analysis.Detorder(analysis.DetorderConfig{
		Pkgs: []string{"internal/core", "internal/engine", "internal/linalg", "internal/cone", "internal/trace", "internal/serve"},
	})
	analysistest.RunExpectClean(t, analysistest.TestData(), a, "example.com/detorder/internal/experiments")
}
