package analysis_test

import (
	"testing"

	"github.com/memlp/memlp/internal/analysis"
	"github.com/memlp/memlp/internal/analysis/analysistest"
)

func TestCtxloop(t *testing.T) {
	a := analysis.Ctxloop(analysis.CtxloopConfig{Pkgs: []string{"internal/core", "internal/engine"}})
	analysistest.Run(t, analysistest.TestData(), a, "example.com/memlp/internal/core")
}

func TestCtxloopOutsideConfiguredPackages(t *testing.T) {
	// The same fixture run under a config that does not include it must be
	// silent: ctxloop only polices the solver engines.
	a := analysis.Ctxloop(analysis.CtxloopConfig{Pkgs: []string{"internal/engine"}})
	analysistest.RunExpectClean(t, analysistest.TestData(), a, "example.com/memlp/internal/core")
}
