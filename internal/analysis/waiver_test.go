package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"testing"
)

const waiverSrc = `package w

func a(x, y float64) bool {
	//memlpvet:ignore floatcmp grid-aligned values compare exactly
	return x == y
}

func b(x, y float64) bool {
	//memlpvet:ignore floatcmp
	return x == y
}

func c(x, y float64) bool {
	return x == y //memlpvet:ignore wrong analyzer name given here
}
`

// TestWaivers locks in the suppression contract: a well-formed waiver on the
// line above suppresses exactly its analyzer; a reason-less waiver is itself
// a finding and suppresses nothing; a waiver naming the wrong analyzer
// suppresses nothing.
func TestWaivers(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "w.go", waiverSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	pkg, err := (&types.Config{}).Check("example.com/w", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(fset, []*ast.File{f}, pkg, info, []*Analyzer{Floatcmp(FloatcmpConfig{})})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d:%s", fset.Position(d.Pos).Line, d.Analyzer))
	}
	want := []string{"9:waiver", "10:floatcmp", "14:floatcmp"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("diagnostics = %v, want %v", got, want)
	}
}

func TestPkgMatch(t *testing.T) {
	cases := []struct {
		path string
		pats []string
		want bool
	}{
		{"internal/core", []string{"internal/core"}, true},
		{"github.com/memlp/memlp/internal/core", []string{"internal/core"}, true},
		{"example.com/memlp/internal/core", []string{"internal/core"}, true},
		{"github.com/memlp/memlp/internal/corex", []string{"internal/core"}, false},
		{"github.com/memlp/memlp", []string{"github.com/memlp/memlp"}, true},
		{"github.com/memlp/memlp/internal/core", []string{}, false},
	}
	for _, c := range cases {
		if got := pkgMatch(c.path, c.pats); got != c.want {
			t.Errorf("pkgMatch(%q, %v) = %v, want %v", c.path, c.pats, got, c.want)
		}
	}
}

func TestDefaultSuite(t *testing.T) {
	suite := Default()
	if len(suite) != 10 {
		t.Fatalf("Default() has %d analyzers, want 10", len(suite))
	}
	names := map[string]bool{}
	for _, a := range suite {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q incompletely specified", a.Name)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"floatcmp", "ctxloop", "rawwrite", "nanguard", "hotpath", "tracesink", "detorder", "wallclock", "guardedby", "spawnjoin"} {
		if !names[want] {
			t.Errorf("Default() missing analyzer %q", want)
		}
	}
}
