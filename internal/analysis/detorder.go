package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// DetorderConfig parameterizes the detorder analyzer.
type DetorderConfig struct {
	// Pkgs are the packages (pkgMatch patterns) whose iteration order feeds
	// the determinism contracts: the solver engines, the shared linear-algebra
	// workspaces, the trace pipeline, and the serving batch assembly.
	Pkgs []string
}

// orderSensitiveName matches identifiers whose assignment inside a map
// iteration couples batch identity or noise derivation to map order.
var orderSensitiveName = regexp.MustCompile(`(?i)index|idx|epoch`)

// epochCallName matches the noise-derivation funnels (SetNoiseEpoch,
// ReseedEpoch): calling one per map-iteration pass makes the stochastic
// stream a function of Go's randomized map order.
var epochCallName = regexp.MustCompile(`(?i)epoch|reseed`)

// Detorder returns the analyzer enforcing the repo's map-order determinism
// invariant (DESIGN.md D16): in the configured packages, a `range` over a map
// must not drive order-sensitive work, because Go randomizes map iteration
// order per run. Order-sensitive means the loop body
//
//   - writes floating-point state (assignment, op-assignment, or ++/-- whose
//     target is a float, or append into a float-element slice): float
//     accumulation does not commute, so the result depends on visit order —
//     the exact bug fixed in linalg.StructuredWorkspace's colRows sets;
//   - emits trace records (an Emit/emit call): golden traces are compared
//     record-by-record at 1e-9, so emission order is part of the contract;
//   - assigns batch indices (stores into an index/idx/epoch-named target):
//     per PR 4, a problem's noise stream derives from (seed, batch index);
//   - derives noise epochs (a SetNoiseEpoch/ReseedEpoch-style call).
//
// The remedy is the one PR 4 established: keep an insertion-ordered slice
// beside the map, or snapshot the keys, sort, and iterate the sorted slice.
// Key-collection loops (append of the key into a slice for sorting) and
// order-insensitive bodies (integer counting, set membership) are not
// flagged.
func Detorder(cfg DetorderConfig) *Analyzer {
	a := &Analyzer{
		Name: "detorder",
		Doc:  "map iteration must not drive float accumulation, trace emission, batch indexing, or noise-epoch derivation",
	}
	a.Run = func(pass *Pass) error {
		if !pkgMatch(pass.Pkg.Path(), cfg.Pkgs) {
			return nil
		}
		forEachFunc(pass.Files, func(fn *ast.FuncDecl) {
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				loop, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if !isMapType(pass.TypeOf(loop.X)) {
					return true
				}
				if reason := orderSensitiveBody(pass, loop.Body); reason != "" {
					pass.Reportf(loop.For,
						"map iteration order is randomized but the body %s; iterate an insertion-ordered slice or sorted keys",
						reason)
				}
				return true
			})
		})
		return nil
	}
	return a
}

// orderSensitiveBody classifies why a map-range body is order-sensitive,
// returning "" when it is not.
func orderSensitiveBody(pass *Pass, body *ast.BlockStmt) string {
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if isFloat(pass.TypeOf(lhs)) {
					reason = "writes floating-point state"
					return false
				}
				if orderSensitiveTarget(lhs) {
					reason = "assigns a batch index/epoch"
					return false
				}
			}
		case *ast.IncDecStmt:
			if isFloat(pass.TypeOf(n.X)) {
				reason = "writes floating-point state"
				return false
			}
			if orderSensitiveTarget(n.X) {
				reason = "assigns a batch index/epoch"
				return false
			}
		case *ast.CallExpr:
			if r := orderSensitiveCall(pass, n); r != "" {
				reason = r
				return false
			}
		}
		return true
	})
	return reason
}

// orderSensitiveTarget reports whether the assignment target names a batch
// index or epoch.
func orderSensitiveTarget(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return orderSensitiveName.MatchString(e.Name)
	case *ast.SelectorExpr:
		return orderSensitiveName.MatchString(e.Sel.Name)
	}
	return false
}

// orderSensitiveCall classifies calls that make a map-range body
// order-sensitive: float appends, trace emission, and epoch derivation.
func orderSensitiveCall(pass *Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj, isBuiltin := pass.Info.Uses[fun].(*types.Builtin); isBuiltin && obj.Name() == "append" {
			if len(call.Args) > 0 && floatElemSlice(pass.TypeOf(call.Args[0])) {
				return "appends floats in map order"
			}
		}
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if name == "Emit" || name == "emit" {
			return "emits trace records"
		}
		if epochCallName.MatchString(name) {
			return "derives a noise epoch"
		}
	}
	return ""
}

// floatElemSlice reports whether t is a slice with a floating-point element
// type.
func floatElemSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	return ok && isFloat(sl.Elem())
}

// isMapType reports whether t's core type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
