package analysis

import (
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"strings"
)

// FloatcmpConfig parameterizes the floatcmp analyzer.
type FloatcmpConfig struct {
	// HelperPkgs are the packages (pkgMatch patterns) whose
	// //memlp:tolerance-helper annotated functions may compare floats
	// exactly — the approved tolerance-helper home.
	HelperPkgs []string
}

// toleranceHelperMarker annotates the approved exact-comparison helpers.
const toleranceHelperMarker = "//memlp:tolerance-helper"

// Floatcmp returns the analyzer that forbids ==/!= between floating-point
// operands. The paper's convergence conditions (Eqs. 8 and 11) are tolerance
// checks; an exact equality on analog-derived values is either a latent bug
// or a hidden invariant that belongs in internal/linalg's tolerance helpers.
//
// Permitted without a waiver:
//   - comparison against the exact constant zero (the pervasive
//     "option unset / feature disabled" sentinel idiom);
//   - comparison against ±Inf produced by math.Inf (sentinel extremes);
//   - self-comparison x != x / x == x (the NaN probe idiom);
//   - comparisons inside //memlp:tolerance-helper annotated functions of
//     the configured helper packages (internal/linalg).
func Floatcmp(cfg FloatcmpConfig) *Analyzer {
	a := &Analyzer{
		Name: "floatcmp",
		Doc:  "forbid exact ==/!= between floats outside the approved linalg tolerance helpers",
	}
	a.Run = func(pass *Pass) error {
		helperPkg := pkgMatch(pass.Pkg.Path(), cfg.HelperPkgs)
		forEachFunc(pass.Files, func(fn *ast.FuncDecl) {
			if helperPkg && funcAnnotated(fn, toleranceHelperMarker) {
				return
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloat(pass.TypeOf(be.X)) && !isFloat(pass.TypeOf(be.Y)) {
					return true
				}
				if floatCmpAllowed(pass, be) {
					return true
				}
				pass.Reportf(be.OpPos,
					"exact float comparison (%s); use a linalg tolerance helper (EqTol/Identical) or a //memlpvet:ignore waiver",
					be.Op)
				return true
			})
		})
		return nil
	}
	return a
}

// floatCmpAllowed reports whether the comparison matches one of the
// always-safe sentinel idioms.
func floatCmpAllowed(pass *Pass, be *ast.BinaryExpr) bool {
	if isZeroConst(pass, be.X) || isZeroConst(pass, be.Y) {
		return true
	}
	if isInfCall(pass, be.X) || isInfCall(pass, be.Y) {
		return true
	}
	// Self-comparison: the portable NaN check.
	if exprString(pass.Fset, be.X) == exprString(pass.Fset, be.Y) {
		return true
	}
	return false
}

// isZeroConst reports whether e is a compile-time constant equal to zero.
func isZeroConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0))
}

// isInfCall reports whether e is (possibly negated) math.Inf(...).
func isInfCall(pass *Pass, e ast.Expr) bool {
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = u.X
	}
	call, ok := e.(*ast.CallExpr)
	return ok && isPkgFunc(pass.Info, call, "math", "Inf")
}

// exprString renders an expression for structural comparison.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, e); err != nil {
		return ""
	}
	return sb.String()
}
