package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// CtxloopConfig parameterizes the ctxloop analyzer.
type CtxloopConfig struct {
	// Pkgs are the packages (pkgMatch patterns) whose loops must honor
	// cancellation: the iteration engines and batch paths.
	Pkgs []string
}

// iterName matches loop variables and bound expressions that indicate an
// iteration-count or retry loop (as opposed to a plain data sweep).
var iterName = regexp.MustCompile(`(?i)iter|retry|attempt|resolve|epoch|round`)

// Ctxloop returns the analyzer enforcing PR 1's cancellation invariant:
// inside the solver engines, every unbounded loop (for {} / for cond {}) and
// every iteration-count loop (a three-clause loop whose variable or bound
// names an iteration/retry/attempt budget) must observe its context — by
// touching a context.Context value in its body (ctx.Err(), ctx.Done(), or
// passing ctx into the work it delegates to). Plain data sweeps
// (for i := 0; i < n; i++ over rows/cells) are not flagged: they are bounded
// by problem shape, not by an iteration budget.
func Ctxloop(cfg CtxloopConfig) *Analyzer {
	a := &Analyzer{
		Name: "ctxloop",
		Doc:  "iteration-count and unbounded loops in the solver engines must observe ctx.Done()/ctx.Err()",
	}
	a.Run = func(pass *Pass) error {
		if !pkgMatch(pass.Pkg.Path(), cfg.Pkgs) {
			return nil
		}
		forEachFunc(pass.Files, func(fn *ast.FuncDecl) {
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				loop, ok := n.(*ast.ForStmt)
				if !ok {
					return true
				}
				kind := loopKind(loop)
				if kind == "" {
					return true
				}
				if bodyObservesContext(pass, loop.Body) {
					return true
				}
				pass.Reportf(loop.For,
					"%s loop does not observe cancellation: check ctx.Err()/ctx.Done() (or pass ctx to the work) each pass",
					kind)
				return true
			})
		})
		return nil
	}
	return a
}

// loopKind classifies a for statement: "unbounded" (no condition, or a
// while-style condition-only loop), "iteration-count" (three-clause loop
// over an iteration/retry budget), or "" for plain bounded sweeps.
func loopKind(loop *ast.ForStmt) string {
	if loop.Cond == nil || (loop.Init == nil && loop.Post == nil) {
		return "unbounded"
	}
	named := false
	ast.Inspect(loop.Cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && iterName.MatchString(id.Name) {
			named = true
		}
		if sel, ok := n.(*ast.SelectorExpr); ok && iterName.MatchString(sel.Sel.Name) {
			named = true
		}
		return true
	})
	if named {
		return "iteration-count"
	}
	return ""
}

// bodyObservesContext reports whether any expression in body uses a value of
// type context.Context.
func bodyObservesContext(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if isContextType(pass.TypeOf(e)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
