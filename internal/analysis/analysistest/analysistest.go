// Package analysistest runs memlp analyzers over fixture packages laid out
// GOPATH-style under a testdata directory, checking reported diagnostics
// against // want "regexp" comment expectations — the same fixture contract
// as golang.org/x/tools/go/analysis/analysistest, reimplemented on the
// standard library so the suite stays dependency-free.
//
// Fixture layout:
//
//	testdata/src/<import/path>/*.go
//
// A fixture line that should be flagged carries a trailing comment
//
//	x == y // want "exact float comparison"
//
// with one quoted regexp per expected diagnostic on that line. Lines without
// a want comment must produce no diagnostics (false-positive guards are just
// ordinary clean code). Waiver comments (//memlpvet:ignore) are honored, so
// fixtures can also lock in the suppression contract.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/memlp/memlp/internal/analysis"
)

// TestData returns the caller's testdata directory.
func TestData() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run loads the fixture package at testdata/src/<pkgpath>, applies the
// analyzer, and checks the diagnostics against the // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	ld, diags := run(t, testdata, a, pkgpath)
	checkExpectations(t, ld.fset, ld.files[pkgpath], diags)
}

// RunExpectClean loads the fixture package, applies the analyzer, and asserts
// it reports nothing — ignoring the fixture's // want comments, which belong
// to a different analyzer configuration. Use it to lock in that a config
// restricted to other packages leaves the fixture alone.
func RunExpectClean(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	ld, diags := run(t, testdata, a, pkgpath)
	for _, d := range diags {
		pos := ld.fset.Position(d.Pos)
		t.Errorf("%s:%d: unexpected diagnostic [%s] %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
	}
}

func run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) (*loader, []analysis.Diagnostic) {
	t.Helper()
	ld := &loader{
		fset:   token.NewFileSet(),
		srcDir: filepath.Join(testdata, "src"),
		pkgs:   map[string]*types.Package{},
		files:  map[string][]*ast.File{},
		infos:  map[string]*types.Info{},
	}
	ld.stdImps = importer.ForCompiler(ld.fset, "source", nil)

	pkg, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}
	diags, err := analysis.RunAnalyzers(ld.fset, ld.files[pkgpath], pkg, ld.infos[pkgpath], []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgpath, err)
	}
	return ld, diags
}

// loader type-checks fixture packages, resolving fixture-local imports from
// the testdata tree and everything else from the standard library.
type loader struct {
	fset    *token.FileSet
	srcDir  string
	pkgs    map[string]*types.Package
	files   map[string][]*ast.File
	infos   map[string]*types.Info
	stdImps types.Importer
}

func (ld *loader) Import(path string) (*types.Package, error) { return ld.load(path) }

func (ld *loader) load(path string) (*types.Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(ld.srcDir, filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return ld.stdImps.Import(path)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	ld.pkgs[path] = pkg
	ld.files[path] = files
	ld.infos[path] = info
	return pkg, nil
}

// expectation is one // want pattern at a file line.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// checkExpectations diffs diagnostics against // want comments.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*expectation{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, pat := range splitQuoted(m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants[k] = append(wants[k], &expectation{re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		found := false
		for _, exp := range wants[k] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic [%s] %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for k, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, exp.re)
			}
		}
	}
}

// splitQuoted extracts the Go-quoted strings from a want clause.
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			return out
		}
		s = s[i:]
		// Find the closing quote, honoring escapes.
		end := -1
		for j := 1; j < len(s); j++ {
			if s[j] == '\\' {
				j++
				continue
			}
			if s[j] == '"' {
				end = j
				break
			}
		}
		if end < 0 {
			return out
		}
		if q, err := strconv.Unquote(s[:end+1]); err == nil {
			out = append(out, q)
		}
		s = s[end+1:]
	}
}
