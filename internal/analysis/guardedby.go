package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// guardedbyMarker annotates a struct field that must only be touched with a
// sibling mutex held: //memlp:guardedby <mutexField>.
const guardedbyMarker = "//memlp:guardedby"

// Guardedby returns the analyzer enforcing the annotated lock discipline of
// DESIGN.md D16: a struct field carrying a //memlp:guardedby mu comment (the
// coalescer's canonical-matrix cache, the solver pool's handle count, the
// server's pool-entry table, the metrics aggregate) may only be read or
// written while the named sibling mutex is held.
//
// The check is lexical, over every function body in the package: an access
// through base expression B to a guarded field requires a preceding
// B.mu.Lock() (or RLock()) in the same function with no intervening
// non-deferred B.mu.Unlock()/RUnlock() — deferred unlocks run at return and
// do not end the critical section, and neither does the early-exit idiom
// (an unlock whose next statement returns, breaks, continues, or panics
// never flows to the code after its block, so later statements still run
// under the original Lock). Two escape hatches keep the heuristic honest
// rather than silent:
//
//   - functions whose name ends in "Locked" follow the standard Go
//     caller-holds-the-lock convention and are exempt (their call sites are
//     checked instead, since the calls appear inside critical sections);
//   - anything else is a finding, waivable only with a reasoned
//     //memlpvet:ignore guardedby comment.
//
// A malformed annotation — naming a mutex the struct does not have, or
// naming no mutex at all — is itself reported, so a typo cannot silently
// disable the guard.
func Guardedby() *Analyzer {
	a := &Analyzer{
		Name: "guardedby",
		Doc:  "//memlp:guardedby fields are accessed only with the named sibling mutex held",
	}
	a.Run = func(pass *Pass) error {
		guarded := collectGuardedFields(pass)
		if len(guarded) == 0 {
			return nil
		}
		forEachFunc(pass.Files, func(fn *ast.FuncDecl) {
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				return
			}
			checkGuardedAccesses(pass, fn, guarded)
		})
		return nil
	}
	return a
}

// collectGuardedFields maps each annotated field object to the name of its
// guarding sibling mutex, reporting malformed annotations.
func collectGuardedFields(pass *Pass) map[types.Object]string {
	guarded := map[types.Object]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := map[string]bool{}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, field := range st.Fields.List {
				mu, pos, ok := guardedbyAnnotation(field)
				if !ok {
					continue
				}
				if mu == "" {
					pass.Reportf(pos, "malformed annotation: want %s <mutexField>", guardedbyMarker)
					continue
				}
				if !fieldNames[mu] {
					pass.Reportf(pos, "%s names %q but the struct has no such field", guardedbyMarker, mu)
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guarded[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

// guardedbyAnnotation extracts the mutex name from a field's doc or trailing
// comment; ok reports whether the marker is present at all.
func guardedbyAnnotation(field *ast.Field) (mu string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, guardedbyMarker) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, guardedbyMarker))
			name, _, _ := strings.Cut(rest, " ")
			return name, c.Pos(), true
		}
	}
	return "", token.NoPos, false
}

// lockEvent is one mutex operation or guarded access in a function body, in
// source order.
type lockEvent struct {
	pos      token.Pos
	path     string // rendered receiver path, e.g. "s.mu" or "ent.pool.mu"
	kind     int    // 0 lock, 1 unlock, 2 access
	deferred bool
	field    types.Object // for accesses
	fieldMu  string       // for accesses: required mutex field name
	base     string       // for accesses: rendered base path ("" if unrenderable)
}

// checkGuardedAccesses performs the lexical lock-state scan over one
// function body.
func checkGuardedAccesses(pass *Pass, fn *ast.FuncDecl, guarded map[types.Object]string) {
	deferredCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferredCalls[d.Call] = true
		}
		return true
	})
	terminal := terminalCalls(fn.Body)

	var events []lockEvent
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var kind int
			switch sel.Sel.Name {
			case "Lock", "RLock":
				kind = 0
			case "Unlock", "RUnlock":
				kind = 1
			default:
				return true
			}
			if !isMutexType(pass.TypeOf(sel.X)) {
				return true
			}
			events = append(events, lockEvent{
				pos:      n.Pos(),
				path:     exprPath(sel.X),
				kind:     kind,
				deferred: deferredCalls[n] || kind == 1 && terminal[n],
			})
		case *ast.SelectorExpr:
			obj := pass.Info.Uses[n.Sel]
			mu, ok := guarded[obj]
			if !ok {
				return true
			}
			events = append(events, lockEvent{
				pos:     n.Sel.Pos(),
				kind:    2,
				field:   obj,
				fieldMu: mu,
				base:    exprPath(n.X),
			})
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	for i, ev := range events {
		if ev.kind != 2 {
			continue
		}
		want := ev.fieldMu
		if ev.base != "" {
			want = ev.base + "." + ev.fieldMu
		}
		held := false
		for _, prior := range events[:i] {
			if prior.kind == 2 || prior.deferred && prior.kind == 1 {
				continue
			}
			if !lockPathMatches(prior.path, want, ev.fieldMu, ev.base == "") {
				continue
			}
			held = prior.kind == 0
		}
		if !held {
			pass.Reportf(ev.pos,
				"%s accessed without holding %s (field is %s %s)",
				ev.field.Name(), want, guardedbyMarker, ev.fieldMu)
		}
	}
}

// terminalCalls finds the calls whose enclosing statement is immediately
// followed by a terminating statement (return, break, continue, goto, or a
// panic call) in the same statement list — the `mu.Unlock(); return` early-
// exit idiom. Such an unlock never flows to the statements after its block:
// they execute only when the branch was not taken, i.e. still under the
// original Lock.
func terminalCalls(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	mark := func(stmts []ast.Stmt) {
		for i, st := range stmts {
			es, ok := st.(*ast.ExprStmt)
			if !ok || i+1 >= len(stmts) {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			switch next := stmts[i+1].(type) {
			case *ast.ReturnStmt, *ast.BranchStmt:
				out[call] = true
			case *ast.ExprStmt:
				if c, ok := next.X.(*ast.CallExpr); ok {
					if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "panic" {
						out[call] = true
					}
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			mark(n.List)
		case *ast.CaseClause:
			mark(n.Body)
		case *ast.CommClause:
			mark(n.Body)
		}
		return true
	})
	return out
}

// lockPathMatches reports whether a lock/unlock on path guards an access
// requiring want. When the access base was unrenderable (a call result,
// say), any lock on the right mutex field name counts.
func lockPathMatches(path, want, muName string, anyBase bool) bool {
	if anyBase {
		return path == muName || strings.HasSuffix(path, "."+muName)
	}
	return path == want
}

// exprPath renders a chain of identifiers and selectors ("ent.pool"), or ""
// when the expression is not a pure path.
func exprPath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprPath(e.X)
	case *ast.StarExpr:
		return exprPath(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprPath(e.X)
		}
	}
	return ""
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly via
// pointer).
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
