package analysis

import (
	"go/ast"
	"go/types"
)

// WallclockConfig parameterizes the wallclock analyzer.
type WallclockConfig struct {
	// Pkgs are the packages (pkgMatch patterns) whose behavior must be a pure
	// function of (problem, options, seed): the engines, the fabric model, the
	// noise machinery, the trace pipeline, and the serving batch assembly.
	Pkgs []string
}

// timingMarker annotates the approved wall-clock funnels: the few functions
// whose job is reporting elapsed time (WallTime measurement, request-latency
// metrics). Everything else in the scoped packages must not read the clock.
const timingMarker = "//memlp:timing"

// Wallclock returns the analyzer enforcing the repo's clock/randomness
// determinism invariant (DESIGN.md D16): in the configured packages,
//
//   - time.Now / time.Since / time.Until may be called only inside functions
//     annotated //memlp:timing — the wall-time reporting funnels. Golden
//     traces pin full convergence trajectories and batch results must be
//     bit-identical across pool widths, so no solver decision, trace field
//     other than wall time, or noise epoch may observe the host clock;
//   - the global math/rand source (package-level rand.Float64, rand.Intn,
//     rand.Seed, …) is forbidden everywhere in scope, annotation or not:
//     it is process-global, unseeded by default, and draws from it can never
//     be reproduced from (seed, index). Randomness must flow from an
//     explicitly seeded *rand.Rand (rand.New(rand.NewSource(seed))), whose
//     method calls are allowed.
//
// Timer plumbing (time.AfterFunc, time.NewTimer, time.Sleep) is out of
// scope: it schedules work without feeding a clock value into results.
func Wallclock(cfg WallclockConfig) *Analyzer {
	a := &Analyzer{
		Name: "wallclock",
		Doc:  "time.Now/Since/Until only inside //memlp:timing funnels; no global math/rand source in deterministic packages",
	}
	a.Run = func(pass *Pass) error {
		if !pkgMatch(pass.Pkg.Path(), cfg.Pkgs) {
			return nil
		}
		forEachFunc(pass.Files, func(fn *ast.FuncDecl) {
			timing := funcAnnotated(fn, timingMarker)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkWallclockCall(pass, call, timing)
				return true
			})
		})
		// Package-level initializers can never be annotated funnels.
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				ast.Inspect(gd, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						checkWallclockCall(pass, call, false)
					}
					return true
				})
			}
		}
		return nil
	}
	return a
}

// checkWallclockCall reports a clock read outside a timing funnel or a draw
// from the global math/rand source.
func checkWallclockCall(pass *Pass, call *ast.CallExpr, timing bool) {
	for _, name := range [...]string{"Now", "Since", "Until"} {
		if isPkgFunc(pass.Info, call, "time", name) {
			if !timing {
				pass.Reportf(call.Pos(),
					"time.%s outside a //memlp:timing funnel: deterministic packages must not observe the host clock",
					name)
			}
			return
		}
	}
	if fn := globalRandFunc(pass.Info, call); fn != "" {
		pass.Reportf(call.Pos(),
			"rand.%s draws from the process-global source: use an explicitly seeded *rand.Rand so draws reproduce from (seed, index)",
			fn)
	}
}

// globalRandFunc returns the name of a package-level math/rand (or
// math/rand/v2) function the call invokes, or "". Methods on a seeded
// *rand.Rand and the generator constructors (New, NewSource, NewZipf,
// NewPCG, NewChaCha8) are allowed.
func globalRandFunc(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return ""
	}
	path := obj.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return ""
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "" // method on an explicitly constructed generator
	}
	switch obj.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return ""
	}
	return obj.Name()
}
