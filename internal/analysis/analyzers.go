package analysis

// Default returns the production-configured memlpvet suite, in reporting
// order. The configurations pin each analyzer to the packages that own the
// corresponding invariant (see DESIGN.md D11 for the style/boundary
// analyzers and D16 for the determinism/concurrency analyzers):
//
//   - floatcmp everywhere, with internal/linalg hosting the approved
//     //memlp:tolerance-helper functions;
//   - ctxloop on the iteration engines (internal/core, internal/engine,
//     internal/pdhg);
//   - rawwrite protecting internal/crossbar's realized-conductance matrix
//     (gt) and program-and-verify cache (progTarget);
//   - nanguard on the public memlp package;
//   - hotpath wherever //memlp:hotpath annotations appear;
//   - tracesink keeping raw file/JSON/HTTP I/O out of the solver engines —
//     telemetry leaves them only through trace sinks;
//   - detorder on the packages whose iteration order feeds the determinism
//     contracts (bit-identical batches across pool widths, golden traces,
//     served == direct solves): no map-range may drive float accumulation,
//     trace emission, batch indexing, or noise-epoch derivation;
//   - wallclock on every deterministic package — the engines, the fabric
//     substrate, the noise machinery, trace, and serve — confining
//     time.Now/Since/Until to //memlp:timing funnels and banning the global
//     math/rand source outright;
//   - guardedby everywhere //memlp:guardedby annotations appear (the serve
//     coalescer/pool/server state, the trace.Metrics aggregate);
//   - spawnjoin on the engine and serving packages, where a goroutine
//     without a join or cancellation path is a leaked fabric replica.
//
// Scope note (DESIGN.md D15): the tracesink and rawwrite lists are
// allowlists of engine-side packages, so the transport layer — cmd/memlpd
// and internal/serve, whose whole job is HTTP and JSON — is deliberately
// outside them, as are the other cmd/ mains and internal/experiments.
// Serving traffic must not widen the engine boundary: internal/serve talks
// to the fabric only through the public memlp API, never by importing the
// engine packages, and TestDefaultScopes pins both the lists and that
// import boundary.
func Default() []*Analyzer {
	return []*Analyzer{
		Floatcmp(FloatcmpConfig{
			HelperPkgs: []string{"internal/linalg"},
		}),
		Ctxloop(CtxloopConfig{
			Pkgs: []string{"internal/core", "internal/engine", "internal/pdhg"},
		}),
		Rawwrite(RawwriteConfig{
			StatePkgs: []string{"internal/crossbar"},
			TypeName:  "Crossbar",
			Fields:    []string{"gt", "progTarget"},
			Mutators:  []string{"Set", "Zero", "Fill"},
		}),
		Nanguard(NanguardConfig{
			Pkgs: []string{"github.com/memlp/memlp"},
		}),
		Hotpath(),
		Tracesink(TracesinkConfig{
			Pkgs: []string{"internal/cone", "internal/core", "internal/engine", "internal/pdhg", "internal/pdip", "internal/simplex"},
		}),
		Detorder(DetorderConfig{
			Pkgs: []string{
				"internal/core", "internal/engine", "internal/linalg",
				"internal/cone", "internal/trace", "internal/serve",
				"internal/pdhg",
			},
		}),
		Wallclock(WallclockConfig{
			Pkgs: []string{
				"internal/core", "internal/engine", "internal/linalg",
				"internal/cone", "internal/trace", "internal/serve",
				"internal/crossbar", "internal/variation", "internal/pdip",
				"internal/simplex", "internal/noc", "internal/memristor",
				"internal/quant", "internal/lp", "internal/pdhg",
			},
		}),
		Guardedby(),
		Spawnjoin(SpawnjoinConfig{
			Pkgs: []string{
				"internal/core", "internal/engine", "internal/serve",
				"internal/linalg", "internal/cone", "internal/trace",
				"internal/crossbar", "internal/variation", "internal/pdip",
				"internal/simplex", "internal/noc", "internal/memristor",
				"internal/quant", "cmd/memlpd", "internal/pdhg",
			},
		}),
	}
}
