package analysis

// Default returns the production-configured memlpvet suite, in reporting
// order. The configurations pin each analyzer to the packages that own the
// corresponding invariant (see DESIGN.md D11):
//
//   - floatcmp everywhere, with internal/linalg hosting the approved
//     //memlp:tolerance-helper functions;
//   - ctxloop on the iteration engines (internal/core, internal/engine);
//   - rawwrite protecting internal/crossbar's realized-conductance matrix
//     (gt) and program-and-verify cache (progTarget);
//   - nanguard on the public memlp package;
//   - hotpath wherever //memlp:hotpath annotations appear;
//   - tracesink keeping raw file/JSON/HTTP I/O out of the solver engines —
//     telemetry leaves them only through trace sinks.
func Default() []*Analyzer {
	return []*Analyzer{
		Floatcmp(FloatcmpConfig{
			HelperPkgs: []string{"internal/linalg"},
		}),
		Ctxloop(CtxloopConfig{
			Pkgs: []string{"internal/core", "internal/engine"},
		}),
		Rawwrite(RawwriteConfig{
			StatePkgs: []string{"internal/crossbar"},
			TypeName:  "Crossbar",
			Fields:    []string{"gt", "progTarget"},
			Mutators:  []string{"Set", "Zero", "Fill"},
		}),
		Nanguard(NanguardConfig{
			Pkgs: []string{"github.com/memlp/memlp"},
		}),
		Hotpath(),
		Tracesink(TracesinkConfig{
			Pkgs: []string{"internal/cone", "internal/core", "internal/engine", "internal/pdip", "internal/simplex"},
		}),
	}
}
