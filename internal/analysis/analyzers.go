package analysis

// Default returns the production-configured memlpvet suite, in reporting
// order. The configurations pin each analyzer to the packages that own the
// corresponding invariant (see DESIGN.md D11):
//
//   - floatcmp everywhere, with internal/linalg hosting the approved
//     //memlp:tolerance-helper functions;
//   - ctxloop on the iteration engines (internal/core, internal/engine);
//   - rawwrite protecting internal/crossbar's realized-conductance matrix
//     (gt) and program-and-verify cache (progTarget);
//   - nanguard on the public memlp package;
//   - hotpath wherever //memlp:hotpath annotations appear;
//   - tracesink keeping raw file/JSON/HTTP I/O out of the solver engines —
//     telemetry leaves them only through trace sinks.
//
// Scope note (DESIGN.md D15): the tracesink and rawwrite lists are
// allowlists of engine-side packages, so the transport layer — cmd/memlpd
// and internal/serve, whose whole job is HTTP and JSON — is deliberately
// outside them, as are the other cmd/ mains and internal/experiments.
// Serving traffic must not widen the engine boundary: internal/serve talks
// to the fabric only through the public memlp API, never by importing the
// engine packages, and TestDefaultScopes pins both the lists and that
// import boundary.
func Default() []*Analyzer {
	return []*Analyzer{
		Floatcmp(FloatcmpConfig{
			HelperPkgs: []string{"internal/linalg"},
		}),
		Ctxloop(CtxloopConfig{
			Pkgs: []string{"internal/core", "internal/engine"},
		}),
		Rawwrite(RawwriteConfig{
			StatePkgs: []string{"internal/crossbar"},
			TypeName:  "Crossbar",
			Fields:    []string{"gt", "progTarget"},
			Mutators:  []string{"Set", "Zero", "Fill"},
		}),
		Nanguard(NanguardConfig{
			Pkgs: []string{"github.com/memlp/memlp"},
		}),
		Hotpath(),
		Tracesink(TracesinkConfig{
			Pkgs: []string{"internal/cone", "internal/core", "internal/engine", "internal/pdip", "internal/simplex"},
		}),
	}
}
