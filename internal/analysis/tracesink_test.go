package analysis_test

import (
	"testing"

	"github.com/memlp/memlp/internal/analysis"
	"github.com/memlp/memlp/internal/analysis/analysistest"
)

func TestTracesink(t *testing.T) {
	a := analysis.Tracesink(analysis.TracesinkConfig{
		Pkgs: []string{"internal/core", "internal/engine", "internal/pdip", "internal/simplex"},
	})
	analysistest.Run(t, analysistest.TestData(), a, "example.com/tracesink/internal/core")
}

func TestTracesinkLeavesSinkPackagesAlone(t *testing.T) {
	// The sink layer owns serialization; the same forbidden imports must not
	// be flagged outside the configured engine packages.
	a := analysis.Tracesink(analysis.TracesinkConfig{
		Pkgs: []string{"internal/core", "internal/engine", "internal/pdip", "internal/simplex"},
	})
	analysistest.RunExpectClean(t, analysistest.TestData(), a, "example.com/tracesink/internal/trace")
}

func TestTracesinkCustomForbiddenList(t *testing.T) {
	// With a custom list that omits os/encoding-json, the default findings
	// disappear — the list is configuration, not hard-coded.
	a := analysis.Tracesink(analysis.TracesinkConfig{
		Pkgs:      []string{"internal/core"},
		Forbidden: []string{"net/http"},
	})
	analysistest.RunExpectClean(t, analysistest.TestData(), a, "example.com/tracesink/internal/core")
}
