package analysis_test

import (
	"testing"

	"github.com/memlp/memlp/internal/analysis"
	"github.com/memlp/memlp/internal/analysis/analysistest"
)

func TestNanguard(t *testing.T) {
	a := analysis.Nanguard(analysis.NanguardConfig{Pkgs: []string{"example.com/nanpub"}})
	analysistest.Run(t, analysistest.TestData(), a, "example.com/nanpub")
}

func TestNanguardOutsidePublicPackage(t *testing.T) {
	// Internal packages are not the API boundary; nothing is flagged there.
	a := analysis.Nanguard(analysis.NanguardConfig{Pkgs: []string{"github.com/memlp/memlp"}})
	analysistest.RunExpectClean(t, analysistest.TestData(), a, "example.com/nanpub")
}
