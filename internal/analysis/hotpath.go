package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotpathMarker annotates the per-iteration kernels (Algorithm 1/2 mat-vec,
// residual, and coefficient-update paths) that must not allocate.
const hotpathMarker = "//memlp:hotpath"

// Hotpath returns the analyzer enforcing the steady-state allocation
// invariant from PR 1: a function annotated //memlp:hotpath runs once (or
// O(N) times) per PDIP iteration, so it may not contain constructs that
// allocate — append, make, new, composite literals, closures, fmt calls,
// string concatenation, go/defer, conversions to interface types, or
// implicit interface boxing at call sites. The companion
// testing.AllocsPerRun regression tests verify the same property at
// runtime; the analyzer keeps it reviewable at the source level and catches
// regressions in code paths the tests do not drive.
func Hotpath() *Analyzer {
	a := &Analyzer{
		Name: "hotpath",
		Doc:  "//memlp:hotpath functions may not allocate (no append/make/new/literals/fmt/boxing)",
	}
	a.Run = func(pass *Pass) error {
		forEachFunc(pass.Files, func(fn *ast.FuncDecl) {
			if !funcAnnotated(fn, hotpathMarker) {
				return
			}
			checkHotpathBody(pass, fn)
		})
		return nil
	}
	return a
}

func checkHotpathBody(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			pass.Reportf(n.Pos(), "hot path %s: composite literal allocates", fn.Name.Name)
			return false
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hot path %s: closure allocates", fn.Name.Name)
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "hot path %s: go statement allocates a goroutine", fn.Name.Name)
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "hot path %s: defer has per-call overhead", fn.Name.Name)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.TypeOf(n.X)) {
				pass.Reportf(n.OpPos, "hot path %s: string concatenation allocates", fn.Name.Name)
			}
		case *ast.CallExpr:
			checkHotpathCall(pass, fn, n)
		}
		return true
	})
}

func checkHotpathCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	// Builtins that allocate.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if obj, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch obj.Name() {
			case "append", "make", "new":
				pass.Reportf(call.Pos(), "hot path %s: %s allocates", fn.Name.Name, obj.Name())
			}
			return
		}
	}
	// Conversions to interface types box their operand.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 &&
			!types.IsInterface(pass.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(), "hot path %s: conversion to interface boxes its operand", fn.Name.Name)
		}
		return
	}
	// Calls into fmt (Sprintf/Errorf/… all allocate).
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj, ok := pass.Info.Uses[sel.Sel]; ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "hot path %s: fmt.%s allocates", fn.Name.Name, obj.Name())
			return
		}
	}
	// Implicit interface boxing: a concrete argument passed to an
	// interface-typed parameter.
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if call.Ellipsis != token.NoPos {
				continue
			}
			if sl, ok := last.(*types.Slice); ok {
				param = sl.Elem()
			}
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		}
		if param == nil || !types.IsInterface(param) {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if tv, ok := pass.Info.Types[arg]; ok && tv.IsNil() {
			continue
		}
		pass.Reportf(arg.Pos(), "hot path %s: argument boxed into interface parameter", fn.Name.Name)
	}
}

// isString reports whether t's core type is string.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
