package analysis_test

import (
	"testing"

	"github.com/memlp/memlp/internal/analysis"
	"github.com/memlp/memlp/internal/analysis/analysistest"
)

func TestWallclock(t *testing.T) {
	a := analysis.Wallclock(analysis.WallclockConfig{
		Pkgs: []string{"internal/core", "internal/engine"},
	})
	analysistest.Run(t, analysistest.TestData(), a, "example.com/wallclock/internal/engine")
}

func TestWallclockLeavesUnscopedPackagesAlone(t *testing.T) {
	// Benchmark harnesses time themselves; the clock funnel rule applies only
	// inside the deterministic packages.
	a := analysis.Wallclock(analysis.WallclockConfig{
		Pkgs: []string{"internal/core", "internal/engine"},
	})
	analysistest.RunExpectClean(t, analysistest.TestData(), a, "example.com/wallclock/internal/experiments")
}
