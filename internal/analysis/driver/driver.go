// Package driver loads type-checked packages for the memlpvet analyzers in
// two modes: standalone (resolve package patterns with `go list -export` and
// type-check target sources against compiled export data) and unitchecker
// (the `go vet -vettool=` protocol, where the go command hands us one
// pre-planned package per invocation). Both modes run entirely offline on
// the standard library's go/importer; no golang.org/x/tools dependency.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"sort"

	"github.com/memlp/memlp/internal/analysis"
)

// A Finding is one analyzer diagnostic resolved to a file position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// listPkg is the subset of `go list -json` output the driver consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Check resolves patterns (e.g. "./...") in dir with the go tool, type-checks
// every matched package against the export data of its dependencies, and runs
// the analyzers over it. Test files are not analyzed: the invariants guard
// production paths, and fixtures deliberately violate them.
func Check(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	var findings []Finding
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.CgoFiles) > 0 || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		fs, err := checkPackage(fset, imp, p, analyzers)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings, nil
}

func checkPackage(fset *token.FileSet, imp types.Importer, p listPkg, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, p.Dir+string(os.PathSeparator)+name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
	}
	diags, err := analysis.RunAnalyzers(fset, files, pkg, info, analyzers)
	if err != nil {
		return nil, err
	}
	findings := make([]Finding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, Finding{
			Pos:      fset.Position(d.Pos),
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return findings, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// goList runs `go list -export -deps -json` so every matched package and
// every transitive dependency arrives with its compiled export data — the
// whole load works from the build cache, with no network and no source
// type-checking of the standard library.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
