package driver_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"github.com/memlp/memlp/internal/analysis"
	"github.com/memlp/memlp/internal/analysis/driver"
)

// badSrc violates floatcmp and hotpath; the fixed expectations below keep the
// driver honest about positions and waiver handling.
const badSrc = `package tmpvet

// Grow is annotated hot but allocates.
//
//memlp:hotpath
func Grow(v []float64) []float64 {
	return append(v, 1)
}

func Equal(a, b float64) bool {
	return a == b
}

func Waived(a, b float64) bool {
	//memlpvet:ignore floatcmp fixture exercising waiver passthrough
	return a == b
}
`

func writeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module example.com/tmpvet\n\ngo 1.22\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(badSrc), 0o666); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestCheck(t *testing.T) {
	dir := writeModule(t)
	findings, err := driver.Check(dir, []string{"./..."}, analysis.Default())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.Analyzer)
		if f.Pos.Filename == "" || f.Pos.Line == 0 {
			t.Errorf("finding %v lacks a position", f)
		}
		if !strings.Contains(f.String(), f.Message) {
			t.Errorf("String() %q does not contain the message", f.String())
		}
	}
	want := []string{"hotpath", "floatcmp"}
	if len(got) != len(want) {
		t.Fatalf("analyzers of findings = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("analyzers of findings = %v, want %v", got, want)
		}
	}
}

func TestCheckBadPattern(t *testing.T) {
	dir := writeModule(t)
	if _, err := driver.Check(dir, []string{"./nonexistent/..."}, analysis.Default()); err == nil {
		t.Fatal("Check on a nonexistent pattern succeeded")
	}
}

// TestVettool drives the full go vet -vettool protocol against the real
// binary: version probe, per-package .cfg invocations, diagnostics relayed
// through the go command.
func TestVettool(t *testing.T) {
	tool := filepath.Join(t.TempDir(), "memlpvet")
	build := exec.Command("go", "build", "-o", tool, "github.com/memlp/memlp/cmd/memlpvet")
	build.Dir = "../../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building memlpvet: %v\n%s", err, out)
	}
	dir := writeModule(t)
	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = dir
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed on a module with violations:\n%s", out)
	}
	for _, wantMsg := range []string{"exact float comparison", "append"} {
		if !strings.Contains(string(out), wantMsg) {
			t.Errorf("go vet output missing %q:\n%s", wantMsg, out)
		}
	}
	if strings.Contains(string(out), "waiver passthrough") {
		t.Errorf("waived finding leaked into go vet output:\n%s", out)
	}
}

func TestUnitcheckerVetxOnly(t *testing.T) {
	dir := t.TempDir()
	vetx := filepath.Join(dir, "out.vetx")
	cfg := filepath.Join(dir, "pkg.cfg")
	if err := os.WriteFile(cfg, []byte(`{"ImportPath":"example.com/x","VetxOnly":true,"VetxOutput":"`+vetx+`"}`), 0o666); err != nil {
		t.Fatal(err)
	}
	if code := driver.Unitchecker(cfg, analysis.Default()); code != 0 {
		t.Fatalf("VetxOnly exit code = %d, want 0", code)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("facts file not written: %v", err)
	}
}

func TestUnitcheckerMissingConfig(t *testing.T) {
	if code := driver.Unitchecker(filepath.Join(t.TempDir(), "absent.cfg"), analysis.Default()); code != 1 {
		t.Fatalf("missing config exit code = %d, want 1", code)
	}
}
