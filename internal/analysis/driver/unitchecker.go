package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"github.com/memlp/memlp/internal/analysis"
)

// vetConfig mirrors the JSON configuration the go command writes for a
// `go vet -vettool=` invocation (one file per package, passed as the sole
// positional argument with a .cfg suffix).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Unitchecker analyzes the single package described by the .cfg file,
// printing diagnostics to stderr in the file:line:col format the go command
// relays. The returned exit code follows the vet tool convention: 0 clean,
// 1 operational failure, 2 diagnostics reported.
func Unitchecker(cfgFile string, analyzers []*analysis.Analyzer) int {
	cfg, err := readVetConfig(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memlpvet: %v\n", err)
		return 1
	}
	// The go command caches on the facts file; memlpvet keeps no facts but
	// must still produce it.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "memlpvet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	findings, err := checkVetPackage(cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "memlpvet: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", f.Pos, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

func readVetConfig(cfgFile string) (*vetConfig, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", cfgFile, err)
	}
	return cfg, nil
}

func checkVetPackage(cfg *vetConfig, analyzers []*analysis.Analyzer) ([]Finding, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(importPath string) (io.ReadCloser, error) {
		// The go command writes a complete ImportMap (identity entries
		// included); tolerate a missing entry for robustness.
		path := importPath
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	info := newInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}
	diags, err := analysis.RunAnalyzers(fset, files, pkg, info, analyzers)
	if err != nil {
		return nil, err
	}
	findings := make([]Finding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, Finding{
			Pos:      fset.Position(d.Pos),
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return findings, nil
}
