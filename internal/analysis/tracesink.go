package analysis

import (
	"strconv"
)

// TracesinkConfig parameterizes the tracesink analyzer.
type TracesinkConfig struct {
	// Pkgs are the solver-engine packages (pkgMatch patterns) that must emit
	// telemetry through trace sinks instead of doing I/O themselves.
	Pkgs []string
	// Forbidden are the import paths the engine packages may not use. Empty
	// means DefaultForbiddenImports.
	Forbidden []string
}

// DefaultForbiddenImports is the I/O and encoding surface the engine
// packages must not reach for: serialization and transport belong to the
// sink implementations in internal/trace and to the CLIs.
var DefaultForbiddenImports = []string{
	"os", "bufio", "net/http", "encoding/json", "io/ioutil",
}

// Tracesink returns the analyzer enforcing the observability boundary of
// DESIGN.md D13: solver-engine packages record telemetry by emitting records
// into a trace.Sink, never by writing files, encoding JSON, or serving HTTP
// themselves. Keeping raw I/O out of the engines is what makes the hot-path
// zero-allocation guarantee auditable (a ring-buffer Emit cannot block on a
// file) and keeps the golden-trace serialization format in one place.
func Tracesink(cfg TracesinkConfig) *Analyzer {
	forbidden := cfg.Forbidden
	if len(forbidden) == 0 {
		forbidden = DefaultForbiddenImports
	}
	a := &Analyzer{
		Name: "tracesink",
		Doc:  "solver-engine packages must emit telemetry via trace sinks, not direct file/JSON/HTTP I/O",
	}
	a.Run = func(pass *Pass) error {
		if !pkgMatch(pass.Pkg.Path(), cfg.Pkgs) {
			return nil
		}
		bad := make(map[string]bool, len(forbidden))
		for _, p := range forbidden {
			bad[p] = true
		}
		for _, f := range pass.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if bad[path] {
					pass.Reportf(imp.Pos(),
						"engine package imports %q: telemetry must flow through a trace.Sink, not direct I/O",
						path)
				}
			}
		}
		return nil
	}
	return a
}
