package analysis_test

import (
	"testing"

	"github.com/memlp/memlp/internal/analysis"
	"github.com/memlp/memlp/internal/analysis/analysistest"
)

func floatcmpAnalyzer() *analysis.Analyzer {
	return analysis.Floatcmp(analysis.FloatcmpConfig{HelperPkgs: []string{"internal/linalg"}})
}

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), floatcmpAnalyzer(), "floatcmp")
}

func TestFloatcmpHelperPackage(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), floatcmpAnalyzer(), "example.com/memlp/internal/linalg")
}
