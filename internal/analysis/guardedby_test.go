package analysis_test

import (
	"testing"

	"github.com/memlp/memlp/internal/analysis"
	"github.com/memlp/memlp/internal/analysis/analysistest"
)

func TestGuardedby(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Guardedby(), "guardedbyfix")
}
