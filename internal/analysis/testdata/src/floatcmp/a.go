package floatcmp

import "math"

func bad(a, b float64) bool {
	return a == b // want "exact float comparison"
}

func badNeq(a, b float32) bool {
	if a != b { // want "exact float comparison"
		return true
	}
	return false
}

func badConst(a float64) bool {
	return a == 1.5 // want "exact float comparison"
}

// Sentinel idioms that must NOT be flagged (false-positive guards).

func zeroSentinel(a float64) bool { return a == 0 }

func zeroLeft(a float64) bool { return 0.0 != a }

func infSentinel(a float64) bool { return a == math.Inf(1) }

func negInfSentinel(a float64) bool { return a == -math.Inf(1) }

func nanProbe(a float64) bool { return a != a }

func notFloats(a, b int) bool { return a == b }

// Annotations outside the approved helper package do not exempt.
//
//memlp:tolerance-helper
func fakeHelper(a, b float64) bool {
	return a == b // want "exact float comparison"
}

func waived(a, b float64) bool {
	//memlpvet:ignore floatcmp both operands lie on the same quantization grid
	return a == b
}
