package hotpathfix

import "fmt"

func done() {}

func sink(x interface{}) {}

type runner interface{ run() }

type motor struct{}

func (motor) run() {}

//memlp:hotpath
func badAlloc(v []float64) []float64 {
	v = append(v, 1) // want "append"
	m := make([]float64, 4) // want "make"
	_ = m
	s := fmt.Sprintf("x%d", 1) // want "fmt"
	_ = s
	_ = []int{1, 2} // want "composite literal"
	f := func() {} // want "closure"
	f()
	return v
}

//memlp:hotpath
func badMisc(a, b string) string {
	defer done() // want "defer"
	go done()    // want "go statement"
	return a + b // want "string concatenation"
}

//memlp:hotpath
func badBoxing(v float64) {
	sink(v) // want "interface"
}

//memlp:hotpath
func badConvert(m motor) runner {
	return runner(m) // want "interface"
}

//memlp:hotpath
func clean(v, w []float64) float64 {
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

//memlp:hotpath
func cleanCalls(v []float64) int {
	done()
	return len(v)
}

func unannotated(v []float64) []float64 {
	_ = fmt.Sprint("ok")
	return append(v, 1)
}

//memlp:hotpath
func waived(v []float64) []float64 {
	//memlpvet:ignore hotpath cold-start path, runs once per solve
	return append(v, 1)
}
