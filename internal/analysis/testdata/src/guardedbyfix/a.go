package guardedbyfix

import "sync"

type pool struct {
	mu      sync.Mutex
	created int //memlp:guardedby mu
	max     int // immutable after construction
}

func (p *pool) bad() int {
	return p.created // want "created accessed without holding p.mu"
}

func (p *pool) badAfterUnlock() {
	p.mu.Lock()
	p.created++
	p.mu.Unlock()
	p.created++ // want "created accessed without holding p.mu"
}

func (p *pool) goodDeferred() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.created
}

func (p *pool) goodExplicit() {
	p.mu.Lock()
	p.created++
	p.mu.Unlock()
}

// The unlock-then-return early-exit idiom: that unlock never flows past its
// block, so the fall-through accesses still run under the original Lock.
func (p *pool) goodEarlyExit(limit int) bool {
	p.mu.Lock()
	if p.created >= limit {
		p.mu.Unlock()
		return false
	}
	p.created++
	p.mu.Unlock()
	return true
}

// Functions following the *Locked caller-holds convention are exempt.
func (p *pool) drainLocked() {
	p.created = 0
}

// Unannotated fields are free.
func (p *pool) capacity() int { return p.max }

// RWMutex read locks guard reads too.
type table struct {
	mu      sync.RWMutex
	entries map[string]int //memlp:guardedby mu
}

func (t *table) goodRead(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.entries[k]
}

func (t *table) badRead(k string) int {
	return t.entries[k] // want "entries accessed without holding t.mu"
}

// A reasoned waiver suppresses the finding.
func (t *table) waivedInit() {
	//memlpvet:ignore guardedby constructor runs before the value is shared
	t.entries = map[string]int{}
}

// A typo in the annotation cannot silently disable the guard.
type badAnnot struct {
	mu sync.Mutex
	n  int //memlp:guardedby lock // want "no such field"
}
