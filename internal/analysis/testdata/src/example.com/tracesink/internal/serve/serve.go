// Package serve stands in for the real transport layer (internal/serve,
// cmd/memlpd): HTTP and JSON are its job, so the tracesink boundary must
// leave it alone even though it reaches for every forbidden import.
package serve

import (
	"encoding/json"
	"net/http"
	"os"
)

func handle(w http.ResponseWriter, v any) {
	b, _ := json.Marshal(v)
	w.Write(b)
	f, _ := os.Create("access.log")
	defer f.Close()
	f.Write(b)
}
