// Package trace is the sink layer: it owns serialization, so the forbidden
// imports are legitimate here and the analyzer must stay silent.
package trace

import (
	"bufio"
	"encoding/json"
	"strings"
)

func encode(v any) string {
	b, _ := json.Marshal(v)
	w := bufio.NewWriter(&strings.Builder{})
	_, _ = w.Write(b)
	return string(b)
}
