package core

import (
	"encoding/json" // want `engine package imports "encoding/json"`
	"fmt"
	"os" // want `engine package imports "os"`
	"strings"
)

func dump(v any) string {
	b, _ := json.Marshal(v)
	f, _ := os.Create("trace.out")
	defer f.Close()
	fmt.Fprintln(f, string(b))
	return strings.ToUpper(string(b))
}
