package core

import "sort"

type sink struct{}

func (sink) Emit(v int) {}

type fabric struct{}

func (fabric) ReseedEpoch(e int64) {}

// Float accumulation does not commute: the sum depends on visit order.
func badFloatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want "writes floating-point state"
		sum += v
	}
	return sum
}

func badFloatAppend(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m { // want "appends floats in map order"
		out = append(out, v)
	}
	return out
}

// Golden traces compare record-by-record, so emission order is contractual.
func badEmit(m map[string]int, s sink) {
	for _, v := range m { // want "emits trace records"
		s.Emit(v)
	}
}

// Noise streams derive from (seed, batch index): handing out indices in map
// order makes the stochastic stream a function of Go's map randomization.
func badBatchIndex(m map[string]int) map[string]int {
	out := map[string]int{}
	idx := 0
	for k := range m { // want "assigns a batch index/epoch"
		out[k] = idx
		idx++
	}
	return out
}

func badEpoch(m map[int]fabric) {
	for _, f := range m { // want "derives a noise epoch"
		f.ReseedEpoch(1)
	}
}

// Key collection for sorting is the sanctioned remedy, not a finding.
func goodSortedKeys(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// Order-insensitive bodies (integer counting, set membership) pass.
func goodCount(m map[string]int, allow map[string]bool) int {
	n := 0
	for k := range m {
		if allow[k] {
			n++
		}
	}
	return n
}

// Ranging a slice is always fine, float writes or not.
func goodSlice(vs []float64) float64 {
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum
}

// A reasoned waiver on the line above suppresses the finding.
func waivedMin(m map[string]float64) float64 {
	var min float64
	//memlpvet:ignore detorder commutative min reduction, order cannot change the result
	for _, v := range m {
		if v < min {
			min = v
		}
	}
	return min
}
