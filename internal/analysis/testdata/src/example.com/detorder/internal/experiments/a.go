package experiments

// Benchmark bookkeeping outside the deterministic packages may iterate maps
// freely; the same body inside internal/core would be a finding.
func sumAll(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
