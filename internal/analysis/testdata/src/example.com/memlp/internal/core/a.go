package core

import "context"

func work()                     {}
func step(ctx context.Context)  {}
func done() bool                { return true }

func observes(ctx context.Context, max int) {
	for iter := 0; iter < max; iter++ {
		if ctx.Err() != nil {
			return
		}
		work()
	}
}

func delegates(ctx context.Context, max int) {
	for attempt := 0; attempt <= max; attempt++ {
		step(ctx)
	}
}

func blindRetry(max int) {
	for attempt := 0; attempt <= max; attempt++ { // want "iteration-count loop does not observe cancellation"
		work()
	}
}

func blindInfinite() {
	for { // want "unbounded loop does not observe cancellation"
		work()
	}
}

func blindWhile() {
	for !done() { // want "unbounded loop does not observe cancellation"
		work()
	}
}

func dataSweep(rows [][]float64) {
	for i := 0; i < len(rows); i++ {
		_ = rows[i]
	}
}

func waived(max int) {
	//memlpvet:ignore ctxloop retry budget is a small constant, body is non-blocking
	for retry := 0; retry < max; retry++ {
		work()
	}
}
