package linalg

// Identical is an approved exact-equality helper.
//
//memlp:tolerance-helper
func Identical(a, b float64) bool { return a == b }

func stray(a, b float64) bool {
	return a == b // want "exact float comparison"
}
