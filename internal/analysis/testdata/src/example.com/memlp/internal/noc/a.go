package noc

import "example.com/memlp/internal/crossbar"

// The funnel annotation is meaningless outside the state-owning package.
//
//memlp:conductance-writer
func Tamper(x *crossbar.Crossbar) {
	x.Gt.Set(0, 0, 1) // want "outside the write-verify programming funnel"
}

func Observe(x *crossbar.Crossbar) float64 { return x.Gt.At(0, 0) }
