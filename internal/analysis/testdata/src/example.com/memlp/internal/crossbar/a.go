package crossbar

// Matrix is a stand-in for linalg.Matrix.
type Matrix struct{ data []float64 }

func (m *Matrix) Set(i, j int, v float64) {}
func (m *Matrix) Zero()                   {}
func (m *Matrix) RawRow(i int) []float64  { return m.data }
func (m *Matrix) At(i, j int) float64     { return 0 }

// Crossbar mirrors the production array type.
type Crossbar struct {
	gt         *Matrix
	progTarget *Matrix
	Gt         *Matrix // exported variant for the cross-package fixture
}

// writeDevice is the approved write-verify funnel.
//
//memlp:conductance-writer
func (x *Crossbar) writeDevice(i, j int, g float64) {
	x.progTarget.Set(i, j, g)
	x.gt.Set(i, j, g)
}

// Program resets the realized state before rewriting.
//
//memlp:conductance-writer
func (x *Crossbar) Program() {
	x.gt.Zero()
	x.progTarget.Zero()
}

func (x *Crossbar) sneaky(i, j int, g float64) {
	x.gt.Set(i, j, g)     // want "outside the write-verify programming funnel"
	x.gt.RawRow(i)[j] = g // want "direct cell assignment into conductance state"
	x.progTarget.Zero()   // want "outside the write-verify programming funnel"
}

func (x *Crossbar) read(i, j int) float64 { return x.gt.At(i, j) }

func (x *Crossbar) waived(i, j int, g float64) {
	//memlpvet:ignore rawwrite test-only calibration shim, not a device write
	x.gt.Set(i, j, g)
}
