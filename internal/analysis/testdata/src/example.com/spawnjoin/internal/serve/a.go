package serve

import (
	"context"
	"sync"
)

func badFireAndForget(work func()) {
	go func() { // want "no visible join or cancellation path"
		work()
	}()
}

func badOpaque(work func()) {
	go work() // want "goroutine body is not visible"
}

func goodWaitGroup(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func goodDoneChannel() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	return done
}

func goodCtx(ctx context.Context, tick func()) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				tick()
			}
		}
	}()
}

type loop struct{ jobs chan int }

// worker joins when the spawner closes the feed channel.
func (l *loop) worker() {
	for range l.jobs {
	}
}

func (l *loop) goodNamedWorker() {
	go l.worker()
}

// A reasoned waiver suppresses the finding.
func waivedDetached(hook func()) {
	//memlpvet:ignore spawnjoin process-lifetime monitor, intentionally detached
	go hook()
}
