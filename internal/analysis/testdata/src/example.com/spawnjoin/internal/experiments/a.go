package experiments

// Throwaway harness goroutines outside the scoped packages are not audited;
// the same spawn inside internal/serve would be a finding.
func fire(work func()) {
	go work()
}
