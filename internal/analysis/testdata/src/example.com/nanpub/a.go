package nanpub

import "math"

// Objective evaluates the objective at x.
func Objective(x []float64) float64 { // want "neither validates nor documents NaN/Inf propagation"
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Norm returns the 1-norm of x; NaN inputs propagate to the result.
func Norm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Checked clamps non-finite inputs to zero.
func Checked(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}

// Solution bundles solve outputs.
type Solution struct{ x []float64 }

// Values copies the iterate out.
func (s *Solution) Values() []float64 { // want "neither validates nor documents NaN/Inf propagation"
	out := make([]float64, len(s.x))
	copy(out, s.x)
	return out
}

// Count returns the iterate length.
func Count(s []float64) int { return len(s) }

func internalHelper(x float64) float64 { return x }
