package engine

import (
	"math/rand"
	"time"
)

func badClock() time.Time {
	return time.Now() // want "time.Now outside"
}

func badElapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since outside"
}

func badDeadline(t time.Time) time.Duration {
	return time.Until(t) // want "time.Until outside"
}

// The global math/rand source is forbidden even inside timing funnels: its
// draws can never be reproduced from (seed, index).
func badGlobalRand() float64 {
	return rand.Float64() // want "rand.Float64 draws from the process-global source"
}

// Package-level initializers can never be annotated funnels.
var skew = time.Now().UnixNano() // want "time.Now outside"

var jitter = rand.Intn(3) // want "rand.Intn draws from the process-global source"

// Annotated funnels are the sanctioned clock access.
//
//memlp:timing
func wallClock() time.Time { return time.Now() }

//memlp:timing
func wallSince(start time.Time) time.Duration { return time.Since(start) }

// Methods on an explicitly seeded generator reproduce from (seed, index).
func goodSeeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Timer plumbing schedules work without feeding a clock value into results.
func goodTimer(d time.Duration) *time.Timer {
	return time.NewTimer(d)
}

// A reasoned waiver suppresses the finding.
func waivedClock() int64 {
	//memlpvet:ignore wallclock startup banner only, value never reaches solver state
	return time.Now().UnixNano()
}
