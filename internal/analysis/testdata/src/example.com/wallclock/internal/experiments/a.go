package experiments

import "time"

// Benchmark harnesses outside the deterministic packages time themselves
// freely; the same call inside internal/engine would be a finding.
func stamp() time.Time {
	return time.Now()
}
