package analysis_test

// TestDefaultScopes pins the production analyzer scopes around the serving
// layer (see the scope note on Default): the tracesink boundary is an
// allowlist of engine packages, so internal/serve — whose job is HTTP and
// JSON — must stay outside it, and in exchange the serve layer must never
// import the engine packages directly: it reaches the fabric only through
// the public memlp API.

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/memlp/memlp/internal/analysis"
	"github.com/memlp/memlp/internal/analysis/analysistest"
)

// defaultTracesink digs the production tracesink analyzer out of Default().
func defaultTracesink(t *testing.T) *analysis.Analyzer {
	t.Helper()
	for _, a := range analysis.Default() {
		if a.Name == "tracesink" {
			return a
		}
	}
	t.Fatal("Default() has no tracesink analyzer")
	return nil
}

func TestDefaultScopesTracesinkCoversEngines(t *testing.T) {
	// The engine fixture must still be flagged by the production config —
	// the scope can only be relaxed deliberately, in this test's face.
	analysistest.Run(t, analysistest.TestData(), defaultTracesink(t),
		"example.com/tracesink/internal/core")
}

func TestDefaultScopesTracesinkExemptsServe(t *testing.T) {
	// The serve fixture imports every forbidden path (net/http,
	// encoding/json, os) and must come back clean: transport is exempt.
	analysistest.RunExpectClean(t, analysistest.TestData(), defaultTracesink(t),
		"example.com/tracesink/internal/serve")
}

// engineImports are the packages the serving layer may not touch: the
// tracesink-scoped engines plus the crossbar substrate they guard.
var engineImports = []string{
	"github.com/memlp/memlp/internal/cone",
	"github.com/memlp/memlp/internal/core",
	"github.com/memlp/memlp/internal/engine",
	"github.com/memlp/memlp/internal/pdip",
	"github.com/memlp/memlp/internal/simplex",
	"github.com/memlp/memlp/internal/crossbar",
}

func TestDefaultScopesServeImportBoundary(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{"internal/serve", "cmd/memlpd"} {
		entries, err := os.ReadDir(filepath.Join(root, dir))
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(root, dir, e.Name())
			f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					t.Fatalf("%s: %v", path, err)
				}
				for _, banned := range engineImports {
					if ip == banned {
						t.Errorf("%s/%s imports %s: the serving layer must use the public memlp API, not the engines",
							dir, e.Name(), ip)
					}
				}
			}
		}
	}
}
