package analysis_test

// TestDefaultScopes pins the production analyzer scopes around the serving
// layer (see the scope note on Default): the tracesink boundary is an
// allowlist of engine packages, so internal/serve — whose job is HTTP and
// JSON — must stay outside it, and in exchange the serve layer must never
// import the engine packages directly: it reaches the fabric only through
// the public memlp API.

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/memlp/memlp/internal/analysis"
	"github.com/memlp/memlp/internal/analysis/analysistest"
)

// defaultAnalyzer digs a production-configured analyzer out of Default().
func defaultAnalyzer(t *testing.T, name string) *analysis.Analyzer {
	t.Helper()
	for _, a := range analysis.Default() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("Default() has no %s analyzer", name)
	return nil
}

// defaultTracesink digs the production tracesink analyzer out of Default().
func defaultTracesink(t *testing.T) *analysis.Analyzer {
	return defaultAnalyzer(t, "tracesink")
}

func TestDefaultScopesTracesinkCoversEngines(t *testing.T) {
	// The engine fixture must still be flagged by the production config —
	// the scope can only be relaxed deliberately, in this test's face.
	analysistest.Run(t, analysistest.TestData(), defaultTracesink(t),
		"example.com/tracesink/internal/core")
}

func TestDefaultScopesTracesinkExemptsServe(t *testing.T) {
	// The serve fixture imports every forbidden path (net/http,
	// encoding/json, os) and must come back clean: transport is exempt.
	analysistest.RunExpectClean(t, analysistest.TestData(), defaultTracesink(t),
		"example.com/tracesink/internal/serve")
}

// TestDefaultScopesDeterminism pins the production scopes of the D16
// determinism/concurrency analyzers: the fixtures live under example.com/...
// so a suffix pkgMatch against the production Pkgs lists is exactly what is
// exercised — if a package is dropped from a production scope, the matching
// fixture stops being flagged and this test fails.
func TestDefaultScopesDeterminism(t *testing.T) {
	flagged := map[string]string{
		"detorder":  "example.com/detorder/internal/core",
		"wallclock": "example.com/wallclock/internal/engine",
		"spawnjoin": "example.com/spawnjoin/internal/serve",
	}
	for name, pkg := range flagged {
		analysistest.Run(t, analysistest.TestData(), defaultAnalyzer(t, name), pkg)
	}
	// internal/experiments is deliberately outside every determinism scope:
	// benchmark harnesses may time themselves, iterate maps, and fire
	// goroutines without an audit trail.
	clean := map[string]string{
		"detorder":  "example.com/detorder/internal/experiments",
		"wallclock": "example.com/wallclock/internal/experiments",
		"spawnjoin": "example.com/spawnjoin/internal/experiments",
	}
	for name, pkg := range clean {
		analysistest.RunExpectClean(t, analysistest.TestData(), defaultAnalyzer(t, name), pkg)
	}
	// guardedby is annotation-driven and unconditional, like hotpath: any
	// package carrying //memlp:guardedby fields is checked.
	analysistest.Run(t, analysistest.TestData(), defaultAnalyzer(t, "guardedby"), "guardedbyfix")
}

// engineImports are the packages the serving layer may not touch: the
// tracesink-scoped engines plus the crossbar substrate they guard.
var engineImports = []string{
	"github.com/memlp/memlp/internal/cone",
	"github.com/memlp/memlp/internal/core",
	"github.com/memlp/memlp/internal/engine",
	"github.com/memlp/memlp/internal/pdip",
	"github.com/memlp/memlp/internal/simplex",
	"github.com/memlp/memlp/internal/crossbar",
}

func TestDefaultScopesServeImportBoundary(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{"internal/serve", "cmd/memlpd"} {
		entries, err := os.ReadDir(filepath.Join(root, dir))
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(root, dir, e.Name())
			f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					t.Fatalf("%s: %v", path, err)
				}
				for _, banned := range engineImports {
					if ip == banned {
						t.Errorf("%s/%s imports %s: the serving layer must use the public memlp API, not the engines",
							dir, e.Name(), ip)
					}
				}
			}
		}
	}
}
