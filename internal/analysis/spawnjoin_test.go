package analysis_test

import (
	"testing"

	"github.com/memlp/memlp/internal/analysis"
	"github.com/memlp/memlp/internal/analysis/analysistest"
)

func TestSpawnjoin(t *testing.T) {
	a := analysis.Spawnjoin(analysis.SpawnjoinConfig{
		Pkgs: []string{"internal/engine", "internal/serve"},
	})
	analysistest.Run(t, analysistest.TestData(), a, "example.com/spawnjoin/internal/serve")
}

func TestSpawnjoinLeavesUnscopedPackagesAlone(t *testing.T) {
	// Throwaway harness goroutines outside the scoped packages are exempt.
	a := analysis.Spawnjoin(analysis.SpawnjoinConfig{
		Pkgs: []string{"internal/engine", "internal/serve"},
	})
	analysistest.RunExpectClean(t, analysistest.TestData(), a, "example.com/spawnjoin/internal/experiments")
}
