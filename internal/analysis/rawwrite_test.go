package analysis_test

import (
	"testing"

	"github.com/memlp/memlp/internal/analysis"
	"github.com/memlp/memlp/internal/analysis/analysistest"
)

func rawwriteAnalyzer() *analysis.Analyzer {
	return analysis.Rawwrite(analysis.RawwriteConfig{
		StatePkgs: []string{"internal/crossbar"},
		TypeName:  "Crossbar",
		// Gt is the exported variant the cross-package fixture writes to;
		// production state is unexported.
		Fields:   []string{"gt", "progTarget", "Gt"},
		Mutators: []string{"Set", "Zero", "Fill"},
	})
}

func TestRawwriteStatePackage(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), rawwriteAnalyzer(), "example.com/memlp/internal/crossbar")
}

func TestRawwriteForeignPackage(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), rawwriteAnalyzer(), "example.com/memlp/internal/noc")
}
