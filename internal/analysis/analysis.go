// Package analysis is memlp's domain-specific static-analysis suite: ten
// analyzers that enforce, at the source level, the numerical/cancellation/
// hot-path invariants the solver's correctness argument rests on (DESIGN.md
// D11) and the determinism/concurrency invariants behind the serving-era
// guarantees — bit-identical batches across pool widths, golden traces
// pinned at 1e-9, served solves bit-identical to direct SolveBatch
// (DESIGN.md D16). It is intentionally self-contained — built only on
// go/ast and go/types, with the same Analyzer/Pass shape as
// golang.org/x/tools/go/analysis so the analyzers could be ported to the
// upstream framework verbatim if the dependency ever becomes available.
//
// The analyzers:
//
//   - floatcmp  — no ==/!= between floats outside the approved
//     internal/linalg tolerance helpers (Eqs. 8/11 are tolerance checks,
//     not equalities).
//   - ctxloop   — unbounded and iteration-count loops in internal/core and
//     internal/engine must observe their context (the PR 1 invariant).
//   - rawwrite  — conductance state is mutated only through the annotated
//     write-verify programming funnel in internal/crossbar (the PR 2
//     invariant).
//   - nanguard  — exported float-returning functions of the public package
//     either validate or document NaN/Inf propagation.
//   - hotpath   — functions annotated //memlp:hotpath may not allocate.
//   - tracesink — solver-engine packages emit telemetry only through trace
//     sinks, never raw file/JSON/HTTP I/O (the PR 5 invariant).
//   - detorder  — no range over a map where the body writes floats, emits
//     trace records, assigns batch indices, or derives noise epochs: map
//     order is randomized per run, the determinism contracts are not.
//   - wallclock — time.Now/Since/Until only inside //memlp:timing funnels;
//     the process-global math/rand source is banned in deterministic
//     packages.
//   - guardedby — fields annotated //memlp:guardedby mu are accessed only
//     with that sibling mutex held (lexical lock-state scan).
//   - spawnjoin — every goroutine in engine/serve code has a visible join
//     or cancellation path (WaitGroup, channel, or ctx).
//
// Findings are suppressed only by an explicit, reasoned waiver comment:
//
//	//memlpvet:ignore <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. A waiver without
// a reason is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and waiver comments.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run reports the analyzer's findings on one package via pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// RunAnalyzers applies every analyzer to the package, filters the raw
// findings through the //memlpvet:ignore waivers found in the files, and
// returns the surviving diagnostics sorted by position. Malformed waivers
// (no analyzer name, no reason) are reported as findings themselves, so a
// suppression can never be silent.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	// Test files are exempt across the whole suite: the invariants guard
	// production paths, and tests legitimately assert bit-exact determinism
	// (same seed, same result) that floatcmp would otherwise flag.
	prod := make([]*ast.File, 0, len(files))
	for _, f := range files {
		if strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		prod = append(prod, f)
	}
	files = prod
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info, diags: &diags}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	diags = applyWaivers(fset, files, diags)
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// waiverPrefix introduces a reasoned suppression comment.
const waiverPrefix = "//memlpvet:ignore"

// waiver is one parsed //memlpvet:ignore comment.
type waiver struct {
	analyzer string
	file     string
	line     int
}

// applyWaivers removes diagnostics covered by a well-formed waiver on the
// same line or the line above, and appends a diagnostic for every malformed
// waiver comment.
func applyWaivers(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	waived := map[waiver]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, waiverPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, waiverPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				if name == "" || strings.TrimSpace(reason) == "" {
					diags = append(diags, Diagnostic{
						Analyzer: "waiver",
						Pos:      c.Pos(),
						Message:  "malformed waiver: want //memlpvet:ignore <analyzer> <reason>",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				waived[waiver{name, pos.Filename, pos.Line}] = true
			}
		}
	}
	if len(waived) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if waived[waiver{d.Analyzer, pos.Filename, pos.Line}] ||
			waived[waiver{d.Analyzer, pos.Filename, pos.Line - 1}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// pkgMatch reports whether an import path matches one of the patterns: an
// exact path, or a path ending in "/<pattern>". This lets production configs
// name "internal/core" and have test fixtures live at
// "example.com/memlp/internal/core".
func pkgMatch(path string, patterns []string) bool {
	for _, pat := range patterns {
		if path == pat || strings.HasSuffix(path, "/"+pat) {
			return true
		}
	}
	return false
}

// funcAnnotated reports whether the function's doc comment contains the
// given //memlp:<marker> annotation line.
func funcAnnotated(fn *ast.FuncDecl, marker string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}

// forEachFunc invokes f for every function declaration with a body.
func forEachFunc(files []*ast.File, f func(fn *ast.FuncDecl)) {
	for _, file := range files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				f(fn)
			}
		}
	}
}

// isFloat reports whether t's core type is a floating-point basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isPkgFunc reports whether call invokes the named function from the named
// package (e.g. math.Inf), resolving through the type info so aliases and
// renamed imports are handled.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}
