package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// NanguardConfig parameterizes the nanguard analyzer.
type NanguardConfig struct {
	// Pkgs are the packages (pkgMatch patterns) forming the public API
	// boundary.
	Pkgs []string
}

// nanDocPattern recognizes documentation that addresses non-finite values.
var nanDocPattern = regexp.MustCompile(`(?i)\bnan\b|\binf\b|infinit|non-finite|finite`)

// validatorName recognizes calls that constitute a finiteness check.
var validatorName = regexp.MustCompile(`IsNaN|IsInf|Finite|Validate`)

// Nanguard returns the analyzer enforcing the API-boundary guard from PR 2:
// every exported function (or method on an exported type) of the public
// package that returns float64 / []float64 / a float-vector type must either
// validate finiteness on its path (math.IsNaN / math.IsInf / an AllFinite- or
// Validate-style call) or explicitly document how NaN/Inf propagate. Analog
// hardware produces non-finite values under fault injection; a public
// accessor that silently forwards them turns a detectable hardware failure
// into a silent caller corruption.
func Nanguard(cfg NanguardConfig) *Analyzer {
	a := &Analyzer{
		Name: "nanguard",
		Doc:  "exported float-returning functions of the public package validate or document NaN/Inf propagation",
	}
	a.Run = func(pass *Pass) error {
		if !pkgMatch(pass.Pkg.Path(), cfg.Pkgs) {
			return nil
		}
		forEachFunc(pass.Files, func(fn *ast.FuncDecl) {
			if !fn.Name.IsExported() || !exportedReceiver(fn) {
				return
			}
			if !returnsFloat(pass, fn) {
				return
			}
			if docMentionsNonFinite(fn) || bodyValidates(fn) {
				return
			}
			pass.Reportf(fn.Name.Pos(),
				"exported %s returns floating-point data but neither validates nor documents NaN/Inf propagation",
				fn.Name.Name)
		})
		return nil
	}
	return a
}

// exportedReceiver reports whether fn is a plain function or a method on an
// exported receiver type.
func exportedReceiver(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

// returnsFloat reports whether any result of fn is float-typed or a slice /
// named vector of floats.
func returnsFloat(pass *Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil {
		return false
	}
	for _, field := range fn.Type.Results.List {
		t := pass.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if isFloat(t) {
			return true
		}
		if sl, ok := t.Underlying().(*types.Slice); ok && isFloat(sl.Elem()) {
			return true
		}
	}
	return false
}

// docMentionsNonFinite reports whether the doc comment addresses NaN/Inf.
func docMentionsNonFinite(fn *ast.FuncDecl) bool {
	return fn.Doc != nil && nanDocPattern.MatchString(fn.Doc.Text())
}

// bodyValidates reports whether the body calls a finiteness validator.
func bodyValidates(fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch f := call.Fun.(type) {
		case *ast.SelectorExpr:
			name = f.Sel.Name
		case *ast.Ident:
			name = f.Name
		}
		if validatorName.MatchString(name) || strings.HasPrefix(name, "Check") {
			found = true
			return false
		}
		return true
	})
	return found
}
