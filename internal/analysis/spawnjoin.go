package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpawnjoinConfig parameterizes the spawnjoin analyzer.
type SpawnjoinConfig struct {
	// Pkgs are the packages (pkgMatch patterns) whose goroutines must carry a
	// visible join or cancellation path: the engines, the batch pool, and the
	// serving layer (where a leaked goroutine is a leaked fabric replica).
	Pkgs []string
}

// Spawnjoin returns the analyzer enforcing the goroutine-lifecycle invariant
// of DESIGN.md D16: every `go` statement in the scoped production code must
// have a visible join or cancellation path, so a request that dies cannot
// strand a worker (the replica-leak class the serve tests otherwise catch
// only dynamically, by quiescing pools and counting handles). Evidence of a
// join/cancellation path, checked in the spawned function's body (the
// literal's body, or the declaration when the statement spawns a named
// same-package function):
//
//   - a sync.WaitGroup Done/Add call (the spawner Waits);
//   - a channel send or close (a consumer joins by receiving);
//   - a channel receive or a range over a channel (the spawner joins by
//     closing the feed);
//   - any use of a context.Context (cancellation propagates).
//
// A goroutine whose body is not visible — a cross-package function value —
// cannot be audited and is reported; make the lifecycle explicit at the
// spawn site or waiver it with a reason.
func Spawnjoin(cfg SpawnjoinConfig) *Analyzer {
	a := &Analyzer{
		Name: "spawnjoin",
		Doc:  "every goroutine in engine/serve code needs a visible join or cancellation path (WaitGroup, channel, or ctx)",
	}
	a.Run = func(pass *Pass) error {
		if !pkgMatch(pass.Pkg.Path(), cfg.Pkgs) {
			return nil
		}
		decls := packageFuncDecls(pass)
		forEachFunc(pass.Files, func(fn *ast.FuncDecl) {
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				body, visible := spawnedBody(pass, g.Call, decls)
				if !visible {
					pass.Reportf(g.Go,
						"goroutine body is not visible in this package: spawn a local function with an explicit join/cancellation path")
					return true
				}
				if !hasJoinPath(pass, body) {
					pass.Reportf(g.Go,
						"goroutine has no visible join or cancellation path: add a WaitGroup, done channel, or ctx")
				}
				return true
			})
		})
		return nil
	}
	return a
}

// packageFuncDecls indexes the package's function declarations by their
// defined object, so `go s.worker()` resolves to worker's body.
func packageFuncDecls(pass *Pass) map[types.Object]*ast.FuncDecl {
	decls := map[types.Object]*ast.FuncDecl{}
	forEachFunc(pass.Files, func(fn *ast.FuncDecl) {
		if obj := pass.Info.Defs[fn.Name]; obj != nil {
			decls[obj] = fn
		}
	})
	return decls
}

// spawnedBody resolves the body of the function a go statement spawns.
func spawnedBody(pass *Pass, call *ast.CallExpr, decls map[types.Object]*ast.FuncDecl) (*ast.BlockStmt, bool) {
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body, true
	case *ast.Ident:
		if fn, ok := decls[pass.Info.Uses[fun]]; ok {
			return fn.Body, true
		}
	case *ast.SelectorExpr:
		if fn, ok := decls[pass.Info.Uses[fun.Sel]]; ok {
			return fn.Body, true
		}
	}
	return nil, false
}

// hasJoinPath scans a goroutine body for join/cancellation evidence.
func hasJoinPath(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if isChanType(pass.TypeOf(n.X)) {
				found = true
			}
		case *ast.CallExpr:
			if isCloseBuiltin(pass, n) || isWaitGroupCall(pass, n) {
				found = true
			}
		case ast.Expr:
			if isContextType(pass.TypeOf(n)) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isCloseBuiltin reports whether call is the close builtin.
func isCloseBuiltin(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	obj, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin && obj.Name() == "close"
}

// isWaitGroupCall reports whether call invokes Done/Add/Wait on a
// sync.WaitGroup.
func isWaitGroupCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Done", "Add", "Wait":
	default:
		return false
	}
	t := pass.TypeOf(sel.X)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// isChanType reports whether t's core type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
