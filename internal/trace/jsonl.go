package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
)

// jsonFloat marshals float64 exactly: finite values use the shortest
// round-trip decimal representation, and the non-finite values that
// encoding/json rejects (NaN, ±Inf — e.g. the sentinel infeasibility fill
// on failed attempts) are quoted strings that strconv.ParseFloat accepts
// back. Golden-trace files depend on this being byte-deterministic.
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return strconv.AppendQuote(nil, strconv.FormatFloat(v, 'g', -1, 64)), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("trace: bad float %q: %w", s, err)
	}
	*f = jsonFloat(v)
	return nil
}

// jsonRecord mirrors Record with wire tags and non-finite-safe floats. The
// field order fixes the key order in golden files.
type jsonRecord struct {
	Engine    string `json:"engine,omitempty"`
	Problem   int    `json:"problem"`
	Attempt   int    `json:"attempt"`
	Iteration int    `json:"iteration"`
	Event     string `json:"event"`
	Status    string `json:"status,omitempty"`

	Mu                  jsonFloat `json:"mu"`
	DualityGap          jsonFloat `json:"gap"`
	PrimalInfeasibility jsonFloat `json:"pinf"`
	DualInfeasibility   jsonFloat `json:"dinf"`
	ConeInfeasibility   jsonFloat `json:"cone_inf,omitempty"`
	Theta               jsonFloat `json:"theta"`
	Objective           jsonFloat `json:"objective"`

	WriteRetries   int64     `json:"write_retries"`
	CellsWritten   int64     `json:"cells_written,omitempty"`
	CellsSkipped   int64     `json:"cells_skipped,omitempty"`
	TilesRefreshed int64     `json:"tiles_refreshed,omitempty"`
	NoiseEpoch     int64     `json:"noise_epoch"`
	EnergyJoules   jsonFloat `json:"energy_joules"`
}

func toJSON(r Record) jsonRecord {
	return jsonRecord{
		Engine:              r.Engine,
		Problem:             r.Problem,
		Attempt:             r.Attempt,
		Iteration:           r.Iteration,
		Event:               r.Event,
		Status:              r.Status,
		Mu:                  jsonFloat(r.Mu),
		DualityGap:          jsonFloat(r.DualityGap),
		PrimalInfeasibility: jsonFloat(r.PrimalInfeasibility),
		DualInfeasibility:   jsonFloat(r.DualInfeasibility),
		ConeInfeasibility:   jsonFloat(r.ConeInfeasibility),
		Theta:               jsonFloat(r.Theta),
		Objective:           jsonFloat(r.Objective),
		WriteRetries:        r.WriteRetries,
		CellsWritten:        r.CellsWritten,
		CellsSkipped:        r.CellsSkipped,
		TilesRefreshed:      r.TilesRefreshed,
		NoiseEpoch:          r.NoiseEpoch,
		EnergyJoules:        jsonFloat(r.EnergyJoules),
	}
}

func fromJSON(j jsonRecord) Record {
	return Record{
		Engine:              j.Engine,
		Problem:             j.Problem,
		Attempt:             j.Attempt,
		Iteration:           j.Iteration,
		Event:               j.Event,
		Status:              j.Status,
		Mu:                  float64(j.Mu),
		DualityGap:          float64(j.DualityGap),
		PrimalInfeasibility: float64(j.PrimalInfeasibility),
		DualInfeasibility:   float64(j.DualInfeasibility),
		ConeInfeasibility:   float64(j.ConeInfeasibility),
		Theta:               float64(j.Theta),
		Objective:           float64(j.Objective),
		WriteRetries:        j.WriteRetries,
		CellsWritten:        j.CellsWritten,
		CellsSkipped:        j.CellsSkipped,
		TilesRefreshed:      j.TilesRefreshed,
		NoiseEpoch:          j.NoiseEpoch,
		EnergyJoules:        float64(j.EnergyJoules),
	}
}

// Write streams recs as JSON Lines, one record per line.
func Write(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(toJSON(r)); err != nil {
			return err
		}
	}
	return nil
}

// Read parses a JSON Lines stream written by Write (blank lines are
// skipped, so hand-edited golden files stay valid).
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var j jsonRecord
		if err := json.Unmarshal([]byte(text), &j); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, fromJSON(j))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// JSONL is a streaming sink writing one JSON line per record. It is safe
// for concurrent use; the first write error is latched and reported by
// Err (later emits become no-ops so a full disk cannot wedge a solve).
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder //memlp:guardedby mu
	err error         //memlp:guardedby mu
}

// NewJSONL returns a sink streaming to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Emit implements Sink.
func (s *JSONL) Emit(rec Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(toJSON(rec))
}

// Err reports the first write error, if any.
func (s *JSONL) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
