package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func sampleRecord(i int) Record {
	return Record{
		Engine:              "crossbar",
		Problem:             i % 3,
		Attempt:             1,
		Iteration:           i + 1,
		Event:               EventIteration,
		Mu:                  1.0 / float64(i+1),
		DualityGap:          0.5 / float64(i+1),
		PrimalInfeasibility: 1e-3,
		DualInfeasibility:   2e-3,
		Theta:               0.2,
		Objective:           -3.25,
		WriteRetries:        int64(i),
		NoiseEpoch:          int64(i % 3),
		EnergyJoules:        1e-9 * float64(i+1),
	}
}

func TestRingSnapshotOrder(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		r.Emit(sampleRecord(i))
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}
	snap := r.Snapshot()
	for i, rec := range snap {
		if rec.Iteration != i+1 {
			t.Fatalf("snapshot[%d].Iteration = %d, want %d", i, rec.Iteration, i+1)
		}
	}
}

func TestRingWrapKeepsTail(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(sampleRecord(i))
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	snap := r.Snapshot()
	want := []int{7, 8, 9, 10}
	for i, rec := range snap {
		if rec.Iteration != want[i] {
			t.Fatalf("snapshot[%d].Iteration = %d, want %d", i, rec.Iteration, want[i])
		}
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 || r.Snapshot() != nil {
		t.Fatal("Reset did not clear the ring")
	}
}

func TestRingDefaultCapacity(t *testing.T) {
	r := NewRing(0)
	if got := len(r.buf); got != DefaultCapacity {
		t.Fatalf("capacity = %d, want %d", got, DefaultCapacity)
	}
}

func TestRingEmitAllocs(t *testing.T) {
	r := NewRing(16)
	rec := sampleRecord(0)
	allocs := testing.AllocsPerRun(100, func() {
		r.Emit(rec)
	})
	if allocs != 0 {
		t.Fatalf("Ring.Emit allocates %.1f objects per call, want 0", allocs)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	recs := []Record{sampleRecord(0), sampleRecord(1)}
	// Failed attempts carry non-finite sentinels that plain encoding/json
	// rejects; the codec must round-trip them exactly.
	recs[1].Mu = math.NaN()
	recs[1].PrimalInfeasibility = math.Inf(1)
	recs[1].DualInfeasibility = math.Inf(-1)
	recs[1].Event = EventDone
	recs[1].Status = "numerical-failure"

	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if d := Diff(got, recs, 0); len(d) != 0 {
		t.Fatalf("round trip not exact:\n%s", strings.Join(d, "\n"))
	}

	// Byte determinism: the same records always serialize identically.
	var buf2 bytes.Buffer
	if err := Write(&buf2, recs); err != nil {
		t.Fatalf("Write: %v", err)
	}
	var buf3 bytes.Buffer
	if err := Write(&buf3, got); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
		t.Fatal("serialization is not byte-deterministic across a round trip")
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []Record{sampleRecord(0)}); err != nil {
		t.Fatal(err)
	}
	in := "\n" + buf.String() + "\n\n"
	got, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d records, want 1", len(got))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json\n")); err == nil {
		t.Fatal("Read accepted malformed input")
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	s.Emit(sampleRecord(0))
	s.Emit(sampleRecord(1))
	if err := s.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2", len(got))
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errClosed }

var errClosed = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "closed" }

func TestJSONLSinkLatchesError(t *testing.T) {
	s := NewJSONL(failWriter{})
	s.Emit(sampleRecord(0))
	if s.Err() == nil {
		t.Fatal("write error not reported")
	}
	s.Emit(sampleRecord(1)) // must not panic or clear the error
	if s.Err() == nil {
		t.Fatal("latched error lost")
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewRing(4), NewRing(4)
	m := Multi{a, b}
	m.Emit(sampleRecord(0))
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out failed: %d, %d", a.Len(), b.Len())
	}
}

func doneRecord(engine, status string, iters int, gap float64) Record {
	return Record{
		Engine: engine, Event: EventDone, Status: status,
		Iteration: iters, DualityGap: gap,
		WriteRetries: 3, EnergyJoules: 2e-9, Attempt: 1,
	}
}

func TestMetricsProm(t *testing.T) {
	m := NewMetrics()
	m.Emit(sampleRecord(0)) // iteration: records only
	m.Emit(doneRecord("crossbar", "optimal", 12, 1e-8))
	m.Emit(doneRecord("crossbar", "optimal", 40, 1e-6))
	m.Emit(doneRecord("simplex", "optimal", 5, 0))
	m.Emit(Record{Event: EventResolve, Status: "numerical-failure"})
	m.Emit(Record{Event: EventSoftware})
	m.ObserveBatch([]int{3, 2}, []float64{0.5, 0.25})

	var buf bytes.Buffer
	if err := m.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"memlp_trace_records_total 6",
		`memlp_solves_total{engine="crossbar",status="optimal"} 2`,
		`memlp_solves_total{engine="simplex",status="optimal"} 1`,
		`memlp_iterations_total{engine="crossbar"} 52`,
		`memlp_write_retries_total{engine="crossbar"} 6`,
		`memlp_recovery_events_total{event="resolve"} 1`,
		`memlp_recovery_events_total{event="software"} 1`,
		`memlp_solve_iterations_bucket{engine="crossbar",le="20"} 1`,
		`memlp_solve_iterations_bucket{engine="crossbar",le="+Inf"} 2`,
		`memlp_solve_iterations_count{engine="crossbar"} 2`,
		"memlp_batches_total 1",
		`memlp_shard_solves_total{shard="0"} 3`,
		`memlp_shard_busy_seconds_total{shard="1"} 0.25`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}

	// Scrapes of unchanged state must be byte-identical (map iteration
	// order must not leak into the output).
	var buf2 bytes.Buffer
	if err := m.WriteProm(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("WriteProm output is not deterministic")
	}
}

func TestMetricsServeCounters(t *testing.T) {
	m := NewMetrics()
	m.ObserveServeRequest(200, 0.002)
	m.ObserveServeRequest(200, 0.3)
	m.ObserveServeRequest(429, 0.0001)
	m.ObserveServeBatch(4) // coalesced: 4 members
	m.ObserveServeBatch(1) // solo: batch counted, no coalesced members
	m.ObserveServeRejection()

	var buf bytes.Buffer
	if err := m.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`memlp_serve_requests_total{code="200"} 2`,
		`memlp_serve_requests_total{code="429"} 1`,
		`memlp_serve_latency_seconds_bucket{le="0.005"} 2`,
		`memlp_serve_latency_seconds_bucket{le="+Inf"} 3`,
		"memlp_serve_latency_seconds_count 3",
		"memlp_serve_batches_total 2",
		"memlp_serve_coalesced_requests_total 4",
		"memlp_serve_rejected_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}

	var parsed map[string]interface{}
	if err := json.Unmarshal([]byte(m.String()), &parsed); err != nil {
		t.Fatalf("String() is not valid JSON: %v", err)
	}
	if parsed["serve_batches"].(float64) != 2 {
		t.Fatalf("serve_batches = %v, want 2", parsed["serve_batches"])
	}
}

func TestMetricsString(t *testing.T) {
	m := NewMetrics()
	m.Emit(doneRecord("crossbar", "optimal", 12, 1e-8))
	var parsed map[string]interface{}
	if err := json.Unmarshal([]byte(m.String()), &parsed); err != nil {
		t.Fatalf("String() is not valid JSON: %v", err)
	}
	if parsed["records"].(float64) != 1 {
		t.Fatalf("records = %v, want 1", parsed["records"])
	}
}

func TestMetricsIgnoresNaNGap(t *testing.T) {
	m := NewMetrics()
	m.Emit(doneRecord("crossbar", "numerical-failure", 2, math.NaN()))
	var buf bytes.Buffer
	if err := m.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `memlp_final_gap_count{engine="crossbar"} 0`) {
		t.Fatalf("NaN gap should not be observed:\n%s", buf.String())
	}
}

func TestDiffEqualAndPerturbed(t *testing.T) {
	a := []Record{sampleRecord(0), sampleRecord(1)}
	b := []Record{sampleRecord(0), sampleRecord(1)}
	if d := Diff(a, b, 1e-9); len(d) != 0 {
		t.Fatalf("equal traces diff: %v", d)
	}

	b[1].Theta = 0.25
	d := Diff(a, b, 1e-9)
	if len(d) != 1 || !strings.Contains(d[0], "theta") {
		t.Fatalf("want one theta mismatch, got %v", d)
	}

	b[1].Theta = a[1].Theta
	b = b[:1]
	d = Diff(a, b, 1e-9)
	if len(d) == 0 || !strings.Contains(d[0], "length") {
		t.Fatalf("want length mismatch, got %v", d)
	}
}

func TestDiffToleranceModes(t *testing.T) {
	a := []Record{sampleRecord(0)}
	b := []Record{sampleRecord(0)}
	b[0].Mu = a[0].Mu * (1 + 1e-12)
	if d := Diff(a, b, 1e-9); len(d) != 0 {
		t.Fatalf("within tolerance but flagged: %v", d)
	}
	if d := Diff(a, b, 0); len(d) != 1 {
		t.Fatalf("exact mode should flag the ULP difference, got %v", d)
	}

	// NaN residuals on a pinned failed attempt must compare equal.
	a[0].Mu = math.NaN()
	b[0].Mu = math.NaN()
	if d := Diff(a, b, 0); len(d) != 0 {
		t.Fatalf("NaN vs NaN flagged: %v", d)
	}
}

func TestDiffCapsOutput(t *testing.T) {
	var a, b []Record
	for i := 0; i < 50; i++ {
		ra, rb := sampleRecord(i), sampleRecord(i)
		rb.Mu += 1
		a, b = append(a, ra), append(b, rb)
	}
	d := Diff(a, b, 1e-9)
	if len(d) != maxDiffLines+1 {
		t.Fatalf("got %d lines, want %d + summary", len(d), maxDiffLines)
	}
	if !strings.Contains(d[len(d)-1], "more mismatches") {
		t.Fatalf("missing summary line: %q", d[len(d)-1])
	}
}
