// Package trace records per-iteration solver telemetry.
//
// Every engine backend emits one Record per iteration (or simplex pivot)
// plus one terminal "done" record, carrying the convergence state the paper
// reasons about — µ, duality gap, primal/dual residual norms, the step
// length θ — together with the hardware-facing counters that only exist in
// this reproduction: write-verify retries, recovery-ladder events, the
// noise-epoch id that keys a problem's cycle-noise stream, and modeled
// energy.
//
// Records flow into a Sink. The in-memory Ring is the default and is safe
// to use on the annotated hot paths: emitting into a pre-sized ring copies
// a value struct and allocates nothing. JSONL and Metrics are the two
// exporting sinks (file stream and Prometheus-text/expvar exposition);
// they live behind the same interface so the solver core never touches
// file or socket I/O directly (enforced by memlpvet's tracesink check).
package trace

// Event values carried by Record.Event.
const (
	// EventIteration is one interior-point iteration (Algorithms 1 and 2).
	EventIteration = "iteration"
	// EventPivot is one simplex pivot.
	EventPivot = "pivot"
	// EventDone is the terminal record of a solve; its fields are the
	// final Result values.
	EventDone = "done"
	// EventResolve marks a recovery-ladder rung-1 re-solve (or an
	// Algorithm 2 double-check re-program); Status holds the status of
	// the attempt that triggered it.
	EventResolve = "resolve"
	// EventRemap marks a recovery-ladder rung-2 remap to a cleaner die
	// region.
	EventRemap = "remap"
	// EventSoftware marks the rung-3 software fallback.
	EventSoftware = "software"
	// EventTrial is one xbarsim substrate trial (no LP above it).
	EventTrial = "trial"
	// EventRestart marks a PDHG adaptive restart: the iterate is reset to
	// the running average and the ergodic sums are cleared. Iteration holds
	// the iteration the restart fired on.
	EventRestart = "restart"
)

// Record is one point of a solve trajectory. It is a plain value struct so
// emitting one copies it into the sink without heap allocation.
//
// Not every field is meaningful for every event: pivot records carry the
// tableau objective but no µ; substrate trials reuse the residual fields
// for mat-vec/solve errors. Fields that do not apply are zero.
type Record struct {
	// Engine is the emitting engine name ("crossbar", "simplex", ...).
	// Backends leave it empty; the engine adapter layer stamps it.
	Engine string
	// Problem is the batch problem index (0 for single solves).
	Problem int
	// Attempt counts solve attempts within one problem, starting at 1;
	// it increments on recovery-ladder re-solves and Algorithm 2
	// double-check re-programs.
	Attempt int
	// Iteration is the 1-based iteration (or pivot) number; on a done
	// record it is the final iteration count.
	Iteration int
	// Event classifies the record (EventIteration, EventDone, ...).
	Event string
	// Status is the solve status on done records, or the status of the
	// failed attempt on recovery-event records.
	Status string

	// Mu is the complementarity measure µ = xᵀz/n.
	Mu float64
	// DualityGap is |cᵀx − bᵀy| / (1 + |cᵀx|).
	DualityGap float64
	// PrimalInfeasibility is ‖Ax + w − b‖∞ scaled.
	PrimalInfeasibility float64
	// DualInfeasibility is ‖Aᵀy + z − c‖∞ scaled.
	DualInfeasibility float64
	// ConeInfeasibility is the largest second-order-cone violation
	// max(0, ‖s̄‖ − s₀) of the slack s = b − A·x over the problem's cone
	// blocks. Always 0 for pure LPs, so existing traces are unchanged.
	ConeInfeasibility float64
	// Theta is the damped step length taken this iteration.
	Theta float64
	// Objective is cᵀx (for simplex pivots, the tableau objective row).
	Objective float64

	// WriteRetries is the cumulative write-verify corrective-pulse count
	// for this problem so far.
	WriteRetries int64
	// CellsWritten is the cumulative device-programming operation count for
	// this problem so far (the analog write traffic the iteration actually
	// paid for).
	CellsWritten int64
	// CellsSkipped is the cumulative count of writes avoided by
	// delta-programming for this problem so far: refreshes whose target
	// moved on the write grid but stayed within the cell's delta level.
	// Zero when delta-programming is disabled.
	CellsSkipped int64
	// TilesRefreshed is the cumulative count of crossbar tiles
	// re-programmed by the PDHG engine's periodic conductance refresh for
	// this problem so far. Zero for single-fabric engines, so existing
	// traces are unchanged.
	TilesRefreshed int64
	// NoiseEpoch keys the problem's cycle-noise stream (the batch
	// problem index under the PR 4 determinism contract; 0 otherwise).
	NoiseEpoch int64
	// EnergyJoules is the cumulative modeled energy for this problem so
	// far (0 unless an energy model is configured).
	EnergyJoules float64
}

// Sink receives trace records. Implementations must be safe for use from
// the single goroutine that owns a solve; sinks shared across goroutines
// (Metrics, JSONL) do their own locking.
type Sink interface {
	Emit(Record)
}

// Multi fans every record out to each sink in order.
type Multi []Sink

// Emit implements Sink.
func (m Multi) Emit(rec Record) {
	for _, s := range m {
		s.Emit(rec)
	}
}

// DefaultCapacity bounds rings created with a non-positive capacity. It
// comfortably holds the longest trajectory the paper reports (tens of
// iterations) times the ladder's attempt budget.
const DefaultCapacity = 1024

// Ring is a bounded in-memory sink. When full it overwrites the oldest
// records, so the tail of a pathological run is always retained.
type Ring struct {
	buf     []Record
	next    int
	n       int
	dropped int64
}

// NewRing returns a ring holding up to capacity records
// (DefaultCapacity if capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Ring{buf: make([]Record, capacity)}
}

// Emit implements Sink. It copies rec into the pre-sized buffer.
//
//memlp:hotpath
func (r *Ring) Emit(rec Record) {
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	if r.n < len(r.buf) {
		r.n++
	} else {
		r.dropped++
	}
}

// Reset discards all buffered records, keeping the buffer.
//
//memlp:hotpath
func (r *Ring) Reset() {
	r.next = 0
	r.n = 0
	r.dropped = 0
}

// Len reports how many records are buffered.
func (r *Ring) Len() int { return r.n }

// Dropped reports how many records were overwritten since the last Reset.
func (r *Ring) Dropped() int64 { return r.dropped }

// Snapshot returns the buffered records oldest-first as a fresh slice.
func (r *Ring) Snapshot() []Record {
	if r.n == 0 {
		return nil
	}
	out := make([]Record, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(start+i)%len(r.buf)]
	}
	return out
}
