package trace

import (
	"fmt"
	"math"
	"strconv"

	"github.com/memlp/memlp/internal/linalg"
)

// maxDiffLines caps Diff output so a wholly-divergent trace still prints a
// readable report instead of thousands of lines.
const maxDiffLines = 20

// Diff compares two traces field by field and returns one human-readable
// line per mismatch (empty means equal). Float fields compare with
// linalg.EqTol at tol when tol > 0; tol <= 0 demands bit-exact equality
// (linalg.Identical) — the mode the width-determinism tests use. NaN is
// equal to NaN in both modes: a pinned failed attempt must keep matching
// its golden NaN residuals.
func Diff(got, want []Record, tol float64) []string {
	var out []string
	more := 0
	add := func(format string, args ...interface{}) {
		if len(out) < maxDiffLines {
			out = append(out, fmt.Sprintf(format, args...))
		} else {
			more++
		}
	}

	if len(got) != len(want) {
		add("trace length: got %d records, want %d", len(got), len(want))
	}
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		g, w := got[i], want[i]
		pre := fmt.Sprintf("trace[%d] (%s/%s)", i, w.Event, w.Engine)
		if g.Engine != w.Engine {
			add("%s engine: got %q want %q", pre, g.Engine, w.Engine)
		}
		if g.Problem != w.Problem {
			add("%s problem: got %d want %d", pre, g.Problem, w.Problem)
		}
		if g.Attempt != w.Attempt {
			add("%s attempt: got %d want %d", pre, g.Attempt, w.Attempt)
		}
		if g.Iteration != w.Iteration {
			add("%s iteration: got %d want %d", pre, g.Iteration, w.Iteration)
		}
		if g.Event != w.Event {
			add("%s event: got %q want %q", pre, g.Event, w.Event)
		}
		if g.Status != w.Status {
			add("%s status: got %q want %q", pre, g.Status, w.Status)
		}
		diffFloat(add, pre, "mu", g.Mu, w.Mu, tol)
		diffFloat(add, pre, "gap", g.DualityGap, w.DualityGap, tol)
		diffFloat(add, pre, "pinf", g.PrimalInfeasibility, w.PrimalInfeasibility, tol)
		diffFloat(add, pre, "dinf", g.DualInfeasibility, w.DualInfeasibility, tol)
		diffFloat(add, pre, "cone_inf", g.ConeInfeasibility, w.ConeInfeasibility, tol)
		diffFloat(add, pre, "theta", g.Theta, w.Theta, tol)
		diffFloat(add, pre, "objective", g.Objective, w.Objective, tol)
		if g.WriteRetries != w.WriteRetries {
			add("%s write_retries: got %d want %d", pre, g.WriteRetries, w.WriteRetries)
		}
		if g.TilesRefreshed != w.TilesRefreshed {
			add("%s tiles_refreshed: got %d want %d", pre, g.TilesRefreshed, w.TilesRefreshed)
		}
		if g.NoiseEpoch != w.NoiseEpoch {
			add("%s noise_epoch: got %d want %d", pre, g.NoiseEpoch, w.NoiseEpoch)
		}
		diffFloat(add, pre, "energy_joules", g.EnergyJoules, w.EnergyJoules, tol)
	}
	if more > 0 {
		out = append(out, fmt.Sprintf("... and %d more mismatches", more))
	}
	return out
}

func diffFloat(add func(string, ...interface{}), pre, field string, got, want, tol float64) {
	if math.IsNaN(got) && math.IsNaN(want) {
		return
	}
	if tol > 0 {
		if linalg.EqTol(got, want, tol) {
			return
		}
	} else if linalg.Identical(got, want) {
		return
	}
	add("%s %s: got %s want %s", pre, field,
		strconv.FormatFloat(got, 'g', -1, 64), strconv.FormatFloat(want, 'g', -1, 64))
}
