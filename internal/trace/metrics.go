package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
)

// Histogram bucket bounds. Iteration buckets cover the O(√N) range the
// paper reports; gap buckets are log-spaced around the optimality
// tolerances; latency buckets cover the memlpd serving range from
// sub-millisecond cache-warm solves to multi-second cold batches.
var (
	iterBuckets    = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500}
	gapBuckets     = []float64{1e-9, 1e-7, 1e-5, 1e-3, 1e-1, 10}
	latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}
)

// hist is a fixed-bucket cumulative histogram.
type hist struct {
	bounds []float64
	counts []int64
	sum    float64
	n      int64
}

func newHist(bounds []float64) *hist {
	return &hist{bounds: bounds, counts: make([]int64, len(bounds))}
}

func (h *hist) observe(v float64) {
	if math.IsNaN(v) { // failed attempts fill residuals with NaN
		return
	}
	h.sum += v
	h.n++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
		}
	}
}

// Metrics aggregates trace records into Prometheus-style counters and
// histograms, labeled by engine, status, recovery event and batch-pool
// shard. It is safe for concurrent use, implements Sink, and its String
// method satisfies expvar.Var so one instance serves both exposition
// styles.
type Metrics struct {
	mu           sync.Mutex
	records      int64              //memlp:guardedby mu
	solves       map[string]int64   //memlp:guardedby mu — "engine|status"
	iterations   map[string]int64   //memlp:guardedby mu — engine
	retries      map[string]int64   //memlp:guardedby mu — engine
	cellsWritten map[string]int64   //memlp:guardedby mu — engine
	cellsSkipped map[string]int64   //memlp:guardedby mu — engine
	energy       map[string]float64 //memlp:guardedby mu
	events       map[string]int64   //memlp:guardedby mu — recovery event name
	iterHist     map[string]*hist   //memlp:guardedby mu — engine
	gapHist      map[string]*hist   //memlp:guardedby mu — engine
	batches      int64              //memlp:guardedby mu
	shardSolves  map[int]int64      //memlp:guardedby mu
	shardBusy    map[int]float64    //memlp:guardedby mu — seconds

	// Serving counters (cmd/memlpd): per-status-code request counts, request
	// latency, the coalescer's batch/hit split, and admission rejections.
	serveReqs      map[string]int64 //memlp:guardedby mu — HTTP status code, as a string label
	serveLatency   *hist            //memlp:guardedby mu — seconds
	serveBatches   int64            //memlp:guardedby mu — SolveBatch launches by the coalescer
	serveCoalesced int64            //memlp:guardedby mu — requests that shared a batch with >= 1 other
	serveRejected  int64            //memlp:guardedby mu — requests refused by admission control (429)
	serveWarm      int64            //memlp:guardedby mu — solo solves seeded from the warm-start cache
}

// NewMetrics returns an empty aggregator.
func NewMetrics() *Metrics {
	return &Metrics{
		solves:       make(map[string]int64),
		iterations:   make(map[string]int64),
		retries:      make(map[string]int64),
		cellsWritten: make(map[string]int64),
		cellsSkipped: make(map[string]int64),
		energy:       make(map[string]float64),
		events:       make(map[string]int64),
		iterHist:     make(map[string]*hist),
		gapHist:      make(map[string]*hist),
		shardSolves:  make(map[int]int64),
		shardBusy:    make(map[int]float64),
		serveReqs:    make(map[string]int64),
	}
}

// Emit implements Sink. Per-iteration records bump the record counter
// only; done records fold the whole solve into the engine-labeled
// counters and histograms; recovery events count by rung.
func (m *Metrics) Emit(rec Record) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.records++
	engine := rec.Engine
	if engine == "" {
		engine = "unknown"
	}
	switch rec.Event {
	case EventDone, EventTrial:
		m.solves[engine+"|"+rec.Status]++
		m.iterations[engine] += int64(rec.Iteration)
		m.retries[engine] += rec.WriteRetries
		m.cellsWritten[engine] += rec.CellsWritten
		m.cellsSkipped[engine] += rec.CellsSkipped
		m.energy[engine] += rec.EnergyJoules
		ih := m.iterHist[engine]
		if ih == nil {
			ih = newHist(iterBuckets)
			m.iterHist[engine] = ih
		}
		ih.observe(float64(rec.Iteration))
		gh := m.gapHist[engine]
		if gh == nil {
			gh = newHist(gapBuckets)
			m.gapHist[engine] = gh
		}
		gh.observe(rec.DualityGap)
	case EventResolve, EventRemap, EventSoftware:
		m.events[rec.Event]++
	}
}

// ObserveBatch folds one batch-pool roll-up into the per-shard counters:
// solves per shard and busy wall time per shard, in seconds.
func (m *Metrics) ObserveBatch(shardSolves []int, shardBusySeconds []float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batches++
	for i, n := range shardSolves {
		m.shardSolves[i] += int64(n)
	}
	for i, s := range shardBusySeconds {
		m.shardBusy[i] += s
	}
}

// ObserveServeRequest counts one served solver request: the HTTP status code
// it answered with and its end-to-end latency (admission to response) in
// seconds.
func (m *Metrics) ObserveServeRequest(code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.serveReqs[strconv.Itoa(code)]++
	if m.serveLatency == nil {
		m.serveLatency = newHist(latencyBuckets)
	}
	m.serveLatency.observe(seconds)
}

// ObserveServeBatch counts one coalescer SolveBatch launch of the given
// size. Sizes above one additionally count every member as a coalesced
// request — the numerator of the hit rate whose denominator is
// memlp_serve_requests_total.
func (m *Metrics) ObserveServeBatch(size int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.serveBatches++
	if size > 1 {
		m.serveCoalesced += int64(size)
	}
}

// ObserveServeRejection counts one request refused by admission control.
func (m *Metrics) ObserveServeRejection() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.serveRejected++
}

// ObserveServeWarmStart counts one solo solve seeded from the server's
// fingerprint-keyed warm-start cache.
func (m *Metrics) ObserveServeWarmStart() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.serveWarm++
}

// WriteProm writes the Prometheus text exposition format. Output is fully
// sorted so repeated scrapes of the same state are byte-identical.
func (m *Metrics) WriteProm(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()

	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p("# HELP memlp_trace_records_total Trace records received by this sink.\n")
	p("# TYPE memlp_trace_records_total counter\n")
	p("memlp_trace_records_total %d\n", m.records)

	p("# HELP memlp_solves_total Completed solves by engine and final status.\n")
	p("# TYPE memlp_solves_total counter\n")
	for _, k := range sortedKeys(m.solves) {
		engine, status := splitKey(k)
		p("memlp_solves_total{engine=%q,status=%q} %d\n", engine, status, m.solves[k])
	}

	p("# HELP memlp_iterations_total Interior-point iterations (or simplex pivots) by engine.\n")
	p("# TYPE memlp_iterations_total counter\n")
	for _, k := range sortedKeys(m.iterations) {
		p("memlp_iterations_total{engine=%q} %d\n", k, m.iterations[k])
	}

	p("# HELP memlp_write_retries_total Write-verify corrective pulses by engine.\n")
	p("# TYPE memlp_write_retries_total counter\n")
	for _, k := range sortedKeys(m.retries) {
		p("memlp_write_retries_total{engine=%q} %d\n", k, m.retries[k])
	}

	p("# HELP memlp_cells_written_total Crossbar device programming operations by engine.\n")
	p("# TYPE memlp_cells_written_total counter\n")
	for _, k := range sortedKeys(m.cellsWritten) {
		p("memlp_cells_written_total{engine=%q} %d\n", k, m.cellsWritten[k])
	}

	p("# HELP memlp_cells_skipped_total Cell writes avoided by delta-programming by engine.\n")
	p("# TYPE memlp_cells_skipped_total counter\n")
	for _, k := range sortedKeys(m.cellsSkipped) {
		p("memlp_cells_skipped_total{engine=%q} %d\n", k, m.cellsSkipped[k])
	}

	p("# HELP memlp_energy_joules_total Modeled crossbar energy by engine.\n")
	p("# TYPE memlp_energy_joules_total counter\n")
	for _, k := range sortedKeys(m.energy) {
		p("memlp_energy_joules_total{engine=%q} %s\n", k, formatProm(m.energy[k]))
	}

	p("# HELP memlp_recovery_events_total Recovery-ladder escalations by rung event.\n")
	p("# TYPE memlp_recovery_events_total counter\n")
	for _, k := range sortedKeys(m.events) {
		p("memlp_recovery_events_total{event=%q} %d\n", k, m.events[k])
	}

	p("# HELP memlp_solve_iterations Iterations to termination by engine.\n")
	p("# TYPE memlp_solve_iterations histogram\n")
	for _, k := range sortedHistKeys(m.iterHist) {
		writeHist(p, "memlp_solve_iterations", k, m.iterHist[k])
	}

	p("# HELP memlp_final_gap Final duality gap by engine.\n")
	p("# TYPE memlp_final_gap histogram\n")
	for _, k := range sortedHistKeys(m.gapHist) {
		writeHist(p, "memlp_final_gap", k, m.gapHist[k])
	}

	p("# HELP memlp_batches_total Batch solves observed.\n")
	p("# TYPE memlp_batches_total counter\n")
	p("memlp_batches_total %d\n", m.batches)

	p("# HELP memlp_shard_solves_total Problems solved per fabric-pool shard.\n")
	p("# TYPE memlp_shard_solves_total counter\n")
	for _, k := range sortedIntKeys(m.shardSolves) {
		p("memlp_shard_solves_total{shard=\"%d\"} %d\n", k, m.shardSolves[k])
	}

	p("# HELP memlp_shard_busy_seconds_total Busy wall time per fabric-pool shard.\n")
	p("# TYPE memlp_shard_busy_seconds_total counter\n")
	for _, k := range sortedIntKeys(m.shardBusy) {
		p("memlp_shard_busy_seconds_total{shard=\"%d\"} %s\n", k, formatProm(m.shardBusy[k]))
	}

	p("# HELP memlp_serve_requests_total Solver requests served by HTTP status code.\n")
	p("# TYPE memlp_serve_requests_total counter\n")
	for _, k := range sortedKeys(m.serveReqs) {
		p("memlp_serve_requests_total{code=%q} %d\n", k, m.serveReqs[k])
	}

	p("# HELP memlp_serve_latency_seconds Request latency, admission to response.\n")
	p("# TYPE memlp_serve_latency_seconds histogram\n")
	if h := m.serveLatency; h != nil {
		for i, b := range h.bounds {
			p("memlp_serve_latency_seconds_bucket{le=%q} %d\n", formatProm(b), h.counts[i])
		}
		p("memlp_serve_latency_seconds_bucket{le=\"+Inf\"} %d\n", h.n)
		p("memlp_serve_latency_seconds_sum %s\n", formatProm(h.sum))
		p("memlp_serve_latency_seconds_count %d\n", h.n)
	}

	p("# HELP memlp_serve_batches_total Coalescer SolveBatch launches.\n")
	p("# TYPE memlp_serve_batches_total counter\n")
	p("memlp_serve_batches_total %d\n", m.serveBatches)

	p("# HELP memlp_serve_coalesced_requests_total Requests folded into a shared-matrix batch with at least one other request.\n")
	p("# TYPE memlp_serve_coalesced_requests_total counter\n")
	p("memlp_serve_coalesced_requests_total %d\n", m.serveCoalesced)

	p("# HELP memlp_serve_rejected_total Requests refused by admission control (HTTP 429).\n")
	p("# TYPE memlp_serve_rejected_total counter\n")
	p("memlp_serve_rejected_total %d\n", m.serveRejected)

	p("# HELP memlp_serve_warm_starts_total Solo solves seeded from the warm-start cache.\n")
	p("# TYPE memlp_serve_warm_starts_total counter\n")
	p("memlp_serve_warm_starts_total %d\n", m.serveWarm)
	return err
}

func writeHist(p func(string, ...interface{}), name, engine string, h *hist) {
	for i, b := range h.bounds {
		p("%s_bucket{engine=%q,le=%q} %d\n", name, engine, formatProm(b), h.counts[i])
	}
	p("%s_bucket{engine=%q,le=\"+Inf\"} %d\n", name, engine, h.n)
	p("%s_sum{engine=%q} %s\n", name, engine, formatProm(h.sum))
	p("%s_count{engine=%q} %d\n", name, engine, h.n)
}

func formatProm(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedHistKeys(m map[string]*hist) []string { return sortedKeys(m) }

func sortedIntKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func splitKey(k string) (string, string) {
	for i := 0; i < len(k); i++ {
		if k[i] == '|' {
			return k[:i], k[i+1:]
		}
	}
	return k, ""
}

// String renders a compact JSON summary; it satisfies expvar.Var so a
// Metrics can be published directly with expvar.Publish.
func (m *Metrics) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	summary := struct {
		Records    int64              `json:"records"`
		Solves     map[string]int64   `json:"solves"`
		Iterations map[string]int64   `json:"iterations"`
		Retries    map[string]int64   `json:"write_retries"`
		Written    map[string]int64   `json:"cells_written"`
		Skipped    map[string]int64   `json:"cells_skipped"`
		Energy     map[string]float64 `json:"energy_joules"`
		Events     map[string]int64   `json:"recovery_events"`
		Batches    int64              `json:"batches"`
		ServeReqs  map[string]int64   `json:"serve_requests,omitempty"`
		ServeBatch int64              `json:"serve_batches,omitempty"`
		ServeCoal  int64              `json:"serve_coalesced,omitempty"`
		ServeRej   int64              `json:"serve_rejected,omitempty"`
		ServeWarm  int64              `json:"serve_warm_starts,omitempty"`
	}{m.records, m.solves, m.iterations, m.retries, m.cellsWritten, m.cellsSkipped,
		m.energy, m.events, m.batches,
		m.serveReqs, m.serveBatches, m.serveCoalesced, m.serveRejected, m.serveWarm}
	b, err := json.Marshal(summary)
	if err != nil {
		return "{}"
	}
	return string(b)
}
