package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero matrix with the given shape.
// It panics if rows or cols is negative; a zero dimension is allowed.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from row slices. All rows must have equal
// length. The data is copied.
func MatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrDimensionMismatch, i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diagonal returns a square matrix with d on the diagonal.
func Diagonal(d Vector) *Matrix {
	m := NewMatrix(len(d), len(d))
	for i, x := range d {
		m.Set(i, i, x)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, x float64) { m.data[i*m.cols+j] = x }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) Vector {
	out := make(Vector, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) Vector {
	out := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// RawRow returns row i as a live sub-slice (no copy). Mutating the returned
// slice mutates the matrix.
func (m *Matrix) RawRow(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Zero resets every element to 0 without reallocating.
func (m *Matrix) Zero() {
	clear(m.data)
}

// CopyFrom overwrites m with the contents of src, which must have the same
// shape. It allocates nothing.
func (m *Matrix) CopyFrom(src *Matrix) error {
	if m.rows != src.rows || m.cols != src.cols {
		return fmt.Errorf("%w: copy %dx%d into %dx%d", ErrDimensionMismatch, src.rows, src.cols, m.rows, m.cols)
	}
	copy(m.data, src.data)
	return nil
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// MatVec returns m·v.
func (m *Matrix) MatVec(v Vector) (Vector, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("%w: matvec %dx%d · %d", ErrDimensionMismatch, m.rows, m.cols, len(v))
	}
	out := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// MatVecInto computes m·v into out, which must have length m.Rows(). It
// allocates nothing.
func (m *Matrix) MatVecInto(out, v Vector) error {
	if m.cols != len(v) || m.rows != len(out) {
		return fmt.Errorf("%w: matvec %dx%d · %d into %d", ErrDimensionMismatch, m.rows, m.cols, len(v), len(out))
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return nil
}

// MatVecTranspose returns mᵀ·v without materializing the transpose.
func (m *Matrix) MatVecTranspose(v Vector) (Vector, error) {
	if m.rows != len(v) {
		return nil, fmt.Errorf("%w: matvecT %dx%d ᵀ· %d", ErrDimensionMismatch, m.rows, m.cols, len(v))
	}
	out := make(Vector, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		vi := v[i]
		if vi == 0 {
			continue
		}
		for j, a := range row {
			out[j] += a * vi
		}
	}
	return out, nil
}

// MatVecTransposeInto computes mᵀ·v into out (length m.Cols()) without
// materializing the transpose. It allocates nothing.
func (m *Matrix) MatVecTransposeInto(out, v Vector) error {
	if m.rows != len(v) || m.cols != len(out) {
		return fmt.Errorf("%w: matvecT %dx%d ᵀ· %d into %d", ErrDimensionMismatch, m.rows, m.cols, len(v), len(out))
	}
	clear(out)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		vi := v[i]
		if vi == 0 {
			continue
		}
		for j, a := range row {
			out[j] += a * vi
		}
	}
	return nil
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("%w: mul %dx%d · %dx%d", ErrDimensionMismatch, m.rows, m.cols, b.rows, b.cols)
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			orow := out.data[i*out.cols : (i+1)*out.cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out, nil
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("%w: add %dx%d + %dx%d", ErrDimensionMismatch, m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out, nil
}

// Sub returns m - b.
func (m *Matrix) Sub(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("%w: sub %dx%d - %dx%d", ErrDimensionMismatch, m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out, nil
}

// Scale returns alpha*m.
func (m *Matrix) Scale(alpha float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= alpha
	}
	return out
}

// Hadamard returns the element-wise product m ∘ b.
func (m *Matrix) Hadamard(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("%w: hadamard %dx%d vs %dx%d", ErrDimensionMismatch, m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= b.data[i]
	}
	return out, nil
}

// SetSubmatrix copies src into m with its top-left corner at (row, col).
func (m *Matrix) SetSubmatrix(row, col int, src *Matrix) error {
	if row < 0 || col < 0 || row+src.rows > m.rows || col+src.cols > m.cols {
		return fmt.Errorf("%w: submatrix %dx%d at (%d,%d) into %dx%d",
			ErrDimensionMismatch, src.rows, src.cols, row, col, m.rows, m.cols)
	}
	for i := 0; i < src.rows; i++ {
		copy(m.data[(row+i)*m.cols+col:(row+i)*m.cols+col+src.cols],
			src.data[i*src.cols:(i+1)*src.cols])
	}
	return nil
}

// Submatrix returns a copy of the block of shape rows×cols whose top-left
// corner is at (row, col).
func (m *Matrix) Submatrix(row, col, rows, cols int) (*Matrix, error) {
	if row < 0 || col < 0 || rows < 0 || cols < 0 || row+rows > m.rows || col+cols > m.cols {
		return nil, fmt.Errorf("%w: take %dx%d at (%d,%d) from %dx%d",
			ErrDimensionMismatch, rows, cols, row, col, m.rows, m.cols)
	}
	out := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		copy(out.data[i*cols:(i+1)*cols], m.data[(row+i)*m.cols+col:(row+i)*m.cols+col+cols])
	}
	return out, nil
}

// MaxAbs returns the largest absolute element, or 0 for an empty matrix.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, x := range m.data {
		if a := math.Abs(x); a > mx {
			mx = a
		}
	}
	return mx
}

// MinElement returns the smallest element, or +Inf for an empty matrix.
func (m *Matrix) MinElement() float64 {
	mn := math.Inf(1)
	for _, x := range m.data {
		if x < mn {
			mn = x
		}
	}
	return mn
}

// AllNonNegative reports whether every element is ≥ 0.
func (m *Matrix) AllNonNegative() bool {
	for _, x := range m.data {
		if x < 0 {
			return false
		}
	}
	return true
}

// AllFinite reports whether every element is finite.
func (m *Matrix) AllFinite() bool {
	for _, x := range m.data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// RowSum returns the sum of row i.
func (m *Matrix) RowSum(i int) float64 {
	var s float64
	for _, x := range m.data[i*m.cols : (i+1)*m.cols] {
		s += x
	}
	return s
}

// NormInf returns the maximum absolute row sum (the induced ∞-norm).
func (m *Matrix) NormInf() float64 {
	var mx float64
	for i := 0; i < m.rows; i++ {
		var s float64
		for _, x := range m.data[i*m.cols : (i+1)*m.cols] {
			s += math.Abs(x)
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

// Equal reports whether m and b have the same shape and all elements within
// tol of each other.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging; large matrices are abbreviated.
func (m *Matrix) String() string {
	const maxShow = 8
	s := fmt.Sprintf("Matrix(%dx%d)[", m.rows, m.cols)
	for i := 0; i < m.rows && i < maxShow; i++ {
		s += "\n  "
		for j := 0; j < m.cols && j < maxShow; j++ {
			s += fmt.Sprintf("%10.4g ", m.At(i, j))
		}
		if m.cols > maxShow {
			s += "..."
		}
	}
	if m.rows > maxShow {
		s += "\n  ..."
	}
	return s + "\n]"
}
