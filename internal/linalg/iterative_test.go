package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// diagonallyDominant builds a random strictly diagonally dominant matrix, for
// which both Jacobi and Gauss–Seidel are guaranteed to converge.
func diagonallyDominant(r *rand.Rand, n int) *Matrix {
	m := randomMatrix(r, n, n)
	for i := 0; i < n; i++ {
		var rowAbs float64
		for j := 0; j < n; j++ {
			if j != i {
				rowAbs += math.Abs(m.At(i, j))
			}
		}
		m.Set(i, i, rowAbs+1+r.Float64()*5)
	}
	return m
}

func TestGaussSeidelMatchesLU(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		n := 4 + trial*3
		a := diagonallyDominant(r, n)
		b := randomVec(r, n)
		want, err := SolveDense(a, b)
		if err != nil {
			t.Fatalf("LU: %v", err)
		}
		res, err := GaussSeidel(a, b, IterativeOptions{})
		if err != nil {
			t.Fatalf("GaussSeidel: %v", err)
		}
		for i := range want {
			if math.Abs(res.X[i]-want[i]) > 1e-7 {
				t.Errorf("n=%d x[%d] = %v, want %v", n, i, res.X[i], want[i])
			}
		}
	}
}

func TestJacobiMatchesLU(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	a := diagonallyDominant(r, 8)
	b := randomVec(r, 8)
	want, err := SolveDense(a, b)
	if err != nil {
		t.Fatalf("LU: %v", err)
	}
	res, err := Jacobi(a, b, IterativeOptions{})
	if err != nil {
		t.Fatalf("Jacobi: %v", err)
	}
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-7 {
			t.Errorf("x[%d] = %v, want %v", i, res.X[i], want[i])
		}
	}
}

func TestGaussSeidelFasterThanJacobi(t *testing.T) {
	// Classic result: GS converges in fewer sweeps than Jacobi on
	// diagonally dominant systems.
	r := rand.New(rand.NewSource(23))
	a := diagonallyDominant(r, 12)
	b := randomVec(r, 12)
	gs, err := GaussSeidel(a, b, IterativeOptions{})
	if err != nil {
		t.Fatalf("GaussSeidel: %v", err)
	}
	jac, err := Jacobi(a, b, IterativeOptions{})
	if err != nil {
		t.Fatalf("Jacobi: %v", err)
	}
	if gs.Iterations > jac.Iterations {
		t.Errorf("GS took %d sweeps, Jacobi %d; expected GS ≤ Jacobi", gs.Iterations, jac.Iterations)
	}
}

func TestIterativeZeroDiagonal(t *testing.T) {
	a := mustMatrix(t, [][]float64{{0, 1}, {1, 0}})
	if _, err := GaussSeidel(a, VectorOf(1, 1), IterativeOptions{}); !errors.Is(err, ErrSingular) {
		t.Errorf("GS zero diag: got %v, want ErrSingular", err)
	}
	if _, err := Jacobi(a, VectorOf(1, 1), IterativeOptions{}); !errors.Is(err, ErrSingular) {
		t.Errorf("Jacobi zero diag: got %v, want ErrSingular", err)
	}
}

func TestIterativeNonSquare(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := GaussSeidel(a, VectorOf(1, 1), IterativeOptions{}); !errors.Is(err, ErrNotSquare) {
		t.Errorf("got %v, want ErrNotSquare", err)
	}
	if _, err := Jacobi(a, VectorOf(1, 1), IterativeOptions{}); !errors.Is(err, ErrNotSquare) {
		t.Errorf("got %v, want ErrNotSquare", err)
	}
}

func TestIterativeDivergenceDetected(t *testing.T) {
	// Strongly non-dominant system makes Jacobi diverge; the solver must
	// report ErrNoConvergence instead of returning NaNs.
	a := mustMatrix(t, [][]float64{
		{1, 10},
		{10, 1},
	})
	_, err := Jacobi(a, VectorOf(1, 1), IterativeOptions{MaxIterations: 500})
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("got %v, want ErrNoConvergence", err)
	}
}

func TestIterativeBudgetExhausted(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := diagonallyDominant(r, 10)
	b := randomVec(r, 10)
	_, err := GaussSeidel(a, b, IterativeOptions{MaxIterations: 1, Tolerance: 1e-15})
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("got %v, want ErrNoConvergence after 1 sweep", err)
	}
}

func TestIterativeInitialGuess(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	a := diagonallyDominant(r, 8)
	b := randomVec(r, 8)
	exact, err := SolveDense(a, b)
	if err != nil {
		t.Fatalf("LU: %v", err)
	}
	// Starting at the exact solution should converge in one sweep.
	res, err := GaussSeidel(a, b, IterativeOptions{InitialGuess: exact})
	if err != nil {
		t.Fatalf("GaussSeidel: %v", err)
	}
	if res.Iterations > 2 {
		t.Errorf("warm start took %d sweeps, want ≤2", res.Iterations)
	}
	// Wrong-size guess is rejected.
	if _, err := GaussSeidel(a, b, IterativeOptions{InitialGuess: VectorOf(1)}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("bad guess: got %v, want ErrDimensionMismatch", err)
	}
}

func TestResidualHelper(t *testing.T) {
	a := Identity(3)
	res, err := Residual(a, VectorOf(1, 2, 3), VectorOf(1, 2, 4))
	if err != nil {
		t.Fatalf("Residual: %v", err)
	}
	if res.NormInf() != 1 {
		t.Errorf("residual = %v, want ∞-norm 1", res)
	}
}
