package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a matrix is exactly or numerically singular.
var ErrSingular = errors.New("linalg: matrix is singular")

// ErrNotSquare is returned when a square matrix is required.
var ErrNotSquare = errors.New("linalg: matrix is not square")

// LU holds an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	lu    *Matrix // packed L (unit lower, below diag) and U (on/above diag)
	pivot []int   // row permutation
	sign  float64 // determinant sign from row swaps
}

// Factorize computes the LU factorization of a square matrix with partial
// pivoting. It returns ErrSingular if a pivot underflows.
func Factorize(a *Matrix) (*LU, error) {
	return FactorizeInto(nil, a)
}

// FactorizeInto is Factorize with storage reuse: when f already holds a
// factorization of the same dimension, its packed matrix and pivot buffers
// are overwritten instead of reallocated. Passing nil f (or one of a
// different dimension) allocates fresh storage. The returned *LU is f when
// reuse succeeded; callers should always keep the returned value.
func FactorizeInto(f *LU, a *Matrix) (*LU, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("%w: %dx%d", ErrNotSquare, a.Rows(), a.Cols())
	}
	n := a.Rows()
	var lu *Matrix
	var pivot []int
	if f != nil && f.lu != nil && f.lu.Rows() == n && f.lu.Cols() == n {
		lu = f.lu
		copy(lu.data, a.data)
		pivot = f.pivot
	} else {
		lu = a.Clone()
		pivot = make([]int, n)
		f = &LU{}
	}
	sign, err := factorizeCore(lu, pivot)
	if err != nil {
		return nil, err
	}
	f.lu, f.pivot, f.sign = lu, pivot, sign
	return f, nil
}

// factorizeCore runs the in-place LU factorization with partial pivoting on
// lu, recording the row permutation in pivot.
func factorizeCore(lu *Matrix, pivot []int) (float64, error) {
	n := lu.Rows()
	sign := 1.0

	for k := 0; k < n; k++ {
		// Find pivot row.
		p := k
		maxAbs := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > maxAbs {
				maxAbs = a
				p = i
			}
		}
		pivot[k] = p
		if maxAbs == 0 {
			return 0, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if p != k {
			rk := lu.RawRow(k)
			rp := lu.RawRow(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			sign = -sign
		}
		pv := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pv
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri := lu.RawRow(i)
			rk := lu.RawRow(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return sign, nil
}

// Solve solves A·x = b using the factorization.
func (f *LU) Solve(b Vector) (Vector, error) {
	n := f.lu.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("%w: solve %d unknowns, rhs %d", ErrDimensionMismatch, n, len(b))
	}
	x := b.Clone()
	if err := f.SolveInPlace(x); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInPlace solves A·x = b using the factorization, overwriting b with
// the solution. It allocates nothing.
func (f *LU) SolveInPlace(x Vector) error {
	n := f.lu.Rows()
	if len(x) != n {
		return fmt.Errorf("%w: solve %d unknowns, rhs %d", ErrDimensionMismatch, n, len(x))
	}
	// The factorization swaps full rows (LAPACK convention), so the whole
	// permutation is applied to the right-hand side up front, followed by
	// clean triangular solves.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward-substitute unit-diagonal L.
	for k := 0; k < n; k++ {
		xk := x[k]
		if xk == 0 {
			continue
		}
		for i := k + 1; i < n; i++ {
			x[i] -= f.lu.At(i, k) * xk
		}
	}
	// Back-substitute U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		ri := f.lu.RawRow(i)
		for j := i + 1; j < n; j++ {
			s -= ri[j] * x[j]
		}
		d := ri[i]
		if d == 0 {
			return fmt.Errorf("%w: zero diagonal in U at %d", ErrSingular, i)
		}
		x[i] = s / d
	}
	return nil
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	d := f.sign
	n := f.lu.Rows()
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveDense factorizes a and solves a·x = b in one call.
func SolveDense(a *Matrix, b Vector) (Vector, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Det computes the determinant of a square matrix via LU. A singular matrix
// yields 0 rather than an error.
func Det(a *Matrix) (float64, error) {
	if a.Rows() != a.Cols() {
		return 0, fmt.Errorf("%w: %dx%d", ErrNotSquare, a.Rows(), a.Cols())
	}
	f, err := Factorize(a)
	if errors.Is(err, ErrSingular) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return f.Det(), nil
}

// Inverse computes A⁻¹ via LU. Intended for small matrices and tests.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows()
	inv := NewMatrix(n, n)
	e := NewVector(n)
	for j := 0; j < n; j++ {
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		e[j] = 0
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// ConditionEstimate returns a cheap lower-bound estimate of the ∞-norm
// condition number κ∞(A) = ‖A‖∞·‖A⁻¹‖∞, using a few solves with random-ish
// ±1 vectors instead of forming the inverse. It is used by diagnostics only.
func ConditionEstimate(a *Matrix) (float64, error) {
	if a.Rows() != a.Cols() {
		return 0, fmt.Errorf("%w: %dx%d", ErrNotSquare, a.Rows(), a.Cols())
	}
	f, err := Factorize(a)
	if err != nil {
		if errors.Is(err, ErrSingular) {
			return math.Inf(1), nil
		}
		return 0, err
	}
	n := a.Rows()
	normA := a.NormInf()
	var invNorm float64
	// Deterministic probe vectors: alternating signs with three phases.
	for phase := 0; phase < 3; phase++ {
		b := NewVector(n)
		for i := range b {
			if (i+phase)%(phase+2) == 0 {
				b[i] = 1
			} else {
				b[i] = -1
			}
		}
		x, err := f.Solve(b)
		if err != nil {
			return math.Inf(1), nil
		}
		if est := x.NormInf() / b.NormInf(); est > invNorm {
			invNorm = est
		}
	}
	return normA * invNorm, nil
}
