package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustMatrix(t *testing.T, rows [][]float64) *Matrix {
	t.Helper()
	m, err := MatrixFromRows(rows)
	if err != nil {
		t.Fatalf("MatrixFromRows: %v", err)
	}
	return m
}

func randomMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, r.NormFloat64()*5)
		}
	}
	return m
}

func TestMatrixFromRowsRagged(t *testing.T) {
	_, err := MatrixFromRows([][]float64{{1, 2}, {3}})
	if !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("ragged rows: got %v, want ErrDimensionMismatch", err)
	}
}

func TestMatrixAtSet(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if got := m.At(1, 2); got != 7 {
		t.Errorf("At(1,2) = %v, want 7", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Errorf("At(0,0) = %v, want 0", got)
	}
}

func TestIdentityMatVec(t *testing.T) {
	id := Identity(4)
	v := VectorOf(1, 2, 3, 4)
	got, err := id.MatVec(v)
	if err != nil {
		t.Fatalf("MatVec: %v", err)
	}
	for i := range v {
		if got[i] != v[i] {
			t.Errorf("I·v[%d] = %v, want %v", i, got[i], v[i])
		}
	}
}

func TestDiagonal(t *testing.T) {
	d := Diagonal(VectorOf(2, 3))
	if d.At(0, 0) != 2 || d.At(1, 1) != 3 || d.At(0, 1) != 0 || d.At(1, 0) != 0 {
		t.Errorf("Diagonal wrong: %v", d)
	}
}

func TestMatVecKnown(t *testing.T) {
	m := mustMatrix(t, [][]float64{{1, 2}, {3, 4}, {5, 6}})
	got, err := m.MatVec(VectorOf(1, -1))
	if err != nil {
		t.Fatalf("MatVec: %v", err)
	}
	want := VectorOf(-1, -1, -1)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MatVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMatVecDimensionError(t *testing.T) {
	m := NewMatrix(2, 3)
	if _, err := m.MatVec(VectorOf(1, 2)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("got %v, want ErrDimensionMismatch", err)
	}
}

func TestMatVecTransposeMatchesExplicit(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m := randomMatrix(r, 5, 3)
	v := randomVec(r, 5)
	got, err := m.MatVecTranspose(v)
	if err != nil {
		t.Fatalf("MatVecTranspose: %v", err)
	}
	want, err := m.Transpose().MatVec(v)
	if err != nil {
		t.Fatalf("explicit: %v", err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2}, {3, 4}})
	b := mustMatrix(t, [][]float64{{5, 6}, {7, 8}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want := mustMatrix(t, [][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 0) {
		t.Errorf("Mul = %v, want %v", got, want)
	}
}

func TestMulShapeError(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("got %v, want ErrDimensionMismatch", err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m := randomMatrix(r, 4, 7)
	if !m.Transpose().Transpose().Equal(m, 0) {
		t.Error("(mᵀ)ᵀ != m")
	}
}

func TestAddSubScale(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2}, {3, 4}})
	b := mustMatrix(t, [][]float64{{4, 3}, {2, 1}})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if !sum.Equal(mustMatrix(t, [][]float64{{5, 5}, {5, 5}}), 0) {
		t.Errorf("Add wrong: %v", sum)
	}
	diff, err := sum.Sub(b)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if !diff.Equal(a, 0) {
		t.Errorf("Sub wrong: %v", diff)
	}
	if !a.Scale(2).Equal(mustMatrix(t, [][]float64{{2, 4}, {6, 8}}), 0) {
		t.Error("Scale wrong")
	}
}

func TestHadamard(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2}, {3, 4}})
	b := mustMatrix(t, [][]float64{{2, 2}, {2, 2}})
	got, err := a.Hadamard(b)
	if err != nil {
		t.Fatalf("Hadamard: %v", err)
	}
	if !got.Equal(a.Scale(2), 0) {
		t.Errorf("Hadamard wrong: %v", got)
	}
}

func TestSubmatrixRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m := randomMatrix(r, 6, 6)
	block := randomMatrix(r, 2, 3)
	if err := m.SetSubmatrix(2, 1, block); err != nil {
		t.Fatalf("SetSubmatrix: %v", err)
	}
	got, err := m.Submatrix(2, 1, 2, 3)
	if err != nil {
		t.Fatalf("Submatrix: %v", err)
	}
	if !got.Equal(block, 0) {
		t.Errorf("round trip: got %v, want %v", got, block)
	}
}

func TestSubmatrixBounds(t *testing.T) {
	m := NewMatrix(3, 3)
	if err := m.SetSubmatrix(2, 2, NewMatrix(2, 2)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("SetSubmatrix overflow: got %v", err)
	}
	if _, err := m.Submatrix(0, 0, 4, 1); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Submatrix overflow: got %v", err)
	}
	if _, err := m.Submatrix(-1, 0, 1, 1); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Submatrix negative: got %v", err)
	}
}

func TestRowColCopies(t *testing.T) {
	m := mustMatrix(t, [][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Error("Row returned live slice, want copy")
	}
	c := m.Col(1)
	c[0] = 99
	if m.At(0, 1) != 2 {
		t.Error("Col returned live slice, want copy")
	}
	if got := m.Col(1); got[0] != 2 || got[1] != 4 {
		t.Errorf("Col(1) = %v", got)
	}
}

func TestPredicatesAndNorms(t *testing.T) {
	m := mustMatrix(t, [][]float64{{1, -2}, {3, 4}})
	if m.AllNonNegative() {
		t.Error("AllNonNegative with -2 = true")
	}
	if !mustMatrix(t, [][]float64{{0, 1}}).AllNonNegative() {
		t.Error("AllNonNegative(0,1) = false")
	}
	if got := m.MaxAbs(); got != 4 {
		t.Errorf("MaxAbs = %v, want 4", got)
	}
	if got := m.MinElement(); got != -2 {
		t.Errorf("MinElement = %v, want -2", got)
	}
	if got := m.NormInf(); got != 7 {
		t.Errorf("NormInf = %v, want 7", got)
	}
	if got := m.RowSum(0); got != -1 {
		t.Errorf("RowSum(0) = %v, want -1", got)
	}
	if !m.AllFinite() {
		t.Error("AllFinite = false")
	}
	m.Set(0, 0, math.NaN())
	if m.AllFinite() {
		t.Error("AllFinite with NaN = true")
	}
}

func TestPropertyMulAssociativeWithVector(t *testing.T) {
	// (A·B)·v == A·(B·v)
	f := func(seed int64, s1, s2, s3 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		p, q, n := int(s1%6)+1, int(s2%6)+1, int(s3%6)+1
		a := randomMatrix(r, p, q)
		b := randomMatrix(r, q, n)
		v := randomVec(r, n)
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		left, err := ab.MatVec(v)
		if err != nil {
			return false
		}
		bv, err := b.MatVec(v)
		if err != nil {
			return false
		}
		right, err := a.MatVec(bv)
		if err != nil {
			return false
		}
		for i := range left {
			if math.Abs(left[i]-right[i]) > 1e-8*(1+math.Abs(left[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyTransposeDistributesOverMul(t *testing.T) {
	// (A·B)ᵀ == Bᵀ·Aᵀ
	f := func(seed int64, s1, s2, s3 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		p, q, n := int(s1%5)+1, int(s2%5)+1, int(s3%5)+1
		a := randomMatrix(r, p, q)
		b := randomMatrix(r, q, n)
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		btat, err := b.Transpose().Mul(a.Transpose())
		if err != nil {
			return false
		}
		return ab.Transpose().Equal(btat, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
