package linalg

import (
	"math"
	"testing"
)

func TestEqTol(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1.05, 0.1, true},
		{1, 1.5, 0.1, false},
		{1e9, 1e9 * (1 + 1e-7), 1e-6, true},
		{0, 1e-7, 1e-6, true},
		{0, 1, 1e-6, false},
		{math.NaN(), 1, 0.5, false},
		{1, math.NaN(), 0.5, false},
		{math.Inf(1), math.Inf(1), 0.5, false},
	}
	for _, c := range cases {
		if got := EqTol(c.a, c.b, c.tol); got != c.want {
			t.Errorf("EqTol(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestIdentical(t *testing.T) {
	// Runtime arithmetic (not constant folding): 0.1+0.2 != 0.3 in float64.
	a, b := 0.1, 0.2
	if !Identical(a+b, a+b) {
		t.Error("Identical(x, x) = false for finite x")
	}
	if Identical(a+b, 0.3) {
		t.Error("Identical(0.1+0.2, 0.3) = true; exact identity must not round")
	}
	if Identical(math.NaN(), math.NaN()) {
		t.Error("Identical(NaN, NaN) = true")
	}
	if !Identical(math.Inf(1), math.Inf(1)) {
		t.Error("Identical(+Inf, +Inf) = false")
	}
}
