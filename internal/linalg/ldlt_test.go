package linalg

import (
	"errors"
	"math"
	"testing"
)

// sqdKKT builds the reduced-KKT-shaped SQD test matrix
// [[D1, Aᵀ], [A, −D2]] with positive diagonals d1, d2.
func sqdKKT(d1, d2 []float64, a *Matrix) *Matrix {
	n, m := len(d1), len(d2)
	k := NewMatrix(n+m, n+m)
	for i, v := range d1 {
		k.Set(i, i, v)
	}
	for i, v := range d2 {
		k.Set(n+i, n+i, -v)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			k.Set(n+i, j, a.At(i, j))
			k.Set(j, n+i, a.At(i, j))
		}
	}
	return k
}

func TestLDLTMatchesLU(t *testing.T) {
	a := NewMatrix(2, 3)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(0, 2, -1)
	a.Set(1, 0, 0.5)
	a.Set(1, 2, 3)
	k := sqdKKT([]float64{2, 0.5, 4}, []float64{1, 0.25}, a)
	b := Vector{1, -2, 3, 0.5, -1}

	want, err := SolveDense(k.Clone(), b)
	if err != nil {
		t.Fatalf("SolveDense: %v", err)
	}
	f, err := FactorizeLDLT(k)
	if err != nil {
		t.Fatalf("FactorizeLDLT: %v", err)
	}
	got, err := f.Solve(b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %v, LU reference %v", i, got[i], want[i])
		}
	}
}

func TestLDLTLargeRandomSQD(t *testing.T) {
	// Deterministic pseudo-random SQD system, big enough to exercise the
	// trailing-update loops across block boundaries.
	n, m := 17, 11
	a := NewMatrix(m, n)
	s := uint64(12345)
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(int64(s>>33))/float64(1<<30) - 1
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if v := next(); v > -0.5 { // leave some exact zeros for the skip path
				a.Set(i, j, v)
			}
		}
	}
	d1 := make([]float64, n)
	d2 := make([]float64, m)
	for i := range d1 {
		d1[i] = 0.1 + math.Abs(next())
	}
	for i := range d2 {
		d2[i] = 0.1 + math.Abs(next())
	}
	k := sqdKKT(d1, d2, a)
	b := NewVector(n + m)
	for i := range b {
		b[i] = next()
	}

	want, err := SolveDense(k.Clone(), b)
	if err != nil {
		t.Fatalf("SolveDense: %v", err)
	}
	f, err := FactorizeLDLT(k)
	if err != nil {
		t.Fatalf("FactorizeLDLT: %v", err)
	}
	got, err := f.Solve(b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %v, LU reference %v", i, got[i], want[i])
		}
	}
}

func TestLDLTErrors(t *testing.T) {
	rect := NewMatrix(2, 3)
	if _, err := FactorizeLDLT(rect); !errors.Is(err, ErrNotSquare) {
		t.Fatalf("rectangular: err = %v, want ErrNotSquare", err)
	}
	zero := NewMatrix(2, 2)
	if _, err := FactorizeLDLT(zero); !errors.Is(err, ErrSingular) {
		t.Fatalf("zero matrix: err = %v, want ErrSingular", err)
	}
	k := sqdKKT([]float64{1}, []float64{1}, NewMatrix(1, 1))
	f, err := FactorizeLDLT(k)
	if err != nil {
		t.Fatalf("FactorizeLDLT: %v", err)
	}
	if err := f.SolveInPlace(NewVector(3)); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("bad rhs: err = %v, want ErrDimensionMismatch", err)
	}
}

func TestLDLTSolveRefine(t *testing.T) {
	a := NewMatrix(2, 3)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(0, 2, -1)
	a.Set(1, 0, 0.5)
	a.Set(1, 2, 3)
	k := sqdKKT([]float64{2, 0.5, 4}, []float64{1, 0.25}, a)
	b := Vector{1, -2, 3, 0.5, -1}

	want, err := SolveDense(k.Clone(), b)
	if err != nil {
		t.Fatalf("SolveDense: %v", err)
	}
	f, err := FactorizeLDLT(k)
	if err != nil {
		t.Fatalf("FactorizeLDLT: %v", err)
	}
	x := b.Clone()
	scratch := NewVector(2 * len(b))
	ratio, err := f.SolveRefineInPlace(k, x, scratch)
	if err != nil {
		t.Fatalf("SolveRefineInPlace: %v", err)
	}
	if ratio >= 0.5 {
		t.Fatalf("refinement ratio %v on a well-conditioned system, want ≪ 0.5", ratio)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %v, LU reference %v", i, x[i], want[i])
		}
	}
	// The original rhs survives in scratch[:n] so a caller can retry the
	// solve through a different factorization after a failed refinement.
	for i := range b {
		if scratch[i] != b[i] {
			t.Fatalf("scratch[%d] = %v, want preserved rhs %v", i, scratch[i], b[i])
		}
	}
	if _, err := f.SolveRefineInPlace(k, x, NewVector(3)); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("short scratch: err = %v, want ErrDimensionMismatch", err)
	}
}

func TestLDLTSolveRefineAllocs(t *testing.T) {
	a := NewMatrix(1, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, -2)
	k := sqdKKT([]float64{2, 3}, []float64{1}, a)
	b := Vector{1, 2, 3}
	f, err := FactorizeLDLT(k)
	if err != nil {
		t.Fatalf("FactorizeLDLT: %v", err)
	}
	x := b.Clone()
	scratch := NewVector(2 * len(b))
	allocs := testing.AllocsPerRun(100, func() {
		copy(x, b)
		if _, err := f.SolveRefineInPlace(k, x, scratch); err != nil {
			t.Fatalf("SolveRefineInPlace: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("refined solve allocated %v times per run, want 0", allocs)
	}
}

func TestLDLTFactorizeIntoReuses(t *testing.T) {
	a := NewMatrix(1, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, -2)
	k := sqdKKT([]float64{2, 3}, []float64{1}, a)
	b := Vector{1, 2, 3}

	f, err := FactorizeLDLT(k)
	if err != nil {
		t.Fatalf("FactorizeLDLT: %v", err)
	}
	x := b.Clone()
	allocs := testing.AllocsPerRun(100, func() {
		g, err := FactorizeLDLTInto(f, k)
		if err != nil {
			t.Fatalf("FactorizeLDLTInto: %v", err)
		}
		f = g
		copy(x, b)
		if err := f.SolveInPlace(x); err != nil {
			t.Fatalf("SolveInPlace: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("re-factorize + solve allocated %v times per run, want 0", allocs)
	}
	want, err := SolveDense(k.Clone(), b)
	if err != nil {
		t.Fatalf("SolveDense: %v", err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %v, LU reference %v", i, x[i], want[i])
		}
	}
}
