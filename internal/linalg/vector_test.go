package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorAddSub(t *testing.T) {
	v := VectorOf(1, 2, 3)
	w := VectorOf(4, 5, 6)

	sum, err := v.Add(w)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	want := VectorOf(5, 7, 9)
	for i := range want {
		if sum[i] != want[i] {
			t.Errorf("Add[%d] = %v, want %v", i, sum[i], want[i])
		}
	}

	diff, err := w.Sub(v)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	for i := range diff {
		if diff[i] != 3 {
			t.Errorf("Sub[%d] = %v, want 3", i, diff[i])
		}
	}
}

func TestVectorDimensionMismatch(t *testing.T) {
	v := VectorOf(1, 2)
	w := VectorOf(1, 2, 3)
	if _, err := v.Add(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Add mismatch: got %v, want ErrDimensionMismatch", err)
	}
	if _, err := v.Sub(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Sub mismatch: got %v, want ErrDimensionMismatch", err)
	}
	if _, err := v.Dot(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Dot mismatch: got %v, want ErrDimensionMismatch", err)
	}
	if _, err := v.HadamardProduct(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Hadamard mismatch: got %v, want ErrDimensionMismatch", err)
	}
	if err := v.AxpyInPlace(1, w); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Axpy mismatch: got %v, want ErrDimensionMismatch", err)
	}
}

func TestVectorDot(t *testing.T) {
	v := VectorOf(1, 2, 3)
	w := VectorOf(4, -5, 6)
	got, err := v.Dot(w)
	if err != nil {
		t.Fatalf("Dot: %v", err)
	}
	if got != 12 {
		t.Errorf("Dot = %v, want 12", got)
	}
}

func TestVectorNorms(t *testing.T) {
	v := VectorOf(3, -4)
	if got := v.Norm2(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := v.Norm1(); got != 7 {
		t.Errorf("Norm1 = %v, want 7", got)
	}
	if got := v.NormInf(); got != 4 {
		t.Errorf("NormInf = %v, want 4", got)
	}
}

func TestVectorNorm2OverflowSafe(t *testing.T) {
	big := math.MaxFloat64 / 2
	v := VectorOf(big, big)
	got := v.Norm2()
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("Norm2 overflowed: %v", got)
	}
	want := big * math.Sqrt2
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Norm2 = %v, want %v", got, want)
	}
}

func TestVectorMinMax(t *testing.T) {
	v := VectorOf(2, -7, 5)
	if got := v.Min(); got != -7 {
		t.Errorf("Min = %v, want -7", got)
	}
	if got := v.Max(); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
	empty := Vector{}
	if got := empty.Min(); !math.IsInf(got, 1) {
		t.Errorf("empty Min = %v, want +Inf", got)
	}
	if got := empty.Max(); !math.IsInf(got, -1) {
		t.Errorf("empty Max = %v, want -Inf", got)
	}
}

func TestVectorPredicates(t *testing.T) {
	if !VectorOf(1, 2, 3).AllPositive() {
		t.Error("AllPositive(1,2,3) = false, want true")
	}
	if VectorOf(1, 0, 3).AllPositive() {
		t.Error("AllPositive(1,0,3) = true, want false")
	}
	if !VectorOf(1, -2).AllFinite() {
		t.Error("AllFinite(1,-2) = false, want true")
	}
	if VectorOf(1, math.NaN()).AllFinite() {
		t.Error("AllFinite with NaN = true, want false")
	}
	if VectorOf(1, math.Inf(1)).AllFinite() {
		t.Error("AllFinite with Inf = true, want false")
	}
}

func TestVectorCloneIndependent(t *testing.T) {
	v := VectorOf(1, 2, 3)
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Errorf("Clone aliases source: v[0] = %v", v[0])
	}
}

func TestVectorFill(t *testing.T) {
	v := NewVector(4)
	v.Fill(2.5)
	for i, x := range v {
		if x != 2.5 {
			t.Errorf("Fill[%d] = %v, want 2.5", i, x)
		}
	}
}

func TestConcat(t *testing.T) {
	got := Concat(VectorOf(1, 2), VectorOf(3), Vector{}, VectorOf(4, 5))
	want := VectorOf(1, 2, 3, 4, 5)
	if len(got) != len(want) {
		t.Fatalf("Concat len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Concat[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestVectorScale(t *testing.T) {
	v := VectorOf(1, -2, 3)
	got := v.Scale(-2)
	want := VectorOf(-2, 4, -6)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Scale[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestVectorAxpy(t *testing.T) {
	v := VectorOf(1, 1, 1)
	if err := v.AxpyInPlace(2, VectorOf(1, 2, 3)); err != nil {
		t.Fatalf("Axpy: %v", err)
	}
	want := VectorOf(3, 5, 7)
	for i := range want {
		if v[i] != want[i] {
			t.Errorf("Axpy[%d] = %v, want %v", i, v[i], want[i])
		}
	}
}

// randomVec generates a bounded random vector for property tests.
func randomVec(r *rand.Rand, n int) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = r.NormFloat64() * 10
	}
	return v
}

func TestPropertyDotCommutative(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := int(size%32) + 1
		r := rand.New(rand.NewSource(seed))
		v, w := randomVec(r, n), randomVec(r, n)
		a, err1 := v.Dot(w)
		b, err2 := w.Dot(v)
		return err1 == nil && err2 == nil && math.Abs(a-b) <= 1e-9*(1+math.Abs(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyTriangleInequality(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := int(size%32) + 1
		r := rand.New(rand.NewSource(seed))
		v, w := randomVec(r, n), randomVec(r, n)
		sum, err := v.Add(w)
		if err != nil {
			return false
		}
		return sum.Norm2() <= v.Norm2()+w.Norm2()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyCauchySchwarz(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := int(size%32) + 1
		r := rand.New(rand.NewSource(seed))
		v, w := randomVec(r, n), randomVec(r, n)
		d, err := v.Dot(w)
		if err != nil {
			return false
		}
		return math.Abs(d) <= v.Norm2()*w.Norm2()*(1+1e-12)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyNormOrdering(t *testing.T) {
	// ‖v‖∞ ≤ ‖v‖₂ ≤ ‖v‖₁ for any vector.
	f := func(seed int64, size uint8) bool {
		n := int(size%32) + 1
		r := rand.New(rand.NewSource(seed))
		v := randomVec(r, n)
		inf, two, one := v.NormInf(), v.Norm2(), v.Norm1()
		return inf <= two*(1+1e-12) && two <= one*(1+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
