package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveStructuredMatchesDenseOnRandom(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n := 3 + trial*2
		a := randomMatrix(r, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+25)
		}
		b := randomVec(r, n)
		want, err := SolveDense(a, b)
		if err != nil {
			t.Fatalf("SolveDense: %v", err)
		}
		got, err := SolveStructured(a, b)
		if err != nil {
			t.Fatalf("SolveStructured: %v", err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
				t.Errorf("n=%d x[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

// buildPDIPLikeMatrix mimics the sparsity of the paper's extended matrix
// (Eq. 14a): a dense m×n block plus many two-non-zero coupling rows.
func buildPDIPLikeMatrix(r *rand.Rand, m, n int) (*Matrix, Vector) {
	// Layout: cols [x(n) | y(m) | w(m) | z(n)], rows:
	//   [A  0  I  0]   m rows
	//   [0  Aᵀ 0 -I]   n rows
	//   [Z  0  0  X]   n rows (two non-zeros each)
	//   [0  W  Y  0]   m rows (two non-zeros each)
	size := 2 * (n + m)
	a := NewMatrix(size, size)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, r.NormFloat64())
		}
		a.Set(i, n+m+i, 1)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			a.Set(m+i, n+j, r.NormFloat64())
		}
		a.Set(m+i, n+2*m+i, -1)
	}
	for i := 0; i < n; i++ {
		a.Set(m+n+i, i, 0.5+r.Float64())
		a.Set(m+n+i, n+2*m+i, 0.5+r.Float64())
	}
	for i := 0; i < m; i++ {
		a.Set(m+2*n+i, n+i, 0.5+r.Float64())
		a.Set(m+2*n+i, n+m+i, 0.5+r.Float64())
	}
	b := randomVec(r, size)
	return a, b
}

func TestSolveStructuredPDIPShape(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	a, b := buildPDIPLikeMatrix(r, 12, 4)
	want, err := SolveDense(a, b)
	if err != nil {
		t.Fatalf("SolveDense: %v", err)
	}
	got, err := SolveStructured(a, b)
	if err != nil {
		t.Fatalf("SolveStructured: %v", err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
			t.Errorf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSolveStructuredDiagonal(t *testing.T) {
	// Pure diagonal systems are fully handled by the presolve (no core).
	d := Diagonal(VectorOf(2, 4, 8))
	got, err := SolveStructured(d, VectorOf(2, 4, 8))
	if err != nil {
		t.Fatalf("SolveStructured: %v", err)
	}
	for i := range got {
		if math.Abs(got[i]-1) > 1e-12 {
			t.Errorf("x[%d] = %v, want 1", i, got[i])
		}
	}
}

func TestSolveStructuredSingular(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2}, {2, 4}})
	if _, err := SolveStructured(a, VectorOf(1, 1)); !errors.Is(err, ErrSingular) {
		t.Errorf("singular: %v, want ErrSingular", err)
	}
	zero := NewMatrix(3, 3)
	if _, err := SolveStructured(zero, VectorOf(1, 1, 1)); !errors.Is(err, ErrSingular) {
		t.Errorf("zero matrix: %v, want ErrSingular", err)
	}
}

func TestSolveStructuredValidation(t *testing.T) {
	if _, err := SolveStructured(NewMatrix(2, 3), VectorOf(1, 1)); !errors.Is(err, ErrNotSquare) {
		t.Errorf("non-square: %v", err)
	}
	if _, err := SolveStructured(Identity(3), VectorOf(1, 1)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("bad rhs: %v", err)
	}
}

func TestSolveStructuredIdentity(t *testing.T) {
	got, err := SolveStructured(Identity(5), VectorOf(1, 2, 3, 4, 5))
	if err != nil {
		t.Fatalf("SolveStructured: %v", err)
	}
	for i := range got {
		if got[i] != float64(i+1) {
			t.Errorf("x[%d] = %v", i, got[i])
		}
	}
}

func TestSolveStructuredPermutation(t *testing.T) {
	// A permutation matrix is all one-non-zero rows.
	p := NewMatrix(4, 4)
	p.Set(0, 2, 1)
	p.Set(1, 0, 1)
	p.Set(2, 3, 1)
	p.Set(3, 1, 1)
	b := VectorOf(10, 20, 30, 40)
	got, err := SolveStructured(p, b)
	if err != nil {
		t.Fatalf("SolveStructured: %v", err)
	}
	want := VectorOf(20, 40, 10, 30)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPropertyStructuredEqualsDense(t *testing.T) {
	f := func(seed int64, sz uint8, sparsity uint8) bool {
		n := int(sz%10) + 2
		r := rand.New(rand.NewSource(seed))
		a := NewMatrix(n, n)
		keepProb := 0.2 + float64(sparsity%80)/100
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if r.Float64() < keepProb {
					a.Set(i, j, r.NormFloat64())
				}
			}
			a.Set(i, i, a.At(i, i)+30)
		}
		b := randomVec(r, n)
		want, err1 := SolveDense(a, b)
		got, err2 := SolveStructured(a, b)
		if err1 != nil || err2 != nil {
			return errors.Is(err2, ErrSingular) == errors.Is(err1, ErrSingular)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestStructuredDeterministicAcrossWorkspaces pins the elimination order: two
// independent workspaces solving the same system must produce bit-identical
// results. The column-occupancy tracking iterates slices in insertion order;
// a map here would randomize the elimination sequence per workspace and
// perturb the floating-point result — which would break the fabric pool's
// bit-identical-across-replicas contract (each replica owns a workspace).
func TestStructuredDeterministicAcrossWorkspaces(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	a, b := buildPDIPLikeMatrix(r, 24, 8)
	var w1, w2 StructuredWorkspace
	x1, err := w1.Solve(a, b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	ref := x1.Clone()
	// Desynchronize the second workspace's history before the comparison
	// solve: prior solves must not influence later results either.
	r2 := rand.New(rand.NewSource(99))
	a2, b2 := buildPDIPLikeMatrix(r2, 24, 8)
	if _, err := w2.Solve(a2, b2); err != nil {
		t.Fatalf("history Solve: %v", err)
	}
	x2, err := w2.Solve(a, b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for i := range ref {
		if !Identical(x2[i], ref[i]) {
			t.Fatalf("x[%d] = %v, want bit-identical %v across workspaces", i, x2[i], ref[i])
		}
	}
}

// TestStructuredWorkspaceReuseAllocs pins the slice-backed occupancy sets:
// same-shape re-solves on a warmed workspace must not allocate (the map
// version allocated per fill-in insert and on every clear).
func TestStructuredWorkspaceReuseAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	a, b := buildPDIPLikeMatrix(r, 24, 8)
	var w StructuredWorkspace
	if _, err := w.Solve(a, b); err != nil {
		t.Fatalf("warmup Solve: %v", err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := w.Solve(a, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("warmed workspace allocates %.1f/solve, want 0", allocs)
	}
}

func BenchmarkSolveStructuredPDIPShape(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a, rhs := buildPDIPLikeMatrix(r, 60, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveStructured(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveStructuredPDIPShapeReused measures the workspace-reuse path
// the solvers actually run (each crossbar keeps one workspace hot).
func BenchmarkSolveStructuredPDIPShapeReused(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a, rhs := buildPDIPLikeMatrix(r, 60, 20)
	var w StructuredWorkspace
	if _, err := w.Solve(a, rhs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Solve(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveDensePDIPShape(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a, rhs := buildPDIPLikeMatrix(r, 60, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveDense(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
