package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveDenseKnown(t *testing.T) {
	a := mustMatrix(t, [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := VectorOf(8, -11, -3)
	x, err := SolveDense(a, b)
	if err != nil {
		t.Fatalf("SolveDense: %v", err)
	}
	want := VectorOf(2, 3, -1)
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := mustMatrix(t, [][]float64{{1, 2}, {2, 4}})
	_, err := SolveDense(a, VectorOf(1, 2))
	if !errors.Is(err, ErrSingular) {
		t.Errorf("singular solve: got %v, want ErrSingular", err)
	}
}

func TestFactorizeNotSquare(t *testing.T) {
	_, err := Factorize(NewMatrix(2, 3))
	if !errors.Is(err, ErrNotSquare) {
		t.Errorf("got %v, want ErrNotSquare", err)
	}
}

func TestSolveWrongRHS(t *testing.T) {
	f, err := Factorize(Identity(3))
	if err != nil {
		t.Fatalf("Factorize: %v", err)
	}
	if _, err := f.Solve(VectorOf(1, 2)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("got %v, want ErrDimensionMismatch", err)
	}
}

func TestDetKnown(t *testing.T) {
	tests := []struct {
		name string
		m    [][]float64
		want float64
	}{
		{"identity", [][]float64{{1, 0}, {0, 1}}, 1},
		{"2x2", [][]float64{{1, 2}, {3, 4}}, -2},
		{"3x3", [][]float64{{6, 1, 1}, {4, -2, 5}, {2, 8, 7}}, -306},
		{"singular", [][]float64{{1, 2}, {2, 4}}, 0},
		{"swap", [][]float64{{0, 1}, {1, 0}}, -1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Det(mustMatrix(t, tc.m))
			if err != nil {
				t.Fatalf("Det: %v", err)
			}
			if math.Abs(got-tc.want) > 1e-9 {
				t.Errorf("Det = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestInverseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		n := 3 + trial
		a := randomMatrix(r, n, n)
		// Diagonal boost keeps the test matrices comfortably non-singular.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)*10)
		}
		inv, err := Inverse(a)
		if err != nil {
			t.Fatalf("Inverse: %v", err)
		}
		prod, err := a.Mul(inv)
		if err != nil {
			t.Fatalf("Mul: %v", err)
		}
		if !prod.Equal(Identity(n), 1e-8) {
			t.Errorf("A·A⁻¹ != I for n=%d", n)
		}
	}
}

func TestLUPivotingHandlesZeroLeadingEntry(t *testing.T) {
	a := mustMatrix(t, [][]float64{
		{0, 1},
		{1, 0},
	})
	x, err := SolveDense(a, VectorOf(3, 5))
	if err != nil {
		t.Fatalf("SolveDense: %v", err)
	}
	if math.Abs(x[0]-5) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [5 3]", x)
	}
}

func TestConditionEstimate(t *testing.T) {
	// Identity has condition number 1.
	k, err := ConditionEstimate(Identity(8))
	if err != nil {
		t.Fatalf("ConditionEstimate: %v", err)
	}
	if k < 1 || k > 1.5 {
		t.Errorf("κ(I) estimate = %v, want ≈1", k)
	}
	// Singular matrix reports +Inf.
	k, err = ConditionEstimate(mustMatrix(t, [][]float64{{1, 2}, {2, 4}}))
	if err != nil {
		t.Fatalf("ConditionEstimate singular: %v", err)
	}
	if !math.IsInf(k, 1) {
		t.Errorf("κ(singular) = %v, want +Inf", k)
	}
	// Badly scaled diagonal should report a large κ.
	d := Diagonal(VectorOf(1, 1e-8))
	k, err = ConditionEstimate(d)
	if err != nil {
		t.Fatalf("ConditionEstimate diag: %v", err)
	}
	if k < 1e7 {
		t.Errorf("κ(ill-conditioned) = %v, want ≥1e7", k)
	}
}

func TestPropertySolveResidualSmall(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := int(size%12) + 2
		r := rand.New(rand.NewSource(seed))
		a := randomMatrix(r, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+100) // keep well-conditioned
		}
		b := randomVec(r, n)
		x, err := SolveDense(a, b)
		if err != nil {
			return false
		}
		res, err := Residual(a, x, b)
		if err != nil {
			return false
		}
		return res.NormInf() <= 1e-7*(1+b.NormInf())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyDetProductRule(t *testing.T) {
	// det(A·B) == det(A)·det(B)
	f := func(seed int64, size uint8) bool {
		n := int(size%6) + 1
		r := rand.New(rand.NewSource(seed))
		a := randomMatrix(r, n, n)
		b := randomMatrix(r, n, n)
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		da, err1 := Det(a)
		db, err2 := Det(b)
		dab, err3 := Det(ab)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return math.Abs(dab-da*db) <= 1e-6*(1+math.Abs(da*db))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyDetTransposeInvariant(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := int(size%6) + 1
		r := rand.New(rand.NewSource(seed))
		a := randomMatrix(r, n, n)
		da, err1 := Det(a)
		dat, err2 := Det(a.Transpose())
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(da-dat) <= 1e-6*(1+math.Abs(da))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
