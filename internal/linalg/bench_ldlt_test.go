package linalg

import "testing"

// benchKKT builds a reduced-KKT-shaped SQD system of PDIP size n+m with a
// deterministic pseudo-random A block and well-separated positive diagonals.
func benchKKT(n, m int) (*Matrix, Vector) {
	a := NewMatrix(m, n)
	s := uint64(99)
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(int64(s>>33))/float64(1<<30) - 1
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if v := next(); v > -0.4 {
				a.Set(i, j, v)
			}
		}
	}
	d1 := make([]float64, n)
	d2 := make([]float64, m)
	for i := range d1 {
		d1[i] = 0.1 + next()*next()
	}
	for i := range d2 {
		d2[i] = 0.1 + next()*next()
	}
	k := sqdKKT(d1, d2, a)
	b := NewVector(n + m)
	for i := range b {
		b[i] = next()
	}
	return k, b
}

// BenchmarkLDLT measures the reduced-KKT hot path as the PDIP iteration runs
// it: re-factorize the same-shaped SQD matrix into reused storage, then solve
// with one refinement step. Compare against BenchmarkLUKKT for the structured
// LDLᵀ speedup (BENCH_HOTPATH.json).
func BenchmarkLDLT(b *testing.B) {
	k, rhs := benchKKT(48, 32)
	f, err := FactorizeLDLT(k)
	if err != nil {
		b.Fatal(err)
	}
	x := rhs.Clone()
	scratch := NewVector(2 * len(rhs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err = FactorizeLDLTInto(f, k)
		if err != nil {
			b.Fatal(err)
		}
		copy(x, rhs)
		if _, err := f.SolveRefineInPlace(k, x, scratch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLUKKT is the dense partial-pivoted LU baseline on the same
// reduced KKT system, factorization storage reused the same way.
func BenchmarkLUKKT(b *testing.B) {
	k, rhs := benchKKT(48, 32)
	f, err := Factorize(k)
	if err != nil {
		b.Fatal(err)
	}
	x := rhs.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err = FactorizeInto(f, k)
		if err != nil {
			b.Fatal(err)
		}
		copy(x, rhs)
		if err := f.SolveInPlace(x); err != nil {
			b.Fatal(err)
		}
	}
}
