package linalg

import (
	"fmt"
	"math"
)

// LDLT holds a pivot-free LDLᵀ factorization A = LDLᵀ of a symmetric
// quasi-definite matrix: the packed unit-upper factor U = Lᵀ above the
// diagonal and D on it. Quasi-definiteness — a positive-definite leading
// diagonal block and a negative-definite trailing one, exactly the shape of
// the reduced KKT system [[X⁻¹Z, Aᵀ], [A, −Y⁻¹W]] — guarantees a nonzero
// pivot sequence in any symmetric elimination order (Vanderbei), so no pivot
// search, no row swaps, and half the flops of LU on the same matrix.
type LDLT struct {
	u *Matrix // packed unit-upper U = Lᵀ (above diag) and D (on diag)
}

// FactorizeLDLT computes the pivot-free LDLᵀ factorization of a symmetric
// quasi-definite matrix. Only the upper triangle of a is read; symmetry is
// the caller's contract (the KKT assemblies write both halves from the same
// source matrix). It returns ErrSingular if a pivot collapses to zero, which
// for an SQD matrix only happens by floating-point underflow of an iterate.
func FactorizeLDLT(a *Matrix) (*LDLT, error) {
	return FactorizeLDLTInto(nil, a)
}

// FactorizeLDLTInto is FactorizeLDLT with storage reuse: when f already holds
// a factorization of the same dimension its packed matrix is overwritten
// instead of reallocated, so the per-iteration re-factorization of a PDIP
// solve allocates nothing. The returned *LDLT is f when reuse succeeded;
// callers should always keep the returned value.
func FactorizeLDLTInto(f *LDLT, a *Matrix) (*LDLT, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("%w: %dx%d", ErrNotSquare, a.Rows(), a.Cols())
	}
	n := a.Rows()
	var u *Matrix
	if f != nil && f.u != nil && f.u.Rows() == n && f.u.Cols() == n {
		u = f.u
		copy(u.data, a.data)
	} else {
		u = a.Clone()
		f = &LDLT{}
	}

	// Right-looking outer-product elimination on the upper triangle, rows of
	// U contiguous in memory. The zero-skip on the pivot row's entries is
	// what exploits the KKT block structure: row k of the diagonal block
	// [X⁻¹Z] has non-zeros only in the Aᵀ columns, so the trailing update
	// touches O(n·m) cells instead of O((n+m)²) — the Eq. 14a sparsity that
	// StructuredWorkspace exploits on the analog path, carried over to the
	// software rung. With no pivoting the sparsity pattern is static, so no
	// occupancy bookkeeping is needed: the skip test is the data itself.
	for k := 0; k < n; k++ {
		rk := u.RawRow(k)
		d := rk[k]
		if d == 0 {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		for i := k + 1; i < n; i++ {
			aki := rk[i] // still unscaled: S_ki
			if aki == 0 {
				continue
			}
			m := aki / d
			ri := u.RawRow(i)
			for j := i; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
		inv := 1 / d
		for i := k + 1; i < n; i++ {
			rk[i] *= inv
		}
	}
	f.u = u
	return f, nil
}

// Solve solves A·x = b using the factorization.
func (f *LDLT) Solve(b Vector) (Vector, error) {
	x := b.Clone()
	if err := f.SolveInPlace(x); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveRefineInPlace solves A·x = b with one step of iterative refinement
// against the original matrix a (which the factorization left untouched):
// x ← x + A⁻¹(b − A·x), both solves through the factorization. The pivot-free
// elimination is exact for a comfortably quasi-definite matrix but loses
// accuracy as the definiteness margin collapses — exactly the late
// interior-point iterations where X⁻¹Z spans many orders of magnitude (e.g.
// approaching an infeasibility certificate). One O(n²) correction restores
// pivoted-LU-grade solutions there while keeping the factorization itself
// pivot-free. x holds b on entry and the solution on return; scratch must
// have length ≥ 2n; on return scratch[:n] still holds b, so the caller can
// retry with a different factorization if refinement did not converge.
//
// The returned ratio is ‖correction‖∞ / ‖x‖∞, the standard refinement
// convergence estimate: a ratio ≪ 1 means the factorized solve was already
// accurate, while a ratio ≳ 0.5 means the matrix is too ill-conditioned for
// refinement to converge and the solution should not be trusted (NaN or Inf
// anywhere in the correction reports +Inf). Allocates nothing.
func (f *LDLT) SolveRefineInPlace(a *Matrix, x, scratch Vector) (float64, error) {
	n := f.u.Rows()
	if a.Rows() != n || a.Cols() != n || len(scratch) < 2*n {
		return 0, fmt.Errorf("%w: refine with %dx%d matrix, %d scratch for %d unknowns",
			ErrDimensionMismatch, a.Rows(), a.Cols(), len(scratch), n)
	}
	b := scratch[:n]
	r := scratch[n : 2*n]
	copy(b, x)
	if err := f.SolveInPlace(x); err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		ri := a.RawRow(i)
		s := b[i]
		for j, v := range ri {
			if v != 0 {
				s -= v * x[j]
			}
		}
		r[i] = s
	}
	if err := f.SolveInPlace(r); err != nil {
		return 0, err
	}
	var xn, rn float64
	for i := range x {
		x[i] += r[i]
		if a := math.Abs(x[i]); a > xn {
			xn = a
		}
		if a := math.Abs(r[i]); a > rn {
			rn = a
		}
	}
	if math.IsNaN(rn) || math.IsInf(rn, 0) || math.IsNaN(xn) {
		return math.Inf(1), nil
	}
	if xn == 0 {
		return 0, nil
	}
	return rn / xn, nil
}

// SolveInPlace solves A·x = b via Uᵀ(D(U·x)) = b, overwriting b with the
// solution. It allocates nothing.
func (f *LDLT) SolveInPlace(x Vector) error {
	n := f.u.Rows()
	if len(x) != n {
		return fmt.Errorf("%w: solve %d unknowns, rhs %d", ErrDimensionMismatch, n, len(x))
	}
	// Forward-substitute Uᵀ (unit lower) in saxpy form so every inner loop
	// walks one contiguous row of U.
	for k := 0; k < n; k++ {
		xk := x[k]
		if xk == 0 {
			continue
		}
		rk := f.u.RawRow(k)
		for i := k + 1; i < n; i++ {
			x[i] -= rk[i] * xk
		}
	}
	// Diagonal scale by D⁻¹.
	for i := 0; i < n; i++ {
		x[i] /= f.u.At(i, i)
	}
	// Back-substitute unit-upper U.
	for i := n - 1; i >= 0; i-- {
		ri := f.u.RawRow(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s
	}
	return nil
}
