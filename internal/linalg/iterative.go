package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence is returned when an iterative solver fails to reach the
// requested tolerance within its iteration budget.
var ErrNoConvergence = errors.New("linalg: iterative solver did not converge")

// IterativeOptions configures the Jacobi and Gauss–Seidel solvers.
type IterativeOptions struct {
	// MaxIterations bounds the sweep count. Zero means 10_000.
	MaxIterations int
	// Tolerance is the ∞-norm of the update at which iteration stops.
	// Zero means 1e-10.
	Tolerance float64
	// InitialGuess, when non-nil, seeds the iteration; otherwise zero.
	InitialGuess Vector
}

func (o IterativeOptions) withDefaults() IterativeOptions {
	if o.MaxIterations == 0 {
		o.MaxIterations = 10_000
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-10
	}
	return o
}

// IterativeResult reports the outcome of an iterative solve.
type IterativeResult struct {
	X          Vector
	Iterations int
	Residual   float64 // final update ∞-norm
}

// GaussSeidel solves a·x = b with the Gauss–Seidel method. The matrix must
// be square with a non-zero diagonal; convergence is guaranteed only for
// diagonally-dominant or SPD systems, otherwise ErrNoConvergence may be
// returned. This is the software O(N²)-per-iteration baseline mentioned in
// §3.5 of the paper.
func GaussSeidel(a *Matrix, b Vector, opts IterativeOptions) (*IterativeResult, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("%w: %dx%d", ErrNotSquare, a.Rows(), a.Cols())
	}
	n := a.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("%w: rhs %d for %d unknowns", ErrDimensionMismatch, len(b), n)
	}
	o := opts.withDefaults()
	x := NewVector(n)
	if o.InitialGuess != nil {
		if len(o.InitialGuess) != n {
			return nil, fmt.Errorf("%w: guess %d for %d unknowns", ErrDimensionMismatch, len(o.InitialGuess), n)
		}
		copy(x, o.InitialGuess)
	}
	for i := 0; i < n; i++ {
		if a.At(i, i) == 0 {
			return nil, fmt.Errorf("%w: zero diagonal at %d", ErrSingular, i)
		}
	}
	for it := 1; it <= o.MaxIterations; it++ {
		var delta float64
		for i := 0; i < n; i++ {
			row := a.RawRow(i)
			s := b[i]
			for j, aij := range row {
				if j != i {
					s -= aij * x[j]
				}
			}
			nx := s / row[i]
			if d := math.Abs(nx - x[i]); d > delta {
				delta = d
			}
			x[i] = nx
		}
		if math.IsNaN(delta) || math.IsInf(delta, 0) {
			return nil, fmt.Errorf("%w: diverged at sweep %d", ErrNoConvergence, it)
		}
		if delta <= o.Tolerance {
			return &IterativeResult{X: x, Iterations: it, Residual: delta}, nil
		}
	}
	return nil, fmt.Errorf("%w: after %d sweeps", ErrNoConvergence, o.MaxIterations)
}

// Jacobi solves a·x = b with the Jacobi method. Same requirements and
// caveats as GaussSeidel; it converges more slowly but each sweep is
// embarrassingly parallel, which matches analog-hardware intuition.
func Jacobi(a *Matrix, b Vector, opts IterativeOptions) (*IterativeResult, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("%w: %dx%d", ErrNotSquare, a.Rows(), a.Cols())
	}
	n := a.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("%w: rhs %d for %d unknowns", ErrDimensionMismatch, len(b), n)
	}
	o := opts.withDefaults()
	x := NewVector(n)
	if o.InitialGuess != nil {
		if len(o.InitialGuess) != n {
			return nil, fmt.Errorf("%w: guess %d for %d unknowns", ErrDimensionMismatch, len(o.InitialGuess), n)
		}
		copy(x, o.InitialGuess)
	}
	for i := 0; i < n; i++ {
		if a.At(i, i) == 0 {
			return nil, fmt.Errorf("%w: zero diagonal at %d", ErrSingular, i)
		}
	}
	next := NewVector(n)
	for it := 1; it <= o.MaxIterations; it++ {
		var delta float64
		for i := 0; i < n; i++ {
			row := a.RawRow(i)
			s := b[i]
			for j, aij := range row {
				if j != i {
					s -= aij * x[j]
				}
			}
			next[i] = s / row[i]
			if d := math.Abs(next[i] - x[i]); d > delta {
				delta = d
			}
		}
		x, next = next, x
		if math.IsNaN(delta) || math.IsInf(delta, 0) {
			return nil, fmt.Errorf("%w: diverged at sweep %d", ErrNoConvergence, it)
		}
		if delta <= o.Tolerance {
			return &IterativeResult{X: x, Iterations: it, Residual: delta}, nil
		}
	}
	return nil, fmt.Errorf("%w: after %d sweeps", ErrNoConvergence, o.MaxIterations)
}

// Residual returns b - a·x, useful for verifying solver output.
func Residual(a *Matrix, x, b Vector) (Vector, error) {
	ax, err := a.MatVec(x)
	if err != nil {
		return nil, err
	}
	return b.Sub(ax)
}
