package linalg

import "math"

// EqTol reports whether a and b agree to within the mixed absolute/relative
// tolerance tol: |a−b| ≤ tol·(1+|a|+|b|) — the same scaling the solver's
// convergence and cross-check tests use. Any NaN operand compares unequal.
func EqTol(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// Identical reports exact floating-point equality. It is the one approved
// home for == between floats (enforced by memlpvet's floatcmp analyzer) and
// exists for operands that provably lie on the same finite grid — quantized
// programming targets, pinned fault conductances — where bit-exact identity
// is the intended question and a tolerance would be wrong. NaN compares
// unequal to itself.
//
//memlp:tolerance-helper
func Identical(a, b float64) bool { return a == b }
