package linalg

import (
	"fmt"
	"math"
)

// SolveStructured solves a·x = b exactly like SolveDense but first performs a
// sparsity-exploiting presolve: rows with at most two non-zeros are
// eliminated by exact Gaussian steps (each such elimination adds at most one
// fill-in entry per affected row), and the remaining dense core is solved by
// LU with partial pivoting. The result is algebraically identical to
// SolveDense up to floating-point rounding.
//
// The paper's extended PDIP matrix (Eq. 14a) is dominated by two-non-zero
// rows — the X/Z and Y/W complementarity rows and the Δu/Δv/Δp consistency
// rows — so this reduces an O((3n+3m+q)³) dense solve to an O((n+m)³) one,
// which is what makes the m = 1024 experiments tractable in simulation. The
// hardware, of course, solves the whole system in one analog settle;
// this routine only accelerates the simulation of that settle.
func SolveStructured(a *Matrix, b Vector) (Vector, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("%w: %dx%d", ErrNotSquare, a.Rows(), a.Cols())
	}
	n := a.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("%w: rhs %d for %d unknowns", ErrDimensionMismatch, len(b), n)
	}

	work := a.Clone()
	rhs := b.Clone()

	rowNNZ := make([]int, n)
	liveRow := make([]bool, n)
	liveCol := make([]bool, n)
	for i := 0; i < n; i++ {
		liveRow[i], liveCol[i] = true, true
		for _, v := range work.RawRow(i) {
			if v != 0 {
				rowNNZ[i]++
			}
		}
	}

	// Column occupancy: which live rows hold a non-zero in each column.
	// Kept as sets for O(1) add/remove during fill-in tracking.
	colRows := make([]map[int]struct{}, n)
	for j := 0; j < n; j++ {
		colRows[j] = make(map[int]struct{})
	}
	for i := 0; i < n; i++ {
		for j, v := range work.RawRow(i) {
			if v != 0 {
				colRows[j][i] = struct{}{}
			}
		}
	}

	type step struct {
		row, col int
	}
	var order []step

	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if rowNNZ[i] <= 2 {
			queue = append(queue, i)
		}
	}

	for len(queue) > 0 {
		r := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if !liveRow[r] || rowNNZ[r] > 2 {
			continue
		}
		// Select the pivot column: the largest-magnitude live entry.
		pc := -1
		var pv float64
		row := work.RawRow(r)
		for j, v := range row {
			if v != 0 && liveCol[j] && math.Abs(v) > math.Abs(pv) {
				pc, pv = j, v
			}
		}
		if pc < 0 {
			return nil, fmt.Errorf("%w: empty row %d in presolve", ErrSingular, r)
		}

		// Eliminate the pivot column from every other live row.
		for other := range colRows[pc] {
			if other == r || !liveRow[other] {
				continue
			}
			factor := work.At(other, pc) / pv
			orow := work.RawRow(other)
			for j, v := range row {
				if v == 0 || !liveCol[j] {
					continue
				}
				if j == pc {
					// Zero the pivot-column entry exactly; computing
					// old − factor·pv would leave rounding residue.
					orow[j] = 0
					rowNNZ[other]--
					continue
				}
				old := orow[j]
				nw := old - factor*v
				orow[j] = nw
				if old != 0 && nw == 0 {
					rowNNZ[other]--
					delete(colRows[j], other)
				} else if old == 0 && nw != 0 {
					rowNNZ[other]++
					colRows[j][other] = struct{}{}
				}
			}
			rhs[other] -= factor * rhs[r]
			if rowNNZ[other] <= 2 {
				queue = append(queue, other)
			}
		}

		liveRow[r] = false
		liveCol[pc] = false
		order = append(order, step{row: r, col: pc})
	}

	// Dense core solve over the remaining live rows/columns.
	var coreRows, coreCols []int
	for i := 0; i < n; i++ {
		if liveRow[i] {
			coreRows = append(coreRows, i)
		}
		if liveCol[i] {
			coreCols = append(coreCols, i)
		}
	}
	if len(coreRows) != len(coreCols) {
		return nil, fmt.Errorf("%w: presolve core is %dx%d", ErrSingular, len(coreRows), len(coreCols))
	}

	x := NewVector(n)
	if k := len(coreRows); k > 0 {
		core := NewMatrix(k, k)
		cb := NewVector(k)
		for ci, i := range coreRows {
			row := work.RawRow(i)
			for cj, j := range coreCols {
				core.Set(ci, cj, row[j])
			}
			cb[ci] = rhs[i]
		}
		sol, err := SolveDense(core, cb)
		if err != nil {
			return nil, err
		}
		for cj, j := range coreCols {
			x[j] = sol[cj]
		}
	}

	// Back-substitute the presolve eliminations in reverse order.
	for k := len(order) - 1; k >= 0; k-- {
		st := order[k]
		row := work.RawRow(st.row)
		s := rhs[st.row]
		for j, v := range row {
			if v != 0 && j != st.col {
				s -= v * x[j]
			}
		}
		x[st.col] = s / row[st.col]
	}
	return x, nil
}
