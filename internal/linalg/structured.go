package linalg

import (
	"fmt"
	"math"
)

// SolveStructured solves a·x = b exactly like SolveDense but first performs a
// sparsity-exploiting presolve: rows with at most two non-zeros are
// eliminated by exact Gaussian steps (each such elimination adds at most one
// fill-in entry per affected row), and the remaining dense core is solved by
// LU with partial pivoting. The result is algebraically identical to
// SolveDense up to floating-point rounding.
//
// The paper's extended PDIP matrix (Eq. 14a) is dominated by two-non-zero
// rows — the X/Z and Y/W complementarity rows and the Δu/Δv/Δp consistency
// rows — so this reduces an O((3n+3m+q)³) dense solve to an O((n+m)³) one,
// which is what makes the m = 1024 experiments tractable in simulation. The
// hardware, of course, solves the whole system in one analog settle;
// this routine only accelerates the simulation of that settle.
func SolveStructured(a *Matrix, b Vector) (Vector, error) {
	var w StructuredWorkspace
	x, err := w.Solve(a, b)
	if err != nil {
		return nil, err
	}
	return x, nil
}

// structuredStep records one presolve elimination (pivot row and column).
type structuredStep struct {
	row, col int
}

// StructuredWorkspace holds the scratch storage for SolveStructured so that
// repeated solves of same-shaped systems allocate (almost) nothing. A
// workspace is not safe for concurrent use; each goroutine needs its own.
type StructuredWorkspace struct {
	work     *Matrix
	rhs      Vector
	rowNNZ   []int
	liveRow  []bool
	liveCol  []bool
	colRows  [][]int32
	order    []structuredStep
	queue    []int
	coreRows []int
	coreCols []int
	core     *Matrix
	cb       Vector
	lu       *LU
	x        Vector
}

// prepare (re)sizes the scratch buffers for an n-unknown system, copying a
// and b into the mutable work storage.
func (w *StructuredWorkspace) prepare(a *Matrix, b Vector) {
	n := a.Rows()
	if w.work == nil || w.work.Rows() != n || w.work.Cols() != n {
		w.work = a.Clone()
		w.rhs = make(Vector, n)
		w.rowNNZ = make([]int, n)
		w.liveRow = make([]bool, n)
		w.liveCol = make([]bool, n)
		w.colRows = make([][]int32, n)
		w.x = make(Vector, n)
	} else {
		copy(w.work.data, a.data)
		clear(w.rowNNZ)
		for j := 0; j < n; j++ {
			w.colRows[j] = w.colRows[j][:0]
		}
	}
	copy(w.rhs, b)
	w.order = w.order[:0]
	w.queue = w.queue[:0]
	w.coreRows = w.coreRows[:0]
	w.coreCols = w.coreCols[:0]
}

// Solve solves a·x = b (see SolveStructured for the algorithm). The returned
// vector is owned by the workspace and overwritten by the next call.
func (w *StructuredWorkspace) Solve(a *Matrix, b Vector) (Vector, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("%w: %dx%d", ErrNotSquare, a.Rows(), a.Cols())
	}
	n := a.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("%w: rhs %d for %d unknowns", ErrDimensionMismatch, len(b), n)
	}

	w.prepare(a, b)
	work, rhs := w.work, w.rhs
	rowNNZ, liveRow, liveCol, colRows := w.rowNNZ, w.liveRow, w.liveCol, w.colRows

	for i := 0; i < n; i++ {
		liveRow[i], liveCol[i] = true, true
		for _, v := range work.RawRow(i) {
			if v != 0 {
				rowNNZ[i]++
			}
		}
	}

	// Column occupancy: which rows hold a non-zero in each column. Kept as
	// append-only row-index slices rather than sets: an entry whose value has
	// since become zero is a tombstone, detected exactly at use (eliminations
	// zero the pivot column with an assignment, never arithmetic, so the test
	// against 0 is reliable). Slices iterate in insertion order, which keeps
	// the elimination sequence — and therefore the floating-point result —
	// deterministic; a map's randomized iteration order here would perturb
	// results run to run and across fabric-pool replicas.
	for i := 0; i < n; i++ {
		for j, v := range work.RawRow(i) {
			if v != 0 {
				colRows[j] = append(colRows[j], int32(i))
			}
		}
	}

	for i := 0; i < n; i++ {
		if rowNNZ[i] <= 2 {
			w.queue = append(w.queue, i)
		}
	}

	for len(w.queue) > 0 {
		r := w.queue[len(w.queue)-1]
		w.queue = w.queue[:len(w.queue)-1]
		if !liveRow[r] || rowNNZ[r] > 2 {
			continue
		}
		// Select the pivot column: the largest-magnitude live entry.
		pc := -1
		var pv float64
		row := work.RawRow(r)
		for j, v := range row {
			if v != 0 && liveCol[j] && math.Abs(v) > math.Abs(pv) {
				pc, pv = j, v
			}
		}
		if pc < 0 {
			return nil, fmt.Errorf("%w: empty row %d in presolve", ErrSingular, r)
		}

		// Eliminate the pivot column from every other live row. Tombstoned
		// entries (rows whose pivot-column value has since been zeroed) and
		// duplicate entries (a cell that cycled zero→fill-in→zero→fill-in
		// appends once per revival) both read back exactly zero, so the skip
		// makes the walk idempotent.
		for _, o := range colRows[pc] {
			other := int(o)
			if other == r || !liveRow[other] || work.At(other, pc) == 0 {
				continue
			}
			factor := work.At(other, pc) / pv
			orow := work.RawRow(other)
			for j, v := range row {
				if v == 0 || !liveCol[j] {
					continue
				}
				if j == pc {
					// Zero the pivot-column entry exactly; computing
					// old − factor·pv would leave rounding residue.
					orow[j] = 0
					rowNNZ[other]--
					continue
				}
				old := orow[j]
				nw := old - factor*v
				orow[j] = nw
				if old != 0 && nw == 0 {
					// Leave the colRows entry as a tombstone.
					rowNNZ[other]--
				} else if old == 0 && nw != 0 {
					rowNNZ[other]++
					colRows[j] = append(colRows[j], o)
				}
			}
			rhs[other] -= factor * rhs[r]
			if rowNNZ[other] <= 2 {
				w.queue = append(w.queue, other)
			}
		}

		liveRow[r] = false
		liveCol[pc] = false
		w.order = append(w.order, structuredStep{row: r, col: pc})
	}

	// Dense core solve over the remaining live rows/columns.
	for i := 0; i < n; i++ {
		if liveRow[i] {
			w.coreRows = append(w.coreRows, i)
		}
		if liveCol[i] {
			w.coreCols = append(w.coreCols, i)
		}
	}
	if len(w.coreRows) != len(w.coreCols) {
		return nil, fmt.Errorf("%w: presolve core is %dx%d", ErrSingular, len(w.coreRows), len(w.coreCols))
	}

	x := w.x
	clear(x)
	if k := len(w.coreRows); k > 0 {
		if w.core == nil || w.core.Rows() != k || w.core.Cols() != k {
			w.core = NewMatrix(k, k)
			w.cb = make(Vector, k)
		}
		core, cb := w.core, w.cb
		for ci, i := range w.coreRows {
			row := work.RawRow(i)
			for cj, j := range w.coreCols {
				core.Set(ci, cj, row[j])
			}
			cb[ci] = rhs[i]
		}
		f, err := FactorizeInto(w.lu, core)
		if err != nil {
			return nil, err
		}
		w.lu = f
		if err := f.SolveInPlace(cb); err != nil {
			return nil, err
		}
		for cj, j := range w.coreCols {
			x[j] = cb[cj]
		}
	}

	// Back-substitute the presolve eliminations in reverse order.
	for k := len(w.order) - 1; k >= 0; k-- {
		st := w.order[k]
		row := work.RawRow(st.row)
		s := rhs[st.row]
		for j, v := range row {
			if v != 0 && j != st.col {
				s -= v * x[j]
			}
		}
		x[st.col] = s / row[st.col]
	}
	return x, nil
}
