// Package linalg provides the dense linear-algebra substrate used by every
// other package in memlp: vectors, row-major dense matrices, direct (LU) and
// iterative (Jacobi, Gauss–Seidel) solvers, determinants, and norms.
//
// The package depends only on the standard library. It is written for the
// moderate problem sizes of the paper's evaluation (systems up to a few
// thousand unknowns), favouring clarity and numerical robustness (partial
// pivoting, explicit singularity reporting) over cache-blocked performance.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when operand shapes are incompatible.
var ErrDimensionMismatch = errors.New("linalg: dimension mismatch")

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// VectorOf returns a vector with the given elements (copied).
func VectorOf(elems ...float64) Vector {
	v := make(Vector, len(elems))
	copy(v, elems)
	return v
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Len returns the number of elements.
func (v Vector) Len() int { return len(v) }

// Add returns v + w.
func (v Vector) Add(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("%w: add %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out, nil
}

// Sub returns v - w.
func (v Vector) Sub(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("%w: sub %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out, nil
}

// AxpyInPlace computes v += alpha*w in place.
func (v Vector) AxpyInPlace(alpha float64, w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("%w: axpy %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
	return nil
}

// Scale returns alpha*v.
func (v Vector) Scale(alpha float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = alpha * v[i]
	}
	return out
}

// Dot returns the inner product vᵀw.
func (v Vector) Dot(w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("%w: dot %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s, nil
}

// Norm2 returns the Euclidean norm, guarding against overflow.
func (v Vector) Norm2() float64 {
	var scale, ssq float64 = 0, 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute element, or 0 for an empty vector.
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Norm1 returns the sum of absolute elements.
func (v Vector) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Min returns the smallest element. It returns +Inf for an empty vector.
func (v Vector) Min() float64 {
	m := math.Inf(1)
	for _, x := range v {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element. It returns -Inf for an empty vector.
func (v Vector) Max() float64 {
	m := math.Inf(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// Fill sets every element to x.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// AllPositive reports whether every element is strictly positive.
func (v Vector) AllPositive() bool {
	for _, x := range v {
		if x <= 0 {
			return false
		}
	}
	return true
}

// AllFinite reports whether every element is finite (no NaN or Inf).
func (v Vector) AllFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// HadamardProduct returns the element-wise product v ∘ w.
func (v Vector) HadamardProduct(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("%w: hadamard %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] * w[i]
	}
	return out, nil
}

// Concat returns the concatenation of the given vectors.
func Concat(vs ...Vector) Vector {
	var n int
	for _, v := range vs {
		n += len(v)
	}
	out := make(Vector, 0, n)
	for _, v := range vs {
		out = append(out, v...)
	}
	return out
}
