// Package core implements the paper's contribution: two memristor
// crossbar-based linear-program solvers built on the primal–dual
// interior-point method.
//
//   - Solver (Algorithm 1, §3.2) reformulates the full Newton system as one
//     non-negative square system (Eq. 13–15) with compensation variables
//     Δu = −Δw, Δv = −Δz and Δp (mirrors of the negated columns of A/Aᵀ),
//     programs it on the analog fabric once, refreshes only the X/Y/Z/W
//     cells each iteration (O(N) writes), and performs both the residual
//     computation (one analog mat-vec plus the divide-by-2 fix-up of
//     Eq. 15b) and the Newton solve (one analog settle) on the fabric.
//
//   - LargeScaleSolver (Algorithm 2, §3.4) splits the Newton system into the
//     two smaller systems of Eq. 16, regularizes the singular block matrix
//     with small RU/RL fillers (Eq. 16c), uses a constant step length, and
//     re-solves once when convergence fails (§4.3's "double checking").
package core

import (
	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/linalg"
)

// Fabric is the analog compute substrate the solvers drive: a single
// memristor crossbar (*crossbar.Crossbar satisfies this) or a NoC-coordinated
// group of crossbars for matrices beyond a single array's size.
type Fabric interface {
	// Program writes a non-negative matrix into the fabric.
	Program(a *linalg.Matrix) error
	// UpdateRow rewrites one row's coefficients in place.
	UpdateRow(i int, row linalg.Vector) error
	// UpdateCellInPlace rewrites one coefficient with a single device write,
	// without re-balancing the rest of its row.
	UpdateCellInPlace(i, j int, value float64) error
	// MatVec multiplies the programmed matrix by v in the analog domain.
	MatVec(v linalg.Vector) (linalg.Vector, error)
	// MatVecResidual computes base − factor∘(programmedMatrix·v) with the
	// subtraction in the analog domain (summing amplifiers), so only the
	// residual passes the ADC. factor nil means all ones.
	MatVecResidual(base, v, factor linalg.Vector) (linalg.Vector, error)
	// Solve solves programmedMatrix · x = b in the analog domain.
	Solve(b linalg.Vector) (linalg.Vector, error)
	// Counters reports cumulative operation counts for cost estimation.
	Counters() crossbar.Counters
}

// Compile-time check: a single crossbar is a valid fabric.
var _ Fabric = (*crossbar.Crossbar)(nil)

// NoiseEpocher is implemented by fabrics whose stochastic write-noise state
// (cycle-noise stream, fault write-sequence counter, verify cache, drift
// clock) can be rebased to a per-problem epoch — see crossbar.SetNoiseEpoch.
// The fabric pool rebases each shard to the PROBLEM index before every batch
// member, which is what makes pooled results bit-identical regardless of the
// pool width or of which shard ran which problem. Fabrics without the method
// are assumed noise-free (the pool solves on them unrebased).
type NoiseEpocher interface {
	SetNoiseEpoch(epoch int64)
}

// Compile-time check: single crossbars support noise epochs.
var _ NoiseEpocher = (*crossbar.Crossbar)(nil)

// DeltaProgrammer is implemented by fabrics whose write path supports
// delta-programming (skipping refreshes whose coarse conductance level is
// unchanged — see crossbar.Config.DeltaWriteBits). The solver toggles it per
// problem: enabled for orthant LPs, disabled for conic problems, whose dense
// Nesterov–Todd scaling blocks cannot tolerate per-cell stale conductances.
// Fabrics without the method never skip, which is always correct.
type DeltaProgrammer interface {
	SetDeltaProgramming(on bool)
}

// Compile-time check: single crossbars support the delta toggle.
var _ DeltaProgrammer = (*crossbar.Crossbar)(nil)

// FabricFactory builds a fabric able to hold a size×size matrix. The solvers
// call it once per Solve with the extended system's dimension.
type FabricFactory func(size int) (Fabric, error)

// SingleCrossbarFactory returns a factory producing one crossbar per solve,
// configured from cfg but sized to the requested matrix.
func SingleCrossbarFactory(cfg crossbar.Config) FabricFactory {
	return func(size int) (Fabric, error) {
		c := cfg
		if c.Size < size {
			c.Size = size
		}
		return crossbar.New(c)
	}
}
