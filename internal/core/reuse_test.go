package core

import (
	"context"
	"errors"
	"testing"

	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
	"github.com/memlp/memlp/internal/trace"
)

// TestSolverReusesFabric pins the handle-reuse guarantee: a hundred
// sequential same-shape solves build the analog fabric exactly once, and a
// different-shape problem afterwards forces exactly one rebuild.
func TestSolverReusesFabric(t *testing.T) {
	builds := 0
	o := idealOpts()
	inner := o.Fabric
	o.Fabric = func(size int) (Fabric, error) {
		builds++
		return inner(size)
	}
	s, err := NewSolver(o)
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}

	p := mustProblem(t, linalg.VectorOf(3, 2),
		mustMatrix(t, [][]float64{{1, 1}, {1, 3}}),
		linalg.VectorOf(4, 6))
	for i := 0; i < 100; i++ {
		res, err := s.Solve(p)
		if err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
		if res.Status != lp.StatusOptimal {
			t.Fatalf("solve %d: status = %v, want optimal", i, res.Status)
		}
	}
	if builds != 1 {
		t.Errorf("fabric built %d times across 100 same-shape solves, want 1", builds)
	}

	// A larger extended system cannot fit the cached fabric: one rebuild.
	p2 := mustProblem(t, linalg.VectorOf(1, 1, 1),
		mustMatrix(t, [][]float64{{1, 1, 1}, {1, 2, 0}, {0, 1, 2}}),
		linalg.VectorOf(3, 2, 2))
	if _, err := s.Solve(p2); err != nil {
		t.Fatalf("resized solve: %v", err)
	}
	if builds != 2 {
		t.Errorf("fabric built %d times after a shape change, want 2", builds)
	}
}

// TestSolveContextCancelMidIteration cancels from inside the iteration loop
// (via the Trace hook) and checks the solver stops at the next loop-top
// check, reporting the partial iterate with StatusCanceled.
func TestSolveContextCancelMidIteration(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	o := idealOpts()
	o.Trace = &TraceOptions{OnRecord: func(r trace.Record) {
		if r.Event == trace.EventIteration && r.Iteration >= 1 {
			cancel()
		}
	}}
	s, err := NewSolver(o)
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	p := mustProblem(t, linalg.VectorOf(3, 2),
		mustMatrix(t, [][]float64{{1, 1}, {1, 3}}),
		linalg.VectorOf(4, 6))

	res, err := s.SolveContext(ctx, p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("canceled solve returned nil result")
	}
	if res.Status != lp.StatusCanceled {
		t.Errorf("status = %v, want canceled", res.Status)
	}
	if res.Iterations > 2 {
		t.Errorf("ran %d iterations after cancellation at iteration 1", res.Iterations)
	}
}
