package core

// Tests for the recovery-escalation ladder: rung selection, the digital
// optimality cross-check, and the StatusDegraded software-fallback contract.

import (
	"context"
	"testing"

	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
	"github.com/memlp/memlp/internal/memristor"
)

func TestNeedsEscalation(t *testing.T) {
	tests := []struct {
		status lp.Status
		faults bool
		want   bool
	}{
		{lp.StatusOptimal, false, false},
		{lp.StatusOptimal, true, false},
		{lp.StatusNumericalFailure, false, true},
		{lp.StatusNumericalFailure, true, true},
		{lp.StatusIterationLimit, true, true},
		{lp.StatusInfeasible, false, false},
		{lp.StatusInfeasible, true, true},
		{lp.StatusUnbounded, false, false},
		{lp.StatusUnbounded, true, true},
		{lp.StatusCanceled, true, false},
	}
	for _, tc := range tests {
		if got := needsEscalation(tc.status, tc.faults); got != tc.want {
			t.Errorf("needsEscalation(%v, faults=%v) = %v, want %v", tc.status, tc.faults, got, tc.want)
		}
	}
}

// TestAnalogAnswerConsistent exercises the digital optimality cross-check on
// a problem whose optimum is known exactly: maximize x s.t. x ≤ 1 has
// x* = 1, y* = 1, objective 1.
func TestAnalogAnswerConsistent(t *testing.T) {
	a, err := linalg.MatrixFromRows([][]float64{{1}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := lp.New("unit", linalg.Vector{1}, a, linalg.Vector{1})
	if err != nil {
		t.Fatal(err)
	}
	tol := 0.1
	tests := []struct {
		name string
		x, y linalg.Vector
		want bool
	}{
		{"true optimum", linalg.Vector{1}, linalg.Vector{1}, true},
		{"small analog error", linalg.Vector{0.98}, linalg.Vector{1.01}, true},
		{"suboptimal pair (dual infeasible)", linalg.Vector{0.2}, linalg.Vector{0.2}, false},
		{"gap violation", linalg.Vector{0.2}, linalg.Vector{1}, false},
		{"dimension mismatch skips check", linalg.Vector{1, 2}, linalg.Vector{1}, true},
	}
	for _, tc := range tests {
		res := &Result{X: tc.x, Y: tc.y}
		if got := analogAnswerConsistent(p, res, tol); got != tc.want {
			t.Errorf("%s: consistent = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestCrossCheckTolTracksAlpha(t *testing.T) {
	loose := crossCheckTol(Options{Alpha: 1.45})
	tight := crossCheckTol(Options{Alpha: 1.0})
	def := crossCheckTol(Options{})
	if loose <= tight {
		t.Errorf("tolerance does not grow with alpha: %v vs %v", loose, tight)
	}
	if def <= 0 || def >= 1 {
		t.Errorf("default tolerance %v implausible", def)
	}
}

// faultyCrossbarOptions builds Options whose fabric carries heavy stuck-cell
// defects — enough that the analog path cannot deliver the true optimum.
func faultyCrossbarOptions(density float64, rec *RecoveryPolicy) Options {
	return Options{
		Fabric: SingleCrossbarFactory(crossbar.Config{
			Faults: &memristor.FaultModel{
				StuckOnDensity:  density / 2,
				StuckOffDensity: density / 2,
				Seed:            17,
			},
		}),
		Recovery: rec,
	}
}

// TestLadderSoftwareFallbackDegraded drives the full ladder on a hopelessly
// defective fabric: the answer must come from rung 3, flagged Degraded, with
// the true optimum and populated diagnostics.
func TestLadderSoftwareFallbackDegraded(t *testing.T) {
	p := testProblem(t)
	sw, err := softwareSolve(context.Background(), p)
	if err != nil {
		t.Fatalf("software reference: %v", err)
	}

	for _, alg := range []string{"alg1", "alg2"} {
		t.Run(alg, func(t *testing.T) {
			opts := faultyCrossbarOptions(0.2, &RecoveryPolicy{Remap: true, SoftwareFallback: true})
			var res *Result
			if alg == "alg1" {
				s, err := NewSolver(opts)
				if err != nil {
					t.Fatalf("NewSolver: %v", err)
				}
				res, err = s.Solve(p)
				if err != nil {
					t.Fatalf("Solve: %v", err)
				}
			} else {
				s, err := NewLargeScaleSolver(opts)
				if err != nil {
					t.Fatalf("NewLargeScaleSolver: %v", err)
				}
				res, err = s.Solve(p)
				if err != nil {
					t.Fatalf("Solve: %v", err)
				}
			}
			if res.Status != lp.StatusDegraded {
				t.Fatalf("status = %v, want degraded at 20%% stuck density", res.Status)
			}
			d := res.Diagnostics
			if d == nil {
				t.Fatal("no diagnostics on recovered result")
			}
			if !d.SoftwareFallback || d.RecoveredBy != "software" {
				t.Errorf("diagnostics = %+v, want software rung", d)
			}
			if d.StuckOn+d.StuckOff == 0 {
				t.Error("census empty at 20% density")
			}
			if d.Attempts < 1 {
				t.Errorf("Attempts = %d, want ≥ 1", d.Attempts)
			}
			if diff := res.Objective - sw.Objective; diff > 1e-6 || diff < -1e-6 {
				t.Errorf("degraded objective %v != software %v", res.Objective, sw.Objective)
			}
		})
	}
}

// TestLadderWithoutFallbackStaysHonest: with rung 3 disabled the ladder may
// fail, but it must fail with a non-optimal status — never claim an optimum
// that flunks the digital cross-check.
func TestLadderWithoutFallbackStaysHonest(t *testing.T) {
	p := testProblem(t)
	sw, err := softwareSolve(context.Background(), p)
	if err != nil {
		t.Fatalf("software reference: %v", err)
	}
	s, err := NewSolver(faultyCrossbarOptions(0.2, &RecoveryPolicy{Remap: true}))
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	res, err := s.Solve(p)
	if err != nil {
		return // hard failure is honest
	}
	if res.Status == lp.StatusOptimal {
		rel := res.Objective - sw.Objective
		if rel < 0 {
			rel = -rel
		}
		if rel/(1+sw.Objective) > crossCheckTol(Options{}) {
			t.Errorf("claimed optimal with objective %v vs true %v", res.Objective, sw.Objective)
		}
	}
	if res.Diagnostics == nil {
		t.Error("recovery-policy solve without diagnostics")
	}
}

// TestLadderCleanFabricFirstTry: with a recovery policy but no defects the
// ladder accepts the first attempt and reports it as such.
func TestLadderCleanFabricFirstTry(t *testing.T) {
	s, err := NewSolver(Options{
		Fabric:   SingleCrossbarFactory(crossbar.Config{}),
		Recovery: &RecoveryPolicy{Remap: true, SoftwareFallback: true},
	})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	res, err := s.Solve(testProblem(t))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != lp.StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	d := res.Diagnostics
	if d == nil {
		t.Fatal("no diagnostics")
	}
	if d.Attempts != 1 || d.RecoveredBy != "" || d.Remapped || d.SoftwareFallback {
		t.Errorf("clean solve diagnostics = %+v, want untouched first try", d)
	}
}
