package core

import (
	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/trace"
)

// traceState owns one solve's trace recording: a bounded ring of records
// plus the cumulative write-retry and energy accumulators that turn the
// fabric's monotonic counters into per-problem running totals. A nil
// *traceState is valid and inert, so untraced solves pay only a nil check.
//
// The accumulators rebase on every attempt (beginAttempt) because the
// recovery ladder and Algorithm 2's double-check can swap in fresh fabrics
// whose counters restart at zero — a naive delta against the previous
// fabric's total would go negative.
type traceState struct {
	ring     *trace.Ring
	onRecord func(trace.Record)
	energy   func(crossbar.Counters) float64

	problem int
	epoch   int64
	attempt int
	last    crossbar.Counters
	retries int64
	written int64
	skipped int64
	joules  float64
}

// newTraceState builds the recorder for opts, or nil when tracing is off.
func newTraceState(opts Options) *traceState {
	if opts.Trace == nil {
		return nil
	}
	return &traceState{
		ring:     trace.NewRing(opts.Trace.Capacity),
		onRecord: opts.Trace.OnRecord,
		energy:   opts.EnergyModel,
	}
}

// active reports whether records should be assembled at all; call sites
// guard the fab.Counters() read and the record literal behind it.
//
//memlp:hotpath
func (t *traceState) active() bool { return t != nil }

// begin starts a new problem: the ring is cleared and the accumulators
// zeroed. problem and epoch stamp every subsequent record (the batch pool
// passes the problem index as both, per the PR 4 noise-epoch contract).
func (t *traceState) begin(problem int, epoch int64) {
	if t == nil {
		return
	}
	t.ring.Reset()
	t.problem, t.epoch = problem, epoch
	t.attempt = 0
	t.last = crossbar.Counters{}
	t.retries, t.written, t.skipped = 0, 0, 0
	t.joules = 0
}

// beginAttempt rebases the counter accumulators on the attempt's starting
// counters (captured BEFORE programming, so programming energy lands in
// the first iteration's running totals).
func (t *traceState) beginAttempt(cur crossbar.Counters) {
	if t == nil {
		return
	}
	t.attempt++
	t.last = cur
}

// note folds the counter delta since the last note (or beginAttempt) into
// the running write-retry and energy totals.
//
//memlp:hotpath
func (t *traceState) note(cur crossbar.Counters) {
	d := cur.Sub(t.last)
	t.last = cur
	t.retries += d.WriteRetries
	t.written += d.CellWrites
	t.skipped += d.CellSkips
	if t.energy != nil {
		t.joules += t.energy(d)
	}
}

// emit stamps rec with the problem/attempt context and running totals and
// records it. Callers must have checked active().
//
//memlp:hotpath
func (t *traceState) emit(rec trace.Record) {
	rec.Problem = t.problem
	rec.NoiseEpoch = t.epoch
	rec.Attempt = t.attempt
	rec.WriteRetries = t.retries
	rec.CellsWritten = t.written
	rec.CellsSkipped = t.skipped
	rec.EnergyJoules = t.joules
	t.ring.Emit(rec)
	if t.onRecord != nil {
		t.onRecord(rec)
	}
}

// event records a recovery-ladder escalation (resolve/remap/software),
// stamped with the status of the attempt that triggered it.
func (t *traceState) event(ev, status string) {
	if t == nil {
		return
	}
	t.emit(trace.Record{Event: ev, Status: status})
}

// finish emits the terminal done record — its fields are the final Result
// values, with retries/energy priced from the result's own counters (the
// exact per-solve totals, including any post-iteration operations the
// running notes missed) — and returns the trajectory snapshot.
func (t *traceState) finish(res *Result) []trace.Record {
	if t == nil {
		return nil
	}
	rec := trace.Record{
		Event:               trace.EventDone,
		Status:              res.Status.String(),
		Iteration:           res.Iterations,
		DualityGap:          res.DualityGap,
		PrimalInfeasibility: res.PrimalInfeasibility,
		DualInfeasibility:   res.DualInfeasibility,
		ConeInfeasibility:   res.ConeInfeasibility,
		Objective:           res.Objective,
		Problem:             t.problem,
		NoiseEpoch:          t.epoch,
		Attempt:             t.attempt,
		WriteRetries:        res.Counters.WriteRetries,
		CellsWritten:        res.Counters.CellWrites,
		CellsSkipped:        res.Counters.CellSkips,
	}
	if t.energy != nil {
		rec.EnergyJoules = t.energy(res.Counters)
	}
	t.ring.Emit(rec)
	if t.onRecord != nil {
		t.onRecord(rec)
	}
	return t.ring.Snapshot()
}
