package core

import (
	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/linalg"
)

// idealFabric performs exact digital linear algebra; it isolates algorithm
// behaviour from analog non-idealities in tests.
type idealFabric struct {
	matrix   *linalg.Matrix
	counters crossbar.Counters
}

func newIdealFabric(int) (Fabric, error) { return &idealFabric{}, nil }

func (f *idealFabric) Program(a *linalg.Matrix) error {
	f.matrix = a.Clone()
	f.counters.CellWrites += int64(a.Rows() * a.Cols())
	return nil
}

func (f *idealFabric) UpdateRow(i int, row linalg.Vector) error {
	if f.matrix == nil {
		return crossbar.ErrNotProgrammed
	}
	if i < 0 || i >= f.matrix.Rows() || len(row) != f.matrix.Cols() {
		return linalg.ErrDimensionMismatch
	}
	for j, v := range row {
		f.matrix.Set(i, j, v)
	}
	f.counters.CellWrites += int64(len(row))
	return nil
}

func (f *idealFabric) UpdateCellInPlace(i, j int, value float64) error {
	if f.matrix == nil {
		return crossbar.ErrNotProgrammed
	}
	if i < 0 || i >= f.matrix.Rows() || j < 0 || j >= f.matrix.Cols() {
		return linalg.ErrDimensionMismatch
	}
	f.matrix.Set(i, j, value)
	f.counters.CellWrites++
	return nil
}

func (f *idealFabric) MatVec(v linalg.Vector) (linalg.Vector, error) {
	if f.matrix == nil {
		return nil, crossbar.ErrNotProgrammed
	}
	f.counters.MatVecOps++
	return f.matrix.MatVec(v)
}

func (f *idealFabric) MatVecResidual(base, v, factor linalg.Vector) (linalg.Vector, error) {
	t, err := f.MatVec(v)
	if err != nil {
		return nil, err
	}
	out := linalg.NewVector(len(base))
	for i := range out {
		ti := t[i]
		if factor != nil {
			ti *= factor[i]
		}
		out[i] = base[i] - ti
	}
	return out, nil
}

func (f *idealFabric) Solve(b linalg.Vector) (linalg.Vector, error) {
	if f.matrix == nil {
		return nil, crossbar.ErrNotProgrammed
	}
	f.counters.SolveOps++
	out, err := linalg.SolveStructured(f.matrix, b)
	if err != nil {
		return nil, crossbar.ErrSingular
	}
	return out, nil
}

func (f *idealFabric) Counters() crossbar.Counters { return f.counters }
