package core

import (
	"errors"
	"math"
	"testing"

	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
	"github.com/memlp/memlp/internal/pdip"
)

// batchProblems builds k instances sharing A with varying b and c.
func batchProblems(t *testing.T, k int) []*lp.Problem {
	t.Helper()
	base, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 12, Seed: 3})
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	out := make([]*lp.Problem, 0, k)
	for i := 0; i < k; i++ {
		b := base.B.Clone()
		c := base.C.Clone()
		for j := range b {
			b[j] *= 1 + 0.1*float64(i)
		}
		for j := range c {
			c[j] *= 1 + 0.05*float64(i)
		}
		p, err := lp.New(base.Name, c, base.A, b)
		if err != nil {
			t.Fatalf("lp.New: %v", err)
		}
		out = append(out, p)
	}
	return out
}

func TestSolveBatchMatchesIndividualSolves(t *testing.T) {
	problems := batchProblems(t, 4)
	s, err := NewSolver(Options{Fabric: SingleCrossbarFactory(crossbar.Config{})})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	results, err := s.SolveBatch(problems)
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	if len(results) != len(problems) {
		t.Fatalf("results = %d, want %d", len(results), len(problems))
	}
	ref, err := pdip.New(pdip.WithBackend(pdip.NewtonReduced))
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Status != lp.StatusOptimal {
			t.Errorf("instance %d: status %v", i, res.Status)
			continue
		}
		want, err := ref.Solve(problems[i])
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(res.Objective-want.Objective) / (1 + math.Abs(want.Objective)); rel > 0.05 {
			t.Errorf("instance %d: objective %v, want %v", i, res.Objective, want.Objective)
		}
	}
}

func TestSolveBatchAmortizesProgramming(t *testing.T) {
	// Large instance, short iteration budget: programming cost dominates,
	// so the amortization is visible in the write counters.
	base, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 48, Seed: 5})
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	problems := make([]*lp.Problem, 3)
	for i := range problems {
		b := base.B.Clone()
		for j := range b {
			b[j] *= 1 + 0.05*float64(i)
		}
		p, err := lp.New(base.Name, base.C, base.A, b)
		if err != nil {
			t.Fatal(err)
		}
		problems[i] = p
	}
	s, err := NewSolver(Options{
		Fabric: SingleCrossbarFactory(crossbar.Config{}),
		Tol:    lp.Tolerances{MaxIterations: 5},
	})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	results, err := s.SolveBatch(problems)
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	// The counters are cumulative on the shared fabric: the marginal writes
	// of instance 3 must be far below the initial programming cost
	// (O(N) refreshes per iteration vs nnz programming).
	first := results[0].Counters.CellWrites
	marginal := results[2].Counters.CellWrites - results[1].Counters.CellWrites
	if marginal >= first/2 {
		t.Errorf("batch did not amortize: first solve %d writes, marginal %d", first, marginal)
	}
}

func TestSolveBatchValidation(t *testing.T) {
	s, err := NewSolver(Options{Fabric: newIdealFabric})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	if _, err := s.SolveBatch(nil); !errors.Is(err, lp.ErrInvalid) {
		t.Errorf("empty batch: %v", err)
	}
	problems := batchProblems(t, 2)
	other, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 12, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SolveBatch([]*lp.Problem{problems[0], other}); !errors.Is(err, lp.ErrInvalid) {
		t.Errorf("mismatched A: %v", err)
	}
	bad := &lp.Problem{A: problems[0].A, C: linalg.VectorOf(1), B: problems[0].B}
	if _, err := s.SolveBatch([]*lp.Problem{problems[0], bad}); !errors.Is(err, lp.ErrInvalid) {
		t.Errorf("invalid problem: %v", err)
	}
}
