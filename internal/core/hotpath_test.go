package core

import (
	"math/rand"
	"testing"

	"github.com/memlp/memlp/internal/linalg"
)

// TestIterationKernelAllocations pins the //memlp:hotpath contract for the
// PDIP per-iteration kernels at runtime: once their inputs exist, the
// annotated leaf functions must not allocate. The memlpvet hotpath analyzer
// enforces the same property at the source level.
func TestIterationKernelAllocations(t *testing.T) {
	const n = 64
	r := rand.New(rand.NewSource(3))
	vec := func() linalg.Vector {
		v := linalg.NewVector(n)
		for i := range v {
			v[i] = r.Float64() + 0.5
		}
		return v
	}
	x, y, w, z := vec(), vec(), vec(), vec()
	dx, dy := vec(), vec()
	for i := range dx {
		dx[i] -= 1 // mix of signs for the ratio test
	}
	pairs := [][2]linalg.Vector{{x, dx}, {y, dy}}
	flat := []linalg.Vector{x, dx, y, dy}
	vs := []linalg.Vector{x, y}

	kernels := []struct {
		name string
		run  func()
	}{
		{"dualityGap", func() { _ = dualityGap(x, z, y, w) }},
		{"stepLength", func() { _ = stepLength(0.9, pairs) }},
		{"axpyAll", func() { axpyAll(1e-9, flat...) }},
		{"clampPositive", func() { clampPositive(vs...) }},
		{"slewLimit", func() { _ = slewLimit(x, dx) }},
		{"normInfRange", func() { _ = normInfRange(x, 8, 16) }},
	}
	for _, k := range kernels {
		if allocs := testing.AllocsPerRun(100, k.run); allocs > 0 {
			t.Errorf("%s allocates %.0f per call, want 0", k.name, allocs)
		}
	}
}
