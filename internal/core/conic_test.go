package core

import (
	"errors"
	"math"
	"testing"

	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
)

// socpTestProblem is max x₀+x₁ s.t. x₀+x₁ ≤ 5 (orthant, loose) and ‖x‖ ≤ 3
// (soc slack (3, −x₀, −x₁)), x ≥ 0. The cone binds: optimum 3√2 at
// x₀ = x₁ = 3/√2.
func socpTestProblem(t *testing.T) (*lp.Problem, float64) {
	t.Helper()
	a := mustMatrix(t, [][]float64{
		{1, 1},
		{0, 0},
		{1, 0},
		{0, 1},
	})
	p, err := lp.NewConic("socp-circle", linalg.VectorOf(1, 1), a,
		linalg.VectorOf(5, 3, 0, 0),
		[]lp.Cone{{Type: lp.ConeNonNeg, Dim: 1}, {Type: lp.ConeSOC, Dim: 3}})
	if err != nil {
		t.Fatalf("NewConic: %v", err)
	}
	return p, 3 * math.Sqrt2
}

// TestAnalogSolveSOCP drives the SOCP through the full extended-matrix
// crossbar path on a variation-free fabric: the NT blocks ride the same
// Eq. 14a mapping as the LP diagonals.
func TestAnalogSolveSOCP(t *testing.T) {
	p, want := socpTestProblem(t)
	s, err := NewSolver(crossbarOpts(t, 0, 1))
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	res, err := s.Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != lp.StatusOptimal {
		t.Fatalf("status = %v, want optimal (pinf=%g dinf=%g gap=%g cinf=%g after %d iters)",
			res.Status, res.PrimalInfeasibility, res.DualInfeasibility,
			res.DualityGap, res.ConeInfeasibility, res.Iterations)
	}
	if math.Abs(res.Objective-want) > 5e-3*(1+want) {
		t.Errorf("objective = %v, want %v", res.Objective, want)
	}
	if res.ConeInfeasibility > 1e-3 {
		t.Errorf("cone infeasibility %v at the optimum", res.ConeInfeasibility)
	}
	ok, err := p.IsFeasible(res.X, 1e-3)
	if err != nil || !ok {
		t.Errorf("returned point infeasible: ok=%v err=%v", ok, err)
	}
}

// TestAnalogSolveGeneratedSOCPs cross-checks the analog answers against the
// software PDIP on generated instances.
func TestAnalogSolveGeneratedSOCPs(t *testing.T) {
	for _, cfg := range []lp.SOCGenConfig{
		{GenConfig: lp.GenConfig{Constraints: 8, Seed: 3}},
		{GenConfig: lp.GenConfig{Constraints: 12, Seed: 11}, Blocks: 2, BlockDim: 3},
	} {
		p, err := lp.GenerateFeasibleSOCP(cfg)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		want := referenceObjective(t, p)
		s, err := NewSolver(crossbarOpts(t, 0, 1))
		if err != nil {
			t.Fatalf("NewSolver: %v", err)
		}
		res, err := s.Solve(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if res.Status != lp.StatusOptimal {
			t.Errorf("%s: status = %v, want optimal", p.Name, res.Status)
			continue
		}
		if math.Abs(res.Objective-want) > 1e-2*(1+math.Abs(want)) {
			t.Errorf("%s: objective %v, software reference %v", p.Name, res.Objective, want)
		}
	}
}

// TestAnalogConicLPDegenerateIdentical pins the refactor's core promise on
// the analog path: a pure LP carrying an explicit all-orthant cone list must
// produce bit-identical iterates to the nil-cones problem — same extended
// matrix, same µ rule, same step lengths.
func TestAnalogConicLPDegenerateIdentical(t *testing.T) {
	base, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 9, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	tagged := base.Clone()
	tagged.Cones = []lp.Cone{{Type: lp.ConeNonNeg, Dim: base.NumConstraints()}}

	solve := func(p *lp.Problem) *Result {
		o := crossbarOpts(t, 0, 1)
		o.Trace = &TraceOptions{}
		s, err := NewSolver(o)
		if err != nil {
			t.Fatalf("NewSolver: %v", err)
		}
		res, err := s.Solve(p)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		return res
	}
	r1, r2 := solve(base), solve(tagged)
	if r1.Iterations != r2.Iterations || r1.Status != r2.Status {
		t.Fatalf("trajectories diverge: %d/%v vs %d/%v",
			r1.Iterations, r1.Status, r2.Iterations, r2.Status)
	}
	for i := range r1.X {
		if r1.X[i] != r2.X[i] {
			t.Fatalf("x[%d] differs bitwise: %v vs %v", i, r1.X[i], r2.X[i])
		}
	}
	if len(r1.Trace) != len(r2.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(r1.Trace), len(r2.Trace))
	}
	for i := range r1.Trace {
		if r1.Trace[i] != r2.Trace[i] {
			t.Fatalf("trace[%d] differs: %+v vs %+v", i, r1.Trace[i], r2.Trace[i])
		}
	}
}

// TestConicRejectedWhereUnsupported pins the per-algorithm conic surface:
// Algorithm 2 and the batch pool refuse SOC blocks with the sentinel error.
func TestConicRejectedWhereUnsupported(t *testing.T) {
	p, _ := socpTestProblem(t)
	ls, err := NewLargeScaleSolver(idealOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Solve(p); !errors.Is(err, lp.ErrConicUnsupported) {
		t.Errorf("large-scale Solve error = %v, want ErrConicUnsupported", err)
	}
	s, err := NewSolver(idealOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SolveBatch([]*lp.Problem{p}); !errors.Is(err, lp.ErrConicUnsupported) {
		t.Errorf("SolveBatch error = %v, want ErrConicUnsupported", err)
	}
}

// TestAnalogSOCPWithFaultRecovery exercises the recovery ladder on a conic
// problem: the software fallback rung must carry the conic solve.
func TestAnalogSOCPWithFaultRecovery(t *testing.T) {
	p, want := socpTestProblem(t)
	o := crossbarOpts(t, 0, 1)
	o.Recovery = &RecoveryPolicy{Remap: true, SoftwareFallback: true}
	s, err := NewSolver(o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != lp.StatusOptimal && res.Status != lp.StatusDegraded {
		t.Fatalf("status = %v, want optimal or degraded", res.Status)
	}
	if math.Abs(res.Objective-want) > 5e-3*(1+want) {
		t.Errorf("objective = %v, want %v", res.Objective, want)
	}
}
