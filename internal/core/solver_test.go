package core

import (
	"errors"
	"math"
	"testing"

	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
	"github.com/memlp/memlp/internal/pdip"
	"github.com/memlp/memlp/internal/variation"
)

func mustMatrix(t *testing.T, rows [][]float64) *linalg.Matrix {
	t.Helper()
	m, err := linalg.MatrixFromRows(rows)
	if err != nil {
		t.Fatalf("MatrixFromRows: %v", err)
	}
	return m
}

func mustProblem(t *testing.T, c linalg.Vector, a *linalg.Matrix, b linalg.Vector) *lp.Problem {
	t.Helper()
	p, err := lp.New("test", c, a, b)
	if err != nil {
		t.Fatalf("lp.New: %v", err)
	}
	return p
}

// idealOpts uses the exact-math fabric.
func idealOpts() Options {
	return Options{Fabric: newIdealFabric}
}

// crossbarOpts uses a real simulated crossbar with the given variation. The
// feasibility relaxation α scales with the variation magnitude, since the
// solution satisfies the perturbed constraints, which differ from the true
// ones by up to the variation (§3.2's "process variation could severely
// affect constraints").
func crossbarOpts(t *testing.T, varPct float64, seed int64) Options {
	t.Helper()
	cfg := crossbar.Config{}
	if varPct > 0 {
		vm, err := variation.NewPaperModel(varPct, seed)
		if err != nil {
			t.Fatalf("NewPaperModel: %v", err)
		}
		cfg.Variation = vm
	}
	return Options{Fabric: SingleCrossbarFactory(cfg), Alpha: 1.05 + 2*varPct}
}

func referenceObjective(t *testing.T, p *lp.Problem) float64 {
	t.Helper()
	s, err := pdip.New()
	if err != nil {
		t.Fatalf("pdip.New: %v", err)
	}
	res, err := s.Solve(p)
	if err != nil {
		t.Fatalf("reference Solve: %v", err)
	}
	if res.Status != lp.StatusOptimal {
		t.Fatalf("reference status = %v", res.Status)
	}
	return res.Objective
}

func TestOptionsValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Options)
	}{
		{"alpha below 1", func(o *Options) { o.Alpha = 0.5 }},
		{"bad constant step", func(o *Options) { o.ConstantStep = 1.5 }},
		{"bad regularization", func(o *Options) { o.Regularization = 2 }},
		{"negative resolves", func(o *Options) { o.MaxResolves = -1 }},
		{"bad delta", func(o *Options) { o.Tol.Delta = 3 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			o := idealOpts()
			tc.mutate(&o)
			if _, err := NewSolver(o); err == nil {
				t.Error("NewSolver accepted invalid options")
			}
			if _, err := NewLargeScaleSolver(o); err == nil {
				t.Error("NewLargeScaleSolver accepted invalid options")
			}
		})
	}
}

func TestExtendedSystemShape(t *testing.T) {
	// A = [[1, -2], [-3, 4]]: both columns and both rows contain negatives,
	// so q = 2 (x mirrors) + 2 (y mirrors) = 4.
	p := mustProblem(t, linalg.VectorOf(1, 1),
		mustMatrix(t, [][]float64{{1, -2}, {-3, 4}}), linalg.VectorOf(5, 5))
	ones := onesVector(2)
	ext, err := newExtended(p, ones, ones, ones, ones)
	if err != nil {
		t.Fatalf("newExtended: %v", err)
	}
	if ext.q != 4 {
		t.Errorf("q = %d, want 4", ext.q)
	}
	wantSize := 3*2 + 3*2 + 4
	if ext.size != wantSize {
		t.Errorf("size = %d, want %d", ext.size, wantSize)
	}
	if !ext.matrix.AllNonNegative() {
		t.Error("extended matrix has negative entries")
	}
}

func TestExtendedMatVecIdentity(t *testing.T) {
	// Eq. 15b: M·[x,y,w,z,u,v,p] must equal
	// [Ax+w; Aᵀy−z; 2XZe; 2YWe; 0; 0; 0].
	p := mustProblem(t, linalg.VectorOf(1, 2),
		mustMatrix(t, [][]float64{{1, -2}, {-3, 4}, {0.5, 1}}), linalg.VectorOf(5, 5, 5))
	x := linalg.VectorOf(1.5, 2.5)
	y := linalg.VectorOf(0.5, 1.5, 2)
	w := linalg.VectorOf(3, 1, 2)
	z := linalg.VectorOf(0.25, 0.75)
	ext, err := newExtended(p, x, y, w, z)
	if err != nil {
		t.Fatalf("newExtended: %v", err)
	}
	s := ext.stateVector(x, y, w, z)
	got, err := ext.matrix.MatVec(s)
	if err != nil {
		t.Fatalf("MatVec: %v", err)
	}

	ax, err := p.A.MatVec(x)
	if err != nil {
		t.Fatal(err)
	}
	aty, err := p.A.MatVecTranspose(y)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		want := ax[i] + w[i]
		if math.Abs(got[ext.rowR1(i)]-want) > 1e-12 {
			t.Errorf("r1[%d] = %v, want %v", i, got[ext.rowR1(i)], want)
		}
	}
	for i := 0; i < 2; i++ {
		want := aty[i] - z[i]
		if math.Abs(got[ext.rowR2(i)]-want) > 1e-12 {
			t.Errorf("r2[%d] = %v, want %v", i, got[ext.rowR2(i)], want)
		}
	}
	for i := 0; i < 2; i++ {
		want := 2 * x[i] * z[i]
		if math.Abs(got[ext.rowR3(i)]-want) > 1e-12 {
			t.Errorf("r3[%d] = %v, want %v", i, got[ext.rowR3(i)], want)
		}
	}
	for i := 0; i < 3; i++ {
		want := 2 * y[i] * w[i]
		if math.Abs(got[ext.rowR4(i)]-want) > 1e-12 {
			t.Errorf("r4[%d] = %v, want %v", i, got[ext.rowR4(i)], want)
		}
	}
	for i := 3*3 + 3*2 - 3 - 2; i < len(got); i++ {
		// r5..r7 must vanish identically.
		if math.Abs(got[i]) > 1e-12 {
			t.Errorf("consistency row %d = %v, want 0", i, got[i])
		}
	}
}

func TestSolverIdealFabricKnownLPs(t *testing.T) {
	tests := []struct {
		name string
		p    *lp.Problem
		opt  float64
	}{
		{
			name: "corner",
			p: mustProblem(t, linalg.VectorOf(3, 2),
				mustMatrix(t, [][]float64{{1, 1}, {1, 3}}), linalg.VectorOf(4, 6)),
			opt: 12,
		},
		{
			name: "negative-coeffs",
			p: mustProblem(t, linalg.VectorOf(1, -1),
				mustMatrix(t, [][]float64{{-1, 1}, {1, 1}}), linalg.VectorOf(1, 3)),
			opt: 3,
		},
		{
			name: "vanderbei",
			p: mustProblem(t, linalg.VectorOf(5, 4, 3),
				mustMatrix(t, [][]float64{{2, 3, 1}, {4, 1, 2}, {3, 4, 2}}),
				linalg.VectorOf(5, 11, 8)),
			opt: 13,
		},
	}
	s, err := NewSolver(idealOpts())
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			res, err := s.Solve(tc.p)
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if res.Status != lp.StatusOptimal {
				t.Fatalf("status = %v (%+v)", res.Status, res)
			}
			if math.Abs(res.Objective-tc.opt) > 1e-3*(1+math.Abs(tc.opt)) {
				t.Errorf("objective = %v, want %v", res.Objective, tc.opt)
			}
		})
	}
}

func TestSolverIdealMatchesSoftwarePDIP(t *testing.T) {
	s, err := NewSolver(idealOpts())
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	for seed := int64(0); seed < 8; seed++ {
		p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 12, Seed: seed})
		if err != nil {
			t.Fatalf("GenerateFeasible: %v", err)
		}
		want := referenceObjective(t, p)
		res, err := s.Solve(p)
		if err != nil {
			t.Fatalf("seed %d: Solve: %v", seed, err)
		}
		if res.Status != lp.StatusOptimal {
			t.Fatalf("seed %d: status = %v", seed, res.Status)
		}
		if rel := math.Abs(res.Objective-want) / (1 + math.Abs(want)); rel > 1e-3 {
			t.Errorf("seed %d: objective %v, want %v (rel %v)", seed, res.Objective, want, rel)
		}
	}
}

func TestSolverCrossbarNoVariation(t *testing.T) {
	s, err := NewSolver(crossbarOpts(t, 0, 0))
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	for seed := int64(0); seed < 4; seed++ {
		p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 9, Seed: seed})
		if err != nil {
			t.Fatalf("GenerateFeasible: %v", err)
		}
		want := referenceObjective(t, p)
		res, err := s.Solve(p)
		if err != nil {
			t.Fatalf("seed %d: Solve: %v", seed, err)
		}
		if res.Status != lp.StatusOptimal {
			t.Fatalf("seed %d: status = %v (iter %d, gap %v)", seed, res.Status, res.Iterations, res.DualityGap)
		}
		if rel := math.Abs(res.Objective-want) / (1 + math.Abs(want)); rel > 0.05 {
			t.Errorf("seed %d: objective %v, want %v (rel %v)", seed, res.Objective, want, rel)
		}
	}
}

func TestSolverCrossbarWithVariation(t *testing.T) {
	// Paper Fig. 5(a): inaccuracy stays bounded (≈10%) even at 20%
	// variation. Average over seeds: individual instances fluctuate.
	for _, varPct := range []float64{0.05, 0.10, 0.20} {
		var relSum float64
		const trials = 4
		for seed := int64(0); seed < trials; seed++ {
			s, err := NewSolver(crossbarOpts(t, varPct, 42+seed))
			if err != nil {
				t.Fatalf("NewSolver: %v", err)
			}
			p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 12, Seed: seed})
			if err != nil {
				t.Fatalf("GenerateFeasible: %v", err)
			}
			want := referenceObjective(t, p)
			res, err := s.Solve(p)
			if err != nil {
				t.Fatalf("var %v: Solve: %v", varPct, err)
			}
			if res.Status != lp.StatusOptimal {
				t.Errorf("var %v seed %d: status = %v", varPct, seed, res.Status)
				continue
			}
			relSum += math.Abs(res.Objective-want) / (1 + math.Abs(want))
		}
		if mean := relSum / trials; mean > 0.12 {
			t.Errorf("var %v: mean relative error %v, want ≤ 0.12", varPct, mean)
		}
	}
}

func TestSolverDetectsInfeasible(t *testing.T) {
	s, err := NewSolver(idealOpts())
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	for seed := int64(0); seed < 5; seed++ {
		p, err := lp.GenerateInfeasible(lp.GenConfig{Constraints: 9, Seed: seed})
		if err != nil {
			t.Fatalf("GenerateInfeasible: %v", err)
		}
		res, err := s.Solve(p)
		if err != nil {
			t.Fatalf("seed %d: Solve: %v", seed, err)
		}
		if res.Status != lp.StatusInfeasible && res.Status != lp.StatusNumericalFailure {
			t.Errorf("seed %d: status = %v, want infeasible (or numerical-failure)", seed, res.Status)
		}
	}
}

func TestSolverCountsOperations(t *testing.T) {
	s, err := NewSolver(idealOpts())
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 9, Seed: 1})
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	res, err := s.Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Counters.CellWrites == 0 || res.Counters.MatVecOps == 0 || res.Counters.SolveOps == 0 {
		t.Errorf("counters not populated: %+v", res.Counters)
	}
	if res.Counters.MatVecOps < int64(res.Iterations) {
		t.Errorf("MatVecOps %d < iterations %d", res.Counters.MatVecOps, res.Iterations)
	}
	if res.MatrixSize == 0 {
		t.Error("MatrixSize not reported")
	}
}

func TestSolverInvalidProblem(t *testing.T) {
	s, err := NewSolver(idealOpts())
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	if _, err := s.Solve(&lp.Problem{}); !errors.Is(err, lp.ErrInvalid) {
		t.Errorf("Solve(invalid) = %v, want ErrInvalid", err)
	}
}
