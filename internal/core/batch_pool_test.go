package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
	"github.com/memlp/memlp/internal/variation"
)

// noisyPoolOptions builds solver options with full stochastic hardware
// (static variation plus cycle-to-cycle write noise) and a replica factory
// that gives each shard its own variation-model clone at the base seed —
// the configuration under which pool determinism is hardest to get right.
func noisyPoolOptions(t *testing.T, parallelism int) Options {
	t.Helper()
	vm, err := variation.NewPaperModel(0.08, 42)
	if err != nil {
		t.Fatalf("NewPaperModel: %v", err)
	}
	cfg := crossbar.Config{Variation: vm, CycleNoise: 0.5}
	return Options{
		Fabric:      SingleCrossbarFactory(cfg),
		Parallelism: parallelism,
		ReplicaFabric: func(size int) (Fabric, error) {
			c := cfg
			c.Variation = vm.Clone()
			if c.Size < size {
				c.Size = size
			}
			return crossbar.New(c)
		},
	}
}

// TestSolveBatchDeterministicAcrossParallelism pins the pool's hard
// contract: with stochastic hardware enabled, batch results are bit-identical
// for every pool width, because each problem's noise draws are derived from
// (seed, problem index) rather than from whichever shard runs it.
func TestSolveBatchDeterministicAcrossParallelism(t *testing.T) {
	problems := batchProblems(t, 8)
	var ref []*Result
	for _, par := range []int{1, 2, 8} {
		s, err := NewSolver(noisyPoolOptions(t, par))
		if err != nil {
			t.Fatalf("NewSolver(par=%d): %v", par, err)
		}
		results, err := s.SolveBatch(problems)
		if err != nil {
			t.Fatalf("SolveBatch(par=%d): %v", par, err)
		}
		if len(results) != len(problems) {
			t.Fatalf("par=%d: %d results, want %d", par, len(results), len(problems))
		}
		if ref == nil {
			ref = results
			continue
		}
		for i, res := range results {
			want := ref[i]
			if res.Status != want.Status {
				t.Errorf("par=%d problem %d: status %v, want %v", par, i, res.Status, want.Status)
			}
			if !linalg.Identical(res.Objective, want.Objective) {
				t.Errorf("par=%d problem %d: objective %v, want bit-identical %v", par, i, res.Objective, want.Objective)
			}
			if res.Iterations != want.Iterations {
				t.Errorf("par=%d problem %d: iterations %d, want %d", par, i, res.Iterations, want.Iterations)
			}
			for _, vec := range []struct {
				name     string
				got, ref linalg.Vector
			}{{"X", res.X, want.X}, {"Y", res.Y, want.Y}, {"W", res.W, want.W}, {"Z", res.Z, want.Z}} {
				if len(vec.got) != len(vec.ref) {
					t.Fatalf("par=%d problem %d: %s length %d, want %d", par, i, vec.name, len(vec.got), len(vec.ref))
				}
				for j := range vec.got {
					if !linalg.Identical(vec.got[j], vec.ref[j]) {
						t.Fatalf("par=%d problem %d: %s[%d] = %v, want bit-identical %v", par, i, vec.name, j, vec.got[j], vec.ref[j])
					}
				}
			}
		}
	}
}

// TestSolveBatchPoolStats checks the BatchStats roll-up: attached to the
// first result only, with the replica count, the combined programming cost,
// and a shard-solve split that accounts for every problem.
func TestSolveBatchPoolStats(t *testing.T) {
	problems := batchProblems(t, 6)
	s, err := NewSolver(noisyPoolOptions(t, 3))
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	results, err := s.SolveBatch(problems)
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	stats := results[0].Batch
	if stats == nil {
		t.Fatal("first result has no BatchStats")
	}
	if stats.Replicas != 3 {
		t.Errorf("Replicas = %d, want 3", stats.Replicas)
	}
	if stats.Programming.CellWrites == 0 {
		t.Error("combined programming cost reports zero cell writes")
	}
	if got := len(stats.ShardSolves); got != 3 {
		t.Fatalf("len(ShardSolves) = %d, want 3", got)
	}
	total := 0
	for _, n := range stats.ShardSolves {
		total += n
	}
	if total != len(problems) {
		t.Errorf("ShardSolves sums to %d, want %d", total, len(problems))
	}
	for i, res := range results[1:] {
		if res.Batch != nil {
			t.Errorf("result %d carries BatchStats; only the first should", i+1)
		}
	}
	// The first result's counters must include all replicas' programming.
	if results[0].Counters.CellWrites < stats.Programming.CellWrites {
		t.Errorf("first result counters (%d writes) below combined programming (%d)",
			results[0].Counters.CellWrites, stats.Programming.CellWrites)
	}
}

// TestSolveBatchWidthClamped checks the pool never builds more replicas than
// there are problems: the programming cost of an idle shard buys nothing.
func TestSolveBatchWidthClamped(t *testing.T) {
	problems := batchProblems(t, 2)
	s, err := NewSolver(noisyPoolOptions(t, 8))
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	results, err := s.SolveBatch(problems)
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	if got := results[0].Batch.Replicas; got != 2 {
		t.Errorf("Replicas = %d, want clamp to batch size 2", got)
	}
}

// TestNegativeParallelismRejected checks option validation.
func TestNegativeParallelismRejected(t *testing.T) {
	_, err := NewSolver(Options{Fabric: newIdealFabric, Parallelism: -1})
	if !errors.Is(err, lp.ErrInvalid) {
		t.Errorf("err = %v, want lp.ErrInvalid", err)
	}
}

// TestSolveBatchSharedMatrixPointer pins the validation fast path: problems
// sharing the literal matrix object must validate without an element-wise
// compare, and problems with equal-but-distinct matrices must still pass.
func TestSolveBatchSharedMatrixPointer(t *testing.T) {
	problems := batchProblems(t, 3)
	// batchProblems shares base.A across instances already; also add a
	// cloned-A instance to cover the slow path in the same batch.
	clone, err := lp.New(problems[0].Name, problems[0].C, problems[0].A.Clone(), problems[0].B)
	if err != nil {
		t.Fatal(err)
	}
	if err := validateBatch(append(problems, clone)); err != nil {
		t.Errorf("validateBatch: %v", err)
	}
}

// BenchmarkBatchValidationShared vs ...Cloned measure the satellite
// optimization: pointer-identical constraint matrices short-circuit the
// O(mn)-per-problem equality check.
func benchmarkBatchValidation(b *testing.B, share bool) {
	base, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 64, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	problems := make([]*lp.Problem, 64)
	for i := range problems {
		a := base.A
		if !share {
			a = base.A.Clone()
		}
		p, err := lp.New(base.Name, base.C, a, base.B)
		if err != nil {
			b.Fatal(err)
		}
		problems[i] = p
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := validateBatch(problems); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchValidationShared(b *testing.B) { benchmarkBatchValidation(b, true) }
func BenchmarkBatchValidationCloned(b *testing.B) { benchmarkBatchValidation(b, false) }

// TestSolveBatchPooledCancelShape pins the pooled cancellation contract at
// the core layer: an interrupted batch returns a prefix of completed results
// with the first interrupted problem's StatusCanceled partial last.
func TestSolveBatchPooledCancelShape(t *testing.T) {
	problems := batchProblems(t, 256)
	s, err := NewSolver(Options{Fabric: SingleCrossbarFactory(crossbar.Config{}), Parallelism: 4})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	results, err := s.SolveBatchContext(ctx, problems)
	if err == nil {
		t.Skip("batch completed before cancellation landed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) == len(problems) {
		t.Fatal("full batch returned despite cancellation error")
	}
	for i, res := range results {
		last := i == len(results)-1
		if last && res.Status != lp.StatusCanceled {
			t.Errorf("last result: status %v, want %v", res.Status, lp.StatusCanceled)
		}
		if !last && res.Status == lp.StatusCanceled {
			t.Errorf("result %d: canceled partial before the end of the prefix", i)
		}
	}
}
