package core

import (
	"math/rand"
	"testing"

	"github.com/memlp/memlp/internal/cone"
	"github.com/memlp/memlp/internal/linalg"
)

// TestConicKernelAllocations pins the //memlp:hotpath contract for the conic
// per-iteration kernels: once the extended system and its NT scalings exist,
// the SOC-aware refresh, residual, step-length and clamp paths must not
// allocate. Complements TestIterationKernelAllocations for the LP kernels
// and the memlpvet hotpath analyzer's source-level check.
func TestConicKernelAllocations(t *testing.T) {
	p, _ := socpTestProblem(t)
	n, m := p.NumVariables(), p.NumConstraints()
	x, z := onesVector(n), onesVector(n)
	y, w := onesVector(m), onesVector(m)
	blocks := p.SOCBlocks()
	cone.InitInterior(y, blocks)
	cone.InitInterior(w, blocks)
	ext, err := newExtended(p, x, y, w, z)
	if err != nil {
		t.Fatalf("newExtended: %v", err)
	}
	if !ext.conic() {
		t.Fatal("extended system is not conic")
	}

	r := rand.New(rand.NewSource(5))
	dvec := func(k int) linalg.Vector {
		v := linalg.NewVector(k)
		for i := range v {
			v[i] = r.Float64() - 0.5
		}
		return v
	}
	dx, dz := dvec(n), dvec(n)
	dy, dw := dvec(m), dvec(m)
	res := linalg.NewVector(m)

	kernels := []struct {
		name string
		run  func()
	}{
		{"updateScalings", func() { _ = ext.updateScalings(w, y) }},
		{"fillDiagRows", func() { ext.fillDiagRows(x, y, w, z) }},
		{"slackConeInf", func() { _ = ext.slackConeInf(res, w) }},
		{"stepLengthConic", func() { _ = stepLengthConic(0.9, ext, x, dx, y, dy, w, dw, z, dz) }},
		{"ratioConePinned", func() { _ = ratioConePinned(0, y, dy, ext.blocks) }},
		{"ratioOrthant", func() { _ = ratioOrthant(0, y, dy, ext.socRow) }},
		{"ratioFull", func() { _ = ratioFull(0, x, dx) }},
		{"clampOrthantRows", func() { clampOrthantRows(y, ext.socRow) }},
		{"coneClampInterior", func() { cone.ClampInterior(y, ext.blocks, 1e-12) }},
	}
	for _, k := range kernels {
		if allocs := testing.AllocsPerRun(100, k.run); allocs > 0 {
			t.Errorf("%s allocates %.0f per call, want 0", k.name, allocs)
		}
	}
}
