package core

// Tests for the solver-side trace recorder: the zero-allocation contract of
// the hot-path recording helpers, and the cancel-mid-recovery-ladder
// regression (a canceled ladder must still return its partial result with
// diagnostics and the trace recorded so far).

import (
	"context"
	"errors"
	"testing"

	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/lp"
	"github.com/memlp/memlp/internal/trace"
)

// TestTraceRecordingAllocations pins the //memlp:hotpath contract for the
// recording helpers at runtime: with the ring sink and an energy model
// attached, note+emit — the full per-iteration tracing work — must not
// allocate. This is what makes WithTrace safe to leave on in production.
func TestTraceRecordingAllocations(t *testing.T) {
	ts := newTraceState(Options{
		Trace: &TraceOptions{Capacity: 64},
		EnergyModel: func(c crossbar.Counters) float64 {
			return 1e-12 * float64(c.MatVecOps+c.SolveOps)
		},
	})
	ts.begin(0, 0)
	ts.beginAttempt(crossbar.Counters{})
	cur := crossbar.Counters{MatVecOps: 3, SolveOps: 1, WriteRetries: 2}
	if allocs := testing.AllocsPerRun(200, func() {
		if ts.active() {
			ts.note(cur)
			ts.emit(trace.Record{
				Event:               trace.EventIteration,
				Iteration:           7,
				Mu:                  0.05,
				DualityGap:          0.2,
				PrimalInfeasibility: 0.1,
				DualInfeasibility:   0.3,
				Theta:               0.34,
			})
		}
	}); allocs > 0 {
		t.Errorf("ring-sink trace recording allocates %.0f per iteration, want 0", allocs)
	}
}

// TestTraceRecordingInertWhenDisabled: a nil traceState (tracing off) must
// also stay allocation-free and not panic — untraced solves share the same
// call sites.
func TestTraceRecordingInertWhenDisabled(t *testing.T) {
	ts := newTraceState(Options{})
	if ts != nil {
		t.Fatal("newTraceState without Trace options should be nil")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if ts.active() {
			t.Error("nil traceState reports active")
		}
	}); allocs > 0 {
		t.Errorf("disabled tracing allocates %.0f per iteration, want 0", allocs)
	}
}

// TestLadderCancelMidRecovery is the regression for cancellation landing
// between recovery-ladder rungs: the caller must get the wrapped context
// error together with the partial Result — still carrying Diagnostics for
// the attempts that did run and the trace recorded so far, including the
// escalation event that was in flight.
func TestLadderCancelMidRecovery(t *testing.T) {
	p := testProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	opts := faultyCrossbarOptions(0.2, &RecoveryPolicy{Remap: true, SoftwareFallback: true})
	opts.MaxResolves = 2
	opts.Trace = &TraceOptions{OnRecord: func(rec trace.Record) {
		// Cancel the moment the ladder announces its first escalation, so
		// the next attempt starts on a dead context.
		if rec.Event == trace.EventResolve || rec.Event == trace.EventRemap {
			cancel()
		}
	}}

	s, err := NewLargeScaleSolver(opts)
	if err != nil {
		t.Fatalf("NewLargeScaleSolver: %v", err)
	}
	res, err := s.SolveContext(ctx, p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("canceled ladder returned no partial result")
	}
	if res.Status != lp.StatusCanceled {
		t.Errorf("partial status = %v, want %v", res.Status, lp.StatusCanceled)
	}
	d := res.Diagnostics
	if d == nil {
		t.Fatal("canceled ladder dropped Diagnostics")
	}
	if d.Attempts < 1 {
		t.Errorf("Attempts = %d, want ≥ 1", d.Attempts)
	}
	escalations := 0
	for _, rec := range res.Trace {
		if rec.Event == trace.EventResolve || rec.Event == trace.EventRemap {
			escalations++
		}
	}
	if escalations == 0 {
		t.Error("trace lost the in-flight escalation event")
	}
	if len(res.Trace) == 0 || res.Trace[len(res.Trace)-1].Event != trace.EventDone {
		t.Error("canceled trace does not end with a done record")
	}
}

// TestDiagnosticsEnergyOnCleanSolve pins the satellite fix: a clean
// first-try solve with recovery configured must come back with Diagnostics
// attached and the modeled energy populated — not just recovered solves.
func TestDiagnosticsEnergyOnCleanSolve(t *testing.T) {
	p := testProblem(t)
	opts := Options{
		Fabric:   SingleCrossbarFactory(crossbar.Config{}),
		Recovery: &RecoveryPolicy{},
		EnergyModel: func(c crossbar.Counters) float64 {
			return 1e-12 * float64(c.MatVecOps+c.SolveOps+c.CellWrites)
		},
	}
	s, err := NewSolver(opts)
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	res, err := s.Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != lp.StatusOptimal {
		t.Fatalf("status = %v, want optimal on a clean fabric", res.Status)
	}
	d := res.Diagnostics
	if d == nil {
		t.Fatal("clean solve with recovery configured has no Diagnostics")
	}
	if d.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1 on a first-try solve", d.Attempts)
	}
	if d.RecoveredBy != "" {
		t.Errorf("RecoveredBy = %q, want empty on a first-try solve", d.RecoveredBy)
	}
	if d.EnergyJoules <= 0 {
		t.Errorf("EnergyJoules = %v, want > 0 on a successful solve", d.EnergyJoules)
	}
}
