package core

import (
	"errors"
	"math"
	"testing"

	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
)

// TestWarmStartRepeatSolve pins the hot-path contract on the serial
// Algorithm 1 path: re-solving the same problem seeded from its own optimum
// must stay optimal and converge in no more iterations than the cold solve.
func TestWarmStartRepeatSolve(t *testing.T) {
	p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 12, Seed: 7})
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	s, err := NewSolver(idealOpts())
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	cold, err := s.Solve(p)
	if err != nil {
		t.Fatalf("cold Solve: %v", err)
	}
	if cold.Status != lp.StatusOptimal {
		t.Fatalf("cold status = %v, want optimal", cold.Status)
	}
	s.SetWarmStart(cold.X, cold.Y)
	warm, err := s.Solve(p)
	if err != nil {
		t.Fatalf("warm Solve: %v", err)
	}
	if warm.Status != lp.StatusOptimal {
		t.Fatalf("warm status = %v, want optimal", warm.Status)
	}
	if warm.Iterations > cold.Iterations {
		t.Errorf("warm solve took %d iterations, cold took %d — warm start made it worse",
			warm.Iterations, cold.Iterations)
	}
	if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
		t.Errorf("warm objective %v, cold %v", warm.Objective, cold.Objective)
	}
}

// TestWarmStartDimensionMismatch: warm vectors sized for a different problem
// must fail the solve loudly with lp.ErrInvalid, not silently seed garbage.
func TestWarmStartDimensionMismatch(t *testing.T) {
	p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 10, Seed: 5})
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	s, err := NewSolver(idealOpts())
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	s.SetWarmStart(linalg.NewVector(3), linalg.NewVector(4))
	if _, err := s.Solve(p); !errors.Is(err, lp.ErrInvalid) {
		t.Fatalf("mismatched warm dims: err = %v, want lp.ErrInvalid", err)
	}
	// Clearing the warm state restores normal solving.
	s.SetWarmStart(nil, nil)
	res, err := s.Solve(p)
	if err != nil {
		t.Fatalf("Solve after clear: %v", err)
	}
	if res.Status != lp.StatusOptimal {
		t.Errorf("status after clear = %v, want optimal", res.Status)
	}
}

// TestWarmStartNonFiniteFallsBackCold: a degraded previous solution (NaN/Inf
// iterate, e.g. from a failed attempt) must be ignored, producing exactly the
// cold-start trajectory rather than an error or a poisoned iterate.
func TestWarmStartNonFiniteFallsBackCold(t *testing.T) {
	p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 10, Seed: 11})
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	s, err := NewSolver(idealOpts())
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	cold, err := s.Solve(p)
	if err != nil {
		t.Fatalf("cold Solve: %v", err)
	}
	n, m := p.NumVariables(), p.NumConstraints()
	badX := linalg.NewVector(n)
	badX.Fill(1)
	badX[0] = math.NaN()
	badY := linalg.NewVector(m)
	badY.Fill(1)
	badY[m-1] = math.Inf(1)
	s.SetWarmStart(badX, badY)
	warm, err := s.Solve(p)
	if err != nil {
		t.Fatalf("Solve with non-finite warm vectors: %v", err)
	}
	if warm.Status != cold.Status || warm.Iterations != cold.Iterations {
		t.Errorf("non-finite warm start changed the trajectory: status %v/%d iters, cold %v/%d",
			warm.Status, warm.Iterations, cold.Status, cold.Iterations)
	}
	if !linalg.Identical(warm.Objective, cold.Objective) {
		t.Errorf("objective %v, want bit-identical cold %v", warm.Objective, cold.Objective)
	}
}

// TestWarmStartConic: warm-starting a conic solve must keep the seeded slacks
// strictly interior to the second-order cone (ClampInterior) and still reach
// the optimum.
func TestWarmStartConic(t *testing.T) {
	p, want := socpTestProblem(t)
	s, err := NewSolver(crossbarOpts(t, 0, 1))
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	cold, err := s.Solve(p)
	if err != nil {
		t.Fatalf("cold Solve: %v", err)
	}
	if cold.Status != lp.StatusOptimal {
		t.Fatalf("cold status = %v, want optimal", cold.Status)
	}
	s.SetWarmStart(cold.X, cold.Y)
	warm, err := s.Solve(p)
	if err != nil {
		t.Fatalf("warm Solve: %v", err)
	}
	if warm.Status != lp.StatusOptimal {
		t.Fatalf("warm status = %v, want optimal (cinf=%g after %d iters)",
			warm.Status, warm.ConeInfeasibility, warm.Iterations)
	}
	if math.Abs(warm.Objective-want) > 5e-3*(1+want) {
		t.Errorf("warm objective = %v, want %v", warm.Objective, want)
	}
}

// TestWarmStartBatchDeterministicAcrossParallelism extends the pool's
// bit-identity contract to warm-started solves: the warm vectors are read-only
// shared state, so every width must still produce identical bits under full
// stochastic hardware.
func TestWarmStartBatchDeterministicAcrossParallelism(t *testing.T) {
	problems := batchProblems(t, 8)

	// A prior solution of the first instance seeds every later batch.
	seedSolver, err := NewSolver(noisyPoolOptions(t, 1))
	if err != nil {
		t.Fatalf("NewSolver(seed): %v", err)
	}
	prior, err := seedSolver.Solve(problems[0])
	if err != nil {
		t.Fatalf("seed Solve: %v", err)
	}

	var ref []*Result
	for _, par := range []int{1, 2, 8} {
		s, err := NewSolver(noisyPoolOptions(t, par))
		if err != nil {
			t.Fatalf("NewSolver(par=%d): %v", par, err)
		}
		s.SetWarmStart(prior.X, prior.Y)
		results, err := s.SolveBatch(problems)
		if err != nil {
			t.Fatalf("SolveBatch(par=%d): %v", par, err)
		}
		if ref == nil {
			ref = results
			continue
		}
		for i, res := range results {
			want := ref[i]
			if res.Status != want.Status {
				t.Errorf("par=%d problem %d: status %v, want %v", par, i, res.Status, want.Status)
			}
			if res.Iterations != want.Iterations {
				t.Errorf("par=%d problem %d: iterations %d, want %d", par, i, res.Iterations, want.Iterations)
			}
			if !linalg.Identical(res.Objective, want.Objective) {
				t.Errorf("par=%d problem %d: objective %v, want bit-identical %v", par, i, res.Objective, want.Objective)
			}
			for j := range want.X {
				if !linalg.Identical(res.X[j], want.X[j]) {
					t.Fatalf("par=%d problem %d: X[%d] = %v, want bit-identical %v", par, i, j, res.X[j], want.X[j])
				}
			}
			for j := range want.Y {
				if !linalg.Identical(res.Y[j], want.Y[j]) {
					t.Fatalf("par=%d problem %d: Y[%d] = %v, want bit-identical %v", par, i, j, res.Y[j], want.Y[j])
				}
			}
		}
	}
}
