package core

import (
	"context"
	"fmt"
	"math"

	"github.com/memlp/memlp/internal/cone"
	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/lp"
	"github.com/memlp/memlp/internal/pdip"
	"github.com/memlp/memlp/internal/trace"
)

// RecoveryPolicy configures the escalation ladder that generalizes the
// paper's §4.3 "double checking scheme". The paper retries a failed
// Algorithm 2 solve once on freshly written coefficients; with permanent
// defects in the array a rewrite is not enough, so the ladder adds two more
// rungs:
//
//	rung 1 — re-solve on the same fabric (fresh writes, fresh variation
//	         draws), up to Options.MaxResolves extra attempts;
//	rung 2 — remap the programmed matrix onto a different physical region
//	         of the array, avoiding the stuck cells found by the census,
//	         then re-solve once;
//	rung 3 — abandon the analog path and solve in software (dense-LU PDIP);
//	         an optimal answer from this rung is reported as
//	         lp.StatusDegraded, because it is correct but was not computed
//	         in-memory.
//
// The zero value (no policy) preserves the legacy behavior exactly:
// Algorithm 1 fails fast, Algorithm 2 re-solves per MaxResolves.
type RecoveryPolicy struct {
	// Remap enables rung 2 on fabrics that support it (see Remapper).
	Remap bool
	// SoftwareFallback enables rung 3.
	SoftwareFallback bool
}

// Diagnostics reports what the fault-recovery machinery observed and did
// during one solve. It is attached to the Result whenever a RecoveryPolicy
// is configured.
type Diagnostics struct {
	// StuckOn / StuckOff count the defective devices inside the fabric's
	// mapped region (post-program census; zero when the fabric cannot
	// report faults).
	StuckOn  int
	StuckOff int
	// WriteRetries is the number of write-verify corrective pulses consumed
	// across all attempts of this solve.
	WriteRetries int64
	// Attempts is the total number of analog solve attempts, across all
	// rungs (1 for a clean first-try solve).
	Attempts int
	// Remapped records that rung 2 moved the mapping to a new origin.
	Remapped bool
	// SoftwareFallback records that rung 3 ran.
	SoftwareFallback bool
	// RecoveredBy names the rung that produced the returned result:
	// "" (first attempt), "resolve", "remap", or "software".
	RecoveredBy string
	// EnergyJoules is the modeled energy spent across all attempts of this
	// solve (zero unless Options.EnergyModel is configured). It is
	// populated on successful first-try solves too, not only on recovered
	// or degraded ones.
	EnergyJoules float64
}

// FaultReporter is implemented by fabrics that can census their mapped
// region for permanent defects (a *crossbar.Crossbar with a fault model).
type FaultReporter interface {
	FaultCensus() crossbar.FaultCensus
}

// Remapper is implemented by fabrics that can move the programmed matrix to
// a different physical region to dodge stuck cells. RemapAvoidingFaults
// returns true when the mapping moved; the fabric is then unprogrammed and
// the next Program call writes the new region.
type Remapper interface {
	RemapAvoidingFaults() bool
}

// Compile-time checks: a single crossbar supports the full ladder.
var (
	_ FaultReporter = (*crossbar.Crossbar)(nil)
	_ Remapper      = (*crossbar.Crossbar)(nil)
)

// ladderFuncs adapts one solver (Algorithm 1 or 2) to the shared ladder.
type ladderFuncs struct {
	// attempt runs one full analog solve attempt. Same contract as
	// solveOnce: (result, ctxErr, hard error).
	attempt func(ctx context.Context) (*Result, error, error)
	// census tallies stuck cells across the solver's fabric(s); nil when no
	// fabric is built yet or none can report.
	census func() crossbar.FaultCensus
	// remap asks the fabric(s) to move off their defects; nil or returning
	// false skips rung 2.
	remap func() bool
	// resetFresh drops cached fabrics so the next attempt rebuilds them
	// (Algorithm 2's fresh-fabric double-check semantics); may be nil.
	resetFresh func()
	// event records a ladder escalation in the iteration trace; nil-safe
	// (a traceState method value with a nil receiver is inert).
	event func(ev, status string)
}

// analogAnswerConsistent is the digital half of the double-check scheme,
// extended from primal feasibility (the α-check the solvers already run) to
// optimality. A stuck cell perturbs the realized constraint matrix, so the
// analog loop can converge — and pass the α-check — on the optimum of the
// WRONG problem. Optimality of the true problem is cheap to check digitally
// (O(mn), versus the O(N³)-equivalent solve): the claimed primal/dual pair
// must close the duality gap, cᵀx ≈ bᵀy, and satisfy dual feasibility
// Aᵀy ≥ c, both against the TRUE coefficients and within the analog
// tolerance. For conic problems the dual cone membership y ∈ K is checked
// as well (K is self-dual, so the same Dist test applies); this is the
// conic generalization of the duality cross-check. Dimension mismatches
// skip the check (nothing to compare).
func analogAnswerConsistent(p *lp.Problem, res *Result, tol float64) bool {
	m, n := p.A.Rows(), p.A.Cols()
	if len(res.X) != n || len(res.Y) != m {
		return true
	}
	for _, blk := range p.SOCBlocks() {
		yb := res.Y[blk.Start : blk.Start+blk.Dim]
		var nrm float64
		for _, v := range yb {
			nrm += v * v
		}
		if cone.Dist(yb) > tol*(1+math.Sqrt(nrm)) {
			return false
		}
	}
	primal, err := p.Objective(res.X)
	if err != nil {
		return true
	}
	var dual float64
	for i, y := range res.Y {
		dual += p.B[i] * y
	}
	if math.Abs(primal-dual) > tol*(1+math.Abs(primal)+math.Abs(dual)) {
		return false
	}
	for j := 0; j < n; j++ {
		var aty float64
		for i := 0; i < m; i++ {
			aty += p.A.At(i, j) * res.Y[i]
		}
		if aty < p.C[j]-tol*(1+math.Abs(p.C[j])) {
			return false
		}
	}
	return true
}

// crossCheckTol derives the optimality-check tolerance from the solve's
// α-relaxation: under variation v, α ≈ 1+2v and the optimum legitimately
// moves by O(v), so the gap check must not reject honest analog answers.
func crossCheckTol(opts Options) float64 {
	alpha := opts.Alpha
	if alpha < 1 {
		alpha = 1.05
	}
	return 0.05 + 2*(alpha-1)
}

// needsEscalation decides whether a finished attempt's outcome warrants
// climbing to the next rung. Hard non-answers always escalate. Infeasible
// and unbounded classifications escalate only when the fabric is known to
// carry defects: a stuck cell perturbs the realized constraint matrix, so a
// "diverged" dual ray may be an artifact of the faults rather than a
// property of the problem — silently trusting it would be a wrong answer
// with a confident label. On a defect-free fabric the classification stands.
func needsEscalation(status lp.Status, faultsPresent bool) bool {
	switch status {
	case lp.StatusNumericalFailure, lp.StatusIterationLimit:
		return true
	case lp.StatusInfeasible, lp.StatusUnbounded:
		return faultsPresent
	}
	return false
}

// runRecoveryLadder drives the escalation ladder for one solve. The caller
// holds the solver's mutex and has validated the problem.
func runRecoveryLadder(ctx context.Context, p *lp.Problem, opts Options, f ladderFuncs) (*Result, error) {
	rec := opts.Recovery
	diag := &Diagnostics{}
	var counters crossbar.Counters
	var last *Result

	finish := func(res *Result, rung string) *Result {
		diag.RecoveredBy = rung
		diag.WriteRetries = counters.WriteRetries
		if opts.EnergyModel != nil {
			diag.EnergyJoules = opts.EnergyModel(counters)
		}
		res.Diagnostics = diag
		res.Resolves = diag.Attempts - 1
		return res
	}

	// emitEvent records an escalation in the iteration trace, labeled with
	// the status of the attempt that forced it.
	emitEvent := func(ev string, prev *Result) {
		if f.event == nil {
			return
		}
		status := ""
		if prev != nil {
			status = prev.Status.String()
		}
		f.event(ev, status)
	}

	attemptOnce := func() (*Result, error, error) {
		res, ctxErr, err := f.attempt(ctx)
		if res != nil {
			diag.Attempts++
			counters = counters.Add(res.Counters)
			res.Counters = counters
		}
		return res, ctxErr, err
	}

	refreshCensus := func() {
		if f.census == nil {
			return
		}
		c := f.census()
		diag.StuckOn, diag.StuckOff = c.StuckOn, c.StuckOff
	}

	// acceptable reports whether an attempt's outcome ends the ladder: the
	// status must not warrant escalation, and on a fabric with known defects
	// an "optimal" claim must additionally survive the digital optimality
	// cross-check — a fault-perturbed matrix can yield a confidently wrong
	// optimum that the α-check alone cannot see.
	acceptable := func(res *Result) bool {
		faults := diag.StuckOn+diag.StuckOff > 0
		if needsEscalation(res.Status, faults) {
			return false
		}
		if res.Status == lp.StatusOptimal && faults {
			return analogAnswerConsistent(p, res, crossCheckTol(opts))
		}
		return true
	}

	// Rung 1: the initial attempt plus up to MaxResolves re-solves on the
	// same (re-written) fabric.
	for attempt := 0; attempt <= opts.MaxResolves; attempt++ {
		// Cancellation during a solve is handled inside f.attempt; this
		// check closes the gap between re-solves, so a cancelled caller is
		// never charged another full attempt.
		if last != nil && ctx.Err() != nil {
			return finish(last, ""), ctx.Err()
		}
		if attempt > 0 {
			emitEvent(trace.EventResolve, last)
		}
		res, ctxErr, err := attemptOnce()
		if err != nil {
			return nil, err
		}
		refreshCensus()
		if ctxErr != nil {
			return finish(res, ""), ctxErr
		}
		if acceptable(res) {
			rung := ""
			if attempt > 0 {
				rung = "resolve"
			}
			return finish(res, rung), nil
		}
		last = res
		if f.resetFresh != nil && attempt < opts.MaxResolves {
			f.resetFresh()
		}
	}

	// Rung 2: remap away from the stuck cells and try once more.
	if rec.Remap && f.remap != nil && f.remap() {
		diag.Remapped = true
		emitEvent(trace.EventRemap, last)
		res, ctxErr, err := attemptOnce()
		if err != nil {
			return nil, err
		}
		refreshCensus()
		if ctxErr != nil {
			return finish(res, "remap"), ctxErr
		}
		if acceptable(res) {
			return finish(res, "remap"), nil
		}
		last = res
	}

	// Rung 3: software fallback. Its classification is exact (no analog
	// noise), so infeasible/unbounded verdicts are reported directly; an
	// optimum is honest about its provenance via StatusDegraded.
	if rec.SoftwareFallback {
		diag.SoftwareFallback = true
		emitEvent(trace.EventSoftware, last)
		res, err := softwareSolve(ctx, p)
		if err != nil {
			if res == nil {
				return nil, err
			}
			res.Counters = counters
			return finish(res, "software"), err
		}
		if res.Status == lp.StatusOptimal {
			res.Status = lp.StatusDegraded
		}
		res.Counters = counters
		return finish(res, "software"), nil
	}

	return finish(last, ""), nil
}

// softwareSolve is rung 3: the dense-LU software PDIP at default tolerances
// (the hardware-oriented stall/alpha machinery does not apply). The returned
// Result carries no fabric counters; the caller attaches the ones already
// spent on the failed analog attempts.
func softwareSolve(ctx context.Context, p *lp.Problem) (*Result, error) {
	sw, err := pdip.New(pdip.WithBackend(pdip.NewtonFull))
	if err != nil {
		return nil, fmt.Errorf("core: building software fallback: %w", err)
	}
	r, err := sw.SolveContext(ctx, p)
	if r == nil {
		return nil, err
	}
	res := &Result{
		Status:              r.Status,
		X:                   r.X,
		Y:                   r.Y,
		W:                   r.W,
		Z:                   r.Z,
		Objective:           r.Objective,
		Iterations:          r.Iterations,
		PrimalInfeasibility: r.PrimalInfeasibility,
		DualInfeasibility:   r.DualInfeasibility,
		DualityGap:          r.DualityGap,
		ConeInfeasibility:   r.ConeInfeasibility,
	}
	return res, err
}
