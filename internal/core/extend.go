package core

import (
	"fmt"

	"github.com/memlp/memlp/internal/cone"
	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
)

// extended holds the non-negative reformulation of the full Newton system
// (Eq. 14a). The variable vector is
//
//	Δs = [Δx(n) | Δy(m) | Δw(m) | Δz(n) | Δu(m) | Δv(n) | Δp(q)]
//
// and the block rows are
//
//	r1 (m): A′·Δx + I·Δw + A″·Δp                = b − A·x − w
//	r2 (n): Aᵀ′·Δy + I·Δv + Aᵀ″·Δp              = c − Aᵀ·y + z
//	r3 (n): Z·Δx + X·Δz                          = µ1 − XZe
//	r4 (m): W·Δy + Y·Δw                          = µ1 − YWe
//	r5 (m): Δw + Δu                              = 0
//	r6 (n): Δz + Δv                              = 0
//	r7 (q): Δx_j + Δp_k  or  Δy_k' + Δp_k        = 0
//
// where A′/Aᵀ′ zero out the negative entries of A/Aᵀ, A″/Aᵀ″ carry their
// absolute values in the Δp columns (Eq. 13), and q is the number of columns
// of A (resp. rows of A) containing at least one negative entry.
//
// For conic problems the r4 rows of each second-order-cone block carry the
// dense Nesterov–Todd complementarity blocks instead of the scalar W/Y
// diagonals: P·Δw + Q·Δy = µe − λ∘λ, with P = Arw(λ)W⁻¹ and Q = Arw(λ)W
// (see internal/cone). The identity P·w + Q·y = 2·λ∘λ means the analog
// product through those rows is still exactly twice the complementarity
// vector, so the same Eq. 15 resistive divider (factor 0.5) and base-vector
// subtraction apply unchanged. Because P/Q entries change sign across
// iterations, every y component of a SOC row gets an unconditional Δp mirror
// column (negative coefficients move there with absolute value, exactly like
// Eq. 13 handles negative A entries), and negative Δw coefficients reuse the
// Δu = −Δw mirror that row r5 already enforces.
type extended struct {
	n, m, q int
	size    int

	// pOfX[j] is the Δp index mirroring −Δx_j, or -1; pOfY likewise for y.
	pOfX, pOfY []int

	// Cone geometry: blocks lists the second-order-cone blocks of the
	// constraint rows (empty for pure LPs), socRow[i] is the block index
	// owning row i or -1, and scalings holds one NT scaling per block,
	// refreshed each iteration before the r4 rows are rewritten.
	blocks   []cone.Block
	socRow   []int
	scalings []*cone.Scaling
	coneTmp  linalg.Vector // per-block slack scratch (max block dim)

	// matrix is the digital mirror of what is programmed on the fabric.
	matrix *linalg.Matrix

	// Reusable per-iteration scratch, sized to the extended system. All are
	// lazily built and survive across solves of same-sized problems so the
	// steady-state iteration allocates nothing here.
	upd            []rowUpdate   // diagRowUpdates backing store
	base           linalg.Vector // baseVector backing store
	factor         linalg.Vector // factorVector backing store
	dx, dy, dw, dz linalg.Vector // split backing stores
}

// conic reports whether the extended system carries second-order-cone blocks.
func (e *extended) conic() bool { return len(e.blocks) > 0 }

// Column offsets within the extended variable vector.
func (e *extended) colX(j int) int { return j }
func (e *extended) colY(k int) int { return e.n + k }
func (e *extended) colW(k int) int { return e.n + e.m + k }
func (e *extended) colZ(j int) int { return e.n + 2*e.m + j }
func (e *extended) colU(k int) int { return 2*e.n + 2*e.m + k }
func (e *extended) colV(j int) int { return 2*e.n + 3*e.m + j }
func (e *extended) colP(k int) int { return 3*e.n + 3*e.m + k }

// Row offsets of the block rows.
func (e *extended) rowR1(i int) int { return i }
func (e *extended) rowR2(i int) int { return e.m + i }
func (e *extended) rowR3(i int) int { return e.m + e.n + i }
func (e *extended) rowR4(i int) int { return e.m + 2*e.n + i }
func (e *extended) rowR5(i int) int { return 2*e.m + 2*e.n + i }
func (e *extended) rowR6(i int) int { return 3*e.m + 2*e.n + i }
func (e *extended) rowR7(i int) int { return 3*e.m + 3*e.n + i }

// newExtended builds the extended matrix for problem p with the initial
// interior point (x, y, w, z).
func newExtended(p *lp.Problem, x, y, w, z linalg.Vector) (*extended, error) {
	return newExtendedInto(nil, p, x, y, w, z)
}

// newExtendedInto is newExtended with storage reuse: when prev was built for
// a problem of the same shape, its matrix and scratch buffers are recycled
// (the sign pattern of A — and hence q — is recomputed from scratch, so only
// same-sized extended systems actually share the matrix). Pass nil to
// allocate fresh. The returned *extended is prev when reuse succeeded.
func newExtendedInto(prev *extended, p *lp.Problem, x, y, w, z linalg.Vector) (*extended, error) {
	n, m := p.NumVariables(), p.NumConstraints()
	e := prev
	if e == nil || e.n != n || e.m != m {
		e = &extended{n: n, m: m, pOfX: make([]int, n), pOfY: make([]int, m)}
	}
	e.prepareCones(p)

	// Assign Δp slots: one per column of A with a negative entry (mirrors
	// −Δx_j) and one per row of A with a negative entry (mirrors −Δy_k,
	// because row k of A is column k of Aᵀ). Every SOC row gets a mirror
	// unconditionally: its r4 coefficients flip sign from iteration to
	// iteration, so the −Δy column must exist even when row k of A is
	// all-nonnegative.
	q := 0
	for j := 0; j < n; j++ {
		e.pOfX[j] = -1
		for i := 0; i < m; i++ {
			if p.A.At(i, j) < 0 {
				e.pOfX[j] = q
				q++
				break
			}
		}
	}
	for k := 0; k < m; k++ {
		e.pOfY[k] = -1
		if e.socRow != nil && e.socRow[k] >= 0 {
			e.pOfY[k] = q
			q++
			continue
		}
		for j := 0; j < n; j++ {
			if p.A.At(k, j) < 0 {
				e.pOfY[k] = q
				q++
				break
			}
		}
	}
	e.q = q
	size := 3*n + 3*m + q
	if e.matrix == nil || e.size != size {
		e.size = size
		e.matrix = linalg.NewMatrix(size, size)
		e.upd, e.base, e.factor = nil, nil, nil
		e.dx, e.dy, e.dw, e.dz = nil, nil, nil, nil
	} else {
		e.matrix.Zero()
		// A reused update buffer may hold cells from a different cone
		// layout of the same size; clear so only live cells are programmed.
		for i := range e.upd {
			e.upd[i].row.Fill(0)
		}
	}
	if e.conic() && !e.updateScalings(w, y) {
		return nil, fmt.Errorf("core: initial cone iterate not interior")
	}

	mtx := e.matrix
	// r1: A′ on Δx, |negatives| on Δp, I on Δw.
	for i := 0; i < m; i++ {
		r := e.rowR1(i)
		for j := 0; j < n; j++ {
			v := p.A.At(i, j)
			if v >= 0 {
				mtx.Set(r, e.colX(j), v)
			} else {
				mtx.Set(r, e.colP(e.pOfX[j]), -v)
			}
		}
		mtx.Set(r, e.colW(i), 1)
	}
	// r2: Aᵀ′ on Δy, |negatives| on Δp (y-mirrors), I on Δv.
	for i := 0; i < n; i++ {
		r := e.rowR2(i)
		for k := 0; k < m; k++ {
			v := p.A.At(k, i) // Aᵀ(i,k)
			if v >= 0 {
				mtx.Set(r, e.colY(k), v)
			} else {
				mtx.Set(r, e.colP(e.pOfY[k]), -v)
			}
		}
		mtx.Set(r, e.colV(i), 1)
	}
	// r3/r4: complementarity diagonals, refreshed every iteration.
	e.fillDiagRows(x, y, w, z)
	// r5: Δw + Δu = 0.
	for i := 0; i < m; i++ {
		r := e.rowR5(i)
		mtx.Set(r, e.colW(i), 1)
		mtx.Set(r, e.colU(i), 1)
	}
	// r6: Δz + Δv = 0.
	for i := 0; i < n; i++ {
		r := e.rowR6(i)
		mtx.Set(r, e.colZ(i), 1)
		mtx.Set(r, e.colV(i), 1)
	}
	// r7: Δx_j + Δp = 0 and Δy_k + Δp = 0.
	for j := 0; j < n; j++ {
		if k := e.pOfX[j]; k >= 0 {
			r := e.rowR7(k)
			mtx.Set(r, e.colX(j), 1)
			mtx.Set(r, e.colP(k), 1)
		}
	}
	for y0 := 0; y0 < m; y0++ {
		if k := e.pOfY[y0]; k >= 0 {
			r := e.rowR7(k)
			mtx.Set(r, e.colY(y0), 1)
			mtx.Set(r, e.colP(k), 1)
		}
	}

	if !mtx.AllNonNegative() {
		return nil, fmt.Errorf("core: internal error: extended matrix has negative entries")
	}
	return e, nil
}

// prepareCones (re)derives the cone geometry from p. Scalings are reused
// when the block layout is unchanged, so same-shaped conic solves allocate
// nothing here.
func (e *extended) prepareCones(p *lp.Problem) {
	blocks := p.SOCBlocks()
	if len(blocks) == 0 {
		e.blocks, e.socRow, e.scalings, e.coneTmp = nil, nil, nil, nil
		return
	}
	e.blocks = blocks
	if len(e.socRow) != e.m {
		e.socRow = make([]int, e.m)
	}
	for i := range e.socRow {
		e.socRow[i] = -1
	}
	maxDim := 0
	reuse := len(e.scalings) == len(blocks)
	for bi, blk := range blocks {
		for i := 0; i < blk.Dim; i++ {
			e.socRow[blk.Start+i] = bi
		}
		if blk.Dim > maxDim {
			maxDim = blk.Dim
		}
		if reuse && e.scalings[bi].Dim() != blk.Dim {
			reuse = false
		}
	}
	if !reuse {
		e.scalings = make([]*cone.Scaling, len(blocks))
		for bi, blk := range blocks {
			e.scalings[bi] = cone.NewScaling(blk.Dim)
		}
	}
	if len(e.coneTmp) < maxDim {
		e.coneTmp = linalg.NewVector(maxDim)
	}
}

// updateScalings refreshes the per-block NT scalings from the current
// iterate. It reports false when a block of w or y has left the cone
// interior, which the caller must treat as a numerical failure.
//
//memlp:hotpath
func (e *extended) updateScalings(w, y linalg.Vector) bool {
	for bi, blk := range e.blocks {
		if !e.scalings[bi].Update(w[blk.Start:blk.Start+blk.Dim], y[blk.Start:blk.Start+blk.Dim]) {
			return false
		}
	}
	return true
}

// fillDiagRows writes the X/Y/Z/W complementarity entries into the digital
// mirror (rows r3 and r4). Orthant rows keep the scalar w/y cells; SOC rows
// get their dense NT blocks, sign-split across the mirror columns (the
// complementary cell of each pair is zeroed so stale magnitudes never
// survive a sign flip). For conic systems the caller must refresh the
// scalings (updateScalings) first.
//
//memlp:hotpath
func (e *extended) fillDiagRows(x, y, w, z linalg.Vector) {
	for i := 0; i < e.n; i++ {
		r := e.rowR3(i)
		e.matrix.Set(r, e.colX(i), z[i])
		e.matrix.Set(r, e.colZ(i), x[i])
	}
	if !e.conic() {
		for i := 0; i < e.m; i++ {
			r := e.rowR4(i)
			e.matrix.Set(r, e.colY(i), w[i])
			e.matrix.Set(r, e.colW(i), y[i])
		}
		return
	}
	for i := 0; i < e.m; i++ {
		if e.socRow[i] >= 0 {
			continue
		}
		r := e.rowR4(i)
		e.matrix.Set(r, e.colY(i), w[i])
		e.matrix.Set(r, e.colW(i), y[i])
	}
	for bi := range e.blocks {
		blk := e.blocks[bi]
		sc, d := e.scalings[bi], blk.Dim
		for i := 0; i < d; i++ {
			r := e.rowR4(blk.Start + i)
			for j := 0; j < d; j++ {
				k := blk.Start + j
				qv, pv := sc.Q[i*d+j], sc.P[i*d+j]
				if qv >= 0 {
					e.matrix.Set(r, e.colY(k), qv)
					e.matrix.Set(r, e.colP(e.pOfY[k]), 0)
				} else {
					e.matrix.Set(r, e.colY(k), 0)
					e.matrix.Set(r, e.colP(e.pOfY[k]), -qv)
				}
				if pv >= 0 {
					e.matrix.Set(r, e.colW(k), pv)
					e.matrix.Set(r, e.colU(k), 0)
				} else {
					e.matrix.Set(r, e.colW(k), 0)
					e.matrix.Set(r, e.colU(k), -pv)
				}
			}
		}
	}
}

// diagRowUpdates returns, for the current (x, y, w, z), the list of row
// indices and their new contents — the O(N) per-iteration coefficient
// refresh (2.7N cells for n = m/3, as §4.4 counts). The returned slice and
// its row vectors are scratch storage owned by e, overwritten by the next
// call: each update row has exactly two live cells at fixed positions, so
// after the first allocation only those cells are rewritten.
func (e *extended) diagRowUpdates(x, y, w, z linalg.Vector) []rowUpdate {
	if e.upd == nil {
		e.upd = make([]rowUpdate, 0, e.n+e.m)
		for i := 0; i < e.n; i++ {
			e.upd = append(e.upd, rowUpdate{index: e.rowR3(i), row: linalg.NewVector(e.size)})
		}
		for i := 0; i < e.m; i++ {
			e.upd = append(e.upd, rowUpdate{index: e.rowR4(i), row: linalg.NewVector(e.size)})
		}
	}
	for i := 0; i < e.n; i++ {
		row := e.upd[i].row
		row[e.colX(i)] = z[i]
		row[e.colZ(i)] = x[i]
	}
	if !e.conic() {
		for i := 0; i < e.m; i++ {
			row := e.upd[e.n+i].row
			row[e.colY(i)] = w[i]
			row[e.colW(i)] = y[i]
		}
		return e.upd
	}
	for i := 0; i < e.m; i++ {
		if e.socRow[i] >= 0 {
			continue
		}
		row := e.upd[e.n+i].row
		row[e.colY(i)] = w[i]
		row[e.colW(i)] = y[i]
	}
	// SOC rows rewrite 4·d cells each: the sign-split NT block pair, with
	// the complementary cell of every pair zeroed (signs flip across
	// iterations and UpdateRow programs the entire row).
	for bi := range e.blocks {
		blk := e.blocks[bi]
		sc, d := e.scalings[bi], blk.Dim
		for i := 0; i < d; i++ {
			row := e.upd[e.n+blk.Start+i].row
			for j := 0; j < d; j++ {
				k := blk.Start + j
				qv, pv := sc.Q[i*d+j], sc.P[i*d+j]
				if qv >= 0 {
					row[e.colY(k)], row[e.colP(e.pOfY[k])] = qv, 0
				} else {
					row[e.colY(k)], row[e.colP(e.pOfY[k])] = 0, -qv
				}
				if pv >= 0 {
					row[e.colW(k)], row[e.colU(k)] = pv, 0
				} else {
					row[e.colW(k)], row[e.colU(k)] = 0, -pv
				}
			}
		}
	}
	return e.upd
}

type rowUpdate struct {
	index int
	row   linalg.Vector
}

// stateVector assembles s = [x, y, w, z, u, v, p] with u = −w, v = −z and
// p the mirrors of the negated x/y components (Eq. 15b).
func (e *extended) stateVector(x, y, w, z linalg.Vector) linalg.Vector {
	s := linalg.NewVector(e.size)
	copy(s[0:e.n], x)
	copy(s[e.n:e.n+e.m], y)
	copy(s[e.n+e.m:e.n+2*e.m], w)
	copy(s[e.n+2*e.m:2*e.n+2*e.m], z)
	for i := 0; i < e.m; i++ {
		s[e.colU(i)] = -w[i]
	}
	for i := 0; i < e.n; i++ {
		s[e.colV(i)] = -z[i]
	}
	for j := 0; j < e.n; j++ {
		if k := e.pOfX[j]; k >= 0 {
			s[e.colP(k)] = -x[j]
		}
	}
	for k := 0; k < e.m; k++ {
		if idx := e.pOfY[k]; idx >= 0 {
			s[e.colP(idx)] = -y[k]
		}
	}
	return s
}

// baseVector assembles the static reference of Eq. 15a,
// [b; c; µ1; µ1; 0; 0; 0], which the summing amplifiers subtract the analog
// product from. Only the µ entries change between iterations.
// The returned vector is scratch storage owned by e, overwritten by the
// next call; every entry is refilled, so reuse across problems is safe.
func (e *extended) baseVector(p *lp.Problem, mu float64) linalg.Vector {
	if e.base == nil {
		e.base = linalg.NewVector(e.size)
	}
	base := e.base
	for i := 0; i < e.m; i++ {
		base[e.rowR1(i)] = p.B[i]
	}
	for i := 0; i < e.n; i++ {
		base[e.rowR2(i)] = p.C[i]
	}
	for i := 0; i < e.n; i++ {
		base[e.rowR3(i)] = mu
	}
	for i := 0; i < e.m; i++ {
		base[e.rowR4(i)] = mu
	}
	// SOC rows center on µ·e with e the Jordan identity: µ sits on the
	// block axis only, the tail rows subtract the full analog product.
	for _, blk := range e.blocks {
		for i := 1; i < blk.Dim; i++ {
			base[e.rowR4(blk.Start+i)] = 0
		}
	}
	return base
}

// factorVector returns the per-row analog dividers of Eq. 15: the r3/r4 rows
// arrive as 2XZe and 2YWe and are halved by a resistive divider before the
// subtraction; all other rows pass through unchanged.
func (e *extended) factorVector() linalg.Vector {
	if e.factor != nil {
		return e.factor
	}
	f := linalg.NewVector(e.size)
	f.Fill(1)
	for i := 0; i < e.n; i++ {
		f[e.rowR3(i)] = 0.5
	}
	for i := 0; i < e.m; i++ {
		f[e.rowR4(i)] = 0.5
	}
	e.factor = f
	return f
}

// split extracts (Δx, Δy, Δw, Δz) from the extended solution vector. The
// returned vectors are scratch storage owned by e, overwritten by the next
// call.
func (e *extended) split(ds linalg.Vector) (dx, dy, dw, dz linalg.Vector) {
	if e.dx == nil {
		e.dx = linalg.NewVector(e.n)
		e.dy = linalg.NewVector(e.m)
		e.dw = linalg.NewVector(e.m)
		e.dz = linalg.NewVector(e.n)
	}
	copy(e.dx, ds[0:e.n])
	copy(e.dy, ds[e.n:e.n+e.m])
	copy(e.dw, ds[e.n+e.m:e.n+2*e.m])
	copy(e.dz, ds[e.n+2*e.m:2*e.n+2*e.m])
	return e.dx, e.dy, e.dw, e.dz
}

// barrierDegree returns the ν the µ rule divides the duality gap by: n + m
// for pure LPs (every complementarity pair is scalar), and for conic systems
// each SOC block counts once instead of once per row.
func (e *extended) barrierDegree() float64 {
	if !e.conic() {
		return float64(e.n + e.m)
	}
	socRows := 0
	for _, blk := range e.blocks {
		socRows += blk.Dim
	}
	return float64(e.n + (e.m - socRows) + len(e.blocks))
}

// slackConeInf measures the worst second-order-cone violation of the
// reconstructed constraint slack b − A·x ≈ r1 + w, read off the measured
// residual exactly as the controller sees it.
//
//memlp:hotpath
func (e *extended) slackConeInf(r, w linalg.Vector) float64 {
	worst := 0.0
	for _, blk := range e.blocks {
		for i := 0; i < blk.Dim; i++ {
			e.coneTmp[i] = r[e.rowR1(blk.Start+i)] + w[blk.Start+i]
		}
		if d := cone.Dist(e.coneTmp[:blk.Dim]); d > worst {
			worst = d
		}
	}
	return worst
}
