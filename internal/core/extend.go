package core

import (
	"fmt"

	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
)

// extended holds the non-negative reformulation of the full Newton system
// (Eq. 14a). The variable vector is
//
//	Δs = [Δx(n) | Δy(m) | Δw(m) | Δz(n) | Δu(m) | Δv(n) | Δp(q)]
//
// and the block rows are
//
//	r1 (m): A′·Δx + I·Δw + A″·Δp                = b − A·x − w
//	r2 (n): Aᵀ′·Δy + I·Δv + Aᵀ″·Δp              = c − Aᵀ·y + z
//	r3 (n): Z·Δx + X·Δz                          = µ1 − XZe
//	r4 (m): W·Δy + Y·Δw                          = µ1 − YWe
//	r5 (m): Δw + Δu                              = 0
//	r6 (n): Δz + Δv                              = 0
//	r7 (q): Δx_j + Δp_k  or  Δy_k' + Δp_k        = 0
//
// where A′/Aᵀ′ zero out the negative entries of A/Aᵀ, A″/Aᵀ″ carry their
// absolute values in the Δp columns (Eq. 13), and q is the number of columns
// of A (resp. rows of A) containing at least one negative entry.
type extended struct {
	n, m, q int
	size    int

	// pOfX[j] is the Δp index mirroring −Δx_j, or -1; pOfY likewise for y.
	pOfX, pOfY []int

	// matrix is the digital mirror of what is programmed on the fabric.
	matrix *linalg.Matrix

	// Reusable per-iteration scratch, sized to the extended system. All are
	// lazily built and survive across solves of same-sized problems so the
	// steady-state iteration allocates nothing here.
	upd            []rowUpdate   // diagRowUpdates backing store
	base           linalg.Vector // baseVector backing store
	factor         linalg.Vector // factorVector backing store
	dx, dy, dw, dz linalg.Vector // split backing stores
}

// Column offsets within the extended variable vector.
func (e *extended) colX(j int) int { return j }
func (e *extended) colY(k int) int { return e.n + k }
func (e *extended) colW(k int) int { return e.n + e.m + k }
func (e *extended) colZ(j int) int { return e.n + 2*e.m + j }
func (e *extended) colU(k int) int { return 2*e.n + 2*e.m + k }
func (e *extended) colV(j int) int { return 2*e.n + 3*e.m + j }
func (e *extended) colP(k int) int { return 3*e.n + 3*e.m + k }

// Row offsets of the block rows.
func (e *extended) rowR1(i int) int { return i }
func (e *extended) rowR2(i int) int { return e.m + i }
func (e *extended) rowR3(i int) int { return e.m + e.n + i }
func (e *extended) rowR4(i int) int { return e.m + 2*e.n + i }
func (e *extended) rowR5(i int) int { return 2*e.m + 2*e.n + i }
func (e *extended) rowR6(i int) int { return 3*e.m + 2*e.n + i }
func (e *extended) rowR7(i int) int { return 3*e.m + 3*e.n + i }

// newExtended builds the extended matrix for problem p with the initial
// interior point (x, y, w, z).
func newExtended(p *lp.Problem, x, y, w, z linalg.Vector) (*extended, error) {
	return newExtendedInto(nil, p, x, y, w, z)
}

// newExtendedInto is newExtended with storage reuse: when prev was built for
// a problem of the same shape, its matrix and scratch buffers are recycled
// (the sign pattern of A — and hence q — is recomputed from scratch, so only
// same-sized extended systems actually share the matrix). Pass nil to
// allocate fresh. The returned *extended is prev when reuse succeeded.
func newExtendedInto(prev *extended, p *lp.Problem, x, y, w, z linalg.Vector) (*extended, error) {
	n, m := p.NumVariables(), p.NumConstraints()
	e := prev
	if e == nil || e.n != n || e.m != m {
		e = &extended{n: n, m: m, pOfX: make([]int, n), pOfY: make([]int, m)}
	}

	// Assign Δp slots: one per column of A with a negative entry (mirrors
	// −Δx_j) and one per row of A with a negative entry (mirrors −Δy_k,
	// because row k of A is column k of Aᵀ).
	q := 0
	for j := 0; j < n; j++ {
		e.pOfX[j] = -1
		for i := 0; i < m; i++ {
			if p.A.At(i, j) < 0 {
				e.pOfX[j] = q
				q++
				break
			}
		}
	}
	for k := 0; k < m; k++ {
		e.pOfY[k] = -1
		for j := 0; j < n; j++ {
			if p.A.At(k, j) < 0 {
				e.pOfY[k] = q
				q++
				break
			}
		}
	}
	e.q = q
	size := 3*n + 3*m + q
	if e.matrix == nil || e.size != size {
		e.size = size
		e.matrix = linalg.NewMatrix(size, size)
		e.upd, e.base, e.factor = nil, nil, nil
		e.dx, e.dy, e.dw, e.dz = nil, nil, nil, nil
	} else {
		e.matrix.Zero()
	}

	mtx := e.matrix
	// r1: A′ on Δx, |negatives| on Δp, I on Δw.
	for i := 0; i < m; i++ {
		r := e.rowR1(i)
		for j := 0; j < n; j++ {
			v := p.A.At(i, j)
			if v >= 0 {
				mtx.Set(r, e.colX(j), v)
			} else {
				mtx.Set(r, e.colP(e.pOfX[j]), -v)
			}
		}
		mtx.Set(r, e.colW(i), 1)
	}
	// r2: Aᵀ′ on Δy, |negatives| on Δp (y-mirrors), I on Δv.
	for i := 0; i < n; i++ {
		r := e.rowR2(i)
		for k := 0; k < m; k++ {
			v := p.A.At(k, i) // Aᵀ(i,k)
			if v >= 0 {
				mtx.Set(r, e.colY(k), v)
			} else {
				mtx.Set(r, e.colP(e.pOfY[k]), -v)
			}
		}
		mtx.Set(r, e.colV(i), 1)
	}
	// r3/r4: complementarity diagonals, refreshed every iteration.
	e.fillDiagRows(x, y, w, z)
	// r5: Δw + Δu = 0.
	for i := 0; i < m; i++ {
		r := e.rowR5(i)
		mtx.Set(r, e.colW(i), 1)
		mtx.Set(r, e.colU(i), 1)
	}
	// r6: Δz + Δv = 0.
	for i := 0; i < n; i++ {
		r := e.rowR6(i)
		mtx.Set(r, e.colZ(i), 1)
		mtx.Set(r, e.colV(i), 1)
	}
	// r7: Δx_j + Δp = 0 and Δy_k + Δp = 0.
	for j := 0; j < n; j++ {
		if k := e.pOfX[j]; k >= 0 {
			r := e.rowR7(k)
			mtx.Set(r, e.colX(j), 1)
			mtx.Set(r, e.colP(k), 1)
		}
	}
	for y0 := 0; y0 < m; y0++ {
		if k := e.pOfY[y0]; k >= 0 {
			r := e.rowR7(k)
			mtx.Set(r, e.colY(y0), 1)
			mtx.Set(r, e.colP(k), 1)
		}
	}

	if !mtx.AllNonNegative() {
		return nil, fmt.Errorf("core: internal error: extended matrix has negative entries")
	}
	return e, nil
}

// fillDiagRows writes the X/Y/Z/W complementarity entries into the digital
// mirror (rows r3 and r4).
//
//memlp:hotpath
func (e *extended) fillDiagRows(x, y, w, z linalg.Vector) {
	for i := 0; i < e.n; i++ {
		r := e.rowR3(i)
		e.matrix.Set(r, e.colX(i), z[i])
		e.matrix.Set(r, e.colZ(i), x[i])
	}
	for i := 0; i < e.m; i++ {
		r := e.rowR4(i)
		e.matrix.Set(r, e.colY(i), w[i])
		e.matrix.Set(r, e.colW(i), y[i])
	}
}

// diagRowUpdates returns, for the current (x, y, w, z), the list of row
// indices and their new contents — the O(N) per-iteration coefficient
// refresh (2.7N cells for n = m/3, as §4.4 counts). The returned slice and
// its row vectors are scratch storage owned by e, overwritten by the next
// call: each update row has exactly two live cells at fixed positions, so
// after the first allocation only those cells are rewritten.
func (e *extended) diagRowUpdates(x, y, w, z linalg.Vector) []rowUpdate {
	if e.upd == nil {
		e.upd = make([]rowUpdate, 0, e.n+e.m)
		for i := 0; i < e.n; i++ {
			e.upd = append(e.upd, rowUpdate{index: e.rowR3(i), row: linalg.NewVector(e.size)})
		}
		for i := 0; i < e.m; i++ {
			e.upd = append(e.upd, rowUpdate{index: e.rowR4(i), row: linalg.NewVector(e.size)})
		}
	}
	for i := 0; i < e.n; i++ {
		row := e.upd[i].row
		row[e.colX(i)] = z[i]
		row[e.colZ(i)] = x[i]
	}
	for i := 0; i < e.m; i++ {
		row := e.upd[e.n+i].row
		row[e.colY(i)] = w[i]
		row[e.colW(i)] = y[i]
	}
	return e.upd
}

type rowUpdate struct {
	index int
	row   linalg.Vector
}

// stateVector assembles s = [x, y, w, z, u, v, p] with u = −w, v = −z and
// p the mirrors of the negated x/y components (Eq. 15b).
func (e *extended) stateVector(x, y, w, z linalg.Vector) linalg.Vector {
	s := linalg.NewVector(e.size)
	copy(s[0:e.n], x)
	copy(s[e.n:e.n+e.m], y)
	copy(s[e.n+e.m:e.n+2*e.m], w)
	copy(s[e.n+2*e.m:2*e.n+2*e.m], z)
	for i := 0; i < e.m; i++ {
		s[e.colU(i)] = -w[i]
	}
	for i := 0; i < e.n; i++ {
		s[e.colV(i)] = -z[i]
	}
	for j := 0; j < e.n; j++ {
		if k := e.pOfX[j]; k >= 0 {
			s[e.colP(k)] = -x[j]
		}
	}
	for k := 0; k < e.m; k++ {
		if idx := e.pOfY[k]; idx >= 0 {
			s[e.colP(idx)] = -y[k]
		}
	}
	return s
}

// baseVector assembles the static reference of Eq. 15a,
// [b; c; µ1; µ1; 0; 0; 0], which the summing amplifiers subtract the analog
// product from. Only the µ entries change between iterations.
// The returned vector is scratch storage owned by e, overwritten by the
// next call; every entry is refilled, so reuse across problems is safe.
func (e *extended) baseVector(p *lp.Problem, mu float64) linalg.Vector {
	if e.base == nil {
		e.base = linalg.NewVector(e.size)
	}
	base := e.base
	for i := 0; i < e.m; i++ {
		base[e.rowR1(i)] = p.B[i]
	}
	for i := 0; i < e.n; i++ {
		base[e.rowR2(i)] = p.C[i]
	}
	for i := 0; i < e.n; i++ {
		base[e.rowR3(i)] = mu
	}
	for i := 0; i < e.m; i++ {
		base[e.rowR4(i)] = mu
	}
	return base
}

// factorVector returns the per-row analog dividers of Eq. 15: the r3/r4 rows
// arrive as 2XZe and 2YWe and are halved by a resistive divider before the
// subtraction; all other rows pass through unchanged.
func (e *extended) factorVector() linalg.Vector {
	if e.factor != nil {
		return e.factor
	}
	f := linalg.NewVector(e.size)
	f.Fill(1)
	for i := 0; i < e.n; i++ {
		f[e.rowR3(i)] = 0.5
	}
	for i := 0; i < e.m; i++ {
		f[e.rowR4(i)] = 0.5
	}
	e.factor = f
	return f
}

// split extracts (Δx, Δy, Δw, Δz) from the extended solution vector. The
// returned vectors are scratch storage owned by e, overwritten by the next
// call.
func (e *extended) split(ds linalg.Vector) (dx, dy, dw, dz linalg.Vector) {
	if e.dx == nil {
		e.dx = linalg.NewVector(e.n)
		e.dy = linalg.NewVector(e.m)
		e.dw = linalg.NewVector(e.m)
		e.dz = linalg.NewVector(e.n)
	}
	copy(e.dx, ds[0:e.n])
	copy(e.dy, ds[e.n:e.n+e.m])
	copy(e.dw, ds[e.n+e.m:e.n+2*e.m])
	copy(e.dz, ds[e.n+2*e.m:2*e.n+2*e.m])
	return e.dx, e.dy, e.dw, e.dz
}
