package core

// Failure-injection tests: the solvers must degrade gracefully — returning
// classified statuses or wrapped errors, never panicking or reporting a
// bogus optimum — when the analog fabric misbehaves.

import (
	"errors"
	"testing"

	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
)

// faultyFabric wraps the ideal fabric and injects failures.
type faultyFabric struct {
	inner Fabric
	// failSolveAfter injects ErrSingular on the k-th Solve (1-based);
	// 0 disables.
	failSolveAfter int
	// corruptSolve returns NaN-poisoned directions when true.
	corruptSolve bool
	// failProgram makes Program fail immediately.
	failProgram bool

	solves int
}

func (f *faultyFabric) Program(a *linalg.Matrix) error {
	if f.failProgram {
		return crossbar.ErrTooLarge
	}
	return f.inner.Program(a)
}
func (f *faultyFabric) UpdateRow(i int, row linalg.Vector) error {
	return f.inner.UpdateRow(i, row)
}
func (f *faultyFabric) UpdateCellInPlace(i, j int, v float64) error {
	return f.inner.UpdateCellInPlace(i, j, v)
}
func (f *faultyFabric) MatVec(v linalg.Vector) (linalg.Vector, error) {
	return f.inner.MatVec(v)
}
func (f *faultyFabric) MatVecResidual(base, v, factor linalg.Vector) (linalg.Vector, error) {
	return f.inner.MatVecResidual(base, v, factor)
}
func (f *faultyFabric) Solve(b linalg.Vector) (linalg.Vector, error) {
	f.solves++
	if f.failSolveAfter > 0 && f.solves >= f.failSolveAfter {
		return nil, crossbar.ErrSingular
	}
	out, err := f.inner.Solve(b)
	if err != nil {
		return nil, err
	}
	if f.corruptSolve {
		for i := range out {
			out[i] = nan()
		}
	}
	return out, nil
}
func (f *faultyFabric) Counters() crossbar.Counters { return f.inner.Counters() }

func nan() float64  { return float64(0) / zero() }
func zero() float64 { return 0 }

func faultyFactory(mutate func(*faultyFabric)) FabricFactory {
	return func(size int) (Fabric, error) {
		inner, err := newIdealFabric(size)
		if err != nil {
			return nil, err
		}
		f := &faultyFabric{inner: inner}
		mutate(f)
		return f, nil
	}
}

func testProblem(t *testing.T) *lp.Problem {
	t.Helper()
	p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 9, Seed: 4})
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	return p
}

func TestSolverSingularMidSolve(t *testing.T) {
	s, err := NewSolver(Options{Fabric: faultyFactory(func(f *faultyFabric) { f.failSolveAfter = 3 })})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	res, err := s.Solve(testProblem(t))
	if err != nil {
		t.Fatalf("Solve returned hard error: %v", err)
	}
	if res.Status != lp.StatusNumericalFailure {
		t.Errorf("status = %v, want numerical-failure", res.Status)
	}
}

func TestSolverNaNDirections(t *testing.T) {
	s, err := NewSolver(Options{Fabric: faultyFactory(func(f *faultyFabric) { f.corruptSolve = true })})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	res, err := s.Solve(testProblem(t))
	if err != nil {
		t.Fatalf("Solve returned hard error: %v", err)
	}
	if res.Status != lp.StatusNumericalFailure {
		t.Errorf("status = %v, want numerical-failure", res.Status)
	}
	if !linalg.Vector(res.X).AllFinite() {
		t.Error("returned solution contains non-finite values")
	}
}

func TestSolverProgramFailure(t *testing.T) {
	s, err := NewSolver(Options{Fabric: faultyFactory(func(f *faultyFabric) { f.failProgram = true })})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	if _, err := s.Solve(testProblem(t)); !errors.Is(err, crossbar.ErrTooLarge) {
		t.Errorf("Solve = %v, want wrapped ErrTooLarge", err)
	}
}

func TestLargeScaleSingularTriggersResolve(t *testing.T) {
	// The first attempt's M1 solve fails; the double-check scheme must
	// retry on a fresh fabric and succeed.
	attempt := 0
	factory := func(size int) (Fabric, error) {
		inner, err := newIdealFabric(size)
		if err != nil {
			return nil, err
		}
		attempt++
		f := &faultyFabric{inner: inner}
		if attempt == 1 { // only the first attempt's M1 fabric fails
			f.failSolveAfter = 1
		}
		return f, nil
	}
	s, err := NewLargeScaleSolver(Options{Fabric: factory})
	if err != nil {
		t.Fatalf("NewLargeScaleSolver: %v", err)
	}
	res, err := s.Solve(testProblem(t))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != lp.StatusOptimal {
		t.Fatalf("status = %v after resolve, want optimal", res.Status)
	}
	if res.Resolves != 1 {
		t.Errorf("resolves = %d, want 1", res.Resolves)
	}
}

func TestLargeScaleAllAttemptsFail(t *testing.T) {
	s, err := NewLargeScaleSolver(Options{
		Fabric:      faultyFactory(func(f *faultyFabric) { f.failSolveAfter = 1 }),
		MaxResolves: 2,
	})
	if err != nil {
		t.Fatalf("NewLargeScaleSolver: %v", err)
	}
	res, err := s.Solve(testProblem(t))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != lp.StatusNumericalFailure {
		t.Errorf("status = %v, want numerical-failure", res.Status)
	}
	if res.Resolves != 2 {
		t.Errorf("resolves = %d, want 2", res.Resolves)
	}
}

func TestSolverFabricConstructionFailure(t *testing.T) {
	s, err := NewSolver(Options{Fabric: func(int) (Fabric, error) {
		return nil, crossbar.ErrBadConfig
	}})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	if _, err := s.Solve(testProblem(t)); !errors.Is(err, crossbar.ErrBadConfig) {
		t.Errorf("Solve = %v, want wrapped ErrBadConfig", err)
	}
}
