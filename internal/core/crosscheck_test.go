package core

// Cross-checks between the crossbar reformulation and the software PDIP
// machinery: the extended non-negative system of Eq. 14a must produce the
// exact same Newton directions as the plain system of Eq. 12.

import (
	"math"
	"testing"

	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
)

// solveEq12 assembles and solves the plain (signed) Newton system of Eq. 12
// directly — the reference for the extended reformulation.
func solveEq12(t *testing.T, p *lp.Problem, x, y, w, z linalg.Vector, mu float64) (dx, dy, dw, dz linalg.Vector) {
	t.Helper()
	n, m := p.NumVariables(), p.NumConstraints()
	size := 2 * (n + m)
	big := linalg.NewMatrix(size, size)
	if err := big.SetSubmatrix(0, 0, p.A); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		big.Set(i, n+m+i, 1)
	}
	if err := big.SetSubmatrix(m, n, p.A.Transpose()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		big.Set(m+i, n+2*m+i, -1)
	}
	for i := 0; i < n; i++ {
		big.Set(m+n+i, i, z[i])
		big.Set(m+n+i, n+2*m+i, x[i])
	}
	for i := 0; i < m; i++ {
		big.Set(m+2*n+i, n+i, w[i])
		big.Set(m+2*n+i, n+m+i, y[i])
	}

	rhs := linalg.NewVector(size)
	ax, err := p.A.MatVec(x)
	if err != nil {
		t.Fatal(err)
	}
	aty, err := p.A.MatVecTranspose(y)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		rhs[i] = p.B[i] - ax[i] - w[i]
	}
	for i := 0; i < n; i++ {
		rhs[m+i] = p.C[i] - aty[i] + z[i]
	}
	for i := 0; i < n; i++ {
		rhs[m+n+i] = mu - x[i]*z[i]
	}
	for i := 0; i < m; i++ {
		rhs[m+2*n+i] = mu - y[i]*w[i]
	}
	sol, err := linalg.SolveDense(big, rhs)
	if err != nil {
		t.Fatalf("Eq. 12 solve: %v", err)
	}
	return sol[0:n], sol[n : n+m], sol[n+m : n+2*m], sol[n+2*m:]
}

// TestExtendedSystemReproducesEq12Directions builds the extended system at a
// generic interior point, computes the residual and Newton step the way the
// solver does (with an ideal fabric), and compares (Δx, Δy, Δw, Δz) against
// the directly-solved Eq. 12 system.
func TestExtendedSystemReproducesEq12Directions(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 10, Seed: seed})
		if err != nil {
			t.Fatalf("GenerateFeasible: %v", err)
		}
		n, m := p.NumVariables(), p.NumConstraints()

		// A generic strictly interior point.
		x := linalg.NewVector(n)
		z := linalg.NewVector(n)
		for i := range x {
			x[i] = 0.5 + float64(i%3)
			z[i] = 0.25 + float64(i%2)
		}
		y := linalg.NewVector(m)
		w := linalg.NewVector(m)
		for i := range y {
			y[i] = 0.75 + float64(i%4)/2
			w[i] = 1.25 + float64(i%3)/3
		}
		const mu = 0.05

		ext, err := newExtended(p, x, y, w, z)
		if err != nil {
			t.Fatalf("newExtended: %v", err)
		}
		fab, err := newIdealFabric(ext.size)
		if err != nil {
			t.Fatal(err)
		}
		if err := fab.Program(ext.matrix); err != nil {
			t.Fatal(err)
		}
		s := ext.stateVector(x, y, w, z)
		r, err := fab.MatVecResidual(ext.baseVector(p, mu), s, ext.factorVector())
		if err != nil {
			t.Fatal(err)
		}
		ds, err := fab.Solve(r)
		if err != nil {
			t.Fatalf("extended solve: %v", err)
		}
		gotDx, gotDy, gotDw, gotDz := ext.split(ds)

		wantDx, wantDy, wantDw, wantDz := solveEq12(t, p, x, y, w, z, mu)

		check := func(name string, got, want linalg.Vector) {
			t.Helper()
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
					t.Errorf("seed %d: %s[%d] = %v, want %v", seed, name, i, got[i], want[i])
				}
			}
		}
		check("dx", gotDx, wantDx)
		check("dy", gotDy, wantDy)
		check("dw", gotDw, wantDw)
		check("dz", gotDz, wantDz)

		// The compensation directions must mirror their sources.
		for i := 0; i < m; i++ {
			if got := ds[ext.colU(i)]; math.Abs(got+gotDw[i]) > 1e-8*(1+math.Abs(gotDw[i])) {
				t.Errorf("seed %d: du[%d] = %v, want %v", seed, i, got, -gotDw[i])
			}
		}
		for i := 0; i < n; i++ {
			if got := ds[ext.colV(i)]; math.Abs(got+gotDz[i]) > 1e-8*(1+math.Abs(gotDz[i])) {
				t.Errorf("seed %d: dv[%d] = %v, want %v", seed, i, got, -gotDz[i])
			}
		}
		for j := 0; j < n; j++ {
			if k := ext.pOfX[j]; k >= 0 {
				if got := ds[ext.colP(k)]; math.Abs(got+gotDx[j]) > 1e-8*(1+math.Abs(gotDx[j])) {
					t.Errorf("seed %d: dp(x %d) = %v, want %v", seed, j, got, -gotDx[j])
				}
			}
		}
	}
}
