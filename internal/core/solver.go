package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/memlp/memlp/internal/cone"
	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
	"github.com/memlp/memlp/internal/trace"
)

// ErrNoFabric is returned when a solver is constructed without a fabric
// factory and no default can be built.
var ErrNoFabric = errors.New("core: no fabric factory configured")

// Options configures both crossbar solvers.
type Options struct {
	// Tol holds the PDIP stopping parameters (εb, εc, εg, δ, r, …).
	Tol lp.Tolerances
	// Alpha is the relaxed feasibility parameter of §3.2: the final point
	// is accepted when A·x ≤ α·b element-wise (α slightly above 1 absorbs
	// process-variation distortion of the constraints). Zero means 1.05.
	Alpha float64
	// StallWindow stops the iteration when the duality gap has not improved
	// for this many consecutive iterations — the analog accuracy floor.
	// Zero means 10.
	StallWindow int
	// Fabric builds the analog substrate for a given matrix size.
	// Nil means a single ideal-variation-free crossbar of sufficient size
	// (crossbar defaults, no variation).
	Fabric FabricFactory
	// ConstantStep is Algorithm 2's fixed step length θ (§3.4: "constant to
	// guarantee convergence"). Zero means 0.2 (the AB1 ablation sweeps the
	// usable band). Ignored by Algorithm 1.
	ConstantStep float64
	// MaxResolves is Algorithm 2's "double checking scheme" budget: how many
	// times a failed solve is retried with freshly written (hence freshly
	// perturbed) coefficients. Zero means 1. Ignored by Algorithm 1.
	MaxResolves int
	// Regularization scales Algorithm 2's literal RU/RL filler entries
	// relative to the mean |A| entry (§3.4: "very small"); only used with
	// LiteralFillers. Zero means 0.02. Ignored by Algorithm 1.
	Regularization float64
	// LiteralFillers selects the paper-literal reading of Eq. 16c for
	// Algorithm 2: static εI fillers in the RU/RL slots instead of the
	// reduced-KKT diagonals (see the LargeScaleSolver doc). Unstable for
	// m ≠ n; kept for the AB2 ablation. Ignored by Algorithm 1.
	LiteralFillers bool
	// Recovery enables the fault-recovery escalation ladder shared by both
	// algorithms (see RecoveryPolicy): rung 1 re-solves per MaxResolves,
	// rung 2 remaps off stuck cells, rung 3 falls back to software. Nil
	// preserves the legacy behavior exactly (Algorithm 1 fails fast,
	// Algorithm 2 re-solves per MaxResolves only).
	Recovery *RecoveryPolicy
	// Parallelism is the fabric-pool width for SolveBatch: the shared
	// extended matrix is replicated onto this many shard fabrics, each driven
	// by its own worker goroutine. Zero means GOMAXPROCS; the width is always
	// clamped to the batch size. Results are bit-identical for every width
	// (per-problem noise epochs decouple the draws from the shard), so this
	// knob trades only memory for throughput. Ignored by single solves.
	Parallelism int
	// ReplicaFabric builds one shard fabric of the batch pool. Unlike Fabric
	// it is called once PER REPLICA, and every call must return an
	// independent fabric realizing the identical device-variation pattern
	// (clone the variation model at its base seed per call): replicas are
	// interchangeable dies holding the same programmed array. Nil falls back
	// to Fabric, which is only correct when that factory already returns
	// independent, identically-behaving fabrics (the variation-free default
	// does; a factory capturing one shared variation model does not).
	ReplicaFabric FabricFactory
	// Trace, when non-nil, enables per-iteration telemetry: every attempt
	// emits one trace.Record per iteration plus recovery events and a
	// terminal done record into a bounded ring, returned as Result.Trace.
	Trace *TraceOptions
	// EnergyModel converts fabric counters into modeled energy (joules).
	// It prices the trace's cumulative energy field and
	// Diagnostics.EnergyJoules; nil leaves both zero.
	EnergyModel func(crossbar.Counters) float64
}

// TraceOptions configures the iteration-trace recorder (see internal/trace).
type TraceOptions struct {
	// Capacity bounds the per-solve ring buffer; <= 0 means
	// trace.DefaultCapacity. When a trajectory outgrows it, the oldest
	// records are dropped (the tail is what debugging needs).
	Capacity int
	// OnRecord, when non-nil, additionally receives every record as it is
	// emitted (before the solve finishes). Batch solves call it from the
	// pool's worker goroutines, so it must be safe for concurrent use.
	OnRecord func(trace.Record)
}

func (o Options) withDefaults() Options {
	o.Tol = o.Tol.WithDefaults()
	if o.Alpha == 0 {
		o.Alpha = 1.05
	}
	if o.StallWindow == 0 {
		o.StallWindow = 10
	}
	if o.Fabric == nil {
		o.Fabric = SingleCrossbarFactory(crossbar.Config{})
	}
	if o.ConstantStep == 0 {
		o.ConstantStep = 0.2
	}
	if o.MaxResolves == 0 {
		o.MaxResolves = 1
	}
	if o.Regularization == 0 {
		o.Regularization = 0.02
	}
	return o
}

func (o Options) validate() error {
	if err := o.Tol.Validate(); err != nil {
		return err
	}
	if o.Alpha < 1 {
		return fmt.Errorf("%w: alpha %v below 1", lp.ErrInvalid, o.Alpha)
	}
	if o.StallWindow < 1 {
		return fmt.Errorf("%w: stall window %d", lp.ErrInvalid, o.StallWindow)
	}
	if !(o.ConstantStep > 0 && o.ConstantStep < 1) {
		return fmt.Errorf("%w: constant step %v outside (0,1)", lp.ErrInvalid, o.ConstantStep)
	}
	if o.MaxResolves < 0 {
		return fmt.Errorf("%w: max resolves %d", lp.ErrInvalid, o.MaxResolves)
	}
	if !(o.Regularization > 0 && o.Regularization < 1) {
		return fmt.Errorf("%w: regularization %v outside (0,1)", lp.ErrInvalid, o.Regularization)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("%w: parallelism %d", lp.ErrInvalid, o.Parallelism)
	}
	return nil
}

// Result reports a crossbar solve, including the fabric operation counts the
// performance estimator turns into latency/energy figures.
type Result struct {
	Status     lp.Status
	X, Y, W, Z linalg.Vector
	Objective  float64
	Iterations int

	PrimalInfeasibility float64
	DualInfeasibility   float64
	DualityGap          float64
	// ConeInfeasibility is the worst second-order-cone violation of the
	// constraint slack b − A·x, measured from the analog residual; always 0
	// for pure LPs.
	ConeInfeasibility float64

	// Counters aggregates the fabric's physical operation counts for THIS
	// solve (per-solve marginal when the fabric persists across solves).
	Counters crossbar.Counters
	// MatrixSize is the extended system dimension programmed on the fabric.
	MatrixSize int
	// Resolves counts re-solve attempts that were consumed (Algorithm 2's
	// double-check, or any rung-1 retry of the recovery ladder).
	Resolves int
	// WallTime is the wall-clock duration of this individual solve.
	WallTime time.Duration
	// Diagnostics carries fault and recovery telemetry; non-nil only when
	// Options.Recovery is configured.
	Diagnostics *Diagnostics
	// Batch is the fabric-pool roll-up of the batch this result belongs to;
	// attached to the FIRST result of a SolveBatch call only (the same place
	// the one-time programming cost is charged), nil everywhere else.
	Batch *BatchStats
	// Trace is the recorded iteration trajectory (oldest first); non-nil
	// only when Options.Trace is configured.
	Trace []trace.Record
}

// Solver is Algorithm 1: the memristor crossbar-based linear program solver.
// A Solver is safe for concurrent use; solves are serialized on the single
// simulated fabric, which persists across calls so that same-sized problems
// reuse the programmed array and all iteration workspaces.
type Solver struct {
	opts Options

	mu      sync.Mutex
	ext     *extended
	fab     Fabric
	fabSize int
	// initBuf backs the all-ones starting iterate (x, y, w, z are sliced
	// from it before being copied into the extended state vector), reused
	// across solves under mu.
	initBuf linalg.Vector
	// warmX/warmY, when non-nil, seed subsequent solves from a prior
	// primal/dual point instead of the all-ones start (see SetWarmStart).
	warmX, warmY linalg.Vector
	// tr records the iteration trace under mu; nil when tracing is off.
	tr *traceState
}

// warmFloor is the strict-interior safeguard applied to a warm-started
// iterate: a converged previous solution sits on the boundary (inactive rows
// have y ≈ 0, basic variables have z ≈ 0), and seeding the interior-point
// iteration exactly on the boundary stalls the very first step. 1e-6 is far
// above the iteration's own representability floor (1e-12) but small enough
// that the centering work it re-introduces is a couple of iterations, not a
// cold start.
const warmFloor = 1e-6

// SetWarmStart seeds subsequent solves from a previously computed primal/dual
// point (typically Result.X and Result.Y of an earlier solve of a nearby
// problem) instead of the all-ones interior start. The slacks are re-derived
// from the new problem data (w = b − A·x, z = Aᵀ·y − c) and everything is
// clamped to the strict interior — orthant rows to warmFloor, second-order
// cone rows via the cone interior clamp — so a boundary point from a
// converged solve becomes a usable interior seed. The warm start stays in
// effect for every following solve (including batch members) until replaced
// or cleared; passing nil for either vector clears it. Vectors whose
// dimensions do not match a subsequent problem cause that solve to fail with
// lp.ErrInvalid; non-finite entries (a degraded previous solution) silently
// fall back to the cold start.
func (s *Solver) SetWarmStart(x0, y0 linalg.Vector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if x0 == nil || y0 == nil {
		s.warmX, s.warmY = nil, nil
		return
	}
	s.warmX = append(s.warmX[:0], x0...)
	s.warmY = append(s.warmY[:0], y0...)
}

// applyWarmStart overwrites the freshly Fill(1)-ed iterate with the stored
// warm-start point when one is set and usable. yScale, when non-nil, maps the
// stored (user-unit) duals into the equilibrated problem's units: the batch
// path row-scales A, under which internal ŷᵢ = yᵢ·scaleᵢ. It reports whether
// the warm seed was applied (false → caller keeps the cold start). Callers
// must hold s.mu (single solves) or rely on the batch entry point having
// snapshotted the vectors (workers only read them).
func (s *Solver) applyWarmStart(p *lp.Problem, yScale, x, y, w, z linalg.Vector) (bool, error) {
	if s.warmX == nil || s.warmY == nil {
		return false, nil
	}
	if len(s.warmX) != len(x) || len(s.warmY) != len(y) {
		return false, fmt.Errorf("%w: warm start dimensions %d vars / %d duals, problem has %d vars / %d constraints",
			lp.ErrInvalid, len(s.warmX), len(s.warmY), len(x), len(y))
	}
	if !allFinite(s.warmX) || !allFinite(s.warmY) {
		return false, nil
	}
	seedWarmStart(p, s.warmX, s.warmY, yScale, x, y, w, z)
	return true, nil
}

func allFinite(v linalg.Vector) bool {
	for _, e := range v {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			return false
		}
	}
	return true
}

// seedWarmStart fills the iterate from a prior point: x and y are taken from
// (x0, y0), the slacks are re-derived from the CURRENT problem data
// (w = b − A·x at zero primal residual, z = Aᵀ·y − c at zero dual residual),
// and all four are clamped to the strict interior. Cone-covered rows of y and
// w keep their sign-free warm values and get the cone interior clamp instead
// of the orthant floor.
func seedWarmStart(p *lp.Problem, x0, y0, yScale, x, y, w, z linalg.Vector) {
	for i, v := range x0 {
		if v < warmFloor {
			v = warmFloor
		}
		x[i] = v
	}
	for i, v := range y0 {
		if yScale != nil {
			v *= yScale[i]
		}
		y[i] = v
	}
	// Dimensions are pre-checked by applyWarmStart, so the Into errors
	// cannot fire.
	_ = p.A.MatVecInto(w, x)
	for i := range w {
		w[i] = p.B[i] - w[i]
	}
	_ = p.A.MatVecTransposeInto(z, y)
	for i := range z {
		v := z[i] - p.C[i]
		if v < warmFloor {
			v = warmFloor
		}
		z[i] = v
	}
	blocks := p.SOCBlocks()
	floorOrthantRows(y, blocks)
	floorOrthantRows(w, blocks)
	if len(blocks) > 0 {
		cone.ClampInterior(y, blocks, warmFloor)
		cone.ClampInterior(w, blocks, warmFloor)
	}
}

// floorOrthantRows applies the warm-start interior floor to every row of v
// not covered by a second-order cone block (blocks are ordered and disjoint
// per lp.Problem.Validate).
func floorOrthantRows(v linalg.Vector, blocks []cone.Block) {
	i := 0
	for _, b := range blocks {
		for ; i < b.Start; i++ {
			if v[i] < warmFloor {
				v[i] = warmFloor
			}
		}
		i = b.Start + b.Dim
	}
	for ; i < len(v); i++ {
		if v[i] < warmFloor {
			v[i] = warmFloor
		}
	}
}

// NewSolver returns an Algorithm 1 solver.
func NewSolver(opts Options) (*Solver, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &Solver{opts: opts, tr: newTraceState(opts)}, nil
}

// fabric returns the cached analog substrate for the given extended-system
// size, building one on first use or when the size changes. Callers must
// hold s.mu.
func (s *Solver) fabric(size int) (Fabric, error) {
	if s.fab != nil && s.fabSize == size {
		return s.fab, nil
	}
	fab, err := s.opts.Fabric(size)
	if err != nil {
		return nil, fmt.Errorf("core: building fabric: %w", err)
	}
	s.fab, s.fabSize = fab, size
	return fab, nil
}

// Solve runs Algorithm 1 on p.
func (s *Solver) Solve(p *lp.Problem) (*Result, error) {
	return s.SolveContext(context.Background(), p)
}

// SolveContext runs Algorithm 1 on p, honoring cancellation and deadlines:
// the context is checked once per iteration, and an interrupted solve
// returns its partial iterate with lp.StatusCanceled alongside the wrapped
// context error. With Options.Recovery configured, a failed attempt climbs
// the recovery-escalation ladder instead of being returned directly.
func (s *Solver) SolveContext(ctx context.Context, p *lp.Problem) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	start := wallClock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tr.begin(0, 0)
	if s.opts.Recovery == nil {
		res, ctxErr, err := s.solveAttempt(ctx, p)
		if err != nil {
			return nil, err
		}
		res.WallTime = wallSince(start)
		res.Trace = s.tr.finish(res)
		return res, ctxErr
	}
	res, err := runRecoveryLadder(ctx, p, s.opts, ladderFuncs{
		attempt: func(ctx context.Context) (*Result, error, error) {
			return s.solveAttempt(ctx, p)
		},
		census: s.census,
		remap:  s.remapFabric,
		event:  s.tr.event,
	})
	if res != nil {
		res.WallTime = wallSince(start)
		res.Trace = s.tr.finish(res)
	}
	return res, err
}

// census tallies the stuck cells on the cached fabric, when it can report.
func (s *Solver) census() crossbar.FaultCensus {
	if fr, ok := s.fab.(FaultReporter); ok {
		return fr.FaultCensus()
	}
	return crossbar.FaultCensus{}
}

// remapFabric asks the cached fabric to dodge its stuck cells (rung 2).
func (s *Solver) remapFabric() bool {
	r, ok := s.fab.(Remapper)
	return ok && r.RemapAvoidingFaults()
}

// solveAttempt runs one full Algorithm 1 attempt. It returns (result,
// ctxErr, err) with the solveOnce contract: ctxErr non-nil means the attempt
// was interrupted (the result carries the partial iterate); err is a hard
// failure with no usable result. Callers must hold s.mu.
func (s *Solver) solveAttempt(ctx context.Context, p *lp.Problem) (*Result, error, error) {
	n, m := p.NumVariables(), p.NumConstraints()
	tol := s.opts.Tol

	if cap(s.initBuf) < 2*(n+m) {
		s.initBuf = linalg.NewVector(2 * (n + m))
	}
	s.initBuf = s.initBuf[:2*(n+m)]
	s.initBuf.Fill(1)
	x := s.initBuf[0:n]
	y := s.initBuf[n : n+m]
	w := s.initBuf[n+m : n+2*m]
	z := s.initBuf[n+2*m:]
	warm, err := s.applyWarmStart(p, nil, x, y, w, z)
	if err != nil {
		return nil, nil, err
	}
	// SOC blocks start at the Jordan identity e = (1, 0, …, 0): the all-ones
	// vector is NOT interior for cone dimension ≥ 3 (‖tail‖ ≥ axis).
	if blocks := p.SOCBlocks(); !warm && len(blocks) > 0 {
		cone.InitInterior(y, blocks)
		cone.InitInterior(w, blocks)
	}

	ext, err := newExtendedInto(s.ext, p, x, y, w, z)
	if err != nil {
		return nil, nil, err
	}
	s.ext = ext
	fab, err := s.fabric(ext.size)
	if err != nil {
		return nil, nil, err
	}
	if dp, ok := fab.(DeltaProgrammer); ok {
		// Delta-write skips are only valid for the scalar complementarity
		// rows of an orthant LP; conic NT blocks are structurally coupled.
		// Toggled per solve because the fabric is cached across problems.
		dp.SetDeltaProgramming(len(ext.blocks) == 0)
	}
	countersBase := fab.Counters()
	s.tr.beginAttempt(countersBase)
	if err := fab.Program(ext.matrix); err != nil {
		return nil, nil, fmt.Errorf("core: programming fabric: %w", err)
	}

	// The full extended state s = [x, y, w, z, u, v, p] is updated as one
	// vector with the fabric's Δs — exactly Algorithm 1's "s = s + θΔs".
	// Re-deriving u/v/p digitally each iteration (u = −w, …) would fight
	// the fabric's variation-perturbed consistency rows and leak a
	// var-proportional fraction of every step into the residuals.
	sExt := ext.stateVector(x, y, w, z)
	factor := ext.factorVector()
	x = sExt[0:n]
	y = sExt[n : n+m]
	w = sExt[n+m : n+2*m]
	z = sExt[n+2*m : 2*n+2*m]

	res := &Result{Status: lp.StatusIterationLimit, MatrixSize: ext.size}
	conic := ext.conic()
	nu := ext.barrierDegree()
	bestConeInf := 0.0
	bestGap := infNaN()
	stall := 0
	prevNorm := 0.0
	// The controller monitors the measured residuals (they fall out of the
	// analog mat-vec for free) and keeps the best iterate seen: near the
	// accuracy floor the analog noise can push later iterates away from
	// feasibility again.
	best := snapshot{score: infNaN()}
	var ctxErr error

	for iter := 1; iter <= tol.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			res.Status = lp.StatusCanceled
			ctxErr = fmt.Errorf("core: solve canceled at iteration %d: %w", iter, err)
			break
		}
		res.Iterations = iter

		// The duality gap zᵀx + yᵀw is computed digitally (the controller
		// holds s) — Eq. 8.
		gap := dualityGap(x, z, y, w)
		mu := tol.Delta * gap / nu
		// Residual r in one fused analog operation (Eq. 15): the fabric
		// computes M·s, halves the r3/r4 rows with resistive dividers, and
		// subtracts from the calibrated base at the summing amplifiers —
		// only the residual itself passes the ADC, so there is no
		// large-product cancellation noise.
		r, err := fab.MatVecResidual(ext.baseVector(p, mu), sExt, factor)
		if err != nil {
			return nil, nil, fmt.Errorf("core: residual mat-vec: %w", err)
		}

		// Convergence measures come from the measured residual (the analog
		// path), exactly as the hardware controller would read them.
		res.PrimalInfeasibility = normInfRange(r, ext.rowR1(0), ext.m)
		res.DualInfeasibility = normInfRange(r, ext.rowR2(0), ext.n)
		res.DualityGap = gap
		if conic {
			res.ConeInfeasibility = ext.slackConeInf(r, w)
		}

		if best.consider(res.PrimalInfeasibility, res.DualInfeasibility, gap, x, y, w, z) {
			bestConeInf = res.ConeInfeasibility
		}

		if res.PrimalInfeasibility <= tol.PrimalFeasTol &&
			res.DualInfeasibility <= tol.DualFeasTol &&
			gap <= tol.GapTol {
			res.Status = lp.StatusOptimal
			break
		}
		if x.NormInf() > tol.BlowupLimit {
			res.Status = lp.StatusUnbounded
			break
		}
		if y.NormInf() > tol.BlowupLimit {
			res.Status = lp.StatusInfeasible
			break
		}
		// Analog accuracy floor: stop when the gap no longer improves —
		// but not while the iterates are still growing, which signals an
		// infeasible/unbounded instance marching toward the blow-up check.
		norm := x.NormInf()
		if yn := y.NormInf(); yn > norm {
			norm = yn
		}
		growing := norm > prevNorm*1.02
		prevNorm = norm
		if gap < bestGap*(1-1e-3) {
			bestGap = gap
			stall = 0
		} else if !growing {
			stall++
			if stall >= s.opts.StallWindow {
				res.Status = lp.StatusOptimal
				break
			}
		}

		// Newton step: one analog settle.
		ds, err := fab.Solve(r)
		if err != nil {
			if errors.Is(err, crossbar.ErrSingular) {
				res.Status = lp.StatusNumericalFailure
				break
			}
			return nil, nil, fmt.Errorf("core: analog solve: %w", err)
		}
		dx, dy, dw, dz := ext.split(ds)
		if !dx.AllFinite() || !dy.AllFinite() || !dw.AllFinite() || !dz.AllFinite() {
			res.Status = lp.StatusNumericalFailure
			break
		}

		var theta float64
		if conic {
			theta = stepLengthConic(tol.StepScale, ext, x, dx, y, dy, w, dw, z, dz)
		} else {
			theta = stepLength(tol.StepScale, [][2]linalg.Vector{
				{x, dx}, {y, dy}, {w, dw}, {z, dz},
			})
		}
		if s.tr.active() {
			s.tr.note(fab.Counters())
			s.tr.emit(trace.Record{
				Event:               trace.EventIteration,
				Iteration:           iter,
				Mu:                  mu,
				DualityGap:          gap,
				PrimalInfeasibility: res.PrimalInfeasibility,
				DualInfeasibility:   res.DualInfeasibility,
				ConeInfeasibility:   res.ConeInfeasibility,
				Theta:               theta,
			})
		}
		// One summing-amplifier update of the whole extended state
		// (x, y, w, z views alias sExt).
		if err := sExt.AxpyInPlace(theta, ds); err != nil {
			return nil, nil, err
		}
		if conic {
			clampPositive(x, z)
			clampOrthantRows(y, ext.socRow)
			clampOrthantRows(w, ext.socRow)
			cone.ClampInterior(y, ext.blocks, 1e-12)
			cone.ClampInterior(w, ext.blocks, 1e-12)
			if !ext.updateScalings(w, y) {
				res.Status = lp.StatusNumericalFailure
				break
			}
		} else {
			clampPositive(x, y, w, z)
		}

		// Refresh the complementarity diagonals on the fabric: the O(N)
		// per-iteration write (2(n+m) ≈ 2.7N cells for n = m/3).
		ext.fillDiagRows(x, y, w, z)
		for _, u := range ext.diagRowUpdates(x, y, w, z) {
			if err := fab.UpdateRow(u.index, u.row); err != nil {
				if errors.Is(err, crossbar.ErrTooLarge) {
					// Row outgrew the programmed headroom: reprogram the
					// full array (counted as a full rewrite).
					if err := fab.Program(ext.matrix); err != nil {
						return nil, nil, fmt.Errorf("core: reprogramming fabric: %w", err)
					}
					break
				}
				return nil, nil, fmt.Errorf("core: updating fabric row: %w", err)
			}
		}
	}

	// Prefer the best-residual iterate over the last one when the solver
	// converged normally; blow-up detections keep the final (diverged)
	// point so callers can inspect it. The final iterate is remembered
	// separately: divergence classification must look at where the
	// iteration was heading, not at the best snapshot.
	finalX, finalY, finalW, finalZ := x, y, w, z
	if res.Status == lp.StatusOptimal || res.Status == lp.StatusIterationLimit {
		if best.valid() {
			x, y, w, z = best.x, best.y, best.w, best.z
			res.PrimalInfeasibility = best.pinf
			res.DualInfeasibility = best.dinf
			res.DualityGap = best.gap
			res.ConeInfeasibility = bestConeInf
		}
	}
	res.X, res.Y, res.W, res.Z = x, y, w, z
	obj, err := p.Objective(x)
	if err != nil {
		return nil, nil, err
	}
	res.Objective = obj
	res.Counters = fab.Counters().Sub(countersBase)

	// Robust feasibility detection (§3.2): accept the converged point only
	// if A·x ≤ α·b; variation can distort the realized constraints, so α is
	// slightly above 1.
	// A budget-limited run that still passes the α-check is an acceptable
	// answer: the analog accuracy floor, not the budget, set its quality.
	if res.Status == lp.StatusOptimal || res.Status == lp.StatusIterationLimit {
		ok, err := p.IsFeasible(x, s.opts.Alpha-1)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			res.Status = classifyRejected(finalX, finalY, finalW, finalZ)
		} else {
			res.Status = lp.StatusOptimal
		}
	}
	return res, ctxErr, nil
}

// snapshot keeps the best iterate seen, scored by the worst of the measured
// convergence quantities (primal/dual infeasibility and duality gap).
type snapshot struct {
	ok              bool
	score           float64
	pinf, dinf, gap float64
	x, y, w, z      linalg.Vector
}

func (s *snapshot) consider(pinf, dinf, gap float64, x, y, w, z linalg.Vector) bool {
	score := pinf
	if dinf > score {
		score = dinf
	}
	if gap > score {
		score = gap
	}
	if score >= s.score {
		return false
	}
	s.ok = true
	s.score = score
	s.pinf, s.dinf, s.gap = pinf, dinf, gap
	// Copy into retained buffers (append reuses capacity across iterations
	// and solves, so steady-state snapshots allocate nothing).
	s.x = append(s.x[:0], x...)
	s.y = append(s.y[:0], y...)
	s.w = append(s.w[:0], w...)
	s.z = append(s.z[:0], z...)
	return true
}

// reset invalidates the snapshot while keeping its buffers, so a pool worker
// reuses one snapshot across every solve it runs.
func (s *snapshot) reset() {
	s.ok = false
	s.score = infNaN()
}

func (s *snapshot) valid() bool { return s.ok }

// equilibrate row-scales the problem: each constraint row of [A | b] is
// divided by its maximum absolute coefficient, a standard digital presolve
// that the controller performs once in O(N²). It bounds the dynamic range
// of the slack variables w (and hence of the w/y coupling coefficients the
// analog fabric must represent) without changing the primal solution; the
// dual variables scale as y = y'/d and are unscaled before returning.
// Algorithm 2 depends on it (its M1 carries the w/y couplings); Algorithm 1
// deliberately does not use it — compressing b flattens the slack scale and
// slows its adaptive-step convergence measurably at large m.
func equilibrate(p *lp.Problem) (*lp.Problem, linalg.Vector) {
	m := p.NumConstraints()
	d := linalg.NewVector(m)
	a := p.A.Clone()
	b := p.B.Clone()
	for i := 0; i < m; i++ {
		var mx float64
		for _, v := range a.RawRow(i) {
			if v < 0 {
				v = -v
			}
			if v > mx {
				mx = v
			}
		}
		if bv := b[i]; bv < 0 && -bv > mx {
			mx = -bv
		} else if bv > mx {
			mx = bv
		}
		if mx == 0 {
			mx = 1
		}
		d[i] = mx
		row := a.RawRow(i)
		for j := range row {
			row[j] /= mx
		}
		b[i] /= mx
	}
	return &lp.Problem{Name: p.Name, C: p.C, A: a, B: b}, d
}

// unscaleDual maps the equilibrated problem's duals back to the original
// problem's units: y = y'/d (and the slacks w = d·w').
func unscaleDual(y, w, d linalg.Vector) {
	for i := range y {
		y[i] /= d[i]
		w[i] *= d[i]
	}
}

// --- shared helpers -------------------------------------------------------

func onesVector(n int) linalg.Vector {
	v := linalg.NewVector(n)
	v.Fill(1)
	return v
}

// dualityGap computes zᵀx + yᵀw, the Eq. 8 complementarity gap.
//
//memlp:hotpath
func dualityGap(x, z, y, w linalg.Vector) float64 {
	zx, _ := z.Dot(x)
	yw, _ := y.Dot(w)
	return zx + yw
}

// stepLength implements Eq. 11. Components that have shrunk far below their
// vector's scale are excluded from the ratio test: the analog fabric cannot
// represent coefficients that small (finite conductance dynamic range), so a
// floored complementarity row can demand pushing such a variable negative
// forever. Without the exclusion, a single such component collapses θ
// geometrically (θ ← θ/10 each iteration) and deadlocks every other variable.
//
//memlp:hotpath
func stepLength(r float64, pairs [][2]linalg.Vector) float64 {
	maxRatio := 0.0
	for _, pr := range pairs {
		v, dv := pr[0], pr[1]
		pin := 1e-6 * v.Max()
		if pin < 1e-10 {
			pin = 1e-10
		}
		for i := range v {
			if dv[i] < 0 && v[i] > pin {
				if ratio := -dv[i] / v[i]; ratio > maxRatio {
					maxRatio = ratio
				}
			}
		}
	}
	if maxRatio <= 1 {
		return r
	}
	return r / maxRatio
}

// stepLengthConic is stepLength for conic systems: x and z take the full
// componentwise Eq. 11 ratio test, y and w take it on their orthant rows
// only, and each SOC block contributes its cone-boundary exit ratio instead
// of per-component ratios — tail components of a cone block may legitimately
// cross zero.
//
//memlp:hotpath
func stepLengthConic(r float64, e *extended, x, dx, y, dy, w, dw, z, dz linalg.Vector) float64 {
	maxRatio := ratioFull(0, x, dx)
	maxRatio = ratioFull(maxRatio, z, dz)
	maxRatio = ratioOrthant(maxRatio, y, dy, e.socRow)
	maxRatio = ratioOrthant(maxRatio, w, dw, e.socRow)
	maxRatio = ratioConePinned(maxRatio, y, dy, e.blocks)
	maxRatio = ratioConePinned(maxRatio, w, dw, e.blocks)
	if maxRatio <= 1 {
		return r
	}
	return r / maxRatio
}

// ratioConePinned folds each SOC block's boundary-exit ratio into maxRatio,
// with the cone analog of stepLength's representability pin: a block whose
// interior margin has collapsed far below its own scale is EXCLUDED from the
// ratio test. At an optimum the active blocks sit exactly on the boundary
// (complementarity), so their analog-perturbed Newton directions keep
// pointing outward; without the exclusion the exit ratio grows geometrically
// (θ ← θ·(1−r) each iteration) and deadlocks every other variable, exactly
// the scalar deadlock the LP pin prevents. The per-iteration cone clamp
// keeps excluded blocks representably interior.
//
//memlp:hotpath
func ratioConePinned(maxRatio float64, v, dv linalg.Vector, blocks []cone.Block) float64 {
	for _, blk := range blocks {
		s := v[blk.Start : blk.Start+blk.Dim]
		ds := dv[blk.Start : blk.Start+blk.Dim]
		pin := 1e-6 * s[0]
		if pin < 1e-10 {
			pin = 1e-10
		}
		if -cone.Dist(s) <= pin {
			continue
		}
		t := cone.StepToBoundary(s, ds)
		if t > 0 && !math.IsInf(t, 1) {
			if ratio := 1 / t; ratio > maxRatio {
				maxRatio = ratio
			}
		}
	}
	return maxRatio
}

// ratioFull folds v's componentwise Eq. 11 ratios into maxRatio, with the
// same representability pin as stepLength.
//
//memlp:hotpath
func ratioFull(maxRatio float64, v, dv linalg.Vector) float64 {
	pin := 1e-6 * v.Max()
	if pin < 1e-10 {
		pin = 1e-10
	}
	for i := range v {
		if dv[i] < 0 && v[i] > pin {
			if ratio := -dv[i] / v[i]; ratio > maxRatio {
				maxRatio = ratio
			}
		}
	}
	return maxRatio
}

// ratioOrthant is ratioFull restricted to rows outside SOC blocks.
//
//memlp:hotpath
func ratioOrthant(maxRatio float64, v, dv linalg.Vector, socRow []int) float64 {
	pin := 1e-6 * v.Max()
	if pin < 1e-10 {
		pin = 1e-10
	}
	for i := range v {
		if socRow[i] >= 0 {
			continue
		}
		if dv[i] < 0 && v[i] > pin {
			if ratio := -dv[i] / v[i]; ratio > maxRatio {
				maxRatio = ratio
			}
		}
	}
	return maxRatio
}

// clampOrthantRows floors the orthant rows of a constraint-space vector at
// the representability floor, leaving SOC-block components untouched (their
// tails are legitimately signed; cone.ClampInterior handles the blocks).
//
//memlp:hotpath
func clampOrthantRows(v linalg.Vector, socRow []int) {
	const floor = 1e-12
	for i, x := range v {
		if socRow[i] < 0 && x < floor {
			v[i] = floor
		}
	}
}

// axpyAll applies v ← v + θ·dv to each (v, dv) pair of the flat argument
// list. The variadic slice is built at the (annotated-caller-free) call
// sites; the body itself must stay allocation-free.
//
//memlp:hotpath
func axpyAll(theta float64, pairs ...linalg.Vector) {
	for i := 0; i+1 < len(pairs); i += 2 {
		v, dv := pairs[i], pairs[i+1]
		for j := range v {
			v[j] += theta * dv[j]
		}
	}
}

// clampPositive floors every component at the representability floor,
// keeping the interior iterates strictly positive.
//
//memlp:hotpath
func clampPositive(vs ...linalg.Vector) {
	const floor = 1e-12
	for _, v := range vs {
		for i, x := range v {
			if x < floor {
				v[i] = floor
			}
		}
	}
}

// slewLimit returns the largest step fraction that keeps θ·|Δ|∞ within a few
// multiples of the state's own scale — the summing-amplifier saturation
// bound. Returns +Inf-like (1.0) when the step is already tame.
//
//memlp:hotpath
func slewLimit(state, delta linalg.Vector) float64 {
	const slewFactor = 4.0
	limit := slewFactor * (1 + state.NormInf())
	d := delta.NormInf()
	if d <= limit {
		return 1
	}
	return limit / d
}

// classifyRejected refines a stall-converged-but-α-rejected result using the
// §3.1 duality argument: a diverged dual side (y or the dual slacks z)
// indicates primal infeasibility, a diverged primal side (x or the primal
// slacks w) indicates an unbounded objective; otherwise the solve is a plain
// numerical failure. Interior points start at all-ones, so a side that has
// grown by orders of magnitude while the other stayed small is a divergence
// ray, even when step guards kept it below the hard blow-up limit.
func classifyRejected(x, y, w, z linalg.Vector) lp.Status {
	const grown = 1e3
	dual := y.NormInf()
	if zn := z.NormInf(); zn > dual {
		dual = zn
	}
	primal := x.NormInf()
	if wn := w.NormInf(); wn > primal {
		primal = wn
	}
	if dual > grown && dual > 10*primal {
		return lp.StatusInfeasible
	}
	if primal > grown && primal > 10*dual {
		return lp.StatusUnbounded
	}
	return lp.StatusNumericalFailure
}

// normInfRange returns ‖v[start:start+count]‖∞ without slicing scratch.
//
//memlp:hotpath
func normInfRange(v linalg.Vector, start, count int) float64 {
	var mx float64
	for _, x := range v[start : start+count] {
		if x < 0 {
			x = -x
		}
		if x > mx {
			mx = x
		}
	}
	return mx
}

func infNaN() float64 { return 1e308 }
