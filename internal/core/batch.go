package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
	"github.com/memlp/memlp/internal/trace"
)

// SolveBatch solves a sequence of problems that share one constraint matrix
// A but differ in b and c — the paper's "high-data-rate applications"
// scenario (e.g. a router re-solving the same topology as demands change).
// The extended system is programmed once per shard fabric; each solve only
// refreshes the X/Y/Z/W complementarity rows, so the dominant O(size²)
// programming cost is amortized across the whole batch. The batch fans out
// over a pool of replicated fabrics (Options.Parallelism shards), exactly as
// a multi-die deployment replicates one programmed array and load-balances
// incoming instances across the copies.
//
// All problems must have identical A (checked); b and c may vary freely.
func (s *Solver) SolveBatch(problems []*lp.Problem) ([]*Result, error) {
	return s.SolveBatchContext(context.Background(), problems)
}

// BatchStats is the pool-level roll-up of one SolveBatch call, attached to
// the batch's first Result (the same place the one-time programming cost is
// charged). Per-solve Counters stay honest marginals — what THAT solve cost
// on whichever shard ran it — while the replica count and per-shard
// utilization live here, because they are properties of the batch, not of
// any single solve.
type BatchStats struct {
	// Replicas is the pool width P: how many shard fabrics were built and
	// programmed. The one-time programming cost scales with it.
	Replicas int
	// Programming is the combined programming cost of all P replicas. It is
	// also folded into the first result's Counters, preserving the serial
	// contract that the first result carries the batch's one-time cost.
	Programming crossbar.Counters
	// ShardSolves[r] counts the problems shard r completed — the pool's
	// load-balance picture. Scheduling is nondeterministic, so these numbers
	// vary run to run even though every result is bit-identical.
	ShardSolves []int
	// ShardBusy[r] is the total wall time shard r spent solving; dividing by
	// the batch wall time gives that shard's utilization.
	ShardBusy []time.Duration
}

// batchWorker owns one shard of the fabric pool: a programmed fabric replica
// plus the private iteration workspace (extended system, starting-iterate
// buffer, scaled-b scratch, best-iterate snapshot) that lets a worker run
// back-to-back solves without per-solve allocations outside the result
// vectors themselves.
type batchWorker struct {
	shard    int
	fab      Fabric
	ext      *extended
	initBuf  linalg.Vector
	bBuf     linalg.Vector
	best     snapshot
	progCost crossbar.Counters
	solves   int
	busy     time.Duration
	// tr is this shard's private trace recorder (one ring per worker, so
	// concurrent shards never share trace state); nil when tracing is off.
	tr *traceState
}

// batchSlot collects one problem's outcome; slots are indexed by problem, so
// results are assembled in input order no matter which shard ran what.
type batchSlot struct {
	res    *Result
	ctxErr error
	err    error
}

// SolveBatchContext is SolveBatch with cancellation: the context is checked
// once per iteration inside each solve, so cancellation aborts every
// in-flight and not-yet-started solve at its next check. The completed
// results up to the first interrupted problem are returned in input order
// with that problem's lp.StatusCanceled partial as the last element,
// alongside the wrapped context error — the same shape the serial path
// produced.
//
// Each result's Counters and WallTime are the per-solve marginals; the first
// result additionally carries the pool's one-time programming cost (×P for P
// replicas) and the BatchStats roll-up.
//
// Determinism contract: results are bit-identical for every pool width. Each
// problem's stochastic write-noise draws are rebased to (base seed, problem
// index) via NoiseEpocher before the solve, so they cannot depend on which
// shard — or how encumbered a shard — runs the problem.
func (s *Solver) SolveBatchContext(ctx context.Context, problems []*lp.Problem) ([]*Result, error) {
	if len(problems) == 0 {
		return nil, fmt.Errorf("%w: empty batch", lp.ErrInvalid)
	}
	if err := validateBatch(problems); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: batch canceled before problem 0: %w", err)
	}

	// Shared digital presolve, once per batch: row equilibration depends only
	// on A (the b's differ across the batch), so the programmed A-blocks stay
	// valid for every instance.
	first := problems[0]
	aShared, scales := batchEquilibrate(first)

	width := s.batchWidth(len(problems))
	workers := make([]*batchWorker, width)
	for r := range workers {
		w, err := s.newBatchWorker(r, first, aShared, scales)
		if err != nil {
			return nil, err
		}
		workers[r] = w
	}

	// Bounded worker pool: the dispatcher feeds problem indices in order;
	// each worker drains the channel, solving on its own replica. Every
	// problem is dispatched even after a cancellation — a canceled job's
	// solve aborts at its first iteration check and contributes its
	// StatusCanceled starting-iterate partial, which is what guarantees the
	// collected results always end on the first interrupted problem's
	// partial, exactly like the serial path. Slots are per-problem, so no
	// two goroutines share memory beyond the read-only problem/scale data.
	slots := make([]batchSlot, len(problems))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *batchWorker) {
			defer wg.Done()
			for idx := range jobs {
				s.runBatchProblem(ctx, w, idx, problems[idx], aShared, scales, &slots[idx])
			}
		}(w)
	}
	go func() {
		defer close(jobs)
		for idx := range problems {
			jobs <- idx
		}
	}()
	wg.Wait()

	// Assemble in input order. A hard error wins over partial results (the
	// serial contract); an interruption returns the completed prefix plus the
	// first interrupted problem's partial. Later slots — including solves
	// that happened to complete after the interruption point — are dropped,
	// keeping the result shape identical to the serial path's.
	results := make([]*Result, 0, len(problems))
	var tailErr error
	for idx := range slots {
		sl := &slots[idx]
		if sl.err != nil {
			return nil, fmt.Errorf("problem %d: %w", idx, sl.err)
		}
		if sl.res == nil {
			// Defensive: every problem is dispatched and every job fills its
			// slot, so an empty slot implies a logic error, not cancellation.
			return nil, fmt.Errorf("core: batch problem %d produced no result", idx)
		}
		results = append(results, sl.res)
		if sl.ctxErr != nil {
			tailErr = fmt.Errorf("problem %d: %w", idx, sl.ctxErr)
			break
		}
	}
	// Later hard errors must not be silently dropped by an earlier
	// cancellation prefix: scan the remainder so a real failure surfaces.
	if tailErr != nil {
		for idx := len(results); idx < len(slots); idx++ {
			if e := slots[idx].err; e != nil {
				return nil, fmt.Errorf("problem %d: %w", idx, e)
			}
		}
	}

	if len(results) > 0 {
		stats := &BatchStats{
			Replicas:    width,
			ShardSolves: make([]int, width),
			ShardBusy:   make([]time.Duration, width),
		}
		for _, w := range workers {
			stats.Programming = stats.Programming.Add(w.progCost)
			stats.ShardSolves[w.shard] = w.solves
			stats.ShardBusy[w.shard] = w.busy
		}
		results[0].Counters = results[0].Counters.Add(stats.Programming)
		results[0].Batch = stats
	}
	return results, tailErr
}

// validateBatch validates every problem and checks the shared-A contract.
// Problems that share the literal *linalg.Matrix — the common streaming case,
// where one topology object is reused with fresh b/c — short-circuit on
// pointer identity instead of paying the O(mn) element compare.
func validateBatch(problems []*lp.Problem) error {
	first := problems[0]
	if err := first.Validate(); err != nil {
		return err
	}
	if first.IsConic() {
		return fmt.Errorf("core: batch solving: %w", lp.ErrConicUnsupported)
	}
	for i, p := range problems[1:] {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("problem %d: %w", i+1, err)
		}
		if p.IsConic() {
			return fmt.Errorf("problem %d: %w", i+1, lp.ErrConicUnsupported)
		}
		if p.A != first.A && !p.A.Equal(first.A, 0) {
			return fmt.Errorf("%w: problem %d has a different constraint matrix", lp.ErrInvalid, i+1)
		}
	}
	return nil
}

// batchEquilibrate builds the batch's shared A-only row scaling: each row of
// the cloned A is divided by its maximum absolute coefficient. Unlike the
// single-solve equilibrate it must ignore b, whose value varies per instance.
func batchEquilibrate(first *lp.Problem) (*linalg.Matrix, []float64) {
	m := first.NumConstraints()
	scales := make([]float64, m)
	aShared := first.A.Clone()
	for i := 0; i < m; i++ {
		var mx float64
		for _, v := range aShared.RawRow(i) {
			if v < 0 {
				v = -v
			}
			if v > mx {
				mx = v
			}
		}
		if mx == 0 {
			mx = 1
		}
		scales[i] = mx
		row := aShared.RawRow(i)
		for j := range row {
			row[j] /= mx
		}
	}
	return aShared, scales
}

// batchWidth resolves the pool width: Options.Parallelism, defaulting to
// GOMAXPROCS, clamped to the batch size (an idle replica is pure programming
// cost).
func (s *Solver) batchWidth(batch int) int {
	p := s.opts.Parallelism
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > batch {
		p = batch
	}
	if p < 1 {
		p = 1
	}
	return p
}

// replicaFabric builds one shard fabric, preferring the replica-aware
// factory (see Options.ReplicaFabric).
func (s *Solver) replicaFabric(size int) (Fabric, error) {
	if s.opts.ReplicaFabric != nil {
		return s.opts.ReplicaFabric(size)
	}
	return s.opts.Fabric(size)
}

// newBatchWorker builds and programs one shard of the pool. Every shard
// programs the identical extended matrix (built from the first problem at
// the all-ones start) from an identically-seeded variation stream, so the
// replicas realize the same conductances cell for cell.
func (s *Solver) newBatchWorker(shard int, first *lp.Problem, aShared *linalg.Matrix, scales []float64) (*batchWorker, error) {
	n, m := first.NumVariables(), first.NumConstraints()
	b := first.B.Clone()
	for i := range b {
		b[i] /= scales[i]
	}
	scaled := &lp.Problem{Name: first.Name, C: first.C, A: aShared, B: b}
	x := onesVector(n)
	y := onesVector(m)
	ext, err := newExtended(scaled, x, y, y.Clone(), x.Clone())
	if err != nil {
		return nil, err
	}
	fab, err := s.replicaFabric(ext.size)
	if err != nil {
		return nil, fmt.Errorf("core: building batch replica %d: %w", shard, err)
	}
	if err := fab.Program(ext.matrix); err != nil {
		return nil, fmt.Errorf("core: programming batch replica %d: %w", shard, err)
	}
	return &batchWorker{
		shard:    shard,
		fab:      fab,
		ext:      ext,
		best:     snapshot{score: infNaN()},
		progCost: fab.Counters(),
		tr:       newTraceState(s.opts),
	}, nil
}

// runBatchProblem prepares problem idx for the shard (noise epoch, shared row
// scaling of b) and records its outcome in the slot. Counters and WallTime
// are the per-solve marginals on this shard's fabric.
func (s *Solver) runBatchProblem(ctx context.Context, bw *batchWorker, idx int, p *lp.Problem, aShared *linalg.Matrix, scales []float64, slot *batchSlot) {
	start := wallClock()
	if ne, ok := bw.fab.(NoiseEpocher); ok {
		// Stochastic draws for this problem become a function of (base seed,
		// problem index): independent of the shard and of the pool width.
		ne.SetNoiseEpoch(int64(idx))
	}
	if cap(bw.bBuf) < len(p.B) {
		bw.bBuf = linalg.NewVector(len(p.B))
	}
	bw.bBuf = bw.bBuf[:len(p.B)]
	copy(bw.bBuf, p.B)
	for i := range bw.bBuf {
		bw.bBuf[i] /= scales[i]
	}
	scaled := &lp.Problem{Name: p.Name, C: p.C, A: aShared, B: bw.bBuf}

	// The trace is keyed by problem index (and so is the noise epoch, per
	// the determinism contract): its contents cannot depend on the shard.
	bw.tr.begin(idx, int64(idx))
	before := bw.fab.Counters()
	bw.tr.beginAttempt(before)
	res, ctxErr, err := s.solveOnShard(ctx, bw, scaled, p, scales)
	if err != nil {
		slot.err = err
		return
	}
	res.WallTime = wallSince(start)
	res.Counters = bw.fab.Counters().Sub(before)
	res.Trace = bw.tr.finish(res)
	if s.opts.Recovery != nil {
		// The ladder itself does not run on the batch path (a pooled shard
		// cannot rebuild or remap mid-batch), but callers that configured
		// recovery still get the same per-solve telemetry the serial path
		// attaches: fault census, retry and energy totals.
		diag := &Diagnostics{Attempts: 1, WriteRetries: res.Counters.WriteRetries}
		if fr, ok := bw.fab.(FaultReporter); ok {
			c := fr.FaultCensus()
			diag.StuckOn, diag.StuckOff = c.StuckOn, c.StuckOff
		}
		if s.opts.EnergyModel != nil {
			diag.EnergyJoules = s.opts.EnergyModel(res.Counters)
		}
		res.Diagnostics = diag
	}
	slot.res, slot.ctxErr = res, ctxErr
	bw.busy += res.WallTime
	if ctxErr == nil {
		bw.solves++
	}
}

// solveOnShard runs the Algorithm 1 iteration on the shard's already-
// programmed replica, resetting the complementarity rows to the all-ones
// start first. scaled is the equilibrated problem driving the iteration;
// orig is used for the final α-check and objective; scales unscale the
// duals. It follows the solveOnce contract: (result, ctxErr, err), where an
// interruption returns the partial iterate with lp.StatusCanceled in
// ctxErr's company.
func (s *Solver) solveOnShard(ctx context.Context, bw *batchWorker, scaled, orig *lp.Problem, scales []float64) (*Result, error, error) {
	n, m := scaled.NumVariables(), scaled.NumConstraints()
	tol := s.opts.Tol
	ext, fab := bw.ext, bw.fab

	if cap(bw.initBuf) < 2*(n+m) {
		bw.initBuf = linalg.NewVector(2 * (n + m))
	}
	bw.initBuf = bw.initBuf[:2*(n+m)]
	bw.initBuf.Fill(1)
	x := bw.initBuf[0:n]
	y := bw.initBuf[n : n+m]
	w := bw.initBuf[n+m : n+2*m]
	z := bw.initBuf[n+2*m:]
	// Warm-start the shard iterate when set. The seed is derived from the
	// SCALED problem so the iteration sees consistent units; the stored duals
	// are user-unit, so scales maps them in (ŷᵢ = yᵢ·scaleᵢ, mirroring the
	// unscale below). The warm vectors are set before the batch starts and
	// only read here, so shard workers race neither with each other nor with
	// the pool — and the seed, like the noise epoch, is shard-independent,
	// preserving the bit-identical-across-widths contract.
	if _, err := s.applyWarmStart(scaled, scales, x, y, w, z); err != nil {
		return nil, nil, err
	}

	// Reset the complementarity rows for the fresh solve (2(n+m) cells).
	// Skip when already canceled: the iteration loop's first check then
	// yields the starting-iterate StatusCanceled partial without spending
	// fabric writes on a job that will not run.
	if ctx.Err() == nil {
		ext.fillDiagRows(x, y, w, z)
		for _, u := range ext.diagRowUpdates(x, y, w, z) {
			if err := fab.UpdateRow(u.index, u.row); err != nil {
				return nil, nil, fmt.Errorf("core: resetting fabric row: %w", err)
			}
		}
	}

	sExt := ext.stateVector(x, y, w, z)
	factor := ext.factorVector()
	x = sExt[0:n]
	y = sExt[n : n+m]
	w = sExt[n+m : n+2*m]
	z = sExt[n+2*m : 2*n+2*m]

	res := &Result{Status: lp.StatusIterationLimit, MatrixSize: ext.size}
	bestGap := infNaN()
	stall := 0
	prevNorm := 0.0
	best := &bw.best
	best.reset()
	var ctxErr error

	for iter := 1; iter <= tol.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			res.Status = lp.StatusCanceled
			ctxErr = fmt.Errorf("core: solve canceled at iteration %d: %w", iter, err)
			break
		}
		res.Iterations = iter
		gap := dualityGap(x, z, y, w)
		mu := tol.Delta * gap / float64(n+m)
		r, err := fab.MatVecResidual(ext.baseVector(scaled, mu), sExt, factor)
		if err != nil {
			return nil, nil, fmt.Errorf("core: residual mat-vec: %w", err)
		}
		res.PrimalInfeasibility = normInfRange(r, ext.rowR1(0), ext.m)
		res.DualInfeasibility = normInfRange(r, ext.rowR2(0), ext.n)
		res.DualityGap = gap
		best.consider(res.PrimalInfeasibility, res.DualInfeasibility, gap, x, y, w, z)

		if res.PrimalInfeasibility <= tol.PrimalFeasTol &&
			res.DualInfeasibility <= tol.DualFeasTol && gap <= tol.GapTol {
			res.Status = lp.StatusOptimal
			break
		}
		if x.NormInf() > tol.BlowupLimit {
			res.Status = lp.StatusUnbounded
			break
		}
		if y.NormInf() > tol.BlowupLimit {
			res.Status = lp.StatusInfeasible
			break
		}
		norm := x.NormInf()
		if yn := y.NormInf(); yn > norm {
			norm = yn
		}
		growing := norm > prevNorm*1.02
		prevNorm = norm
		if gap < bestGap*(1-1e-3) {
			bestGap = gap
			stall = 0
		} else if !growing {
			stall++
			if stall >= s.opts.StallWindow {
				res.Status = lp.StatusOptimal
				break
			}
		}

		ds, err := fab.Solve(r)
		if err != nil {
			res.Status = lp.StatusNumericalFailure
			break
		}
		dx, dy, dw, dz := ext.split(ds)
		if !dx.AllFinite() || !dy.AllFinite() || !dw.AllFinite() || !dz.AllFinite() {
			res.Status = lp.StatusNumericalFailure
			break
		}
		theta := stepLength(tol.StepScale, [][2]linalg.Vector{
			{x, dx}, {y, dy}, {w, dw}, {z, dz},
		})
		if bw.tr.active() {
			bw.tr.note(fab.Counters())
			bw.tr.emit(trace.Record{
				Event:               trace.EventIteration,
				Iteration:           iter,
				Mu:                  mu,
				DualityGap:          gap,
				PrimalInfeasibility: res.PrimalInfeasibility,
				DualInfeasibility:   res.DualInfeasibility,
				Theta:               theta,
			})
		}
		if err := sExt.AxpyInPlace(theta, ds); err != nil {
			return nil, nil, err
		}
		clampPositive(x, y, w, z)
		ext.fillDiagRows(x, y, w, z)
		for _, u := range ext.diagRowUpdates(x, y, w, z) {
			if err := fab.UpdateRow(u.index, u.row); err != nil {
				return nil, nil, fmt.Errorf("core: updating fabric row: %w", err)
			}
		}
	}

	finalX, finalY, finalW, finalZ := x, y, w, z
	if res.Status == lp.StatusOptimal || res.Status == lp.StatusIterationLimit {
		if best.valid() {
			x, y, w, z = best.x, best.y, best.w, best.z
			res.PrimalInfeasibility = best.pinf
			res.DualInfeasibility = best.dinf
			res.DualityGap = best.gap
		}
	}
	res.X, res.Y, res.W, res.Z = x.Clone(), y.Clone(), w.Clone(), z.Clone()
	for i := range res.Y {
		res.Y[i] /= scales[i]
		res.W[i] *= scales[i]
	}
	obj, err := orig.Objective(res.X)
	if err != nil {
		return nil, nil, err
	}
	res.Objective = obj

	if res.Status == lp.StatusOptimal || res.Status == lp.StatusIterationLimit {
		ok, err := orig.IsFeasible(res.X, s.opts.Alpha-1)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			res.Status = classifyRejected(finalX, finalY, finalW, finalZ)
		} else {
			res.Status = lp.StatusOptimal
		}
	}
	return res, ctxErr, nil
}
