package core

import (
	"context"
	"fmt"
	"time"

	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
)

// SolveBatch solves a sequence of problems that share one constraint matrix
// A but differ in b and c — the paper's "high-data-rate applications"
// scenario (e.g. a router re-solving the same topology as demands change).
// The extended system is programmed onto the fabric once; each subsequent
// solve only refreshes the X/Y/Z/W complementarity rows, so the dominant
// O(size²) programming cost is amortized across the whole batch. The fabric
// (and therefore its static per-device variation) persists across solves,
// exactly as deployed hardware would behave.
//
// All problems must have identical A (checked); b and c may vary freely.
func (s *Solver) SolveBatch(problems []*lp.Problem) ([]*Result, error) {
	return s.SolveBatchContext(context.Background(), problems)
}

// SolveBatchContext is SolveBatch with cancellation: the context is checked
// before each problem and once per iteration inside each solve. On
// cancellation the results completed so far are returned alongside the
// wrapped context error — matching the single-solve contract, where the
// interrupted solve's partial iterate (lp.StatusCanceled) accompanies the
// error. The canceled solve's own partial result is the last element.
//
// Each result's Counters and WallTime are the per-solve marginals; the first
// result carries the one-time fabric programming cost.
func (s *Solver) SolveBatchContext(ctx context.Context, problems []*lp.Problem) ([]*Result, error) {
	if len(problems) == 0 {
		return nil, fmt.Errorf("%w: empty batch", lp.ErrInvalid)
	}
	first := problems[0]
	if err := first.Validate(); err != nil {
		return nil, err
	}
	for i, p := range problems[1:] {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("problem %d: %w", i+1, err)
		}
		if !p.A.Equal(first.A, 0) {
			return nil, fmt.Errorf("%w: problem %d has a different constraint matrix", lp.ErrInvalid, i+1)
		}
	}

	// Build the shared fabric once, from the first (equilibrated) problem.
	// Row equilibration depends only on A and b; within a batch the b's
	// differ, so the batch uses A-only scaling to keep the programmed
	// A-blocks valid for every instance.
	n, m := first.NumVariables(), first.NumConstraints()
	scales := make([]float64, m)
	aShared := first.A.Clone()
	for i := 0; i < m; i++ {
		var mx float64
		for _, v := range aShared.RawRow(i) {
			if v < 0 {
				v = -v
			}
			if v > mx {
				mx = v
			}
		}
		if mx == 0 {
			mx = 1
		}
		scales[i] = mx
		row := aShared.RawRow(i)
		for j := range row {
			row[j] /= mx
		}
	}

	var fab Fabric
	var ext *extended
	var prevCounters crossbar.Counters
	results := make([]*Result, 0, len(problems))
	for idx, p := range problems {
		if err := ctx.Err(); err != nil {
			return results, fmt.Errorf("core: batch canceled before problem %d: %w", idx, err)
		}
		// Scale this instance's b by the shared row scales.
		b := p.B.Clone()
		for i := range b {
			b[i] /= scales[i]
		}
		scaled := &lp.Problem{Name: p.Name, C: p.C, A: aShared, B: b}

		if fab == nil {
			x := onesVector(n)
			y := onesVector(m)
			var err error
			ext, err = newExtended(scaled, x, y, y.Clone(), x.Clone())
			if err != nil {
				return nil, err
			}
			fab, err = s.opts.Fabric(ext.size)
			if err != nil {
				return nil, fmt.Errorf("core: building batch fabric: %w", err)
			}
			if err := fab.Program(ext.matrix); err != nil {
				return nil, fmt.Errorf("core: programming batch fabric: %w", err)
			}
		}

		solveStart := time.Now()
		res, ctxErr, err := s.solveOnFabric(ctx, scaled, p, scales, ext, fab)
		if err != nil {
			return nil, fmt.Errorf("problem %d: %w", idx, err)
		}
		res.WallTime = time.Since(solveStart)
		// Marginalize the cumulative fabric counters so each result reports
		// only its own operations (the first also carries the programming).
		cum := fab.Counters()
		res.Counters = cum.Sub(prevCounters)
		prevCounters = cum
		results = append(results, res)
		if ctxErr != nil {
			return results, fmt.Errorf("problem %d: %w", idx, ctxErr)
		}
	}
	return results, nil
}

// solveOnFabric runs the Algorithm 1 iteration on an already-programmed
// fabric, resetting the complementarity rows to the all-ones start first.
// scaled is the equilibrated problem driving the iteration; orig is used
// for the final α-check and objective; scales unscale the duals. It follows
// the solveOnce contract: (result, ctxErr, err), where an interruption
// returns the partial iterate with lp.StatusCanceled in ctxErr's company.
func (s *Solver) solveOnFabric(ctx context.Context, scaled, orig *lp.Problem, scales []float64, ext *extended, fab Fabric) (*Result, error, error) {
	n, m := scaled.NumVariables(), scaled.NumConstraints()
	tol := s.opts.Tol

	x := onesVector(n)
	y := onesVector(m)
	w := onesVector(m)
	z := onesVector(n)

	// Reset the complementarity rows for the fresh solve (2(n+m) cells).
	ext.fillDiagRows(x, y, w, z)
	for _, u := range ext.diagRowUpdates(x, y, w, z) {
		if err := fab.UpdateRow(u.index, u.row); err != nil {
			return nil, nil, fmt.Errorf("core: resetting fabric row: %w", err)
		}
	}

	sExt := ext.stateVector(x, y, w, z)
	factor := ext.factorVector()
	x = sExt[0:n]
	y = sExt[n : n+m]
	w = sExt[n+m : n+2*m]
	z = sExt[n+2*m : 2*n+2*m]

	res := &Result{Status: lp.StatusIterationLimit, MatrixSize: ext.size}
	bestGap := infNaN()
	stall := 0
	prevNorm := 0.0
	best := snapshot{score: infNaN()}
	var ctxErr error

	for iter := 1; iter <= tol.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			res.Status = lp.StatusCanceled
			ctxErr = fmt.Errorf("core: solve canceled at iteration %d: %w", iter, err)
			break
		}
		res.Iterations = iter
		gap := dualityGap(x, z, y, w)
		mu := tol.Delta * gap / float64(n+m)
		r, err := fab.MatVecResidual(ext.baseVector(scaled, mu), sExt, factor)
		if err != nil {
			return nil, nil, fmt.Errorf("core: residual mat-vec: %w", err)
		}
		res.PrimalInfeasibility = normInfRange(r, ext.rowR1(0), ext.m)
		res.DualInfeasibility = normInfRange(r, ext.rowR2(0), ext.n)
		res.DualityGap = gap
		best.consider(res.PrimalInfeasibility, res.DualInfeasibility, gap, x, y, w, z)

		if res.PrimalInfeasibility <= tol.PrimalFeasTol &&
			res.DualInfeasibility <= tol.DualFeasTol && gap <= tol.GapTol {
			res.Status = lp.StatusOptimal
			break
		}
		if x.NormInf() > tol.BlowupLimit {
			res.Status = lp.StatusUnbounded
			break
		}
		if y.NormInf() > tol.BlowupLimit {
			res.Status = lp.StatusInfeasible
			break
		}
		norm := x.NormInf()
		if yn := y.NormInf(); yn > norm {
			norm = yn
		}
		growing := norm > prevNorm*1.02
		prevNorm = norm
		if gap < bestGap*(1-1e-3) {
			bestGap = gap
			stall = 0
		} else if !growing {
			stall++
			if stall >= s.opts.StallWindow {
				res.Status = lp.StatusOptimal
				break
			}
		}

		ds, err := fab.Solve(r)
		if err != nil {
			res.Status = lp.StatusNumericalFailure
			break
		}
		dx, dy, dw, dz := ext.split(ds)
		if !dx.AllFinite() || !dy.AllFinite() || !dw.AllFinite() || !dz.AllFinite() {
			res.Status = lp.StatusNumericalFailure
			break
		}
		theta := stepLength(tol.StepScale, [][2]linalg.Vector{
			{x, dx}, {y, dy}, {w, dw}, {z, dz},
		})
		if err := sExt.AxpyInPlace(theta, ds); err != nil {
			return nil, nil, err
		}
		clampPositive(x, y, w, z)
		ext.fillDiagRows(x, y, w, z)
		for _, u := range ext.diagRowUpdates(x, y, w, z) {
			if err := fab.UpdateRow(u.index, u.row); err != nil {
				return nil, nil, fmt.Errorf("core: updating fabric row: %w", err)
			}
		}
	}

	finalX, finalY, finalW, finalZ := x, y, w, z
	if res.Status == lp.StatusOptimal || res.Status == lp.StatusIterationLimit {
		if best.valid() {
			x, y, w, z = best.x, best.y, best.w, best.z
			res.PrimalInfeasibility = best.pinf
			res.DualInfeasibility = best.dinf
			res.DualityGap = best.gap
		}
	}
	res.X, res.Y, res.W, res.Z = x.Clone(), y.Clone(), w.Clone(), z.Clone()
	for i := range res.Y {
		res.Y[i] /= scales[i]
		res.W[i] *= scales[i]
	}
	obj, err := orig.Objective(res.X)
	if err != nil {
		return nil, nil, err
	}
	res.Objective = obj

	if res.Status == lp.StatusOptimal || res.Status == lp.StatusIterationLimit {
		ok, err := orig.IsFeasible(res.X, s.opts.Alpha-1)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			res.Status = classifyRejected(finalX, finalY, finalW, finalZ)
		} else {
			res.Status = lp.StatusOptimal
		}
	}
	return res, ctxErr, nil
}
