package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
	"github.com/memlp/memlp/internal/trace"
)

// LargeScaleSolver is Algorithm 2: the memristor crossbar-based linear
// program solver for large-scale operations (§3.4). Instead of one
// (3n+3m+q)-dimensional system per iteration it uses two much smaller ones:
//
//	M1·[Δx; Δy; Δp] = r1    (Eq. 16c/16d — see below)
//	M2·[Δz; Δw]     = r2    where M2 = diag(X, Y) (Eq. 16b)
//
// # Interpreting Eq. 16c
//
// The paper writes M1 = [A RU; RL Aᵀ] where RU/RL hold "very small" values
// that make the block matrix non-singular. Read literally (RU = εI with tiny
// ε), the system is wildly unstable for m ≠ n: the component of the primal
// residual outside range(A) is dumped into Δy amplified by 1/ε (we keep that
// literal mode available as an ablation — Options.LiteralFillers). The
// structure the paper draws, however, is exactly the reduced Newton (KKT)
// system obtained by eliminating Δw and Δz from Eq. 9:
//
//	⎡ A      −Y⁻¹W ⎤ ⎡Δx⎤ = ⎡ ρ − Y⁻¹(µ1 − YWe) ⎤
//	⎣ X⁻¹Z    Aᵀ   ⎦ ⎣Δy⎦   ⎣ σ + X⁻¹(µ1 − XZe) ⎦
//
// whose off-diagonal blocks are diagonal matrices of small values (z/x and
// w/y shrink along the central path) — precisely "RU and RL with very small
// values". X⁻¹Z is non-negative and maps directly; −Y⁻¹W maps through the
// paper's own Δp mirror-variable trick (Eq. 13) using Δp = −Δy. This reading
// is stable, keeps O(N) per-iteration coefficient updates (one diagonal cell
// per row, via single-cell in-place writes), and converges to the true
// optimum; it is the default.
//
// A constant step length θ is used (§3.4) together with the re-solve-on-
// failure "double checking" scheme (§4.3): fresh writes draw fresh variation,
// so reprogramming and solving again usually recovers.
type LargeScaleSolver struct {
	opts Options

	// Persistent per-handle state: the two fabrics and the M1/M2 mirrors
	// survive across solves so same-shaped problems pay no rebuild cost.
	// (Each solve still re-Programs the arrays, which redraws variation —
	// the double-checking scheme's fresh-write semantics are preserved.)
	// A LargeScaleSolver is safe for concurrent use; solves serialize on mu.
	mu       sync.Mutex
	sys      *lsSystem
	m2       *linalg.Matrix
	fab1     Fabric
	fab1Size int
	fab2     Fabric
	fab2Size int
	diagRow  linalg.Vector
	// tr records the iteration trace under mu; nil when tracing is off.
	tr *traceState
}

// NewLargeScaleSolver returns an Algorithm 2 solver.
func NewLargeScaleSolver(opts Options) (*LargeScaleSolver, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &LargeScaleSolver{opts: opts, tr: newTraceState(opts)}, nil
}

// Solve runs Algorithm 2 on p, retrying up to MaxResolves times when a solve
// fails to converge.
func (s *LargeScaleSolver) Solve(p *lp.Problem) (*Result, error) {
	return s.SolveContext(context.Background(), p)
}

// SolveContext runs Algorithm 2 on p, honoring cancellation and deadlines:
// the context is checked once per iteration and between re-solve attempts.
// An interrupted solve returns its partial iterate with lp.StatusCanceled
// alongside the wrapped context error.
func (s *LargeScaleSolver) SolveContext(ctx context.Context, p *lp.Problem) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Algorithm 2's two-phase M1/M2 split carries the scalar w/y couplings in
	// its reduced matrices; the dense NT blocks do not fit that layout.
	if p.IsConic() {
		return nil, fmt.Errorf("core: large-scale solver: %w", lp.ErrConicUnsupported)
	}
	start := wallClock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tr.begin(0, 0)
	if s.opts.Recovery != nil {
		// The recovery ladder subsumes the double-check loop below as its
		// rung 1 (same MaxResolves budget) and adds remap + software rungs.
		res, err := runRecoveryLadder(ctx, p, s.opts, ladderFuncs{
			attempt: func(ctx context.Context) (*Result, error, error) {
				return s.solveOnce(ctx, p)
			},
			census: s.censusBoth,
			remap:  s.remapFabrics,
			// No resetFresh: remap offsets must survive between attempts,
			// and solveOnce re-Programs (= fresh variation draws) anyway.
			event: s.tr.event,
		})
		if res != nil {
			res.WallTime = wallSince(start)
			res.Trace = s.tr.finish(res)
		}
		return res, err
	}
	var last *Result
	var counters crossbar.Counters
	for attempt := 0; attempt <= s.opts.MaxResolves; attempt++ {
		res, ctxErr, err := s.solveOnce(ctx, p)
		if err != nil {
			return nil, err
		}
		res.Resolves = attempt
		counters = counters.Add(res.Counters)
		res.Counters = counters
		res.WallTime = wallSince(start)
		if ctxErr != nil {
			res.Trace = s.tr.finish(res)
			return res, ctxErr
		}
		switch res.Status {
		case lp.StatusOptimal, lp.StatusInfeasible, lp.StatusUnbounded:
			res.Trace = s.tr.finish(res)
			return res, nil
		}
		last = res
		if attempt < s.opts.MaxResolves {
			// The next loop turn is a double-check re-solve; mark it in the
			// trace with the status that forced it.
			s.tr.event(trace.EventResolve, res.Status.String())
		}
		// Double-checking (§4.3): a failed attempt retries on freshly built
		// fabrics, so a fault in the array itself cannot persist across
		// attempts. Successful solves keep reusing the cached fabrics.
		s.fab1, s.fab2 = nil, nil
		s.fab1Size, s.fab2Size = 0, 0
	}
	last.Trace = s.tr.finish(last)
	return last, nil
}

// censusBoth tallies stuck cells across both of Algorithm 2's fabrics.
func (s *LargeScaleSolver) censusBoth() crossbar.FaultCensus {
	var c crossbar.FaultCensus
	for _, fab := range []Fabric{s.fab1, s.fab2} {
		if fr, ok := fab.(FaultReporter); ok {
			fc := fr.FaultCensus()
			c.StuckOn += fc.StuckOn
			c.StuckOff += fc.StuckOff
			c.Mapped += fc.Mapped
		}
	}
	return c
}

// remapFabrics asks both fabrics to dodge their stuck cells (rung 2).
func (s *LargeScaleSolver) remapFabrics() bool {
	moved := false
	for _, fab := range []Fabric{s.fab1, s.fab2} {
		if r, ok := fab.(Remapper); ok && r.RemapAvoidingFaults() {
			moved = true
		}
	}
	return moved
}

// lsSystem holds the first system M1. Columns are [Δx(n) | Δy(m) | Δp(q)]:
// every column of A with a negative entry gets an x-mirror Δp, and every
// row of A gets a y-mirror Δp (the y-mirrors carry both the |negative| Aᵀ
// entries and the −Y⁻¹W diagonal).
type lsSystem struct {
	n, m, q int
	size    int
	pOfX    []int // x-mirror index per variable, or -1
	pOfY    []int // y-mirror index per constraint (always assigned)
	eps     float64
	literal bool
	matrix  *linalg.Matrix
}

func (l *lsSystem) colX(j int) int  { return j }
func (l *lsSystem) colY(k int) int  { return l.n + k }
func (l *lsSystem) colP(k int) int  { return l.n + l.m + k }
func (l *lsSystem) rowA(i int) int  { return i }       // m rows: primal block
func (l *lsSystem) rowAT(i int) int { return l.m + i } // n rows: dual block
func (l *lsSystem) rowP(k int) int  { return l.m + l.n + k }

// newLSSystem builds M1 at the initial interior point (x, y, w, z).
func newLSSystem(p *lp.Problem, regularization float64, literal bool, x, y, w, z linalg.Vector) (*lsSystem, error) {
	return newLSSystemInto(nil, p, regularization, literal, x, y, w, z)
}

// newLSSystemInto is newLSSystem with storage reuse: when prev was built for
// a same-shaped problem its matrix and index slices are recycled. Pass nil
// to allocate fresh.
func newLSSystemInto(prev *lsSystem, p *lp.Problem, regularization float64, literal bool, x, y, w, z linalg.Vector) (*lsSystem, error) {
	n, m := p.NumVariables(), p.NumConstraints()
	l := prev
	if l == nil || l.n != n || l.m != m {
		l = &lsSystem{n: n, m: m, pOfX: make([]int, n), pOfY: make([]int, m)}
	}
	l.literal = literal

	q := 0
	for j := 0; j < n; j++ {
		l.pOfX[j] = -1
		for i := 0; i < m; i++ {
			if p.A.At(i, j) < 0 {
				l.pOfX[j] = q
				q++
				break
			}
		}
	}
	// Every constraint gets a y-mirror: it carries |negative| Aᵀ entries
	// and, in the default (reduced-KKT) mode, the w/y diagonal.
	for k := 0; k < m; k++ {
		l.pOfY[k] = q
		q++
	}
	l.q = q
	size := n + m + q
	if l.matrix == nil || l.size != size {
		l.size = size
		l.matrix = linalg.NewMatrix(size, size)
	} else {
		l.matrix.Zero()
	}

	var sum float64
	for i := 0; i < m; i++ {
		for _, v := range p.A.RawRow(i) {
			if v < 0 {
				sum -= v
			} else {
				sum += v
			}
		}
	}
	l.eps = regularization * sum / float64(n*m)
	if l.eps == 0 {
		l.eps = regularization
	}

	mtx := l.matrix
	// Primal block rows: A′·Δx + A″·Δp(x-mirrors) [+ diagonal coupling].
	for i := 0; i < m; i++ {
		r := l.rowA(i)
		for j := 0; j < n; j++ {
			v := p.A.At(i, j)
			if v >= 0 {
				mtx.Set(r, l.colX(j), v)
			} else {
				mtx.Set(r, l.colP(l.pOfX[j]), -v)
			}
		}
	}
	// Dual block rows: Aᵀ′·Δy + Aᵀ″·Δp(y-mirrors) [+ diagonal coupling].
	for i := 0; i < n; i++ {
		r := l.rowAT(i)
		for k := 0; k < m; k++ {
			v := p.A.At(k, i)
			if v >= 0 {
				mtx.Set(r, l.colY(k), v)
			} else {
				mtx.Set(r, l.colP(l.pOfY[k]), -v)
			}
		}
	}
	// Consistency rows for Δp.
	for j := 0; j < n; j++ {
		if k := l.pOfX[j]; k >= 0 {
			mtx.Set(l.rowP(k), l.colX(j), 1)
			mtx.Set(l.rowP(k), l.colP(k), 1)
		}
	}
	for y0 := 0; y0 < m; y0++ {
		k := l.pOfY[y0]
		mtx.Set(l.rowP(k), l.colY(y0), 1)
		mtx.Set(l.rowP(k), l.colP(k), 1)
	}
	// Off-diagonal coupling blocks.
	l.setCoupling(mtx, x, y, w, z)

	if !mtx.AllNonNegative() {
		return nil, fmt.Errorf("core: internal error: M1 has negative entries")
	}
	return l, nil
}

// setCoupling writes the RU/RL slots of M1 into dst. In the default mode
// these are the reduced-KKT diagonals: w_i/y_i on the y-mirror column of
// primal row i (realizing −Y⁻¹W·Δy), and z_j/x_j on the x column of dual
// row j (realizing X⁻¹Z·Δx). In literal mode they are the paper's fixed εI
// fillers.
func (l *lsSystem) setCoupling(dst *linalg.Matrix, x, y, w, z linalg.Vector) {
	if l.literal {
		if l.m >= l.n {
			for i := 0; i < l.m; i++ {
				dst.Set(l.rowA(i), l.colY(i), l.eps)
			}
		}
		if l.n >= l.m {
			for j := 0; j < l.n; j++ {
				dst.Set(l.rowAT(j), l.colX(j), l.eps)
			}
		}
		return
	}
	for i := 0; i < l.m; i++ {
		dst.Set(l.rowA(i), l.colP(l.pOfY[i]), capAt(w[i]/y[i], couplingCap))
	}
	for j := 0; j < l.n; j++ {
		dst.Set(l.rowAT(j), l.colX(j), capAt(z[j]/x[j], couplingCap))
	}
}

// couplingCap bounds the reduced-KKT diagonal coefficients: the crossbar's
// finite conductance range cannot represent unbounded w/y or z/x ratios, and
// a capped diagonal only over-damps the corresponding direction.
const couplingCap = 1e4

// couplingUpdates pushes the per-iteration coupling coefficients to the
// fabric: one single-cell in-place write per row — O(N) writes total.
func (l *lsSystem) couplingUpdates(fab Fabric, x, y, w, z linalg.Vector) error {
	if l.literal {
		return nil // fillers are static
	}
	for i := 0; i < l.m; i++ {
		v := capAt(w[i]/y[i], couplingCap)
		l.matrix.Set(l.rowA(i), l.colP(l.pOfY[i]), v)
		if err := fab.UpdateCellInPlace(l.rowA(i), l.colP(l.pOfY[i]), v); err != nil {
			return err
		}
	}
	for j := 0; j < l.n; j++ {
		v := capAt(z[j]/x[j], couplingCap)
		l.matrix.Set(l.rowAT(j), l.colX(j), v)
		if err := fab.UpdateCellInPlace(l.rowAT(j), l.colX(j), v); err != nil {
			return err
		}
	}
	return nil
}

func capAt(v, cap float64) float64 {
	if v > cap {
		return cap
	}
	return v
}

// stateVector assembles s1 = [x, y, p] with all mirrors set consistently.
func (l *lsSystem) stateVector(x, y linalg.Vector) linalg.Vector {
	s := linalg.NewVector(l.size)
	copy(s[0:l.n], x)
	copy(s[l.n:l.n+l.m], y)
	for j := 0; j < l.n; j++ {
		if k := l.pOfX[j]; k >= 0 {
			s[l.colP(k)] = -x[j]
		}
	}
	for k0 := 0; k0 < l.m; k0++ {
		s[l.colP(l.pOfY[k0])] = -y[k0]
	}
	return s
}

// solveOnce runs one Algorithm 2 attempt. It returns (result, ctxErr, err):
// ctxErr is non-nil when the attempt was interrupted by the context (the
// result then carries the partial iterate with lp.StatusCanceled); err is a
// hard failure with no usable result. Callers must hold s.mu.
func (s *LargeScaleSolver) solveOnce(ctx context.Context, p *lp.Problem) (*Result, error, error) {
	n, m := p.NumVariables(), p.NumConstraints()
	tol := s.opts.Tol
	theta := s.opts.ConstantStep

	// Digital presolve: row equilibration (see equilibrate in solver.go).
	orig := p
	p, rowScales := equilibrate(p)

	x := onesVector(n)
	y := onesVector(m)
	w := onesVector(m)
	z := onesVector(n)

	sys1, err := newLSSystemInto(s.sys, p, s.opts.Regularization, s.opts.LiteralFillers, x, y, w, z)
	if err != nil {
		return nil, nil, err
	}
	s.sys = sys1
	if s.fab1 == nil || s.fab1Size != sys1.size {
		fab, err := s.opts.Fabric(sys1.size)
		if err != nil {
			return nil, nil, fmt.Errorf("core: building fabric 1: %w", err)
		}
		s.fab1, s.fab1Size = fab, sys1.size
	}
	fab1 := s.fab1
	countersBase1 := fab1.Counters()
	if err := fab1.Program(sys1.matrix); err != nil {
		return nil, nil, fmt.Errorf("core: programming M1: %w", err)
	}

	// M2 = diag(X, Y): columns [Δz | Δw].
	if s.fab2 == nil || s.fab2Size != n+m {
		fab, err := s.opts.Fabric(n + m)
		if err != nil {
			return nil, nil, fmt.Errorf("core: building fabric 2: %w", err)
		}
		s.fab2, s.fab2Size = fab, n+m
	}
	fab2 := s.fab2
	countersBase2 := fab2.Counters()
	// Rebase the trace accumulators on the combined counters of BOTH
	// fabrics (fresh double-check fabrics restart at zero).
	s.tr.beginAttempt(countersBase1.Add(countersBase2))
	if s.m2 == nil || s.m2.Rows() != n+m {
		s.m2 = linalg.NewMatrix(n+m, n+m)
	} else {
		s.m2.Zero()
	}
	m2 := s.m2
	for i := 0; i < n; i++ {
		m2.Set(i, i, x[i])
	}
	for i := 0; i < m; i++ {
		m2.Set(n+i, n+i, y[i])
	}
	if err := fab2.Program(m2); err != nil {
		return nil, nil, fmt.Errorf("core: programming M2: %w", err)
	}

	// Persistent extended state for system 1 (mirrors evolve with the
	// fabric's Δp, same reasoning as Algorithm 1).
	s1 := sys1.stateVector(x, y)
	x = s1[0:n]
	y = s1[n : n+m]

	res := &Result{Status: lp.StatusIterationLimit, MatrixSize: sys1.size}
	bestGap := infNaN()
	stall := 0
	prevNorm := 0.0
	best := snapshot{score: infNaN()}
	// The constant-θ split iteration converges more gradually than
	// Algorithm 1's damped Newton, so it gets twice the stall patience.
	stallWindow := 2 * s.opts.StallWindow
	var ctxErr error

	for iter := 1; iter <= tol.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			res.Status = lp.StatusCanceled
			ctxErr = fmt.Errorf("core: solve canceled at iteration %d: %w", iter, err)
			break
		}
		res.Iterations = iter

		gap := dualityGap(x, z, y, w)
		mu := tol.Delta * gap / float64(n+m)

		// --- first half-step: Δx, Δy from M1 (one fused residual + solve).
		// The digital base (O(N) to assemble) is subtracted in analog:
		//   primal rows: base = b − w − µ/y,  M1·s1 = A·x − (W/Y)·y = A·x − w
		//   dual rows:   base = c + z + µ/x,  M1·s1 = Aᵀ·y + (Z/X)·x = Aᵀ·y + z
		// (in literal-filler mode the product carries ε·y / ε·x instead of
		// the coupling terms; the same bases are used, as Eq. 17a says).
		base1 := linalg.NewVector(sys1.size)
		for i := 0; i < m; i++ {
			base1[sys1.rowA(i)] = p.B[i] - w[i] - mu/y[i]
		}
		for j := 0; j < n; j++ {
			base1[sys1.rowAT(j)] = p.C[j] + z[j] + mu/x[j]
		}
		r1, err := fab1.MatVecResidual(base1, s1, nil)
		if err != nil {
			return nil, nil, fmt.Errorf("core: M1 residual: %w", err)
		}

		// Measured residuals for the stopping rule (O(N) digital fix-ups):
		// ρ = r1_A + µ/y − w and σ = r1_AT − µ/x + z.
		var pinf, dinf float64
		for i := 0; i < m; i++ {
			v := r1[sys1.rowA(i)] + mu/y[i] - w[i]
			if v < 0 {
				v = -v
			}
			if v > pinf {
				pinf = v
			}
		}
		for j := 0; j < n; j++ {
			v := r1[sys1.rowAT(j)] - mu/x[j] + z[j]
			if v < 0 {
				v = -v
			}
			if v > dinf {
				dinf = v
			}
		}
		res.PrimalInfeasibility = pinf
		res.DualInfeasibility = dinf
		res.DualityGap = gap

		best.consider(pinf, dinf, gap, x, y, w, z)

		if pinf <= tol.PrimalFeasTol && dinf <= tol.DualFeasTol && gap <= tol.GapTol {
			res.Status = lp.StatusOptimal
			break
		}
		if x.NormInf() > tol.BlowupLimit {
			res.Status = lp.StatusUnbounded
			break
		}
		if y.NormInf() > tol.BlowupLimit {
			res.Status = lp.StatusInfeasible
			break
		}
		norm := x.NormInf()
		if yn := y.NormInf(); yn > norm {
			norm = yn
		}
		growing := norm > prevNorm*1.02
		prevNorm = norm
		if gap < bestGap*(1-1e-3) {
			bestGap = gap
			stall = 0
		} else if !growing {
			stall++
			if stall >= stallWindow {
				res.Status = lp.StatusOptimal
				break
			}
		}

		ds1, err := fab1.Solve(r1)
		if err != nil {
			if errors.Is(err, crossbar.ErrSingular) {
				res.Status = lp.StatusNumericalFailure
				break
			}
			return nil, nil, fmt.Errorf("core: M1 analog solve: %w", err)
		}
		if !ds1.AllFinite() {
			res.Status = lp.StatusNumericalFailure
			break
		}
		dx := ds1[0:n]
		dy := ds1[n : n+m]
		// Constant step with a boundary safeguard: θ stays at the configured
		// constant unless that step would cross the positivity boundary
		// (Eq. 11 engaged only as a guard). A fully unguarded constant step
		// lets variables pin at the floor, where the w/y and z/x coupling
		// coefficients and the µ/y, µ/x bases diverge.
		theta1 := theta
		if guard := stepLength(0.95, [][2]linalg.Vector{{x, dx}, {y, dy}}); guard < theta1 {
			theta1 = guard
		}
		// Slew-rate limit: the summing amplifiers saturate, so one update
		// cannot move the state by more than a few times its own scale.
		// This bounds the damage of an ill-conditioned analog solve.
		if lim := slewLimit(s1, ds1); lim < theta1 {
			theta1 = lim
		}
		if s.tr.active() {
			s.tr.note(fab1.Counters().Add(fab2.Counters()))
			s.tr.emit(trace.Record{
				Event:               trace.EventIteration,
				Iteration:           iter,
				Mu:                  mu,
				DualityGap:          gap,
				PrimalInfeasibility: pinf,
				DualInfeasibility:   dinf,
				Theta:               theta1,
			})
		}
		if err := s1.AxpyInPlace(theta1, ds1); err != nil {
			return nil, nil, err
		}
		clampPositive(x, y)

		// --- second half-step: Δz, Δw from M2 = diag(X, Y) ---
		for i := 0; i < n; i++ {
			m2.Set(i, i, x[i])
		}
		for i := 0; i < m; i++ {
			m2.Set(n+i, n+i, y[i])
		}
		if err := reprogramDiag(fab2, m2, n+m, &s.diagRow); err != nil {
			return nil, nil, err
		}
		s2 := linalg.Concat(z, w)
		// r2 = [µ1 − XZe − Z∘Δx; µ1 − YWe − W∘Δy]: the cross terms restore
		// the Z·Δx / W·Δy couplings of Eq. 9c/9d; they are O(N) digital
		// element-wise products folded into the base, and the XZe/YWe
		// products are subtracted in analog.
		base2 := linalg.NewVector(n + m)
		for i := 0; i < n; i++ {
			base2[i] = mu - z[i]*theta1*dx[i]
		}
		for i := 0; i < m; i++ {
			base2[n+i] = mu - w[i]*theta1*dy[i]
		}
		r2, err := fab2.MatVecResidual(base2, s2, nil)
		if err != nil {
			return nil, nil, fmt.Errorf("core: M2 residual: %w", err)
		}
		ds2, err := fab2.Solve(r2)
		if err != nil {
			if errors.Is(err, crossbar.ErrSingular) {
				res.Status = lp.StatusNumericalFailure
				break
			}
			return nil, nil, fmt.Errorf("core: M2 analog solve: %w", err)
		}
		if !ds2.AllFinite() {
			res.Status = lp.StatusNumericalFailure
			break
		}
		theta2 := theta
		if guard := stepLength(0.95, [][2]linalg.Vector{{z, ds2[0:n]}, {w, ds2[n : n+m]}}); guard < theta2 {
			theta2 = guard
		}
		if lim := slewLimit(s2, ds2); lim < theta2 {
			theta2 = lim
		}
		axpyAll(theta2, z, ds2[0:n], w, ds2[n:n+m])
		clampPositive(z, w)

		// Refresh the coupling diagonals for the next iteration: one cell
		// per row, O(N) writes.
		if err := sys1.couplingUpdates(fab1, x, y, w, z); err != nil {
			return nil, nil, fmt.Errorf("core: updating M1 couplings: %w", err)
		}
	}

	finalX, finalY, finalW, finalZ := x.Clone(), y.Clone(), w.Clone(), z.Clone()
	if res.Status == lp.StatusOptimal || res.Status == lp.StatusIterationLimit {
		if best.valid() {
			x, y, w, z = best.x, best.y, best.w, best.z
			res.PrimalInfeasibility = best.pinf
			res.DualInfeasibility = best.dinf
			res.DualityGap = best.gap
		}
	}
	res.X, res.Y, res.W, res.Z = x.Clone(), y.Clone(), w.Clone(), z.Clone()
	unscaleDual(res.Y, res.W, rowScales)
	obj, err := orig.Objective(res.X)
	if err != nil {
		return nil, nil, err
	}
	res.Objective = obj
	res.Counters = fab1.Counters().Sub(countersBase1).Add(fab2.Counters().Sub(countersBase2))

	// A budget-limited run that still passes the α-check is an acceptable
	// answer: the analog accuracy floor, not the budget, set its quality.
	if res.Status == lp.StatusOptimal || res.Status == lp.StatusIterationLimit {
		ok, err := orig.IsFeasible(res.X, s.opts.Alpha-1)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			res.Status = classifyRejected(finalX, finalY, finalW, finalZ)
		} else {
			res.Status = lp.StatusOptimal
		}
	}
	return res, ctxErr, nil
}

// reprogramDiag refreshes the diagonal rows of M2 on the fabric; each row
// holds exactly one cell, so this is the O(N) coefficient update. scratch is
// a caller-owned row buffer, reused (and kept all-zero between cells) to
// avoid allocating size vectors per iteration.
func reprogramDiag(fab Fabric, m2 *linalg.Matrix, size int, scratch *linalg.Vector) error {
	if cap(*scratch) < size {
		*scratch = linalg.NewVector(size)
	}
	row := (*scratch)[:size]
	for i := 0; i < size; i++ {
		row[i] = m2.At(i, i)
		err := fab.UpdateRow(i, row)
		row[i] = 0
		if err != nil {
			if errors.Is(err, crossbar.ErrTooLarge) {
				if err := fab.Program(m2); err != nil {
					return fmt.Errorf("core: reprogramming M2: %w", err)
				}
				return nil
			}
			return fmt.Errorf("core: updating M2 row: %w", err)
		}
	}
	return nil
}
