package core

import (
	"math"
	"testing"

	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
)

func TestLSSystemShape(t *testing.T) {
	// A = [[1, -2], [-3, 4], [1, 1]]: m=3 > n=2 ⇒ RU (diagonal ε in the Δy
	// columns of the A rows); both columns and two rows carry negatives.
	p := mustProblem(t, linalg.VectorOf(1, 1),
		mustMatrix(t, [][]float64{{1, -2}, {-3, 4}, {1, 1}}), linalg.VectorOf(5, 5, 5))
	sys, err := newLSSystem(p, 0.02, true, onesVector(p.NumVariables()), onesVector(p.NumConstraints()), onesVector(p.NumConstraints()), onesVector(p.NumVariables()))
	if err != nil {
		t.Fatalf("newLSSystem: %v", err)
	}
	// q = 2 x-mirrors (both columns have negatives) + 3 y-mirrors (every
	// constraint gets one; they carry |negative| Aᵀ entries and, in the
	// default mode, the w/y coupling diagonal).
	if sys.q != 2+3 {
		t.Errorf("q = %d, want 5", sys.q)
	}
	if sys.size != 2+3+5 {
		t.Errorf("size = %d, want 10", sys.size)
	}
	if !sys.matrix.AllNonNegative() {
		t.Error("M1 has negative entries")
	}
	// RU diagonal present on the A rows.
	for i := 0; i < 3; i++ {
		if sys.matrix.At(sys.rowA(i), sys.colY(i)) != sys.eps {
			t.Errorf("RU diag missing at row %d", i)
		}
	}
	// RL absent (m > n).
	for i := 0; i < 2; i++ {
		if sys.matrix.At(sys.rowAT(i), sys.colX(i)) != 0 {
			t.Errorf("RL unexpectedly present at row %d", i)
		}
	}
	det, err := linalg.Det(sys.matrix)
	if err != nil {
		t.Fatalf("Det: %v", err)
	}
	if det == 0 {
		t.Error("M1 singular despite regularizer")
	}
}

func TestLSSystemTallVariables(t *testing.T) {
	// n > m ⇒ RL fills the Aᵀ-row diagonal instead.
	p := mustProblem(t, linalg.VectorOf(1, 1, 1),
		mustMatrix(t, [][]float64{{1, -1, 2}, {2, 1, -1}}), linalg.VectorOf(5, 5))
	sys, err := newLSSystem(p, 0.02, true, onesVector(p.NumVariables()), onesVector(p.NumConstraints()), onesVector(p.NumConstraints()), onesVector(p.NumVariables()))
	if err != nil {
		t.Fatalf("newLSSystem: %v", err)
	}
	for i := 0; i < 2; i++ {
		if sys.matrix.At(sys.rowA(i), sys.colY(i)) != 0 {
			t.Errorf("RU unexpectedly present at row %d", i)
		}
	}
	for i := 0; i < 2; i++ {
		if sys.matrix.At(sys.rowAT(i), sys.colX(i)) != sys.eps {
			t.Errorf("RL diag missing at row %d", i)
		}
	}
}

func TestLSSystemMatVecIdentity(t *testing.T) {
	// Eq. 17a: M1·[x, y, p] must equal [Ax + ε·y-term; Aᵀy; ≈0] up to the
	// regularizer contribution on the A rows.
	p := mustProblem(t, linalg.VectorOf(1, 2),
		mustMatrix(t, [][]float64{{1, -2}, {-3, 4}, {0.5, 1}}), linalg.VectorOf(5, 5, 5))
	sys, err := newLSSystem(p, 0.02, true, onesVector(p.NumVariables()), onesVector(p.NumConstraints()), onesVector(p.NumConstraints()), onesVector(p.NumVariables()))
	if err != nil {
		t.Fatalf("newLSSystem: %v", err)
	}
	x := linalg.VectorOf(1.5, 2.5)
	y := linalg.VectorOf(0.5, 1.5, 2)
	s := sys.stateVector(x, y)
	got, err := sys.matrix.MatVec(s)
	if err != nil {
		t.Fatalf("MatVec: %v", err)
	}
	ax, err := p.A.MatVec(x)
	if err != nil {
		t.Fatal(err)
	}
	aty, err := p.A.MatVecTranspose(y)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		want := ax[i] + sys.eps*y[i]
		if math.Abs(got[sys.rowA(i)]-want) > 1e-12 {
			t.Errorf("A row %d = %v, want %v", i, got[sys.rowA(i)], want)
		}
	}
	for i := 0; i < 2; i++ {
		if math.Abs(got[sys.rowAT(i)]-aty[i]) > 1e-12 {
			t.Errorf("Aᵀ row %d = %v, want %v", i, got[sys.rowAT(i)], aty[i])
		}
	}
	for k := 0; k < sys.q; k++ {
		if math.Abs(got[sys.rowP(k)]) > 1e-12 {
			t.Errorf("p row %d = %v, want 0", k, got[sys.rowP(k)])
		}
	}
}

func TestLargeScaleIdealFabric(t *testing.T) {
	s, err := NewLargeScaleSolver(idealOpts())
	if err != nil {
		t.Fatalf("NewLargeScaleSolver: %v", err)
	}
	for seed := int64(0); seed < 6; seed++ {
		p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 12, Seed: seed})
		if err != nil {
			t.Fatalf("GenerateFeasible: %v", err)
		}
		want := referenceObjective(t, p)
		res, err := s.Solve(p)
		if err != nil {
			t.Fatalf("seed %d: Solve: %v", seed, err)
		}
		if res.Status != lp.StatusOptimal {
			t.Errorf("seed %d: status = %v (iters %d, pinf %v, gap %v)",
				seed, res.Status, res.Iterations, res.PrimalInfeasibility, res.DualityGap)
			continue
		}
		if rel := math.Abs(res.Objective-want) / (1 + math.Abs(want)); rel > 0.1 {
			t.Errorf("seed %d: objective %v, want %v (rel %v)", seed, res.Objective, want, rel)
		}
	}
}

func TestLargeScaleCrossbar(t *testing.T) {
	for _, varPct := range []float64{0, 0.10} {
		s, err := NewLargeScaleSolver(crossbarOpts(t, varPct, 9))
		if err != nil {
			t.Fatalf("NewLargeScaleSolver: %v", err)
		}
		var relSum float64
		var ok int
		const trials = 3
		for seed := int64(0); seed < trials; seed++ {
			p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 12, Seed: seed})
			if err != nil {
				t.Fatalf("GenerateFeasible: %v", err)
			}
			want := referenceObjective(t, p)
			res, err := s.Solve(p)
			if err != nil {
				t.Fatalf("var %v seed %d: Solve: %v", varPct, seed, err)
			}
			if res.Status == lp.StatusOptimal {
				ok++
				relSum += math.Abs(res.Objective-want) / (1 + math.Abs(want))
			}
		}
		if ok == 0 {
			t.Fatalf("var %v: no instance solved", varPct)
		}
		if mean := relSum / float64(ok); mean > 0.15 {
			t.Errorf("var %v: mean relative error %v, want ≤ 0.15", varPct, mean)
		}
	}
}

func TestLargeScaleDetectsInfeasible(t *testing.T) {
	s, err := NewLargeScaleSolver(idealOpts())
	if err != nil {
		t.Fatalf("NewLargeScaleSolver: %v", err)
	}
	detected := 0
	const trials = 5
	for seed := int64(0); seed < trials; seed++ {
		p, err := lp.GenerateInfeasible(lp.GenConfig{Constraints: 9, Seed: seed})
		if err != nil {
			t.Fatalf("GenerateInfeasible: %v", err)
		}
		res, err := s.Solve(p)
		if err != nil {
			t.Fatalf("seed %d: Solve: %v", seed, err)
		}
		if res.Status == lp.StatusInfeasible {
			detected++
		} else if res.Status == lp.StatusOptimal {
			// An "optimal" answer to an infeasible problem must at least be
			// flagged by the α-check — reaching here is a bug.
			t.Errorf("seed %d: infeasible problem reported optimal", seed)
		}
	}
	if detected == 0 {
		t.Error("no infeasible instance detected as infeasible")
	}
}

func TestLargeScaleCountsResolves(t *testing.T) {
	s, err := NewLargeScaleSolver(idealOpts())
	if err != nil {
		t.Fatalf("NewLargeScaleSolver: %v", err)
	}
	p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 9, Seed: 2})
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	res, err := s.Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Counters.CellWrites == 0 || res.Counters.SolveOps == 0 {
		t.Errorf("counters not populated: %+v", res.Counters)
	}
	if res.Resolves < 0 || res.Resolves > 1 {
		t.Errorf("resolves = %d", res.Resolves)
	}
}
