package core

import "time"

// wallClock and wallSince are this package's only reads of the host clock —
// the //memlp:timing funnels memlpvet's wallclock analyzer enforces. They
// feed exclusively the reported Result.WallTime and shard-busy accounting;
// no iterate, trace field other than wall time, or noise epoch may observe
// them, which is what keeps golden traces and the cross-width batch
// determinism contract host-independent.

//memlp:timing
func wallClock() time.Time { return time.Now() }

//memlp:timing
func wallSince(start time.Time) time.Duration { return time.Since(start) }
