package variation

import "testing"

// TestCloneReplaysBaseStream checks a clone restarts the base seed's draw
// sequence from the beginning — the fabric pool relies on this so every
// replica's Program-time device factors match the original's cell for cell.
func TestCloneReplaysBaseStream(t *testing.T) {
	m, err := NewPaperModel(0.1, 11)
	if err != nil {
		t.Fatalf("NewPaperModel: %v", err)
	}
	var orig []float64
	for i := 0; i < 32; i++ {
		orig = append(orig, m.Factor())
	}
	c := m.Clone()
	for i, want := range orig {
		if got := c.Factor(); got != want {
			t.Fatalf("clone draw %d = %v, want %v", i, got, want)
		}
	}
}

// TestCloneIsIndependent checks draws on a clone do not advance the original.
func TestCloneIsIndependent(t *testing.T) {
	m, err := NewPaperModel(0.1, 11)
	if err != nil {
		t.Fatalf("NewPaperModel: %v", err)
	}
	ref, err := NewPaperModel(0.1, 11)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	for i := 0; i < 16; i++ {
		c.Factor()
	}
	for i := 0; i < 16; i++ {
		if got, want := m.Factor(), ref.Factor(); got != want {
			t.Fatalf("original draw %d = %v, want %v (perturbed by clone)", i, got, want)
		}
	}
}

// TestReseedEpochDeterministic checks the epoch stream is a pure function of
// (base seed, epoch): same epoch replays, different epochs and different base
// seeds diverge.
func TestReseedEpochDeterministic(t *testing.T) {
	draw := func(seed, epoch int64, n int) []float64 {
		m, err := NewPaperModel(0.1, seed)
		if err != nil {
			t.Fatalf("NewPaperModel: %v", err)
		}
		m.ReseedEpoch(epoch)
		out := make([]float64, n)
		for i := range out {
			out[i] = m.Factor()
		}
		return out
	}
	a := draw(5, 3, 16)
	b := draw(5, 3, 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same (seed, epoch) diverged at draw %d", i)
		}
	}
	c := draw(5, 4, 16)
	d := draw(6, 3, 16)
	sameC, sameD := true, true
	for i := range a {
		sameC = sameC && a[i] == c[i]
		sameD = sameD && a[i] == d[i]
	}
	if sameC {
		t.Error("different epochs produced an identical stream")
	}
	if sameD {
		t.Error("different base seeds produced an identical epoch stream")
	}
}

// TestReseedEpochErasesPosition checks ReseedEpoch discards however many
// draws were already consumed — a reused replica and a fresh one land on the
// same stream position.
func TestReseedEpochErasesPosition(t *testing.T) {
	fresh, err := NewPaperModel(0.1, 9)
	if err != nil {
		t.Fatal(err)
	}
	used, err := NewPaperModel(0.1, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		used.Factor()
	}
	fresh.ReseedEpoch(7)
	used.ReseedEpoch(7)
	for i := 0; i < 16; i++ {
		if got, want := used.Factor(), fresh.Factor(); got != want {
			t.Fatalf("draw %d = %v, want %v (history leaked through reseed)", i, got, want)
		}
	}
}

// TestSeedAccessor pins the stored base seed.
func TestSeedAccessor(t *testing.T) {
	m, err := NewPaperModel(0.1, 23)
	if err != nil {
		t.Fatal(err)
	}
	if m.Seed() != 23 {
		t.Errorf("Seed() = %d, want 23", m.Seed())
	}
	if m.Clone().Seed() != 23 {
		t.Errorf("Clone().Seed() = %d, want 23", m.Clone().Seed())
	}
}
