// Package variation models memristor process variation: the deviation of a
// written conductance from its target value caused by device geometry
// variation (film thickness, cross-section) and stochastic switching.
//
// The paper (Eq. 18) models the programmed matrix as
//
//	M' = M + M ∘ (var · Rd)
//
// where var is the maximum variation fraction (typically 5%–20%, ref [22])
// and Rd is a matrix of i.i.d. values with |Rd(i,j)| < 1, i.e. multiplicative
// uniform noise. Gaussian and lognormal models are provided as extensions
// for the ablation study (AB4 in DESIGN.md).
package variation

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrInvalidMagnitude is returned for variation fractions outside [0, 1).
var ErrInvalidMagnitude = errors.New("variation: magnitude must be in [0, 1)")

// Distribution selects the per-write noise distribution.
type Distribution int

const (
	// Uniform is the paper's model: relative error ~ U(-var, +var).
	Uniform Distribution = iota + 1
	// Gaussian draws relative error ~ N(0, (var/3)²), truncated at ±var,
	// so var acts as a 3σ bound.
	Gaussian
	// Lognormal draws a multiplicative factor exp(N(0, σ)) with σ chosen so
	// the 3σ spread matches ±var, truncated to the same bound.
	Lognormal
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Gaussian:
		return "gaussian"
	case Lognormal:
		return "lognormal"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// Model generates reproducible per-write variation factors.
// The zero value is unusable; construct with NewModel.
type Model struct {
	dist      Distribution
	magnitude float64
	seed      int64
	rng       *rand.Rand
}

// NewModel returns a variation model. magnitude is the maximum relative
// deviation (e.g. 0.10 for "up to 10% process variation"); zero disables
// variation. The model is seeded for reproducibility and is NOT safe for
// concurrent use.
func NewModel(dist Distribution, magnitude float64, seed int64) (*Model, error) {
	if magnitude < 0 || magnitude >= 1 || math.IsNaN(magnitude) {
		return nil, fmt.Errorf("%w: %v", ErrInvalidMagnitude, magnitude)
	}
	switch dist {
	case Uniform, Gaussian, Lognormal:
	default:
		return nil, fmt.Errorf("variation: unknown distribution %d", int(dist))
	}
	return &Model{dist: dist, magnitude: magnitude, seed: seed, rng: rand.New(rand.NewSource(seed))}, nil
}

// NewPaperModel returns the model used throughout the paper's evaluation:
// uniform multiplicative noise bounded by magnitude.
func NewPaperModel(magnitude float64, seed int64) (*Model, error) {
	return NewModel(Uniform, magnitude, seed)
}

// Magnitude returns the configured maximum relative deviation.
func (m *Model) Magnitude() float64 { return m.magnitude }

// Seed returns the base seed the model was constructed with.
func (m *Model) Seed() int64 { return m.seed }

// Clone returns an independent model with the same distribution, magnitude,
// and base seed, with its stream rewound to the beginning — exactly the model
// NewModel would return. Replicated fabrics clone the model so every replica
// draws the identical static device-variation sequence at Program time.
func (m *Model) Clone() *Model {
	return &Model{dist: m.dist, magnitude: m.magnitude, seed: m.seed, rng: rand.New(rand.NewSource(m.seed))}
}

// ReseedEpoch restarts the model's stream at a deterministic derivation of
// the base seed and the given epoch, so that all draws after the call are a
// function of (seed, epoch) alone — independent of how many draws the model
// has served so far. The fabric pool rebases each shard's noise stream to the
// PROBLEM index before every batch member, which is what makes batch results
// bit-identical regardless of which shard (or how many shards) ran them.
// Epoch values must not collide with the base seed's own stream; mixEpoch
// guarantees that by avalanche-mixing the pair.
func (m *Model) ReseedEpoch(epoch int64) {
	m.rng = rand.New(rand.NewSource(mixEpoch(m.seed, epoch)))
}

// mixEpoch combines a base seed and an epoch into one well-distributed
// 63-bit seed using the SplitMix64 finalizer (Steele et al.), the standard
// stateless way to derive independent streams from a (key, counter) pair.
func mixEpoch(seed, epoch int64) int64 {
	z := uint64(seed) ^ (uint64(epoch)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	// Mask to 63 bits so the derived seed is non-negative.
	return int64(z & 0x7fffffffffffffff)
}

// Distribution returns the configured distribution.
func (m *Model) Distribution() Distribution { return m.dist }

// Factor returns a multiplicative variation factor (1 + ε) for one device
// write, with |ε| ≤ magnitude.
func (m *Model) Factor() float64 {
	if m.magnitude == 0 {
		return 1
	}
	switch m.dist {
	case Uniform:
		return 1 + m.magnitude*(2*m.rng.Float64()-1)
	case Gaussian:
		eps := m.rng.NormFloat64() * m.magnitude / 3
		return 1 + clamp(eps, -m.magnitude, m.magnitude)
	case Lognormal:
		sigma := math.Log(1+m.magnitude) / 3
		f := math.Exp(m.rng.NormFloat64() * sigma)
		return clamp(f, 1-m.magnitude, 1+m.magnitude)
	default:
		return 1
	}
}

// Apply returns x perturbed by one draw: x · Factor().
func (m *Model) Apply(x float64) float64 { return x * m.Factor() }

// ApplySlice perturbs every element of xs in place with independent draws
// and returns xs.
func (m *Model) ApplySlice(xs []float64) []float64 {
	for i := range xs {
		xs[i] *= m.Factor()
	}
	return xs
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
