package variation

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewModelValidation(t *testing.T) {
	tests := []struct {
		name      string
		dist      Distribution
		magnitude float64
		wantErr   bool
	}{
		{"negative", Uniform, -0.1, true},
		{"one", Uniform, 1.0, true},
		{"nan", Uniform, math.NaN(), true},
		{"unknown dist", Distribution(99), 0.1, true},
		{"zero magnitude ok", Uniform, 0, false},
		{"uniform ok", Uniform, 0.2, false},
		{"gaussian ok", Gaussian, 0.2, false},
		{"lognormal ok", Lognormal, 0.2, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewModel(tc.dist, tc.magnitude, 1)
			if (err != nil) != tc.wantErr {
				t.Errorf("NewModel err = %v, wantErr = %v", err, tc.wantErr)
			}
		})
	}
	if _, err := NewModel(Uniform, -1, 0); !errors.Is(err, ErrInvalidMagnitude) {
		t.Errorf("want ErrInvalidMagnitude, got %v", err)
	}
}

func TestZeroMagnitudeIsIdentity(t *testing.T) {
	m, err := NewPaperModel(0, 42)
	if err != nil {
		t.Fatalf("NewPaperModel: %v", err)
	}
	for i := 0; i < 100; i++ {
		if f := m.Factor(); f != 1 {
			t.Fatalf("Factor with zero magnitude = %v, want 1", f)
		}
	}
	if got := m.Apply(3.5); got != 3.5 {
		t.Errorf("Apply(3.5) = %v, want 3.5", got)
	}
}

func TestFactorBounds(t *testing.T) {
	for _, dist := range []Distribution{Uniform, Gaussian, Lognormal} {
		t.Run(dist.String(), func(t *testing.T) {
			const mag = 0.2
			m, err := NewModel(dist, mag, 7)
			if err != nil {
				t.Fatalf("NewModel: %v", err)
			}
			for i := 0; i < 10_000; i++ {
				f := m.Factor()
				if f < 1-mag-1e-12 || f > 1+mag+1e-12 {
					t.Fatalf("Factor = %v outside [%v, %v]", f, 1-mag, 1+mag)
				}
			}
		})
	}
}

func TestUniformFactorCoversRange(t *testing.T) {
	// With enough draws the uniform model should produce factors in both
	// the lower and upper halves of its range.
	const mag = 0.1
	m, err := NewPaperModel(mag, 3)
	if err != nil {
		t.Fatalf("NewPaperModel: %v", err)
	}
	var below, above int
	for i := 0; i < 10_000; i++ {
		if f := m.Factor(); f < 1-mag/2 {
			below++
		} else if f > 1+mag/2 {
			above++
		}
	}
	if below < 1000 || above < 1000 {
		t.Errorf("uniform draws poorly spread: below=%d above=%d of 10000", below, above)
	}
}

func TestUniformMeanNearOne(t *testing.T) {
	m, err := NewPaperModel(0.2, 11)
	if err != nil {
		t.Fatalf("NewPaperModel: %v", err)
	}
	var sum float64
	const n = 50_000
	for i := 0; i < n; i++ {
		sum += m.Factor()
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.005 {
		t.Errorf("uniform mean = %v, want ≈1", mean)
	}
}

func TestReproducibleWithSameSeed(t *testing.T) {
	a, err := NewPaperModel(0.15, 99)
	if err != nil {
		t.Fatalf("NewPaperModel: %v", err)
	}
	b, err := NewPaperModel(0.15, 99)
	if err != nil {
		t.Fatalf("NewPaperModel: %v", err)
	}
	for i := 0; i < 100; i++ {
		if fa, fb := a.Factor(), b.Factor(); fa != fb {
			t.Fatalf("draw %d differs: %v vs %v", i, fa, fb)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, err := NewPaperModel(0.15, 1)
	if err != nil {
		t.Fatalf("NewPaperModel: %v", err)
	}
	b, err := NewPaperModel(0.15, 2)
	if err != nil {
		t.Fatalf("NewPaperModel: %v", err)
	}
	same := true
	for i := 0; i < 20; i++ {
		if a.Factor() != b.Factor() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical sequences")
	}
}

func TestApplySliceInPlace(t *testing.T) {
	m, err := NewPaperModel(0.1, 5)
	if err != nil {
		t.Fatalf("NewPaperModel: %v", err)
	}
	xs := []float64{1, 2, 3, 4}
	got := m.ApplySlice(xs)
	if &got[0] != &xs[0] {
		t.Error("ApplySlice did not operate in place")
	}
	for i, x := range got {
		lo := float64(i+1) * 0.9
		hi := float64(i+1) * 1.1
		if x < lo-1e-12 || x > hi+1e-12 {
			t.Errorf("element %d = %v outside [%v, %v]", i, x, lo, hi)
		}
	}
}

func TestDistributionString(t *testing.T) {
	if Uniform.String() != "uniform" || Gaussian.String() != "gaussian" || Lognormal.String() != "lognormal" {
		t.Error("Distribution.String wrong for known values")
	}
	if Distribution(42).String() != "Distribution(42)" {
		t.Errorf("unknown distribution String = %q", Distribution(42).String())
	}
}

func TestPropertyApplyPreservesSign(t *testing.T) {
	m, err := NewPaperModel(0.2, 13)
	if err != nil {
		t.Fatalf("NewPaperModel: %v", err)
	}
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		y := m.Apply(x)
		switch {
		case x > 0:
			return y > 0
		case x < 0:
			return y < 0
		default:
			return y == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
