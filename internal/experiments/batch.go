package experiments

// The batch-throughput sweep: how fast the sharded fabric pool works through
// a shared-matrix batch as the pool width grows. This is the wall-clock
// companion to the per-figure accuracy/latency tables — it measures the
// simulator itself, so the numbers depend on the host's core count, and the
// width-1 row is the baseline every speedup is relative to.

import (
	"fmt"
	"time"

	"github.com/memlp/memlp/internal/core"
	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/lp"
	"github.com/memlp/memlp/internal/variation"
)

// BatchRow is one (m, width) point of the batch-throughput table.
type BatchRow struct {
	M, N  int
	Width int // pool width (fabric replicas)
	Batch int // problems per batch
	// Wall is the wall-clock time for the whole batch, replica programming
	// included; PerSolve is Wall / Batch.
	Wall     time.Duration
	PerSolve time.Duration
	// Speedup is the width-1 wall time divided by this row's wall time.
	Speedup float64
	// Optimal is the fraction of batch problems that converged.
	Optimal float64
}

// batchSolverFor builds an Algorithm 1 solver with a fabric pool of the given
// width. Each replica gets its own variation-model clone at the base seed, so
// results are bit-identical across widths (the pool's determinism contract).
func batchSolverFor(varPct float64, seed int64, width int) (*core.Solver, error) {
	cfg := crossbar.Config{}
	var vm *variation.Model
	if varPct > 0 {
		m, err := variation.NewPaperModel(varPct, seed)
		if err != nil {
			return nil, err
		}
		vm = m
		cfg.Variation = vm
	}
	opts := core.Options{
		Fabric:      core.SingleCrossbarFactory(cfg),
		Alpha:       1.05 + 2*varPct,
		Parallelism: width,
	}
	if vm != nil {
		opts.ReplicaFabric = func(size int) (core.Fabric, error) {
			c := cfg
			c.Variation = vm.Clone()
			return core.SingleCrossbarFactory(c)(size)
		}
	}
	return core.NewSolver(opts)
}

// BatchThroughput measures SolveBatch wall time across pool widths for each
// configured size. Every batch shares one constraint matrix (the pool's
// requirement) with per-instance right-hand sides; batch is the number of
// instances per point (0 means 32) and widths the pool widths to sweep
// (empty means {1, 2, 4}). The first of cfg.Variations sets the variation
// level for the whole table.
func BatchThroughput(cfg Config, batch int, widths []int) ([]BatchRow, error) {
	cfg = cfg.withDefaults()
	if batch <= 0 {
		batch = 32
	}
	if len(widths) == 0 {
		widths = []int{1, 2, 4}
	}
	varPct := cfg.Variations[0]
	var rows []BatchRow
	for _, m := range cfg.Sizes {
		base, err := lp.GenerateFeasible(lp.GenConfig{Constraints: m, Seed: cfg.Seed + int64(m)})
		if err != nil {
			return nil, err
		}
		problems := make([]*lp.Problem, batch)
		for i := range problems {
			b := base.B.Clone()
			for j := range b {
				b[j] *= 1 + 0.01*float64(i)
			}
			// Sharing base.A by pointer keeps validation on its fast path.
			p, err := lp.New(fmt.Sprintf("%s-%d", base.Name, i), base.C, base.A, b)
			if err != nil {
				return nil, err
			}
			problems[i] = p
		}

		var baseline time.Duration
		for _, w := range widths {
			if err := cfg.ctxErr(); err != nil {
				return nil, fmt.Errorf("experiments: sweep canceled: %w", err)
			}
			if w < 1 {
				return nil, fmt.Errorf("experiments: pool width %d < 1", w)
			}
			solver, err := batchSolverFor(varPct, 1000+cfg.Seed, w)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			var results []*core.Result
			if cfg.Context != nil {
				results, err = solver.SolveBatchContext(cfg.Context, problems)
			} else {
				results, err = solver.SolveBatch(problems)
			}
			if err != nil {
				return nil, err
			}
			wall := time.Since(start)
			optimal := 0
			for _, res := range results {
				if res.Status == lp.StatusOptimal {
					optimal++
				}
			}
			if baseline == 0 {
				baseline = wall
			}
			rows = append(rows, BatchRow{
				M:        m,
				N:        base.NumVariables(),
				Width:    results[0].Batch.Replicas,
				Batch:    batch,
				Wall:     wall,
				PerSolve: wall / time.Duration(batch),
				Speedup:  float64(baseline) / float64(wall),
				Optimal:  float64(optimal) / float64(batch),
			})
		}
	}
	return rows, nil
}
