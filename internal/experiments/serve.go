package experiments

// The serving-throughput experiment: closed-loop clients hammering an
// in-process memlpd server with same-matrix requests, with coalescing off
// (every request solved solo) and on (same-matrix requests folded into
// shared SolveBatch calls). The coalescing win is the service-level
// restatement of the paper's amortization claim — replica programming cost
// paid once per matrix instead of once per request — and is reported three
// ways: wall-clock requests/sec (bounded by host cores, since the software
// simulator's per-iteration compute serializes on one core), modeled fabric
// latency per request (the crossbar-level cost estimate), and programming
// events per request (the amortization itself, which approaches 1/batch).
// Off/on pairs from the same run are the only valid comparison.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/memlp/memlp/internal/lp"
	"github.com/memlp/memlp/internal/serve"
)

// ServeRow is one (size, coalescing mode) point of the serving table.
type ServeRow struct {
	M, N int
	// Clients is the closed-loop worker count; Requests the total completed.
	Clients  int
	Requests int
	// Coalesce reports whether same-matrix batching was enabled.
	Coalesce bool
	// Window is the server's coalesce window.
	Window time.Duration
	// Wall is the whole run's duration; ReqPerSec the throughput.
	Wall      time.Duration
	ReqPerSec float64
	// P50 and P95 are request-latency percentiles.
	P50, P95 time.Duration
	// HitRate is the fraction of requests folded into a batch of ≥ 2;
	// MeanBatch the mean batch size over coalesced requests (0 when off).
	HitRate   float64
	MeanBatch float64
	// Optimal is the fraction of requests that solved to optimality.
	Optimal float64
	// Speedup is this row's throughput over the coalescing-off row of the
	// same size (1.0 on the off rows themselves). Host wall time: on a
	// single-core host the per-iteration simulation compute serializes, so
	// this stays near 1 regardless of how much programming is amortized.
	Speedup float64
	// HWPerReq is the mean modeled fabric latency per request (the
	// crossbar-level cost estimate from Solution.Hardware, which the wall
	// clock of the software simulator does not reflect).
	HWPerReq time.Duration
	// HWSpeedup is the off-row HWPerReq over this row's (1.0 on off rows).
	HWSpeedup float64
	// ProgramsPerReq is the mean number of fabric programming events a
	// request paid for: 1.0 when every request programs its own replicas,
	// 1/batch for requests folded into a shared batch. This is the
	// amortization the paper claims, measured directly.
	ProgramsPerReq float64
	// ProgramAmortization is the off-row ProgramsPerReq over this row's
	// (1.0 on off rows); with perfect coalescing of k clients it approaches k.
	ProgramAmortization float64
}

// ServeThroughput boots an in-process solver service per (size, mode) point
// and measures closed-loop request throughput: `clients` workers each issue
// `perClient` sequential same-matrix requests (per-request right-hand
// sides), first with coalescing disabled, then enabled with the given
// window. The first of cfg.Variations sets the hardware variation level.
func ServeThroughput(cfg Config, clients, perClient int, window time.Duration) ([]ServeRow, error) {
	cfg = cfg.withDefaults()
	if clients <= 0 {
		clients = 8
	}
	if perClient <= 0 {
		perClient = 8
	}
	if window <= 0 {
		window = 5 * time.Millisecond
	}
	varPct := cfg.Variations[0]

	var rows []ServeRow
	for _, m := range cfg.Sizes {
		base, err := lp.GenerateFeasible(lp.GenConfig{Constraints: m, Seed: cfg.Seed + int64(m)})
		if err != nil {
			return nil, err
		}
		// One serialized request body per (client, iteration): same A, the
		// right-hand side scaled per request so nothing can be answer-cached.
		bodies := make([][][]byte, clients)
		for c := range bodies {
			bodies[c] = make([][]byte, perClient)
			for j := range bodies[c] {
				b := base.B.Clone()
				for k := range b {
					b[k] *= 1 + 0.003*float64(c*perClient+j)
				}
				p, err := lp.New(fmt.Sprintf("%s-c%d-r%d", base.Name, c, j), base.C, base.A, b)
				if err != nil {
					return nil, err
				}
				var text bytes.Buffer
				if err := p.WriteText(&text); err != nil {
					return nil, err
				}
				body, err := json.Marshal(serve.Request{
					Problem: text.String(),
					Engine:  "crossbar",
					Options: serve.Options{Variation: varPct, Seed: cfg.Seed + 1},
				})
				if err != nil {
					return nil, err
				}
				bodies[c][j] = body
			}
		}

		var off ServeRow
		for _, coalesce := range []bool{false, true} {
			if err := cfg.ctxErr(); err != nil {
				return nil, fmt.Errorf("experiments: sweep canceled: %w", err)
			}
			row, err := serveRun(bodies, coalesce, window, clients)
			if err != nil {
				return nil, err
			}
			row.M, row.N = m, base.NumVariables()
			if !coalesce {
				off = row
				row.Speedup = 1
				row.HWSpeedup = 1
				row.ProgramAmortization = 1
			} else {
				row.Speedup = safeDiv(row.ReqPerSec, off.ReqPerSec)
				row.HWSpeedup = safeDiv(float64(off.HWPerReq), float64(row.HWPerReq))
				row.ProgramAmortization = safeDiv(off.ProgramsPerReq, row.ProgramsPerReq)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// serveRun boots one server on a loopback port, drives it with the prepared
// request bodies, and aggregates the latency histogram and coalescing stats.
func serveRun(bodies [][][]byte, coalesce bool, window time.Duration, clients int) (ServeRow, error) {
	srv := serve.New(serve.Config{
		QueueLimit:        2 * clients,
		CoalesceWindow:    window,
		MaxBatch:          clients,
		DisableCoalescing: !coalesce,
	})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ServeRow{}, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	url := "http://" + ln.Addr().String() + "/solve"

	type outcome struct {
		latency time.Duration
		batch   int
		optimal bool
		hwNS    float64
	}
	results := make([][]outcome, len(bodies))
	errs := make([]error, len(bodies))
	var wg sync.WaitGroup
	start := time.Now()
	for c := range bodies {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			for _, body := range bodies[c] {
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					errs[c] = err
					return
				}
				var sr serve.Response
				err = json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if err != nil {
					errs[c] = err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs[c] = fmt.Errorf("HTTP %d: %s", resp.StatusCode, sr.Error)
					return
				}
				o := outcome{
					latency: time.Since(t0),
					batch:   sr.BatchSize,
					optimal: sr.Status == "optimal",
				}
				if sr.Hardware != nil {
					o.hwNS = float64(sr.Hardware.LatencyNS)
				}
				results[c] = append(results[c], o)
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return ServeRow{}, err
		}
	}

	var latencies []time.Duration
	var coalesced, optimal, total int
	var batchSum int
	var hwSum, programs float64
	for _, rs := range results {
		for _, o := range rs {
			total++
			latencies = append(latencies, o.latency)
			hwSum += o.hwNS
			if o.optimal {
				optimal++
			}
			if o.batch > 1 {
				coalesced++
				batchSum += o.batch
				// A batch of k shares one programming pass: each member
				// paid 1/k of a programming event.
				programs += 1 / float64(o.batch)
			} else {
				programs++
			}
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	row := ServeRow{
		Clients:   len(bodies),
		Requests:  total,
		Coalesce:  coalesce,
		Window:    window,
		Wall:      wall,
		ReqPerSec: float64(total) / wall.Seconds(),
		P50:       pct(0.50),
		P95:       pct(0.95),
		Optimal:   safeDiv(float64(optimal), float64(total)),
		HitRate:   safeDiv(float64(coalesced), float64(total)),

		HWPerReq:       time.Duration(safeDiv(hwSum, float64(total))),
		ProgramsPerReq: safeDiv(programs, float64(total)),
	}
	if coalesced > 0 {
		row.MeanBatch = float64(batchSum) / float64(coalesced)
	}
	return row, nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
