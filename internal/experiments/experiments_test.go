package experiments

import (
	"testing"
)

// tinyConfig keeps harness tests fast.
func tinyConfig() Config {
	return Config{Sizes: []int{9}, Variations: []float64{0, 0.10}, Trials: 2}
}

func TestAccuracyAlgorithm1(t *testing.T) {
	rows, err := Accuracy(Algorithm1, tinyConfig())
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.M != 9 || r.N != 3 {
			t.Errorf("dims = (%d, %d)", r.M, r.N)
		}
		if r.MeanRelErr < 0 || r.MeanRelErr > 0.5 {
			t.Errorf("var %v: mean rel err %v out of plausible range", r.Variation, r.MeanRelErr)
		}
		if r.MaxRelErr < r.MeanRelErr {
			t.Errorf("max < mean: %v < %v", r.MaxRelErr, r.MeanRelErr)
		}
		if r.MeanIterations <= 0 {
			t.Error("iterations not recorded")
		}
	}
}

func TestAccuracyAlgorithm2(t *testing.T) {
	rows, err := Accuracy(Algorithm2, tinyConfig())
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestAccuracyUnknownAlgorithm(t *testing.T) {
	if _, err := Accuracy(Algorithm(9), tinyConfig()); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestLatencyEnergy(t *testing.T) {
	rows, err := LatencyEnergy(Algorithm1, tinyConfig(), true)
	if err != nil {
		t.Fatalf("LatencyEnergy: %v", err)
	}
	for _, r := range rows {
		if r.SoftwareReduced <= 0 || r.SoftwareFull <= 0 || r.Simplex <= 0 {
			t.Errorf("software timings not measured: %+v", r)
		}
		if r.Crossbar <= 0 || r.CrossbarEnergy <= 0 {
			t.Errorf("crossbar estimate not populated: %+v", r)
		}
		if r.Speedup <= 0 || r.EnergyGain <= 0 {
			t.Errorf("ratios not computed: %+v", r)
		}
	}
}

func TestInfeasibleDetection(t *testing.T) {
	cfg := tinyConfig()
	cfg.Variations = []float64{0}
	rows, err := InfeasibleDetection(Algorithm1, cfg)
	if err != nil {
		t.Fatalf("InfeasibleDetection: %v", err)
	}
	for _, r := range rows {
		if r.DetectionRate < 0.5 {
			t.Errorf("detection rate %v below 50%%", r.DetectionRate)
		}
	}
}

func TestVariationSensitivity(t *testing.T) {
	rows, err := VariationSensitivity(tinyConfig())
	if err != nil {
		t.Fatalf("VariationSensitivity: %v", err)
	}
	// var=0 rows are skipped.
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	if rows[0].MeanRelErr <= 0 {
		t.Error("perturbation had no effect on the exact optimum")
	}
}

func TestIterationCounts(t *testing.T) {
	cfg := tinyConfig()
	rows, err := IterationCounts(cfg)
	if err != nil {
		t.Fatalf("IterationCounts: %v", err)
	}
	for _, r := range rows {
		if r.Algorithm1 <= 0 || r.Algorithm2 <= 0 {
			t.Errorf("iteration counts missing: %+v", r)
		}
	}
}

func TestAblations(t *testing.T) {
	cfg := Config{Trials: 1}
	t.Run("constant-step", func(t *testing.T) {
		rows, err := AblationConstantStep(cfg, 9, []float64{0.35})
		if err != nil || len(rows) != 1 {
			t.Fatalf("rows=%d err=%v", len(rows), err)
		}
	})
	t.Run("fillers", func(t *testing.T) {
		rows, err := AblationFillers(cfg, 9, []float64{0.01})
		if err != nil || len(rows) != 2 {
			t.Fatalf("rows=%d err=%v", len(rows), err)
		}
		if rows[0].Label != "reduced-kkt (default)" {
			t.Errorf("label = %q", rows[0].Label)
		}
	})
	t.Run("io-bits", func(t *testing.T) {
		rows, err := AblationIOBits(cfg, 9, []int{8})
		if err != nil || len(rows) != 2 { // per-element + global-range
			t.Fatalf("rows=%d err=%v", len(rows), err)
		}
	})
	t.Run("variation-model", func(t *testing.T) {
		rows, err := AblationVariationModel(cfg, 9, 0.1)
		if err != nil || len(rows) != 4 {
			t.Fatalf("rows=%d err=%v", len(rows), err)
		}
	})
	t.Run("noc", func(t *testing.T) {
		rows, err := AblationNoC(cfg, 9, 16)
		if err != nil || len(rows) != 2 {
			t.Fatalf("rows=%d err=%v", len(rows), err)
		}
		for _, r := range rows {
			if r.Latency <= 0 {
				t.Errorf("%s: latency not populated", r.Label)
			}
		}
	})
	t.Run("write-bits", func(t *testing.T) {
		rows, err := AblationWriteBits(cfg, 9, []int{14})
		if err != nil || len(rows) != 1 {
			t.Fatalf("rows=%d err=%v", len(rows), err)
		}
	})
}

func TestAlgorithmString(t *testing.T) {
	if Algorithm1.String() != "algorithm-1" || Algorithm2.String() != "algorithm-2" {
		t.Error("Algorithm.String wrong")
	}
	if Algorithm(5).String() == "" {
		t.Error("unknown algorithm String empty")
	}
}
