package experiments

import (
	"fmt"
	"math"

	"github.com/memlp/memlp/internal/core"
	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/lp"
	"github.com/memlp/memlp/internal/memristor"
)

// YieldRow is one (m, density) point of the yield-vs-fault-density sweep.
type YieldRow struct {
	M       int
	Density float64 // total stuck-cell density (split evenly ON/OFF)
	// FirstTryRate is the fraction of trials the analog fabric solved
	// optimally on the first attempt, defects and all.
	FirstTryRate float64
	// RecoveredRate is the fraction rescued in-fabric by the re-solve or
	// remap rungs (still StatusOptimal).
	RecoveredRate float64
	// DegradedRate is the fraction that fell through to the software rung
	// (StatusDegraded: correct answer, not computed in-memory).
	DegradedRate float64
	// FailureRate is the fraction with no usable answer at all.
	FailureRate float64
	// Yield is FirstTryRate + RecoveredRate: how often the fabric itself
	// delivers the optimum.
	Yield float64
	// MeanRelErr is the mean relative objective error of the in-fabric
	// optimal results versus the software reference.
	MeanRelErr float64
	// MeanStuck is the mean number of stuck cells in the mapped region.
	MeanStuck float64
	// MeanRetries is the mean write-verify corrective-pulse count per trial.
	MeanRetries float64
}

// YieldVsFaultDensity measures how gracefully the chosen crossbar algorithm
// degrades as stuck-cell density grows, with the full recovery ladder
// (re-solve → remap → software fallback) and write-verify programming
// enabled. It is the fault-tolerance analogue of the paper's §4.3 variation
// sweep: instead of asking "how much analog noise can the PDIP loop absorb?"
// it asks "how many dead devices can the stack route around before the
// answer stops coming out of the fabric?".
//
// Empty densities means {0, 0.001, 0.005, 0.01, 0.02, 0.05}. writeRetries
// is the write-verify budget per cell (0 disables verification).
func YieldVsFaultDensity(alg Algorithm, cfg Config, densities []float64, writeRetries int) ([]YieldRow, error) {
	cfg = cfg.withDefaults()
	if len(densities) == 0 {
		densities = []float64{0, 0.001, 0.005, 0.01, 0.02, 0.05}
	}
	var rows []YieldRow
	for _, m := range cfg.Sizes {
		for _, d := range densities {
			row := YieldRow{M: m, Density: d}
			var optCount int
			for trial := 0; trial < cfg.Trials; trial++ {
				if err := cfg.ctxErr(); err != nil {
					return nil, fmt.Errorf("experiments: sweep canceled: %w", err)
				}
				seed := cfg.Seed + int64(trial)
				p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: m, Seed: seed})
				if err != nil {
					return nil, err
				}
				ref, err := reference(p)
				if err != nil {
					return nil, err
				}
				solve, err := faultySolverFor(alg, d, writeRetries, 1000+seed)
				if err != nil {
					return nil, err
				}
				res, err := solve(p)
				if err != nil {
					return nil, err
				}
				if diag := res.Diagnostics; diag != nil {
					row.MeanStuck += float64(diag.StuckOn + diag.StuckOff)
					row.MeanRetries += float64(diag.WriteRetries)
				}
				switch {
				case res.Status == lp.StatusOptimal && recoveredInFabric(res):
					row.RecoveredRate++
				case res.Status == lp.StatusOptimal:
					row.FirstTryRate++
				case res.Status == lp.StatusDegraded:
					row.DegradedRate++
				default:
					row.FailureRate++
				}
				if res.Status == lp.StatusOptimal {
					row.MeanRelErr += math.Abs(res.Objective-ref) / (1 + math.Abs(ref))
					optCount++
				}
			}
			n := float64(cfg.Trials)
			row.FirstTryRate /= n
			row.RecoveredRate /= n
			row.DegradedRate /= n
			row.FailureRate /= n
			row.Yield = row.FirstTryRate + row.RecoveredRate
			row.MeanStuck /= n
			row.MeanRetries /= n
			if optCount > 0 {
				row.MeanRelErr /= float64(optCount)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// recoveredInFabric reports whether the result came from a ladder rung that
// still used the analog fabric (re-solve or remap).
func recoveredInFabric(res *core.Result) bool {
	return res.Diagnostics != nil &&
		(res.Diagnostics.RecoveredBy == "resolve" || res.Diagnostics.RecoveredBy == "remap")
}

// faultySolverFor builds a crossbar solver with seeded stuck cells,
// write-verify programming, and the full recovery ladder.
func faultySolverFor(alg Algorithm, density float64, writeRetries int, seed int64) (func(*lp.Problem) (*core.Result, error), error) {
	xcfg := crossbar.Config{MaxWriteRetries: writeRetries}
	if density > 0 {
		fm := memristor.FaultModel{
			StuckOnDensity:  density / 2,
			StuckOffDensity: density / 2,
			Seed:            seed,
		}
		if err := fm.Validate(); err != nil {
			return nil, err
		}
		xcfg.Faults = &fm
	}
	opts := core.Options{
		Fabric:   core.SingleCrossbarFactory(xcfg),
		Recovery: &core.RecoveryPolicy{Remap: true, SoftwareFallback: true},
	}
	switch alg {
	case Algorithm1:
		s, err := core.NewSolver(opts)
		if err != nil {
			return nil, err
		}
		return s.Solve, nil
	case Algorithm2:
		s, err := core.NewLargeScaleSolver(opts)
		if err != nil {
			return nil, err
		}
		return s.Solve, nil
	default:
		return nil, fmt.Errorf("experiments: unknown algorithm %d", int(alg))
	}
}
