// Package experiments drives the paper's evaluation (§4): the accuracy
// sweeps of Fig. 5, the latency comparisons of Fig. 6, the energy
// comparisons of Fig. 7, the infeasibility-detection numbers of §4.4, and
// the ablations listed in DESIGN.md. Both cmd/benchtables and the
// repository-level benchmarks are thin wrappers around this package.
//
// The paper's setup (§4.2): the number of constraints m sweeps 4…1024
// geometrically with n = m/3 variables; 100 feasible and 100 infeasible
// instances per point; process variation var ∈ {0, 5%, 10%, 20%}; results
// are compared against Matlab linprog. Here the software references are the
// in-repo PDIP baselines, trial counts are configurable (the full 100×
// sweep at m = 1024 is hours of simulation on one core), and all instances
// are seeded for reproducibility.
package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"github.com/memlp/memlp/internal/core"
	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/lp"
	"github.com/memlp/memlp/internal/memristor"
	"github.com/memlp/memlp/internal/pdip"
	"github.com/memlp/memlp/internal/perf"
	"github.com/memlp/memlp/internal/simplex"
	"github.com/memlp/memlp/internal/trace"
	"github.com/memlp/memlp/internal/variation"
)

// Algorithm selects which crossbar solver an experiment exercises.
type Algorithm int

// The two solvers of the paper.
const (
	// Algorithm1 is the full crossbar PDIP solver (§3.2).
	Algorithm1 Algorithm = iota + 1
	// Algorithm2 is the large-scale iterative solver (§3.4).
	Algorithm2
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Algorithm1:
		return "algorithm-1"
	case Algorithm2:
		return "algorithm-2"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Config parameterizes a sweep.
type Config struct {
	// Sizes is the list of constraint counts m (n = m/3 per the paper).
	// Empty means {4, 16, 64, 256}.
	Sizes []int
	// Variations is the list of maximum process-variation fractions.
	// Empty means {0, 0.05, 0.10, 0.20} (§4.2).
	Variations []float64
	// Trials is the number of random instances per (m, var) point.
	// Zero means 5.
	Trials int
	// Seed offsets the instance stream.
	Seed int64
	// Context cancels a sweep between trials (a size-1024 point can run for
	// minutes). Nil means never canceled.
	Context context.Context
	// Trace, when non-nil, receives every crossbar solve's iteration records
	// (Engine stamped with the algorithm name) as the sweep runs.
	Trace trace.Sink
}

// ctxErr reports the sweep's cancellation state.
func (c Config) ctxErr() error {
	if c.Context == nil {
		return nil
	}
	return c.Context.Err()
}

func (c Config) withDefaults() Config {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{4, 16, 64, 256}
	}
	if len(c.Variations) == 0 {
		c.Variations = []float64{0, 0.05, 0.10, 0.20}
	}
	if c.Trials == 0 {
		c.Trials = 5
	}
	return c
}

// solverFor builds the crossbar solver under test, wiring the sweep's trace
// sink (if any) into it.
func (c Config) solverFor(alg Algorithm, varPct float64, seed int64) (func(*lp.Problem) (*core.Result, error), error) {
	cfg := crossbar.Config{}
	if varPct > 0 {
		vm, err := variation.NewPaperModel(varPct, seed)
		if err != nil {
			return nil, err
		}
		cfg.Variation = vm
	}
	opts := core.Options{
		Fabric: core.SingleCrossbarFactory(cfg),
		Alpha:  1.05 + 2*varPct,
	}
	if c.Trace != nil {
		sink := c.Trace
		name := alg.String()
		opts.Trace = &core.TraceOptions{OnRecord: func(rec trace.Record) {
			rec.Engine = name
			sink.Emit(rec)
		}}
		opts.EnergyModel = func(cnt crossbar.Counters) float64 {
			return perf.CrossbarCost(cnt, memristor.DefaultTiming()).Energy
		}
	}
	switch alg {
	case Algorithm1:
		s, err := core.NewSolver(opts)
		if err != nil {
			return nil, err
		}
		return s.Solve, nil
	case Algorithm2:
		s, err := core.NewLargeScaleSolver(opts)
		if err != nil {
			return nil, err
		}
		return s.Solve, nil
	default:
		return nil, fmt.Errorf("experiments: unknown algorithm %d", int(alg))
	}
}

// reference solves p with the software PDIP reference and returns the
// optimal objective.
func reference(p *lp.Problem) (float64, error) {
	s, err := pdip.New(pdip.WithBackend(pdip.NewtonReduced))
	if err != nil {
		return 0, err
	}
	res, err := s.Solve(p)
	if err != nil {
		return 0, err
	}
	if res.Status != lp.StatusOptimal {
		return 0, fmt.Errorf("experiments: reference status %v", res.Status)
	}
	return res.Objective, nil
}

// AccuracyRow is one (m, var) point of Fig. 5.
type AccuracyRow struct {
	M, N           int
	Variation      float64
	MeanRelErr     float64 // mean |objective error| relative to the reference
	MaxRelErr      float64
	OptimalRate    float64 // fraction of trials that converged + passed the α-check
	MeanIterations float64
}

// Accuracy reproduces Fig. 5(a) (Algorithm 1) or Fig. 5(b) (Algorithm 2):
// relative objective error of the crossbar solver versus the software
// reference across sizes and variation levels.
func Accuracy(alg Algorithm, cfg Config) ([]AccuracyRow, error) {
	cfg = cfg.withDefaults()
	var rows []AccuracyRow
	for _, m := range cfg.Sizes {
		for _, v := range cfg.Variations {
			row := AccuracyRow{M: m, N: maxInt(1, m/3), Variation: v}
			var count int
			for trial := 0; trial < cfg.Trials; trial++ {
				if err := cfg.ctxErr(); err != nil {
					return nil, fmt.Errorf("experiments: sweep canceled: %w", err)
				}
				seed := cfg.Seed + int64(trial)
				p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: m, Seed: seed})
				if err != nil {
					return nil, err
				}
				ref, err := reference(p)
				if err != nil {
					return nil, err
				}
				solve, err := cfg.solverFor(alg, v, 1000+seed)
				if err != nil {
					return nil, err
				}
				res, err := solve(p)
				if err != nil {
					return nil, err
				}
				row.MeanIterations += float64(res.Iterations)
				if res.Status == lp.StatusOptimal {
					row.OptimalRate++
				}
				rel := math.Abs(res.Objective-ref) / (1 + math.Abs(ref))
				row.MeanRelErr += rel
				if rel > row.MaxRelErr {
					row.MaxRelErr = rel
				}
				count++
			}
			row.MeanRelErr /= float64(count)
			row.MeanIterations /= float64(count)
			row.OptimalRate /= float64(count)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// PerfRow is one (m, var) point of Fig. 6 (latency) and Fig. 7 (energy).
type PerfRow struct {
	M         int
	Variation float64
	// SoftwareFull and SoftwareReduced are measured wall-clock times of the
	// two software PDIP backends (the "PDIP in Matlab" and "linprog"
	// analogues); Simplex is the measured simplex time.
	SoftwareFull    time.Duration
	SoftwareReduced time.Duration
	Simplex         time.Duration
	// Crossbar is the modelled hardware latency of the crossbar solve.
	Crossbar time.Duration
	// SoftwareEnergy and CrossbarEnergy are the corresponding energies (J).
	SoftwareEnergy float64
	CrossbarEnergy float64
	// Speedup is SoftwareReduced / Crossbar; EnergyGain likewise.
	Speedup    float64
	EnergyGain float64
	Iterations float64
}

// LatencyEnergy reproduces Fig. 6 and Fig. 7 for the chosen algorithm:
// measured software baselines versus modelled crossbar latency and energy.
// includeFullPDIP controls whether the O(N³) software baseline is also
// measured (it dominates the harness runtime at large m).
func LatencyEnergy(alg Algorithm, cfg Config, includeFullPDIP bool) ([]PerfRow, error) {
	cfg = cfg.withDefaults()
	timing := memristor.DefaultTiming()
	var rows []PerfRow
	for _, m := range cfg.Sizes {
		for _, v := range cfg.Variations {
			row := PerfRow{M: m, Variation: v}
			for trial := 0; trial < cfg.Trials; trial++ {
				if err := cfg.ctxErr(); err != nil {
					return nil, fmt.Errorf("experiments: sweep canceled: %w", err)
				}
				seed := cfg.Seed + int64(trial)
				p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: m, Seed: seed})
				if err != nil {
					return nil, err
				}

				redSolver, err := pdip.New(pdip.WithBackend(pdip.NewtonReduced))
				if err != nil {
					return nil, err
				}
				start := time.Now()
				if _, err := redSolver.Solve(p); err != nil {
					return nil, err
				}
				row.SoftwareReduced += time.Since(start)

				if includeFullPDIP {
					fullSolver, err := pdip.New(pdip.WithBackend(pdip.NewtonFull))
					if err != nil {
						return nil, err
					}
					start = time.Now()
					if _, err := fullSolver.Solve(p); err != nil {
						return nil, err
					}
					row.SoftwareFull += time.Since(start)
				}

				sx, err := simplex.New()
				if err != nil {
					return nil, err
				}
				start = time.Now()
				if _, err := sx.Solve(p); err != nil {
					return nil, err
				}
				row.Simplex += time.Since(start)

				solve, err := cfg.solverFor(alg, v, 1000+seed)
				if err != nil {
					return nil, err
				}
				res, err := solve(p)
				if err != nil {
					return nil, err
				}
				est := perf.CrossbarCost(res.Counters, timing)
				row.Crossbar += est.Latency
				row.CrossbarEnergy += est.Energy
				row.Iterations += float64(res.Iterations)
			}
			tr := time.Duration(cfg.Trials)
			row.SoftwareFull /= tr
			row.SoftwareReduced /= tr
			row.Simplex /= tr
			row.Crossbar /= tr
			row.CrossbarEnergy /= float64(cfg.Trials)
			row.Iterations /= float64(cfg.Trials)
			row.SoftwareEnergy = perf.SoftwareCost(row.SoftwareReduced).Energy
			row.Speedup = float64(row.SoftwareReduced) / float64(row.Crossbar)
			row.EnergyGain = row.SoftwareEnergy / row.CrossbarEnergy
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// InfeasibleRow is one (m, var) point of the §4.4 infeasibility-detection
// comparison.
type InfeasibleRow struct {
	M             int
	Variation     float64
	DetectionRate float64
	Software      time.Duration
	Crossbar      time.Duration
	Speedup       float64
	Iterations    float64
}

// InfeasibleDetection reproduces the §4.4 text numbers: how fast infeasible
// instances are flagged by the crossbar solver versus the software baseline.
func InfeasibleDetection(alg Algorithm, cfg Config) ([]InfeasibleRow, error) {
	cfg = cfg.withDefaults()
	timing := memristor.DefaultTiming()
	var rows []InfeasibleRow
	for _, m := range cfg.Sizes {
		for _, v := range cfg.Variations {
			row := InfeasibleRow{M: m, Variation: v}
			for trial := 0; trial < cfg.Trials; trial++ {
				if err := cfg.ctxErr(); err != nil {
					return nil, fmt.Errorf("experiments: sweep canceled: %w", err)
				}
				seed := cfg.Seed + int64(trial)
				p, err := lp.GenerateInfeasible(lp.GenConfig{Constraints: m, Seed: seed})
				if err != nil {
					return nil, err
				}
				soft, err := pdip.New(pdip.WithBackend(pdip.NewtonReduced))
				if err != nil {
					return nil, err
				}
				start := time.Now()
				sres, err := soft.Solve(p)
				if err != nil {
					return nil, err
				}
				row.Software += time.Since(start)
				_ = sres

				solve, err := cfg.solverFor(alg, v, 1000+seed)
				if err != nil {
					return nil, err
				}
				res, err := solve(p)
				if err != nil {
					return nil, err
				}
				est := perf.CrossbarCost(res.Counters, timing)
				row.Crossbar += est.Latency
				row.Iterations += float64(res.Iterations)
				if res.Status == lp.StatusInfeasible || res.Status == lp.StatusNumericalFailure {
					row.DetectionRate++
				}
			}
			tr := time.Duration(cfg.Trials)
			row.Software /= tr
			row.Crossbar /= tr
			row.Iterations /= float64(cfg.Trials)
			row.DetectionRate /= float64(cfg.Trials)
			row.Speedup = float64(row.Software) / float64(row.Crossbar)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// SensitivityRow is one point of the §4.3 analysis: the intrinsic
// sensitivity of the exact LP optimum to a static ±var perturbation of A.
type SensitivityRow struct {
	M          int
	Variation  float64
	MeanRelErr float64
	MaxRelErr  float64
}

// VariationSensitivity reproduces the paper's "to our surprise" §4.3 check:
// solve exactly with perturbed matrices (the analogue of running linprog on
// M′) and measure how far the optimum moves. This bounds what any solver
// operating on perturbed coefficients can achieve.
func VariationSensitivity(cfg Config) ([]SensitivityRow, error) {
	cfg = cfg.withDefaults()
	var rows []SensitivityRow
	for _, m := range cfg.Sizes {
		for _, v := range cfg.Variations {
			if v == 0 {
				continue
			}
			row := SensitivityRow{M: m, Variation: v}
			var count int
			for trial := 0; trial < cfg.Trials; trial++ {
				if err := cfg.ctxErr(); err != nil {
					return nil, fmt.Errorf("experiments: sweep canceled: %w", err)
				}
				seed := cfg.Seed + int64(trial)
				p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: m, Seed: seed})
				if err != nil {
					return nil, err
				}
				ref, err := reference(p)
				if err != nil {
					return nil, err
				}
				vm, err := variation.NewPaperModel(v, 2000+seed)
				if err != nil {
					return nil, err
				}
				ap := p.A.Clone()
				for i := 0; i < ap.Rows(); i++ {
					row := ap.RawRow(i)
					for j := range row {
						row[j] = vm.Apply(row[j])
					}
				}
				pp := &lp.Problem{Name: p.Name + "-perturbed", C: p.C, A: ap, B: p.B}
				pres, err := reference(pp)
				if err != nil {
					continue // rare: perturbation made the instance degenerate
				}
				rel := math.Abs(pres-ref) / (1 + math.Abs(ref))
				row.MeanRelErr += rel
				if rel > row.MaxRelErr {
					row.MaxRelErr = rel
				}
				count++
			}
			if count > 0 {
				row.MeanRelErr /= float64(count)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// IterationRow is one point of the iteration-count table (§4.3/§4.4).
type IterationRow struct {
	M          int
	Variation  float64
	Algorithm1 float64
	Algorithm2 float64
	Resolves2  float64
}

// IterationCounts compares the two algorithms' iteration behaviour across
// variation levels (the paper: Algorithm 1 grows with variation, Algorithm 2
// stays flat thanks to its constant step).
func IterationCounts(cfg Config) ([]IterationRow, error) {
	cfg = cfg.withDefaults()
	var rows []IterationRow
	for _, m := range cfg.Sizes {
		for _, v := range cfg.Variations {
			row := IterationRow{M: m, Variation: v}
			for trial := 0; trial < cfg.Trials; trial++ {
				if err := cfg.ctxErr(); err != nil {
					return nil, fmt.Errorf("experiments: sweep canceled: %w", err)
				}
				seed := cfg.Seed + int64(trial)
				p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: m, Seed: seed})
				if err != nil {
					return nil, err
				}
				s1, err := cfg.solverFor(Algorithm1, v, 1000+seed)
				if err != nil {
					return nil, err
				}
				r1, err := s1(p)
				if err != nil {
					return nil, err
				}
				row.Algorithm1 += float64(r1.Iterations)
				s2, err := cfg.solverFor(Algorithm2, v, 1000+seed)
				if err != nil {
					return nil, err
				}
				r2, err := s2(p)
				if err != nil {
					return nil, err
				}
				row.Algorithm2 += float64(r2.Iterations)
				row.Resolves2 += float64(r2.Resolves)
			}
			row.Algorithm1 /= float64(cfg.Trials)
			row.Algorithm2 /= float64(cfg.Trials)
			row.Resolves2 /= float64(cfg.Trials)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
