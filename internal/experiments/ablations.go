package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/memlp/memlp/internal/core"
	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/lp"
	"github.com/memlp/memlp/internal/memristor"
	"github.com/memlp/memlp/internal/noc"
	"github.com/memlp/memlp/internal/perf"
	"github.com/memlp/memlp/internal/variation"
)

// AblationRow is one configuration point of an ablation sweep.
type AblationRow struct {
	// Label identifies the swept configuration (e.g. "theta=0.35",
	// "io-bits=6", "uniform", "mesh").
	Label string
	// MeanRelErr is the mean relative objective error vs the reference.
	MeanRelErr float64
	// OptimalRate is the fraction of trials that converged and passed the
	// α-check.
	OptimalRate float64
	// MeanIterations is the mean iteration count.
	MeanIterations float64
	// Latency is the mean modelled hardware latency (zero when the sweep
	// does not touch the cost model).
	Latency time.Duration
}

// ablationEval runs one solver configuration over the trial set and
// aggregates the standard ablation metrics.
func ablationEval(cfg Config, m int, build func(seed int64) (func(*lp.Problem) (*core.Result, error), error)) (AblationRow, error) {
	var row AblationRow
	timing := memristor.DefaultTiming()
	var count int
	for trial := 0; trial < cfg.Trials; trial++ {
		if err := cfg.ctxErr(); err != nil {
			return row, fmt.Errorf("experiments: sweep canceled: %w", err)
		}
		seed := cfg.Seed + int64(trial)
		p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: m, Seed: seed})
		if err != nil {
			return row, err
		}
		ref, err := reference(p)
		if err != nil {
			return row, err
		}
		solve, err := build(1000 + seed)
		if err != nil {
			return row, err
		}
		res, err := solve(p)
		if err != nil {
			return row, err
		}
		if res.Status == lp.StatusOptimal {
			row.OptimalRate++
		}
		row.MeanRelErr += math.Abs(res.Objective-ref) / (1 + math.Abs(ref))
		row.MeanIterations += float64(res.Iterations)
		row.Latency += perf.CrossbarCost(res.Counters, timing).Latency
		count++
	}
	row.MeanRelErr /= float64(count)
	row.MeanIterations /= float64(count)
	row.OptimalRate /= float64(count)
	row.Latency /= time.Duration(count)
	return row, nil
}

// AblationConstantStep (AB1) sweeps Algorithm 2's constant step length θ:
// the paper says adaptive steps break convergence and a constant θ is
// required; this sweep finds the usable band.
func AblationConstantStep(cfg Config, m int, thetas []float64) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	if len(thetas) == 0 {
		thetas = []float64{0.1, 0.2, 0.35, 0.5, 0.7, 0.9}
	}
	var rows []AblationRow
	for _, theta := range thetas {
		theta := theta
		row, err := ablationEval(cfg, m, func(seed int64) (func(*lp.Problem) (*core.Result, error), error) {
			s, err := core.NewLargeScaleSolver(core.Options{
				Fabric:       core.SingleCrossbarFactory(crossbar.Config{}),
				ConstantStep: theta,
			})
			if err != nil {
				return nil, err
			}
			return s.Solve, nil
		})
		if err != nil {
			return nil, err
		}
		row.Label = formatLabel("theta", theta)
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationFillers (AB2) compares Algorithm 2's default reduced-KKT coupling
// against the paper-literal εI fillers across filler magnitudes — the
// instability analysis in the LargeScaleSolver documentation, measured.
func AblationFillers(cfg Config, m int, regs []float64) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	if len(regs) == 0 {
		regs = []float64{0.001, 0.01, 0.1, 0.5}
	}
	var rows []AblationRow
	row, err := ablationEval(cfg, m, func(seed int64) (func(*lp.Problem) (*core.Result, error), error) {
		s, err := core.NewLargeScaleSolver(core.Options{
			Fabric: core.SingleCrossbarFactory(crossbar.Config{}),
		})
		if err != nil {
			return nil, err
		}
		return s.Solve, nil
	})
	if err != nil {
		return nil, err
	}
	row.Label = "reduced-kkt (default)"
	rows = append(rows, row)
	for _, reg := range regs {
		reg := reg
		row, err := ablationEval(cfg, m, func(seed int64) (func(*lp.Problem) (*core.Result, error), error) {
			s, err := core.NewLargeScaleSolver(core.Options{
				Fabric:         core.SingleCrossbarFactory(crossbar.Config{}),
				LiteralFillers: true,
				Regularization: reg,
			})
			if err != nil {
				return nil, err
			}
			return s.Solve, nil
		})
		if err != nil {
			return nil, err
		}
		row.Label = formatLabel("literal-eps", reg)
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationIOBits (AB3) sweeps the DAC/ADC precision for Algorithm 1, in both
// converter-range modes.
func AblationIOBits(cfg Config, m int, bits []int) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	if len(bits) == 0 {
		bits = []int{4, 6, 8, 10, 12}
	}
	var rows []AblationRow
	for _, global := range []bool{false, true} {
		for _, b := range bits {
			b, global := b, global
			row, err := ablationEval(cfg, m, func(seed int64) (func(*lp.Problem) (*core.Result, error), error) {
				s, err := core.NewSolver(core.Options{
					Fabric: core.SingleCrossbarFactory(crossbar.Config{IOBits: b, GlobalIORange: global}),
				})
				if err != nil {
					return nil, err
				}
				return s.Solve, nil
			})
			if err != nil {
				return nil, err
			}
			mode := "per-element"
			if global {
				mode = "global-range"
			}
			row.Label = formatLabel(mode+"/io-bits", float64(b))
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// AblationVariationModel (AB4) compares variation distributions (the paper
// assumes uniform) and cycle-to-cycle write noise at a fixed magnitude.
func AblationVariationModel(cfg Config, m int, magnitude float64) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	if magnitude == 0 {
		magnitude = 0.10
	}
	type variant struct {
		label string
		dist  variation.Distribution
		cycle float64
	}
	variants := []variant{
		{"uniform (paper)", variation.Uniform, 0},
		{"gaussian", variation.Gaussian, 0},
		{"lognormal", variation.Lognormal, 0},
		{"uniform+cycle-noise", variation.Uniform, 0.5},
	}
	var rows []AblationRow
	for _, vt := range variants {
		vt := vt
		row, err := ablationEval(cfg, m, func(seed int64) (func(*lp.Problem) (*core.Result, error), error) {
			vm, err := variation.NewModel(vt.dist, magnitude, seed)
			if err != nil {
				return nil, err
			}
			s, err := core.NewSolver(core.Options{
				Fabric: core.SingleCrossbarFactory(crossbar.Config{Variation: vm, CycleNoise: vt.cycle}),
				Alpha:  1.05 + 2*magnitude,
			})
			if err != nil {
				return nil, err
			}
			return s.Solve, nil
		})
		if err != nil {
			return nil, err
		}
		row.Label = vt.label
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationNoC (AB5) compares the two Fig. 3 interconnects at a fixed tile
// size, reporting accuracy plus the interconnect-inclusive latency.
func AblationNoC(cfg Config, m, tileSize int) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	if tileSize == 0 {
		tileSize = 32
	}
	var rows []AblationRow
	for _, topo := range []noc.Topology{noc.Hierarchical, noc.Mesh} {
		topo := topo
		var fabrics []*noc.TiledFabric
		nocCfg := noc.Config{Topology: topo, TileSize: tileSize}
		row, err := ablationEval(cfg, m, func(seed int64) (func(*lp.Problem) (*core.Result, error), error) {
			s, err := core.NewSolver(core.Options{
				Fabric: func(size int) (core.Fabric, error) {
					c := nocCfg
					needed := (size + c.TileSize - 1) / c.TileSize
					if needed*needed > c.MaxTiles {
						c.MaxTiles = needed * needed
					}
					f, err := noc.New(c)
					if err != nil {
						return nil, err
					}
					fabrics = append(fabrics, f)
					return f, nil
				},
			})
			if err != nil {
				return nil, err
			}
			return s.Solve, nil
		})
		if err != nil {
			return nil, err
		}
		var nocLat time.Duration
		for _, f := range fabrics {
			nocLat += perf.NoCCost(f.Stats(), nocCfg).Latency
		}
		if len(fabrics) > 0 {
			row.Latency += nocLat / time.Duration(len(fabrics))
		}
		row.Label = topo.String()
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationWriteBits (AB6) sweeps the conductance write precision for
// Algorithm 1.
func AblationWriteBits(cfg Config, m int, bits []int) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	if len(bits) == 0 {
		bits = []int{6, 8, 10, 12, 14, 16}
	}
	var rows []AblationRow
	for _, b := range bits {
		b := b
		row, err := ablationEval(cfg, m, func(seed int64) (func(*lp.Problem) (*core.Result, error), error) {
			s, err := core.NewSolver(core.Options{
				Fabric: core.SingleCrossbarFactory(crossbar.Config{WriteBits: b}),
			})
			if err != nil {
				return nil, err
			}
			return s.Solve, nil
		})
		if err != nil {
			return nil, err
		}
		row.Label = formatLabel("write-bits", float64(b))
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationWireResistance (AB7) sweeps the crossbar metal-line resistance
// (IR drop) for Algorithm 1 — a first-order parasitic the paper idealizes
// away. Units are ohms per crossbar segment.
func AblationWireResistance(cfg Config, m int, resistances []float64) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	if len(resistances) == 0 {
		resistances = []float64{0, 0.5, 1, 2, 5}
	}
	var rows []AblationRow
	for _, rw := range resistances {
		rw := rw
		row, err := ablationEval(cfg, m, func(seed int64) (func(*lp.Problem) (*core.Result, error), error) {
			s, err := core.NewSolver(core.Options{
				Fabric: core.SingleCrossbarFactory(crossbar.Config{WireResistance: rw}),
			})
			if err != nil {
				return nil, err
			}
			return s.Solve, nil
		})
		if err != nil {
			return nil, err
		}
		row.Label = formatLabel("wire-ohms", rw)
		rows = append(rows, row)
	}
	return rows, nil
}

func formatLabel(prefix string, v float64) string {
	//memlpvet:ignore floatcmp math.Trunc integrality probe, cosmetic label formatting only
	if v == math.Trunc(v) {
		return fmt.Sprintf("%s=%d", prefix, int(v))
	}
	return fmt.Sprintf("%s=%g", prefix, v)
}
