package experiments

import "testing"

func TestBatchThroughput(t *testing.T) {
	cfg := Config{Sizes: []int{6}, Variations: []float64{0.05}, Trials: 1}
	rows, err := BatchThroughput(cfg, 4, []int{1, 2})
	if err != nil {
		t.Fatalf("BatchThroughput: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for i, r := range rows {
		if r.M != 6 || r.Batch != 4 {
			t.Errorf("row %d: M=%d Batch=%d, want 6/4", i, r.M, r.Batch)
		}
		if r.Wall <= 0 || r.PerSolve <= 0 {
			t.Errorf("row %d: non-positive timings %v / %v", i, r.Wall, r.PerSolve)
		}
		if r.Speedup <= 0 {
			t.Errorf("row %d: speedup %v", i, r.Speedup)
		}
		if r.Optimal < 0 || r.Optimal > 1 {
			t.Errorf("row %d: optimal rate %v outside [0,1]", i, r.Optimal)
		}
	}
	if rows[0].Width != 1 || rows[1].Width != 2 {
		t.Errorf("widths = %d, %d, want 1, 2", rows[0].Width, rows[1].Width)
	}
	if rows[0].Speedup != 1 {
		t.Errorf("width-1 speedup = %v, want 1 (it is the baseline)", rows[0].Speedup)
	}

	if _, err := BatchThroughput(cfg, 2, []int{0}); err == nil {
		t.Error("width 0 accepted")
	}
}
