package experiments

import "testing"

func TestYieldVsFaultDensity(t *testing.T) {
	cfg := Config{Sizes: []int{9}, Trials: 3}
	rows, err := YieldVsFaultDensity(Algorithm1, cfg, []float64{0, 0.02}, 3)
	if err != nil {
		t.Fatalf("YieldVsFaultDensity: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		total := r.FirstTryRate + r.RecoveredRate + r.DegradedRate + r.FailureRate
		if total < 0.999 || total > 1.001 {
			t.Errorf("density %v: outcome fractions sum to %v", r.Density, total)
		}
		if r.Yield != r.FirstTryRate+r.RecoveredRate {
			t.Errorf("density %v: Yield %v inconsistent", r.Density, r.Yield)
		}
		if r.FailureRate > 0 {
			t.Errorf("density %v: %v of trials had no usable answer", r.Density, r.FailureRate)
		}
	}
	clean, faulty := rows[0], rows[1]
	if clean.FirstTryRate != 1 || clean.MeanStuck != 0 {
		t.Errorf("clean fabric: first-try rate %v, stuck %v", clean.FirstTryRate, clean.MeanStuck)
	}
	if faulty.MeanStuck == 0 {
		t.Error("2% density produced no stuck cells in the mapped region")
	}
	if faulty.MeanRetries == 0 {
		t.Error("write-verify retries not recorded under faults")
	}
}

func TestYieldUnknownAlgorithm(t *testing.T) {
	if _, err := YieldVsFaultDensity(Algorithm(7), Config{Sizes: []int{4}, Trials: 1}, []float64{0}, 0); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
