package cone

import (
	"math"
	"math/rand"
	"testing"
)

// randInterior draws a strictly interior cone vector with axis margin in
// [0.2, 1.2).
func randInterior(r *rand.Rand, d int) []float64 {
	s := make([]float64, d)
	for i := 1; i < d; i++ {
		s[i] = r.Float64()*4 - 2
	}
	s[0] = tailNorm(s) + 0.2 + r.Float64()
	return s
}

func approxEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDetDistInterior(t *testing.T) {
	s := []float64{5, 3, 4} // det = 25 − 25 = 0, on the boundary
	if d := Det(s); math.Abs(d) > 1e-12 {
		t.Errorf("boundary det = %v, want 0", d)
	}
	if Interior(s) {
		t.Error("boundary point reported interior")
	}
	in := []float64{5.1, 3, 4}
	if !Interior(in) {
		t.Error("interior point not recognized")
	}
	out := []float64{4.9, 3, 4}
	if Dist(out) <= 0 {
		t.Error("exterior point has non-positive distance")
	}
}

// TestScalingIdentities verifies the defining NT relations on random interior
// pairs: vᵀJv = 1, λ = W·y = W⁻¹·w, P·w + Q·y = 2·λ∘λ (the identity that
// preserves the Eq. 15 crossbar mapping), and P⁻¹·(P·u) = u.
func TestScalingIdentities(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, d := range []int{2, 3, 5, 8} {
		sc := NewScaling(d)
		for trial := 0; trial < 50; trial++ {
			w := randInterior(r, d)
			y := randInterior(r, d)
			if !sc.Update(w, y) {
				t.Fatalf("d=%d trial %d: Update failed on interior pair", d, trial)
			}

			vjv := sc.v[0] * sc.v[0]
			for i := 1; i < d; i++ {
				vjv -= sc.v[i] * sc.v[i]
			}
			if !approxEq(vjv, 1, 1e-9) {
				t.Fatalf("d=%d: vᵀJv = %v, want 1", d, vjv)
			}

			// λ must equal W⁻¹·w as well as W·y (W·y is how Update builds it).
			winvW := make([]float64, d)
			if !sc.SolveP(winvW, mulMat(sc.P, w, d)) {
				t.Fatalf("d=%d: SolveP failed", d)
			}
			// P⁻¹(P·w) = w is the round-trip; W⁻¹·w = λ is checked via P·w = Arw(λ)·λ = λ∘λ.
			for i := 0; i < d; i++ {
				if !approxEq(winvW[i], w[i], 1e-8) {
					t.Fatalf("d=%d: P⁻¹P w mismatch at %d: %v vs %v", d, i, winvW[i], w[i])
				}
			}

			lsq := make([]float64, d)
			sc.LambdaSq(lsq)
			pw := mulMat(sc.P, w, d)
			qy := mulMat(sc.Q, y, d)
			for i := 0; i < d; i++ {
				if !approxEq(pw[i]+qy[i], 2*lsq[i], 1e-8) {
					t.Fatalf("d=%d: (P·w + Q·y)[%d] = %v, want 2λ∘λ = %v",
						d, i, pw[i]+qy[i], 2*lsq[i])
				}
				// P·w = Arw(λ)·W⁻¹·w = Arw(λ)·λ = λ∘λ, separately.
				if !approxEq(pw[i], lsq[i], 1e-8) {
					t.Fatalf("d=%d: (P·w)[%d] = %v, want (λ∘λ)[%d] = %v", d, i, pw[i], i, lsq[i])
				}
			}

			// MulW2 agrees with P⁻¹·Q (the reduced-KKT block identity).
			u := randInterior(r, d)
			qu := mulMat(sc.Q, u, d)
			pinvqu := make([]float64, d)
			if !sc.SolveP(pinvqu, qu) {
				t.Fatalf("d=%d: SolveP failed on Q·u", d)
			}
			w2u := make([]float64, d)
			sc.MulW2(w2u, u)
			dense := mulMat(sc.Wsq, u, d)
			for i := 0; i < d; i++ {
				if !approxEq(w2u[i], pinvqu[i], 1e-7) {
					t.Fatalf("d=%d: W²u[%d] = %v, want P⁻¹Qu = %v", d, i, w2u[i], pinvqu[i])
				}
				if !approxEq(dense[i], w2u[i], 1e-8) {
					t.Fatalf("d=%d: Wsq·u[%d] = %v, want W(W·u) = %v", d, i, dense[i], w2u[i])
				}
			}
		}
	}
}

// TestScalingOrthantDegenerate pins the d→1 limit analytically for d = 2
// with zero tail components: the blocks must degenerate to the LP diagonals
// P = diag-like y, Q = diag-like w on the axis.
func TestScalingOrthantDegenerate(t *testing.T) {
	sc := NewScaling(2)
	w := []float64{3, 0}
	y := []float64{5, 0}
	if !sc.Update(w, y) {
		t.Fatal("Update failed")
	}
	// With zero tails the axis row behaves like the scalar case: P₀₀ = y₀,
	// Q₀₀ = w₀ and the complementarity product is λ₀² = w₀y₀.
	if !approxEq(sc.P[0], y[0], 1e-12) || !approxEq(sc.Q[0], w[0], 1e-12) {
		t.Errorf("axis blocks P₀₀ = %v, Q₀₀ = %v, want %v, %v", sc.P[0], sc.Q[0], y[0], w[0])
	}
	if !approxEq(sc.Lambda[0]*sc.Lambda[0], w[0]*y[0], 1e-12) {
		t.Errorf("λ₀² = %v, want w₀y₀ = %v", sc.Lambda[0]*sc.Lambda[0], w[0]*y[0])
	}
}

func TestScalingRejectsBoundary(t *testing.T) {
	sc := NewScaling(3)
	if sc.Update([]float64{5, 3, 4}, []float64{2, 0, 0}) {
		t.Error("Update accepted a boundary w")
	}
	if sc.Update([]float64{2, 0, 0}, []float64{1, 1, 0}) {
		t.Error("Update accepted a boundary y")
	}
}

func TestStepToBoundary(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, d := range []int{2, 3, 6} {
		for trial := 0; trial < 200; trial++ {
			s := randInterior(r, d)
			ds := make([]float64, d)
			for i := range ds {
				ds[i] = r.Float64()*4 - 2
			}
			tmax := StepToBoundary(s, ds)
			if math.IsInf(tmax, 1) {
				// Ray stays interior: spot-check far along it.
				far := make([]float64, d)
				for i := range far {
					far[i] = s[i] + 1e6*ds[i]
				}
				if Dist(far) > 1e-6*(1+tailNorm(far)) {
					t.Fatalf("d=%d: claimed no exit but point left the cone", d)
				}
				continue
			}
			if tmax <= 0 {
				t.Fatalf("d=%d: non-positive exit step %v from interior start", d, tmax)
			}
			at := make([]float64, d)
			for i := range at {
				at[i] = s[i] + tmax*ds[i]
			}
			if !approxEq(Det(at), 0, 1e-7) {
				t.Fatalf("d=%d: det at exit = %v, want ≈ 0", d, Det(at))
			}
			// Slightly before the exit the point must still be in the cone.
			for i := range at {
				at[i] = s[i] + 0.999*tmax*ds[i]
			}
			if Dist(at) > 1e-9*(1+tailNorm(at)) {
				t.Fatalf("d=%d: point just inside the exit step is outside the cone", d)
			}
		}
	}
}

func TestClampAndInit(t *testing.T) {
	blocks := []Block{{Start: 1, Dim: 3}}
	v := []float64{9, -1, 3, 4} // block (−1, 3, 4): far outside
	ClampInterior(v, blocks, 1e-12)
	if !Interior(v[1:4]) {
		t.Errorf("clamped block %v not interior", v[1:4])
	}
	if v[0] != 9 {
		t.Errorf("clamp touched a component outside the block: %v", v[0])
	}

	InitInterior(v, blocks)
	if v[1] != 1 || v[2] != 0 || v[3] != 0 {
		t.Errorf("InitInterior gave %v, want Jordan identity", v[1:4])
	}

	out := []float64{0, 1, 1, 1}
	if d := MaxDist(out, []Block{{Start: 0, Dim: 4}}); !approxEq(d, math.Sqrt(3), 1e-12) {
		t.Errorf("MaxDist = %v, want √3", d)
	}
	if d := MaxDist([]float64{2, 1, 0, 0}, []Block{{Start: 0, Dim: 4}}); d != 0 {
		t.Errorf("MaxDist of interior block = %v, want 0", d)
	}
}

func TestMaxStepRatio(t *testing.T) {
	blocks := []Block{{Start: 0, Dim: 2}}
	v := []float64{2, 0}
	dv := []float64{-1, 0} // exits the cone (axis hits 0, i.e. boundary) at t = 2
	ratio := MaxStepRatio(v, dv, blocks)
	if !approxEq(ratio, 0.5, 1e-12) {
		t.Errorf("MaxStepRatio = %v, want 0.5", ratio)
	}
	if r := MaxStepRatio(v, []float64{1, 0}, blocks); r != 0 {
		t.Errorf("receding direction gave ratio %v, want 0", r)
	}
}

// mulMat applies a row-major d×d matrix to u.
func mulMat(m, u []float64, d int) []float64 {
	out := make([]float64, d)
	for i := 0; i < d; i++ {
		var s float64
		for j := 0; j < d; j++ {
			s += m[i*d+j] * u[j]
		}
		out[i] = s
	}
	return out
}

// TestHotpathAllocations pins the //memlp:hotpath contract: the per-iteration
// scaling kernels must not allocate.
func TestHotpathAllocations(t *testing.T) {
	d := 6
	sc := NewScaling(d)
	r := rand.New(rand.NewSource(3))
	w := randInterior(r, d)
	y := randInterior(r, d)
	ds := make([]float64, d)
	for i := range ds {
		ds[i] = r.Float64() - 0.5
	}
	dst := make([]float64, d)
	blocks := []Block{{Start: 0, Dim: d}}

	cases := []struct {
		name string
		fn   func()
	}{
		{"Update", func() { sc.Update(w, y) }},
		{"LambdaSq", func() { sc.LambdaSq(dst) }},
		{"MulW2", func() { sc.MulW2(dst, w) }},
		{"SolveP", func() { sc.SolveP(dst, w) }},
		{"StepToBoundary", func() { _ = StepToBoundary(w, ds) }},
		{"MaxStepRatio", func() { _ = MaxStepRatio(w, ds, blocks) }},
		{"ClampInterior", func() { ClampInterior(w, blocks, 1e-12) }},
		{"MaxDist", func() { _ = MaxDist(w, blocks) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(200, tc.fn); allocs != 0 {
			t.Errorf("%s allocates %v times per call, want 0", tc.name, allocs)
		}
	}
}
