package cone

import "math"

// Scaling is the per-block NT scaling workspace. All storage is preallocated
// at construction, so Update and the apply methods are allocation-free on the
// iteration hot path. One Scaling serves one SOC block across all iterations
// of a solve (and across solves of same-shaped problems).
type Scaling struct {
	dim int

	// Lambda is the scaled point λ = W·y = W⁻¹·w.
	Lambda []float64
	// v is the hyperbolic Householder vector with vᵀJv = 1
	// (J = diag(1, −1, …, −1)); W = η(2vvᵀ − J) and
	// W⁻¹ = η⁻¹(2(Jv)(Jv)ᵀ − J).
	v []float64
	// eta is the scaling magnitude η = (det w / det y)^¼.
	eta float64

	// P = Arw(λ)·W⁻¹ and Q = Arw(λ)·W, row-major d×d — the coefficient
	// blocks written into the Newton system (and onto the crossbar).
	P, Q []float64
	// Wsq is W² = P⁻¹Q = η²(2ggᵀ − J), row-major d×d — the Schur block the
	// reduced KKT system carries for cone rows (the conic −Y⁻¹W analogue).
	Wsq []float64

	g, wb, yb, col, tmp []float64
}

// NewScaling returns a scaling workspace for blocks of the given dimension
// (dim ≥ 2).
func NewScaling(dim int) *Scaling {
	return &Scaling{
		dim:    dim,
		Lambda: make([]float64, dim),
		v:      make([]float64, dim),
		P:      make([]float64, dim*dim),
		Q:      make([]float64, dim*dim),
		Wsq:    make([]float64, dim*dim),
		g:      make([]float64, dim),
		wb:     make([]float64, dim),
		yb:     make([]float64, dim),
		col:    make([]float64, dim),
		tmp:    make([]float64, dim),
	}
}

// Dim returns the block dimension.
func (sc *Scaling) Dim() int { return sc.dim }

// Update recomputes the NT scaling for the strictly interior pair (w, y) and
// refreshes λ, v, η, P and Q. It reports false when either block has lost
// interiority (det ≤ 0), in which case the previous contents are stale and
// the caller must treat the iterate as a numerical failure.
//
//memlp:hotpath
func (sc *Scaling) Update(w, y []float64) bool {
	d := sc.dim
	dw, dy := Det(w), Det(y)
	if !(dw > 0) || !(dy > 0) {
		return false
	}
	sw, sy := math.Sqrt(dw), math.Sqrt(dy)
	var dot float64
	for i := 0; i < d; i++ {
		sc.wb[i] = w[i] / sw
		sc.yb[i] = y[i] / sy
		dot += sc.wb[i] * sc.yb[i]
	}
	gamma := math.Sqrt((1 + dot) / 2)
	if !(gamma > 0) {
		return false
	}
	// Scaling-point direction g = (w̄ + Jȳ)/(2γ) with det(g) = 1; the NT
	// matrix is W = Q_g^½ = η(2vvᵀ − J) with v the Jordan square root
	// v = (g + e)/√(2(g₀+1)) (det(v) = 1), since Q_v² = Q_g.
	sc.g[0] = (sc.wb[0] + sc.yb[0]) / (2 * gamma)
	for i := 1; i < d; i++ {
		sc.g[i] = (sc.wb[i] - sc.yb[i]) / (2 * gamma)
	}
	root := math.Sqrt(2 * (sc.g[0] + 1))
	sc.v[0] = (sc.g[0] + 1) / root
	for i := 1; i < d; i++ {
		sc.v[i] = sc.g[i] / root
	}
	sc.eta = math.Sqrt(sw / sy)

	// λ = W·y = η(2v(vᵀy) − Jy).
	var vy float64
	for i := 0; i < d; i++ {
		vy += sc.v[i] * y[i]
	}
	sc.Lambda[0] = sc.eta * (2*sc.v[0]*vy - y[0])
	for i := 1; i < d; i++ {
		sc.Lambda[i] = sc.eta * (2*sc.v[i]*vy + y[i])
	}

	// P and Q column by column: column j of W (resp. W⁻¹) in closed form,
	// then one arrow product. O(d²) total, no allocation.
	for j := 0; j < d; j++ {
		jj := 1.0 // J(j,j)
		jvj := sc.v[j]
		if j > 0 {
			jj = -1
			jvj = -sc.v[j]
		}
		// W⁻¹·e_j = η⁻¹(2(Jv)·(Jv)_j − J·e_j) → P column j.
		sc.col[0] = 2 * sc.v[0] * jvj / sc.eta
		for i := 1; i < d; i++ {
			sc.col[i] = 2 * -sc.v[i] * jvj / sc.eta
		}
		sc.col[j] -= jj / sc.eta
		sc.arwMul(sc.tmp, sc.col)
		for i := 0; i < d; i++ {
			sc.P[i*d+j] = sc.tmp[i]
		}
		// W·e_j = η(2v·v_j − J·e_j) → Q column j.
		for i := 0; i < d; i++ {
			sc.col[i] = 2 * sc.v[i] * sc.v[j] * sc.eta
		}
		sc.col[j] -= jj * sc.eta
		sc.arwMul(sc.tmp, sc.col)
		for i := 0; i < d; i++ {
			sc.Q[i*d+j] = sc.tmp[i]
		}
	}

	// W² = Q_g = η²(2ggᵀ − J) directly from the scaling-point direction.
	eta2 := sc.eta * sc.eta
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			sc.Wsq[i*d+j] = 2 * sc.g[i] * sc.g[j] * eta2
		}
	}
	sc.Wsq[0] -= eta2
	for i := 1; i < d; i++ {
		sc.Wsq[i*d+i] += eta2
	}
	return true
}

// arwMul computes dst = Arw(λ)·u = λ∘u. dst must not alias u.
//
//memlp:hotpath
func (sc *Scaling) arwMul(dst, u []float64) {
	d := sc.dim
	var dot float64
	for i := 0; i < d; i++ {
		dot += sc.Lambda[i] * u[i]
	}
	l0, u0 := sc.Lambda[0], u[0]
	dst[0] = dot
	for i := 1; i < d; i++ {
		dst[i] = l0*u[i] + u0*sc.Lambda[i]
	}
}

// LambdaSq writes λ∘λ into dst (length dim): the current complementarity
// products, playing the role the XZe/YWe diagonals play in the LP system.
//
//memlp:hotpath
func (sc *Scaling) LambdaSq(dst []float64) {
	sc.arwMul(dst, sc.Lambda)
}

// mulW computes dst = W·u = η(2v(vᵀu) − Ju). dst may alias u.
//
//memlp:hotpath
func (sc *Scaling) mulW(dst, u []float64) {
	d := sc.dim
	var vu float64
	for i := 0; i < d; i++ {
		vu += sc.v[i] * u[i]
	}
	u0 := u[0]
	dst[0] = sc.eta * (2*sc.v[0]*vu - u0)
	for i := 1; i < d; i++ {
		dst[i] = sc.eta * (2*sc.v[i]*vu + u[i])
	}
}

// MulW2 computes dst = W²·u, the Schur-complement block −W² the reduced KKT
// system carries for cone rows (the conic analogue of the −Y⁻¹W diagonal:
// P⁻¹Q = W·Arw(λ)⁻¹·Arw(λ)·W = W²). dst may alias u.
//
//memlp:hotpath
func (sc *Scaling) MulW2(dst, u []float64) {
	sc.mulW(sc.tmp, u)
	sc.mulW(dst, sc.tmp)
}

// SolveP computes dst = P⁻¹·u = W·Arw(λ)⁻¹·u, used to eliminate Δw from the
// cone rows of the reduced system. dst must not alias u.
//
//memlp:hotpath
func (sc *Scaling) SolveP(dst, u []float64) bool {
	d := sc.dim
	l0 := sc.Lambda[0]
	det := Det(sc.Lambda)
	if !(det > 0) || !(l0 > 0) {
		return false
	}
	// Arw(λ)⁻¹·u: t₀ = (λ₀u₀ − λ̄ᵀū)/det, t̄ = (ū − λ̄·t₀)/λ₀.
	t0 := (l0*u[0] - tailDot(sc.Lambda, u)) / det
	sc.tmp[0] = t0
	for i := 1; i < d; i++ {
		sc.tmp[i] = (u[i] - sc.Lambda[i]*t0) / l0
	}
	sc.mulW(dst, sc.tmp)
	return true
}
