// Package cone implements the Jordan-algebra and Nesterov–Todd (NT) scaling
// primitives for second-order (Lorentz) cones,
//
//	Q^d = { s ∈ R^d : s₀ ≥ ‖s̄‖₂ },  s = (s₀, s̄),  d ≥ 2,
//
// following the SOCP extension of the crossbar-PDIP framework (Ren et al.,
// arXiv 1802.00824). The package is pure vector math with no dependencies, so
// both the software PDIP baseline and the analog crossbar core can share one
// implementation of the scaling algebra.
//
// The central object is Scaling: for a strictly interior primal/dual block
// pair (w, y) it computes the NT scaling point v, the scaled point
// λ = W·y = W⁻¹·w, and the two dense d×d blocks
//
//	P = Arw(λ)·W⁻¹   (acting on Δw)
//	Q = Arw(λ)·W     (acting on Δy)
//
// that replace the diagonal W/Y complementarity entries of the LP Newton
// system: the linearized complementarity row reads P·Δw + Q·Δy = µe − λ∘λ.
// Because P·w + Q·y = Arw(λ)(λ + λ) = 2·λ∘λ, the row has exactly the Eq. 15
// crossbar shape — base µe, a 0.5 resistive divider on the analog product,
// residual µe − λ∘λ — so the SOCP system maps onto the fabric the same way
// the LP system does (the d = 1 orthant case degenerates to P = y, Q = w,
// the existing diagonal entries).
package cone

import "math"

// interiorMargin is the relative axis headroom ClampInterior restores: a
// clamped block satisfies s₀ ≥ ‖s̄‖·(1+interiorMargin) + floor, keeping
// det(s) strictly positive for the NT scaling even after analog perturbation.
const interiorMargin = 1e-9

// Block locates one second-order cone inside a length-m constraint vector:
// components [Start, Start+Dim) form the block, with the axis first.
type Block struct {
	Start, Dim int
}

// tailNorm returns ‖s̄‖₂, the Euclidean norm of the non-axis components.
//
//memlp:hotpath
func tailNorm(s []float64) float64 {
	var ss float64
	for _, v := range s[1:] {
		ss += v * v
	}
	return math.Sqrt(ss)
}

// tailDot returns s̄ᵀt̄, the dot product of the non-axis components.
//
//memlp:hotpath
func tailDot(s, t []float64) float64 {
	var d float64
	for i := 1; i < len(s); i++ {
		d += s[i] * t[i]
	}
	return d
}

// Det returns the hyperbolic determinant s₀² − ‖s̄‖², computed in factored
// form to avoid cancellation near the boundary.
//
//memlp:hotpath
func Det(s []float64) float64 {
	n := tailNorm(s)
	return (s[0] - n) * (s[0] + n)
}

// Dist returns ‖s̄‖ − s₀: negative strictly inside the cone, zero on the
// boundary, positive outside.
//
//memlp:hotpath
func Dist(s []float64) float64 {
	return tailNorm(s) - s[0]
}

// Interior reports whether s is strictly inside Q^d.
func Interior(s []float64) bool {
	return Dist(s) < 0
}

// InitInterior sets every block of v to the Jordan identity e = (1, 0, …, 0),
// the canonical strictly interior starting point (the all-ones LP start is
// NOT interior for d ≥ 2: ‖1̄‖ = √(d−1) ≥ 1).
func InitInterior(v []float64, blocks []Block) {
	for _, b := range blocks {
		v[b.Start] = 1
		for i := 1; i < b.Dim; i++ {
			v[b.Start+i] = 0
		}
	}
}

// ClampInterior restores strict interiority of each block of v: the axis is
// raised to ‖s̄‖·(1+interiorMargin) + floor when it has fallen below. It is
// the cone analogue of the orthant representability-floor clamp — the damped
// step keeps iterates interior in exact arithmetic, and this guards the NT
// scaling against analog rounding pushing a block onto the boundary.
//
//memlp:hotpath
func ClampInterior(v []float64, blocks []Block, floor float64) {
	for _, b := range blocks {
		s := v[b.Start : b.Start+b.Dim]
		min0 := tailNorm(s)*(1+interiorMargin) + floor
		if s[0] < min0 {
			s[0] = min0
		}
	}
}

// MaxDist returns the largest cone violation max(0, Dist) over the blocks of
// v — the cone-infeasibility measure carried by trace records.
//
//memlp:hotpath
func MaxDist(v []float64, blocks []Block) float64 {
	var mx float64
	for _, b := range blocks {
		if d := Dist(v[b.Start : b.Start+b.Dim]); d > mx {
			mx = d
		}
	}
	return mx
}

// StepToBoundary returns the largest t ≥ 0 such that s + t·ds stays in Q^d
// (math.Inf(1) when the ray never leaves). s must be strictly interior. The
// exit is the smallest positive root of det(s + t·ds) = a·t² + b·t + c: with
// c = det(s) > 0 the axis cannot reach zero before the determinant does, so
// the quadratic alone decides.
//
//memlp:hotpath
func StepToBoundary(s, ds []float64) float64 {
	c := Det(s)
	a := Det(ds)
	b := 2 * (s[0]*ds[0] - tailDot(s, ds))

	const tiny = 1e-300
	if math.Abs(a) < tiny {
		if b < 0 {
			return -c / b
		}
		return math.Inf(1)
	}
	disc := b*b - 4*a*c
	if disc < 0 {
		if a > 0 {
			return math.Inf(1) // opens upward, never touches zero
		}
		disc = 0 // a < 0 with c > 0 must cross; rounding pushed disc below 0
	}
	sq := math.Sqrt(disc)
	var q float64
	if b >= 0 {
		q = -(b + sq) / 2
	} else {
		q = -(b - sq) / 2
	}
	t := math.Inf(1)
	if r := q / a; r > 0 && r < t {
		t = r
	}
	if math.Abs(q) > tiny {
		if r := c / q; r > 0 && r < t {
			t = r
		}
	}
	return t
}

// MaxStepRatio returns the cone analogue of the Eq. 11 ratio test over the
// blocks of (v, dv): the largest 1/θ_exit, where θ_exit is each block's
// StepToBoundary. Merging the result with the componentwise orthant ratio
// (via max) and stepping θ = r/maxRatio keeps every block interior with the
// same damping r the LP path uses. Returns 0 when no block ever exits.
//
//memlp:hotpath
func MaxStepRatio(v, dv []float64, blocks []Block) float64 {
	var mx float64
	for _, b := range blocks {
		t := StepToBoundary(v[b.Start:b.Start+b.Dim], dv[b.Start:b.Start+b.Dim])
		if t > 0 && !math.IsInf(t, 1) {
			if r := 1 / t; r > mx {
				mx = r
			}
		}
	}
	return mx
}
