package crossbar

// This file holds fault-aware programming: stuck-cell pinning, write-verify
// retry loops, retention drift, the post-program fault census, and remapping
// the logical matrix away from defective physical regions. All defect
// placement is keyed to PHYSICAL coordinates (logical index + origin offset),
// so a remap changes which defects the mapped region inherits while the
// defect map itself stays fixed — exactly how a real die behaves.

import (
	"math"

	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/memristor"
)

// faultAt returns the permanent defect of the device backing logical cell
// (i, j) under the current mapping origin.
func (x *Crossbar) faultAt(i, j int) memristor.FaultKind {
	if x.cfg.Faults == nil {
		return memristor.FaultNone
	}
	return x.cfg.Faults.FaultAt(i+x.rowOff, j+x.colOff)
}

// driftEnabled reports whether the fault model includes retention drift.
func (x *Crossbar) driftEnabled() bool {
	return x.cfg.Faults != nil && x.cfg.Faults.DriftPerCycle > 0
}

// driftFactor returns the multiplicative retention decay of cell (i, j):
// (1−d)^age where age is the number of refresh cycles since the cell was last
// programmed. Stuck cells are pinned (cellCycle = +Inf ⇒ age < 0 ⇒ factor 1).
//
//memlp:hotpath
func (x *Crossbar) driftFactor(i, j int) float64 {
	age := x.driftCycle - x.cellCycle.At(i, j)
	if age <= 0 {
		return 1
	}
	return math.Pow(1-x.cfg.Faults.DriftPerCycle, age)
}

// pinFaultCell accounts for a write aimed at a stuck device and records the
// pinned conductance. The controller cannot know the cell is defective ahead
// of time: the initial pulse is issued (and counted) whenever the target
// changed, and with write-verify enabled the verify loop burns its full retry
// budget failing to move the device — the honest energy cost of programming a
// faulty array blind.
//
//memlp:conductance-writer
func (x *Crossbar) pinFaultCell(i, j int, kind memristor.FaultKind, tq float64) {
	pinned := 0.0
	if kind == memristor.FaultStuckOn {
		pinned = x.cfg.Device.GMax()
	}
	if !linalg.Identical(tq, x.progTarget.At(i, j)) {
		x.progTarget.Set(i, j, tq)
		x.counters.CellWrites++
		if x.cfg.MaxWriteRetries > 0 && !x.verifyOK(pinned, tq) {
			x.counters.CellWrites += int64(x.cfg.MaxWriteRetries)
			x.counters.WriteRetries += int64(x.cfg.MaxWriteRetries)
		}
	}
	x.gt.Set(i, j, pinned)
	if x.cellCycle != nil {
		// Pinned devices do not drift.
		x.cellCycle.Set(i, j, math.Inf(1))
	}
}

// verifyOK is the write-verify acceptance test: realized conductance g within
// the relative tolerance of the target. A zero target demands a (selector-
// gated) zero conductance exactly.
func (x *Crossbar) verifyOK(g, tq float64) bool {
	if tq == 0 {
		return g == 0
	}
	return math.Abs(g-tq) <= x.cfg.WriteVerifyTol*tq
}

// realizeWrite returns the conductance a healthy device settles at on write
// attempt n for quantized target tq. Attempt 0 reproduces the open-loop model
// exactly (static variation factor times cycle noise); each verify-driven
// retry halves the residual programming error (error scale 2^−n), the
// standard closed-loop program-and-verify convergence model — which is also
// why verified writes partially compensate STATIC variation, not just noise.
func (x *Crossbar) realizeWrite(i, j int, tq float64, attempt int) float64 {
	if tq == 0 {
		return 0
	}
	shrink := math.Exp2(-float64(attempt))
	g := tq * (1 + (x.deviceFactor.At(i, j)-1)*shrink)
	if x.cfg.Variation != nil && x.cfg.CycleNoise > 0 {
		g *= 1 + x.cfg.CycleNoise*(x.cfg.Variation.Factor()-1)*shrink
	}
	if x.cfg.Faults != nil && x.cfg.Faults.WriteNoise > 0 {
		x.writeSeq++
		g *= 1 + (x.cfg.Faults.WriteFactor(i+x.rowOff, j+x.colOff, x.writeSeq)-1)*shrink
	}
	if g < 0 {
		g = 0
	}
	return g
}

// writeDevice issues the physical write (plus verify retries when enabled)
// for a healthy device and records the realized conductance. Callers have
// already checked the progTarget cache and the fault map.
//
//memlp:conductance-writer
func (x *Crossbar) writeDevice(i, j int, tq float64) {
	x.progTarget.Set(i, j, tq)
	if x.deltaLevel != nil {
		x.deltaLevel[i*x.cols+j] = x.deltaLevelOf(tq)
	}
	x.counters.CellWrites++
	g := x.realizeWrite(i, j, tq, 0)
	if tq > 0 && x.cfg.MaxWriteRetries > 0 && !x.verifyOK(g, tq) {
		// Program-and-verify: read back, pulse again while off-target. If the
		// budget runs out the best attempt stands — the loop never makes a
		// write worse.
		best := g
		for n := 1; n <= x.cfg.MaxWriteRetries; n++ {
			x.counters.CellWrites++
			x.counters.WriteRetries++
			g = x.realizeWrite(i, j, tq, n)
			if math.Abs(g-tq) < math.Abs(best-tq) {
				best = g
			}
			if x.verifyOK(best, tq) {
				break
			}
		}
		g = best
	}
	x.gt.Set(i, j, g)
	if x.cellCycle != nil {
		x.cellCycle.Set(i, j, x.driftCycle)
	}
}

// FaultCensus summarizes the permanent defects inside the currently mapped
// region, as discovered by a post-program read-back sweep.
type FaultCensus struct {
	// StuckOn / StuckOff count defective devices inside the mapped region.
	StuckOn  int
	StuckOff int
	// Mapped is the number of devices in the mapped region.
	Mapped int
}

// Total returns the combined stuck-cell count.
func (c FaultCensus) Total() int { return c.StuckOn + c.StuckOff }

// FaultCensus reads back the mapped region and tallies its stuck cells.
// Without a fault model (or before programming) the census is all zeros.
func (x *Crossbar) FaultCensus() FaultCensus {
	if x.cfg.Faults == nil || x.rows == 0 || x.cols == 0 {
		return FaultCensus{}
	}
	on, off := x.cfg.Faults.CountFaults(x.rowOff, x.colOff, x.rows, x.cols)
	return FaultCensus{StuckOn: on, StuckOff: off, Mapped: x.rows * x.cols}
}

// Origin returns the physical coordinates of the mapped region's top-left
// corner (nonzero after a remap).
func (x *Crossbar) Origin() (row, col int) { return x.rowOff, x.colOff }

// RemapAvoidingFaults searches a bounded set of candidate origins for the
// placement of the current matrix shape with the fewest stuck cells and moves
// the mapping there. It returns true when the origin changed, in which case
// the array is left unprogrammed: the mapping now sits on different physical
// devices, so every cached conductance, variation draw, and verify target is
// stale and the caller must re-Program. Rung 2 of the recovery ladder.
func (x *Crossbar) RemapAvoidingFaults() bool {
	if x.cfg.Faults == nil || x.cfg.Faults.TotalDensity() == 0 || x.rows == 0 || x.cols == 0 {
		return false
	}
	f := x.cfg.Faults
	curOn, curOff := f.CountFaults(x.rowOff, x.colOff, x.rows, x.cols)
	best := curOn + curOff
	if best == 0 {
		return false
	}
	bestR, bestC := x.rowOff, x.colOff
	for _, r := range offsetCandidates(x.rows, x.cfg.Size) {
		for _, c := range offsetCandidates(x.cols, x.cfg.Size) {
			if r == x.rowOff && c == x.colOff {
				continue
			}
			on, off := f.CountFaults(r, c, x.rows, x.cols)
			if n := on + off; n < best {
				best, bestR, bestC = n, r, c
			}
		}
	}
	if bestR == x.rowOff && bestC == x.colOff {
		return false
	}
	x.rowOff, x.colOff = bestR, bestC
	x.target = nil
	x.gt = nil
	x.progTarget = nil
	x.deltaLevel = nil
	x.deviceFactor = nil
	x.cellCycle = nil
	return true
}

// offsetCandidates returns up to 8 evenly spaced origins (always including 0
// and the largest valid offset) for a mapped extent inside the physical size.
// Bounding the candidate set keeps the remap search O(candidates²·cells)
// instead of scanning every placement on a 4096-wide die.
func offsetCandidates(extent, size int) []int {
	maxOff := size - extent
	if maxOff <= 0 {
		return []int{0}
	}
	n := maxOff/extent + 1
	if n > 8 {
		n = 8
	}
	if n < 2 {
		n = 2
	}
	cands := make([]int, 0, n)
	prev := -1
	for k := 0; k < n; k++ {
		off := k * maxOff / (n - 1)
		if off != prev {
			cands = append(cands, off)
			prev = off
		}
	}
	return cands
}
