package crossbar

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/variation"
)

// idealConfig returns a configuration with no variation and high I/O
// precision, so results should match exact linear algebra closely.
func idealConfig(size int) Config {
	return Config{Size: size, IOBits: 16, WriteBits: 16}
}

func mustNew(t *testing.T, cfg Config) *Crossbar {
	t.Helper()
	x, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return x
}

func mustMatrix(t *testing.T, rows [][]float64) *linalg.Matrix {
	t.Helper()
	m, err := linalg.MatrixFromRows(rows)
	if err != nil {
		t.Fatalf("MatrixFromRows: %v", err)
	}
	return m
}

func randomNonNegMatrix(r *rand.Rand, n int) *linalg.Matrix {
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, r.Float64()*4)
		}
		// Diagonal dominance keeps test systems well-conditioned.
		m.Set(i, i, m.At(i, i)+8)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative size", func(c *Config) { c.Size = -1 }},
		{"bad IO bits", func(c *Config) { c.IOBits = 30 }},
		{"bad write bits", func(c *Config) { c.WriteBits = -2 }},
		{"row sum one", func(c *Config) { c.MaxRowSum = 1 }},
		{"row sum negative", func(c *Config) { c.MaxRowSum = -0.5 }},
		{"negative sense", func(c *Config) { c.SenseConductance = -1 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := idealConfig(16)
			tc.mutate(&cfg)
			if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("New = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestDefaultsApplied(t *testing.T) {
	x := mustNew(t, Config{})
	cfg := x.Config()
	if cfg.Size != 4096 || cfg.IOBits != 8 || cfg.WriteBits != 14 || cfg.MaxRowSum != 0.5 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	if cfg.SenseConductance <= 0 {
		t.Error("sense conductance default not positive")
	}
	if x.Size() != 4096 {
		t.Errorf("Size = %d", x.Size())
	}
}

func TestProgramRejections(t *testing.T) {
	x := mustNew(t, idealConfig(4))
	if err := x.Program(linalg.NewMatrix(5, 3)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize: %v, want ErrTooLarge", err)
	}
	neg := mustMatrix(t, [][]float64{{1, -1}, {0, 1}})
	if err := x.Program(neg); !errors.Is(err, ErrNegative) {
		t.Errorf("negative: %v, want ErrNegative", err)
	}
	inf := mustMatrix(t, [][]float64{{1, math.Inf(1)}, {0, 1}})
	if err := x.Program(inf); !errors.Is(err, ErrBadConfig) {
		t.Errorf("non-finite: %v, want ErrBadConfig", err)
	}
}

func TestUnprogrammedOperationsFail(t *testing.T) {
	x := mustNew(t, idealConfig(4))
	if x.Programmed() {
		t.Error("fresh crossbar claims programmed")
	}
	if _, err := x.MatVec(linalg.VectorOf(1)); !errors.Is(err, ErrNotProgrammed) {
		t.Errorf("MatVec: %v, want ErrNotProgrammed", err)
	}
	if _, err := x.Solve(linalg.VectorOf(1)); !errors.Is(err, ErrNotProgrammed) {
		t.Errorf("Solve: %v, want ErrNotProgrammed", err)
	}
	if err := x.UpdateRow(0, linalg.VectorOf(1)); !errors.Is(err, ErrNotProgrammed) {
		t.Errorf("UpdateRow: %v, want ErrNotProgrammed", err)
	}
	if err := x.UpdateCell(0, 0, 1); !errors.Is(err, ErrNotProgrammed) {
		t.Errorf("UpdateCell: %v, want ErrNotProgrammed", err)
	}
}

func TestMatVecMatchesIdeal(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	x := mustNew(t, idealConfig(32))
	a := randomNonNegMatrix(r, 8)
	if err := x.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	v := linalg.NewVector(8)
	for i := range v {
		v[i] = r.Float64()*2 - 1
	}
	got, err := x.MatVec(v)
	if err != nil {
		t.Fatalf("MatVec: %v", err)
	}
	want, err := a.MatVec(v)
	if err != nil {
		t.Fatalf("ideal: %v", err)
	}
	for i := range want {
		if rel := math.Abs(got[i]-want[i]) / (1 + math.Abs(want[i])); rel > 2e-3 {
			t.Errorf("MatVec[%d] = %v, want %v (rel %v)", i, got[i], want[i], rel)
		}
	}
}

func TestSolveMatchesIdeal(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	x := mustNew(t, idealConfig(32))
	a := randomNonNegMatrix(r, 8)
	if err := x.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	b := linalg.NewVector(8)
	for i := range b {
		b[i] = r.Float64()*2 - 1
	}
	got, err := x.Solve(b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want, err := linalg.SolveDense(a, b)
	if err != nil {
		t.Fatalf("ideal: %v", err)
	}
	for i := range want {
		if rel := math.Abs(got[i]-want[i]) / (1 + math.Abs(want[i])); rel > 2e-3 {
			t.Errorf("Solve[%d] = %v, want %v (rel %v)", i, got[i], want[i], rel)
		}
	}
}

func TestSolveRequiresSquare(t *testing.T) {
	x := mustNew(t, idealConfig(8))
	a := linalg.NewMatrix(3, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	a.Set(2, 0, 1)
	if err := x.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	if _, err := x.Solve(linalg.VectorOf(1, 2, 3)); !errors.Is(err, linalg.ErrNotSquare) {
		t.Errorf("Solve: %v, want ErrNotSquare", err)
	}
}

func TestSolveSingularReported(t *testing.T) {
	x := mustNew(t, idealConfig(8))
	// Identical rows map to identical conductance rows (same row sum, same
	// quantization), so the conductance network is exactly singular.
	a := mustMatrix(t, [][]float64{{1, 2}, {1, 2}})
	if err := x.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	_, err := x.Solve(linalg.VectorOf(1, 1))
	if !errors.Is(err, ErrSingular) {
		t.Errorf("Solve singular: %v, want ErrSingular", err)
	}
}

func TestVariationDegradesAccuracyMonotonically(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randomNonNegMatrix(r, 12)
	v := linalg.NewVector(12)
	for i := range v {
		v[i] = r.Float64()*2 - 1
	}
	want, err := a.MatVec(v)
	if err != nil {
		t.Fatalf("ideal: %v", err)
	}

	errAt := func(mag float64) float64 {
		var worst float64
		// Average over several seeds to avoid flaky ordering.
		for seed := int64(0); seed < 8; seed++ {
			var vm *variation.Model
			if mag > 0 {
				m, err := variation.NewPaperModel(mag, seed)
				if err != nil {
					t.Fatalf("NewPaperModel: %v", err)
				}
				vm = m
			}
			cfg := idealConfig(16)
			cfg.Variation = vm
			x := mustNew(t, cfg)
			if err := x.Program(a); err != nil {
				t.Fatalf("Program: %v", err)
			}
			got, err := x.MatVec(v)
			if err != nil {
				t.Fatalf("MatVec: %v", err)
			}
			diff, err := got.Sub(want)
			if err != nil {
				t.Fatalf("Sub: %v", err)
			}
			worst += diff.NormInf() / want.NormInf()
		}
		return worst / 8
	}

	e0, e5, e20 := errAt(0), errAt(0.05), errAt(0.20)
	if e0 > 1e-3 {
		t.Errorf("no-variation error = %v, want ≈0", e0)
	}
	if e5 <= e0 {
		t.Errorf("5%% variation error %v not above baseline %v", e5, e0)
	}
	if e20 <= e5 {
		t.Errorf("20%% variation error %v not above 5%% error %v", e20, e5)
	}
}

func TestUpdateRowChangesResult(t *testing.T) {
	x := mustNew(t, idealConfig(8))
	a := mustMatrix(t, [][]float64{{1, 0}, {0, 1}})
	if err := x.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	if err := x.UpdateRow(0, linalg.VectorOf(0, 1)); err != nil {
		t.Fatalf("UpdateRow: %v", err)
	}
	got, err := x.MatVec(linalg.VectorOf(3, 5))
	if err != nil {
		t.Fatalf("MatVec: %v", err)
	}
	if math.Abs(got[0]-5) > 0.05 || math.Abs(got[1]-5) > 0.05 {
		t.Errorf("after update got %v, want [5 5]", got)
	}
}

func TestUpdateRowValidation(t *testing.T) {
	x := mustNew(t, idealConfig(8))
	a := mustMatrix(t, [][]float64{{1, 0}, {0, 1}})
	if err := x.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	if err := x.UpdateRow(5, linalg.VectorOf(1, 1)); !errors.Is(err, linalg.ErrDimensionMismatch) {
		t.Errorf("bad row index: %v", err)
	}
	if err := x.UpdateRow(0, linalg.VectorOf(1)); !errors.Is(err, linalg.ErrDimensionMismatch) {
		t.Errorf("bad row len: %v", err)
	}
	if err := x.UpdateRow(0, linalg.VectorOf(-1, 0)); !errors.Is(err, ErrNegative) {
		t.Errorf("negative value: %v", err)
	}
	// A much larger row is absorbed by per-row rescaling, not refused.
	if err := x.UpdateRow(0, linalg.VectorOf(100, 100)); err != nil {
		t.Errorf("large row update: %v, want success via per-row rescale", err)
	}
	got, err := x.MatVec(linalg.VectorOf(1, 1))
	if err != nil {
		t.Fatalf("MatVec: %v", err)
	}
	if math.Abs(got[0]-200) > 2 {
		t.Errorf("after rescaled update got %v, want ≈200", got[0])
	}
}

func TestUpdateCell(t *testing.T) {
	x := mustNew(t, idealConfig(8))
	a := mustMatrix(t, [][]float64{{1, 0.5}, {0, 1}})
	if err := x.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	if err := x.UpdateCell(0, 1, 0.25); err != nil {
		t.Fatalf("UpdateCell: %v", err)
	}
	got, err := x.MatVec(linalg.VectorOf(0, 4))
	if err != nil {
		t.Fatalf("MatVec: %v", err)
	}
	if math.Abs(got[0]-1) > 0.02 {
		t.Errorf("after UpdateCell got %v, want [1 ...]", got)
	}
	if err := x.UpdateCell(9, 0, 1); !errors.Is(err, linalg.ErrDimensionMismatch) {
		t.Errorf("bad index: %v", err)
	}
	if err := x.UpdateCell(0, 0, -2); !errors.Is(err, ErrNegative) {
		t.Errorf("negative: %v", err)
	}
}

func TestCountersAccumulate(t *testing.T) {
	x := mustNew(t, idealConfig(8))
	a := mustMatrix(t, [][]float64{{1, 0}, {0, 1}})
	if err := x.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	c := x.Counters()
	// Only cells whose conductance target changes are written: the 2x2
	// identity has two non-zero cells.
	if c.CellWrites != 2 {
		t.Errorf("CellWrites after 2x2 program = %d, want 2", c.CellWrites)
	}
	if _, err := x.MatVec(linalg.VectorOf(1, 1)); err != nil {
		t.Fatalf("MatVec: %v", err)
	}
	if _, err := x.Solve(linalg.VectorOf(1, 1)); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := x.UpdateRow(0, linalg.VectorOf(0.5, 0)); err != nil {
		t.Fatalf("UpdateRow: %v", err)
	}
	c = x.Counters()
	if c.MatVecOps != 1 || c.SolveOps != 1 {
		t.Errorf("ops = %+v, want 1 matvec / 1 solve", c)
	}
	// Scaling a row is absorbed entirely by its digital per-row gain: the
	// conductance targets are unchanged, so no cell is written.
	if c.CellWrites != 2 {
		t.Errorf("CellWrites = %d, want 2 (program only; row rescale is digital)", c.CellWrites)
	}
	if c.IOConversions == 0 {
		t.Error("IOConversions not counted")
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{CellWrites: 1, MatVecOps: 2, SolveOps: 3, IOConversions: 4}
	b := Counters{CellWrites: 10, MatVecOps: 20, SolveOps: 30, IOConversions: 40}
	got := a.Add(b)
	want := Counters{CellWrites: 11, MatVecOps: 22, SolveOps: 33, IOConversions: 44}
	if got != want {
		t.Errorf("Add = %+v, want %+v", got, want)
	}
}

func TestScaleReported(t *testing.T) {
	x := mustNew(t, idealConfig(8))
	a := mustMatrix(t, [][]float64{{3, 1}, {0, 2}})
	if err := x.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	// Required scale: max over rows of (rowsum + maxElem·gs/gmax), divided
	// by the headroom ρ. Row 0: 4 + 3·(gs/gmax); row 1: 2 + 2·(gs/gmax).
	cfg := x.Config()
	ratio := cfg.SenseConductance / cfg.Device.GMax()
	want := (4 + 3*ratio) / cfg.MaxRowSum
	if got := x.Scale(); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Scale = %v, want %v", got, want)
	}
}

func TestZeroMatrixMatVec(t *testing.T) {
	x := mustNew(t, idealConfig(8))
	if err := x.Program(linalg.NewMatrix(3, 3)); err != nil {
		t.Fatalf("Program zero: %v", err)
	}
	got, err := x.MatVec(linalg.VectorOf(1, 2, 3))
	if err != nil {
		t.Fatalf("MatVec: %v", err)
	}
	if got.NormInf() != 0 {
		t.Errorf("zero matrix MatVec = %v, want zeros", got)
	}
}

func TestLowPrecisionIOIntroducesBoundedError(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	a := randomNonNegMatrix(r, 6)
	v := linalg.NewVector(6)
	for i := range v {
		v[i] = r.Float64()*2 - 1
	}
	want, err := a.MatVec(v)
	if err != nil {
		t.Fatalf("ideal: %v", err)
	}
	cfg := idealConfig(8)
	cfg.IOBits = 4 // extremely coarse
	x := mustNew(t, cfg)
	if err := x.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	got, err := x.MatVec(v)
	if err != nil {
		t.Fatalf("MatVec: %v", err)
	}
	diff, err := got.Sub(want)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	rel := diff.NormInf() / want.NormInf()
	if rel == 0 {
		t.Error("4-bit I/O produced exact result; quantization not modeled?")
	}
	if rel > 0.5 {
		t.Errorf("4-bit I/O error %v unreasonably large", rel)
	}
}

func TestEffectiveMatrixCloseToTarget(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	x := mustNew(t, idealConfig(16))
	a := randomNonNegMatrix(r, 6)
	if err := x.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	eff, err := x.EffectiveMatrix()
	if err != nil {
		t.Fatalf("EffectiveMatrix: %v", err)
	}
	if !eff.Equal(a, 0.05) {
		t.Errorf("effective matrix far from target:\n%v\nvs\n%v", eff, a)
	}
	solveEff, err := x.SolveEffectiveMatrix()
	if err != nil {
		t.Fatalf("SolveEffectiveMatrix: %v", err)
	}
	if !solveEff.Equal(a, 0.05) {
		t.Errorf("solve-effective matrix far from target")
	}
}

func TestEffectiveMatrixUnprogrammed(t *testing.T) {
	x := mustNew(t, idealConfig(4))
	if _, err := x.EffectiveMatrix(); !errors.Is(err, ErrNotProgrammed) {
		t.Errorf("EffectiveMatrix: %v", err)
	}
	if _, err := x.SolveEffectiveMatrix(); !errors.Is(err, ErrNotProgrammed) {
		t.Errorf("SolveEffectiveMatrix: %v", err)
	}
}

func TestMatVecResidualMatchesManualSubtraction(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	x := mustNew(t, idealConfig(16))
	a := randomNonNegMatrix(r, 8)
	if err := x.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	v := linalg.NewVector(8)
	base := linalg.NewVector(8)
	for i := range v {
		v[i] = r.Float64()*2 - 1
		base[i] = r.Float64() * 10
	}
	got, err := x.MatVecResidual(base, v, nil)
	if err != nil {
		t.Fatalf("MatVecResidual: %v", err)
	}
	want, err := a.MatVec(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		exact := base[i] - want[i]
		if rel := math.Abs(got[i]-exact) / (1 + math.Abs(exact)); rel > 5e-3 {
			t.Errorf("residual[%d] = %v, want %v", i, got[i], exact)
		}
	}
}

func TestMatVecResidualFactor(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	x := mustNew(t, idealConfig(16))
	a := randomNonNegMatrix(r, 6)
	if err := x.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	v := linalg.NewVector(6)
	v.Fill(1)
	base := linalg.NewVector(6)
	factor := linalg.NewVector(6)
	factor.Fill(0.5)
	got, err := x.MatVecResidual(base, v, factor)
	if err != nil {
		t.Fatalf("MatVecResidual: %v", err)
	}
	want, err := a.MatVec(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		exact := -0.5 * want[i]
		if rel := math.Abs(got[i]-exact) / (1 + math.Abs(exact)); rel > 5e-3 {
			t.Errorf("halved residual[%d] = %v, want %v", i, got[i], exact)
		}
	}
}

func TestMatVecResidualValidation(t *testing.T) {
	x := mustNew(t, idealConfig(8))
	if _, err := x.MatVecResidual(linalg.VectorOf(1), linalg.VectorOf(1), nil); !errors.Is(err, ErrNotProgrammed) {
		t.Errorf("unprogrammed: %v", err)
	}
	a := mustMatrix(t, [][]float64{{1, 0}, {0, 1}})
	if err := x.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	if _, err := x.MatVecResidual(linalg.VectorOf(1, 2), linalg.VectorOf(1), nil); !errors.Is(err, linalg.ErrDimensionMismatch) {
		t.Errorf("bad input len: %v", err)
	}
	if _, err := x.MatVecResidual(linalg.VectorOf(1), linalg.VectorOf(1, 2), nil); !errors.Is(err, linalg.ErrDimensionMismatch) {
		t.Errorf("bad base len: %v", err)
	}
	if _, err := x.MatVecResidual(linalg.VectorOf(1, 2), linalg.VectorOf(1, 2), linalg.VectorOf(1)); !errors.Is(err, linalg.ErrDimensionMismatch) {
		t.Errorf("bad factor len: %v", err)
	}
}
