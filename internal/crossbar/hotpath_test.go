package crossbar

import (
	"math/rand"
	"testing"

	"github.com/memlp/memlp/internal/linalg"
)

// TestAnalogReadAllocations pins the //memlp:hotpath contract at runtime:
// after warm-up, the per-iteration analog read kernels (MatVec, residual
// read, linear solve) run without allocating — all results live in
// crossbar-owned scratch. The memlpvet hotpath analyzer enforces the same
// property at the source level for the annotated leaf kernels.
func TestAnalogReadAllocations(t *testing.T) {
	const n = 16
	r := rand.New(rand.NewSource(7))
	x := mustNew(t, idealConfig(n))
	if err := x.Program(randomNonNegMatrix(r, n)); err != nil {
		t.Fatalf("Program: %v", err)
	}
	v := linalg.NewVector(n)
	base := linalg.NewVector(n)
	for i := range v {
		v[i] = r.Float64()
		base[i] = r.Float64()
	}
	// Warm-up populates the scratch buffers.
	if _, err := x.MatVec(v); err != nil {
		t.Fatalf("MatVec warm-up: %v", err)
	}
	if _, err := x.MatVecResidual(base, v, nil); err != nil {
		t.Fatalf("MatVecResidual warm-up: %v", err)
	}
	if _, err := x.Solve(base); err != nil {
		t.Fatalf("Solve warm-up: %v", err)
	}

	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := x.MatVec(v); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("MatVec allocates %.0f per call after warm-up, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := x.MatVecResidual(base, v, nil); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("MatVecResidual allocates %.0f per call after warm-up, want 0", allocs)
	}
}

// TestSenseRowMatchesMatVec keeps the extracted kernel honest: senseRow must
// reproduce exactly what MatVec computes per row.
func TestSenseRowMatchesMatVec(t *testing.T) {
	const n = 8
	r := rand.New(rand.NewSource(11))
	x := mustNew(t, idealConfig(n))
	if err := x.Program(randomNonNegMatrix(r, n)); err != nil {
		t.Fatalf("Program: %v", err)
	}
	v := linalg.NewVector(n)
	for i := range v {
		v[i] = r.Float64()
	}
	vi, _, err := x.toAnalog(v)
	if err != nil {
		t.Fatalf("toAnalog: %v", err)
	}
	gs := x.cfg.SenseConductance
	for i := 0; i < n; i++ {
		num, sum := x.senseRow(i, vi)
		var wantNum, wantSum float64
		for j, g := range x.gt.RawRow(i) {
			ge := x.effG(i, j, g)
			wantNum += ge * vi[j]
			wantSum += ge
		}
		if !linalg.Identical(num, wantNum) || !linalg.Identical(sum, wantSum) {
			t.Fatalf("senseRow(%d) = (%v, %v), want (%v, %v)", i, num, sum, wantNum, wantSum)
		}
		if wantSum+gs == 0 {
			t.Fatalf("row %d: degenerate total conductance", i)
		}
	}
}
