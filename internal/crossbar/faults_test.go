package crossbar

import (
	"math"
	"math/rand"
	"testing"

	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/memristor"
	"github.com/memlp/memlp/internal/variation"
)

// TestFaultCensusMatchesModel checks the post-program census against the
// model's own tally over the mapped region.
func TestFaultCensusMatchesModel(t *testing.T) {
	fm := &memristor.FaultModel{StuckOnDensity: 0.04, StuckOffDensity: 0.04, Seed: 12}
	cfg := idealConfig(16)
	cfg.Faults = fm
	x := mustNew(t, cfg)

	if c := x.FaultCensus(); c != (FaultCensus{}) {
		t.Errorf("pre-program census = %+v, want zero", c)
	}
	a := randomNonNegMatrix(rand.New(rand.NewSource(1)), 16)
	if err := x.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	on, off := fm.CountFaults(0, 0, 16, 16)
	c := x.FaultCensus()
	if c.StuckOn != on || c.StuckOff != off || c.Mapped != 256 {
		t.Errorf("census = %+v, want on=%d off=%d mapped=256", c, on, off)
	}
	if c.Total() != on+off {
		t.Errorf("Total() = %d, want %d", c.Total(), on+off)
	}
}

// TestStuckCellsPerturbMatVec checks defects actually bite: a heavily
// stuck-off array must lose most of its mat-vec signal.
func TestStuckCellsPerturbMatVec(t *testing.T) {
	cfg := idealConfig(8)
	cfg.Faults = &memristor.FaultModel{StuckOffDensity: 0.9, Seed: 4}
	x := mustNew(t, cfg)
	a := randomNonNegMatrix(rand.New(rand.NewSource(2)), 8)
	if err := x.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	v := linalg.NewVector(8)
	for i := range v {
		v[i] = 1
	}
	got, err := x.MatVec(v)
	if err != nil {
		t.Fatalf("MatVec: %v", err)
	}
	want, err := a.MatVec(v)
	if err != nil {
		t.Fatal(err)
	}
	if got.NormInf() > 0.5*want.NormInf() {
		t.Errorf("90%% stuck-off array kept %v of %v signal — faults not applied",
			got.NormInf(), want.NormInf())
	}
}

// TestWriteVerifyImprovesAccuracy pins the closed-loop programming model:
// with the same variation seed, verified writes land closer to target than
// open-loop writes, and the retry pulses are counted.
func TestWriteVerifyImprovesAccuracy(t *testing.T) {
	matVecErr := func(retries int) (float64, Counters) {
		vm, err := variation.NewPaperModel(0.20, 99)
		if err != nil {
			t.Fatal(err)
		}
		cfg := idealConfig(12)
		cfg.Variation = vm
		cfg.MaxWriteRetries = retries
		x := mustNew(t, cfg)
		a := randomNonNegMatrix(rand.New(rand.NewSource(3)), 12)
		if err := x.Program(a); err != nil {
			t.Fatalf("Program: %v", err)
		}
		v := linalg.NewVector(12)
		for i := range v {
			v[i] = 1
		}
		got, err := x.MatVec(v)
		if err != nil {
			t.Fatalf("MatVec: %v", err)
		}
		want, err := a.MatVec(v)
		if err != nil {
			t.Fatal(err)
		}
		var worst float64
		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > worst {
				worst = d
			}
		}
		return worst / want.NormInf(), x.Counters()
	}

	openErr, openCnt := matVecErr(0)
	verErr, verCnt := matVecErr(4)
	if openCnt.WriteRetries != 0 {
		t.Errorf("open-loop counted %d retries", openCnt.WriteRetries)
	}
	if verCnt.WriteRetries == 0 {
		t.Error("write-verify at 20% variation consumed no retries")
	}
	if verCnt.CellWrites <= openCnt.CellWrites {
		t.Errorf("verified CellWrites %d not above open-loop %d", verCnt.CellWrites, openCnt.CellWrites)
	}
	if verErr >= openErr {
		t.Errorf("verify error %v not below open-loop %v", verErr, openErr)
	}
}

// TestStuckCellBurnsRetryBudget checks the honest energy accounting: the
// controller cannot know a device is dead, so write-verify spends its full
// budget on it.
func TestStuckCellBurnsRetryBudget(t *testing.T) {
	// All cells stuck off: every nonzero target burns 1 + MaxWriteRetries
	// pulses.
	cfg := idealConfig(4)
	cfg.Faults = &memristor.FaultModel{StuckOffDensity: 0.999, Seed: 1}
	cfg.MaxWriteRetries = 3
	x := mustNew(t, cfg)
	a := mustMatrix(t, [][]float64{
		{5, 1, 1, 1},
		{1, 5, 1, 1},
		{1, 1, 5, 1},
		{1, 1, 1, 5},
	})
	if err := x.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	c := x.Counters()
	census := x.FaultCensus()
	if census.StuckOff == 0 {
		t.Fatal("expected stuck cells at density 0.999")
	}
	wantWrites := int64(census.StuckOff) * int64(1+cfg.MaxWriteRetries)
	if c.CellWrites < wantWrites {
		t.Errorf("CellWrites = %d, want ≥ %d (full budget burned per stuck cell)", c.CellWrites, wantWrites)
	}
	if c.WriteRetries < int64(census.StuckOff)*int64(cfg.MaxWriteRetries) {
		t.Errorf("WriteRetries = %d, want ≥ %d", c.WriteRetries, int64(census.StuckOff)*3)
	}
}

// TestRemapAvoidingFaults checks rung 2's physical mechanism: on an
// oversized die the mapping moves to a cleaner region, and the fabric
// demands a re-Program.
func TestRemapAvoidingFaults(t *testing.T) {
	fm := &memristor.FaultModel{StuckOnDensity: 0.02, StuckOffDensity: 0.02, Seed: 21}
	cfg := idealConfig(96)
	cfg.Faults = fm
	x := mustNew(t, cfg)
	a := randomNonNegMatrix(rand.New(rand.NewSource(5)), 8)
	if err := x.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	before := x.FaultCensus()
	if before.Total() == 0 {
		t.Skip("mapped region happens to be defect-free at this seed")
	}
	if !x.RemapAvoidingFaults() {
		t.Fatal("remap declined despite faults and a 96x96 die for an 8x8 matrix")
	}
	r, c := x.Origin()
	if r == 0 && c == 0 {
		t.Error("remap reported movement but origin unchanged")
	}
	if err := x.Program(a); err != nil {
		t.Fatalf("re-Program after remap: %v", err)
	}
	after := x.FaultCensus()
	if after.Total() >= before.Total() {
		t.Errorf("remap did not reduce faults: %d → %d", before.Total(), after.Total())
	}
}

// TestRemapExactFitDeclines: with no spare devices there is nowhere to go.
func TestRemapExactFitDeclines(t *testing.T) {
	fm := &memristor.FaultModel{StuckOffDensity: 0.1, Seed: 3}
	cfg := idealConfig(8)
	cfg.Faults = fm
	x := mustNew(t, cfg)
	a := randomNonNegMatrix(rand.New(rand.NewSource(6)), 8)
	if err := x.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	if x.RemapAvoidingFaults() {
		t.Error("remap claimed to move on an exactly-sized die")
	}
}

// TestDriftDecaysBetweenRefreshes checks retention drift: analog reads decay
// with solve-cycle age, and reprogramming restores them.
func TestDriftDecaysBetweenRefreshes(t *testing.T) {
	cfg := idealConfig(6)
	cfg.Faults = &memristor.FaultModel{DriftPerCycle: 0.05, Seed: 1}
	x := mustNew(t, cfg)
	a := randomNonNegMatrix(rand.New(rand.NewSource(7)), 6)
	if err := x.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	v := linalg.NewVector(6)
	for i := range v {
		v[i] = 1
	}
	freshRead, err := x.MatVec(v)
	if err != nil {
		t.Fatalf("MatVec: %v", err)
	}
	// MatVec returns crossbar-owned scratch — snapshot before the next call.
	fresh := append(linalg.Vector(nil), freshRead...)
	// Age the array: each analog solve is one retention cycle.
	b := linalg.NewVector(6)
	for i := range b {
		b[i] = 1
	}
	for k := 0; k < 10; k++ {
		if _, err := x.Solve(b); err != nil {
			t.Fatalf("Solve %d: %v", k, err)
		}
	}
	agedRead, err := x.MatVec(v)
	if err != nil {
		t.Fatalf("aged MatVec: %v", err)
	}
	aged := append(linalg.Vector(nil), agedRead...)
	if aged.NormInf() >= fresh.NormInf()*0.99 {
		t.Errorf("10 cycles at 5%%/cycle drift left signal at %v of %v", aged.NormInf(), fresh.NormInf())
	}
	// A rewrite refreshes the cells.
	if err := x.Program(a); err != nil {
		t.Fatalf("refresh Program: %v", err)
	}
	refreshed, err := x.MatVec(v)
	if err != nil {
		t.Fatalf("refreshed MatVec: %v", err)
	}
	if math.Abs(refreshed.NormInf()-fresh.NormInf()) > 1e-6*fresh.NormInf() {
		t.Errorf("refresh did not restore signal: %v vs %v", refreshed.NormInf(), fresh.NormInf())
	}
}

// TestFaultConfigValidation covers the new Config fields.
func TestFaultConfigValidation(t *testing.T) {
	cfg := idealConfig(8)
	cfg.Faults = &memristor.FaultModel{StuckOnDensity: -1}
	if _, err := New(cfg); err == nil {
		t.Error("invalid fault model accepted")
	}
	cfg = idealConfig(8)
	cfg.MaxWriteRetries = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative write retries accepted")
	}
	cfg = idealConfig(8)
	cfg.MaxWriteRetries = 2
	cfg.WriteVerifyTol = 1.5
	if _, err := New(cfg); err == nil {
		t.Error("out-of-range verify tolerance accepted")
	}
}
