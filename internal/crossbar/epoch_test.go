package crossbar

import (
	"testing"

	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/memristor"
	"github.com/memlp/memlp/internal/variation"
)

// noisyPair builds two crossbars with independent variation-model clones at
// the same base seed — the fabric pool's replica construction — and programs
// the same matrix into both.
func noisyPair(t *testing.T, cfg Config, a *linalg.Matrix) (*Crossbar, *Crossbar) {
	t.Helper()
	vm, err := variation.NewPaperModel(0.1, 7)
	if err != nil {
		t.Fatalf("NewPaperModel: %v", err)
	}
	build := func() *Crossbar {
		c := cfg
		c.Variation = vm.Clone()
		x, err := New(c)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := x.Program(a); err != nil {
			t.Fatalf("Program: %v", err)
		}
		return x
	}
	return build(), build()
}

func epochTestMatrix() *linalg.Matrix {
	a := linalg.NewMatrix(4, 4)
	vals := [][]float64{
		{2, 0, 1, 0},
		{0, 3, 0, 0.5},
		{1, 0, 4, 0},
		{0, 0.5, 0, 5},
	}
	for i := range vals {
		for j, v := range vals[i] {
			a.Set(i, j, v)
		}
	}
	return a
}

func requireIdenticalMatrices(t *testing.T, got, want *linalg.Matrix, label string) {
	t.Helper()
	for i := 0; i < want.Rows(); i++ {
		for j := 0; j < want.Cols(); j++ {
			if !linalg.Identical(got.At(i, j), want.At(i, j)) {
				t.Fatalf("%s: cell (%d,%d) = %v, want bit-identical %v", label, i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

// TestSetNoiseEpochErasesHistory pins the pool's determinism mechanism: a
// crossbar with an arbitrary write history, once rebased to epoch k, realizes
// the same conductances from a row rewrite as a freshly programmed replica
// rebased to the same epoch — so the batch member's result cannot depend on
// what its shard solved before.
func TestSetNoiseEpochErasesHistory(t *testing.T) {
	a := epochTestMatrix()
	used, fresh := noisyPair(t, Config{Size: 4, CycleNoise: 0.5}, a)

	// Give one replica a divergent history: other epochs, other row writes.
	used.SetNoiseEpoch(0)
	if err := used.UpdateRow(1, linalg.VectorOf(0, 7, 0, 1)); err != nil {
		t.Fatalf("history UpdateRow: %v", err)
	}
	used.SetNoiseEpoch(1)
	if err := used.UpdateRow(2, linalg.VectorOf(2, 0, 6, 0)); err != nil {
		t.Fatalf("history UpdateRow: %v", err)
	}

	// Rebase both to the same epoch and perform the same rewrites.
	row1 := linalg.VectorOf(0, 9, 0, 2)
	row2 := linalg.VectorOf(3, 0, 8, 0)
	for _, x := range []*Crossbar{used, fresh} {
		x.SetNoiseEpoch(5)
		if err := x.UpdateRow(1, row1); err != nil {
			t.Fatalf("UpdateRow: %v", err)
		}
		if err := x.UpdateRow(2, row2); err != nil {
			t.Fatalf("UpdateRow: %v", err)
		}
	}

	eu, err := used.EffectiveMatrix()
	if err != nil {
		t.Fatalf("EffectiveMatrix: %v", err)
	}
	ef, err := fresh.EffectiveMatrix()
	if err != nil {
		t.Fatalf("EffectiveMatrix: %v", err)
	}
	requireIdenticalMatrices(t, eu, ef, "used vs fresh replica after shared epoch")
}

// TestSetNoiseEpochReproducible checks the same epoch always yields the same
// draws on one array: rebase, rewrite, snapshot; diverge; rebase to the same
// epoch, rewrite identically — the realized conductances must repeat.
func TestSetNoiseEpochReproducible(t *testing.T) {
	a := epochTestMatrix()
	x, _ := noisyPair(t, Config{Size: 4, CycleNoise: 0.5}, a)

	row := linalg.VectorOf(0, 9, 0, 2)
	x.SetNoiseEpoch(3)
	if err := x.UpdateRow(1, row); err != nil {
		t.Fatalf("UpdateRow: %v", err)
	}
	first, err := x.EffectiveMatrix()
	if err != nil {
		t.Fatalf("EffectiveMatrix: %v", err)
	}
	firstCopy := first.Clone()

	// Diverge, then replay the epoch.
	x.SetNoiseEpoch(9)
	if err := x.UpdateRow(1, linalg.VectorOf(0, 4, 0, 1)); err != nil {
		t.Fatalf("UpdateRow: %v", err)
	}
	x.SetNoiseEpoch(3)
	if err := x.UpdateRow(1, row); err != nil {
		t.Fatalf("UpdateRow: %v", err)
	}
	second, err := x.EffectiveMatrix()
	if err != nil {
		t.Fatalf("EffectiveMatrix: %v", err)
	}
	requireIdenticalMatrices(t, second, firstCopy, "replayed epoch")
}

// TestSetNoiseEpochCoversWriteNoiseFaults extends the history-erasure check
// to the fault model's write-noise path (writeSeq-hashed noise rather than
// the variation RNG stream).
func TestSetNoiseEpochCoversWriteNoiseFaults(t *testing.T) {
	a := epochTestMatrix()
	fm := &memristor.FaultModel{WriteNoise: 0.05, Seed: 3}
	build := func() *Crossbar {
		x, err := New(Config{Size: 4, Faults: fm})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := x.Program(a); err != nil {
			t.Fatalf("Program: %v", err)
		}
		return x
	}
	used, fresh := build(), build()
	used.SetNoiseEpoch(0)
	if err := used.UpdateRow(0, linalg.VectorOf(5, 0, 2, 0)); err != nil {
		t.Fatalf("history UpdateRow: %v", err)
	}

	row := linalg.VectorOf(7, 0, 3, 0)
	for _, x := range []*Crossbar{used, fresh} {
		x.SetNoiseEpoch(2)
		if err := x.UpdateRow(0, row); err != nil {
			t.Fatalf("UpdateRow: %v", err)
		}
	}
	eu, err := used.EffectiveMatrix()
	if err != nil {
		t.Fatal(err)
	}
	ef, err := fresh.EffectiveMatrix()
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalMatrices(t, eu, ef, "write-noise epoch rebase")
}

// TestSetNoiseEpochNoiseFreeNoop checks a deterministic crossbar (no
// variation, no fault noise) is unaffected: same effective matrix before and
// after an epoch change.
func TestSetNoiseEpochNoiseFreeNoop(t *testing.T) {
	a := epochTestMatrix()
	x, err := New(Config{Size: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := x.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	before, err := x.EffectiveMatrix()
	if err != nil {
		t.Fatal(err)
	}
	beforeCopy := before.Clone()
	x.SetNoiseEpoch(4)
	after, err := x.EffectiveMatrix()
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalMatrices(t, after, beforeCopy, "noise-free epoch change")
}
