package crossbar

// This file implements per-problem noise epochs, the determinism contract of
// the fabric pool (DESIGN.md D12). A batch replicated across P shard fabrics
// must produce bit-identical results regardless of P and of which shard runs
// which problem. Static state is already shard-independent — every replica is
// programmed from a clone of the variation model at its base seed, so the
// per-device geometry factors and the initially realized conductances match
// cell for cell. What is NOT shard-independent is the history-dependent
// stochastic state: the cycle-to-cycle noise stream position, the fault
// model's write-attempt sequence number, the program-and-verify skip cache
// (which decides whether a write draws noise at all), and the retention-drift
// clock. SetNoiseEpoch rebases all four to a pure function of
// (base seed, epoch), erasing whatever history the shard accumulated.

import "math"

// epochSeqShift positions each epoch's write-sequence numbers in a disjoint
// 2³²-wide band, so the fault model's per-attempt noise hash can never
// collide across problems (no realistic solve issues 4×10⁹ writes).
const epochSeqShift = 32

// SetNoiseEpoch rebases every stochastic write-noise source of the array to
// a deterministic per-epoch stream, making all subsequent draws a function of
// (base seed, epoch) alone:
//
//   - the variation model is reseeded to its epoch-derived stream (covers
//     cycle-to-cycle write noise and any later full re-Program);
//   - the fault model's write-sequence counter jumps to the epoch's band;
//   - previously written program-and-verify targets are invalidated, so the
//     next rewrite of a row cannot skip cells (a skip would silently retain a
//     PREVIOUS epoch's noise draw) — untouched cells keep their realized
//     conductance, which is canonical because it predates any epoch;
//   - the retention-drift clock rewinds to zero, un-ageing every cell except
//     the +Inf-pinned stuck ones.
//
// Callers then rewrite exactly the rows their algorithm refreshes (the
// complementarity rows, for Algorithm 1); rewritten rows draw their noise
// from the epoch stream in cell order, which is how a pooled batch member
// realizes the same conductances on a fresh replica as on a heavily reused
// one. Without stochastic noise sources the call leaves the write path
// untouched (writes are already deterministic functions of the target and the
// static device factors).
//
//memlp:conductance-writer
func (x *Crossbar) SetNoiseEpoch(epoch int64) {
	if x.cfg.Variation != nil {
		x.cfg.Variation.ReseedEpoch(epoch)
	}
	if x.cfg.Faults != nil && x.cfg.Faults.WriteNoise > 0 {
		x.writeSeq = int(epoch) << epochSeqShift
	}
	if x.stochasticWrites() && x.progTarget != nil {
		// Invalidate — don't zero — the verify cache: NaN compares unequal to
		// every real target, so the next rewrite of a row writes ALL its
		// cells, zero targets included. That preserves the progTarget==0 ⇒
		// gt==0 invariant the zero-skip in writeRow relies on, and makes the
		// rewrite's noise-draw sequence identical to a fresh replica's (only
		// non-zero targets draw). Cells that already read zero are left
		// cached: they hold no conductance and no noise history.
		for i := 0; i < x.progTarget.Rows(); i++ {
			row := x.progTarget.RawRow(i)
			for j, v := range row {
				if v != 0 {
					row[j] = math.NaN()
				}
			}
		}
	}
	// The delta-programming level cache is invalidated UNCONDITIONALLY, not
	// just under stochastic writes: a delta skip retains a stale conductance
	// (not merely a stale noise draw), so a level recorded before the epoch
	// boundary would let one problem's final trajectory leak into the next
	// problem's realized conductances — shard-history-dependent, breaking the
	// pool's bit-identity across widths. Within an epoch, skips depend only on
	// levels written since the rebase: a pure function of (matrix, rhs, epoch).
	x.invalidateDeltaLevels()
	if x.driftEnabled() && x.cellCycle != nil {
		x.driftCycle = 0
		for i := 0; i < x.cellCycle.Rows(); i++ {
			row := x.cellCycle.RawRow(i)
			for j, v := range row {
				if !math.IsInf(v, 1) {
					row[j] = 0
				}
			}
		}
	}
}

// stochasticWrites reports whether device writes draw from a random stream
// (cycle-to-cycle noise or fault-model write noise). Without either, realized
// conductances are pure functions of target and static device factor, and the
// program-and-verify skip cache cannot leak history.
func (x *Crossbar) stochasticWrites() bool {
	return (x.cfg.Variation != nil && x.cfg.CycleNoise > 0) ||
		(x.cfg.Faults != nil && x.cfg.Faults.WriteNoise > 0)
}
