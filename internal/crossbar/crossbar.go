// Package crossbar simulates a memristor crossbar array performing analog
// matrix–vector multiplication and linear-system solving, as described in
// §2.3 and §3 of the paper.
//
// # Physics
//
// An R×C crossbar has a memristor at every wordline/bitline crossing and a
// sense resistor (conductance gs) on every bitline. Writing to the array uses
// the Vdd/2 half-select scheme (§3.3); reading drives sub-threshold voltages
// so device states are undisturbed.
//
// For multiplication, input voltages VI on the wordlines produce output
// voltages VO = C·VI where the connection matrix is C = D·Gᵀ with
// dᵢ = 1/(gs + Σₖ g₍ₖ,ᵢ₎) (Eq. 5). For solving, voltages VO forced at the
// bitline sense resistors make the wordline voltages settle to the solution
// of Gᵀ·VI = gs·VO.
//
// # Mapping
//
// Because C₍ᵢ,ⱼ₎ = g₍ⱼ,ᵢ₎/(gs + Sᵢ) with Sᵢ = Σⱼ g₍ⱼ,ᵢ₎, a target row with sum
// Rᵢ < 1 maps exactly via g₍ⱼ,ᵢ₎ = C₍ᵢ,ⱼ₎·gs/(1−Rᵢ). The crossbar scales the
// user's (non-negative) matrix by a single digital factor so that row sums and
// conductance bounds hold; the factor is reported so the digital domain can
// rescale results, exactly as the paper's gs/gmax rescale does.
//
// # Non-idealities
//
// Every physical write draws a fresh multiplicative process-variation factor
// (Eq. 18), conductances are quantized to the write precision, zero matrix
// entries are represented by selector-gated (zero-conductance) cells, and all
// voltage inputs/outputs pass through finite-precision DAC/ADC stages (§4.1:
// 8-bit).
package crossbar

import (
	"errors"
	"fmt"
	"math"

	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/memristor"
	"github.com/memlp/memlp/internal/quant"
	"github.com/memlp/memlp/internal/variation"
)

// Errors returned by crossbar operations.
var (
	ErrTooLarge      = errors.New("crossbar: matrix exceeds array size")
	ErrNegative      = errors.New("crossbar: matrix has negative elements")
	ErrNotProgrammed = errors.New("crossbar: array not programmed")
	ErrSingular      = errors.New("crossbar: analog solve failed (singular conductance network)")
	ErrBadConfig     = errors.New("crossbar: invalid configuration")
)

// Config parameterizes a crossbar array.
type Config struct {
	// Size is the physical array dimension (Size×Size devices).
	// Zero means 4096.
	Size int
	// Device holds the memristor technology parameters.
	// The zero value means memristor.DefaultParams().
	Device memristor.DeviceParams
	// SenseConductance is gs in siemens. Zero means 100·GMax, which keeps
	// the bitline sense node stiff relative to the array.
	SenseConductance float64
	// IOBits is the DAC/ADC precision for voltages. Zero means 8 (§4.1).
	IOBits int
	// GlobalIORange, when true, quantizes whole vectors against a single
	// shared full-scale range (one PGA per array). The default (false)
	// models a per-line programmable-gain stage in front of each DAC/ADC,
	// so each element is quantized at IOBits of its own magnitude —
	// standard practice in crossbar accelerator designs. AB3 sweeps both.
	GlobalIORange bool
	// WriteBits is the conductance write precision. Zero means 14
	// (program-and-verify multilevel writes reach finer granularity than
	// the 8-bit voltage I/O path; AB6 in DESIGN.md sweeps this).
	WriteBits int
	// DeltaWriteBits enables delta-programming of per-iteration refreshes:
	// every write target is binned onto a 2^DeltaWriteBits-level log-spaced
	// conductance grid, and a refresh whose level is unchanged since the
	// cell's last epoch-compatible write is skipped entirely — the stale
	// realized conductance (old noise draw included) is already within the
	// voltage I/O precision of the new target, so the analog result is
	// unaffected at the ADC. Zero (the default) disables delta-programming:
	// every changed WriteBits-grid target is physically written. The façade
	// opts crossbar engines in at 8 bits (matching the §4.1 I/O precision);
	// the core toggles it off per solve for conic problems via
	// SetDeltaProgramming.
	DeltaWriteBits int
	// Variation is the process-variation model; nil disables variation.
	// Each device draws one static factor from it when the array is first
	// programmed (geometry variation dominates, Eq. 18 is a static matrix
	// perturbation); CycleNoise adds per-write stochasticity on top.
	Variation *variation.Model
	// CycleNoise is the magnitude of the cycle-to-cycle write noise as a
	// fraction of the static variation magnitude (0 disables; the AB4
	// ablation sweeps it). Requires Variation.
	CycleNoise float64
	// MaxRowSum is the mapping headroom ρ: the programmed connection matrix
	// keeps every row sum ≤ ρ < 1. Zero means 0.5, leaving headroom for
	// in-place coefficient updates that grow a row.
	MaxRowSum float64
	// WireResistance is the metal line resistance per crossbar segment in
	// ohms (IR drop). Each cell's conductance is attenuated by the series
	// word-line and bit-line wire on its current path:
	// g_eff = g / (1 + g·Rw·(dist_wl + dist_bl)). Zero disables the effect
	// (the paper's idealization); the AB7 ablation sweeps it.
	WireResistance float64
	// Faults models permanent device defects (stuck-at-ON/OFF cells, extra
	// programming noise, retention drift); nil disables faults. Placement is
	// deterministic per the model's seed over PHYSICAL coordinates, so
	// remapping the programmed region moves it relative to the defects.
	Faults *memristor.FaultModel
	// MaxWriteRetries enables write-verify programming: after each cell
	// write the controller reads the realized conductance back and, while it
	// is off-target by more than WriteVerifyTol, issues up to this many
	// corrective pulses (each halving the residual programming error — the
	// standard closed-loop program-and-verify convergence model). Zero
	// disables verification (every write is open-loop, as the paper assumes).
	MaxWriteRetries int
	// WriteVerifyTol is the relative conductance tolerance the verify loop
	// accepts. Zero means 0.01 (1%). Only used with MaxWriteRetries > 0.
	WriteVerifyTol float64
}

func (c Config) withDefaults() Config {
	if c.Size == 0 {
		c.Size = 4096
	}
	if c.Device == (memristor.DeviceParams{}) {
		c.Device = memristor.DefaultParams()
	}
	if c.SenseConductance == 0 {
		c.SenseConductance = 100 * c.Device.GMax()
	}
	if c.IOBits == 0 {
		c.IOBits = 8
	}
	if c.WriteBits == 0 {
		c.WriteBits = 14
	}
	if c.MaxRowSum == 0 {
		c.MaxRowSum = 0.5
	}
	if c.MaxWriteRetries > 0 && c.WriteVerifyTol == 0 {
		c.WriteVerifyTol = 0.01
	}
	return c
}

func (c Config) validate() error {
	if c.Size < 1 {
		return fmt.Errorf("%w: size %d", ErrBadConfig, c.Size)
	}
	if err := c.Device.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if !(c.SenseConductance > 0) {
		return fmt.Errorf("%w: sense conductance %v", ErrBadConfig, c.SenseConductance)
	}
	if c.IOBits < 1 || c.IOBits > 24 {
		return fmt.Errorf("%w: IO bits %d", ErrBadConfig, c.IOBits)
	}
	if c.WriteBits < 1 || c.WriteBits > 24 {
		return fmt.Errorf("%w: write bits %d", ErrBadConfig, c.WriteBits)
	}
	if c.DeltaWriteBits != 0 && (c.DeltaWriteBits < 2 || c.DeltaWriteBits > 24) {
		return fmt.Errorf("%w: delta write bits %d", ErrBadConfig, c.DeltaWriteBits)
	}
	if !(c.MaxRowSum > 0 && c.MaxRowSum < 1) {
		return fmt.Errorf("%w: max row sum %v", ErrBadConfig, c.MaxRowSum)
	}
	if c.CycleNoise < 0 || c.CycleNoise > 1 {
		return fmt.Errorf("%w: cycle noise %v outside [0,1]", ErrBadConfig, c.CycleNoise)
	}
	if c.WireResistance < 0 {
		return fmt.Errorf("%w: wire resistance %v", ErrBadConfig, c.WireResistance)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
	}
	if c.MaxWriteRetries < 0 {
		return fmt.Errorf("%w: max write retries %d", ErrBadConfig, c.MaxWriteRetries)
	}
	if c.WriteVerifyTol < 0 || c.WriteVerifyTol >= 1 {
		return fmt.Errorf("%w: write verify tolerance %v", ErrBadConfig, c.WriteVerifyTol)
	}
	return nil
}

// Counters accumulates the operation counts the performance estimator
// consumes. Counts are cumulative since construction.
type Counters struct {
	// CellWrites is the number of device programming operations, including
	// write-verify corrective pulses.
	CellWrites int64
	// WriteRetries is the number of corrective pulses issued by the
	// write-verify loop (a subset of CellWrites; zero without verification).
	WriteRetries int64
	// CellSkips is the number of physical writes avoided by
	// delta-programming: refreshes whose WriteBits-grid target changed but
	// whose DeltaWriteBits level did not (the pre-delta controller would
	// have pulsed the device). Zero when delta-programming is disabled.
	CellSkips int64
	// MatVecOps is the number of analog multiply operations.
	MatVecOps int64
	// SolveOps is the number of analog linear-system solves.
	SolveOps int64
	// IOConversions is the number of DAC/ADC element conversions.
	IOConversions int64
}

// Add returns the element-wise sum of two counter sets.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		CellWrites:    c.CellWrites + o.CellWrites,
		WriteRetries:  c.WriteRetries + o.WriteRetries,
		CellSkips:     c.CellSkips + o.CellSkips,
		MatVecOps:     c.MatVecOps + o.MatVecOps,
		SolveOps:      c.SolveOps + o.SolveOps,
		IOConversions: c.IOConversions + o.IOConversions,
	}
}

// Sub returns the element-wise difference c − o. It marginalizes cumulative
// counters: snapshotting before a solve and subtracting afterwards yields the
// counts attributable to that solve alone, which is how persistent Solver
// handles report per-solve hardware cost.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		CellWrites:    c.CellWrites - o.CellWrites,
		WriteRetries:  c.WriteRetries - o.WriteRetries,
		CellSkips:     c.CellSkips - o.CellSkips,
		MatVecOps:     c.MatVecOps - o.MatVecOps,
		SolveOps:      c.SolveOps - o.SolveOps,
		IOConversions: c.IOConversions - o.IOConversions,
	}
}

// Crossbar is one simulated memristor array programmed with a non-negative
// matrix. It is not safe for concurrent use.
type Crossbar struct {
	cfg Config

	rows, cols int
	// target is the ideal connection matrix C (each user row divided by its
	// row scale); gt is the physically realized Gᵀ in siemens, including
	// write quantization and per-write variation. gt rows index outputs
	// (the same index as target rows), columns index inputs. rowScale[i] is
	// the per-row digital gain: userRow_i = rowScale[i] · C_i (per-row ADC
	// gain/reference, as in the paper's per-row D normalization of Eq. 5).
	target   *linalg.Matrix
	gt       *linalg.Matrix
	rowScale []float64
	// deviceFactor holds each cell's static process-variation factor, drawn
	// once at Program time.
	deviceFactor *linalg.Matrix
	// progTarget caches each cell's last programmed (quantized, pre-noise)
	// conductance target: a write pulse is only issued — and only counted —
	// when the target actually changes.
	progTarget *linalg.Matrix
	// deltaQ bins conductance targets onto the DeltaWriteBits log-spaced
	// level grid for delta-programming (nil when disabled); deltaLevel
	// caches each cell's last written level index (row-major, deltaInvalid
	// when the cell has not been written since the last epoch rebase).
	deltaQ     *quant.Quantizer
	deltaLevel []int64
	// deltaOff suppresses delta-programming for the current workload even
	// when cfg.DeltaWriteBits enables it; see SetDeltaProgramming.
	deltaOff bool
	// rowOff/colOff place the logical matrix inside the physical array.
	// Nonzero after RemapAvoidingFaults moved the mapping off defective rows;
	// fault placement is keyed to PHYSICAL coordinates, so the offset decides
	// which defects the mapped region inherits.
	rowOff, colOff int
	// writeSeq numbers write attempts for the fault model's deterministic
	// per-attempt programming noise.
	writeSeq int
	// driftCycle counts refresh cycles (one per analog settle) for the
	// retention-drift model; cellCycle records the cycle each cell was last
	// programmed in. Both unused unless the fault model enables drift.
	driftCycle float64
	cellCycle  *linalg.Matrix

	counters Counters

	// Per-method scratch buffers so steady-state operation allocates
	// nothing: result vectors are crossbar-owned storage, valid until the
	// next call of the SAME method on this array. Buffers are never shared
	// across methods: MatVecResidual's result is routinely fed straight into
	// Solve, so the two must not overwrite each other's storage.
	analogIn linalg.Vector              // toAnalog normalized input
	mvVO     linalg.Vector              // MatVec analog outputs
	mvOut    linalg.Vector              // MatVec returned result
	resVI    linalg.Vector              // MatVecResidual quantized input
	resOut   linalg.Vector              // MatVecResidual returned result
	solveNet *linalg.Matrix             // Solve IR-drop-adjusted network view
	solveVO  linalg.Vector              // Solve forced bitline voltages
	solveOut linalg.Vector              // Solve returned result
	solveWS  linalg.StructuredWorkspace // Solve network settle scratch
}

// scratchVec returns *buf resized to n, allocating only on growth.
func scratchVec(buf *linalg.Vector, n int) linalg.Vector {
	if cap(*buf) < n {
		*buf = make(linalg.Vector, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// New returns an unprogrammed crossbar.
func New(cfg Config) (*Crossbar, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	x := &Crossbar{cfg: cfg}
	if cfg.DeltaWriteBits > 0 {
		// The level grid quantizes the binary MANTISSA of the conductance at
		// DeltaWriteBits−1 bits and keeps the exponent exact — constant
		// RELATIVE resolution of 2^−(DeltaWriteBits−1) across the device's
		// dynamic range, the same structure as quantizeG's per-decade grid.
		q, err := quant.New(cfg.DeltaWriteBits-1, 0.5, 1.0)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		x.deltaQ = q
	}
	return x, nil
}

// deltaInvalid marks a cell with no epoch-compatible delta level on record:
// its next changed target is always physically written. Real levels are
// strictly positive (the exponent bias keeps the packed index above zero) and
// zero targets map to level 0, so the sentinel can never collide.
const deltaInvalid = int64(-1)

// deltaExpBias shifts binary exponents non-negative before packing them with
// the mantissa index; 1100 clears the float64 exponent range (≥ −1074).
const deltaExpBias = 1100

// deltaLevelOf bins a quantized conductance target onto the delta-programming
// level grid: the mantissa's quant index packed with the (biased) binary
// exponent. Zero (selector-gated) targets get a dedicated level so a cell can
// never skip a transition between conducting and gated-off.
//
//memlp:hotpath
func (x *Crossbar) deltaLevelOf(tq float64) int64 {
	if tq == 0 {
		return 0
	}
	frac, exp := math.Frexp(tq) // tq = frac·2^exp, frac ∈ [0.5, 1)
	return int64(exp+deltaExpBias)*int64(x.deltaQ.Levels()) + int64(x.deltaQ.Index(frac)) + 1
}

// invalidateDeltaLevels erases the delta-programming level cache, forcing the
// next changed target of every cell to issue a physical write.
func (x *Crossbar) invalidateDeltaLevels() {
	for k := range x.deltaLevel {
		x.deltaLevel[k] = deltaInvalid
	}
}

// SetDeltaProgramming enables or disables delta-programming for the workload
// that follows, without rebuilding the array or touching its configuration.
// The core solver turns delta off per solve for conic problems: the dense
// Nesterov–Todd scaling blocks couple cells structurally, so a per-cell stale
// conductance breaks the W² consistency the SOC residual relies on, while the
// scalar complementarity rows of an orthant LP tolerate it within the I/O
// precision. Disabling drops the level cache immediately; re-enabling takes
// effect at the next Program (which allocates and invalidates the cache).
// A no-op when the config disables delta-programming outright.
func (x *Crossbar) SetDeltaProgramming(on bool) {
	x.deltaOff = !on
	if !on {
		x.deltaLevel = nil
	}
}

// quantizeG models program-and-verify write precision: the verify loop
// achieves a RELATIVE conductance tolerance (±2^−WriteBits of the target),
// so targets are snapped to a per-decade mantissa grid rather than a single
// uniform grid across [gmin, gmax] — a uniform grid would destroy small
// coefficients sharing a row with large ones. Targets below the device's
// minimum conductance floor at gmin; above gmax they saturate.
//
//memlp:hotpath
func (x *Crossbar) quantizeG(g float64) float64 {
	gmin, gmax := x.cfg.Device.GMin(), x.cfg.Device.GMax()
	if g <= gmin {
		return gmin
	}
	if g >= gmax {
		return gmax
	}
	step := math.Exp2(-float64(x.cfg.WriteBits - 1))
	scale := math.Exp2(math.Ceil(math.Log2(g))) * step
	return math.Round(g/scale) * scale
}

// Config returns the (defaulted) configuration.
func (x *Crossbar) Config() Config { return x.cfg }

// Size returns the physical array dimension.
func (x *Crossbar) Size() int { return x.cfg.Size }

// Counters returns the cumulative operation counts.
func (x *Crossbar) Counters() Counters { return x.counters }

// Scale returns the largest per-row digital scaling factor chosen at Program
// time: userRow_i = RowScale(i) · C_i where C is the programmed connection
// matrix.
func (x *Crossbar) Scale() float64 {
	var mx float64
	for _, s := range x.rowScale {
		if s > mx {
			mx = s
		}
	}
	return mx
}

// RowScale returns row i's digital gain.
func (x *Crossbar) RowScale(i int) float64 { return x.rowScale[i] }

// Programmed reports whether the array currently holds a matrix.
func (x *Crossbar) Programmed() bool { return x.target != nil }

// Program writes matrix a (non-negative, at most Size×Size) into the array.
// Every cell of the mapped region is physically written: the call costs
// rows·cols cell writes.
//
//memlp:conductance-writer
func (x *Crossbar) Program(a *linalg.Matrix) error {
	if a.Rows()+x.rowOff > x.cfg.Size || a.Cols()+x.colOff > x.cfg.Size {
		return fmt.Errorf("%w: %dx%d at offset (%d,%d) into %d", ErrTooLarge, a.Rows(), a.Cols(), x.rowOff, x.colOff, x.cfg.Size)
	}
	if !a.AllNonNegative() {
		return ErrNegative
	}
	if !a.AllFinite() {
		return fmt.Errorf("%w: matrix has non-finite elements", ErrBadConfig)
	}

	sameShape := x.target != nil && x.rows == a.Rows() && x.cols == a.Cols()
	x.rows, x.cols = a.Rows(), a.Cols()
	if sameShape {
		// Reuse the mapping buffers, but clear both the realized
		// conductances and the program-and-verify cache: stale gt entries
		// (old variation draws, old non-zero cells) must not survive into
		// the new matrix, and a zeroed progTarget makes writeRow treat every
		// non-zero target as a fresh write, exactly as on first Program.
		x.gt.Zero()
		x.progTarget.Zero()
	} else {
		x.rowScale = make([]float64, x.rows)
		x.target = linalg.NewMatrix(x.rows, x.cols)
		x.gt = linalg.NewMatrix(x.rows, x.cols)
		x.progTarget = linalg.NewMatrix(x.rows, x.cols)
		x.deviceFactor = linalg.NewMatrix(x.rows, x.cols)
		x.cellCycle = nil
	}
	if x.driftEnabled() && x.cellCycle == nil {
		x.cellCycle = linalg.NewMatrix(x.rows, x.cols)
	}
	if x.deltaQ != nil && !x.deltaOff {
		if len(x.deltaLevel) != x.rows*x.cols {
			x.deltaLevel = make([]int64, x.rows*x.cols)
		}
		// A (re-)Program is a fresh array: no prior level is epoch-compatible.
		x.invalidateDeltaLevels()
	} else {
		// Disabled (by config or per-workload): a nil cache turns every delta
		// check in the write path off.
		x.deltaLevel = nil
	}
	// Draw each device's static variation factor once per Program: geometry
	// variation persists across rewrites of the same cell, while a full
	// re-Program models a fresh array (Algorithm 2's double-checking relies
	// on independent variation draws between attempts).
	for i := 0; i < x.rows; i++ {
		for j := 0; j < x.cols; j++ {
			f := 1.0
			if x.cfg.Variation != nil {
				f = x.cfg.Variation.Factor()
			}
			x.deviceFactor.Set(i, j, f)
		}
	}
	for i := 0; i < x.rows; i++ {
		x.setTargetRow(i, linalg.Vector(a.RawRow(i)))
		x.writeRow(i)
	}
	return nil
}

// setTargetRow picks row i's digital scale so that (a) the row sum of
// C_i = row/scaleᵢ stays ≤ ρ and (b) every mapped conductance
// g = v·gs/(scaleᵢ − rowsum) stays ≤ gmax, then stores the scaled targets.
func (x *Crossbar) setTargetRow(i int, row linalg.Vector) {
	var sum, maxElem float64
	for _, v := range row {
		sum += v
		if v > maxElem {
			maxElem = v
		}
	}
	scale := 1.0
	if req := sum + maxElem*x.cfg.SenseConductance/x.cfg.Device.GMax(); req > 0 {
		scale = req / x.cfg.MaxRowSum
	}
	x.rowScale[i] = scale
	for j, v := range row {
		x.target.Set(i, j, v/scale)
	}
}

// writeRow physically programs every cell of row i from the target matrix,
// drawing fresh variation and applying write quantization. Zero targets map
// to selector-gated zero-conductance cells.
func (x *Crossbar) writeRow(i int) {
	gs := x.cfg.SenseConductance
	ri := x.target.RowSum(i)
	// Exact mapping: g = C·gs/(1−R). Row sums ≤ ρ < 1 by construction.
	coef := gs / (1 - ri)
	for j := 0; j < x.cols; j++ {
		c := x.target.At(i, j)
		var tq float64
		if c > 0 {
			tq = x.quantizeG(c * coef)
		}
		// Stuck devices are pinned regardless of the target; check the fault
		// map before the progTarget skip so pinning survives the gt reset a
		// re-Program performs.
		if k := x.faultAt(i, j); k != memristor.FaultNone {
			x.pinFaultCell(i, j, k, tq)
			continue
		}
		// Program-and-verify skips cells whose quantized target is already
		// programmed: unchanged coefficients cost no write pulses. This is
		// what keeps the per-iteration refresh at O(N) — only the X/Y/Z/W
		// cells (and re-balanced neighbours) actually change. Both values
		// lie on the quantizeG grid, so bit-exact identity is the right test.
		if linalg.Identical(tq, x.progTarget.At(i, j)) {
			// The realized conductance is exactly this target's, so the cell's
			// delta level is the target's level. Recording it here — not just
			// in writeDevice — matters for pool determinism: after an epoch
			// rebase the first row refresh leaves the level cache a pure
			// function of the refresh targets whether or not each cell
			// physically needed a write (which is shard-history-dependent).
			if x.deltaLevel != nil {
				x.deltaLevel[i*x.cols+j] = x.deltaLevelOf(tq)
			}
			continue
		}
		// Delta-programming skips targets whose coarse level is unchanged
		// since the cell's last epoch-compatible write: the stale realized
		// conductance (its noise draw included) already sits within the I/O
		// precision of the new target. The skip decision is a pure function
		// of digital targets, so iterate trajectories stay deterministic.
		if x.deltaLevel != nil && x.deltaLevelOf(tq) == x.deltaLevel[i*x.cols+j] {
			x.counters.CellSkips++
			continue
		}
		x.writeDevice(i, j, tq)
	}
}

// UpdateRow replaces row i of the programmed matrix with the given values
// (in user units) and physically rewrites that row's cells. It returns
// ErrTooLarge if the new row sum no longer fits under the headroom scale; the
// caller should then re-Program the full matrix.
func (x *Crossbar) UpdateRow(i int, row linalg.Vector) error {
	if x.target == nil {
		return ErrNotProgrammed
	}
	if i < 0 || i >= x.rows || len(row) != x.cols {
		return fmt.Errorf("%w: row %d len %d for %dx%d", linalg.ErrDimensionMismatch, i, len(row), x.rows, x.cols)
	}
	for _, v := range row {
		if v < 0 {
			return ErrNegative
		}
	}
	x.setTargetRow(i, row)
	x.writeRow(i)
	return nil
}

// UpdateCell changes one coefficient (user units) and rewrites the affected
// row. Because the exact mapping couples a row's cells through its row sum,
// the full row is rewritten; for the sparse solver rows this is 2–3 cells'
// worth of real writes, and the counter reflects every physical write.
func (x *Crossbar) UpdateCell(i, j int, value float64) error {
	if x.target == nil {
		return ErrNotProgrammed
	}
	if i < 0 || i >= x.rows || j < 0 || j >= x.cols {
		return fmt.Errorf("%w: cell (%d,%d) of %dx%d", linalg.ErrDimensionMismatch, i, j, x.rows, x.cols)
	}
	if value < 0 {
		return ErrNegative
	}
	row := x.target.Row(i).Scale(x.rowScale[i])
	row[j] = value
	return x.UpdateRow(i, row)
}

// UpdateCellInPlace rewrites a single device using the row's existing scale
// and mapping coefficient — one physical write, O(1). Unlike UpdateCell it
// does not re-balance the rest of the row, so the row's mapping drifts
// slightly from the exact C = a/rowScale relation; the drift is harmless
// because both MatVec and Solve operate on measured conductances (the Solve
// path re-calibrates with measured row sums). Use it for per-iteration
// refreshes of single coefficients inside otherwise-static dense rows.
func (x *Crossbar) UpdateCellInPlace(i, j int, value float64) error {
	if x.target == nil {
		return ErrNotProgrammed
	}
	if i < 0 || i >= x.rows || j < 0 || j >= x.cols {
		return fmt.Errorf("%w: cell (%d,%d) of %dx%d", linalg.ErrDimensionMismatch, i, j, x.rows, x.cols)
	}
	if value < 0 {
		return ErrNegative
	}
	// A value that no longer fits under the row's programmed scale (its
	// connection-matrix row sum would reach the headroom bound, or the cell
	// would need more than gmax) saturates at the row's representable
	// ceiling: the device simply cannot be programmed higher without
	// re-balancing the whole row, and a single-cell write must stay a
	// single write. Callers that need the exact large value re-balance via
	// UpdateRow instead.
	c := value / x.rowScale[i]
	oldTarget := x.target.At(i, j)
	rest := x.target.RowSum(i) - oldTarget
	if maxC := x.cfg.MaxRowSum - rest; c > maxC {
		c = maxC
	}
	// Conductance ceiling: c·gs/(1−rest−c) ≤ gmax ⇔ c ≤ gmax(1−rest)/(gs+gmax).
	gmax := x.cfg.Device.GMax()
	if maxC := gmax * (1 - rest) / (x.cfg.SenseConductance + gmax); c > maxC {
		c = maxC
	}
	if c < 0 {
		c = 0
	}
	x.target.Set(i, j, c)
	var tq float64
	if c > 0 {
		ri := x.target.RowSum(i)
		coef := x.cfg.SenseConductance / (1 - ri)
		tq = x.quantizeG(c * coef)
	}
	if k := x.faultAt(i, j); k != memristor.FaultNone {
		x.pinFaultCell(i, j, k, tq)
		return nil
	}
	if linalg.Identical(tq, x.progTarget.At(i, j)) {
		if x.deltaLevel != nil {
			x.deltaLevel[i*x.cols+j] = x.deltaLevelOf(tq)
		}
		return nil
	}
	if x.deltaLevel != nil && x.deltaLevelOf(tq) == x.deltaLevel[i*x.cols+j] {
		x.counters.CellSkips++
		return nil
	}
	x.writeDevice(i, j, tq)
	return nil
}

// effG returns the conductance of cell (i, j) as seen from the periphery,
// attenuated by the series word-line and bit-line wire resistance on its
// path (first-order IR-drop model: the cell current traverses j+1 word-line
// segments from the driver and i+1 bit-line segments to the sense amp).
//
//memlp:hotpath
func (x *Crossbar) effG(i, j int, g float64) float64 {
	if g == 0 {
		return 0
	}
	if x.cellCycle != nil && x.driftEnabled() {
		g *= x.driftFactor(i, j)
	}
	if x.cfg.WireResistance == 0 {
		return g
	}
	dist := float64(i + j + 2)
	return g / (1 + g*x.cfg.WireResistance*dist)
}

// senseRow integrates row i's cell currents for the analog input vi: the
// numerator of the row's dot product and the row's total effective
// conductance, both after per-cell IR-drop/drift attenuation. This is the
// per-iteration inner kernel of every analog read (Algorithm 1/2 mat-vec and
// residual paths).
//
//memlp:hotpath
func (x *Crossbar) senseRow(i int, vi linalg.Vector) (num, sum float64) {
	for j, g := range x.gt.RawRow(i) {
		ge := x.effG(i, j, g)
		num += ge * vi[j]
		sum += ge
	}
	return num, sum
}

// MatVec performs the analog multiplication userMatrix · v, including DAC
// quantization of the inputs, the physical network transfer (with the
// actually-programmed, variation-perturbed conductances), and ADC
// quantization of the outputs. The digital rescale by Scale() is applied
// before returning. The result is crossbar-owned scratch storage, valid
// until the next MatVec call on this array.
func (x *Crossbar) MatVec(v linalg.Vector) (linalg.Vector, error) {
	if x.target == nil {
		return nil, ErrNotProgrammed
	}
	if len(v) != x.cols {
		return nil, fmt.Errorf("%w: matvec input %d for %dx%d", linalg.ErrDimensionMismatch, len(v), x.rows, x.cols)
	}
	vi, inScale, err := x.toAnalog(v)
	if err != nil {
		return nil, err
	}
	gs := x.cfg.SenseConductance
	vo := scratchVec(&x.mvVO, x.rows)
	for i := 0; i < x.rows; i++ {
		num, s := x.senseRow(i, vi)
		vo[i] = num / (gs + s)
	}
	out, err := x.fromAnalog(vo, &x.mvOut)
	if err != nil {
		return nil, err
	}
	x.counters.MatVecOps++
	// The analog result is VO = C·(v/inScale); the user result is
	// userRowᵢ·v = rowScaleᵢ·Cᵢ·v = rowScaleᵢ·inScale·VOᵢ (per-row ADC gain).
	for i := range out {
		out[i] *= x.rowScale[i] * inScale
	}
	return out, nil
}

// MatVecResidual computes r = base − factor ∘ (userMatrix·v) with the
// subtraction performed in the analog domain by summing amplifiers (§3.2:
// "the subtraction could be implemented using summing amplifiers"), so only
// the small residual — not the large product — passes through the ADC. The
// base vector is a calibrated static reference (exact); factor is an
// optional per-row analog divider (the divide-by-2 of Eq. 15); nil means
// all ones. Inputs are digitized per-element (stable power-of-two grids, no
// per-call renormalization), which keeps the iteration noise deterministic.
// The result is crossbar-owned scratch storage, valid until the next
// MatVecResidual call on this array.
func (x *Crossbar) MatVecResidual(base, v, factor linalg.Vector) (linalg.Vector, error) {
	if x.target == nil {
		return nil, ErrNotProgrammed
	}
	if len(v) != x.cols {
		return nil, fmt.Errorf("%w: input %d for %dx%d", linalg.ErrDimensionMismatch, len(v), x.rows, x.cols)
	}
	if len(base) != x.rows {
		return nil, fmt.Errorf("%w: base %d for %d rows", linalg.ErrDimensionMismatch, len(base), x.rows)
	}
	if factor != nil && len(factor) != x.rows {
		return nil, fmt.Errorf("%w: factor %d for %d rows", linalg.ErrDimensionMismatch, len(factor), x.rows)
	}
	vi := scratchVec(&x.resVI, len(v))
	copy(vi, v)
	if err := x.quantizeIO(vi); err != nil {
		return nil, err
	}
	x.counters.IOConversions += int64(len(vi))
	gs := x.cfg.SenseConductance
	out := scratchVec(&x.resOut, x.rows)
	for i := 0; i < x.rows; i++ {
		num, srow := x.senseRow(i, vi)
		t := x.rowScale[i] * num / (gs + srow)
		if factor != nil {
			t *= factor[i]
		}
		out[i] = base[i] - t
	}
	if err := x.quantizeIO(out); err != nil {
		return nil, err
	}
	x.counters.IOConversions += int64(len(out))
	x.counters.MatVecOps++
	return out, nil
}

// Solve performs the analog linear solve userMatrix · x = b by forcing
// bitline voltages and reading the settled wordline voltages. The programmed
// matrix must be square. The simulation solves the physical network equation
// Gᵀ·VI = gs·VO with the actually-programmed conductances; an (analog)
// failure to settle — a singular conductance network — is reported as
// ErrSingular. The result is crossbar-owned scratch storage, valid until the
// next Solve call on this array.
func (x *Crossbar) Solve(b linalg.Vector) (linalg.Vector, error) {
	if x.target == nil {
		return nil, ErrNotProgrammed
	}
	if x.rows != x.cols {
		return nil, fmt.Errorf("%w: solve on %dx%d array", linalg.ErrNotSquare, x.rows, x.cols)
	}
	if len(b) != x.rows {
		return nil, fmt.Errorf("%w: rhs %d for %dx%d", linalg.ErrDimensionMismatch, len(b), x.rows, x.cols)
	}
	// Digital pre-compensation with post-program row calibration: the
	// network solves Gᵀ·VI = gs·VO, so forcing
	// VOᵢ = bᵢ·(gs+S'ᵢ)/(gs·rowScaleᵢ) — where S'ᵢ is the row's MEASURED
	// total conductance (one analog read with unit inputs after
	// programming, IR drop included) — makes the solve see exactly the same
	// effective matrix as the multiply direction,
	// F₍ᵢ,ⱼ₎ = rowScaleᵢ·g'₍ᵢ,ⱼ₎/(gs+S'ᵢ). Without calibration, the O(var)
	// mismatch between ideal and realized row sums leaks a fraction of
	// every Newton step into the primal residual (DESIGN.md §D3).
	gs := x.cfg.SenseConductance
	net := x.gt
	if x.cfg.WireResistance > 0 || x.driftEnabled() {
		if x.solveNet == nil || x.solveNet.Rows() != x.rows || x.solveNet.Cols() != x.cols {
			x.solveNet = linalg.NewMatrix(x.rows, x.cols)
		}
		net = x.solveNet
		for i := 0; i < x.rows; i++ {
			grow := x.gt.RawRow(i)
			nrow := net.RawRow(i)
			for j, g := range grow {
				nrow[j] = x.effG(i, j, g)
			}
		}
	}
	vo := scratchVec(&x.solveVO, len(b))
	for i := range b {
		var srow float64
		for _, g := range net.RawRow(i) {
			srow += g
		}
		vo[i] = b[i] * (gs + srow) / (gs * x.rowScale[i])
	}
	voq, inScale, err := x.toAnalog(vo)
	if err != nil {
		return nil, err
	}
	for i := range voq {
		voq[i] *= gs
	}
	// The structured solve computes the same settle point as a dense solve
	// but exploits the sparsity of the programmed network; the analog
	// hardware cost model is unaffected (one settle either way).
	vi, err := x.solveWS.Solve(net, voq)
	if err != nil {
		if errors.Is(err, linalg.ErrSingular) {
			return nil, fmt.Errorf("%w: %v", ErrSingular, err)
		}
		return nil, err
	}
	out, err := x.fromAnalog(vi, &x.solveOut)
	if err != nil {
		return nil, err
	}
	x.counters.SolveOps++
	if x.driftEnabled() {
		// One analog settle = one refresh cycle for the retention model:
		// cells not rewritten since their last program keep decaying.
		x.driftCycle++
	}
	// The network solved Gᵀ·VI = gs·(vo/inScale), so the true wordline
	// voltages are inScale·VI.
	for i := range out {
		out[i] *= inScale
	}
	return out, nil
}

// EffectiveMatrix reconstructs, in user units, the matrix the array actually
// realizes after write quantization and process variation:
// A' = scale · C' with C'₍ᵢ,ⱼ₎ = g'₍ᵢ,ⱼ₎/(gs + S'ᵢ). The NoC layer uses this
// to simulate a composed (multi-tile) analog solve.
func (x *Crossbar) EffectiveMatrix() (*linalg.Matrix, error) {
	if x.target == nil {
		return nil, ErrNotProgrammed
	}
	gs := x.cfg.SenseConductance
	out := linalg.NewMatrix(x.rows, x.cols)
	for i := 0; i < x.rows; i++ {
		grow := x.gt.RawRow(i)
		var s float64
		for j, g := range grow {
			s += x.effG(i, j, g)
		}
		coef := x.rowScale[i] / (gs + s)
		orow := out.RawRow(i)
		for j, g := range grow {
			orow[j] = x.effG(i, j, g) * coef
		}
	}
	return out, nil
}

// SolveEffectiveMatrix reconstructs, in user units, the matrix whose linear
// system the array actually solves in the analog solve direction. With the
// post-program row-sum calibration used by Solve, this equals
// EffectiveMatrix: both directions see F₍ᵢ,ⱼ₎ = rowScaleᵢ·g'₍ᵢ,ⱼ₎/(gs+S'ᵢ).
func (x *Crossbar) SolveEffectiveMatrix() (*linalg.Matrix, error) {
	return x.EffectiveMatrix()
}

// toAnalog normalizes v to the DAC full-scale range [-1, 1], quantizes it,
// and returns the quantized vector together with the normalization factor
// (result = v/inScale before quantization).
// The returned vector is scratch storage owned by the crossbar, overwritten
// by the next toAnalog call.
func (x *Crossbar) toAnalog(v linalg.Vector) (linalg.Vector, float64, error) {
	inScale := v.NormInf()
	if inScale == 0 {
		inScale = 1
	}
	out := scratchVec(&x.analogIn, len(v))
	for i, e := range v {
		out[i] = e / inScale
	}
	if err := x.quantizeIO(out); err != nil {
		return nil, 0, err
	}
	x.counters.IOConversions += int64(len(v))
	return out, inScale, nil
}

// fromAnalog models the ADC stage on the analog result vector, writing the
// digitized copy into the given caller-owned scratch buffer.
func (x *Crossbar) fromAnalog(v linalg.Vector, scratch *linalg.Vector) (linalg.Vector, error) {
	x.counters.IOConversions += int64(len(v))
	out := scratchVec(scratch, len(v))
	copy(out, v)
	if err := x.quantizeIO(out); err != nil {
		return nil, err
	}
	return out, nil
}

// quantizeIO applies the configured converter model in place: per-element
// programmable-gain (each element keeps IOBits of its own magnitude) or a
// single shared full-scale range across the vector.
func (x *Crossbar) quantizeIO(v linalg.Vector) error {
	if x.cfg.GlobalIORange {
		amp := v.NormInf()
		if amp == 0 || math.IsNaN(amp) || math.IsInf(amp, 0) {
			return nil
		}
		q, err := quant.SymmetricAroundZero(x.cfg.IOBits, amp)
		if err != nil {
			return err
		}
		q.QuantizeVector(v)
		return nil
	}
	// Per-element PGA: quantize each element against its own power-of-two
	// full scale, which keeps a constant relative resolution.
	step := math.Exp2(-float64(x.cfg.IOBits - 1))
	for i, e := range v {
		if e == 0 || math.IsNaN(e) || math.IsInf(e, 0) {
			continue
		}
		mag := math.Abs(e)
		exp := math.Ceil(math.Log2(mag))
		scale := math.Exp2(exp) * step
		v[i] = math.Round(e/scale) * scale
	}
	return nil
}
