package memristor

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadFaultModel reports an invalid fault-model configuration.
var ErrBadFaultModel = errors.New("memristor: invalid fault model")

// FaultKind classifies a permanent device defect.
type FaultKind int

const (
	// FaultNone means the device programs normally.
	FaultNone FaultKind = iota
	// FaultStuckOff means the device is pinned at (effectively) zero
	// conductance: a broken filament or open selector. Writes have no effect.
	FaultStuckOff
	// FaultStuckOn means the device is pinned at its maximum conductance
	// GMax: a permanently formed filament. Writes have no effect.
	FaultStuckOn
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultStuckOff:
		return "stuck-off"
	case FaultStuckOn:
		return "stuck-on"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultModel describes the permanent and progressive defects of a simulated
// memristor array beyond the paper's per-write process variation (Eq. 18):
// stuck-at-ON/OFF cells, extra per-write-attempt programming noise, and
// conductance drift between refresh cycles.
//
// Fault placement is a pure function of (Seed, physical row, physical
// column): the model holds no mutable state, so one FaultModel value can be
// shared by any number of arrays and goroutines, and every array built from
// equal configuration sees exactly the same defect map — which is what lets
// the recovery ladder reason about remapping around stuck cells, and what
// keeps concurrent solves on one handle consistent.
type FaultModel struct {
	// StuckOnDensity is the fraction of physical cells pinned at GMax.
	StuckOnDensity float64
	// StuckOffDensity is the fraction of physical cells pinned at zero
	// conductance.
	StuckOffDensity float64
	// Seed fixes the defect placement; equal seeds give equal maps.
	Seed int64
	// WriteNoise is an extra relative programming-noise magnitude applied
	// per write attempt (uniform in ±WriteNoise), on top of the array's
	// process-variation model. Write-verify retries redraw it.
	WriteNoise float64
	// DriftPerCycle is the multiplicative conductance decay a programmed
	// cell suffers per refresh cycle it is NOT rewritten (retention loss /
	// read disturb). Zero disables drift.
	DriftPerCycle float64
}

// Validate rejects out-of-range densities and magnitudes.
func (f FaultModel) Validate() error {
	switch {
	case f.StuckOnDensity < 0 || f.StuckOnDensity >= 1 || math.IsNaN(f.StuckOnDensity):
		return fmt.Errorf("%w: stuck-on density %v", ErrBadFaultModel, f.StuckOnDensity)
	case f.StuckOffDensity < 0 || f.StuckOffDensity >= 1 || math.IsNaN(f.StuckOffDensity):
		return fmt.Errorf("%w: stuck-off density %v", ErrBadFaultModel, f.StuckOffDensity)
	case f.StuckOnDensity+f.StuckOffDensity >= 1:
		return fmt.Errorf("%w: total stuck density %v", ErrBadFaultModel, f.StuckOnDensity+f.StuckOffDensity)
	case f.WriteNoise < 0 || f.WriteNoise >= 1 || math.IsNaN(f.WriteNoise):
		return fmt.Errorf("%w: write noise %v", ErrBadFaultModel, f.WriteNoise)
	case f.DriftPerCycle < 0 || f.DriftPerCycle >= 1 || math.IsNaN(f.DriftPerCycle):
		return fmt.Errorf("%w: drift per cycle %v", ErrBadFaultModel, f.DriftPerCycle)
	}
	return nil
}

// TotalDensity returns the combined stuck-cell fraction.
func (f FaultModel) TotalDensity() float64 { return f.StuckOnDensity + f.StuckOffDensity }

// FaultAt returns the permanent defect of the physical cell (i, j).
// Deterministic per (Seed, i, j) and safe for concurrent use.
func (f FaultModel) FaultAt(i, j int) FaultKind {
	if f.StuckOnDensity == 0 && f.StuckOffDensity == 0 {
		return FaultNone
	}
	u := uniform01(hash3(uint64(f.Seed), uint64(i), uint64(j)))
	switch {
	case u < f.StuckOffDensity:
		return FaultStuckOff
	case u < f.StuckOffDensity+f.StuckOnDensity:
		return FaultStuckOn
	default:
		return FaultNone
	}
}

// CountFaults tallies the stuck cells inside the physical region with origin
// (row0, col0) and the given extent.
func (f FaultModel) CountFaults(row0, col0, rows, cols int) (stuckOn, stuckOff int) {
	if f.StuckOnDensity == 0 && f.StuckOffDensity == 0 {
		return 0, 0
	}
	for i := row0; i < row0+rows; i++ {
		for j := col0; j < col0+cols; j++ {
			switch f.FaultAt(i, j) {
			case FaultStuckOn:
				stuckOn++
			case FaultStuckOff:
				stuckOff++
			}
		}
	}
	return stuckOn, stuckOff
}

// WriteFactor returns the multiplicative programming-noise factor (1 + ε)
// for write attempt n at physical cell (i, j), |ε| ≤ WriteNoise.
// Deterministic per (Seed, i, j, n) and safe for concurrent use.
func (f FaultModel) WriteFactor(i, j, n int) float64 {
	if f.WriteNoise == 0 {
		return 1
	}
	u := uniform01(hash3(uint64(f.Seed)^0x9e3779b97f4a7c15, uint64(i)<<20|uint64(j), uint64(n)))
	return 1 + f.WriteNoise*(2*u-1)
}

// hash3 mixes three words with a splitmix64-style finalizer: a cheap,
// stateless PRF good enough for defect placement (avalanche on every input
// bit, no visible lattice structure across neighbouring cells).
func hash3(a, b, c uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 ^ b*0xbf58476d1ce4e5b9 ^ c*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// uniform01 maps a hash to [0, 1) with 53 bits of precision.
func uniform01(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}
