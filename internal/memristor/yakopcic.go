package memristor

import (
	"fmt"
	"math"
)

// YakopcicParams describes the generalized memristor model of Yakopcic et
// al. — the device model behind the paper's timing/energy estimates ([23]).
// Unlike the linear ion-drift device, its current is a sinh function of the
// voltage (electron tunnelling) and its state motion is exponential in the
// over-threshold voltage, which captures the strongly voltage-dependent
// write speed of real devices.
//
//	I(V)    = a1·x·sinh(b·V)          V ≥ 0
//	          a2·x·sinh(b·V)          V < 0
//	dx/dt   = η·g(V)·f(x)
//	g(V)    = Ap·(e^V − e^Vp)         V >  Vp
//	          −An·(e^−V − e^Vn)       V < −Vn
//	          0                       otherwise
//	f(x)    = e^(−αp·(x−xp))·w(x,xp)  for motion toward 1 above xp
//	          e^( αn·(x+xn−1))·w(1−x,xn) toward 0 below 1−xn
//	          1                       otherwise
//
// with the windowing w(x, p) = (p − x)/(1 − p) + 1 clipping motion near the
// state boundaries.
type YakopcicParams struct {
	A1, A2 float64 // current amplitudes (A)
	B      float64 // sinh steepness (1/V)
	Vp, Vn float64 // positive/negative switching thresholds (V)
	Ap, An float64 // state-motion amplitudes (1/s)
	Xp, Xn float64 // window onset points in (0, 1)
	AlphaP float64 // motion decay above Xp
	AlphaN float64 // motion decay below 1−Xn
	Eta    float64 // polarity (+1 or −1)
}

// DefaultYakopcicParams returns the parameter set Yakopcic et al. fit to the
// HP TiO₂ device family (rounded), which is what the paper's latency/energy
// estimation builds on.
func DefaultYakopcicParams() YakopcicParams {
	return YakopcicParams{
		A1: 0.17, A2: 0.17,
		B:  0.05,
		Vp: 0.16, Vn: 0.15,
		Ap: 4000, An: 4000,
		Xp: 0.3, Xn: 0.5,
		AlphaP: 1, AlphaN: 5,
		Eta: 1,
	}
}

// Validate rejects non-physical parameters.
func (p YakopcicParams) Validate() error {
	switch {
	case !(p.A1 > 0) || !(p.A2 > 0):
		return fmt.Errorf("%w: current amplitudes %v, %v", ErrInvalidParams, p.A1, p.A2)
	case !(p.B > 0):
		return fmt.Errorf("%w: b = %v", ErrInvalidParams, p.B)
	case !(p.Vp > 0) || !(p.Vn > 0):
		return fmt.Errorf("%w: thresholds %v, %v", ErrInvalidParams, p.Vp, p.Vn)
	case !(p.Ap > 0) || !(p.An > 0):
		return fmt.Errorf("%w: motion amplitudes %v, %v", ErrInvalidParams, p.Ap, p.An)
	case p.Xp <= 0 || p.Xp >= 1 || p.Xn <= 0 || p.Xn >= 1:
		return fmt.Errorf("%w: window points %v, %v", ErrInvalidParams, p.Xp, p.Xn)
	//memlpvet:ignore floatcmp Eta is a polarity flag restricted to the exact sentinels ±1
	case p.Eta != 1 && p.Eta != -1:
		return fmt.Errorf("%w: eta = %v (must be ±1)", ErrInvalidParams, p.Eta)
	}
	return nil
}

// YakopcicDevice is one generalized memristor with state x ∈ [0, 1].
type YakopcicDevice struct {
	params YakopcicParams
	x      float64
}

// NewYakopcicDevice returns a device at the given initial state.
func NewYakopcicDevice(params YakopcicParams, x0 float64) (*YakopcicDevice, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if x0 < 0 || x0 > 1 || math.IsNaN(x0) {
		return nil, fmt.Errorf("%w: x0 = %v", ErrInvalidParams, x0)
	}
	return &YakopcicDevice{params: params, x: x0}, nil
}

// State returns the internal state x ∈ [0, 1].
func (d *YakopcicDevice) State() float64 { return d.x }

// Current returns I(V) at the present state.
func (d *YakopcicDevice) Current(v float64) float64 {
	if v >= 0 {
		return d.params.A1 * d.x * math.Sinh(d.params.B*v)
	}
	return d.params.A2 * d.x * math.Sinh(d.params.B*v)
}

// Conductance returns the small-signal conductance dI/dV at V → 0:
// a·x·b (the sinh slope at the origin).
func (d *YakopcicDevice) Conductance() float64 {
	return d.params.A1 * d.x * d.params.B
}

// gOf returns the voltage-gated state-motion rate g(V).
func (p YakopcicParams) gOf(v float64) float64 {
	switch {
	case v > p.Vp:
		return p.Ap * (math.Exp(v) - math.Exp(p.Vp))
	case v < -p.Vn:
		return -p.An * (math.Exp(-v) - math.Exp(p.Vn))
	default:
		return 0
	}
}

// fOf returns the state-dependent motion window f(x) for the given motion
// direction (sign of dx).
func (p YakopcicParams) fOf(x float64, towardOne bool) float64 {
	if towardOne {
		if x < p.Xp {
			return 1
		}
		w := (p.Xp-x)/(1-p.Xp) + 1
		if w < 0 {
			w = 0
		}
		return math.Exp(-p.AlphaP*(x-p.Xp)) * w
	}
	if x > 1-p.Xn {
		return 1
	}
	w := x / (1 - p.Xn)
	if w < 0 {
		w = 0
	}
	return math.Exp(p.AlphaN*(x+p.Xn-1)) * w
}

// Step integrates the state under a constant applied voltage for dt seconds
// (forward Euler with internal sub-stepping for stability) and returns the
// new state. Sub-threshold voltages leave the state untouched.
func (d *YakopcicDevice) Step(v, dt float64) float64 {
	g := d.params.gOf(v)
	if g == 0 || dt <= 0 {
		return d.x
	}
	const subSteps = 64
	h := dt / subSteps
	for i := 0; i < subSteps; i++ {
		rate := d.params.Eta * g * d.params.fOf(d.x, d.params.Eta*g > 0)
		d.x += rate * h
		if d.x < 0 {
			d.x = 0
		}
		if d.x > 1 {
			d.x = 1
		}
	}
	return d.x
}

// WriteLatency estimates the pulse time needed to move the state from x0 to
// x1 under a constant write voltage v, by integrating the motion ODE.
// Returns +Inf if the voltage cannot produce the required motion direction.
func (p YakopcicParams) WriteLatency(x0, x1, v float64) float64 {
	g := p.gOf(v)
	if g == 0 {
		return math.Inf(1)
	}
	dir := p.Eta * g
	if (x1 > x0 && dir <= 0) || (x1 < x0 && dir >= 0) {
		return math.Inf(1)
	}
	d := &YakopcicDevice{params: p, x: x0}
	const h = 1e-7 // 100 ns resolution
	var t float64
	for i := 0; i < 10_000_000; i++ {
		if (x1 > x0 && d.x >= x1) || (x1 < x0 && d.x <= x1) {
			return t
		}
		d.Step(v, h)
		t += h
	}
	return math.Inf(1)
}
