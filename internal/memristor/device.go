// Package memristor models the memristive devices that populate a crossbar:
// the HP TiO₂ linear ion-drift device (Strukov et al., Eq. 4 of the paper),
// threshold-gated switching, pulse-based multilevel programming, and the
// per-operation timing/energy constants used by the performance estimator.
//
// A memristor behaves as a resistor whose resistance ("memristance") is set
// by the charge that has flowed through it:
//
//	M(q) = ROFF · (1 − µv·RON/D² · q)
//
// bounded between RON (fully doped) and ROFF (undoped). Voltages below the
// switching threshold Vth read the device without disturbing its state;
// programming pulses above Vth move the internal state variable.
package memristor

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by device construction and programming.
var (
	ErrInvalidParams = errors.New("memristor: invalid device parameters")
	ErrTargetRange   = errors.New("memristor: target outside programmable range")
)

// DeviceParams describes one memristor device technology.
type DeviceParams struct {
	// RON is the low-resistance (fully doped) state, in ohms.
	RON float64
	// ROFF is the high-resistance (undoped) state, in ohms.
	ROFF float64
	// Vth is the switching threshold voltage, in volts: |V| ≤ Vth never
	// changes the state.
	Vth float64
	// Vdd is the programming voltage, in volts; must satisfy Vdd > Vth so a
	// full-selected cell switches while half-selected cells (Vdd/2) do not.
	Vdd float64
	// MobilityD2 is µv·RON/D², the state-motion coefficient of the linear
	// drift model, in 1/(A·s) (per coulomb).
	MobilityD2 float64
	// WritePulseWidth is the duration of one programming pulse, in seconds.
	WritePulseWidth float64
}

// DefaultParams returns TiO₂-class device parameters consistent with the HP
// device literature ([3][13]) and the Yakopcic-model timing used by the
// paper's estimates [23].
func DefaultParams() DeviceParams {
	return DeviceParams{
		RON:             1_000,      // Ω
		ROFF:            10_000_000, // Ω (10⁴ on/off ratio, TiO₂ class)
		Vth:             1.0,        // V
		Vdd:             1.8,        // V (≤ 2·Vth so half-selected cells never disturb)
		MobilityD2:      5e10,       // (µv·RON/D²) per coulomb — 10nm film class
		WritePulseWidth: 10e-9,      // 10 ns pulses
	}
}

// Validate checks physical consistency of the parameters.
func (p DeviceParams) Validate() error {
	switch {
	case !(p.RON > 0):
		return fmt.Errorf("%w: RON = %v", ErrInvalidParams, p.RON)
	case !(p.ROFF > p.RON):
		return fmt.Errorf("%w: ROFF = %v must exceed RON = %v", ErrInvalidParams, p.ROFF, p.RON)
	case !(p.Vth > 0):
		return fmt.Errorf("%w: Vth = %v", ErrInvalidParams, p.Vth)
	case !(p.Vdd > p.Vth):
		return fmt.Errorf("%w: Vdd = %v must exceed Vth = %v", ErrInvalidParams, p.Vdd, p.Vth)
	case p.Vdd/2 > p.Vth:
		return fmt.Errorf("%w: half-select voltage %v exceeds Vth %v (write disturb)", ErrInvalidParams, p.Vdd/2, p.Vth)
	case !(p.MobilityD2 > 0):
		return fmt.Errorf("%w: MobilityD2 = %v", ErrInvalidParams, p.MobilityD2)
	case !(p.WritePulseWidth > 0):
		return fmt.Errorf("%w: WritePulseWidth = %v", ErrInvalidParams, p.WritePulseWidth)
	}
	return nil
}

// GMin returns the minimum programmable conductance 1/ROFF.
func (p DeviceParams) GMin() float64 { return 1 / p.ROFF }

// GMax returns the maximum programmable conductance 1/RON.
func (p DeviceParams) GMax() float64 { return 1 / p.RON }

// Device is one memristor. Its state variable w ∈ [0, 1] interpolates the
// memristance between ROFF (w=0) and RON (w=1):
//
//	M(w) = ROFF − w·(ROFF − RON)
//
// which is the linear ion-drift model of Eq. 4 with w = µv·RON/D²·q
// normalized to [0, 1].
type Device struct {
	params DeviceParams
	w      float64
}

// NewDevice returns a device in the fully-off state (M = ROFF).
func NewDevice(params DeviceParams) (*Device, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Device{params: params}, nil
}

// Params returns the device technology parameters.
func (d *Device) Params() DeviceParams { return d.params }

// State returns the internal state variable w ∈ [0, 1].
func (d *Device) State() float64 { return d.w }

// Memristance returns the present resistance in ohms.
func (d *Device) Memristance() float64 {
	return d.params.ROFF - d.w*(d.params.ROFF-d.params.RON)
}

// Conductance returns the present conductance in siemens.
func (d *Device) Conductance() float64 { return 1 / d.Memristance() }

// Read returns the current through the device for a sub-threshold voltage.
// Reading never disturbs the state; if |v| exceeds Vth the read is invalid
// and an error is returned.
func (d *Device) Read(v float64) (float64, error) {
	if math.Abs(v) > d.params.Vth {
		return 0, fmt.Errorf("memristor: read voltage %v exceeds threshold %v", v, d.params.Vth)
	}
	return v * d.Conductance(), nil
}

// ApplyPulse applies one programming pulse of amplitude v (volts) for the
// device's pulse width. Sub-threshold pulses are no-ops (this is what makes
// the Vdd/2 half-select write scheme safe). Positive v increases w (toward
// RON), negative v decreases it. The linear drift model moves w by
//
//	Δw = µv·RON/D² · I · t = MobilityD2 · (v/M(w)) · WritePulseWidth
//
// clamped to [0, 1].
func (d *Device) ApplyPulse(v float64) {
	if math.Abs(v) <= d.params.Vth {
		return
	}
	i := v / d.Memristance()
	d.w = clamp01(d.w + d.params.MobilityD2*i*d.params.WritePulseWidth)
}

// ProgramConductance drives the device to the target conductance with a
// program-and-verify loop of ±Vdd pulses, as in §3.3 of the paper. Full-width
// pulses are applied while the remaining state gap exceeds one pulse's worth
// of drift; the final pulse is width-trimmed (§3.3: programming adjusts "the
// amplitude and width of the write pulse"). It returns the number of pulses
// used. The target must lie within [GMin, GMax]. tolerance is the acceptable
// relative conductance error; zero means 0.1%.
func (d *Device) ProgramConductance(target, tolerance float64) (int, error) {
	if target < d.params.GMin()*(1-1e-9) || target > d.params.GMax()*(1+1e-9) {
		return 0, fmt.Errorf("%w: g = %v not in [%v, %v]", ErrTargetRange, target, d.params.GMin(), d.params.GMax())
	}
	if tolerance <= 0 {
		tolerance = 1e-3
	}
	wTarget := d.params.StateForConductance(target)
	const maxPulses = 1_000_000
	pulses := 0
	for ; pulses < maxPulses; pulses++ {
		if math.Abs(d.Conductance()-target) <= tolerance*target {
			return pulses, nil
		}
		gap := wTarget - d.w
		sign := 1.0
		if gap < 0 {
			sign = -1
		}
		// Drift produced by one full-width pulse at the current state.
		fullStep := d.params.MobilityD2 * (d.params.Vdd / d.Memristance()) * d.params.WritePulseWidth
		if math.Abs(gap) >= fullStep {
			d.ApplyPulse(sign * d.params.Vdd)
			continue
		}
		// Width-trimmed final pulse lands exactly on the remaining gap.
		d.w = clamp01(d.w + gap)
	}
	return pulses, fmt.Errorf("memristor: programming did not converge to g = %v within %d pulses", target, maxPulses)
}

// SetState directly sets the state variable w ∈ [0, 1]. It models an ideal
// write and is used by the crossbar simulator where pulse-level simulation
// of every cell would be needlessly slow.
func (d *Device) SetState(w float64) error {
	if w < 0 || w > 1 || math.IsNaN(w) {
		return fmt.Errorf("%w: w = %v", ErrInvalidParams, w)
	}
	d.w = w
	return nil
}

// StateForConductance returns the state variable w that realizes the given
// conductance, clamped to the programmable range.
func (p DeviceParams) StateForConductance(g float64) float64 {
	if g <= p.GMin() {
		return 0
	}
	if g >= p.GMax() {
		return 1
	}
	// M = ROFF − w(ROFF−RON) and g = 1/M  ⇒  w = (ROFF − 1/g)/(ROFF − RON).
	return (p.ROFF - 1/g) / (p.ROFF - p.RON)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
