package memristor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func newDefaultDevice(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(DefaultParams())
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return d
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("DefaultParams invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	base := DefaultParams()
	tests := []struct {
		name   string
		mutate func(*DeviceParams)
	}{
		{"zero RON", func(p *DeviceParams) { p.RON = 0 }},
		{"negative RON", func(p *DeviceParams) { p.RON = -1 }},
		{"ROFF below RON", func(p *DeviceParams) { p.ROFF = p.RON / 2 }},
		{"zero Vth", func(p *DeviceParams) { p.Vth = 0 }},
		{"Vdd below Vth", func(p *DeviceParams) { p.Vdd = p.Vth / 2 }},
		{"half-select disturb", func(p *DeviceParams) { p.Vdd = 2.5 * p.Vth }},
		{"zero mobility", func(p *DeviceParams) { p.MobilityD2 = 0 }},
		{"zero pulse width", func(p *DeviceParams) { p.WritePulseWidth = 0 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := base
			tc.mutate(&p)
			if err := p.Validate(); !errors.Is(err, ErrInvalidParams) {
				t.Errorf("Validate = %v, want ErrInvalidParams", err)
			}
			if _, err := NewDevice(p); err == nil {
				t.Error("NewDevice accepted invalid params")
			}
		})
	}
}

func TestFreshDeviceIsOff(t *testing.T) {
	d := newDefaultDevice(t)
	if got := d.Memristance(); got != DefaultParams().ROFF {
		t.Errorf("fresh memristance = %v, want ROFF = %v", got, DefaultParams().ROFF)
	}
	if d.State() != 0 {
		t.Errorf("fresh state = %v, want 0", d.State())
	}
}

func TestMemristanceBounds(t *testing.T) {
	d := newDefaultDevice(t)
	p := d.Params()
	if err := d.SetState(1); err != nil {
		t.Fatalf("SetState: %v", err)
	}
	if got := d.Memristance(); got != p.RON {
		t.Errorf("w=1 memristance = %v, want RON = %v", got, p.RON)
	}
	if err := d.SetState(0.5); err != nil {
		t.Fatalf("SetState: %v", err)
	}
	want := p.ROFF - 0.5*(p.ROFF-p.RON)
	if got := d.Memristance(); math.Abs(got-want) > 1e-9 {
		t.Errorf("w=0.5 memristance = %v, want %v", got, want)
	}
}

func TestSetStateValidation(t *testing.T) {
	d := newDefaultDevice(t)
	for _, w := range []float64{-0.1, 1.1, math.NaN()} {
		if err := d.SetState(w); !errors.Is(err, ErrInvalidParams) {
			t.Errorf("SetState(%v) = %v, want ErrInvalidParams", w, err)
		}
	}
}

func TestReadSubThresholdDoesNotDisturb(t *testing.T) {
	d := newDefaultDevice(t)
	if err := d.SetState(0.3); err != nil {
		t.Fatalf("SetState: %v", err)
	}
	before := d.State()
	v := d.Params().Vth * 0.9
	i, err := d.Read(v)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	wantI := v * d.Conductance()
	if math.Abs(i-wantI) > 1e-15 {
		t.Errorf("Read current = %v, want %v", i, wantI)
	}
	if d.State() != before {
		t.Errorf("read disturbed state: %v -> %v", before, d.State())
	}
}

func TestReadAboveThresholdRejected(t *testing.T) {
	d := newDefaultDevice(t)
	if _, err := d.Read(d.Params().Vth * 1.5); err == nil {
		t.Error("Read above threshold succeeded, want error")
	}
}

func TestApplyPulseSubThresholdNoOp(t *testing.T) {
	d := newDefaultDevice(t)
	if err := d.SetState(0.4); err != nil {
		t.Fatalf("SetState: %v", err)
	}
	// Half-select voltage must not disturb: this is the Vdd/2 write scheme.
	d.ApplyPulse(d.Params().Vdd / 2)
	d.ApplyPulse(-d.Params().Vdd / 2)
	if d.State() != 0.4 {
		t.Errorf("half-select pulse disturbed state: %v", d.State())
	}
}

func TestApplyPulseMovesState(t *testing.T) {
	d := newDefaultDevice(t)
	if err := d.SetState(0.5); err != nil {
		t.Fatalf("SetState: %v", err)
	}
	d.ApplyPulse(d.Params().Vdd)
	if d.State() <= 0.5 {
		t.Errorf("positive pulse did not increase state: %v", d.State())
	}
	up := d.State()
	d.ApplyPulse(-d.Params().Vdd)
	if d.State() >= up {
		t.Errorf("negative pulse did not decrease state: %v", d.State())
	}
}

func TestApplyPulseClamps(t *testing.T) {
	d := newDefaultDevice(t)
	for i := 0; i < 100_000; i++ {
		d.ApplyPulse(d.Params().Vdd)
		if d.State() >= 1 {
			break
		}
	}
	if d.State() != 1 {
		t.Fatalf("state did not saturate at 1: %v", d.State())
	}
	d.ApplyPulse(d.Params().Vdd)
	if d.State() != 1 {
		t.Errorf("state exceeded 1: %v", d.State())
	}
}

func TestProgramConductance(t *testing.T) {
	d := newDefaultDevice(t)
	p := d.Params()
	target := (p.GMin() + p.GMax()) / 7
	pulses, err := d.ProgramConductance(target, 1e-3)
	if err != nil {
		t.Fatalf("ProgramConductance: %v", err)
	}
	if pulses == 0 {
		t.Error("programming from fresh state used 0 pulses")
	}
	if got := d.Conductance(); math.Abs(got-target) > 1e-3*target {
		t.Errorf("programmed g = %v, want %v ± 0.1%%", got, target)
	}
}

func TestProgramConductanceOutOfRange(t *testing.T) {
	d := newDefaultDevice(t)
	p := d.Params()
	if _, err := d.ProgramConductance(p.GMax()*2, 0); !errors.Is(err, ErrTargetRange) {
		t.Errorf("above range: %v, want ErrTargetRange", err)
	}
	if _, err := d.ProgramConductance(p.GMin()/2, 0); !errors.Is(err, ErrTargetRange) {
		t.Errorf("below range: %v, want ErrTargetRange", err)
	}
}

func TestProgramConductanceIdempotent(t *testing.T) {
	d := newDefaultDevice(t)
	p := d.Params()
	target := (p.GMin() + p.GMax()) / 3
	if _, err := d.ProgramConductance(target, 1e-3); err != nil {
		t.Fatalf("first program: %v", err)
	}
	pulses, err := d.ProgramConductance(target, 1e-3)
	if err != nil {
		t.Fatalf("second program: %v", err)
	}
	if pulses != 0 {
		t.Errorf("re-programming to same target used %d pulses, want 0", pulses)
	}
}

func TestStateForConductanceRoundTrip(t *testing.T) {
	p := DefaultParams()
	f := func(raw uint16) bool {
		// Sweep conductances across the programmable range.
		frac := float64(raw) / math.MaxUint16
		g := p.GMin() + frac*(p.GMax()-p.GMin())
		w := p.StateForConductance(g)
		if w < 0 || w > 1 {
			return false
		}
		m := p.ROFF - w*(p.ROFF-p.RON)
		return math.Abs(1/m-g) <= 1e-9*g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStateForConductanceClamps(t *testing.T) {
	p := DefaultParams()
	if got := p.StateForConductance(p.GMin() / 10); got != 0 {
		t.Errorf("below range w = %v, want 0", got)
	}
	if got := p.StateForConductance(p.GMax() * 10); got != 1 {
		t.Errorf("above range w = %v, want 1", got)
	}
}

func TestGMinGMax(t *testing.T) {
	p := DefaultParams()
	if p.GMin() != 1/p.ROFF {
		t.Errorf("GMin = %v, want %v", p.GMin(), 1/p.ROFF)
	}
	if p.GMax() != 1/p.RON {
		t.Errorf("GMax = %v, want %v", p.GMax(), 1/p.RON)
	}
	if p.GMin() >= p.GMax() {
		t.Error("GMin ≥ GMax")
	}
}

func TestDefaultTimingPositive(t *testing.T) {
	tm := DefaultTiming()
	if tm.WriteLatencyPerCell <= 0 || tm.AnalogSettleLatency <= 0 || tm.AmplifierLatency <= 0 {
		t.Error("non-positive latency constant")
	}
	if tm.WriteEnergyPerCell <= 0 || tm.AnalogOpEnergy <= 0 || tm.AmplifierEnergyPerElement <= 0 {
		t.Error("non-positive energy constant")
	}
}
