package memristor

import (
	"errors"
	"math"
	"testing"
)

func TestFaultModelValidate(t *testing.T) {
	bad := []FaultModel{
		{StuckOnDensity: -0.1},
		{StuckOnDensity: 1},
		{StuckOffDensity: -0.01},
		{StuckOffDensity: math.NaN()},
		{StuckOnDensity: 0.6, StuckOffDensity: 0.5},
		{WriteNoise: -0.2},
		{WriteNoise: 1},
		{DriftPerCycle: -0.1},
		{DriftPerCycle: 1.5},
	}
	for i, fm := range bad {
		if err := fm.Validate(); !errors.Is(err, ErrBadFaultModel) {
			t.Errorf("case %d (%+v): err = %v, want ErrBadFaultModel", i, fm, err)
		}
	}
	good := []FaultModel{
		{},
		{StuckOnDensity: 0.01, StuckOffDensity: 0.01, Seed: 3},
		{WriteNoise: 0.05, DriftPerCycle: 0.001},
	}
	for i, fm := range good {
		if err := fm.Validate(); err != nil {
			t.Errorf("case %d (%+v): unexpected error %v", i, fm, err)
		}
	}
}

// TestFaultAtDeterministic pins the stateless-placement contract: equal
// (Seed, i, j) always classifies equally, across calls and across values.
func TestFaultAtDeterministic(t *testing.T) {
	a := FaultModel{StuckOnDensity: 0.05, StuckOffDensity: 0.05, Seed: 42}
	b := FaultModel{StuckOnDensity: 0.05, StuckOffDensity: 0.05, Seed: 42}
	other := FaultModel{StuckOnDensity: 0.05, StuckOffDensity: 0.05, Seed: 43}
	diff := 0
	for i := 0; i < 50; i++ {
		for j := 0; j < 50; j++ {
			if a.FaultAt(i, j) != b.FaultAt(i, j) {
				t.Fatalf("placement not deterministic at (%d, %d)", i, j)
			}
			if a.FaultAt(i, j) != other.FaultAt(i, j) {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical defect maps")
	}
}

// TestFaultDensityStatistics checks the realized defect fractions on a large
// region track the configured densities.
func TestFaultDensityStatistics(t *testing.T) {
	fm := FaultModel{StuckOnDensity: 0.03, StuckOffDensity: 0.07, Seed: 7}
	const dim = 300
	on, off := fm.CountFaults(0, 0, dim, dim)
	cells := float64(dim * dim)
	if got := float64(on) / cells; math.Abs(got-0.03) > 0.005 {
		t.Errorf("stuck-on fraction %v, want ≈0.03", got)
	}
	if got := float64(off) / cells; math.Abs(got-0.07) > 0.005 {
		t.Errorf("stuck-off fraction %v, want ≈0.07", got)
	}

	// CountFaults must agree with per-cell classification.
	var on2, off2 int
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			switch fm.FaultAt(i, j) {
			case FaultStuckOn:
				on2++
			case FaultStuckOff:
				off2++
			}
		}
	}
	cOn, cOff := fm.CountFaults(0, 0, 20, 20)
	if cOn != on2 || cOff != off2 {
		t.Errorf("CountFaults = (%d, %d), per-cell tally = (%d, %d)", cOn, cOff, on2, off2)
	}
}

func TestZeroDensityNeverFaults(t *testing.T) {
	fm := FaultModel{Seed: 9}
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			if fm.FaultAt(i, j) != FaultNone {
				t.Fatalf("zero-density model reported a fault at (%d, %d)", i, j)
			}
		}
	}
}

func TestWriteFactor(t *testing.T) {
	if f := (FaultModel{Seed: 1}).WriteFactor(3, 4, 1); f != 1 {
		t.Errorf("zero-noise factor = %v, want exactly 1", f)
	}
	fm := FaultModel{WriteNoise: 0.1, Seed: 5}
	varies := false
	for n := 1; n <= 20; n++ {
		f := fm.WriteFactor(2, 3, n)
		if math.Abs(f-1) > 0.1 {
			t.Errorf("attempt %d: factor %v exceeds ±WriteNoise", n, f)
		}
		if f != fm.WriteFactor(2, 3, n) {
			t.Errorf("attempt %d: factor not deterministic", n)
		}
		if f != fm.WriteFactor(2, 3, n+1) {
			varies = true
		}
	}
	if !varies {
		t.Error("write factor constant across attempts — retries would never converge differently")
	}
}

func TestFaultKindString(t *testing.T) {
	cases := map[FaultKind]string{
		FaultNone:     "none",
		FaultStuckOff: "stuck-off",
		FaultStuckOn:  "stuck-on",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if FaultKind(9).String() == "" {
		t.Error("unknown kind String empty")
	}
}
