package memristor

import "time"

// Timing collects the per-operation latency and energy constants of the
// memristor technology, in the spirit of the Yakopcic-model-based estimates
// the paper uses ([23]). The constants below are calibrated to the TiO₂
// multilevel-write device class; DESIGN.md documents the calibration.
type Timing struct {
	// WriteLatencyPerCell is the average time to program one crossbar cell
	// to a multilevel conductance target (several pulses plus verify).
	WriteLatencyPerCell time.Duration
	// WriteEnergyPerCell is the average energy for the same operation.
	WriteEnergyPerCell float64 // joules
	// AnalogSettleLatency is the time for a crossbar mat-vec or linear
	// solve to settle to steady state — the O(1) analog operation.
	AnalogSettleLatency time.Duration
	// AnalogOpEnergy is the energy of one analog crossbar operation
	// (driver + array + sense).
	AnalogOpEnergy float64 // joules
	// AmplifierLatency is the latency of one summing-amplifier vector
	// update (s ← s + θΔs, subtraction in Eq. 15a).
	AmplifierLatency time.Duration
	// AmplifierEnergyPerElement is the summing-amplifier energy per vector
	// element updated.
	AmplifierEnergyPerElement float64 // joules
	// StaticPowerWatts is the peripheral power draw (ADC banks, drivers,
	// CMOS controller) while a solve is in flight. The paper's no-variation
	// headline point (0.9 J over 78 ms at m = 1024) implies ≈11.5 W.
	StaticPowerWatts float64
}

// DefaultTiming returns the calibrated constants used by the paper-scale
// estimates (see DESIGN.md "Calibrated device constants").
func DefaultTiming() Timing {
	return Timing{
		WriteLatencyPerCell:       235 * time.Nanosecond,
		WriteEnergyPerCell:        12e-9, // 12 nJ
		AnalogSettleLatency:       120 * time.Nanosecond,
		AnalogOpEnergy:            60e-9, // 60 nJ per op
		AmplifierLatency:          60 * time.Nanosecond,
		AmplifierEnergyPerElement: 0.8e-9,
		StaticPowerWatts:          11.5,
	}
}
