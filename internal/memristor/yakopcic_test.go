package memristor

import (
	"errors"
	"math"
	"testing"
)

func newYak(t *testing.T, x0 float64) *YakopcicDevice {
	t.Helper()
	d, err := NewYakopcicDevice(DefaultYakopcicParams(), x0)
	if err != nil {
		t.Fatalf("NewYakopcicDevice: %v", err)
	}
	return d
}

func TestYakopcicDefaultsValid(t *testing.T) {
	if err := DefaultYakopcicParams().Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
}

func TestYakopcicValidation(t *testing.T) {
	base := DefaultYakopcicParams()
	tests := []struct {
		name   string
		mutate func(*YakopcicParams)
	}{
		{"zero a1", func(p *YakopcicParams) { p.A1 = 0 }},
		{"zero b", func(p *YakopcicParams) { p.B = 0 }},
		{"zero vp", func(p *YakopcicParams) { p.Vp = 0 }},
		{"zero ap", func(p *YakopcicParams) { p.Ap = 0 }},
		{"bad xp", func(p *YakopcicParams) { p.Xp = 1.5 }},
		{"bad eta", func(p *YakopcicParams) { p.Eta = 0.5 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := base
			tc.mutate(&p)
			if err := p.Validate(); !errors.Is(err, ErrInvalidParams) {
				t.Errorf("Validate = %v, want ErrInvalidParams", err)
			}
		})
	}
	if _, err := NewYakopcicDevice(base, 1.5); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("bad x0: %v", err)
	}
}

func TestYakopcicCurrentNonlinear(t *testing.T) {
	d := newYak(t, 0.5)
	i1 := d.Current(0.5)
	i2 := d.Current(1.0)
	if i1 <= 0 || i2 <= 0 {
		t.Fatalf("positive voltages gave currents %v, %v", i1, i2)
	}
	// sinh superlinearity: doubling V more than doubles I.
	if i2 <= 2*i1 {
		t.Errorf("I(1.0)=%v not superlinear vs I(0.5)=%v", i2, i1)
	}
	// Odd symmetry with equal amplitudes.
	if math.Abs(d.Current(-0.5)+i1) > 1e-15 {
		t.Errorf("I(-0.5) = %v, want %v", d.Current(-0.5), -i1)
	}
}

func TestYakopcicCurrentScalesWithState(t *testing.T) {
	lo := newYak(t, 0.1)
	hi := newYak(t, 0.9)
	if hi.Current(0.3) <= lo.Current(0.3) {
		t.Error("higher state should conduct more")
	}
	if lo.Conductance() >= hi.Conductance() {
		t.Error("conductance should grow with state")
	}
}

func TestYakopcicSubThresholdNoMotion(t *testing.T) {
	p := DefaultYakopcicParams()
	d := newYak(t, 0.4)
	d.Step(p.Vp*0.9, 1e-3)
	d.Step(-p.Vn*0.9, 1e-3)
	if d.State() != 0.4 {
		t.Errorf("sub-threshold voltage moved state to %v", d.State())
	}
}

func TestYakopcicStateMotionDirections(t *testing.T) {
	d := newYak(t, 0.4)
	d.Step(0.5, 1e-4)
	if d.State() <= 0.4 {
		t.Errorf("positive over-threshold voltage did not raise state: %v", d.State())
	}
	up := d.State()
	d.Step(-0.5, 1e-4)
	if d.State() >= up {
		t.Errorf("negative over-threshold voltage did not lower state: %v", d.State())
	}
}

func TestYakopcicStateBounded(t *testing.T) {
	d := newYak(t, 0.5)
	d.Step(1.5, 1) // a huge pulse
	if d.State() < 0 || d.State() > 1 {
		t.Fatalf("state escaped [0,1]: %v", d.State())
	}
	d.Step(-1.5, 1)
	if d.State() < 0 || d.State() > 1 {
		t.Fatalf("state escaped [0,1]: %v", d.State())
	}
}

func TestYakopcicMotionFasterAtHigherVoltage(t *testing.T) {
	a := newYak(t, 0.1)
	b := newYak(t, 0.1)
	a.Step(0.3, 1e-4)
	b.Step(0.6, 1e-4)
	if b.State() <= a.State() {
		t.Errorf("higher voltage moved less: %v vs %v", b.State(), a.State())
	}
}

func TestYakopcicWriteLatency(t *testing.T) {
	p := DefaultYakopcicParams()
	lat := p.WriteLatency(0.1, 0.2, 1.0)
	if math.IsInf(lat, 0) || lat <= 0 {
		t.Fatalf("write latency = %v", lat)
	}
	// Larger state moves take longer.
	lat2 := p.WriteLatency(0.1, 0.25, 1.0)
	if lat2 <= lat {
		t.Errorf("larger move faster: %v vs %v", lat2, lat)
	}
	// Higher voltage is faster.
	lat3 := p.WriteLatency(0.1, 0.2, 1.5)
	if lat3 >= lat {
		t.Errorf("higher voltage slower: %v vs %v", lat3, lat)
	}
	// Wrong direction is impossible.
	if !math.IsInf(p.WriteLatency(0.2, 0.1, 1.0), 1) {
		t.Error("downward move under positive voltage should be impossible")
	}
	// Sub-threshold writes never finish.
	if !math.IsInf(p.WriteLatency(0.1, 0.2, 0.1), 1) {
		t.Error("sub-threshold write should be impossible")
	}
}

func TestYakopcicWriteLatencyConsistentWithTimingConstants(t *testing.T) {
	// The calibrated WriteLatencyPerCell (≈235 ns) should be within a
	// couple orders of magnitude of a representative Yakopcic write at
	// programming voltage — a coarse cross-check tying the cost model to
	// the device physics.
	p := DefaultYakopcicParams()
	lat := p.WriteLatency(0.3, 0.4, 1.8)
	if math.IsInf(lat, 0) {
		t.Fatal("representative write impossible")
	}
	ratio := lat / DefaultTiming().WriteLatencyPerCell.Seconds()
	if ratio < 1e-3 || ratio > 1e3 {
		t.Errorf("device write %.3g s vs calibrated %.3g s: ratio %g beyond sanity band",
			lat, DefaultTiming().WriteLatencyPerCell.Seconds(), ratio)
	}
}
