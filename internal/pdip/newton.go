package pdip

import (
	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
)

// solveNewtonFull assembles and solves the full Newton system of Eq. 12:
//
//	⎡ A   0   I   0 ⎤ ⎡Δx⎤   ⎡ b − A·x − w  ⎤
//	⎢ 0   Aᵀ  0  −I ⎥ ⎢Δy⎥ = ⎢ c − Aᵀ·y + z ⎥
//	⎢ Z   0   0   X ⎥ ⎢Δw⎥   ⎢ µ1 − XZe     ⎥
//	⎣ 0   W   Y   0 ⎦ ⎣Δz⎦   ⎣ µ1 − YWe     ⎦
//
// with dense LU — the O(N³)-per-iteration software baseline of §3.5.
func solveNewtonFull(p *lp.Problem, x, y, w, z, rho, sigma linalg.Vector, mu float64) (dx, dy, dw, dz linalg.Vector, err error) {
	n, m := p.NumVariables(), p.NumConstraints()
	size := 2 * (n + m)
	big := linalg.NewMatrix(size, size)

	// Block row 1: A·Δx + I·Δw = ρ.
	if err := big.SetSubmatrix(0, 0, p.A); err != nil {
		return nil, nil, nil, nil, err
	}
	for i := 0; i < m; i++ {
		big.Set(i, n+m+i, 1)
	}
	// Block row 2: Aᵀ·Δy − I·Δz = σ.
	if err := big.SetSubmatrix(m, n, p.A.Transpose()); err != nil {
		return nil, nil, nil, nil, err
	}
	for i := 0; i < n; i++ {
		big.Set(m+i, n+2*m+i, -1)
	}
	// Block row 3: Z·Δx + X·Δz = µ1 − XZe.
	for i := 0; i < n; i++ {
		big.Set(m+n+i, i, z[i])
		big.Set(m+n+i, n+2*m+i, x[i])
	}
	// Block row 4: W·Δy + Y·Δw = µ1 − YWe.
	for i := 0; i < m; i++ {
		big.Set(m+2*n+i, n+i, w[i])
		big.Set(m+2*n+i, n+m+i, y[i])
	}

	rhs := linalg.NewVector(size)
	copy(rhs[0:m], rho)
	copy(rhs[m:m+n], sigma)
	for i := 0; i < n; i++ {
		rhs[m+n+i] = mu - x[i]*z[i]
	}
	for i := 0; i < m; i++ {
		rhs[m+2*n+i] = mu - y[i]*w[i]
	}

	sol, err := linalg.SolveDense(big, rhs)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	dx = sol[0:n].Clone()
	dy = sol[n : n+m].Clone()
	dw = sol[n+m : n+2*m].Clone()
	dz = sol[n+2*m:].Clone()
	return dx, dy, dw, dz, nil
}

// solveNewtonReduced eliminates Δz and Δw from Eq. 9:
//
//	Δz = X⁻¹(µ1 − XZe) − X⁻¹Z·Δx      (from 9c)
//	Δw = Y⁻¹(µ1 − YWe) − Y⁻¹W·Δy      (from 9d)
//
// leaving the (n+m) reduced KKT system
//
//	⎡ X⁻¹Z    Aᵀ    ⎤ ⎡Δx⎤ = ⎡ σ + X⁻¹(µ1 − XZe) ⎤
//	⎣  A     −Y⁻¹W  ⎦ ⎣Δy⎦   ⎣ ρ − Y⁻¹(µ1 − YWe) ⎦
//
// solved with dense LU on the smaller matrix.
func solveNewtonReduced(p *lp.Problem, x, y, w, z, rho, sigma linalg.Vector, mu float64) (dx, dy, dw, dz linalg.Vector, err error) {
	n, m := p.NumVariables(), p.NumConstraints()
	size := n + m
	kkt := linalg.NewMatrix(size, size)

	for i := 0; i < n; i++ {
		kkt.Set(i, i, z[i]/x[i])
	}
	if err := kkt.SetSubmatrix(0, n, p.A.Transpose()); err != nil {
		return nil, nil, nil, nil, err
	}
	if err := kkt.SetSubmatrix(n, 0, p.A); err != nil {
		return nil, nil, nil, nil, err
	}
	for i := 0; i < m; i++ {
		kkt.Set(n+i, n+i, -w[i]/y[i])
	}

	rhs := linalg.NewVector(size)
	for i := 0; i < n; i++ {
		rhs[i] = sigma[i] + (mu-x[i]*z[i])/x[i]
	}
	for i := 0; i < m; i++ {
		rhs[n+i] = rho[i] - (mu-y[i]*w[i])/y[i]
	}

	sol, err := linalg.SolveDense(kkt, rhs)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	dx = sol[0:n].Clone()
	dy = sol[n:].Clone()

	dz = linalg.NewVector(n)
	for i := 0; i < n; i++ {
		dz[i] = (mu-x[i]*z[i])/x[i] - z[i]/x[i]*dx[i]
	}
	dw = linalg.NewVector(m)
	for i := 0; i < m; i++ {
		dw[i] = (mu-y[i]*w[i])/y[i] - w[i]/y[i]*dy[i]
	}
	return dx, dy, dw, dz, nil
}
