package pdip

import (
	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
)

// workspace holds the per-solver scratch storage for the Newton systems so
// repeated solves of same-shaped problems allocate (almost) nothing: the
// assembled matrix, its LU factorization buffers, the residual vectors, and
// the direction vectors are all reused across iterations and solves.
type workspace struct {
	n, m int

	rho, sigma linalg.Vector
	mat        *linalg.Matrix
	rhs        linalg.Vector
	lu         *linalg.LU
	dw, dz     linalg.Vector
}

// prepare (re)sizes the buffers for problem p and fills the static blocks of
// the Newton matrix (the A/Aᵀ/±I blocks, which do not change across
// iterations); the complementarity diagonals are refreshed per iteration by
// the solveNewton* methods.
func (ws *workspace) prepare(p *lp.Problem, backend NewtonBackend) {
	n, m := p.NumVariables(), p.NumConstraints()
	size := n + m
	if backend == NewtonFull {
		size = 2 * (n + m)
	}
	if ws.n != n || ws.m != m || ws.mat == nil || ws.mat.Rows() != size {
		ws.n, ws.m = n, m
		ws.rho = linalg.NewVector(m)
		ws.sigma = linalg.NewVector(n)
		ws.mat = linalg.NewMatrix(size, size)
		ws.rhs = linalg.NewVector(size)
		ws.lu = nil
		ws.dw = linalg.NewVector(m)
		ws.dz = linalg.NewVector(n)
	} else {
		ws.mat.Zero()
	}

	mat := ws.mat
	if backend == NewtonFull {
		// Block row 1: A·Δx + I·Δw = ρ.
		for i := 0; i < m; i++ {
			arow := p.A.RawRow(i)
			brow := mat.RawRow(i)
			copy(brow[:n], arow)
			brow[n+m+i] = 1
		}
		// Block row 2: Aᵀ·Δy − I·Δz = σ (transpose written by loops — no
		// temporary matrix).
		for j := 0; j < n; j++ {
			brow := mat.RawRow(m + j)
			for k := 0; k < m; k++ {
				brow[n+k] = p.A.At(k, j)
			}
			brow[n+2*m+j] = -1
		}
		return
	}
	// Reduced KKT: Aᵀ upper-right, A lower-left.
	for j := 0; j < n; j++ {
		brow := mat.RawRow(j)
		for k := 0; k < m; k++ {
			brow[n+k] = p.A.At(k, j)
		}
	}
	for i := 0; i < m; i++ {
		copy(mat.RawRow(n + i)[:n], p.A.RawRow(i))
	}
}

// solveNewtonFull refreshes the complementarity blocks of, and solves, the
// full Newton system of Eq. 12:
//
//	⎡ A   0   I   0 ⎤ ⎡Δx⎤   ⎡ b − A·x − w  ⎤
//	⎢ 0   Aᵀ  0  −I ⎥ ⎢Δy⎥ = ⎢ c − Aᵀ·y + z ⎥
//	⎢ Z   0   0   X ⎥ ⎢Δw⎥   ⎢ µ1 − XZe     ⎥
//	⎣ 0   W   Y   0 ⎦ ⎣Δz⎦   ⎣ µ1 − YWe     ⎦
//
// with dense LU — the O(N³)-per-iteration software baseline of §3.5. The
// returned directions are views into workspace storage, valid until the next
// solveNewton* call.
func (ws *workspace) solveNewtonFull(x, y, w, z, rho, sigma linalg.Vector, mu float64) (dx, dy, dw, dz linalg.Vector, err error) {
	n, m := ws.n, ws.m
	big := ws.mat
	// Block row 3: Z·Δx + X·Δz = µ1 − XZe.
	for i := 0; i < n; i++ {
		big.Set(m+n+i, i, z[i])
		big.Set(m+n+i, n+2*m+i, x[i])
	}
	// Block row 4: W·Δy + Y·Δw = µ1 − YWe.
	for i := 0; i < m; i++ {
		big.Set(m+2*n+i, n+i, w[i])
		big.Set(m+2*n+i, n+m+i, y[i])
	}

	rhs := ws.rhs
	copy(rhs[0:m], rho)
	copy(rhs[m:m+n], sigma)
	for i := 0; i < n; i++ {
		rhs[m+n+i] = mu - x[i]*z[i]
	}
	for i := 0; i < m; i++ {
		rhs[m+2*n+i] = mu - y[i]*w[i]
	}

	ws.lu, err = linalg.FactorizeInto(ws.lu, big)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if err := ws.lu.SolveInPlace(rhs); err != nil {
		return nil, nil, nil, nil, err
	}
	sol := rhs
	return sol[0:n], sol[n : n+m], sol[n+m : n+2*m], sol[n+2*m:], nil
}

// solveNewtonReduced eliminates Δz and Δw from Eq. 9:
//
//	Δz = X⁻¹(µ1 − XZe) − X⁻¹Z·Δx      (from 9c)
//	Δw = Y⁻¹(µ1 − YWe) − Y⁻¹W·Δy      (from 9d)
//
// leaving the (n+m) reduced KKT system
//
//	⎡ X⁻¹Z    Aᵀ    ⎤ ⎡Δx⎤ = ⎡ σ + X⁻¹(µ1 − XZe) ⎤
//	⎣  A     −Y⁻¹W  ⎦ ⎣Δy⎦   ⎣ ρ − Y⁻¹(µ1 − YWe) ⎦
//
// solved with dense LU on the smaller matrix. The returned directions are
// views into workspace storage, valid until the next solveNewton* call.
func (ws *workspace) solveNewtonReduced(x, y, w, z, rho, sigma linalg.Vector, mu float64) (dx, dy, dw, dz linalg.Vector, err error) {
	n, m := ws.n, ws.m
	kkt := ws.mat

	for i := 0; i < n; i++ {
		kkt.Set(i, i, z[i]/x[i])
	}
	for i := 0; i < m; i++ {
		kkt.Set(n+i, n+i, -w[i]/y[i])
	}

	rhs := ws.rhs
	for i := 0; i < n; i++ {
		rhs[i] = sigma[i] + (mu-x[i]*z[i])/x[i]
	}
	for i := 0; i < m; i++ {
		rhs[n+i] = rho[i] - (mu-y[i]*w[i])/y[i]
	}

	ws.lu, err = linalg.FactorizeInto(ws.lu, kkt)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if err := ws.lu.SolveInPlace(rhs); err != nil {
		return nil, nil, nil, nil, err
	}
	sol := rhs
	dx = sol[0:n]
	dy = sol[n:]

	dz = ws.dz
	for i := 0; i < n; i++ {
		dz[i] = (mu-x[i]*z[i])/x[i] - z[i]/x[i]*dx[i]
	}
	dw = ws.dw
	for i := 0; i < m; i++ {
		dw[i] = (mu-y[i]*w[i])/y[i] - w[i]/y[i]*dy[i]
	}
	return dx, dy, dw, dz, nil
}
