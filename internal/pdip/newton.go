package pdip

import (
	"fmt"

	"github.com/memlp/memlp/internal/cone"
	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
)

// workspace holds the per-solver scratch storage for the Newton systems so
// repeated solves of same-shaped problems allocate (almost) nothing: the
// assembled matrix, its LU factorization buffers, the residual vectors, and
// the direction vectors are all reused across iterations and solves.
type workspace struct {
	n, m int

	rho, sigma linalg.Vector
	mat        *linalg.Matrix
	rhs        linalg.Vector
	// lu factorizes the full (unsymmetric) Eq. 12 system; ldlt factorizes
	// the symmetric quasi-definite reduced KKT system without pivoting —
	// half the flops and a static sparsity pattern (see solveNewtonReduced).
	lu     *linalg.LU
	ldlt   *linalg.LDLT
	refine linalg.Vector // 2(n+m) scratch for one LDLᵀ refinement step
	dw, dz linalg.Vector

	// Conic state, nil/empty for pure LPs: the second-order cone blocks of
	// the constraint rows, a per-row block index (−1 for orthant rows), one
	// NT scaling per block, and two length-m scratch vectors for the
	// complementarity residual µe − λ∘λ and its P⁻¹ image.
	blocks   []cone.Block
	socRow   []int
	scalings []*cone.Scaling
	coneRc   linalg.Vector
	conePinv linalg.Vector
}

// prepareCones (re)builds the conic bookkeeping for p; called by prepare.
func (ws *workspace) prepareCones(p *lp.Problem) {
	ws.blocks = p.SOCBlocks()
	ws.socRow = nil
	ws.scalings = nil
	if len(ws.blocks) == 0 {
		return
	}
	m := ws.m
	ws.socRow = make([]int, m)
	for i := range ws.socRow {
		ws.socRow[i] = -1
	}
	for k, blk := range ws.blocks {
		ws.scalings = append(ws.scalings, cone.NewScaling(blk.Dim))
		for i := 0; i < blk.Dim; i++ {
			ws.socRow[blk.Start+i] = k
		}
	}
	ws.coneRc = linalg.NewVector(m)
	ws.conePinv = linalg.NewVector(m)
}

// updateScalings refreshes every block's NT scaling from the current (w, y)
// iterate. It reports false when a block has lost interiority, which the
// caller must surface as a numerical failure.
func (ws *workspace) updateScalings(w, y linalg.Vector) bool {
	for k, blk := range ws.blocks {
		end := blk.Start + blk.Dim
		if !ws.scalings[k].Update(w[blk.Start:end], y[blk.Start:end]) {
			return false
		}
	}
	return true
}

// coneResiduals fills coneRc with the centered complementarity residual
// µe − λ∘λ on the cone rows (e is the Jordan identity: 1 on each block's
// axis row, 0 on tail rows).
func (ws *workspace) coneResiduals(mu float64) {
	for k, blk := range ws.blocks {
		rc := ws.coneRc[blk.Start : blk.Start+blk.Dim]
		ws.scalings[k].LambdaSq(rc)
		rc[0] = mu - rc[0]
		for i := 1; i < blk.Dim; i++ {
			rc[i] = -rc[i]
		}
	}
}

// errConeScaling wraps linalg.ErrSingular so callers map a degenerate NT
// scaling onto the same numerical-failure path as a singular Newton matrix.
var errConeScaling = fmt.Errorf("%w: degenerate cone scaling", linalg.ErrSingular)

// prepare (re)sizes the buffers for problem p and fills the static blocks of
// the Newton matrix (the A/Aᵀ/±I blocks, which do not change across
// iterations); the complementarity diagonals are refreshed per iteration by
// the solveNewton* methods.
func (ws *workspace) prepare(p *lp.Problem, backend NewtonBackend) {
	n, m := p.NumVariables(), p.NumConstraints()
	size := n + m
	if backend == NewtonFull {
		size = 2 * (n + m)
	}
	if ws.n != n || ws.m != m || ws.mat == nil || ws.mat.Rows() != size {
		ws.n, ws.m = n, m
		ws.rho = linalg.NewVector(m)
		ws.sigma = linalg.NewVector(n)
		ws.mat = linalg.NewMatrix(size, size)
		ws.rhs = linalg.NewVector(size)
		ws.lu = nil
		ws.ldlt = nil
		ws.refine = linalg.NewVector(2 * (n + m))
		ws.dw = linalg.NewVector(m)
		ws.dz = linalg.NewVector(n)
	} else {
		ws.mat.Zero()
	}
	ws.prepareCones(p)

	mat := ws.mat
	if backend == NewtonFull {
		// Block row 1: A·Δx + I·Δw = ρ.
		for i := 0; i < m; i++ {
			arow := p.A.RawRow(i)
			brow := mat.RawRow(i)
			copy(brow[:n], arow)
			brow[n+m+i] = 1
		}
		// Block row 2: Aᵀ·Δy − I·Δz = σ (transpose written by loops — no
		// temporary matrix).
		for j := 0; j < n; j++ {
			brow := mat.RawRow(m + j)
			for k := 0; k < m; k++ {
				brow[n+k] = p.A.At(k, j)
			}
			brow[n+2*m+j] = -1
		}
		return
	}
	// Reduced KKT: Aᵀ upper-right, A lower-left.
	for j := 0; j < n; j++ {
		brow := mat.RawRow(j)
		for k := 0; k < m; k++ {
			brow[n+k] = p.A.At(k, j)
		}
	}
	for i := 0; i < m; i++ {
		copy(mat.RawRow(n + i)[:n], p.A.RawRow(i))
	}
}

// solveNewtonFull refreshes the complementarity blocks of, and solves, the
// full Newton system of Eq. 12:
//
//	⎡ A   0   I   0 ⎤ ⎡Δx⎤   ⎡ b − A·x − w  ⎤
//	⎢ 0   Aᵀ  0  −I ⎥ ⎢Δy⎥ = ⎢ c − Aᵀ·y + z ⎥
//	⎢ Z   0   0   X ⎥ ⎢Δw⎥   ⎢ µ1 − XZe     ⎥
//	⎣ 0   W   Y   0 ⎦ ⎣Δz⎦   ⎣ µ1 − YWe     ⎦
//
// with dense LU — the O(N³)-per-iteration software baseline of §3.5. The
// returned directions are views into workspace storage, valid until the next
// solveNewton* call.
func (ws *workspace) solveNewtonFull(x, y, w, z, rho, sigma linalg.Vector, mu float64) (dx, dy, dw, dz linalg.Vector, err error) {
	n, m := ws.n, ws.m
	big := ws.mat
	// Block row 3: Z·Δx + X·Δz = µ1 − XZe.
	for i := 0; i < n; i++ {
		big.Set(m+n+i, i, z[i])
		big.Set(m+n+i, n+2*m+i, x[i])
	}
	// Block row 4, orthant rows: W·Δy + Y·Δw = µ1 − YWe. Cone rows carry
	// the NT-scaled linearization instead: P·Δw + Q·Δy = µe − λ∘λ, with the
	// dense d×d blocks P = Arw(λ)W⁻¹ and Q = Arw(λ)W replacing the scalar
	// diagonals (the d = 1 degenerate case is exactly P = y, Q = w).
	for i := 0; i < m; i++ {
		if ws.socRow != nil && ws.socRow[i] >= 0 {
			continue
		}
		big.Set(m+2*n+i, n+i, w[i])
		big.Set(m+2*n+i, n+m+i, y[i])
	}
	for k, blk := range ws.blocks {
		sc, d := ws.scalings[k], blk.Dim
		for i := 0; i < d; i++ {
			row := big.RawRow(m + 2*n + blk.Start + i)
			for j := 0; j < d; j++ {
				row[n+blk.Start+j] = sc.Q[i*d+j]
				row[n+m+blk.Start+j] = sc.P[i*d+j]
			}
		}
	}

	rhs := ws.rhs
	copy(rhs[0:m], rho)
	copy(rhs[m:m+n], sigma)
	for i := 0; i < n; i++ {
		rhs[m+n+i] = mu - x[i]*z[i]
	}
	for i := 0; i < m; i++ {
		if ws.socRow != nil && ws.socRow[i] >= 0 {
			continue
		}
		rhs[m+2*n+i] = mu - y[i]*w[i]
	}
	if len(ws.blocks) > 0 {
		ws.coneResiduals(mu)
		for _, blk := range ws.blocks {
			for i := 0; i < blk.Dim; i++ {
				rhs[m+2*n+blk.Start+i] = ws.coneRc[blk.Start+i]
			}
		}
	}

	ws.lu, err = linalg.FactorizeInto(ws.lu, big)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if err := ws.lu.SolveInPlace(rhs); err != nil {
		return nil, nil, nil, nil, err
	}
	sol := rhs
	return sol[0:n], sol[n : n+m], sol[n+m : n+2*m], sol[n+2*m:], nil
}

// solveNewtonReduced eliminates Δz and Δw from Eq. 9:
//
//	Δz = X⁻¹(µ1 − XZe) − X⁻¹Z·Δx      (from 9c)
//	Δw = Y⁻¹(µ1 − YWe) − Y⁻¹W·Δy      (from 9d)
//
// leaving the (n+m) reduced KKT system
//
//	⎡ X⁻¹Z    Aᵀ    ⎤ ⎡Δx⎤ = ⎡ σ + X⁻¹(µ1 − XZe) ⎤
//	⎣  A     −Y⁻¹W  ⎦ ⎣Δy⎦   ⎣ ρ − Y⁻¹(µ1 − YWe) ⎦
//
// The reduced matrix is symmetric quasi-definite — positive-definite X⁻¹Z
// block, negative-definite −Y⁻¹W/−W² block — so it is solved with a
// pivot-free LDLᵀ instead of dense LU: half the flops, no pivot search, and
// a static sparsity pattern that lets the factorization skip the structural
// zeros of the diagonal blocks. The returned directions are views into
// workspace storage, valid until the next solveNewton* call.
// For cone rows the same elimination runs through the NT blocks: from
// P·Δw + Q·Δy = µe − λ∘λ,
//
//	Δw = P⁻¹(µe − λ∘λ) − W²·Δy      (P⁻¹Q = W²)
//
// so row block (n+blk, n+blk) carries the dense −W² in place of the scalar
// −Y⁻¹W diagonal and the rhs subtracts P⁻¹(µe − λ∘λ).
func (ws *workspace) solveNewtonReduced(x, y, w, z, rho, sigma linalg.Vector, mu float64) (dx, dy, dw, dz linalg.Vector, err error) {
	n, m := ws.n, ws.m
	kkt := ws.mat

	for i := 0; i < n; i++ {
		kkt.Set(i, i, z[i]/x[i])
	}
	for i := 0; i < m; i++ {
		if ws.socRow != nil && ws.socRow[i] >= 0 {
			continue
		}
		kkt.Set(n+i, n+i, -w[i]/y[i])
	}
	for k, blk := range ws.blocks {
		sc, d := ws.scalings[k], blk.Dim
		for i := 0; i < d; i++ {
			row := kkt.RawRow(n + blk.Start + i)
			for j := 0; j < d; j++ {
				row[n+blk.Start+j] = -sc.Wsq[i*d+j]
			}
		}
	}

	rhs := ws.rhs
	for i := 0; i < n; i++ {
		rhs[i] = sigma[i] + (mu-x[i]*z[i])/x[i]
	}
	for i := 0; i < m; i++ {
		if ws.socRow != nil && ws.socRow[i] >= 0 {
			continue
		}
		rhs[n+i] = rho[i] - (mu-y[i]*w[i])/y[i]
	}
	if len(ws.blocks) > 0 {
		ws.coneResiduals(mu)
		for k, blk := range ws.blocks {
			end := blk.Start + blk.Dim
			if !ws.scalings[k].SolveP(ws.conePinv[blk.Start:end], ws.coneRc[blk.Start:end]) {
				return nil, nil, nil, nil, errConeScaling
			}
			for i := blk.Start; i < end; i++ {
				rhs[n+i] = rho[i] - ws.conePinv[i]
			}
		}
	}

	ws.ldlt, err = linalg.FactorizeLDLTInto(ws.ldlt, kkt)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	// Solve with one refinement step against the intact kkt matrix: the
	// pivot-free factorization loses accuracy exactly when the
	// complementarity diagonals span many orders of magnitude — late
	// iterations, and in particular the diverging iterates of an infeasible
	// instance, where a garbage Newton direction would mask the y-blowup
	// certificate. When the refinement ratio says the correction itself is as
	// large as the solution (cond(K) past 1/ε, refinement cannot converge),
	// fall back to partially-pivoted LU on the same matrix for this iteration
	// only: the hot path of a well-conditioned solve never pays for it.
	ratio, err := ws.ldlt.SolveRefineInPlace(kkt, rhs, ws.refine)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if ratio >= 0.5 {
		copy(rhs, ws.refine[:n+m])
		ws.lu, err = linalg.FactorizeInto(ws.lu, kkt)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		if err := ws.lu.SolveInPlace(rhs); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	sol := rhs
	dx = sol[0:n]
	dy = sol[n:]

	dz = ws.dz
	for i := 0; i < n; i++ {
		dz[i] = (mu-x[i]*z[i])/x[i] - z[i]/x[i]*dx[i]
	}
	dw = ws.dw
	for i := 0; i < m; i++ {
		if ws.socRow != nil && ws.socRow[i] >= 0 {
			continue
		}
		dw[i] = (mu-y[i]*w[i])/y[i] - w[i]/y[i]*dy[i]
	}
	for k, blk := range ws.blocks {
		sc, d := ws.scalings[k], blk.Dim
		for i := 0; i < d; i++ {
			s := ws.conePinv[blk.Start+i]
			for j := 0; j < d; j++ {
				s -= sc.Wsq[i*d+j] * dy[blk.Start+j]
			}
			dw[blk.Start+i] = s
		}
	}
	return dx, dy, dw, dz, nil
}
