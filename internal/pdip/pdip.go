// Package pdip implements the software primal–dual interior-point method of
// §3.1 — the baseline the paper's crossbar solver is measured against.
//
// The primal/dual pair in slack form (Eq. 6):
//
//	max cᵀx  s.t. A·x + w = b,  x, w ≥ 0
//	min bᵀy  s.t. Aᵀ·y − z = c, y, z ≥ 0
//
// Each iteration solves the Newton system (Eq. 9) for the step directions
// (Δx, Δy, Δw, Δz), applies the damped step of Eq. 10/11, and recenters with
// the µ rule of Eq. 8 until primal infeasibility, dual infeasibility, and the
// duality gap all fall below their tolerances.
//
// Two Newton-system backends are provided:
//
//   - NewtonFull assembles the full 2(n+m) system of Eq. 12 and solves it by
//     dense LU — the O(N³)-per-iteration baseline of §3.5.
//   - NewtonReduced eliminates Δz and Δw to give an (n+m) reduced KKT system
//     — the cheaper software variant.
package pdip

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/memlp/memlp/internal/cone"
	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
	"github.com/memlp/memlp/internal/trace"
)

// NewtonBackend selects how the per-iteration Newton system is solved.
type NewtonBackend int

const (
	// NewtonFull solves the full 2(n+m) system of Eq. 12 with dense LU.
	NewtonFull NewtonBackend = iota + 1
	// NewtonReduced solves the (n+m) reduced KKT system.
	NewtonReduced
)

// String implements fmt.Stringer.
func (b NewtonBackend) String() string {
	switch b {
	case NewtonFull:
		return "full-lu"
	case NewtonReduced:
		return "reduced-kkt"
	default:
		return fmt.Sprintf("NewtonBackend(%d)", int(b))
	}
}

// Solver is the software PDIP baseline. A Solver is safe for concurrent use;
// solves serialize on an internal mutex so the Newton-system workspace (the
// assembled matrix, LU buffers, and direction vectors) can be reused across
// iterations and across solves of same-shaped problems.
type Solver struct {
	tol     lp.Tolerances
	backend NewtonBackend

	mu sync.Mutex
	ws workspace
	// warmX/warmY, when non-nil, seed subsequent solves from a prior
	// primal/dual point instead of the all-ones start (see SetWarmStart).
	warmX, warmY linalg.Vector
	// ring records the iteration trace under mu; nil when tracing is off.
	ring *trace.Ring
}

// warmStartFloor is the strict-interior safeguard for warm-started iterates:
// a converged previous solution sits on the boundary (y ≈ 0 on inactive rows,
// z ≈ 0 on basic variables), and an interior-point step from an exactly-
// boundary point stalls. Well above the iteration floor (1e-14), small enough
// to keep the seed close to the previous optimum.
const warmStartFloor = 1e-6

// SetWarmStart seeds subsequent solves from a previously computed primal/dual
// point (typically Result.X and Result.Y of an earlier solve of a nearby
// problem). The slacks are re-derived from the new problem data (w = b − A·x,
// z = Aᵀ·y − c) and the seed is clamped to the strict interior, orthant rows
// by warmStartFloor and second-order-cone rows via the cone interior clamp.
// The warm start persists across solves until replaced or cleared; passing
// nil for either vector clears it. Dimension mismatches against a subsequent
// problem fail that solve with lp.ErrInvalid; non-finite entries silently
// fall back to the cold start.
func (s *Solver) SetWarmStart(x0, y0 linalg.Vector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if x0 == nil || y0 == nil {
		s.warmX, s.warmY = nil, nil
		return
	}
	s.warmX = append(s.warmX[:0], x0...)
	s.warmY = append(s.warmY[:0], y0...)
}

// applyWarmStart overwrites the all-ones starting iterate with the stored
// warm point when one is set and usable. Callers must hold s.mu with the
// workspace prepared for p.
func (s *Solver) applyWarmStart(p *lp.Problem, x, y, w, z linalg.Vector) error {
	if s.warmX == nil || s.warmY == nil {
		return nil
	}
	if len(s.warmX) != len(x) || len(s.warmY) != len(y) {
		return fmt.Errorf("%w: warm start dimensions %d vars / %d duals, problem has %d vars / %d constraints",
			lp.ErrInvalid, len(s.warmX), len(s.warmY), len(x), len(y))
	}
	if !allFinite(s.warmX) || !allFinite(s.warmY) {
		return nil
	}
	copy(x, s.warmX)
	copy(y, s.warmY)
	// Slacks at zero residual for the NEW problem data: w = b − A·x,
	// z = Aᵀ·y − c. Dimensions are pre-checked, so the Into errors cannot
	// fire.
	_ = p.A.MatVecInto(w, x)
	for i := range w {
		w[i] = p.B[i] - w[i]
	}
	_ = p.A.MatVecTransposeInto(z, y)
	for i := range z {
		z[i] -= p.C[i]
	}
	clampFloor(x, warmStartFloor)
	clampFloor(z, warmStartFloor)
	if blocks := s.ws.blocks; len(blocks) > 0 {
		clampFloorOrthant(y, s.ws.socRow, warmStartFloor)
		clampFloorOrthant(w, s.ws.socRow, warmStartFloor)
		cone.ClampInterior(y, blocks, warmStartFloor)
		cone.ClampInterior(w, blocks, warmStartFloor)
	} else {
		clampFloor(y, warmStartFloor)
		clampFloor(w, warmStartFloor)
	}
	return nil
}

// Result reports the outcome of a solve, including per-iteration telemetry
// consumed by the performance estimator.
type Result struct {
	Status     lp.Status
	X, Y, W, Z linalg.Vector
	// Objective is cᵀx at the returned point.
	Objective float64
	// Iterations is the number of Newton steps taken.
	Iterations int
	// PrimalInfeasibility, DualInfeasibility and DualityGap are the final
	// convergence measures.
	PrimalInfeasibility float64
	DualInfeasibility   float64
	DualityGap          float64
	// ConeInfeasibility is the largest second-order-cone violation of the
	// slack b − A·x over the problem's cone blocks; always 0 for pure LPs.
	ConeInfeasibility float64
	// Trace is the recorded iteration trajectory (oldest first); non-nil
	// only when the solver was built WithTrace.
	Trace []trace.Record
}

// Option configures the solver.
type Option func(*Solver)

// WithTolerances overrides the stopping parameters.
func WithTolerances(t lp.Tolerances) Option {
	return func(s *Solver) { s.tol = t }
}

// WithBackend selects the Newton-system backend.
func WithBackend(b NewtonBackend) Option {
	return func(s *Solver) { s.backend = b }
}

// WithTrace enables per-iteration trace recording into a bounded ring of
// the given capacity (<= 0 means trace.DefaultCapacity); the trajectory is
// returned as Result.Trace.
func WithTrace(capacity int) Option {
	return func(s *Solver) { s.ring = trace.NewRing(capacity) }
}

// New returns a software PDIP solver.
func New(opts ...Option) (*Solver, error) {
	s := &Solver{tol: lp.DefaultTolerances(), backend: NewtonFull}
	for _, o := range opts {
		o(s)
	}
	s.tol = s.tol.WithDefaults()
	if err := s.tol.Validate(); err != nil {
		return nil, err
	}
	if s.backend != NewtonFull && s.backend != NewtonReduced {
		return nil, fmt.Errorf("%w: unknown backend %d", lp.ErrInvalid, int(s.backend))
	}
	return s, nil
}

// Solve runs the PDIP iteration on p.
func (s *Solver) Solve(p *lp.Problem) (*Result, error) {
	return s.SolveContext(context.Background(), p)
}

// SolveContext runs the PDIP iteration on p, honoring cancellation and
// deadlines: the context is checked once per iteration, and an interrupted
// solve returns its partial iterate with lp.StatusCanceled alongside the
// wrapped context error.
func (s *Solver) SolveContext(ctx context.Context, p *lp.Problem) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ring != nil {
		s.ring.Reset()
	}
	n, m := p.NumVariables(), p.NumConstraints()
	s.ws.prepare(p, s.backend)
	rho, sigma := s.ws.rho, s.ws.sigma

	// Arbitrary strictly positive start (§3.1: "initialized as arbitrary
	// vectors"); all-ones is the conventional choice. Cone blocks of w and
	// y start at the Jordan identity e = (1, 0, …, 0) instead — all-ones is
	// not interior to a second-order cone of dimension ≥ 2.
	x := onesVector(n)
	w := onesVector(m)
	y := onesVector(m)
	z := onesVector(n)
	blocks := s.ws.blocks
	conic := len(blocks) > 0
	nu := float64(n + m)
	if conic {
		socRows := 0
		for _, blk := range blocks {
			socRows += blk.Dim
		}
		// µ's degree: n orthant pairs on x∘z, one orthant pair per
		// orthant row, and rank 1 per second-order cone block.
		nu = float64(n + (m - socRows) + len(blocks))
		cone.InitInterior(w, blocks)
		cone.InitInterior(y, blocks)
	}
	if err := s.applyWarmStart(p, x, y, w, z); err != nil {
		return nil, err
	}

	res := &Result{Status: lp.StatusIterationLimit}
	var ctxErr error
	for iter := 1; iter <= s.tol.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			res.Status = lp.StatusCanceled
			ctxErr = fmt.Errorf("pdip: solve canceled at iteration %d: %w", iter, err)
			break
		}
		res.Iterations = iter

		if err := primalResidualInto(rho, p, x, w); err != nil { // b − A·x − w
			return nil, err
		}
		if err := dualResidualInto(sigma, p, y, z); err != nil { // c − Aᵀ·y + z
			return nil, err
		}
		gap := dualityGap(x, z, y, w)

		res.PrimalInfeasibility = rho.NormInf()
		res.DualInfeasibility = sigma.NormInf()
		res.DualityGap = gap
		if conic {
			res.ConeInfeasibility = slackConeInfeasibility(&s.ws, rho, w)
		}

		if res.PrimalInfeasibility <= s.tol.PrimalFeasTol &&
			res.DualInfeasibility <= s.tol.DualFeasTol &&
			gap <= s.tol.GapTol {
			res.Status = lp.StatusOptimal
			break
		}
		if x.NormInf() > s.tol.BlowupLimit {
			res.Status = lp.StatusUnbounded
			break
		}
		if y.NormInf() > s.tol.BlowupLimit {
			res.Status = lp.StatusInfeasible
			break
		}

		mu := s.tol.Delta * gap / nu // Eq. 8

		if conic && !s.ws.updateScalings(w, y) {
			res.Status = lp.StatusNumericalFailure
			break
		}
		var dx, dy, dw, dz linalg.Vector
		var err error
		switch s.backend {
		case NewtonFull:
			dx, dy, dw, dz, err = s.ws.solveNewtonFull(x, y, w, z, rho, sigma, mu)
		case NewtonReduced:
			dx, dy, dw, dz, err = s.ws.solveNewtonReduced(x, y, w, z, rho, sigma, mu)
		}
		if err != nil {
			if errors.Is(err, linalg.ErrSingular) {
				res.Status = lp.StatusNumericalFailure
				break
			}
			return nil, err
		}

		var theta float64
		if conic {
			theta = stepLengthConic(s.tol.StepScale, &s.ws, x, dx, y, dy, w, dw, z, dz)
		} else {
			theta = stepLength(s.tol.StepScale, [][2]linalg.Vector{
				{x, dx}, {y, dy}, {w, dw}, {z, dz},
			})
		}
		if s.ring != nil {
			s.ring.Emit(trace.Record{
				Event:               trace.EventIteration,
				Attempt:             1,
				Iteration:           iter,
				Mu:                  mu,
				DualityGap:          gap,
				PrimalInfeasibility: res.PrimalInfeasibility,
				DualInfeasibility:   res.DualInfeasibility,
				ConeInfeasibility:   res.ConeInfeasibility,
				Theta:               theta,
			})
		}
		if err := x.AxpyInPlace(theta, dx); err != nil {
			return nil, err
		}
		if err := y.AxpyInPlace(theta, dy); err != nil {
			return nil, err
		}
		if err := w.AxpyInPlace(theta, dw); err != nil {
			return nil, err
		}
		if err := z.AxpyInPlace(theta, dz); err != nil {
			return nil, err
		}
		clampPositive(x)
		clampPositive(z)
		if conic {
			clampPositiveOrthant(y, s.ws.socRow)
			clampPositiveOrthant(w, s.ws.socRow)
			cone.ClampInterior(y, blocks, 1e-14)
			cone.ClampInterior(w, blocks, 1e-14)
		} else {
			clampPositive(y)
			clampPositive(w)
		}
	}

	res.X, res.Y, res.W, res.Z = x, y, w, z
	obj, err := p.Objective(x)
	if err != nil {
		return nil, err
	}
	res.Objective = obj
	if s.ring != nil {
		s.ring.Emit(trace.Record{
			Event:               trace.EventDone,
			Status:              res.Status.String(),
			Attempt:             1,
			Iteration:           res.Iterations,
			DualityGap:          res.DualityGap,
			PrimalInfeasibility: res.PrimalInfeasibility,
			DualInfeasibility:   res.DualInfeasibility,
			ConeInfeasibility:   res.ConeInfeasibility,
			Objective:           res.Objective,
		})
		res.Trace = s.ring.Snapshot()
	}
	return res, ctxErr
}

// primalResidualInto computes b − A·x − w into dst (length m).
func primalResidualInto(dst linalg.Vector, p *lp.Problem, x, w linalg.Vector) error {
	if err := p.A.MatVecInto(dst, x); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = p.B[i] - dst[i] - w[i]
	}
	return nil
}

// dualResidualInto computes c − Aᵀ·y + z into dst (length n).
func dualResidualInto(dst linalg.Vector, p *lp.Problem, y, z linalg.Vector) error {
	if err := p.A.MatVecTransposeInto(dst, y); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = p.C[i] - dst[i] + z[i]
	}
	return nil
}

// dualityGap returns zᵀx + yᵀw.
func dualityGap(x, z, y, w linalg.Vector) float64 {
	zx, _ := z.Dot(x)
	yw, _ := y.Dot(w)
	return zx + yw
}

// stepLength implements Eq. 11: θ = r · min(1, 1/max(−Δv_i/v_i)) where the
// max runs over all components of all variable/direction pairs with Δv < 0.
func stepLength(r float64, pairs [][2]linalg.Vector) float64 {
	maxRatio := 0.0
	for _, pr := range pairs {
		v, dv := pr[0], pr[1]
		for i := range v {
			if dv[i] < 0 && v[i] > 0 {
				if ratio := -dv[i] / v[i]; ratio > maxRatio {
					maxRatio = ratio
				}
			}
		}
	}
	if maxRatio <= 1 {
		return r * 1 // full (damped) step keeps all variables positive
	}
	return r / maxRatio
}

// stepLengthConic extends the Eq. 11 ratio test to cone blocks: x and z use
// the componentwise ratio everywhere, y and w only on orthant rows, and each
// cone block contributes 1/θ_exit from the exact quadratic boundary step.
func stepLengthConic(r float64, ws *workspace, x, dx, y, dy, w, dw, z, dz linalg.Vector) float64 {
	maxRatio := 0.0
	scan := func(v, dv linalg.Vector, orthantOnly bool) {
		for i := range v {
			if orthantOnly && ws.socRow[i] >= 0 {
				continue
			}
			if dv[i] < 0 && v[i] > 0 {
				if ratio := -dv[i] / v[i]; ratio > maxRatio {
					maxRatio = ratio
				}
			}
		}
	}
	scan(x, dx, false)
	scan(z, dz, false)
	scan(y, dy, true)
	scan(w, dw, true)
	if ratio := cone.MaxStepRatio(y, dy, ws.blocks); ratio > maxRatio {
		maxRatio = ratio
	}
	if ratio := cone.MaxStepRatio(w, dw, ws.blocks); ratio > maxRatio {
		maxRatio = ratio
	}
	if maxRatio <= 1 {
		return r
	}
	return r / maxRatio
}

// slackConeInfeasibility measures the worst cone violation of the true slack
// b − A·x = ρ + w over the cone blocks, using the workspace scratch.
func slackConeInfeasibility(ws *workspace, rho, w linalg.Vector) float64 {
	var worst float64
	for _, blk := range ws.blocks {
		s := ws.conePinv[blk.Start : blk.Start+blk.Dim]
		for i := range s {
			s[i] = rho[blk.Start+i] + w[blk.Start+i]
		}
		if d := cone.Dist(s); d > worst {
			worst = d
		}
	}
	return worst
}

// clampPositive nudges non-positive entries to a tiny positive value; the
// damped step keeps variables positive in exact arithmetic, and this guards
// the X⁻¹, Y⁻¹ scalings against rounding.
func clampPositive(v linalg.Vector) {
	const floor = 1e-14
	for i, x := range v {
		if x < floor {
			v[i] = floor
		}
	}
}

// clampPositiveOrthant is clampPositive restricted to orthant rows; cone
// rows are restored by cone.ClampInterior instead (tail components of a
// second-order cone block are legitimately negative).
func clampPositiveOrthant(v linalg.Vector, socRow []int) {
	const floor = 1e-14
	for i, x := range v {
		if socRow[i] < 0 && x < floor {
			v[i] = floor
		}
	}
}

// clampFloor raises every entry of v below floor up to it (the warm-start
// analogue of clampPositive, with a caller-chosen floor).
func clampFloor(v linalg.Vector, floor float64) {
	for i, x := range v {
		if x < floor {
			v[i] = floor
		}
	}
}

// clampFloorOrthant is clampFloor restricted to orthant rows; cone rows are
// restored by cone.ClampInterior instead.
func clampFloorOrthant(v linalg.Vector, socRow []int, floor float64) {
	for i, x := range v {
		if socRow[i] < 0 && x < floor {
			v[i] = floor
		}
	}
}

func allFinite(v linalg.Vector) bool {
	for _, e := range v {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			return false
		}
	}
	return true
}

func onesVector(n int) linalg.Vector {
	v := linalg.NewVector(n)
	v.Fill(1)
	return v
}
