package pdip

import (
	"math"
	"testing"

	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
)

// socpFixture is max x₀+x₁ s.t. x₀+x₁ ≤ 5 (orthant, loose) and ‖x‖ ≤ 3
// (soc block with slack (3, −x₀, −x₁)), x ≥ 0. The cone binds: the optimum
// sits on the circle at x₀ = x₁ = 3/√2, objective 3√2 ≈ 4.243 < 5.
func socpFixture(t *testing.T) (*lp.Problem, float64) {
	t.Helper()
	a := mustMatrix(t, [][]float64{
		{1, 1},
		{0, 0},
		{1, 0},
		{0, 1},
	})
	p, err := lp.NewConic("socp-circle", linalg.VectorOf(1, 1), a,
		linalg.VectorOf(5, 3, 0, 0),
		[]lp.Cone{{Type: lp.ConeNonNeg, Dim: 1}, {Type: lp.ConeSOC, Dim: 3}})
	if err != nil {
		t.Fatalf("NewConic: %v", err)
	}
	return p, 3 * math.Sqrt2
}

func TestSolveSOCPBothBackends(t *testing.T) {
	for _, backend := range []NewtonBackend{NewtonFull, NewtonReduced} {
		t.Run(backend.String(), func(t *testing.T) {
			p, want := socpFixture(t)
			s := mustSolver(t, WithBackend(backend))
			res, err := s.Solve(p)
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if res.Status != lp.StatusOptimal {
				t.Fatalf("status = %v, want optimal (pinf=%g dinf=%g gap=%g)",
					res.Status, res.PrimalInfeasibility, res.DualInfeasibility, res.DualityGap)
			}
			if math.Abs(res.Objective-want) > 1e-4*(1+want) {
				t.Errorf("objective = %v, want %v", res.Objective, want)
			}
			if res.ConeInfeasibility > 1e-6 {
				t.Errorf("cone infeasibility %v at the optimum", res.ConeInfeasibility)
			}
			ok, err := p.IsFeasible(res.X, 1e-6)
			if err != nil || !ok {
				t.Errorf("returned point infeasible: ok=%v err=%v", ok, err)
			}
		})
	}
}

func TestSolveGeneratedSOCPs(t *testing.T) {
	for _, cfg := range []lp.SOCGenConfig{
		{GenConfig: lp.GenConfig{Constraints: 8, Seed: 3}},
		{GenConfig: lp.GenConfig{Constraints: 12, Seed: 11}, Blocks: 2, BlockDim: 3},
		{GenConfig: lp.GenConfig{Constraints: 15, Seed: 5}, Blocks: 1, BlockDim: 5},
	} {
		p, err := lp.GenerateFeasibleSOCP(cfg)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		for _, backend := range []NewtonBackend{NewtonFull, NewtonReduced} {
			s := mustSolver(t, WithBackend(backend))
			res, err := s.Solve(p)
			if err != nil {
				t.Fatalf("%s/%s: %v", p.Name, backend, err)
			}
			if res.Status != lp.StatusOptimal {
				t.Errorf("%s/%s: status = %v, want optimal", p.Name, backend, res.Status)
				continue
			}
			ok, err := p.IsFeasible(res.X, 1e-5)
			if err != nil || !ok {
				t.Errorf("%s/%s: optimal point infeasible (ok=%v err=%v)", p.Name, backend, ok, err)
			}
		}
	}
}

// TestBackendsAgreeOnSOCP pins the full and reduced systems to the same
// objective — they are algebraically the same Newton step.
func TestBackendsAgreeOnSOCP(t *testing.T) {
	p, err := lp.GenerateFeasibleSOCP(lp.SOCGenConfig{
		GenConfig: lp.GenConfig{Constraints: 10, Seed: 21}, Blocks: 1, BlockDim: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := mustSolver(t, WithBackend(NewtonFull)).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	red, err := mustSolver(t, WithBackend(NewtonReduced)).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if full.Status != lp.StatusOptimal || red.Status != lp.StatusOptimal {
		t.Fatalf("statuses %v/%v, want optimal/optimal", full.Status, red.Status)
	}
	if math.Abs(full.Objective-red.Objective) > 1e-5*(1+math.Abs(full.Objective)) {
		t.Errorf("backends disagree: full %v vs reduced %v", full.Objective, red.Objective)
	}
}

// TestConicLPDegenerateIdentical pins the conic refactor's core promise at
// the pdip layer: a pure LP with an explicit all-orthant cone list takes the
// exact same code path — bit-identical iterates — as the nil-cones LP.
func TestConicLPDegenerateIdentical(t *testing.T) {
	base, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 9, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	tagged := base.Clone()
	tagged.Cones = []lp.Cone{{Type: lp.ConeNonNeg, Dim: base.NumConstraints()}}

	for _, backend := range []NewtonBackend{NewtonFull, NewtonReduced} {
		r1, err := mustSolver(t, WithBackend(backend), WithTrace(0)).Solve(base)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := mustSolver(t, WithBackend(backend), WithTrace(0)).Solve(tagged)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Iterations != r2.Iterations || r1.Status != r2.Status {
			t.Fatalf("%s: trajectories diverge: %d/%v vs %d/%v",
				backend, r1.Iterations, r1.Status, r2.Iterations, r2.Status)
		}
		for i := range r1.X {
			if r1.X[i] != r2.X[i] {
				t.Fatalf("%s: x[%d] differs bitwise: %v vs %v", backend, i, r1.X[i], r2.X[i])
			}
		}
		if len(r1.Trace) != len(r2.Trace) {
			t.Fatalf("%s: trace lengths differ", backend)
		}
		for i := range r1.Trace {
			if r1.Trace[i] != r2.Trace[i] {
				t.Fatalf("%s: trace[%d] differs: %+v vs %+v", backend, i, r1.Trace[i], r2.Trace[i])
			}
		}
	}
}
