package pdip

import (
	"errors"
	"math"
	"testing"

	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
)

func mustMatrix(t *testing.T, rows [][]float64) *linalg.Matrix {
	t.Helper()
	m, err := linalg.MatrixFromRows(rows)
	if err != nil {
		t.Fatalf("MatrixFromRows: %v", err)
	}
	return m
}

func mustProblem(t *testing.T, name string, c linalg.Vector, a *linalg.Matrix, b linalg.Vector) *lp.Problem {
	t.Helper()
	p, err := lp.New(name, c, a, b)
	if err != nil {
		t.Fatalf("lp.New: %v", err)
	}
	return p
}

func mustSolver(t *testing.T, opts ...Option) *Solver {
	t.Helper()
	s, err := New(opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// knownLPs is a table of LPs with hand-verified optima.
func knownLPs(t *testing.T) []struct {
	name string
	p    *lp.Problem
	opt  float64
} {
	return []struct {
		name string
		p    *lp.Problem
		opt  float64
	}{
		{
			// max 3x+2y s.t. x+y ≤ 4, x+3y ≤ 6 ⇒ x=4, y=0, obj 12.
			name: "corner-optimum",
			p: mustProblem(t, "t1", linalg.VectorOf(3, 2),
				mustMatrix(t, [][]float64{{1, 1}, {1, 3}}), linalg.VectorOf(4, 6)),
			opt: 12,
		},
		{
			// max x+y s.t. x ≤ 2, y ≤ 3 ⇒ obj 5.
			name: "box",
			p: mustProblem(t, "t2", linalg.VectorOf(1, 1),
				mustMatrix(t, [][]float64{{1, 0}, {0, 1}}), linalg.VectorOf(2, 3)),
			opt: 5,
		},
		{
			// max 5x+4y+3z s.t. 2x+3y+z ≤ 5, 4x+y+2z ≤ 11, 3x+4y+2z ≤ 8
			// (Vanderbei's textbook example) ⇒ obj 13 at (2,0,1).
			name: "vanderbei",
			p: mustProblem(t, "t3", linalg.VectorOf(5, 4, 3),
				mustMatrix(t, [][]float64{{2, 3, 1}, {4, 1, 2}, {3, 4, 2}}),
				linalg.VectorOf(5, 11, 8)),
			opt: 13,
		},
		{
			// Negative coefficients: max x−y s.t. −x+y ≤ 1, x+y ≤ 3,
			// optimum at y=0, x=3 ⇒ obj 3.
			name: "negative-coeffs",
			p: mustProblem(t, "t4", linalg.VectorOf(1, -1),
				mustMatrix(t, [][]float64{{-1, 1}, {1, 1}}), linalg.VectorOf(1, 3)),
			opt: 3,
		},
	}
}

func TestSolveKnownOptima(t *testing.T) {
	for _, backend := range []NewtonBackend{NewtonFull, NewtonReduced} {
		for _, tc := range knownLPs(t) {
			t.Run(backend.String()+"/"+tc.name, func(t *testing.T) {
				s := mustSolver(t, WithBackend(backend))
				res, err := s.Solve(tc.p)
				if err != nil {
					t.Fatalf("Solve: %v", err)
				}
				if res.Status != lp.StatusOptimal {
					t.Fatalf("status = %v, want optimal (res=%+v)", res.Status, res)
				}
				if math.Abs(res.Objective-tc.opt) > 1e-4*(1+math.Abs(tc.opt)) {
					t.Errorf("objective = %v, want %v", res.Objective, tc.opt)
				}
				ok, err := tc.p.IsFeasible(res.X, 1e-6)
				if err != nil {
					t.Fatalf("IsFeasible: %v", err)
				}
				if !ok {
					t.Errorf("returned point infeasible: %v", res.X)
				}
			})
		}
	}
}

func TestBackendsAgree(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 15, Seed: seed})
		if err != nil {
			t.Fatalf("GenerateFeasible: %v", err)
		}
		full, err := mustSolver(t, WithBackend(NewtonFull)).Solve(p)
		if err != nil {
			t.Fatalf("full Solve: %v", err)
		}
		red, err := mustSolver(t, WithBackend(NewtonReduced)).Solve(p)
		if err != nil {
			t.Fatalf("reduced Solve: %v", err)
		}
		if full.Status != lp.StatusOptimal || red.Status != lp.StatusOptimal {
			t.Fatalf("seed %d: statuses %v / %v", seed, full.Status, red.Status)
		}
		if math.Abs(full.Objective-red.Objective) > 1e-4*(1+math.Abs(full.Objective)) {
			t.Errorf("seed %d: objectives differ: %v vs %v", seed, full.Objective, red.Objective)
		}
	}
}

func TestStrongDuality(t *testing.T) {
	// Solving the dual should give the negated primal optimum
	// (the dual is re-expressed as a max problem).
	p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 12, Seed: 3})
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	s := mustSolver(t)
	primal, err := s.Solve(p)
	if err != nil {
		t.Fatalf("primal Solve: %v", err)
	}
	dual, err := s.Solve(p.Dual())
	if err != nil {
		t.Fatalf("dual Solve: %v", err)
	}
	if primal.Status != lp.StatusOptimal || dual.Status != lp.StatusOptimal {
		t.Fatalf("statuses %v / %v", primal.Status, dual.Status)
	}
	if math.Abs(primal.Objective+dual.Objective) > 1e-3*(1+math.Abs(primal.Objective)) {
		t.Errorf("strong duality violated: primal %v, dual %v", primal.Objective, dual.Objective)
	}
}

func TestComplementarySlacknessAtOptimum(t *testing.T) {
	p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 9, Seed: 11})
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	res, err := mustSolver(t).Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != lp.StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	for i := range res.X {
		if prod := res.X[i] * res.Z[i]; prod > 1e-4 {
			t.Errorf("x[%d]·z[%d] = %v, want ≈0", i, i, prod)
		}
	}
	for j := range res.Y {
		if prod := res.Y[j] * res.W[j]; prod > 1e-4 {
			t.Errorf("y[%d]·w[%d] = %v, want ≈0", j, j, prod)
		}
	}
}

func TestInfeasibleDetected(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p, err := lp.GenerateInfeasible(lp.GenConfig{Constraints: 9, Seed: seed})
		if err != nil {
			t.Fatalf("GenerateInfeasible: %v", err)
		}
		res, err := mustSolver(t).Solve(p)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if res.Status != lp.StatusInfeasible {
			t.Errorf("seed %d: status = %v, want infeasible", seed, res.Status)
		}
	}
}

func TestUnboundedDetected(t *testing.T) {
	// max x s.t. −x + y ≤ 1: x can grow without bound.
	p := mustProblem(t, "unbounded", linalg.VectorOf(1, 0),
		mustMatrix(t, [][]float64{{-1, 1}}), linalg.VectorOf(1))
	res, err := mustSolver(t).Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != lp.StatusUnbounded {
		t.Errorf("status = %v, want unbounded", res.Status)
	}
}

func TestRandomFeasibleAlwaysOptimal(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 12, Seed: 100 + seed})
		if err != nil {
			t.Fatalf("GenerateFeasible: %v", err)
		}
		res, err := mustSolver(t).Solve(p)
		if err != nil {
			t.Fatalf("seed %d: Solve: %v", seed, err)
		}
		if res.Status != lp.StatusOptimal {
			t.Errorf("seed %d: status = %v, want optimal", seed, res.Status)
		}
	}
}

func TestIterationLimit(t *testing.T) {
	p := mustProblem(t, "t", linalg.VectorOf(3, 2),
		mustMatrix(t, [][]float64{{1, 1}, {1, 3}}), linalg.VectorOf(4, 6))
	s := mustSolver(t, WithTolerances(lp.Tolerances{MaxIterations: 2}))
	res, err := s.Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != lp.StatusIterationLimit {
		t.Errorf("status = %v, want iteration-limit", res.Status)
	}
	if res.Iterations != 2 {
		t.Errorf("iterations = %d, want 2", res.Iterations)
	}
}

func TestInvalidOptions(t *testing.T) {
	if _, err := New(WithBackend(NewtonBackend(9))); !errors.Is(err, lp.ErrInvalid) {
		t.Errorf("bad backend: %v, want ErrInvalid", err)
	}
	if _, err := New(WithTolerances(lp.Tolerances{Delta: 2})); !errors.Is(err, lp.ErrInvalid) {
		t.Errorf("bad delta: %v, want ErrInvalid", err)
	}
}

func TestSolveInvalidProblem(t *testing.T) {
	s := mustSolver(t)
	bad := &lp.Problem{}
	if _, err := s.Solve(bad); !errors.Is(err, lp.ErrInvalid) {
		t.Errorf("Solve(invalid) = %v, want ErrInvalid", err)
	}
}

func TestBackendString(t *testing.T) {
	if NewtonFull.String() != "full-lu" || NewtonReduced.String() != "reduced-kkt" {
		t.Error("backend String wrong")
	}
	if NewtonBackend(7).String() == "" {
		t.Error("unknown backend String empty")
	}
}

func TestIterationCountReasonable(t *testing.T) {
	// Interior-point methods converge in tens of iterations, largely
	// independent of size; make sure we are in that regime.
	p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 30, Seed: 77})
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	res, err := mustSolver(t).Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != lp.StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Iterations > 120 {
		t.Errorf("iterations = %d, want < 120", res.Iterations)
	}
}
