package serve

import (
	"bytes"
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/memlp/memlp"
)

// batchRunner executes one coalesced batch: check a solver out of the pool,
// SolveBatch, check it back in. Injected by the server so the coalescer
// stays free of pool and metrics plumbing.
type batchRunner func(ctx context.Context, probs []*memlp.Problem) ([]*memlp.Solution, error)

// coalescer folds concurrent same-matrix submissions for one (engine,
// options) key into shared SolveBatch calls. A submission's constraint
// matrix is fingerprinted and matched against a bounded canonical-matrix
// cache; on a hit the problem adopts the canonical matrix object (pointer
// identity, with element-equality confirming the hash) and joins the open
// pending batch for that fingerprint. The batch launches when its coalesce
// window expires or it reaches maxBatch members.
//
// Determinism contract: before launch the members are ordered by their
// textual serialization (Problem.WriteText bytes, ties by arrival), and
// batch indices are assigned in that order. SolveBatch derives each
// problem's noise draws from (seed, batch index), so a served result is
// bit-identical to a direct SolveBatch of the same problems in the same
// canonical order — regardless of request arrival interleaving.
type coalescer struct {
	window     time.Duration
	maxBatch   int
	cacheLimit int
	run        batchRunner
	observe    func(size int) // batch-size metrics hook; may be nil
	baseCtx    context.Context

	mu      sync.Mutex
	canon   map[uint64]*memlp.Problem //memlp:guardedby mu
	pending map[uint64]*pendingBatch  //memlp:guardedby mu
}

// pendingBatch is one open (or launched) same-matrix batch.
type pendingBatch struct {
	fingerprint uint64
	members     []*waiter
	timer       *time.Timer
	launched    bool
	done        chan struct{}
}

// waiter is one request's seat in a pending batch; sol/err/index/size are
// valid once done closes. A caller whose own context dies first simply stops
// waiting — the batch runs on for the remaining members.
type waiter struct {
	prob *memlp.Problem
	text string
	ctx  context.Context
	done chan struct{}

	sol   *memlp.Solution
	err   error
	index int
	size  int
}

func newCoalescer(baseCtx context.Context, window time.Duration, maxBatch, cacheLimit int, run batchRunner, observe func(int)) *coalescer {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if cacheLimit < 1 {
		cacheLimit = 1
	}
	return &coalescer{
		window:     window,
		maxBatch:   maxBatch,
		cacheLimit: cacheLimit,
		run:        run,
		observe:    observe,
		baseCtx:    baseCtx,
		canon:      make(map[uint64]*memlp.Problem),
		pending:    make(map[uint64]*pendingBatch),
	}
}

// submit seats the problem in a pending batch and returns its waiter. A
// false second return means the problem cannot coalesce (fingerprint
// collision against the cached canonical matrix) and the caller must solve
// it solo.
func (c *coalescer) submit(ctx context.Context, prob *memlp.Problem) (*waiter, bool) {
	var buf bytes.Buffer
	_ = prob.WriteText(&buf) // bytes.Buffer cannot fail
	fp := prob.MatrixFingerprint()

	c.mu.Lock()
	canon, ok := c.canon[fp]
	if !ok {
		c.evictLocked()
		c.canon[fp] = prob
	} else if !prob.AdoptMatrixOf(canon) {
		// Hash collision between genuinely different matrices: do not batch.
		c.mu.Unlock()
		return nil, false
	}
	pb := c.pending[fp]
	if pb == nil || pb.launched {
		pb = &pendingBatch{fingerprint: fp, done: make(chan struct{})}
		c.pending[fp] = pb
		pb.timer = time.AfterFunc(c.window, func() { c.launch(pb) })
	}
	w := &waiter{prob: prob, text: buf.String(), ctx: ctx, done: pb.done}
	pb.members = append(pb.members, w)
	full := len(pb.members) >= c.maxBatch
	c.mu.Unlock()

	if full {
		go c.launch(pb)
	}
	return w, true
}

// evictLocked bounds the canonical-matrix cache; callers hold c.mu. Eviction
// only drops the dedup anchor for a matrix — in-flight batches keep their
// problems alive, and a re-submission simply becomes the new canon.
func (c *coalescer) evictLocked() {
	if len(c.canon) < c.cacheLimit {
		return
	}
	for fp := range c.canon {
		if _, open := c.pending[fp]; !open {
			delete(c.canon, fp)
			return
		}
	}
	// Every cached matrix has an open batch: let the cache exceed the limit
	// rather than break an active coalescing point.
}

// launch closes a pending batch to new members, orders it canonically, runs
// it under the merged member context, and distributes the results. Safe to
// call more than once; only the first call acts.
func (c *coalescer) launch(pb *pendingBatch) {
	c.mu.Lock()
	if pb.launched {
		c.mu.Unlock()
		return
	}
	pb.launched = true
	if c.pending[pb.fingerprint] == pb {
		delete(c.pending, pb.fingerprint)
	}
	members := pb.members
	c.mu.Unlock()
	pb.timer.Stop()

	// Canonical order: serialized problem bytes, ties by arrival. This is the
	// determinism anchor — batch index, and therefore each problem's noise
	// epoch, must not depend on goroutine scheduling.
	sort.SliceStable(members, func(i, j int) bool { return members[i].text < members[j].text })

	probs := make([]*memlp.Problem, len(members))
	ctxs := make([]context.Context, len(members))
	for i, w := range members {
		w.index, w.size = i, len(members)
		probs[i] = w.prob
		ctxs[i] = w.ctx
	}
	if c.observe != nil {
		c.observe(len(members))
	}

	// The batch keeps running while any member still wants the answer; it is
	// canceled only when every member's request context has gone away.
	mctx, cancel := mergedContext(c.baseCtx, ctxs)
	defer cancel()
	sols, err := c.run(mctx, probs)

	for i, w := range members {
		if i < len(sols) {
			w.sol = sols[i]
		}
		if err != nil && (w.sol == nil || w.sol.Status == memlp.StatusCanceled) {
			w.err = err
		}
	}
	close(pb.done)
}

// mergedContext derives a context that cancels once every member context is
// done (or the parent dies). The returned cancel must be called when the
// batch finishes so the watcher goroutines exit.
func mergedContext(parent context.Context, ctxs []context.Context) (context.Context, context.CancelFunc) {
	mctx, cancel := context.WithCancel(parent)
	remaining := int64(len(ctxs))
	for _, memberCtx := range ctxs {
		go func(memberCtx context.Context) {
			select {
			case <-memberCtx.Done():
				if atomic.AddInt64(&remaining, -1) == 0 {
					cancel()
				}
			case <-mctx.Done():
			}
		}(memberCtx)
	}
	return mctx, cancel
}
