package serve

import "time"

// requestClock and requestLatency are this package's only reads of the host
// clock — the //memlp:timing funnels memlpvet's wallclock analyzer enforces.
// They bound request-latency metrics and the X-Deadline parse anchor; solve
// results stay bit-identical to direct SolveBatch because nothing on the
// coalescing or batch-assembly path observes the clock (the coalesce window
// is timer plumbing, which schedules work without feeding a clock value
// into results).

//memlp:timing
func requestClock() time.Time { return time.Now() }

//memlp:timing
func requestLatency(start time.Time) float64 { return time.Since(start).Seconds() }
