package serve

// White-box unit tests for the serving building blocks: the solver pool's
// acquire/release state machine, the coalescer's canonical-matrix cache
// bound, the merged batch context, and the jsonFloat wire convention. The
// HTTP-level behavior lives in serve_test.go.

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/memlp/memlp"
)

func dietProblem(t *testing.T, slack float64) *memlp.Problem {
	t.Helper()
	p, err := memlp.NewProblem("diet",
		[]float64{3, 2},
		[][]float64{{1, 1}, {1, 3}},
		[]float64{slack, 6})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPoolLifecycle(t *testing.T) {
	built := 0
	pool := newSolverPool(2, func() (*memlp.Solver, error) {
		built++
		return memlp.NewSolver(memlp.EngineSimplex)
	})
	ctx := context.Background()

	// Lazy build up to capacity.
	s1, err := pool.acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := pool.acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if built != 2 {
		t.Fatalf("built %d solvers, want 2", built)
	}
	if created, idle := pool.stats(); created != 2 || idle != 0 {
		t.Fatalf("stats = (%d, %d), want (2, 0)", created, idle)
	}

	// At capacity with everything checked out, acquire honors ctx.
	shortCtx, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	if _, err := pool.acquire(shortCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("saturated acquire = %v, want deadline exceeded", err)
	}

	// A release unblocks a waiting acquire without building a third handle.
	go func() {
		time.Sleep(5 * time.Millisecond)
		pool.release(s1)
	}()
	s3, err := pool.acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 {
		t.Error("blocked acquire did not receive the released handle")
	}
	if built != 2 {
		t.Fatalf("built %d solvers, want 2 (recycled, not rebuilt)", built)
	}

	// Recycle through the idle slot (the non-blocking fast path).
	pool.release(s3)
	s4, err := pool.acquire(ctx)
	if err != nil || s4 != s3 {
		t.Fatalf("fast-path acquire = %v, %v", s4, err)
	}
	pool.release(s4)
	pool.release(s2)
	pool.release(nil) // no-op, must not occupy a slot
	if created, idle := pool.stats(); created != 2 || idle != 2 {
		t.Fatalf("quiesced stats = (%d, %d), want (2, 2)", created, idle)
	}
}

func TestPoolBuildErrorRollsBack(t *testing.T) {
	boom := errors.New("no fabric")
	fail := true
	pool := newSolverPool(1, func() (*memlp.Solver, error) {
		if fail {
			return nil, boom
		}
		return memlp.NewSolver(memlp.EngineSimplex)
	})
	if _, err := pool.acquire(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("acquire = %v, want build error", err)
	}
	// The failed build must not consume the capacity slot forever.
	fail = false
	s, err := pool.acquire(context.Background())
	if err != nil || s == nil {
		t.Fatalf("acquire after failed build = %v, %v", s, err)
	}
	pool.release(s)
}

func TestCoalescerCacheEviction(t *testing.T) {
	run := func(ctx context.Context, probs []*memlp.Problem) ([]*memlp.Solution, error) {
		s, err := memlp.NewSolver(memlp.EngineCrossbar, memlp.WithSeed(1))
		if err != nil {
			return nil, err
		}
		return s.SolveBatch(ctx, probs)
	}
	co := newCoalescer(context.Background(), time.Millisecond, 4, 2, run, nil)

	// Three distinct matrices through a 2-entry cache: the oldest quiescent
	// anchors are evicted, the bound holds once batches drain.
	for i := 0; i < 3; i++ {
		p, err := memlp.NewProblem("p", []float64{1, 1},
			[][]float64{{1, float64(i)}, {2, 1}}, []float64{4, 6})
		if err != nil {
			t.Fatal(err)
		}
		w, ok := co.submit(context.Background(), p)
		if !ok {
			t.Fatalf("submit %d refused", i)
		}
		<-w.done
		if w.err != nil || w.sol == nil || w.sol.Status != memlp.StatusOptimal {
			t.Fatalf("submit %d: sol=%v err=%v", i, w.sol, w.err)
		}
	}
	co.mu.Lock()
	size := len(co.canon)
	co.mu.Unlock()
	if size > 2 {
		t.Errorf("canonical cache holds %d matrices, limit 2", size)
	}

	// Same matrix twice coalesces into one batch of two.
	a, b := dietProblem(t, 4), dietProblem(t, 5)
	wa, ok := co.submit(context.Background(), a)
	if !ok {
		t.Fatal("submit a refused")
	}
	wb, ok := co.submit(context.Background(), b)
	if !ok {
		t.Fatal("submit b refused")
	}
	<-wa.done
	<-wb.done
	if wa.size != 2 || wb.size != 2 || wa.index == wb.index {
		t.Errorf("batch seating = (%d/%d, %d/%d), want distinct indices in a batch of 2",
			wa.index, wa.size, wb.index, wb.size)
	}
}

func TestMergedContext(t *testing.T) {
	c1, cancel1 := context.WithCancel(context.Background())
	c2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	mctx, cancel := mergedContext(context.Background(), []context.Context{c1, c2})
	defer cancel()

	cancel1()
	select {
	case <-mctx.Done():
		t.Fatal("merged context died with one member still alive")
	case <-time.After(20 * time.Millisecond):
	}
	cancel2()
	select {
	case <-mctx.Done():
	case <-time.After(time.Second):
		t.Fatal("merged context survived all members")
	}

	// Parent death wins regardless of member state.
	parent, parentCancel := context.WithCancel(context.Background())
	mctx2, cancel2nd := mergedContext(parent, []context.Context{context.Background()})
	defer cancel2nd()
	parentCancel()
	select {
	case <-mctx2.Done():
	case <-time.After(time.Second):
		t.Fatal("merged context outlived its parent")
	}
}

func TestJSONFloatRoundTrip(t *testing.T) {
	in := []float64{1.5, math.NaN(), math.Inf(1), math.Inf(-1), -0}
	data, err := json.Marshal(toJSONFloats(in))
	if err != nil {
		t.Fatal(err)
	}
	var decoded []jsonFloat
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
	out := Floats(decoded)
	if len(out) != len(in) {
		t.Fatalf("round-trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		a, b := in[i], out[i]
		if math.IsNaN(a) != math.IsNaN(b) || (!math.IsNaN(a) && a != b) {
			t.Errorf("element %d: %v -> %v", i, a, b)
		}
	}
	var bad jsonFloat
	if err := json.Unmarshal([]byte(`"bogus"`), &bad); err == nil {
		t.Error("bogus quoted float unmarshaled without error")
	}
	if toJSONFloats(nil) != nil {
		t.Error("toJSONFloats(nil) != nil")
	}
	if Floats(nil) != nil {
		t.Error("Floats(nil) != nil")
	}
}

func TestServerMetricsAccessor(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	if srv.Metrics() == nil {
		t.Fatal("Metrics() = nil")
	}
}
