package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/memlp/memlp"
	"github.com/memlp/memlp/internal/trace"
)

// newTestServer boots a Server behind httptest and tears both down with the
// test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// dietText is the canonical tiny LP, with the first bound varied per index
// so same-matrix submissions have distinct right-hand sides.
func dietText(i int) string {
	return fmt.Sprintf("name req%d\nmaximize 3 2\nsubject 1 1 <= %g\nsubject 1 3 <= 6\nsubject 2 1 <= 5\n", i, 4+float64(i))
}

func postSolve(t *testing.T, client *http.Client, url string, req Request, header http.Header) (int, Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, vs := range header {
		for _, v := range vs {
			hreq.Header.Add(k, v)
		}
	}
	if client == nil {
		client = http.DefaultClient
	}
	hresp, err := client.Do(hreq)
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	defer hresp.Body.Close()
	var resp Response
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		t.Fatalf("decode response (HTTP %d): %v", hresp.StatusCode, err)
	}
	return hresp.StatusCode, resp
}

// waitQuiesced polls until every pooled solver handle is idle again — the
// no-leaked-replicas invariant.
func waitQuiesced(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		created, idle := s.poolStats()
		if created == idle {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool did not quiesce: created %d handles, %d idle", created, idle)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSolveEveryEngine round-trips the same LP through every engine and
// checks the JSON response shape.
func TestSolveEveryEngine(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, eng := range []string{"crossbar", "crossbar-large-scale", "pdip", "pdip-reduced", "simplex", "conic", "pdhg"} {
		t.Run(eng, func(t *testing.T) {
			code, resp := postSolve(t, nil, ts.URL, Request{Problem: dietText(0), Engine: eng}, nil)
			if code != http.StatusOK {
				t.Fatalf("HTTP %d: %+v", code, resp)
			}
			if resp.Status != "optimal" {
				t.Fatalf("status = %q (%s), want optimal", resp.Status, resp.Error)
			}
			if resp.Engine != eng {
				t.Errorf("engine echoed as %q", resp.Engine)
			}
			if resp.Name != "req0" {
				t.Errorf("name echoed as %q", resp.Name)
			}
			if len(resp.X) != 2 {
				t.Fatalf("len(x) = %d, want 2", len(resp.X))
			}
			if got := float64(resp.Objective); math.Abs(got-8.2) > 0.5 {
				t.Errorf("objective = %v, want ≈ 8.2", got)
			}
			analog := eng == "crossbar" || eng == "crossbar-large-scale" || eng == "conic" || eng == "pdhg"
			if (resp.Hardware != nil) != analog {
				t.Errorf("hardware block present = %v, want %v", resp.Hardware != nil, analog)
			}
			if eng == "simplex" && resp.Pivots == 0 {
				t.Error("simplex response missing pivot count")
			}
		})
	}
}

// TestPDHGTilesOption submits the same LP at two worker grids: the tiles
// knob joins the pool key (distinct solver handles) but — per the D18
// determinism contract — must not change any numerical field of the reply.
func TestPDHGTilesOption(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var ref Response
	for i, tiles := range []int{1, 2} {
		code, resp := postSolve(t, nil, ts.URL,
			Request{Problem: dietText(0), Engine: "pdhg", Options: Options{Tiles: tiles}}, nil)
		if code != http.StatusOK {
			t.Fatalf("tiles=%d: HTTP %d: %+v", tiles, code, resp)
		}
		if resp.Status != "optimal" {
			t.Fatalf("tiles=%d: status %q (%s)", tiles, resp.Status, resp.Error)
		}
		if i == 0 {
			ref = resp
			continue
		}
		if resp.Objective != ref.Objective || resp.Iterations != ref.Iterations {
			t.Errorf("tiles=%d: (objective, iterations) = (%v, %d), want bit-identical (%v, %d)",
				tiles, resp.Objective, resp.Iterations, ref.Objective, ref.Iterations)
		}
		for j := range ref.X {
			if resp.X[j] != ref.X[j] {
				t.Errorf("tiles=%d: x[%d] = %v, want bit-identical %v", tiles, j, resp.X[j], ref.X[j])
			}
		}
	}
}

// TestSOCPSubmission submits a second-order cone program through the text
// format's cone directives.
func TestSOCPSubmission(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	p, err := memlp.GenerateFeasibleSOCP(9, 0, 1, 3, 5)
	if err != nil {
		t.Fatalf("GenerateFeasibleSOCP: %v", err)
	}
	var b bytes.Buffer
	if err := p.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(b.String(), "cone soc") {
		t.Fatalf("serialized SOCP lacks cone directive:\n%s", b.String())
	}
	code, resp := postSolve(t, nil, ts.URL, Request{Problem: b.String(), Engine: "conic"}, nil)
	if code != http.StatusOK {
		t.Fatalf("HTTP %d: %+v", code, resp)
	}
	if resp.Status != "optimal" {
		t.Fatalf("status = %q (%s), want optimal", resp.Status, resp.Error)
	}
	if resp.Hardware == nil {
		t.Error("conic solve missing hardware estimate")
	}

	// The same SOCP on an LP-only engine is an invalid submission, not a 500.
	code, resp = postSolve(t, nil, ts.URL, Request{Problem: b.String(), Engine: "crossbar"}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("SOCP on crossbar: HTTP %d (%+v), want 400", code, resp)
	}
}

// TestBadSubmissions covers the 4xx surface: malformed body, unknown engine,
// unparsable problem, incompatible options, wrong method, bad deadline.
func TestBadSubmissions(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	hresp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: HTTP %d, want 400", hresp.StatusCode)
	}

	for name, req := range map[string]Request{
		"unknown engine":      {Problem: dietText(0), Engine: "quantum"},
		"bad problem":         {Problem: "maximize spam", Engine: "crossbar"},
		"incompatible option": {Problem: dietText(0), Engine: "simplex", Options: Options{MaxIterations: 5}},
		"seed on software":    {Problem: dietText(0), Engine: "pdip", Options: Options{Seed: 7}},
		"tiles on non-pdhg":   {Problem: dietText(0), Engine: "crossbar", Options: Options{Tiles: 2}},
	} {
		code, resp := postSolve(t, nil, ts.URL, req, nil)
		if code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d (%+v), want 400", name, code, resp)
		}
	}

	hresp, err = http.Get(ts.URL + "/solve")
	if err != nil {
		t.Fatalf("GET /solve: %v", err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /solve: HTTP %d, want 405", hresp.StatusCode)
	}

	code, _ := postSolve(t, nil, ts.URL, Request{Problem: dietText(0)},
		http.Header{"X-Deadline": []string{"yesterday-ish"}})
	if code != http.StatusBadRequest {
		t.Errorf("bad X-Deadline: HTTP %d, want 400", code)
	}
}

// TestDeadlineHeaderCancels proves X-Deadline expiry surfaces as the
// canceled status (HTTP 200) on both the solo and the coalesced path, and
// that no pool replica leaks.
func TestDeadlineHeaderCancels(t *testing.T) {
	s, ts := newTestServer(t, Config{CoalesceWindow: 20 * time.Millisecond})
	header := http.Header{"X-Deadline": []string{"1ns"}}
	for _, req := range []Request{
		{Problem: dietText(0), Engine: "crossbar", NoCoalesce: true},
		{Problem: dietText(0), Engine: "crossbar"},
	} {
		code, resp := postSolve(t, nil, ts.URL, req, header)
		if code != http.StatusOK {
			t.Fatalf("HTTP %d: %+v", code, resp)
		}
		if resp.Status != "canceled" {
			t.Errorf("no_coalesce=%v: status = %q, want canceled", req.NoCoalesce, resp.Status)
		}
		if resp.Error == "" {
			t.Errorf("no_coalesce=%v: canceled response missing error detail", req.NoCoalesce)
		}
	}
	waitQuiesced(t, s)
}

// TestClientDisconnectCancels aborts the HTTP request mid-solve and checks
// the server releases its solver handle (no leaked replica).
func TestClientDisconnectCancels(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	big, err := memlp.GenerateFeasible(90, 0, 3)
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	var b bytes.Buffer
	if err := big.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	body, err := json.Marshal(Request{Problem: b.String(), Engine: "crossbar", NoCoalesce: true})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	if resp, err := http.DefaultClient.Do(hreq); err == nil {
		resp.Body.Close()
		t.Log("solve finished before the disconnect; leak check still applies")
	}
	waitQuiesced(t, s)
}

// TestAdmissionControl fills the admission queue and expects 429 for the
// overflow request, plus the rejection counter on /metrics.
func TestAdmissionControl(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueLimit: 1, CoalesceWindow: 400 * time.Millisecond})

	first := make(chan Response, 1)
	go func() {
		_, resp := postSolve(t, nil, ts.URL, Request{Problem: dietText(0), Engine: "crossbar"}, nil)
		first <- resp
	}()
	time.Sleep(100 * time.Millisecond) // the first request now holds the only admission slot

	code, resp := postSolve(t, nil, ts.URL, Request{Problem: dietText(1), Engine: "crossbar"}, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow request: HTTP %d (%+v), want 429", code, resp)
	}

	select {
	case resp := <-first:
		if resp.Status != "optimal" {
			t.Errorf("admitted request: status %q, want optimal", resp.Status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("admitted request never completed")
	}

	hresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer hresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(hresp.Body)
	if !strings.Contains(buf.String(), "memlp_serve_rejected_total 1") {
		t.Errorf("/metrics missing rejection counter:\n%s", buf.String())
	}
}

// TestObservabilityEndpoints checks /healthz, /metrics and /vars content
// after a solve has flowed through.
func TestObservabilityEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, resp := postSolve(t, nil, ts.URL, Request{Problem: dietText(0), Engine: "crossbar"}, nil); code != http.StatusOK || resp.Status != "optimal" {
		t.Fatalf("warm-up solve failed: HTTP %d, %+v", code, resp)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || strings.TrimSpace(buf.String()) != "ok" {
		t.Errorf("/healthz: HTTP %d body %q", hresp.StatusCode, buf.String())
	}

	hresp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	buf.Reset()
	buf.ReadFrom(hresp.Body)
	hresp.Body.Close()
	if ct := hresp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	for _, want := range []string{
		"memlp_serve_requests_total{code=\"200\"} 1",
		"memlp_serve_latency_seconds_bucket",
		"memlp_serve_batches_total 1",
		"memlp_solves_total", // engine counters flow in through the trace records
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %q:\n%s", want, buf.String())
		}
	}

	hresp, err = http.Get(ts.URL + "/vars")
	if err != nil {
		t.Fatalf("GET /vars: %v", err)
	}
	defer hresp.Body.Close()
	var vars map[string]interface{}
	if err := json.NewDecoder(hresp.Body).Decode(&vars); err != nil {
		t.Fatalf("/vars is not JSON: %v", err)
	}
	if _, ok := vars["serve_requests"]; !ok {
		t.Errorf("/vars missing serve_requests: %v", vars)
	}
}

// TestCoalescingDeterminism is the serving-layer extension of the PR 4
// width-determinism contract: N concurrent same-matrix requests, folded into
// one batch, must return results bit-identical to a direct SolveBatch of the
// same problems in the server's canonical order at the same seed.
func TestCoalescingDeterminism(t *testing.T) {
	const n = 6
	opts := Options{Variation: 0.05, Seed: 7}
	s, ts := newTestServer(t, Config{CoalesceWindow: 250 * time.Millisecond, MaxBatch: 64})

	var wg sync.WaitGroup
	resps := make([]Response, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], resps[i] = postSolve(t, nil, ts.URL, Request{
				Problem: dietText(i),
				Engine:  "crossbar",
				Options: opts,
			}, nil)
		}(i)
	}
	wg.Wait()

	// Reference: the same problems, sorted by the canonical rule (serialized
	// text bytes), solved as one direct batch.
	type ref struct {
		text string
		prob *memlp.Problem
	}
	refs := make([]ref, n)
	for i := 0; i < n; i++ {
		p, err := memlp.ReadProblem(strings.NewReader(dietText(i)))
		if err != nil {
			t.Fatalf("ReadProblem: %v", err)
		}
		var b bytes.Buffer
		if err := p.WriteText(&b); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		if i > 0 && !p.AdoptMatrixOf(refs[0].prob) {
			t.Fatal("reference problems do not share a matrix")
		}
		refs[i] = ref{text: b.String(), prob: p}
	}
	sort.SliceStable(refs, func(i, j int) bool { return refs[i].text < refs[j].text })
	probs := make([]*memlp.Problem, n)
	for i := range refs {
		probs[i] = refs[i].prob
	}
	solver, err := memlp.NewSolver(memlp.EngineCrossbar,
		memlp.WithSeed(opts.Seed), memlp.WithVariation(opts.Variation), memlp.WithTrace(0))
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	want, err := solver.SolveBatch(context.Background(), probs)
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: HTTP %d", i, codes[i])
		}
		r := resps[i]
		if !r.Coalesced || r.BatchSize != n {
			t.Fatalf("request %d: coalesced=%v batch_size=%d, want one batch of %d (raise the window?)",
				i, r.Coalesced, r.BatchSize, n)
		}
		w := want[r.BatchIndex]
		if r.Status != w.Status.String() {
			t.Errorf("request %d: status %q, want %q", i, r.Status, w.Status)
		}
		if math.Float64bits(float64(r.Objective)) != math.Float64bits(w.Objective) {
			t.Errorf("request %d: objective %x, want %x (not bit-identical)",
				i, math.Float64bits(float64(r.Objective)), math.Float64bits(w.Objective))
		}
		x := Floats(r.X)
		if len(x) != len(w.X) {
			t.Fatalf("request %d: len(x) = %d, want %d", i, len(x), len(w.X))
		}
		for j := range x {
			if math.Float64bits(x[j]) != math.Float64bits(w.X[j]) {
				t.Errorf("request %d: x[%d] = %x, want %x (not bit-identical)",
					i, j, math.Float64bits(x[j]), math.Float64bits(w.X[j]))
			}
		}
	}
	waitQuiesced(t, s)
}

// TestGoldenTraceThroughServe is the regression guard that the serving layer
// can never perturb iterates: a traced solve over HTTP must match the same
// problem solved in-process field-for-field at 1e-9.
func TestGoldenTraceThroughServe(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, resp := postSolve(t, nil, ts.URL, Request{
		Problem:    dietText(0),
		Engine:     "crossbar",
		Options:    Options{Variation: 0.08, Seed: 3, Trace: true},
		NoCoalesce: true,
	}, nil)
	if code != http.StatusOK || resp.Status != "optimal" {
		t.Fatalf("HTTP %d, status %q (%s)", code, resp.Status, resp.Error)
	}
	if resp.TraceJSONL == "" {
		t.Fatal("response missing trace_jsonl")
	}
	served, err := memlp.ReadTraceJSONL(strings.NewReader(resp.TraceJSONL))
	if err != nil {
		t.Fatalf("ReadTraceJSONL: %v", err)
	}

	p, err := memlp.ReadProblem(strings.NewReader(dietText(0)))
	if err != nil {
		t.Fatalf("ReadProblem: %v", err)
	}
	solver, err := memlp.NewSolver(memlp.EngineCrossbar,
		memlp.WithSeed(3), memlp.WithVariation(0.08), memlp.WithTrace(0))
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	sol, err := solver.Solve(context.Background(), p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}

	got := make([]trace.Record, len(served))
	for i, r := range served {
		got[i] = trace.Record(r)
	}
	local := sol.Trace()
	want := make([]trace.Record, len(local))
	for i, r := range local {
		want[i] = trace.Record(r)
	}
	if diffs := trace.Diff(got, want, 1e-9); len(diffs) > 0 {
		t.Errorf("served trace diverges from in-process solve:\n%s", strings.Join(diffs, "\n"))
	}
}

// TestNoCoalesceIsolation checks the opt-out: two concurrent same-matrix
// requests with no_coalesce stay batch-of-none.
func TestNoCoalesceIsolation(t *testing.T) {
	_, ts := newTestServer(t, Config{CoalesceWindow: 100 * time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, resp := postSolve(t, nil, ts.URL, Request{
				Problem: dietText(i), Engine: "crossbar", NoCoalesce: true,
			}, nil)
			if code != http.StatusOK || resp.Status != "optimal" {
				t.Errorf("request %d: HTTP %d status %q", i, code, resp.Status)
			}
			if resp.Coalesced || resp.BatchSize != 0 {
				t.Errorf("request %d: coalesced despite no_coalesce: %+v", i, resp)
			}
		}(i)
	}
	wg.Wait()
}

// TestServerCoalescingDisabled checks the server-wide switch used as the
// benchmark baseline.
func TestServerCoalescingDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableCoalescing: true, CoalesceWindow: 100 * time.Millisecond})
	code, resp := postSolve(t, nil, ts.URL, Request{Problem: dietText(0), Engine: "crossbar"}, nil)
	if code != http.StatusOK || resp.Status != "optimal" {
		t.Fatalf("HTTP %d status %q", code, resp.Status)
	}
	if resp.Coalesced {
		t.Errorf("request coalesced with coalescing disabled: %+v", resp)
	}
}

// TestWarmStartCacheThroughServe posts the same LP twice on a warm-capable
// engine and checks the second solve is seeded from the warm-start cache:
// fewer iterations end-to-end, the same optimum, and the
// memlp_serve_warm_starts_total counter ticking.
func TestWarmStartCacheThroughServe(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := Request{Problem: dietText(0), Engine: "pdip-reduced"}
	code, cold := postSolve(t, nil, ts.URL, req, nil)
	if code != http.StatusOK || cold.Status != "optimal" {
		t.Fatalf("cold solve: HTTP %d, %+v", code, cold)
	}
	code, warm := postSolve(t, nil, ts.URL, req, nil)
	if code != http.StatusOK || warm.Status != "optimal" {
		t.Fatalf("warm solve: HTTP %d, %+v", code, warm)
	}
	if warm.Iterations >= cold.Iterations {
		t.Errorf("warm repeat took %d iterations, cold took %d; want a drop",
			warm.Iterations, cold.Iterations)
	}
	if math.Abs(float64(warm.Objective)-float64(cold.Objective)) > 1e-6 {
		t.Errorf("warm objective %v, cold %v", warm.Objective, cold.Objective)
	}
	var summary struct {
		ServeWarm int64 `json:"serve_warm_starts"`
	}
	if err := json.Unmarshal([]byte(s.Metrics().String()), &summary); err != nil {
		t.Fatalf("metrics summary: %v", err)
	}
	if summary.ServeWarm != 1 {
		t.Errorf("serve_warm_starts = %d, want 1", summary.ServeWarm)
	}
}
