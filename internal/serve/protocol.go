// Package serve implements the memlpd solver service: an HTTP front end over
// the public memlp API that pools reusable Solver handles per (engine,
// options) key and coalesces concurrent same-matrix submissions into shared
// SolveBatch calls, so replica programming cost is paid once per matrix
// rather than once per request. cmd/memlpd is a thin main over this package.
package serve

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/memlp/memlp"
)

// Request is the JSON body of a POST /solve submission. The problem itself
// travels in the textual format understood by memlp.ReadProblem (the same
// format cmd/lpsolve reads), including `cone` directives for SOCP
// submissions, so any problem the CLI can solve can be submitted unchanged.
type Request struct {
	// Problem is the text-io serialization of the LP/SOCP to solve.
	Problem string `json:"problem"`
	// Engine names the backend: "crossbar" (default), "crossbar-large-scale",
	// "pdip", "pdip-reduced", "simplex", "conic", or "pdhg".
	Engine string `json:"engine,omitempty"`
	// Options carries the engine knobs; zero values mean "engine default".
	Options Options `json:"options,omitempty"`
	// NoCoalesce opts this request out of same-matrix batching; it is solved
	// alone even if identical-matrix requests are in flight.
	NoCoalesce bool `json:"no_coalesce,omitempty"`
}

// Options is the wire form of the memlp.Option set a request may configure.
// Only deterministic solver-construction knobs appear here: anything that
// changes solver identity is part of the pool key, so two requests receive
// the same Solver handle exactly when their normalized Options (plus engine)
// are equal.
type Options struct {
	Variation     float64 `json:"variation,omitempty"`
	CycleNoise    float64 `json:"cycle_noise,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	IOBits        int     `json:"io_bits,omitempty"`
	WriteBits     int     `json:"write_bits,omitempty"`
	Alpha         float64 `json:"alpha,omitempty"`
	MaxIterations int     `json:"max_iterations,omitempty"`
	ConstantStep  float64 `json:"constant_step,omitempty"`
	// Tiles is the PDHG worker-grid side (results are bit-identical for
	// every value; it still joins the pool key because it is a
	// solver-construction knob).
	Tiles int `json:"tiles,omitempty"`
	// Trace asks for the iteration trajectory in Response.TraceJSONL. Solvers
	// always record traces (the service needs them for /metrics), so Trace
	// does not participate in the pool key.
	Trace bool `json:"trace,omitempty"`
}

// normalize folds "unset" spellings onto the solver defaults so the pool key
// is canonical: a request that says nothing and a request that spells out the
// defaults share a solver.
func (o Options) normalize() Options {
	if o.Seed == 0 {
		o.Seed = 1 // defaultOptions() seed
	}
	o.Trace = false // response-shaping only; never part of solver identity
	return o
}

// key returns the canonical (engine, options) pool key.
func (o Options) key(eng memlp.Engine) string {
	n := o.normalize()
	parts := []string{
		"engine=" + eng.String(),
		"seed=" + strconv.FormatInt(n.Seed, 10),
	}
	if n.Variation != 0 {
		parts = append(parts, "variation="+formatFloat(n.Variation))
	}
	if n.CycleNoise != 0 {
		parts = append(parts, "cycle_noise="+formatFloat(n.CycleNoise))
	}
	if n.IOBits != 0 {
		parts = append(parts, "io_bits="+strconv.Itoa(n.IOBits))
	}
	if n.WriteBits != 0 {
		parts = append(parts, "write_bits="+strconv.Itoa(n.WriteBits))
	}
	if n.Alpha != 0 {
		parts = append(parts, "alpha="+formatFloat(n.Alpha))
	}
	if n.MaxIterations != 0 {
		parts = append(parts, "max_iterations="+strconv.Itoa(n.MaxIterations))
	}
	if n.ConstantStep != 0 {
		parts = append(parts, "constant_step="+formatFloat(n.ConstantStep))
	}
	if n.Tiles != 0 {
		parts = append(parts, "tiles="+strconv.Itoa(n.Tiles))
	}
	sort.Strings(parts[1:]) // engine first, knobs in stable order
	return strings.Join(parts, ",")
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// solverOptions translates the wire options into the memlp.Option list used
// to build the pooled solver. parallelism is the server-wide fabric-pool
// width and applies only to the batching engine. Knobs the caller set but
// that do not configure the engine (e.g. seed with a software engine) are
// passed through so NewSolver rejects them with ErrIncompatibleOption rather
// than being dropped silently.
func (o Options) solverOptions(eng memlp.Engine, parallelism int) []memlp.Option {
	n := o.normalize()
	opts := []memlp.Option{memlp.WithTrace(0)}
	switch eng {
	case memlp.EngineCrossbar, memlp.EngineCrossbarLargeScale, memlp.EngineConic, memlp.EnginePDHG:
		opts = append(opts, memlp.WithSeed(n.Seed))
	default:
		if o.Seed != 0 {
			opts = append(opts, memlp.WithSeed(o.Seed))
		}
	}
	if n.Variation != 0 {
		opts = append(opts, memlp.WithVariation(n.Variation))
	}
	if n.CycleNoise != 0 {
		opts = append(opts, memlp.WithCycleNoise(n.CycleNoise))
	}
	if n.IOBits != 0 {
		opts = append(opts, memlp.WithIOBits(n.IOBits))
	}
	if n.WriteBits != 0 {
		opts = append(opts, memlp.WithWriteBits(n.WriteBits))
	}
	if n.Alpha != 0 {
		opts = append(opts, memlp.WithAlpha(n.Alpha))
	}
	if n.MaxIterations != 0 {
		opts = append(opts, memlp.WithMaxIterations(n.MaxIterations))
	}
	if n.ConstantStep != 0 {
		opts = append(opts, memlp.WithConstantStep(n.ConstantStep))
	}
	if n.Tiles != 0 {
		opts = append(opts, memlp.WithTiles(n.Tiles))
	}
	if eng == memlp.EngineCrossbar && parallelism > 0 {
		opts = append(opts, memlp.WithParallelism(parallelism))
	}
	return opts
}

// engineByName maps wire names onto engines (the cmd/lpsolve vocabulary).
func engineByName(name string) (memlp.Engine, error) {
	switch name {
	case "", "crossbar":
		return memlp.EngineCrossbar, nil
	case "crossbar-large-scale", "large-scale":
		return memlp.EngineCrossbarLargeScale, nil
	case "pdip":
		return memlp.EnginePDIP, nil
	case "pdip-reduced":
		return memlp.EnginePDIPReduced, nil
	case "simplex":
		return memlp.EngineSimplex, nil
	case "conic":
		return memlp.EngineConic, nil
	case "pdhg":
		return memlp.EnginePDHG, nil
	default:
		return 0, fmt.Errorf("unknown engine %q", name)
	}
}

// jsonFloat marshals float64 the way the trace JSONL stream does: finite
// values as shortest round-trip decimals, and the non-finite values that
// encoding/json rejects (NaN, ±Inf — e.g. sentinel residual fills on failed
// analog attempts) as quoted strings that strconv.ParseFloat accepts back.
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return strconv.AppendQuote(nil, strconv.FormatFloat(v, 'g', -1, 64)), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '"' {
		var err error
		if s, err = strconv.Unquote(s); err != nil {
			return err
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}

func toJSONFloats(v []float64) []jsonFloat {
	if v == nil {
		return nil
	}
	out := make([]jsonFloat, len(v))
	for i, x := range v {
		out[i] = jsonFloat(x)
	}
	return out
}

// Floats converts a response vector back to plain float64s.
func Floats(v []jsonFloat) []float64 {
	if v == nil {
		return nil
	}
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(x)
	}
	return out
}

// HardwareInfo is the wire form of memlp.HardwareEstimate.
type HardwareInfo struct {
	LatencyNS    int64     `json:"latency_ns"`
	EnergyJoules jsonFloat `json:"energy_joules"`
	CellWrites   int64     `json:"cell_writes"`
	AnalogOps    int64     `json:"analog_ops"`
	Conversions  int64     `json:"conversions"`
}

// Response is the JSON body of a /solve reply. Solve outcomes — including
// "canceled", "infeasible" and "iteration-limit" — are HTTP 200 with the
// outcome in Status; non-2xx codes mean the request never reached a solver.
type Response struct {
	// Name echoes the submitted problem's name directive.
	Name string `json:"name,omitempty"`
	// Engine is the resolved engine name.
	Engine string `json:"engine"`
	// Status is the memlp.Status string ("optimal", "canceled", …).
	Status string `json:"status"`

	Objective  jsonFloat   `json:"objective"`
	X          []jsonFloat `json:"x,omitempty"`
	DualY      []jsonFloat `json:"dual_y,omitempty"`
	Iterations int         `json:"iterations,omitempty"`
	Pivots     int         `json:"pivots,omitempty"`
	// WallNS is the measured software solve duration in nanoseconds.
	WallNS int64 `json:"wall_ns"`

	DualityGap          jsonFloat `json:"duality_gap"`
	PrimalInfeasibility jsonFloat `json:"primal_infeasibility"`
	DualInfeasibility   jsonFloat `json:"dual_infeasibility"`
	ConeInfeasibility   jsonFloat `json:"cone_infeasibility,omitempty"`

	// Hardware is the modelled crossbar cost (absent for software engines).
	Hardware *HardwareInfo `json:"hardware,omitempty"`

	// Coalesced reports that this request was folded into a shared-matrix
	// batch of BatchSize requests and solved at canonical position BatchIndex.
	Coalesced  bool `json:"coalesced,omitempty"`
	BatchSize  int  `json:"batch_size,omitempty"`
	BatchIndex int  `json:"batch_index,omitempty"`

	// TraceJSONL holds the iteration trajectory, one trace record per line,
	// when the request set options.trace. memlp.ReadTraceJSONL parses it.
	TraceJSONL string `json:"trace_jsonl,omitempty"`

	// Error carries the solve error string accompanying a partial result
	// (e.g. the context error behind a "canceled" status).
	Error string `json:"error,omitempty"`
}
