package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/memlp/memlp"
	"github.com/memlp/memlp/internal/trace"
)

// Config tunes a Server. Zero values mean the documented defaults.
type Config struct {
	// QueueLimit bounds concurrently admitted /solve requests; requests
	// arriving past the bound are rejected with 429 (admission control, so a
	// traffic spike degrades by shedding instead of queueing unboundedly).
	// Default 64.
	QueueLimit int
	// CoalesceWindow is how long the first same-matrix request waits for
	// companions before its batch launches. Default 2ms.
	CoalesceWindow time.Duration
	// MaxBatch launches a pending batch early once it has this many members.
	// Default 32.
	MaxBatch int
	// SolversPerKey bounds the solver handles pooled per (engine, options)
	// key. Default 2.
	SolversPerKey int
	// Parallelism is the fabric-pool width handed to batching crossbar
	// solvers (memlp.WithParallelism). Zero means GOMAXPROCS.
	Parallelism int
	// DisableCoalescing turns same-matrix batching off server-wide; every
	// request is solved solo (the benchmark baseline).
	DisableCoalescing bool
	// MatrixCacheLimit bounds the canonical-matrix cache per key. Default 256.
	MatrixCacheLimit int
	// MaxBodyBytes bounds the /solve request body. Default 8 MiB.
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.QueueLimit <= 0 {
		c.QueueLimit = 64
	}
	if c.CoalesceWindow <= 0 {
		c.CoalesceWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.SolversPerKey <= 0 {
		c.SolversPerKey = 2
	}
	if c.MatrixCacheLimit <= 0 {
		c.MatrixCacheLimit = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// Server is the memlpd request handler: per-key solver pools, same-matrix
// request coalescing, admission control, and the /metrics, /vars, /healthz
// observability endpoints. Construct with New, mount Handler on an
// http.Server, and Close on shutdown to cancel in-flight batches.
type Server struct {
	cfg     Config
	metrics *trace.Metrics
	mux     *http.ServeMux
	sem     chan struct{}
	baseCtx context.Context
	stop    context.CancelFunc

	mu      sync.Mutex
	entries map[string]*poolEntry //memlp:guardedby mu
}

// poolEntry is the per-(engine, options)-key state: the solver pool plus, on
// the batching engine, the coalescer front of it.
type poolEntry struct {
	eng  memlp.Engine
	pool *solverPool
	co   *coalescer // nil when the key's engine cannot batch or coalescing is off
	warm *warmCache // nil when the key's engine cannot warm-start
}

// warmCache remembers the last optimal solution per constraint-matrix
// fingerprint, so repeat traffic against the same matrix (the memlpd steady
// state: b and c drift, A stays) seeds each solve from the previous optimum
// instead of a cold start. Solo solves only — coalesced batches stay
// cold-started so their results depend only on the batch contents, never on
// server history. FIFO-bounded like the coalescer's canonical-matrix cache.
type warmCache struct {
	mu    sync.Mutex
	limit int
	order []uint64                   //memlp:guardedby mu — insertion order, for eviction
	sols  map[uint64]*memlp.Solution //memlp:guardedby mu
}

func newWarmCache(limit int) *warmCache {
	return &warmCache{limit: limit, sols: make(map[uint64]*memlp.Solution)}
}

// lookup returns the cached solution usable as a warm start for prob, or nil.
// The dimension check guards against a fingerprint collision handing a
// mismatched seed to the solver (which would fail the solve instead of
// merely starting it cold).
func (c *warmCache) lookup(fp uint64, prob *memlp.Problem) *memlp.Solution {
	c.mu.Lock()
	defer c.mu.Unlock()
	sol := c.sols[fp]
	if sol == nil || len(sol.X) != prob.NumVariables() || len(sol.DualY) != prob.NumConstraints() {
		return nil
	}
	return sol
}

// store caches sol as the matrix's future warm start; non-optimal outcomes
// are not worth seeding from and are dropped.
func (c *warmCache) store(fp uint64, sol *memlp.Solution) {
	if sol == nil || sol.Status != memlp.StatusOptimal {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.sols[fp]; !ok {
		if len(c.order) >= c.limit {
			delete(c.sols, c.order[0])
			c.order = c.order[1:]
		}
		c.order = append(c.order, fp)
	}
	c.sols[fp] = sol
}

// New builds a Server from the config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	baseCtx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		metrics: trace.NewMetrics(),
		mux:     http.NewServeMux(),
		sem:     make(chan struct{}, cfg.QueueLimit),
		baseCtx: baseCtx,
		stop:    stop,
		entries: make(map[string]*poolEntry),
	}
	s.mux.HandleFunc("/solve", s.handleSolve)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/vars", s.handleVars)
	return s
}

// Handler returns the HTTP handler to mount.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's aggregate (shared with /metrics and /vars).
func (s *Server) Metrics() *trace.Metrics { return s.metrics }

// Close cancels the server's base context: in-flight coalesced batches see
// their merged context die once their members give up, and new batches abort
// immediately.
func (s *Server) Close() { s.stop() }

// entry returns (building if needed) the pool entry for the request's
// (engine, options) key. Creation eagerly builds the first solver so option
// validation errors surface here as a 400 instead of inside a shared batch.
func (s *Server) entry(eng memlp.Engine, o Options) (*poolEntry, error) {
	key := o.key(eng)
	s.mu.Lock()
	if ent, ok := s.entries[key]; ok {
		s.mu.Unlock()
		return ent, nil
	}
	s.mu.Unlock()

	// Build outside the lock: solver construction programs fabrics.
	build := func() (*memlp.Solver, error) {
		return memlp.NewSolver(eng, o.solverOptions(eng, s.cfg.Parallelism)...)
	}
	first, err := build()
	if err != nil {
		return nil, err
	}
	ent := &poolEntry{eng: eng, pool: newSolverPool(s.cfg.SolversPerKey, build)}
	switch eng {
	case memlp.EngineCrossbar, memlp.EngineConic, memlp.EnginePDIP, memlp.EnginePDIPReduced:
		ent.warm = newWarmCache(s.cfg.MatrixCacheLimit)
	}
	ent.pool.mu.Lock()
	ent.pool.created = 1
	ent.pool.mu.Unlock()
	ent.pool.slots <- first
	if eng == memlp.EngineCrossbar && !s.cfg.DisableCoalescing {
		run := func(ctx context.Context, probs []*memlp.Problem) ([]*memlp.Solution, error) {
			solver, err := ent.pool.acquire(ctx)
			if err != nil {
				return nil, err
			}
			defer ent.pool.release(solver)
			return solver.SolveBatch(ctx, probs)
		}
		ent.co = newCoalescer(s.baseCtx, s.cfg.CoalesceWindow, s.cfg.MaxBatch,
			s.cfg.MatrixCacheLimit, run, s.metrics.ObserveServeBatch)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.entries[key]; ok {
		// Lost the creation race; the spare solver is garbage-collected.
		return existing, nil
	}
	s.entries[key] = ent
	return ent, nil
}

// poolStats sums handle counts across every pool: quiesced, created == idle
// (the no-leaked-replicas invariant the tests assert).
func (s *Server) poolStats() (created, idle int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ent := range s.entries {
		c, i := ent.pool.stats()
		created += c
		idle += i
	}
	return created, idle
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteProm(w)
}

func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	io.WriteString(w, s.metrics.String())
	io.WriteString(w, "\n")
}

// parseDeadline reads the X-Deadline header: either a relative
// time.ParseDuration string ("250ms") or an absolute RFC 3339 timestamp.
func parseDeadline(h string, now time.Time) (time.Time, error) {
	if d, err := time.ParseDuration(h); err == nil {
		return now.Add(d), nil
	}
	if t, err := time.Parse(time.RFC3339Nano, h); err == nil {
		return t, nil
	}
	return time.Time{}, fmt.Errorf("X-Deadline %q is neither a duration nor RFC 3339", h)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	start := requestClock()
	if r.Method != http.MethodPost {
		s.fail(w, start, http.StatusMethodNotAllowed, "POST required")
		return
	}

	// Admission control: shed load instead of queueing without bound.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.metrics.ObserveServeRejection()
		s.fail(w, start, http.StatusTooManyRequests, "admission queue full")
		return
	}

	var req Request
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(&req); err != nil {
		s.fail(w, start, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	eng, err := engineByName(req.Engine)
	if err != nil {
		s.fail(w, start, http.StatusBadRequest, err.Error())
		return
	}
	prob, err := memlp.ReadProblem(strings.NewReader(req.Problem))
	if err != nil {
		s.fail(w, start, http.StatusBadRequest, "bad problem: "+err.Error())
		return
	}

	// Request context: client disconnect cancels it; X-Deadline tightens it.
	ctx := r.Context()
	if h := r.Header.Get("X-Deadline"); h != "" {
		deadline, err := parseDeadline(h, start)
		if err != nil {
			s.fail(w, start, http.StatusBadRequest, err.Error())
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}

	ent, err := s.entry(eng, req.Options)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, memlp.ErrInvalid) || errors.Is(err, memlp.ErrUnknownEngine) {
			code = http.StatusBadRequest
		}
		s.fail(w, start, code, err.Error())
		return
	}

	var (
		sol        *memlp.Solution
		solveErr   error
		batchSize  int
		batchIndex int
	)
	if wtr, ok := s.trySubmit(ctx, ent, prob, req.NoCoalesce); ok {
		select {
		case <-wtr.done:
			sol, solveErr = wtr.sol, wtr.err
			batchSize, batchIndex = wtr.size, wtr.index
		case <-ctx.Done():
			// Stop waiting; the batch runs on for the remaining members.
			solveErr = ctx.Err()
		}
	} else {
		var solver *memlp.Solver
		solver, err = ent.pool.acquire(ctx)
		if err != nil {
			s.finishSolve(w, start, req, eng, prob, nil, err, 0, 0)
			return
		}
		defer ent.pool.release(solver)
		var fp uint64
		if ent.warm != nil {
			// Pooled handles retain warm state from whichever request used
			// them last, so a cache miss must explicitly clear the handle.
			fp = prob.MatrixFingerprint()
			if prev := ent.warm.lookup(fp, prob); prev != nil && solver.SetWarmStart(prev) == nil {
				s.metrics.ObserveServeWarmStart()
			} else {
				solver.SetWarmStart(nil)
			}
		}
		sol, solveErr = solver.Solve(ctx, prob)
		if ent.warm != nil && solveErr == nil {
			ent.warm.store(fp, sol)
		}
	}
	s.finishSolve(w, start, req, eng, prob, sol, solveErr, batchSize, batchIndex)
}

// trySubmit seats the request in its key's coalescer when it is eligible:
// the batching engine, coalescing on, a pure LP, and not opted out.
func (s *Server) trySubmit(ctx context.Context, ent *poolEntry, prob *memlp.Problem, noCoalesce bool) (*waiter, bool) {
	if ent.co == nil || noCoalesce || prob.IsConic() {
		return nil, false
	}
	return ent.co.submit(ctx, prob)
}

// finishSolve classifies the solve outcome and writes the response. Solve
// outcomes — including canceled partials — are 200 with the status in the
// body; only invalid submissions (400) and internal failures (500) use error
// codes.
func (s *Server) finishSolve(w http.ResponseWriter, start time.Time, req Request, eng memlp.Engine, prob *memlp.Problem, sol *memlp.Solution, solveErr error, batchSize, batchIndex int) {
	if sol == nil {
		switch {
		case solveErr == nil:
			s.fail(w, start, http.StatusInternalServerError, "no result")
		case errors.Is(solveErr, context.Canceled) || errors.Is(solveErr, context.DeadlineExceeded):
			// Canceled before the engine produced even a partial iterate.
			resp := Response{
				Name:   prob.Name(),
				Engine: eng.String(),
				Status: memlp.StatusCanceled.String(),
				Error:  solveErr.Error(),
			}
			s.respond(w, start, http.StatusOK, resp)
		case errors.Is(solveErr, memlp.ErrInvalid):
			s.fail(w, start, http.StatusBadRequest, solveErr.Error())
		default:
			s.fail(w, start, http.StatusInternalServerError, solveErr.Error())
		}
		return
	}

	s.observeSolution(sol)
	resp := Response{
		Name:                prob.Name(),
		Engine:              eng.String(),
		Status:              sol.Status.String(),
		Objective:           jsonFloat(sol.Objective),
		X:                   toJSONFloats(sol.X),
		DualY:               toJSONFloats(sol.DualY),
		Iterations:          sol.Iterations,
		Pivots:              sol.Pivots,
		WallNS:              sol.WallTime.Nanoseconds(),
		DualityGap:          jsonFloat(sol.DualityGap),
		PrimalInfeasibility: jsonFloat(sol.PrimalInfeasibility),
		DualInfeasibility:   jsonFloat(sol.DualInfeasibility),
		ConeInfeasibility:   jsonFloat(sol.ConeInfeasibility),
		Coalesced:           batchSize > 1,
		BatchSize:           batchSize,
		BatchIndex:          batchIndex,
	}
	if solveErr != nil {
		resp.Error = solveErr.Error()
	}
	if hw := sol.Hardware; hw != nil {
		resp.Hardware = &HardwareInfo{
			LatencyNS:    hw.Latency.Nanoseconds(),
			EnergyJoules: jsonFloat(hw.EnergyJoules),
			CellWrites:   hw.CellWrites,
			AnalogOps:    hw.AnalogOps,
			Conversions:  hw.Conversions,
		}
	}
	if req.Options.Trace {
		if recs := sol.Trace(); len(recs) > 0 {
			var b strings.Builder
			if err := memlp.WriteTraceJSONL(&b, recs); err == nil {
				resp.TraceJSONL = b.String()
			}
		}
	}
	s.respond(w, start, http.StatusOK, resp)
}

// observeSolution folds a solve into the aggregate the way the public
// memlp.Metrics.Observe does: every trace record, plus batch shard stats
// when this solution carries the roll-up.
func (s *Server) observeSolution(sol *memlp.Solution) {
	for _, r := range sol.Trace() {
		s.metrics.Emit(trace.Record(r))
	}
	if b := sol.Batch; b != nil {
		busy := make([]float64, len(b.ShardBusy))
		for i, d := range b.ShardBusy {
			busy[i] = d.Seconds()
		}
		s.metrics.ObserveBatch(b.ShardSolves, busy)
	}
}

func (s *Server) respond(w http.ResponseWriter, start time.Time, code int, resp Response) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(resp)
	s.metrics.ObserveServeRequest(code, requestLatency(start))
}

// fail writes a JSON error body and records the request.
func (s *Server) fail(w http.ResponseWriter, start time.Time, code int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{msg})
	s.metrics.ObserveServeRequest(code, requestLatency(start))
}
