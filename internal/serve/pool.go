package serve

import (
	"context"
	"sync"

	"github.com/memlp/memlp"
)

// solverPool hands out reusable *memlp.Solver handles for one (engine,
// options) key. Handles are built lazily up to max and then recycled through
// a buffered channel; acquire blocks (context-aware) once the pool is at
// capacity with every handle checked out. A Solver serializes solves on its
// own mutex, so pooling N handles is what actually lets N requests with the
// same key make progress concurrently.
type solverPool struct {
	build func() (*memlp.Solver, error)
	slots chan *memlp.Solver

	mu      sync.Mutex
	created int //memlp:guardedby mu
	max     int // immutable after construction
}

func newSolverPool(max int, build func() (*memlp.Solver, error)) *solverPool {
	if max < 1 {
		max = 1
	}
	return &solverPool{build: build, slots: make(chan *memlp.Solver, max), max: max}
}

// acquire returns an idle handle, builds a fresh one while under capacity,
// or waits for a release. The ctx error is returned if the caller gives up
// first.
func (p *solverPool) acquire(ctx context.Context) (*memlp.Solver, error) {
	select {
	case s := <-p.slots:
		return s, nil
	default:
	}
	p.mu.Lock()
	if p.created < p.max {
		p.created++
		p.mu.Unlock()
		s, err := p.build()
		if err != nil {
			p.mu.Lock()
			p.created--
			p.mu.Unlock()
			return nil, err
		}
		return s, nil
	}
	p.mu.Unlock()
	select {
	case s := <-p.slots:
		return s, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// release returns a handle to the pool. Every successful acquire must be
// paired with exactly one release (deferred, so cancellations cannot leak
// replicas).
func (p *solverPool) release(s *memlp.Solver) {
	if s == nil {
		return
	}
	p.slots <- s
}

// stats reports how many handles exist and how many are idle; a quiesced
// pool has created == idle (the leak check the serving tests assert).
func (p *solverPool) stats() (created, idle int) {
	p.mu.Lock()
	created = p.created
	p.mu.Unlock()
	return created, len(p.slots)
}
