package perf

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/memristor"
	"github.com/memlp/memlp/internal/noc"
)

func TestCrossbarCostScalesWithWrites(t *testing.T) {
	tm := memristor.DefaultTiming()
	small := CrossbarCost(crossbar.Counters{CellWrites: 100}, tm)
	big := CrossbarCost(crossbar.Counters{CellWrites: 1000}, tm)
	if big.Latency != 10*small.Latency {
		t.Errorf("latency not linear in writes: %v vs %v", small.Latency, big.Latency)
	}
	if math.Abs(big.Energy-10*small.Energy) > 1e-15 {
		t.Errorf("energy not linear in writes: %v vs %v", small.Energy, big.Energy)
	}
}

func TestCrossbarCostOpsAreO1(t *testing.T) {
	// Analog ops cost settle time regardless of matrix size — the counters
	// carry no size, so cost depends only on op count.
	tm := memristor.DefaultTiming()
	a := CrossbarCost(crossbar.Counters{MatVecOps: 3, SolveOps: 2}, tm)
	want := 5 * (tm.AnalogSettleLatency + tm.AmplifierLatency)
	if a.Latency != want {
		t.Errorf("latency = %v, want %v", a.Latency, want)
	}
}

func TestCrossbarCostZeroCounters(t *testing.T) {
	e := CrossbarCost(crossbar.Counters{}, memristor.DefaultTiming())
	if e.Latency != 0 || e.Energy != 0 {
		t.Errorf("zero counters → %v", e)
	}
}

func TestSoftwareCostUsesCPUPower(t *testing.T) {
	e := SoftwareCost(2 * time.Second)
	if e.Latency != 2*time.Second {
		t.Errorf("latency = %v", e.Latency)
	}
	if math.Abs(e.Energy-2*CPUPowerWatts) > 1e-12 {
		t.Errorf("energy = %v, want %v", e.Energy, 2*CPUPowerWatts)
	}
}

func TestNoCCost(t *testing.T) {
	cfg := noc.Config{HopLatency: 5 * time.Nanosecond, HopEnergyPerElement: 0.1e-9, TileSize: 8, MaxTiles: 4}
	s := noc.Stats{Transfers: 10, ElementHops: 1000, MaxHops: 3}
	e := NoCCost(s, cfg)
	if e.Latency != 10*3*5*time.Nanosecond {
		t.Errorf("latency = %v", e.Latency)
	}
	if math.Abs(e.Energy-1000*0.1e-9) > 1e-18 {
		t.Errorf("energy = %v", e.Energy)
	}
}

func TestSpeedupAndEnergyGain(t *testing.T) {
	base := Estimate{Latency: time.Second, Energy: 100}
	cand := Estimate{Latency: 10 * time.Millisecond, Energy: 2}
	if got := Speedup(base, cand); math.Abs(got-100) > 1e-9 {
		t.Errorf("Speedup = %v, want 100", got)
	}
	if got := EnergyGain(base, cand); math.Abs(got-50) > 1e-9 {
		t.Errorf("EnergyGain = %v, want 50", got)
	}
	if Speedup(base, Estimate{}) != 0 {
		t.Error("Speedup with zero candidate should be 0")
	}
	if EnergyGain(base, Estimate{}) != 0 {
		t.Error("EnergyGain with zero candidate should be 0")
	}
}

func TestEstimateAddAndString(t *testing.T) {
	a := Estimate{Latency: time.Millisecond, Energy: 1}
	b := Estimate{Latency: 2 * time.Millisecond, Energy: 3}
	sum := a.Add(b)
	if sum.Latency != 3*time.Millisecond || sum.Energy != 4 {
		t.Errorf("Add = %v", sum)
	}
	if !strings.Contains(sum.String(), "J") {
		t.Errorf("String = %q", sum.String())
	}
}

func TestPaperScaleSanity(t *testing.T) {
	// Reconstruct the paper's headline point: m = 1024, n = 341 ⇒ the
	// per-iteration refresh is 2(n+m) rows × ~2 cells ≈ 2.7N writes. With
	// ~90 iterations the estimated solve latency should land in the tens of
	// milliseconds — the paper reports 78 ms under no variation.
	const n, m, iters = 341, 1024, 90
	writesPerIter := int64(2 * (n + m) * 2)
	c := crossbar.Counters{
		CellWrites: writesPerIter * iters,
		MatVecOps:  iters,
		SolveOps:   iters,
	}
	e := CrossbarCost(c, memristor.DefaultTiming())
	if e.Latency < 20*time.Millisecond || e.Latency > 300*time.Millisecond {
		t.Errorf("estimated latency %v outside the paper's regime (78–239 ms)", e.Latency)
	}
	if e.Energy < 0.1 || e.Energy > 50 {
		t.Errorf("estimated energy %v J outside the paper's regime (0.9–12.1 J)", e.Energy)
	}
}
