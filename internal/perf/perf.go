// Package perf estimates the latency and energy of crossbar-based and
// software LP solves, following the paper's estimation methodology (§4.4):
// count the physical operations actually performed (coefficient writes —
// 2.7N per iteration for n = m/3; analog settles; conversions), multiply by
// per-operation device constants from the memristor model ([23]), and for
// the software baseline multiply measured wall-clock time by the CPU's
// active power (the paper's 218.1 J / 6.23 s ratio implies ≈35 W).
package perf

import (
	"fmt"
	"time"

	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/memristor"
	"github.com/memlp/memlp/internal/noc"
)

// CPUPowerWatts is the modelled active power of the software baseline's
// processor. 218.1 J / 6.23 s from the paper's §4.4 figures implies ≈35 W
// for their i7-6700; we use the same figure.
const CPUPowerWatts = 35.0

// Estimate is a latency/energy prediction for one solve.
type Estimate struct {
	// Latency is the predicted end-to-end solve time.
	Latency time.Duration
	// Energy is the predicted energy in joules.
	Energy float64
}

// Add returns the component-wise sum.
func (e Estimate) Add(o Estimate) Estimate {
	return Estimate{Latency: e.Latency + o.Latency, Energy: e.Energy + o.Energy}
}

// String renders the estimate compactly.
func (e Estimate) String() string {
	return fmt.Sprintf("%v / %.4g J", e.Latency, e.Energy)
}

// CrossbarCost converts fabric operation counters into a hardware estimate
// using the given device timing. Writes are serial (the half-select scheme
// programs one cell at a time — this is what makes the per-iteration update
// cost O(N)); analog ops cost one settle each; conversions happen in
// parallel banks and are folded into the settle time, but their energy is
// charged per element.
func CrossbarCost(c crossbar.Counters, timing memristor.Timing) Estimate {
	lat := time.Duration(c.CellWrites)*timing.WriteLatencyPerCell +
		time.Duration(c.MatVecOps+c.SolveOps)*timing.AnalogSettleLatency +
		time.Duration(c.MatVecOps+c.SolveOps)*timing.AmplifierLatency
	energy := float64(c.CellWrites)*timing.WriteEnergyPerCell +
		float64(c.MatVecOps+c.SolveOps)*timing.AnalogOpEnergy +
		float64(c.IOConversions)*timing.AmplifierEnergyPerElement +
		lat.Seconds()*timing.StaticPowerWatts
	return Estimate{Latency: lat, Energy: energy}
}

// NoCCost converts interconnect statistics into the transfer overhead of a
// multi-crossbar fabric (Fig. 3), priced by the NoC configuration.
func NoCCost(s noc.Stats, cfg noc.Config) Estimate {
	lat := time.Duration(s.Transfers) * time.Duration(s.MaxHops) * cfg.HopLatency
	energy := float64(s.ElementHops) * cfg.HopEnergyPerElement
	return Estimate{Latency: lat, Energy: energy}
}

// SoftwareCost converts a measured software solve duration into the
// baseline estimate: the wall-clock time itself plus energy at the CPU's
// active power.
func SoftwareCost(wall time.Duration) Estimate {
	return Estimate{Latency: wall, Energy: wall.Seconds() * CPUPowerWatts}
}

// Speedup returns baseline latency divided by candidate latency.
func Speedup(baseline, candidate Estimate) float64 {
	if candidate.Latency <= 0 {
		return 0
	}
	return float64(baseline.Latency) / float64(candidate.Latency)
}

// EnergyGain returns baseline energy divided by candidate energy.
func EnergyGain(baseline, candidate Estimate) float64 {
	if candidate.Energy <= 0 {
		return 0
	}
	return baseline.Energy / candidate.Energy
}
