package pdhg

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
	"github.com/memlp/memlp/internal/memristor"
	"github.com/memlp/memlp/internal/noc"
	"github.com/memlp/memlp/internal/pdip"
	"github.com/memlp/memlp/internal/trace"
	"github.com/memlp/memlp/internal/variation"
)

func mustProblem(t *testing.T, c []float64, rows [][]float64, b []float64) *lp.Problem {
	t.Helper()
	a, err := linalg.MatrixFromRows(rows)
	if err != nil {
		t.Fatalf("MatrixFromRows: %v", err)
	}
	p, err := lp.New("t", linalg.Vector(c), a, linalg.Vector(b))
	if err != nil {
		t.Fatalf("lp.New: %v", err)
	}
	return p
}

func genFeasible(t *testing.T, m, n int, seed int64) *lp.Problem {
	t.Helper()
	p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: m, Variables: n, Seed: seed})
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	return p
}

func mustSolve(t *testing.T, s *Solver, p *lp.Problem) *Result {
	t.Helper()
	res, err := s.SolveContext(context.Background(), p)
	if err != nil {
		t.Fatalf("SolveContext: %v", err)
	}
	return res
}

// referenceObjective solves p with the software reduced-KKT PDIP engine.
func referenceObjective(t *testing.T, p *lp.Problem) float64 {
	t.Helper()
	ps, err := pdip.New(pdip.WithBackend(pdip.NewtonReduced))
	if err != nil {
		t.Fatalf("pdip.New: %v", err)
	}
	res, err := ps.SolveContext(context.Background(), p)
	if err != nil {
		t.Fatalf("reference solve: %v", err)
	}
	if res.Status != lp.StatusOptimal {
		t.Fatalf("reference status %v", res.Status)
	}
	return res.Objective
}

// noisyConfig is the full stochastic hardware stack the determinism pins run
// under: static variation, cycle-to-cycle noise, and permanent defects.
func noisyConfig(t *testing.T, seed int64) crossbar.Config {
	t.Helper()
	vm, err := variation.NewPaperModel(0.05, seed)
	if err != nil {
		t.Fatalf("variation model: %v", err)
	}
	return crossbar.Config{
		Variation:  vm,
		CycleNoise: 0.25,
		Faults: &memristor.FaultModel{
			StuckOnDensity:  0.002,
			StuckOffDensity: 0.002,
			Seed:            seed,
			WriteNoise:      0.01,
		},
	}
}

func TestSolvesKnownLP(t *testing.T) {
	// max 3x+2y s.t. x+y ≤ 4, x+3y ≤ 6 ⇒ optimum 12 at (4, 0).
	p := mustProblem(t, []float64{3, 2}, [][]float64{{1, 1}, {1, 3}}, []float64{4, 6})
	s, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := mustSolve(t, s, p)
	if res.Status != lp.StatusOptimal {
		t.Fatalf("status %v, want optimal (pinf %v dinf %v gap %v)",
			res.Status, res.PrimalInfeasibility, res.DualInfeasibility, res.DualityGap)
	}
	if rel := math.Abs(res.Objective-12) / 12; rel > 0.02 {
		t.Errorf("objective %v, want ≈12 (rel %v)", res.Objective, rel)
	}
	if res.Iterations < 1 {
		t.Errorf("iterations %d", res.Iterations)
	}
	if res.Counters.MatVecOps == 0 {
		t.Error("no analog mat-vec ops counted")
	}
}

func TestAgreesWithSoftwareReference(t *testing.T) {
	for _, tc := range []struct {
		m, n int
		seed int64
	}{{10, 4, 3}, {14, 9, 17}, {20, 6, 29}} {
		p := genFeasible(t, tc.m, tc.n, tc.seed)
		ref := referenceObjective(t, p)
		s, err := New()
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		res := mustSolve(t, s, p)
		if res.Status != lp.StatusOptimal {
			t.Errorf("m=%d n=%d: status %v", tc.m, tc.n, res.Status)
			continue
		}
		if rel := math.Abs(res.Objective-ref) / (1 + math.Abs(ref)); rel > 0.02 {
			t.Errorf("m=%d n=%d: objective %v vs reference %v (rel %v)", tc.m, tc.n, res.Objective, ref, rel)
		}
	}
}

// TestSolvesPastSingleCrossbarCeiling is the tentpole acceptance check at
// the package layer: a matrix that a single crossbar of the tile size
// physically rejects (ErrTooLarge) still solves to optimality on the tiled
// fabric, because PDHG only ever needs one block per array.
func TestSolvesPastSingleCrossbarCeiling(t *testing.T) {
	const tile = 8
	p := genFeasible(t, 24, 18, 7)

	xb, err := crossbar.New(crossbar.Config{Size: tile})
	if err != nil {
		t.Fatalf("crossbar.New: %v", err)
	}
	if err := xb.Program(p.A); !errors.Is(err, crossbar.ErrTooLarge) {
		t.Fatalf("single %d-wide crossbar accepted a %dx%d matrix: %v",
			tile, p.A.Rows(), p.A.Cols(), err)
	}

	ref := referenceObjective(t, p)
	s, err := New(WithNoC(noc.Config{Topology: noc.Mesh, TileSize: tile}), WithGrid(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := mustSolve(t, s, p)
	if res.Status != lp.StatusOptimal {
		t.Fatalf("status %v, want optimal past the single-array ceiling (pinf %v dinf %v gap %v)",
			res.Status, res.PrimalInfeasibility, res.DualInfeasibility, res.DualityGap)
	}
	if rel := math.Abs(res.Objective-ref) / (1 + math.Abs(ref)); rel > 0.02 {
		t.Errorf("objective %v vs reference %v (rel %v)", res.Objective, ref, rel)
	}
	if res.NoC.Transfers == 0 || res.NoC.ElementHops == 0 {
		t.Errorf("tiled solve reported no NoC traffic: %+v", res.NoC)
	}
}

// TestGridBitIdentical pins the core determinism contract: under variation,
// cycle noise, and a fault model, worker grids 1×1, 2×2, and 4×4 must
// produce bit-identical iterates, counters, NoC accounting, and traces.
func TestGridBitIdentical(t *testing.T) {
	p := genFeasible(t, 12, 8, 11)
	tol := DefaultTolerances()
	tol.MaxIterations = 600 // variation biases the fixed point; pin the trajectory, not optimality
	var ref *Result
	for _, g := range []int{1, 2, 4} {
		s, err := New(
			WithNoC(noc.Config{Topology: noc.Mesh, TileSize: 4}),
			WithCrossbar(noisyConfig(t, 13)),
			WithGrid(g),
			WithTolerances(tol),
			WithTrace(0),
		)
		if err != nil {
			t.Fatalf("New(grid=%d): %v", g, err)
		}
		res := mustSolve(t, s, p)
		if ref == nil {
			ref = res
			continue
		}
		if res.Status != ref.Status || res.Iterations != ref.Iterations || res.Restarts != ref.Restarts {
			t.Errorf("grid=%d: (status, iters, restarts) = (%v, %d, %d), want (%v, %d, %d)",
				g, res.Status, res.Iterations, res.Restarts, ref.Status, ref.Iterations, ref.Restarts)
		}
		if math.Float64bits(res.Objective) != math.Float64bits(ref.Objective) {
			t.Errorf("grid=%d: objective %v, want bit-identical %v", g, res.Objective, ref.Objective)
		}
		for j := range ref.X {
			if math.Float64bits(res.X[j]) != math.Float64bits(ref.X[j]) {
				t.Fatalf("grid=%d: X[%d] = %v, want bit-identical %v", g, j, res.X[j], ref.X[j])
			}
		}
		for j := range ref.Y {
			if math.Float64bits(res.Y[j]) != math.Float64bits(ref.Y[j]) {
				t.Fatalf("grid=%d: Y[%d] = %v, want bit-identical %v", g, j, res.Y[j], ref.Y[j])
			}
		}
		if res.Counters != ref.Counters {
			t.Errorf("grid=%d: counters %+v, want %+v", g, res.Counters, ref.Counters)
		}
		if res.NoC != ref.NoC {
			t.Errorf("grid=%d: NoC stats %+v, want %+v", g, res.NoC, ref.NoC)
		}
		if math.Float64bits(res.EnergyJoules) != math.Float64bits(ref.EnergyJoules) {
			t.Errorf("grid=%d: energy %v, want bit-identical %v", g, res.EnergyJoules, ref.EnergyJoules)
		}
		if diff := trace.Diff(res.Trace, ref.Trace, 0); len(diff) != 0 {
			t.Errorf("grid=%d: trace diverged:\n  %s", g, diff[0])
		}
	}
}

// TestRefreshIsNumericNoOp pins the epoch-rebased refresh semantics: a run
// with periodic tile refreshes returns the same iterates as one without
// (identical conductance draws), while honestly charging the extra writes.
func TestRefreshIsNumericNoOp(t *testing.T) {
	p := genFeasible(t, 10, 6, 5)
	tol := DefaultTolerances()
	tol.MaxIterations = 400

	solve := func(refreshEvery int) *Result {
		s, err := New(
			WithNoC(noc.Config{Topology: noc.Mesh, TileSize: 4}),
			WithCrossbar(noisyConfig(t, 3)),
			WithTolerances(tol),
			WithRefreshInterval(refreshEvery),
		)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return mustSolve(t, s, p)
	}

	plain := solve(0)
	refreshed := solve(50)
	if refreshed.TilesRefreshed == 0 {
		t.Fatal("refresh interval 50 refreshed no tiles")
	}
	if plain.TilesRefreshed != 0 {
		t.Fatalf("refresh disabled but %d tiles refreshed", plain.TilesRefreshed)
	}
	if refreshed.Status != plain.Status || refreshed.Iterations != plain.Iterations {
		t.Errorf("refresh changed the trajectory: (%v, %d) vs (%v, %d)",
			refreshed.Status, refreshed.Iterations, plain.Status, plain.Iterations)
	}
	for j := range plain.X {
		if math.Float64bits(refreshed.X[j]) != math.Float64bits(plain.X[j]) {
			t.Fatalf("X[%d] = %v after refresh, want bit-identical %v", j, refreshed.X[j], plain.X[j])
		}
	}
	if refreshed.Counters.CellWrites <= plain.Counters.CellWrites {
		t.Errorf("refresh charged no extra writes: %d vs %d",
			refreshed.Counters.CellWrites, plain.Counters.CellWrites)
	}
}

func TestContextCancellation(t *testing.T) {
	p := genFeasible(t, 10, 4, 9)
	s, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := s.SolveContext(ctx, p)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if res == nil || res.Status != lp.StatusCanceled {
		t.Fatalf("result %+v, want StatusCanceled partial", res)
	}
}

func TestRejectsInvalidInputs(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.SolveContext(context.Background(), nil); !errors.Is(err, lp.ErrInvalid) {
		t.Errorf("nil problem: %v, want ErrInvalid", err)
	}

	soc, err := lp.NewConic("soc", linalg.VectorOf(1, 1, 1),
		mustMatrixRows(t, [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}),
		linalg.VectorOf(2, 1, 1),
		[]lp.Cone{{Type: lp.ConeSOC, Dim: 3}})
	if err != nil {
		t.Fatalf("NewConic: %v", err)
	}
	if _, err := s.SolveContext(context.Background(), soc); !errors.Is(err, lp.ErrConicUnsupported) {
		t.Errorf("conic problem: %v, want ErrConicUnsupported", err)
	}

	if _, err := New(WithGrid(0)); !errors.Is(err, lp.ErrInvalid) {
		t.Errorf("grid 0: %v, want ErrInvalid", err)
	}
	if _, err := New(WithRestartInterval(0)); !errors.Is(err, lp.ErrInvalid) {
		t.Errorf("restart interval 0: %v, want ErrInvalid", err)
	}
	if _, err := New(WithRefreshInterval(-1)); !errors.Is(err, lp.ErrInvalid) {
		t.Errorf("refresh interval -1: %v, want ErrInvalid", err)
	}
}

func mustMatrixRows(t *testing.T, rows [][]float64) *linalg.Matrix {
	t.Helper()
	m, err := linalg.MatrixFromRows(rows)
	if err != nil {
		t.Fatalf("MatrixFromRows: %v", err)
	}
	return m
}

// TestTraceRecordsShape sanity-checks the emitted trajectory: a first-
// iteration record, stride-decimated iteration records, and a terminal done
// record carrying the final status and cumulative hardware counters.
func TestTraceRecordsShape(t *testing.T) {
	p := genFeasible(t, 12, 8, 11)
	s, err := New(WithTrace(0), WithNoC(noc.Config{Topology: noc.Mesh, TileSize: 4}))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := mustSolve(t, s, p)
	if len(res.Trace) < 2 {
		t.Fatalf("trace has %d records", len(res.Trace))
	}
	first, last := res.Trace[0], res.Trace[len(res.Trace)-1]
	if first.Event != trace.EventIteration || first.Iteration != 1 {
		t.Errorf("first record = (%s, %d), want (iteration, 1)", first.Event, first.Iteration)
	}
	if last.Event != trace.EventDone || last.Status != res.Status.String() {
		t.Errorf("done record = (%s, %q), want (done, %q)", last.Event, last.Status, res.Status)
	}
	if last.Iteration != res.Iterations {
		t.Errorf("done record iteration %d, want %d", last.Iteration, res.Iterations)
	}
	if last.EnergyJoules <= 0 {
		t.Error("done record carries no modeled energy")
	}
	for _, r := range res.Trace {
		if r.Event == trace.EventIteration && r.Iteration != 1 && r.Iteration%traceStride != 0 {
			t.Errorf("iteration record at %d breaks the stride-%d decimation", r.Iteration, traceStride)
		}
	}
}

// TestAdaptiveRestartFires pins that the ergodic-average restart actually
// triggers on a plateauing trajectory and emits its trace event.
func TestAdaptiveRestartFires(t *testing.T) {
	p := genFeasible(t, 14, 9, 17)
	s, err := New(WithTrace(0), WithRestartInterval(20))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := mustSolve(t, s, p)
	if res.Restarts == 0 {
		t.Skip("no restart on this trajectory; instance converged before the first window")
	}
	found := false
	for _, r := range res.Trace {
		if r.Event == trace.EventRestart {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("Restarts = %d but no %q trace event", res.Restarts, trace.EventRestart)
	}
}
